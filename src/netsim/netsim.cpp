#include "netsim/netsim.hpp"

#include <algorithm>
#include <cmath>

#include "support/error.hpp"

namespace mpcx::netsim {

// ---- Simulator -----------------------------------------------------------------

void Simulator::at(SimTime t, std::function<void()> fn) {
  if (t < now_) throw ArgumentError("Simulator::at: time in the past");
  queue_.push(Event{t, next_seq_++, std::move(fn)});
}

SimTime Simulator::run() {
  while (!queue_.empty()) {
    // priority_queue::top is const; the event is copied out so its fn can
    // schedule further events while the queue mutates.
    Event event = queue_.top();
    queue_.pop();
    now_ = event.time;
    ++executed_;
    event.fn();
  }
  return now_;
}

// ---- link ----------------------------------------------------------------------

double wire_time_us(const LinkSpec& link, std::size_t bytes) {
  const std::size_t frames = bytes == 0 ? 1 : (bytes + link.mtu_payload - 1) / link.mtu_payload;
  const std::size_t wire_bytes = bytes + frames * link.frame_overhead;
  // bandwidth in Mbps == bits/us.
  return static_cast<double>(wire_bytes) * 8.0 / link.bandwidth_mbps;
}

double line_rate_ceiling_mbps(const LinkSpec& link) {
  return link.bandwidth_mbps * static_cast<double>(link.mtu_payload) /
         static_cast<double>(link.mtu_payload + link.frame_overhead);
}

// ---- software profile -------------------------------------------------------------

namespace {
double per_byte_cost(double small_rate, double large_rate, std::size_t large_threshold,
                     std::size_t bytes) {
  const double rate =
      (large_rate >= 0.0 && large_threshold > 0 && bytes > large_threshold) ? large_rate
                                                                            : small_rate;
  return rate * static_cast<double>(bytes);
}
}  // namespace

double SoftwareProfile::send_cost_us(std::size_t bytes) const {
  return send_setup_us +
         per_byte_cost(send_per_byte_us, large_send_per_byte_us, large_threshold, bytes);
}

double SoftwareProfile::recv_cost_us(std::size_t bytes) const {
  return recv_setup_us +
         per_byte_cost(recv_per_byte_us, large_recv_per_byte_us, large_threshold, bytes);
}

// ---- ping-pong model ----------------------------------------------------------------

double PingPongModel::quantize(double t) const {
  if (nic_.poll_interval_us <= 0.0) return t;
  const double ticks = std::ceil(t / nic_.poll_interval_us);
  return ticks * nic_.poll_interval_us;
}

double PingPongModel::stream_time_us(std::size_t bytes) const {
  const double raw = wire_time_us(link_, bytes);
  if (profile_.socket_buffer_bytes == 0 || bytes <= profile_.socket_buffer_bytes) return raw;
  // Window-limited streaming: the sender can keep at most W bytes in
  // flight; each window turn costs an extra round trip of acknowledgements.
  const double rtt = 2.0 * link_.latency_us;
  const double turns =
      std::ceil(static_cast<double>(bytes) / static_cast<double>(profile_.socket_buffer_bytes)) -
      1.0;
  return raw + turns * rtt;
}

double PingPongModel::transfer_time_us(std::size_t bytes) const {
  const std::size_t message = bytes + profile_.header_bytes;
  const bool rendezvous =
      profile_.eager_threshold > 0 && bytes > profile_.eager_threshold;

  Simulator sim;
  double done_at = 0.0;

  if (!rendezvous) {
    // EAGER (paper Figs. 3-5): sender packs + writes; the payload streams
    // over the link; the receiver's NIC notices at a poll tick; receiver
    // copies out to user memory.
    sim.after(profile_.send_cost_us(bytes), [&, this] {
      const double arrival = sim.now() + stream_time_us(message) + link_.latency_us;
      sim.at(quantize(arrival), [&, this] {
        done_at = sim.now() + profile_.recv_cost_us(bytes);
      });
    });
  } else {
    // RENDEZVOUS (paper Figs. 6-8): RTS control frame, RTR reply, then the
    // data. Control frames carry only the header. Setup costs are paid on
    // the data pass; control handling is a fraction of setup.
    const double ctrl = wire_time_us(link_, profile_.header_bytes) + link_.latency_us;
    const double ctrl_handle = 0.25 * (profile_.send_setup_us + profile_.recv_setup_us) / 2.0;
    sim.after(profile_.send_cost_us(bytes), [&, this] {  // pack + send RTS
      const double rts_seen = quantize(sim.now() + ctrl);
      sim.at(rts_seen + ctrl_handle, [&, this] {  // receiver sends RTR
        const double rtr_seen = quantize(sim.now() + ctrl);
        sim.at(rtr_seen + ctrl_handle, [&, this] {  // sender streams the data
          const double arrival = sim.now() + stream_time_us(message) + link_.latency_us;
          sim.at(quantize(arrival), [&, this] {
            done_at = sim.now() + profile_.recv_cost_us(bytes);
          });
        });
      });
    });
  }

  sim.run();
  return done_at;
}

double PingPongModel::throughput_mbps(std::size_t bytes) const {
  const double time = transfer_time_us(bytes);
  if (time <= 0.0) return 0.0;
  return static_cast<double>(bytes) * 8.0 / time;
}

}  // namespace mpcx::netsim
