// Calibrated system profiles for the paper's evaluation (Figs. 10-15).
//
// Each profile models one messaging system the paper measures. The MODEL is
// mechanistic (see netsim.hpp); the CONSTANTS are calibrated per network to
// the paper's reported endpoints (1-byte latency and 16 MB throughput), so
// the interesting content — orderings, crossovers, the 128 KB protocol dip,
// the mpijava out-of-cache collapse on Myrinet — emerges from the protocol
// and copy mechanics rather than from per-point curve fitting.
//
// Per-system software structure (from the paper):
//   MPICH / LAM      native C, kernel socket path, no extra copies
//   mpijava          JNI wrapper over MPICH: one JNI copy each side
//   MPJ/Ibis         pure Java streams: no packing, but higher setup
//   mpjdev           MPJ Express device level: NIO path, no mpjbuf packing
//   MPJ Express      mpjdev + mpjbuf pack/unpack copy on each side
#pragma once

#include <vector>

#include "netsim/netsim.hpp"

namespace mpcx::netsim {

/// The StarBug cluster's three networks (Sec. V).
inline LinkSpec fast_ethernet_link() {
  return LinkSpec{/*bandwidth_mbps=*/100.0, /*latency_us=*/60.0,
                  /*mtu_payload=*/1460, /*frame_overhead=*/78};
}

inline LinkSpec gigabit_link() {
  return LinkSpec{/*bandwidth_mbps=*/1000.0, /*latency_us=*/25.0,
                  /*mtu_payload=*/1460, /*frame_overhead=*/78};
}

inline LinkSpec myrinet_link() {
  // MX framing is negligible next to Ethernet's.
  return LinkSpec{/*bandwidth_mbps=*/2000.0, /*latency_us=*/3.0,
                  /*mtu_payload=*/4096, /*frame_overhead=*/16};
}

/// The e1000 driver's 64 us polling latency (Sec. V); MX busy-polls.
inline NicSpec ethernet_nic() { return NicSpec{64.0}; }
inline NicSpec myrinet_nic() { return NicSpec{0.0}; }

inline constexpr std::size_t kEagerThreshold = 128 * 1024;  // TCP systems
inline constexpr std::size_t kMxThreshold = 32 * 1024;      // MX internal

/// Figure 10/11 systems (Fast Ethernet), in the paper's legend order.
inline std::vector<PingPongModel> fast_ethernet_systems() {
  const LinkSpec link = fast_ethernet_link();
  const NicSpec nic = ethernet_nic();
  auto model = [&](SoftwareProfile profile) { return PingPongModel(link, nic, profile); };
  return {
      model({.name = "MPJ Express", .send_setup_us = 35, .recv_setup_us = 35,
             .send_per_byte_us = 0.0039, .recv_per_byte_us = 0.0038,
             .eager_threshold = kEagerThreshold}),
      model({.name = "mpjdev", .send_setup_us = 30, .recv_setup_us = 30,
             .send_per_byte_us = 0.0033, .recv_per_byte_us = 0.0033,
             .eager_threshold = kEagerThreshold}),
      model({.name = "MPICH", .send_setup_us = 10, .recv_setup_us = 10,
             .send_per_byte_us = 0.0033, .recv_per_byte_us = 0.0033,
             .eager_threshold = kEagerThreshold}),
      model({.name = "mpijava", .send_setup_us = 15, .recv_setup_us = 15,
             .send_per_byte_us = 0.0055, .recv_per_byte_us = 0.0054,
             .eager_threshold = kEagerThreshold}),
      model({.name = "LAM/MPI", .send_setup_us = 10, .recv_setup_us = 10,
             .send_per_byte_us = 0.0023, .recv_per_byte_us = 0.0023}),
      model({.name = "MPJ/Ibis (TCPIbis)", .send_setup_us = 25, .recv_setup_us = 25,
             .send_per_byte_us = 0.0023, .recv_per_byte_us = 0.0023}),
      model({.name = "MPJ/Ibis (NIOIbis)", .send_setup_us = 25, .recv_setup_us = 24,
             .send_per_byte_us = 0.0023, .recv_per_byte_us = 0.0023}),
  };
}

/// Figure 12/13 systems (Gigabit Ethernet; 512 KB socket buffers, Sec. V-C).
inline std::vector<PingPongModel> gigabit_systems() {
  const LinkSpec link = gigabit_link();
  const NicSpec nic = ethernet_nic();
  constexpr std::size_t kWindow = 512 * 1024;
  auto model = [&](SoftwareProfile profile) {
    profile.socket_buffer_bytes = kWindow;
    return PingPongModel(link, nic, profile);
  };
  return {
      model({.name = "MPJ Express", .send_setup_us = 35, .recv_setup_us = 35,
             .send_per_byte_us = 0.00167, .recv_per_byte_us = 0.00166,
             .eager_threshold = kEagerThreshold}),
      model({.name = "mpjdev", .send_setup_us = 30, .recv_setup_us = 30,
             .send_per_byte_us = 0.00023, .recv_per_byte_us = 0.00023,
             .eager_threshold = kEagerThreshold}),
      model({.name = "mpijava", .send_setup_us = 15, .recv_setup_us = 15,
             .send_per_byte_us = 0.00245, .recv_per_byte_us = 0.00245,
             .eager_threshold = kEagerThreshold}),
      model({.name = "MPICH", .send_setup_us = 10, .recv_setup_us = 10,
             .send_per_byte_us = 0.00105, .recv_per_byte_us = 0.00105,
             .eager_threshold = kEagerThreshold}),
      model({.name = "MPJ/Ibis (TCPIbis)", .send_setup_us = 25, .recv_setup_us = 25,
             .send_per_byte_us = 0.00023, .recv_per_byte_us = 0.00023}),
      model({.name = "MPJ/Ibis (NIOIbis)", .send_setup_us = 25, .recv_setup_us = 24,
             .send_per_byte_us = 0.00023, .recv_per_byte_us = 0.00023}),
      model({.name = "LAM/MPI", .send_setup_us = 10, .recv_setup_us = 10,
             .send_per_byte_us = 0.00023, .recv_per_byte_us = 0.00023}),
  };
}

/// Figure 14/15 systems (2G Myrinet over MX). mxdev has no frame header —
/// match bits carry the envelope — hence header_bytes = 0.
inline std::vector<PingPongModel> myrinet_systems() {
  const LinkSpec link = myrinet_link();
  const NicSpec nic = myrinet_nic();
  auto model = [&](SoftwareProfile profile) {
    profile.header_bytes = 0;
    return PingPongModel(link, nic, profile);
  };
  return {
      model({.name = "MPJ Express", .send_setup_us = 10, .recv_setup_us = 10,
             .send_per_byte_us = 0.00164, .recv_per_byte_us = 0.00164,
             .eager_threshold = kMxThreshold}),
      model({.name = "mpjdev", .send_setup_us = 9, .recv_setup_us = 9,
             .send_per_byte_us = 0.00018, .recv_per_byte_us = 0.00018,
             .eager_threshold = kMxThreshold}),
      model({.name = "MPICH-MX", .send_setup_us = 0.5, .recv_setup_us = 0.5,
             .send_per_byte_us = 0.00021, .recv_per_byte_us = 0.00021,
             .eager_threshold = kMxThreshold}),
      model({.name = "mpijava", .send_setup_us = 4.5, .recv_setup_us = 4.5,
             .send_per_byte_us = 0.00096, .recv_per_byte_us = 0.00096,
             .large_send_per_byte_us = 0.0026, .large_recv_per_byte_us = 0.0026,
             .large_threshold = 64 * 1024, .eager_threshold = kMxThreshold}),
  };
}

/// Message-size sweep used by all figure benchmarks: 1 byte to 16 MB in
/// powers of two (the paper's x axis).
inline std::vector<std::size_t> figure_sweep() {
  std::vector<std::size_t> sizes = {1};
  for (std::size_t size = 2; size <= (16u << 20); size <<= 1) sizes.push_back(size);
  return sizes;
}

}  // namespace mpcx::netsim
