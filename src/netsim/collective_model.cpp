#include "netsim/collective_model.hpp"

#include "support/error.hpp"

namespace mpcx::netsim {

int CollectiveModel::log2_rounds(int n) {
  if (n < 1) throw ArgumentError("CollectiveModel: n must be >= 1");
  int rounds = 0;
  int reach = 1;
  while (reach < n) {
    reach <<= 1;
    ++rounds;
  }
  return rounds;
}

double CollectiveModel::barrier_dissemination_us(int n) const {
  return log2_rounds(n) * p2p_.transfer_time_us(1);
}

double CollectiveModel::barrier_linear_us(int n) const {
  return 2.0 * (n - 1) * p2p_.transfer_time_us(1);
}

double CollectiveModel::bcast_binomial_us(int n, std::size_t bytes) const {
  return log2_rounds(n) * p2p_.transfer_time_us(bytes);
}

double CollectiveModel::bcast_linear_us(int n, std::size_t bytes) const {
  return (n - 1) * p2p_.transfer_time_us(bytes);
}

double CollectiveModel::reduce_binomial_us(int n, std::size_t bytes,
                                           double combine_us_per_byte) const {
  const double per_round =
      p2p_.transfer_time_us(bytes) + combine_us_per_byte * static_cast<double>(bytes);
  return log2_rounds(n) * per_round;
}

double CollectiveModel::allgather_ring_us(int n, std::size_t block_bytes) const {
  return (n - 1) * p2p_.transfer_time_us(block_bytes);
}

double CollectiveModel::allgather_gather_bcast_us(int n, std::size_t block_bytes) const {
  const double gather = (n - 1) * p2p_.transfer_time_us(block_bytes);
  const double bcast = bcast_binomial_us(n, block_bytes * static_cast<std::size_t>(n));
  return gather + bcast;
}

}  // namespace mpcx::netsim
