// netsim — a small discrete-event model of the paper's test environment
// (DESIGN.md §4.4).
//
// The paper measures ping-pong transfer time and throughput on the StarBug
// cluster over Fast Ethernet, Gigabit Ethernet and 2G Myrinet. We cannot
// measure 2006 NICs, so the figure-reproduction benchmarks drive this model
// instead; MPCX's own real loopback numbers are reported separately
// (bench_xdev_pingpong).
//
// The model is mechanistic, not curve-fitted: each effect the paper
// discusses appears as an explicit component —
//   * link serialization with MTU framing overhead (why nobody reaches
//     100% of line rate on Ethernet);
//   * the 64 us NIC driver poll interval the paper calls out as the source
//     of ping-pong noise (delivery times quantize up to poll ticks);
//   * per-message software setup cost (the latency differences between
//     C MPI, JNI wrappers and pure Java/NIO libraries);
//   * per-byte copy passes (mpjbuf pack/unpack for MPJ Express, the JNI
//     copy for mpijava, nothing for MPJ/Ibis streams) with a slower
//     out-of-cache rate above a size threshold;
//   * the eager->rendezvous protocol switch (the visible dip at 128 KB in
//     Figs. 10-13) adding a control-message round trip;
//   * a TCP socket-buffer window cap on streaming rate (Sec. V-C sets
//     512 KB buffers on Gigabit Ethernet).
//
// A Simulator (time-ordered event queue) executes the protocol state
// machine; transfer_time_us() is the simulated one-way time as measured by
// the paper's modified ping-pong benchmark (which removes the random
// NIC-poll phase, so we quantize with deterministic phase).
#pragma once

#include <cstddef>
#include <functional>
#include <queue>
#include <string>
#include <vector>

namespace mpcx::netsim {

using SimTime = double;  // microseconds

/// Time-ordered event queue.
class Simulator {
 public:
  /// Schedule fn at absolute time t (>= now).
  void at(SimTime t, std::function<void()> fn);

  /// Schedule fn `delay` after now.
  void after(SimTime delay, std::function<void()> fn) { at(now_ + delay, std::move(fn)); }

  /// Run until the queue drains; returns the final clock.
  SimTime run();

  SimTime now() const { return now_; }

  std::size_t executed() const { return executed_; }

 private:
  struct Event {
    SimTime time;
    std::uint64_t seq;  // FIFO tie-break for simultaneous events
    std::function<void()> fn;
    bool operator>(const Event& other) const {
      return time > other.time || (time == other.time && seq > other.seq);
    }
  };

  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::size_t executed_ = 0;
};

/// Physical link.
struct LinkSpec {
  double bandwidth_mbps = 100.0;   ///< raw line rate
  double latency_us = 25.0;        ///< propagation + switch latency, one way
  std::size_t mtu_payload = 1460;  ///< user bytes per frame
  std::size_t frame_overhead = 78; ///< headers + preamble + gap per frame
};

/// Wire serialization time for `bytes` of payload (frames + overhead).
double wire_time_us(const LinkSpec& link, std::size_t bytes);

/// Maximum achievable payload throughput (Mbps) given framing.
double line_rate_ceiling_mbps(const LinkSpec& link);

/// NIC / driver behaviour.
struct NicSpec {
  /// Driver polling interval: a delivered message is noticed only at the
  /// next poll tick (the paper's "64 microseconds network latency" of the
  /// e1000 driver). 0 disables quantization (Myrinet MX busy-polls).
  double poll_interval_us = 0.0;
};

/// Per-messaging-system software cost model.
struct SoftwareProfile {
  std::string name;

  double send_setup_us = 0.0;  ///< fixed per-message cost on the sender
  double recv_setup_us = 0.0;  ///< fixed per-message cost on the receiver

  /// Per-byte copy cost on each side (us/byte): pack/unpack passes, JNI
  /// copies. `large_*` applies above `large_threshold` bytes (out-of-cache
  /// copy rate).
  double send_per_byte_us = 0.0;
  double recv_per_byte_us = 0.0;
  double large_send_per_byte_us = -1.0;  ///< <0: same as small
  double large_recv_per_byte_us = -1.0;
  std::size_t large_threshold = 0;

  /// Eager->rendezvous switch (bytes); 0 = always eager.
  std::size_t eager_threshold = 0;

  /// TCP socket buffer (window) size; 0 = unlimited. Caps streaming rate at
  /// window/RTT.
  std::size_t socket_buffer_bytes = 0;

  /// Protocol header bytes carried with each message/control frame.
  std::size_t header_bytes = 40;

  double send_cost_us(std::size_t bytes) const;
  double recv_cost_us(std::size_t bytes) const;
};

/// One simulated host-pair exchange: computes the one-way transfer time of
/// a `bytes`-sized message under (link, nic, profile), running the eager or
/// rendezvous state machine on a Simulator.
class PingPongModel {
 public:
  PingPongModel(LinkSpec link, NicSpec nic, SoftwareProfile profile)
      : link_(link), nic_(nic), profile_(std::move(profile)) {}

  /// One-way transfer time (us), as reported by the paper's figures.
  double transfer_time_us(std::size_t bytes) const;

  /// Payload throughput (Mbps) at the given message size.
  double throughput_mbps(std::size_t bytes) const;

  const SoftwareProfile& profile() const { return profile_; }
  const LinkSpec& link() const { return link_; }

 private:
  /// Next NIC poll tick at or after t.
  double quantize(double t) const;

  /// Streaming time for a bulk payload, honouring the socket-buffer window.
  double stream_time_us(std::size_t bytes) const;

  LinkSpec link_;
  NicSpec nic_;
  SoftwareProfile profile_;
};

}  // namespace mpcx::netsim
