// Collective-algorithm scaling model over the netsim link models.
//
// The live collective ablation (bench_ablation_collectives) runs in a
// shared-memory fabric where wire latency is ~0 and tree algorithms barely
// pay off. This model projects OUR collective algorithms (the ones
// src/core implements: dissemination barrier, binomial bcast/reduce, ring
// allgather) onto the paper's 2006 cluster models, where a round trip
// costs real microseconds — the regime the algorithms were designed for.
//
// Model assumptions (classic LogP-style): the cluster is n nodes on a
// full-duplex switch; in one "round" every node can send one message and
// receive one message concurrently; a round costs one modeled one-way
// transfer (PingPongModel::transfer_time_us). Sequential (linear)
// algorithms serialize their sends at the root.
#pragma once

#include <cstddef>

#include "netsim/netsim.hpp"

namespace mpcx::netsim {

class CollectiveModel {
 public:
  explicit CollectiveModel(PingPongModel p2p) : p2p_(std::move(p2p)) {}

  /// Dissemination barrier (what Intracomm::Barrier runs): ceil(log2 n)
  /// rounds of 1-byte messages.
  double barrier_dissemination_us(int n) const;

  /// Linear barrier: everyone reports to rank 0, rank 0 releases everyone —
  /// 2(n-1) sequential messages through the root's link.
  double barrier_linear_us(int n) const;

  /// Binomial-tree broadcast (Intracomm::Bcast): ceil(log2 n) rounds, the
  /// payload travelling once per round.
  double bcast_binomial_us(int n, std::size_t bytes) const;

  /// Linear broadcast: root sends n-1 copies back to back.
  double bcast_linear_us(int n, std::size_t bytes) const;

  /// Binomial-tree reduce: like bcast plus a per-round combine cost.
  double reduce_binomial_us(int n, std::size_t bytes, double combine_us_per_byte) const;

  /// Ring allgather (Intracomm::Allgather): n-1 concurrent-neighbour rounds
  /// of one block each.
  double allgather_ring_us(int n, std::size_t block_bytes) const;

  /// Gather-to-root allgather alternative: root collects n-1 blocks
  /// sequentially, then broadcasts the n-block result binomially.
  double allgather_gather_bcast_us(int n, std::size_t block_bytes) const;

  const PingPongModel& p2p() const { return p2p_; }

 private:
  static int log2_rounds(int n);

  PingPongModel p2p_;
};

}  // namespace mpcx::netsim
