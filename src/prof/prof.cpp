#include "prof/counters.hpp"
#include "prof/flight.hpp"
#include "prof/hooks.hpp"
#include "prof/trace.hpp"

#include <unistd.h>

#include <algorithm>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <sstream>
#include <vector>

namespace mpcx::prof {
namespace {

bool env_truthy(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

/// MPCX_TRACE destination captured once at startup; set_trace_path overrides.
std::string& trace_path_storage() {
  static std::string path = [] {
    const char* value = std::getenv("MPCX_TRACE");
    return std::string(value != nullptr ? value : "");
  }();
  return path;
}

std::mutex& trace_path_mu() {
  static std::mutex mu;
  return mu;
}

}  // namespace

namespace detail {
std::atomic<bool> g_counting{env_truthy("MPCX_STATS")};
std::atomic<bool> g_tracing{!trace_path_storage().empty()};
std::atomic<Hooks*> g_hooks{nullptr};
}  // namespace detail

// ---- counters -----------------------------------------------------------------

void set_stats_enabled(bool enabled) {
  detail::g_counting.store(enabled, std::memory_order_relaxed);
}

const char* ctr_name(Ctr counter) {
  switch (counter) {
    case Ctr::MsgsSent: return "msgs_sent";
    case Ctr::BytesSent: return "bytes_sent";
    case Ctr::MsgsRecvd: return "msgs_recvd";
    case Ctr::BytesRecvd: return "bytes_recvd";
    case Ctr::EagerSends: return "eager_sends";
    case Ctr::RndvSends: return "rndv_sends";
    case Ctr::PostedMatches: return "posted_matches";
    case Ctr::UnexpectedMatches: return "unexpected_matches";
    case Ctr::UnexpectedDepthHwm: return "unexpected_depth_hwm";
    case Ctr::ProbeCalls: return "probe_calls";
    case Ctr::IprobeCalls: return "iprobe_calls";
    case Ctr::PeekWakeups: return "peek_wakeups";
    case Ctr::PoolHits: return "pool_hits";
    case Ctr::PoolMisses: return "pool_misses";
    case Ctr::CollectiveCalls: return "collective_calls";
    case Ctr::PackBytes: return "pack_bytes";
    case Ctr::UnpackBytes: return "unpack_bytes";
    case Ctr::PackBytesAvoided: return "pack_bytes_avoided";
    case Ctr::UnpackBytesAvoided: return "unpack_bytes_avoided";
    case Ctr::ZeroCopySends: return "zero_copy_sends";
    case Ctr::ZeroCopyRecvs: return "zero_copy_recvs";
    case Ctr::EagerThreshold: return "eager_threshold";
    case Ctr::FaultsInjected: return "faults_injected";
    case Ctr::IoRetries: return "io_retries";
    case Ctr::OpTimeouts: return "op_timeouts";
    case Ctr::ChecksumFailures: return "checksum_failures";
    case Ctr::HybIntraMsgs: return "hybdev_intra_msgs";
    case Ctr::HybInterMsgs: return "hybdev_inter_msgs";
    case Ctr::HierarchicalColls: return "hierarchical_colls";
    case Ctr::SinglecopyColls: return "singlecopy_colls";
    case Ctr::LevelLocalBytes: return "level_local_bytes";
    case Ctr::NbCollsStarted: return "nb_colls_started";
    case Ctr::NbCollsCompleted: return "nb_colls_completed";
    case Ctr::SchedRounds: return "sched_rounds";
    case Ctr::Reconnects: return "reconnects";
    case Ctr::FramesRetransmitted: return "frames_retransmitted";
    case Ctr::FramesDuplicateDropped: return "frames_duplicate_dropped";
    case Ctr::ConnsOpened: return "conns_opened";
    case Ctr::ConnsEvicted: return "conns_evicted";
    case Ctr::ConnsRedialed: return "conns_redialed";
    case Ctr::EpollWakeups: return "epoll_wakeups";
    case Ctr::SelfDeliveries: return "self_deliveries";
    case Ctr::Count: break;
  }
  return "?";
}

Registry& Registry::global() {
  static Registry registry;
  return registry;
}

std::shared_ptr<Counters> Registry::create(std::string label) {
  auto counters = std::make_shared<Counters>();
  std::lock_guard<std::mutex> lock(mu_);
  // Prune dead blocks opportunistically so long test binaries stay small.
  std::erase_if(entries_, [](const auto& entry) { return entry.second.expired(); });
  entries_.emplace_back(std::move(label), counters);
  return counters;
}

std::vector<Registry::Entry> Registry::snapshot() const {
  std::vector<Entry> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [label, weak] : entries_) {
    if (auto counters = weak.lock()) {
      out.push_back(Entry{label, counters->snapshot()});
    }
  }
  return out;
}

void Registry::report(std::FILE* out) const {
  if (out == nullptr) out = stderr;
  for (const Entry& entry : snapshot()) {
    std::fprintf(out, "== mpcx stats [%s] ==\n", entry.label.c_str());
    for (std::size_t i = 0; i < kCtrCount; ++i) {
      std::fprintf(out, "  %-22s %12llu\n", ctr_name(static_cast<Ctr>(i)),
                   static_cast<unsigned long long>(entry.values[i]));
    }
  }
}

void report_counters(const std::string& label, const Counters& counters) {
  std::ostringstream os;
  os << "== mpcx stats [" << label << "] ==\n";
  const auto values = counters.snapshot();
  for (std::size_t i = 0; i < kCtrCount; ++i) {
    char line[64];
    std::snprintf(line, sizeof line, "  %-22s %12llu\n", ctr_name(static_cast<Ctr>(i)),
                  static_cast<unsigned long long>(values[i]));
    os << line;
  }
  const std::string text = os.str();
  // One write(2) so summaries from concurrent ranks do not interleave.
  [[maybe_unused]] auto n = ::write(STDERR_FILENO, text.data(), text.size());
}

// ---- trace ---------------------------------------------------------------------

namespace {

struct SpanRec {
  const char* name;
  const char* category;
  std::uint64_t t0_ns;
  std::uint64_t t1_ns;
};

/// One thread's span ring. Single producer (the owning thread); the dumper
/// reads only the prefix published via the release store of `count`.
struct ThreadRing {
  static constexpr std::size_t kCapacity = 1 << 14;  // 16384 spans, 512 KB

  explicit ThreadRing(std::uint32_t tid_value) : tid(tid_value) { spans.resize(kCapacity); }

  std::vector<SpanRec> spans;
  std::atomic<std::size_t> count{0};
  std::uint32_t tid;
  std::atomic<bool> in_use{true};
};

struct TraceState {
  std::mutex mu;
  std::vector<std::unique_ptr<ThreadRing>> rings;
  std::uint32_t next_tid = 1;
  std::atomic<std::uint64_t> dropped{0};
  std::mutex dump_mu;  // serializes concurrent dump_trace calls
};

TraceState& trace_state() {
  static TraceState* state = new TraceState;  // leaked: threads may record at exit
  return *state;
}

/// Retires the ring on thread exit so short-lived threads (rendez-write
/// threads) recycle rings instead of growing the registry without bound.
struct RingHolder {
  ThreadRing* ring = nullptr;
  ~RingHolder() {
    if (ring != nullptr) ring->in_use.store(false, std::memory_order_release);
  }
};

ThreadRing* acquire_ring() {
  thread_local RingHolder holder;
  if (holder.ring != nullptr) return holder.ring;
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& ring : state.rings) {
    bool free = !ring->in_use.load(std::memory_order_acquire);
    if (free && ring->count.load(std::memory_order_relaxed) < ThreadRing::kCapacity &&
        ring->in_use.exchange(true, std::memory_order_acq_rel) == false) {
      holder.ring = ring.get();
      return holder.ring;
    }
  }
  state.rings.push_back(std::make_unique<ThreadRing>(state.next_tid++));
  holder.ring = state.rings.back().get();
  return holder.ring;
}

void json_escape_into(std::string& out, const char* text) {
  for (const char* p = text; *p != '\0'; ++p) {
    const char c = *p;
    if (c == '"' || c == '\\') {
      out.push_back('\\');
      out.push_back(c);
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof buf, "\\u%04x", c);
      out += buf;
    } else {
      out.push_back(c);
    }
  }
}

void append_event(std::string& out, const SpanRec& span, std::uint32_t tid, int pid,
                  bool begin, bool first) {
  if (!first) out += ",\n";
  out += "{\"name\":\"";
  json_escape_into(out, span.name);
  out += "\",\"cat\":\"";
  json_escape_into(out, span.category);
  out += "\",\"ph\":\"";
  out += begin ? 'B' : 'E';
  out += "\",\"ts\":";
  char buf[48];
  const std::uint64_t ns = begin ? span.t0_ns : span.t1_ns;
  std::snprintf(buf, sizeof buf, "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
  std::snprintf(buf, sizeof buf, ",\"pid\":%d,\"tid\":%u}", pid, tid);
  out += buf;
}

}  // namespace

void set_trace_path(const std::string& path) {
  {
    std::lock_guard<std::mutex> lock(trace_path_mu());
    trace_path_storage() = path;
  }
  detail::g_tracing.store(!path.empty(), std::memory_order_relaxed);
}

std::string trace_path() {
  std::lock_guard<std::mutex> lock(trace_path_mu());
  return trace_path_storage();
}

void record_span(const char* name, const char* category, std::uint64_t t0_ns,
                 std::uint64_t t1_ns) {
  ThreadRing* ring = acquire_ring();
  const std::size_t at = ring->count.load(std::memory_order_relaxed);
  if (at >= ThreadRing::kCapacity) {
    trace_state().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring->spans[at] = SpanRec{name, category, t0_ns, t1_ns};
  ring->count.store(at + 1, std::memory_order_release);
}

std::uint64_t dropped_spans() {
  return trace_state().dropped.load(std::memory_order_relaxed);
}

bool dump_trace(const std::string& path) {
  TraceState& state = trace_state();
  std::lock_guard<std::mutex> dump_lock(state.dump_mu);

  // Snapshot ring pointers; spans themselves are read via published counts.
  std::vector<ThreadRing*> rings;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    rings.reserve(state.rings.size());
    for (auto& ring : state.rings) rings.push_back(ring.get());
  }

  std::string out;
  out.reserve(1 << 16);
  out += "[\n";
  const int pid = static_cast<int>(::getpid());
  bool first = true;
  for (ThreadRing* ring : rings) {
    const std::size_t count =
        std::min(ring->count.load(std::memory_order_acquire), ThreadRing::kCapacity);
    for (std::size_t i = 0; i < count; ++i) {
      const SpanRec& span = ring->spans[i];
      append_event(out, span, ring->tid, pid, /*begin=*/true, first);
      first = false;
      append_event(out, span, ring->tid, pid, /*begin=*/false, false);
    }
  }
  detail::append_flight_events(out, pid, first);
  // Clock-sync sample: one simultaneous (steady, wall) reading. The trace
  // merger (runtime/launcher merge_traces) uses the wall-steady offset to
  // align per-rank steady-clock timelines onto one cluster-wide axis.
  {
    const std::uint64_t steady_ns = trace_now_ns();
    const std::uint64_t wall_ns = static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::system_clock::now().time_since_epoch())
            .count());
    if (!first) out += ",\n";
    first = false;
    char buf[256];
    std::snprintf(buf, sizeof buf,
                  "{\"name\":\"mpcx_clock_sync\",\"cat\":\"meta\",\"ph\":\"i\",\"s\":\"p\","
                  "\"ts\":%llu.%03llu,\"pid\":%d,\"tid\":0,\"args\":{\"steady_ns\":%llu,"
                  "\"wall_ns\":%llu}}",
                  static_cast<unsigned long long>(steady_ns / 1000),
                  static_cast<unsigned long long>(steady_ns % 1000), pid,
                  static_cast<unsigned long long>(steady_ns),
                  static_cast<unsigned long long>(wall_ns));
    out += buf;
  }
  out += "\n]\n";

  std::FILE* file = std::fopen(path.c_str(), "w");
  if (file == nullptr) return false;
  const bool ok = std::fwrite(out.data(), 1, out.size(), file) == out.size();
  std::fclose(file);
  return ok;
}

bool maybe_dump_trace() {
  if (!tracing()) return false;
  const std::string path = trace_path();
  if (path.empty()) return false;
  return dump_trace(path);
}

// ---- hooks ---------------------------------------------------------------------

namespace {
/// Keeps the previous Hooks alive across a swap so sites that loaded the raw
/// pointer just before set_hooks() never touch freed memory.
std::mutex& hooks_mu() {
  static std::mutex mu;
  return mu;
}
std::vector<std::shared_ptr<Hooks>>& hooks_keepalive() {
  static std::vector<std::shared_ptr<Hooks>> keep;
  return keep;
}
}  // namespace

void set_hooks(std::shared_ptr<Hooks> hooks) {
  std::lock_guard<std::mutex> lock(hooks_mu());
  detail::g_hooks.store(hooks.get(), std::memory_order_release);
  if (hooks) hooks_keepalive().push_back(std::move(hooks));
}

}  // namespace mpcx::prof
