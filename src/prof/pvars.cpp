#include "prof/pvars.hpp"

#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <sstream>

namespace mpcx::prof {
namespace {

bool pvars_env_enabled() {
  const auto truthy = [](const char* name) {
    const char* value = std::getenv(name);
    return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
  };
  return truthy("MPCX_STATS") || truthy("MPCX_METRICS_MS");
}

}  // namespace

namespace detail {
std::atomic<bool> g_pvars{pvars_env_enabled()};
}  // namespace detail

void set_pvars_enabled(bool enabled) {
  detail::g_pvars.store(enabled, std::memory_order_relaxed);
}

const PvInfo& pv_info(Pv v) {
  static const PvInfo kInfos[kPvCount] = {
      {"posted_recv_depth", PvClass::Gauge, "posted-but-unmatched receive requests"},
      {"unexpected_depth", PvClass::Gauge, "messages queued with no matching receive"},
      {"unexpected_bytes", PvClass::Gauge, "payload bytes held by the unexpected queue"},
      {"send_backlog", PvClass::Gauge, "sends accepted but not yet on the wire"},
      {"rndv_slots", PvClass::Gauge, "rendezvous handshakes in flight"},
      {"inflight_scheds", PvClass::Gauge, "nonblocking-collective schedules outstanding"},
      {"retransmit_buffer_bytes", PvClass::Gauge,
       "unacked frame bytes held for replay (reliable tcpdev)"},
      {"open_connections", PvClass::Gauge,
       "write channels currently open (hwm = peak concurrent connections)"},
      {"topo_levels", PvClass::Gauge,
       "exchange levels of the last hierarchical collective (hwm = deepest)"},
      {"match_latency_ns", PvClass::Histogram, "receive post/arrival to match (ns)"},
      {"op_completion_ns", PvClass::Histogram, "request creation to completion (ns)"},
  };
  return kInfos[static_cast<std::size_t>(v)];
}

PvarRegistry& PvarRegistry::global() {
  static PvarRegistry registry;
  return registry;
}

std::shared_ptr<PvarSet> PvarRegistry::create(std::string label) {
  auto set = std::make_shared<PvarSet>();
  std::lock_guard<std::mutex> lock(mu_);
  std::erase_if(entries_, [](const auto& entry) { return entry.second.expired(); });
  entries_.emplace_back(std::move(label), set);
  return set;
}

std::vector<PvarRegistry::Entry> PvarRegistry::snapshot() const {
  std::vector<Entry> out;
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& [label, weak] : entries_) {
    if (auto set = weak.lock()) out.push_back(Entry{label, std::move(set)});
  }
  return out;
}

PvarSet& proc_pvars() {
  static std::shared_ptr<PvarSet> set = PvarRegistry::global().create("proc");
  return *set;
}

void observe_match_latency(std::uint64_t ns) {
  if (!pvars_enabled()) return;
  proc_pvars().observe(Pv::MatchLatencyNs, ns);
}

void observe_op_completion(std::uint64_t ns) {
  if (!pvars_enabled()) return;
  proc_pvars().observe(Pv::OpCompletionNs, ns);
}

namespace {

/// Upper bound (ns) of the smallest bucket whose cumulative count reaches
/// `target` observations — a coarse quantile from the log2 histogram.
std::uint64_t hist_quantile(const PvarSet::HistValue& h, double q) {
  if (h.count == 0) return 0;
  const std::uint64_t target =
      static_cast<std::uint64_t>(q * static_cast<double>(h.count) + 0.5);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < kPvHistBuckets; ++i) {
    cum += h.buckets[i];
    if (cum >= target && cum > 0) return std::uint64_t{1} << i;
  }
  return std::uint64_t{1} << (kPvHistBuckets - 1);
}

}  // namespace

void report_pvars(const std::string& label, const PvarSet& set) {
  std::ostringstream os;
  os << "== mpcx pvars [" << label << "] ==\n";
  char line[128];
  for (std::size_t i = 0; i < kPvCount; ++i) {
    const Pv v = static_cast<Pv>(i);
    const PvInfo& info = pv_info(v);
    if (info.cls == PvClass::Gauge) {
      const auto g = set.gauge(v);
      std::snprintf(line, sizeof line, "  %-22s cur %10llu  hwm %10llu\n", info.name,
                    static_cast<unsigned long long>(g.current),
                    static_cast<unsigned long long>(g.hwm));
    } else {
      const auto h = set.hist(v);
      const std::uint64_t avg = h.count == 0 ? 0 : h.sum / h.count;
      std::snprintf(line, sizeof line,
                    "  %-22s n %8llu  avg %9lluns  p50<=%lluns  p99<=%lluns\n", info.name,
                    static_cast<unsigned long long>(h.count),
                    static_cast<unsigned long long>(avg),
                    static_cast<unsigned long long>(hist_quantile(h, 0.50)),
                    static_cast<unsigned long long>(hist_quantile(h, 0.99)));
    }
    os << line;
  }
  const std::string text = os.str();
  // One write(2) so summaries from concurrent ranks do not interleave.
  [[maybe_unused]] auto n = ::write(STDERR_FILENO, text.data(), text.size());
}

std::string pvars_jsonl_line(int rank, std::uint64_t t_ns) {
  std::string out;
  out.reserve(1 << 10);
  char buf[96];
  std::snprintf(buf, sizeof buf, "{\"t_ns\":%llu,\"rank\":%d,\"pvars\":{",
                static_cast<unsigned long long>(t_ns), rank);
  out += buf;
  bool first_set = true;
  for (const auto& entry : PvarRegistry::global().snapshot()) {
    if (!first_set) out += ',';
    first_set = false;
    out += '"';
    out += entry.label;  // labels are code-controlled: no escaping needed
    out += "\":{";
    bool first_pv = true;
    for (std::size_t i = 0; i < kPvCount; ++i) {
      const Pv v = static_cast<Pv>(i);
      const PvInfo& info = pv_info(v);
      if (!first_pv) out += ',';
      first_pv = false;
      if (info.cls == PvClass::Gauge) {
        const auto g = entry.set->gauge(v);
        std::snprintf(buf, sizeof buf, "\"%s\":{\"cur\":%llu,\"hwm\":%llu}", info.name,
                      static_cast<unsigned long long>(g.current),
                      static_cast<unsigned long long>(g.hwm));
        out += buf;
      } else {
        const auto h = entry.set->hist(v);
        std::snprintf(buf, sizeof buf, "\"%s\":{\"n\":%llu,\"sum\":%llu,\"buckets\":[",
                      info.name, static_cast<unsigned long long>(h.count),
                      static_cast<unsigned long long>(h.sum));
        out += buf;
        bool first_b = true;
        for (std::size_t b = 0; b < kPvHistBuckets; ++b) {
          if (h.buckets[b] == 0) continue;  // sparse [log2, count] pairs
          if (!first_b) out += ',';
          first_b = false;
          std::snprintf(buf, sizeof buf, "[%zu,%llu]", b,
                        static_cast<unsigned long long>(h.buckets[b]));
          out += buf;
        }
        out += "]}";
      }
    }
    out += '}';
  }
  out += "}}\n";
  return out;
}

}  // namespace mpcx::prof
