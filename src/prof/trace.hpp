// mpcx::prof — event tracing.
//
// Each thread records completed spans (send/recv/wait/pack/unpack/collective)
// into its own fixed-capacity ring; recording is lock-free (single producer,
// release-published count) and a disabled trace costs one relaxed load +
// branch per span. dump_trace() walks every thread's ring and writes Chrome
// trace_event JSON — load it in chrome://tracing or https://ui.perfetto.dev.
//
// A span is recorded as ONE entry holding both timestamps and expanded into a
// balanced "B"/"E" pair at dump time, so a dump can never contain an
// unbalanced begin/end no matter when it runs.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>

namespace mpcx::prof {

namespace detail {
/// Global "record spans" switch; set by MPCX_TRACE=<path> or set_trace_path.
extern std::atomic<bool> g_tracing;
}  // namespace detail

inline bool tracing() { return detail::g_tracing.load(std::memory_order_relaxed); }

/// Enable tracing and set the dump destination (tests; overrides MPCX_TRACE).
/// An empty path disables tracing.
void set_trace_path(const std::string& path);

/// The configured dump path ("" when tracing is off).
std::string trace_path();

/// Monotonic nanoseconds (steady clock) — the trace time base.
inline std::uint64_t trace_now_ns() {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Record one completed span. `name` and `category` MUST be string literals
/// (or otherwise outlive the process) — rings store the pointers only.
void record_span(const char* name, const char* category, std::uint64_t t0_ns,
                 std::uint64_t t1_ns);

/// Spans dropped because a thread's ring filled up (counted, never silent).
std::uint64_t dropped_spans();

/// Write everything recorded so far as a Chrome trace_event JSON array.
/// Safe to call while other threads are still recording (they publish whole
/// spans with release stores); callers are serialized internally. Returns
/// false if the file could not be written.
bool dump_trace(const std::string& path);

/// dump_trace(trace_path()) when tracing is enabled; no-op otherwise.
bool maybe_dump_trace();

/// RAII span: timestamps its scope and records it on destruction when
/// tracing is enabled. Must begin and end on the same thread.
class Span {
 public:
  Span(const char* name, const char* category)
      : name_(name), category_(category), active_(tracing()) {
    if (active_) t0_ns_ = trace_now_ns();
  }

  ~Span() {
    if (active_) record_span(name_, category_, t0_ns_, trace_now_ns());
  }

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

 private:
  const char* name_;
  const char* category_;
  bool active_;
  std::uint64_t t0_ns_ = 0;
};

}  // namespace mpcx::prof
