// mpcx::prof — message-lifecycle flight recorder.
//
// Every point-to-point message is assigned a 64-bit *correlation id* at the
// sending device and carried in the wire frame header (tcpdev FrameHeader /
// shmdev RecInfo msg_id field), so both endpoints of one message record
// lifecycle events under the SAME id:
//
//   sender:    SendPosted -> SendWire -> SendCompleted
//   receiver:  (RecvPosted) -> RecvMatched -> RecvCompleted
//
// Events land in per-thread lock-free rings (same single-producer /
// release-published-count discipline as the span rings in trace.hpp) and are
// emitted by dump_trace() as Chrome trace_event "X" slices plus flow events
// ("s" on the sender at wire time, "f" on the receiver at match time) bound
// by the correlation id — so sender and receiver spans connect visually
// across threads, and across ranks once the launcher merges per-rank files
// (runtime/launcher.hpp merge_traces).
//
// Id layout: (identity24 << 40) | seq40. identity24 is the low 24 bits of
// the sender's ProcessID value (unique per rank within a session) and seq40
// a process-global monotonic counter — global, not per-device, so hybdev's
// tcp and shm children can never mint the same id. Id 0 is reserved for
// "untraced" (tcpdev eager sends skip allocation while tracing is off).
#pragma once

#include <cstdint>
#include <string>

#include "prof/trace.hpp"

namespace mpcx::prof {

enum class FlightStage : std::uint8_t {
  SendPosted,     ///< send handed to the device (user thread)
  SendWire,       ///< first payload byte committed to the transport
  SendCompleted,  ///< send request completed
  RecvPosted,     ///< receive posted (no corr id yet; rarely recorded)
  RecvMatched,    ///< arrival matched a receive (posted or unexpected)
  RecvCompleted,  ///< receive request completed
};

const char* flight_stage_name(FlightStage stage);

/// Mint a correlation id for a message originated by `identity` (the
/// sender's ProcessID value). Never returns 0.
std::uint64_t alloc_corr_id(std::uint64_t identity);

/// Flight records dropped because a thread's ring filled up.
std::uint64_t dropped_flight_recs();

/// Clear every flight ring (test isolation between traced scenarios). Only
/// safe while no traffic is in flight.
void reset_flight_for_tests();

namespace detail {
void record_flight_slow(std::uint64_t corr, FlightStage stage, std::uint64_t peer,
                        std::int32_t tag, std::int32_t context, std::uint64_t bytes,
                        std::uint64_t aux_ns);
/// Append the recorded lifecycle as trace events ("X" slices + flow s/f
/// pairs) to a dump in progress. Called by dump_trace() under its lock.
void append_flight_events(std::string& out, int pid, bool& first);
extern thread_local std::uint32_t tl_sched_id;
extern thread_local std::uint32_t tl_sched_round;
}  // namespace detail

/// Record one lifecycle event. Free when tracing is off (one relaxed load +
/// branch); corr 0 means the message was never assigned an id — skipped.
inline void record_flight(std::uint64_t corr, FlightStage stage, std::uint64_t peer,
                          std::int32_t tag, std::int32_t context, std::uint64_t bytes,
                          std::uint64_t aux_ns = 0) {
  if (!tracing() || corr == 0) return;
  detail::record_flight_slow(corr, stage, peer, tag, context, bytes, aux_ns);
}

/// Scope guard binding flight records made on this thread to one collective
/// schedule round: records carry {sched_id, round} so a merged trace can
/// attribute each round's sends/recvs to its CollState (ISSUE 6 tentpole).
class SchedScope {
 public:
  SchedScope(std::uint32_t sched_id, std::uint32_t round)
      : prev_id_(detail::tl_sched_id), prev_round_(detail::tl_sched_round) {
    detail::tl_sched_id = sched_id;
    detail::tl_sched_round = round;
  }
  ~SchedScope() {
    detail::tl_sched_id = prev_id_;
    detail::tl_sched_round = prev_round_;
  }
  SchedScope(const SchedScope&) = delete;
  SchedScope& operator=(const SchedScope&) = delete;

 private:
  std::uint32_t prev_id_;
  std::uint32_t prev_round_;
};

}  // namespace mpcx::prof
