// mpcx::prof — PMPI-style profiling hooks.
//
// MPI exposes its profiling layer by letting a tool interpose on every entry
// point (the PMPI_* shift); MPJ Express's follow-up profiler does the same
// with a listener object. MPCX's analog is a process-global Hooks instance:
// tools and tests register one, and the messaging layers invoke it at the
// interesting transitions. The disabled path is a single relaxed load +
// branch per site.
//
// Registration is not synchronized against in-flight traffic: install hooks
// before starting the traffic you want to observe and clear them after it
// has drained (the registry keeps the previous instance alive through the
// swap, so stragglers never touch freed memory).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>

namespace mpcx::prof {

/// What the hook sites know about a message. `peer` is the remote
/// ProcessID's raw value (the source for receives, 0 when unknown).
struct MsgInfo {
  std::uint64_t peer = 0;
  int tag = 0;
  int context = 0;
  std::size_t bytes = 0;
};

/// Override any subset; default implementations do nothing. Callbacks must
/// be thread-safe (they fire from user threads, input handlers, and
/// rendez-write threads alike) and must not call back into MPCX.
class Hooks {
 public:
  virtual ~Hooks() = default;

  /// A send entered a device (isend/issend, any protocol).
  virtual void on_send_begin(const MsgInfo& info) { (void)info; }
  /// A send request completed.
  virtual void on_send_end(const MsgInfo& info) { (void)info; }
  /// A receive was posted to a device.
  virtual void on_recv_begin(const MsgInfo& info) { (void)info; }
  /// A receive request completed (bytes = delivered payload).
  virtual void on_recv_end(const MsgInfo& info) { (void)info; }
  /// A message matched. `was_posted` is true when an arrival met an
  /// already-posted receive, false when a receive drained the unexpected
  /// queue.
  virtual void on_match(const MsgInfo& info, bool was_posted) {
    (void)info;
    (void)was_posted;
  }
  /// A thread blocked waiting for a request (Device wait / Waitany).
  virtual void on_wait() {}
};

namespace detail {
extern std::atomic<Hooks*> g_hooks;
}  // namespace detail

/// The installed hooks, or nullptr (the common, fast case).
inline Hooks* hooks() { return detail::g_hooks.load(std::memory_order_acquire); }

/// Install (or, with nullptr, remove) the process-global hooks.
void set_hooks(std::shared_ptr<Hooks> hooks);

}  // namespace mpcx::prof
