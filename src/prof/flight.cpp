#include "prof/flight.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

namespace mpcx::prof {

const char* flight_stage_name(FlightStage stage) {
  switch (stage) {
    case FlightStage::SendPosted: return "send_posted";
    case FlightStage::SendWire: return "send_wire";
    case FlightStage::SendCompleted: return "send_completed";
    case FlightStage::RecvPosted: return "recv_posted";
    case FlightStage::RecvMatched: return "recv_matched";
    case FlightStage::RecvCompleted: return "recv_completed";
  }
  return "?";
}

std::uint64_t alloc_corr_id(std::uint64_t identity) {
  static std::atomic<std::uint64_t> seq{1};
  const std::uint64_t n = seq.fetch_add(1, std::memory_order_relaxed);
  return ((identity & 0xFFFFFFu) << 40) | (n & ((std::uint64_t{1} << 40) - 1));
}

namespace detail {

thread_local std::uint32_t tl_sched_id = 0;
thread_local std::uint32_t tl_sched_round = 0;

namespace {

struct FlightRec {
  std::uint64_t corr;
  std::uint64_t t_ns;
  std::uint64_t peer;
  std::uint64_t aux_ns;  ///< RecvMatched: the receive's post timestamp
  std::uint64_t bytes;
  std::int32_t tag;
  std::int32_t context;
  std::uint32_t sched_id;
  std::uint32_t round;
  FlightStage stage;
};

/// One thread's flight ring — same single-producer / release-published-count
/// discipline as the span rings (prof.cpp ThreadRing).
struct FlightRing {
  static constexpr std::size_t kCapacity = 1 << 14;

  explicit FlightRing(std::uint32_t tid_value) : tid(tid_value) { recs.resize(kCapacity); }

  std::vector<FlightRec> recs;
  std::atomic<std::size_t> count{0};
  std::uint32_t tid;
  std::atomic<bool> in_use{true};
};

struct FlightState {
  std::mutex mu;
  std::vector<std::unique_ptr<FlightRing>> rings;
  std::uint32_t next_tid = 1000;  // distinct tid namespace from span rings
  std::atomic<std::uint64_t> dropped{0};
};

FlightState& flight_state() {
  static FlightState* state = new FlightState;  // leaked: threads record at exit
  return *state;
}

struct FlightRingHolder {
  FlightRing* ring = nullptr;
  ~FlightRingHolder() {
    if (ring != nullptr) ring->in_use.store(false, std::memory_order_release);
  }
};

FlightRing* acquire_flight_ring() {
  thread_local FlightRingHolder holder;
  if (holder.ring != nullptr) return holder.ring;
  FlightState& state = flight_state();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& ring : state.rings) {
    bool free = !ring->in_use.load(std::memory_order_acquire);
    if (free && ring->count.load(std::memory_order_relaxed) < FlightRing::kCapacity &&
        ring->in_use.exchange(true, std::memory_order_acq_rel) == false) {
      holder.ring = ring.get();
      return holder.ring;
    }
  }
  state.rings.push_back(std::make_unique<FlightRing>(state.next_tid++));
  holder.ring = state.rings.back().get();
  return holder.ring;
}

/// One message's locally observed lifecycle, grouped at dump time.
struct Lifecycle {
  const FlightRec* send_posted = nullptr;
  const FlightRec* send_wire = nullptr;
  const FlightRec* send_completed = nullptr;
  const FlightRec* recv_matched = nullptr;
  const FlightRec* recv_completed = nullptr;
  std::uint32_t send_tid = 0;
  std::uint32_t recv_tid = 0;
};

void append_ts(std::string& out, std::uint64_t ns) {
  char buf[40];
  std::snprintf(buf, sizeof buf, "%llu.%03llu", static_cast<unsigned long long>(ns / 1000),
                static_cast<unsigned long long>(ns % 1000));
  out += buf;
}

void append_corr_args(std::string& out, std::uint64_t corr, const FlightRec& rec) {
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "\"args\":{\"corr\":\"0x%llx\",\"peer\":%llu,\"tag\":%d,\"bytes\":%llu",
                static_cast<unsigned long long>(corr),
                static_cast<unsigned long long>(rec.peer), rec.tag,
                static_cast<unsigned long long>(rec.bytes));
  out += buf;
  if (rec.sched_id != 0) {
    std::snprintf(buf, sizeof buf, ",\"sched\":%u,\"round\":%u", rec.sched_id, rec.round);
    out += buf;
  }
  out += '}';
}

void append_slice(std::string& out, bool& first, const char* name, std::uint64_t corr,
                  const FlightRec& rec, std::uint64_t t0, std::uint64_t t1, int pid,
                  std::uint32_t tid) {
  if (!first) out += ",\n";
  first = false;
  out += "{\"name\":\"";
  out += name;
  out += "\",\"cat\":\"p2p\",\"ph\":\"X\",\"ts\":";
  append_ts(out, t0);
  out += ",\"dur\":";
  append_ts(out, t1 > t0 ? t1 - t0 : 1);
  char buf[64];
  std::snprintf(buf, sizeof buf, ",\"pid\":%d,\"tid\":%u,", pid, tid);
  out += buf;
  append_corr_args(out, corr, rec);
  out += '}';
}

void append_flow(std::string& out, bool& first, char phase, std::uint64_t corr,
                 std::uint64_t ts, int pid, std::uint32_t tid) {
  if (!first) out += ",\n";
  first = false;
  char buf[160];
  std::snprintf(buf, sizeof buf,
                "{\"name\":\"msg\",\"cat\":\"p2p\",\"ph\":\"%c\",%s\"id\":\"0x%llx\",\"ts\":",
                phase, phase == 'f' ? "\"bp\":\"e\"," : "",
                static_cast<unsigned long long>(corr));
  out += buf;
  append_ts(out, ts);
  std::snprintf(buf, sizeof buf, ",\"pid\":%d,\"tid\":%u}", pid, tid);
  out += buf;
}

}  // namespace

void record_flight_slow(std::uint64_t corr, FlightStage stage, std::uint64_t peer,
                        std::int32_t tag, std::int32_t context, std::uint64_t bytes,
                        std::uint64_t aux_ns) {
  FlightRing* ring = acquire_flight_ring();
  const std::size_t at = ring->count.load(std::memory_order_relaxed);
  if (at >= FlightRing::kCapacity) {
    flight_state().dropped.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  ring->recs[at] = FlightRec{corr,  trace_now_ns(), peer,         aux_ns,         bytes,
                             tag,   context,        tl_sched_id,  tl_sched_round, stage};
  ring->count.store(at + 1, std::memory_order_release);
}

void append_flight_events(std::string& out, int pid, bool& first) {
  FlightState& state = flight_state();
  std::vector<FlightRing*> rings;
  {
    std::lock_guard<std::mutex> lock(state.mu);
    rings.reserve(state.rings.size());
    for (auto& ring : state.rings) rings.push_back(ring.get());
  }

  // Group the locally observed records by correlation id. A map (not
  // unordered) keeps dump output deterministic for tests.
  std::map<std::uint64_t, Lifecycle> groups;
  for (FlightRing* ring : rings) {
    const std::size_t count =
        std::min(ring->count.load(std::memory_order_acquire), FlightRing::kCapacity);
    for (std::size_t i = 0; i < count; ++i) {
      const FlightRec& rec = ring->recs[i];
      Lifecycle& life = groups[rec.corr];
      switch (rec.stage) {
        case FlightStage::SendPosted: life.send_posted = &rec; life.send_tid = ring->tid; break;
        case FlightStage::SendWire:
          life.send_wire = &rec;
          if (life.send_tid == 0) life.send_tid = ring->tid;
          break;
        case FlightStage::SendCompleted:
          life.send_completed = &rec;
          if (life.send_tid == 0) life.send_tid = ring->tid;
          break;
        case FlightStage::RecvPosted: break;  // no corr id before the match
        case FlightStage::RecvMatched: life.recv_matched = &rec; life.recv_tid = ring->tid; break;
        case FlightStage::RecvCompleted:
          life.recv_completed = &rec;
          if (life.recv_tid == 0) life.recv_tid = ring->tid;
          break;
      }
    }
  }

  for (const auto& [corr, life] : groups) {
    if (life.send_tid != 0) {
      const FlightRec& any = life.send_posted  ? *life.send_posted
                             : life.send_wire  ? *life.send_wire
                                               : *life.send_completed;
      const std::uint64_t t0 = life.send_posted ? life.send_posted->t_ns : any.t_ns;
      const std::uint64_t t1 =
          life.send_completed ? life.send_completed->t_ns
                              : (life.send_wire ? life.send_wire->t_ns : t0);
      append_slice(out, first, "send", corr, any, t0, t1, pid, life.send_tid);
      const std::uint64_t wire_ts = life.send_wire ? life.send_wire->t_ns : t0;
      append_flow(out, first, 's', corr, wire_ts, pid, life.send_tid);
    }
    if (life.recv_tid != 0) {
      const FlightRec& any = life.recv_matched ? *life.recv_matched : *life.recv_completed;
      const std::uint64_t matched_ts = life.recv_matched ? life.recv_matched->t_ns : any.t_ns;
      // The slice starts at the receive's post time when known (the gap up
      // to the flow arrow IS the match latency), else at the match.
      std::uint64_t t0 = matched_ts;
      if (life.recv_matched && life.recv_matched->aux_ns != 0 &&
          life.recv_matched->aux_ns < t0) {
        t0 = life.recv_matched->aux_ns;
      }
      const std::uint64_t t1 =
          life.recv_completed ? life.recv_completed->t_ns : matched_ts;
      append_slice(out, first, "recv", corr, any, t0, t1, pid, life.recv_tid);
      append_flow(out, first, 'f', corr, matched_ts, pid, life.recv_tid);
    }
  }
}

}  // namespace detail

std::uint64_t dropped_flight_recs() {
  return detail::flight_state().dropped.load(std::memory_order_relaxed);
}

void reset_flight_for_tests() {
  auto& state = detail::flight_state();
  std::lock_guard<std::mutex> lock(state.mu);
  for (auto& ring : state.rings) ring->count.store(0, std::memory_order_release);
  state.dropped.store(0, std::memory_order_relaxed);
}

}  // namespace mpcx::prof
