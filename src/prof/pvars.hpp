// mpcx::prof — MPI_T-inspired performance variables ("pvars").
//
// Where counters (counters.hpp) accumulate event totals, pvars expose the
// *state* of the messaging engine: gauges with high-water marks for queue
// depths and backlogs, and log2-bucket histograms for latencies. The set is
// fixed at compile time (one enum, like Ctr) so a PvarSet is a plain array
// of relaxed atomics with the same overhead discipline as Counters: disabled
// pvars cost one relaxed load + branch per mutation.
//
// Session API (the MPI_T analog): pvar metadata is enumerable via
// pv_info(), every live set is snapshot-able via PvarRegistry::global()
// .snapshot(), individually readable via PvarSet::gauge()/hist(), and
// resettable via PvarSet::reset(). MPCX_STATS=1 prints every set at
// finalize; MPCX_METRICS_MS=N emits periodic JSONL snapshots
// (pvars_jsonl_line) for live monitoring.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "prof/trace.hpp"

namespace mpcx::prof {

namespace detail {
/// Global "track pvars" switch; initialized from MPCX_STATS / MPCX_METRICS_MS.
extern std::atomic<bool> g_pvars;
}  // namespace detail

/// True when pvar mutations are being recorded.
inline bool pvars_enabled() { return detail::g_pvars.load(std::memory_order_relaxed); }

/// Flip pvar tracking at runtime (tests; overrides the environment).
void set_pvars_enabled(bool enabled);

/// True when requests should carry creation timestamps: either the trace or
/// the pvar layer will consume them (match-latency / op-completion
/// histograms, recv lifecycle spans).
inline bool observing() { return tracing() || pvars_enabled(); }

/// Everything one set tracks. Gauges first, then histograms; pv_info() is
/// the authoritative class map.
enum class Pv : std::size_t {
  PostedRecvDepth,  ///< gauge: posted-but-unmatched receives
  UnexpectedDepth,  ///< gauge: messages queued with no matching receive
  UnexpectedBytes,  ///< gauge: payload bytes held by the unexpected queue
  SendBacklog,      ///< gauge: sends accepted but not yet on the wire
  RndvSlots,        ///< gauge: rendezvous handshakes in flight
  InflightScheds,   ///< gauge: nonblocking-collective schedules outstanding
  RetransmitBufferBytes,  ///< gauge: unacked frame bytes held for replay (reliable tcpdev)
  OpenConnections,  ///< gauge: write channels currently open (hwm = peak concurrent dials)
  TopoLevels,       ///< gauge: exchange levels of the last hierarchical collective (hwm = deepest)
  MatchLatencyNs,   ///< histogram: receive post (or arrival) -> match
  OpCompletionNs,   ///< histogram: request creation -> completion
  Count
};

constexpr std::size_t kPvCount = static_cast<std::size_t>(Pv::Count);

enum class PvClass : std::uint8_t { Gauge, Histogram };

struct PvInfo {
  const char* name;  ///< stable snake_case identifier
  PvClass cls;
  const char* desc;  ///< one-line semantics
};

/// Metadata for one pvar (the MPI_T "pvar_get_info" analog).
const PvInfo& pv_info(Pv v);

/// log2 buckets: bucket i counts values with bit_width(value) == i, i.e.
/// value in [2^(i-1), 2^i). 48 buckets cover nanosecond latencies past 3 days.
constexpr std::size_t kPvHistBuckets = 48;

/// One thread-safe set of pvars. Mutations are relaxed atomics gated on
/// pvars_enabled(); reads may race writers (reporting tolerance).
class PvarSet {
 public:
  struct GaugeValue {
    std::uint64_t current = 0;
    std::uint64_t hwm = 0;
  };
  struct HistValue {
    std::uint64_t count = 0;
    std::uint64_t sum = 0;
    std::array<std::uint64_t, kPvHistBuckets> buckets{};
  };

  /// Set a gauge to an absolute value (queue sizes are read under the
  /// owning device's lock, so an absolute store is exact) and raise its HWM.
  void gauge_set(Pv v, std::uint64_t value) {
    if (!pvars_enabled()) return;
    auto& slot = gauges_[index(v)];
    slot.current.store(value, std::memory_order_relaxed);
    raise_hwm(slot, value);
  }

  /// Adjust a gauge by a delta (counters kept outside any one lock) and
  /// raise its HWM.
  void gauge_add(Pv v, std::int64_t delta) {
    if (!pvars_enabled()) return;
    auto& slot = gauges_[index(v)];
    const std::uint64_t now =
        slot.current.fetch_add(static_cast<std::uint64_t>(delta),
                               std::memory_order_relaxed) +
        static_cast<std::uint64_t>(delta);
    raise_hwm(slot, now);
  }

  /// Record one observation into a histogram pvar.
  void observe(Pv v, std::uint64_t value) {
    if (!pvars_enabled()) return;
    auto& h = hists_[index(v)];
    std::size_t bucket = 0;
    while ((std::uint64_t{1} << bucket) <= value && bucket + 1 < kPvHistBuckets) ++bucket;
    h.buckets[bucket].fetch_add(1, std::memory_order_relaxed);
    h.count.fetch_add(1, std::memory_order_relaxed);
    h.sum.fetch_add(value, std::memory_order_relaxed);
  }

  GaugeValue gauge(Pv v) const {
    const auto& slot = gauges_[index(v)];
    return GaugeValue{slot.current.load(std::memory_order_relaxed),
                      slot.hwm.load(std::memory_order_relaxed)};
  }

  HistValue hist(Pv v) const {
    const auto& h = hists_[index(v)];
    HistValue out;
    out.count = h.count.load(std::memory_order_relaxed);
    out.sum = h.sum.load(std::memory_order_relaxed);
    for (std::size_t i = 0; i < kPvHistBuckets; ++i) {
      out.buckets[i] = h.buckets[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  /// Reset histograms and HWMs; gauge currents are live state and stay.
  void reset() {
    for (auto& slot : gauges_) slot.hwm.store(0, std::memory_order_relaxed);
    for (auto& h : hists_) {
      h.count.store(0, std::memory_order_relaxed);
      h.sum.store(0, std::memory_order_relaxed);
      for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
    }
  }

 private:
  struct GaugeSlot {
    std::atomic<std::uint64_t> current{0};
    std::atomic<std::uint64_t> hwm{0};
  };
  struct HistSlot {
    std::atomic<std::uint64_t> count{0};
    std::atomic<std::uint64_t> sum{0};
    std::array<std::atomic<std::uint64_t>, kPvHistBuckets> buckets{};
  };

  static std::size_t index(Pv v) { return static_cast<std::size_t>(v); }

  static void raise_hwm(GaugeSlot& slot, std::uint64_t value) {
    std::uint64_t current = slot.hwm.load(std::memory_order_relaxed);
    while (value > current &&
           !slot.hwm.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
  }

  std::array<GaugeSlot, kPvCount> gauges_{};
  std::array<HistSlot, kPvCount> hists_{};
};

/// Process-global registry of live pvar sets, keyed by the same labels as
/// the counter registry ("tcpdev", "shmdev", "hybdev", "core/rank<i>", ...).
class PvarRegistry {
 public:
  static PvarRegistry& global();

  std::shared_ptr<PvarSet> create(std::string label);

  struct Entry {
    std::string label;
    std::shared_ptr<PvarSet> set;
  };

  /// Every set still alive (strong references; short-lived use only).
  std::vector<Entry> snapshot() const;

 private:
  mutable std::mutex mu_;
  mutable std::vector<std::pair<std::string, std::weak_ptr<PvarSet>>> entries_;
};

/// The process-wide set backing cross-device histograms (match latency, op
/// completion) fed from the request completion choke points. Label "proc".
PvarSet& proc_pvars();

/// Histogram feeders used by DevRequestState (request.hpp). Gated on
/// pvars_enabled() internally.
void observe_match_latency(std::uint64_t ns);
void observe_op_completion(std::uint64_t ns);

/// Print one set's human-readable summary (appended to the MPCX_STATS
/// output) to stderr as a single write.
void report_pvars(const std::string& label, const PvarSet& set);

/// One JSONL line snapshotting every live pvar set (the MPCX_METRICS_MS
/// record format): {"t_ns":..,"rank":..,"pvars":{label:{name:{...}}}}.
std::string pvars_jsonl_line(int rank, std::uint64_t t_ns);

}  // namespace mpcx::prof
