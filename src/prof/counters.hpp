// mpcx::prof — counters.
//
// A Counters block is a fixed array of relaxed atomic counters covering the
// events the paper's evaluation cares about (eager vs. rendezvous crossover,
// ANY_SOURCE matching cost, buffering overheads, Waitany contention —
// Secs. IV-C/IV-E). Every device instance and every World owns one block and
// registers it with the global Registry, which backs the MPCX_STATS=1
// finalize summary.
//
// Overhead discipline: when stats are disabled (the default), every mutation
// is a single relaxed atomic load + branch — no atomic RMW, no lock — so the
// hot paths stay within the <2% budget the acceptance criteria demand.
#pragma once

#include <array>
#include <atomic>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

namespace mpcx::prof {

namespace detail {
/// Global "count events" switch; initialized from MPCX_STATS in prof.cpp.
extern std::atomic<bool> g_counting;
}  // namespace detail

/// True when counter mutations are being recorded (MPCX_STATS=1 or
/// set_stats_enabled(true)).
inline bool counting() { return detail::g_counting.load(std::memory_order_relaxed); }

/// Alias used by report sites ("should the finalize summary print?").
inline bool stats_enabled() { return counting(); }

/// Flip counting at runtime (tests; overrides the MPCX_STATS environment).
void set_stats_enabled(bool enabled);

/// Everything one block counts. Kept in one enum so a block is a plain
/// array: adding a counter means adding a line here and in ctr_name().
enum class Ctr : std::size_t {
  MsgsSent,            ///< messages handed to a device send entry point
  BytesSent,           ///< payload bytes (static + dynamic) of those messages
  MsgsRecvd,           ///< receive requests completed (not cancelled)
  BytesRecvd,          ///< payload bytes delivered to receive buffers
  EagerSends,          ///< sends that took the eager protocol
  RndvSends,           ///< sends that took the rendezvous / synchronous path
  PostedMatches,       ///< arrivals matched against an already-posted receive
  UnexpectedMatches,   ///< receives matched against the unexpected queue
  UnexpectedDepthHwm,  ///< high-water mark of the unexpected-message queue
  ProbeCalls,          ///< blocking probe() calls
  IprobeCalls,         ///< iprobe() calls
  PeekWakeups,         ///< completions handed out by peek() (Waitany fuel)
  PoolHits,            ///< buffer-pool get() served from a bin
  PoolMisses,          ///< buffer-pool get() that had to allocate
  CollectiveCalls,     ///< collective operations entered on a communicator
  PackBytes,           ///< bytes packed into wire buffers (send side)
  UnpackBytes,         ///< bytes unpacked out of wire buffers (receive side)
  PackBytesAvoided,    ///< payload bytes sent zero-copy (no staging pack)
  UnpackBytesAvoided,  ///< payload bytes landed directly in user buffers
  ZeroCopySends,       ///< sends that took the zero-copy contiguous fast path
  ZeroCopyRecvs,       ///< receives delivered directly into the user buffer
  EagerThreshold,      ///< effective eager/rendezvous crossover (bytes, hwm)
  FaultsInjected,      ///< faults (drop/corrupt/delay/reset) injected by support::faults
  IoRetries,           ///< connect/accept attempts retried during bootstrap
  OpTimeouts,          ///< blocking operations expired under MPCX_OP_TIMEOUT_MS
  ChecksumFailures,    ///< frames rejected by CRC32C / magic / version checks
  HybIntraMsgs,        ///< hybdev sends/receives routed over the intra-node child
  HybInterMsgs,        ///< hybdev sends/receives routed over the inter-node child
  HierarchicalColls,   ///< collectives that took the n-level topology-aware path
  SinglecopyColls,     ///< collectives whose node-local leg used the shared single-copy buffer
  LevelLocalBytes,     ///< payload bytes moved through the single-copy buffer (no device hop)
  NbCollsStarted,      ///< nonblocking collectives launched (Ibcast, Iallreduce, ...)
  NbCollsCompleted,    ///< nonblocking collectives finalized through their Request
  SchedRounds,         ///< collective-schedule rounds completed by the progress engine
  Reconnects,          ///< tcpdev channels re-established after a failure (redials that succeeded)
  FramesRetransmitted, ///< frames replayed from the retransmit buffer after a reconnect
  FramesDuplicateDropped, ///< replayed frames suppressed by receiver sequence dedup
  ConnsOpened,         ///< write channels dialed (lazy first-dials + flat-mode pre-dials)
  ConnsEvicted,        ///< write channels closed by the connection manager (LRU cap / idle)
  ConnsRedialed,       ///< write channels re-dialed after an eviction, on next send
  EpollWakeups,        ///< progress-engine wakeups with at least one ready channel
  SelfDeliveries,      ///< self-sends delivered in-process (no loopback socket)
  Count
};

constexpr std::size_t kCtrCount = static_cast<std::size_t>(Ctr::Count);

/// Stable snake_case name for summaries and tests.
const char* ctr_name(Ctr counter);

/// One thread-safe block of counters. add()/record_max() are safe from any
/// thread; get()/snapshot() may race with writers (relaxed reads), which is
/// fine for reporting.
class Counters {
 public:
  void add(Ctr counter, std::uint64_t delta = 1) {
    if (!counting()) return;
    values_[index(counter)].fetch_add(delta, std::memory_order_relaxed);
  }

  /// Raise a high-water-mark counter to `value` if it is the new maximum.
  void record_max(Ctr counter, std::uint64_t value) {
    if (!counting()) return;
    auto& slot = values_[index(counter)];
    std::uint64_t current = slot.load(std::memory_order_relaxed);
    while (value > current &&
           !slot.compare_exchange_weak(current, value, std::memory_order_relaxed)) {
    }
  }

  std::uint64_t get(Ctr counter) const {
    return values_[index(counter)].load(std::memory_order_relaxed);
  }

  std::array<std::uint64_t, kCtrCount> snapshot() const {
    std::array<std::uint64_t, kCtrCount> out{};
    for (std::size_t i = 0; i < kCtrCount; ++i) {
      out[i] = values_[i].load(std::memory_order_relaxed);
    }
    return out;
  }

  void reset() {
    for (auto& value : values_) value.store(0, std::memory_order_relaxed);
  }

 private:
  static std::size_t index(Ctr counter) { return static_cast<std::size_t>(counter); }

  std::array<std::atomic<std::uint64_t>, kCtrCount> values_{};
};

/// Process-global registry of live counter blocks, keyed by a free-form
/// domain label ("tcpdev", "shmdev", "core", ...). Blocks are owned by their
/// creators (devices, Worlds) via shared_ptr; the registry keeps weak
/// references so dead blocks fall out of snapshots automatically.
class Registry {
 public:
  static Registry& global();

  /// Create and register a new block under `label`.
  std::shared_ptr<Counters> create(std::string label);

  struct Entry {
    std::string label;
    std::array<std::uint64_t, kCtrCount> values;
  };

  /// Snapshot of every block still alive.
  std::vector<Entry> snapshot() const;

  /// Print a summary of every live block to `out` (stderr when null).
  void report(std::FILE* out = nullptr) const;

 private:
  mutable std::mutex mu_;
  mutable std::vector<std::pair<std::string, std::weak_ptr<Counters>>> entries_;
};

/// Print one block's human-readable summary (the MPCX_STATS=1 format) to
/// stderr as a single write, so concurrent ranks do not interleave.
void report_counters(const std::string& label, const Counters& counters);

}  // namespace mpcx::prof
