#include "bufx/buffer.hpp"

#include <cstring>

namespace mpcx::buf {

Buffer::Buffer(std::size_t capacity, std::size_t header_reserve)
    : storage_(header_reserve + capacity), header_reserve_(header_reserve), capacity_(capacity) {}

void Buffer::require_write(const char* op) const {
  if (mode_ != Mode::Write) throw BufferError(std::string(op) + ": buffer not in write mode");
}

void Buffer::require_read(const char* op) const {
  if (mode_ != Mode::Read) throw BufferError(std::string(op) + ": buffer not in read mode");
}

std::byte* Buffer::begin_section(TypeCode type, std::size_t count, std::size_t elsize) {
  require_write("write");
  const std::size_t payload = count * elsize;
  const std::size_t need = kSectionHeaderBytes + payload;
  const std::size_t start = static_size_;
  const std::size_t end = start + need;
  if (end > capacity_) {
    throw BufferError("static section overflow: need " + std::to_string(end) + " bytes, capacity " +
                      std::to_string(capacity_));
  }
  std::byte* base = storage_.data() + header_reserve_ + start;
  base[0] = static_cast<std::byte>(type);
  base[1] = std::byte{0};
  store_wire<std::uint16_t>(base + 2, 0);
  store_wire<std::uint32_t>(base + 4, static_cast<std::uint32_t>(count));
  static_size_ = end;
  return base + kSectionHeaderBytes;
}

const std::byte* Buffer::open_section(TypeCode type, std::size_t count, std::size_t elsize) {
  require_read("read");
  const auto info = peek_section();
  if (!info) throw BufferError("read: no section remaining");
  if (info->type != type) {
    throw BufferError("read: section holds " + type_code_name(info->type) + ", requested " +
                      type_code_name(type));
  }
  if (info->count != count) {
    throw BufferError("read: section has " + std::to_string(info->count) + " elements, requested " +
                      std::to_string(count));
  }
  const std::byte* payload = storage_.data() + header_reserve_ + read_pos_ + kSectionHeaderBytes;
  read_pos_ += kSectionHeaderBytes + count * elsize;
  return payload;
}

std::optional<SectionInfo> Buffer::peek_section() const {
  require_read("peek_section");
  if (read_pos_ >= static_size_) return std::nullopt;
  if (read_pos_ + kSectionHeaderBytes > static_size_) {
    throw BufferError("peek_section: truncated section header");
  }
  const std::byte* base = storage_.data() + header_reserve_ + read_pos_;
  const auto raw_type = static_cast<std::uint8_t>(base[0]);
  if (raw_type < 1 || raw_type > 8) {
    throw BufferError("peek_section: corrupt type code " + std::to_string(raw_type));
  }
  const auto type = static_cast<TypeCode>(raw_type);
  const auto count = static_cast<std::size_t>(load_wire<std::uint32_t>(base + 4));
  if (read_pos_ + kSectionHeaderBytes + count * type_code_size(type) > static_size_) {
    throw BufferError("peek_section: section payload exceeds static region");
  }
  return SectionInfo{type, count};
}

void Buffer::write_object_bytes(std::span<const std::byte> encoded) {
  require_write("write_object_bytes");
  const std::size_t mark = dynamic_.size();
  dynamic_.resize(mark + 4 + encoded.size());
  store_wire<std::uint32_t>(dynamic_.data() + mark, static_cast<std::uint32_t>(encoded.size()));
  std::memcpy(dynamic_.data() + mark + 4, encoded.data(), encoded.size());
  ++object_count_;
}

std::span<const std::byte> Buffer::next_object_bytes() {
  require_read("read_object");
  if (objects_read_ >= object_count_) throw BufferError("read_object: no object remaining");
  if (dyn_read_pos_ + 4 > dynamic_.size()) throw BufferError("read_object: truncated prefix");
  const auto size =
      static_cast<std::size_t>(load_wire<std::uint32_t>(dynamic_.data() + dyn_read_pos_));
  if (dyn_read_pos_ + 4 + size > dynamic_.size()) {
    throw BufferError("read_object: object exceeds dynamic region");
  }
  std::span<const std::byte> view{dynamic_.data() + dyn_read_pos_ + 4, size};
  dyn_read_pos_ += 4 + size;
  ++objects_read_;
  return view;
}

std::size_t Buffer::objects_remaining() const {
  require_read("objects_remaining");
  return object_count_ - objects_read_;
}

void Buffer::commit() {
  require_write("commit");
  mode_ = Mode::Read;
  read_pos_ = 0;
  dyn_read_pos_ = 0;
  objects_read_ = 0;
}

void Buffer::clear() {
  mode_ = Mode::Write;
  static_size_ = 0;
  read_pos_ = 0;
  dyn_read_pos_ = 0;
  object_count_ = 0;
  objects_read_ = 0;
  dynamic_.clear();
}

std::span<std::byte> Buffer::prepare_static(std::size_t size) {
  if (size > capacity_) {
    throw BufferError("prepare_static: incoming payload (" + std::to_string(size) +
                      " bytes) exceeds capacity " + std::to_string(capacity_));
  }
  mode_ = Mode::Write;
  static_size_ = size;
  return {storage_.data() + header_reserve_, size};
}

std::span<std::byte> Buffer::prepare_dynamic(std::size_t size) {
  dynamic_.resize(size);
  return {dynamic_.data(), size};
}

void Buffer::seal_received() {
  // Re-derive the object count by walking the length prefixes; this also
  // validates that the dynamic payload is well formed before any read.
  object_count_ = 0;
  std::size_t pos = 0;
  while (pos < dynamic_.size()) {
    if (pos + 4 > dynamic_.size()) throw BufferError("seal_received: truncated object prefix");
    const auto size = static_cast<std::size_t>(load_wire<std::uint32_t>(dynamic_.data() + pos));
    pos += 4 + size;
    if (pos > dynamic_.size()) throw BufferError("seal_received: object exceeds dynamic region");
    ++object_count_;
  }
  mode_ = Mode::Read;
  read_pos_ = 0;
  dyn_read_pos_ = 0;
  objects_read_ = 0;
}

void Buffer::copy_in(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
}

void Buffer::copy_out(void* dst, const void* src, std::size_t bytes) {
  std::memcpy(dst, src, bytes);
}

}  // namespace mpcx::buf
