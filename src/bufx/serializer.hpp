// Object serialization for the buffer's dynamic section.
//
// MPJ Express relies on JDK default serialization for Java objects; our
// analog is a small explicit codec: types either are arithmetic / standard
// containers (handled generically) or model the Serializable concept by
// providing serialize(ByteSink&) and a static deserialize(ByteSource&).
// Encoded bytes land in a Buffer's dynamic section and travel as the second
// message segment, exactly like mpjbuf's dynamic section.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <map>
#include <span>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "support/endian.hpp"
#include "support/error.hpp"

namespace mpcx::buf {

/// Append-only byte stream used while encoding an object.
class ByteSink {
 public:
  explicit ByteSink(std::vector<std::byte>& out) : out_(out) {}

  void put_bytes(const void* data, std::size_t size) {
    const auto* bytes = static_cast<const std::byte*>(data);
    out_.insert(out_.end(), bytes, bytes + size);
  }

  template <typename T>
    requires std::is_arithmetic_v<T>
  void put(T value) {
    if constexpr (std::is_integral_v<T>) {
      const T wire = to_wire(value);
      put_bytes(&wire, sizeof(wire));
    } else {
      // IEEE-754 floats are stored via their integral bit pattern.
      using Bits = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;
      Bits bits;
      std::memcpy(&bits, &value, sizeof(bits));
      put(bits);
    }
  }

  void put_string(const std::string& text) {
    put<std::uint32_t>(static_cast<std::uint32_t>(text.size()));
    put_bytes(text.data(), text.size());
  }

  std::size_t size() const { return out_.size(); }

 private:
  std::vector<std::byte>& out_;
};

/// Consuming view over encoded bytes while decoding an object.
class ByteSource {
 public:
  explicit ByteSource(std::span<const std::byte> data) : data_(data) {}

  void get_bytes(void* out, std::size_t size) {
    if (pos_ + size > data_.size()) throw BufferError("ByteSource: read past end");
    std::memcpy(out, data_.data() + pos_, size);
    pos_ += size;
  }

  template <typename T>
    requires std::is_arithmetic_v<T>
  T get() {
    if constexpr (std::is_integral_v<T>) {
      T wire;
      get_bytes(&wire, sizeof(wire));
      return from_wire(wire);
    } else {
      using Bits = std::conditional_t<sizeof(T) == 4, std::uint32_t, std::uint64_t>;
      const Bits bits = get<Bits>();
      T value;
      std::memcpy(&value, &bits, sizeof(value));
      return value;
    }
  }

  std::string get_string() {
    const auto size = get<std::uint32_t>();
    std::string text(size, '\0');
    get_bytes(text.data(), size);
    return text;
  }

  std::size_t remaining() const { return data_.size() - pos_; }
  bool exhausted() const { return remaining() == 0; }

 private:
  std::span<const std::byte> data_;
  std::size_t pos_ = 0;
};

/// User types opt into object transport by modeling this concept.
template <typename T>
concept Serializable = requires(const T& value, ByteSink& sink, ByteSource& source) {
  { value.serialize(sink) } -> std::same_as<void>;
  { T::deserialize(source) } -> std::same_as<T>;
};

// ---- generic encode/decode -------------------------------------------------
//
// encode_value / decode_value handle arithmetic types, std::string,
// std::pair, std::vector and std::map recursively, and fall back to the
// Serializable concept for user types.

template <typename T>
void encode_value(ByteSink& sink, const T& value);

template <typename T>
T decode_value(ByteSource& source);

namespace detail {

template <typename T>
struct Codec {
  static void encode(ByteSink& sink, const T& value)
    requires Serializable<T>
  {
    value.serialize(sink);
  }
  static T decode(ByteSource& source)
    requires Serializable<T>
  {
    return T::deserialize(source);
  }
};

template <typename T>
  requires std::is_arithmetic_v<T>
struct ArithmeticCodec {
  static void encode(ByteSink& sink, const T& value) { sink.put(value); }
  static T decode(ByteSource& source) { return source.get<T>(); }
};

template <typename T>
  requires std::is_arithmetic_v<T>
struct Codec<T> : ArithmeticCodec<T> {};

template <>
struct Codec<std::string> {
  static void encode(ByteSink& sink, const std::string& value) { sink.put_string(value); }
  static std::string decode(ByteSource& source) { return source.get_string(); }
};

template <typename A, typename B>
struct Codec<std::pair<A, B>> {
  static void encode(ByteSink& sink, const std::pair<A, B>& value) {
    encode_value(sink, value.first);
    encode_value(sink, value.second);
  }
  static std::pair<A, B> decode(ByteSource& source) {
    A first = decode_value<A>(source);
    B second = decode_value<B>(source);
    return {std::move(first), std::move(second)};
  }
};

template <typename T>
struct Codec<std::vector<T>> {
  static void encode(ByteSink& sink, const std::vector<T>& value) {
    sink.put<std::uint32_t>(static_cast<std::uint32_t>(value.size()));
    for (const T& item : value) encode_value(sink, item);
  }
  static std::vector<T> decode(ByteSource& source) {
    const auto size = source.get<std::uint32_t>();
    std::vector<T> out;
    out.reserve(size);
    for (std::uint32_t i = 0; i < size; ++i) out.push_back(decode_value<T>(source));
    return out;
  }
};

template <typename K, typename V>
struct Codec<std::map<K, V>> {
  static void encode(ByteSink& sink, const std::map<K, V>& value) {
    sink.put<std::uint32_t>(static_cast<std::uint32_t>(value.size()));
    for (const auto& [key, val] : value) {
      encode_value(sink, key);
      encode_value(sink, val);
    }
  }
  static std::map<K, V> decode(ByteSource& source) {
    const auto size = source.get<std::uint32_t>();
    std::map<K, V> out;
    for (std::uint32_t i = 0; i < size; ++i) {
      K key = decode_value<K>(source);
      V val = decode_value<V>(source);
      out.emplace(std::move(key), std::move(val));
    }
    return out;
  }
};

}  // namespace detail

template <typename T>
void encode_value(ByteSink& sink, const T& value) {
  detail::Codec<T>::encode(sink, value);
}

template <typename T>
T decode_value(ByteSource& source) {
  return detail::Codec<T>::decode(source);
}

/// Encode a value to a standalone byte vector.
template <typename T>
std::vector<std::byte> encode_to_bytes(const T& value) {
  std::vector<std::byte> out;
  ByteSink sink(out);
  encode_value(sink, value);
  return out;
}

/// Decode a value from a byte span (must consume it exactly).
template <typename T>
T decode_from_bytes(std::span<const std::byte> data) {
  ByteSource source(data);
  T value = decode_value<T>(source);
  if (!source.exhausted()) throw BufferError("decode_from_bytes: trailing bytes");
  return value;
}

}  // namespace mpcx::buf
