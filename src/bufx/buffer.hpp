// Message buffer — the C++ analog of mpjbuf (Sec. III / IV-C of the paper).
//
// A Buffer carries one message. It has:
//
//  * a fixed-capacity STATIC region holding typed sections of primitive
//    elements (the paper packs primitives into a direct ByteBuffer; we pack
//    into one contiguous allocation that devices can hand to the wire or to
//    mxsim without further copies), and
//  * a growable DYNAMIC region holding length-prefixed serialized objects
//    (the analog of Java object serialization).
//
// A device may reserve `header_reserve` bytes at the very front of the
// allocation and write its frame header there (header_region()), so a send
// is a single contiguous write of [header | static payload] followed by the
// dynamic payload — this is why the paper reports getSendOverhead() /
// getRecvOverhead() through the xdev API.
//
// The buffer is moded: writes are legal only in Write mode, reads only in
// Read mode. commit() seals a locally packed buffer for reading; receivers
// instead fill the regions via prepare_static/prepare_dynamic and then call
// seal_received().
//
// Static region layout: a sequence of sections (no padding, so the wire
// length of a single-section message determines its element count exactly —
// Status::Get_count relies on this):
//   [u8 type][u8 0][u16 0][u32 count][count * elsize payload]
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "bufx/serializer.hpp"
#include "bufx/type_codes.hpp"
#include "support/endian.hpp"
#include "support/error.hpp"

namespace mpcx::buf {

/// Description of the next section available for reading.
struct SectionInfo {
  TypeCode type;
  std::size_t count;
};

/// Encode one section header ([u8 type][u8 0][u16 0][u32 count]) into an
/// 8-byte area. Zero-copy sends place this prefix before raw user payload so
/// the wire bytes are identical to a packed single-section message.
inline void encode_section_header(std::span<std::byte> out, TypeCode type, std::uint32_t count) {
  if (out.size() < 8) throw BufferError("encode_section_header: span too small");
  out[0] = static_cast<std::byte>(type);
  out[1] = std::byte{0};
  store_wire<std::uint16_t>(out.data() + 2, 0);
  store_wire<std::uint32_t>(out.data() + 4, count);
}

/// Decode an 8-byte section header; nullopt on an invalid type code.
inline std::optional<SectionInfo> decode_section_header(std::span<const std::byte> in) {
  if (in.size() < 8) return std::nullopt;
  const auto raw_type = static_cast<std::uint8_t>(in[0]);
  if (raw_type < 1 || raw_type > 8) return std::nullopt;
  return SectionInfo{static_cast<TypeCode>(raw_type),
                     static_cast<std::size_t>(load_wire<std::uint32_t>(in.data() + 4))};
}

class Buffer {
 public:
  static constexpr std::size_t kSectionHeaderBytes = 8;
  static constexpr std::size_t kAlignment = 8;

  /// Create a buffer whose static region can hold `capacity` bytes of
  /// sections, with `header_reserve` untyped bytes up front for the device.
  explicit Buffer(std::size_t capacity, std::size_t header_reserve = 0);

  Buffer(const Buffer&) = delete;
  Buffer& operator=(const Buffer&) = delete;
  Buffer(Buffer&&) noexcept = default;
  Buffer& operator=(Buffer&&) noexcept = default;

  // ---- write mode ----------------------------------------------------------

  /// Append one typed section of primitive elements.
  template <Primitive T>
  void write(std::span<const T> values) {
    std::byte* dst = begin_section(type_code_of<T>(), values.size(), sizeof(T));
    copy_in(dst, values.data(), values.size() * sizeof(T));
  }

  /// Append a strided section: `blocks` blocks of `blocklen` elements taken
  /// from base + b*stride (stride in elements). This is the gather step the
  /// paper describes for the vector derived datatype (Sec. IV-C).
  template <Primitive T>
  void write_strided(const T* base, std::size_t blocks, std::size_t blocklen,
                     std::ptrdiff_t stride) {
    std::byte* dst = begin_section(type_code_of<T>(), blocks * blocklen, sizeof(T));
    for (std::size_t b = 0; b < blocks; ++b) {
      copy_in(dst, base + static_cast<std::ptrdiff_t>(b) * stride, blocklen * sizeof(T));
      dst += blocklen * sizeof(T);
    }
  }

  /// Append a gather section: element i is taken from base + offsets[i]
  /// (offsets in elements). Used for the indexed/struct derived datatypes.
  template <Primitive T>
  void write_gather(const T* base, std::span<const std::ptrdiff_t> offsets) {
    std::byte* dst = begin_section(type_code_of<T>(), offsets.size(), sizeof(T));
    for (const std::ptrdiff_t off : offsets) {
      copy_in(dst, base + off, sizeof(T));
      dst += sizeof(T);
    }
  }

  /// Serialize one object into the dynamic section.
  template <typename T>
  void write_object(const T& value) {
    require_write("write_object");
    const std::size_t mark = dynamic_.size();
    dynamic_.resize(mark + 4);  // placeholder for the length prefix
    ByteSink sink(dynamic_);
    encode_value(sink, value);
    store_wire<std::uint32_t>(dynamic_.data() + mark,
                              static_cast<std::uint32_t>(dynamic_.size() - mark - 4));
    ++object_count_;
  }

  /// Append one pre-encoded object payload.
  void write_object_bytes(std::span<const std::byte> encoded);

  /// Seal a locally packed buffer; switches to Read mode.
  void commit();

  // ---- read mode ------------------------------------------------------------

  /// Type and element count of the next unread section, if any.
  std::optional<SectionInfo> peek_section() const;

  /// Read the next section into `values` (must match type and count exactly).
  template <Primitive T>
  void read(std::span<T> values) {
    const std::byte* src = open_section(type_code_of<T>(), values.size(), sizeof(T));
    copy_out(values.data(), src, values.size() * sizeof(T));
  }

  /// Scatter the next section into strided blocks (inverse of write_strided).
  template <Primitive T>
  void read_strided(T* base, std::size_t blocks, std::size_t blocklen, std::ptrdiff_t stride) {
    const std::byte* src = open_section(type_code_of<T>(), blocks * blocklen, sizeof(T));
    for (std::size_t b = 0; b < blocks; ++b) {
      copy_out(base + static_cast<std::ptrdiff_t>(b) * stride, src, blocklen * sizeof(T));
      src += blocklen * sizeof(T);
    }
  }

  /// Scatter the next section to base + offsets[i] (inverse of write_gather).
  template <Primitive T>
  void read_scatter(T* base, std::span<const std::ptrdiff_t> offsets) {
    const std::byte* src = open_section(type_code_of<T>(), offsets.size(), sizeof(T));
    for (const std::ptrdiff_t off : offsets) {
      copy_out(base + off, src, sizeof(T));
      src += sizeof(T);
    }
  }

  /// Deserialize the next object from the dynamic section.
  template <typename T>
  T read_object() {
    const auto encoded = next_object_bytes();
    return decode_from_bytes<T>(encoded);
  }

  /// Raw bytes of the next dynamic-section object.
  std::span<const std::byte> next_object_bytes();

  /// Number of objects remaining to read in the dynamic section.
  std::size_t objects_remaining() const;

  // ---- lifecycle -------------------------------------------------------------

  /// Reset to an empty Write-mode buffer (keeps the allocation).
  void clear();

  bool in_write_mode() const { return mode_ == Mode::Write; }
  bool in_read_mode() const { return mode_ == Mode::Read; }

  // ---- device access ----------------------------------------------------------

  std::size_t header_reserve() const { return header_reserve_; }
  std::size_t capacity() const { return capacity_; }

  /// Mutable view of the device header prefix.
  std::span<std::byte> header_region() { return {storage_.data(), header_reserve_}; }

  /// Committed static payload (excludes the header prefix).
  std::span<const std::byte> static_payload() const {
    return {storage_.data() + header_reserve_, static_size_};
  }

  /// Header prefix and static payload as one contiguous wire segment.
  std::span<const std::byte> framed_payload() const {
    return {storage_.data(), header_reserve_ + static_size_};
  }

  /// Committed dynamic payload.
  std::span<const std::byte> dynamic_payload() const { return {dynamic_.data(), dynamic_.size()}; }

  std::size_t static_size() const { return static_size_; }
  std::size_t dynamic_size() const { return dynamic_.size(); }

  /// Receiver path: expose `size` writable bytes for the incoming static
  /// payload. Invalidates any packed content.
  std::span<std::byte> prepare_static(std::size_t size);

  /// Receiver path: expose `size` writable bytes for the incoming dynamic
  /// payload.
  std::span<std::byte> prepare_dynamic(std::size_t size);

  /// Receiver path: after the regions are filled from the wire, switch to
  /// Read mode (re-scans the dynamic section for object boundaries).
  void seal_received();

 private:
  enum class Mode { Write, Read };

  void require_write(const char* op) const;
  void require_read(const char* op) const;

  /// Reserve space for a section header + payload; returns payload cursor.
  std::byte* begin_section(TypeCode type, std::size_t count, std::size_t elsize);

  /// Validate and open the next section for reading; returns payload cursor.
  const std::byte* open_section(TypeCode type, std::size_t count, std::size_t elsize);

  static void copy_in(void* dst, const void* src, std::size_t bytes);
  static void copy_out(void* dst, const void* src, std::size_t bytes);

  std::vector<std::byte> storage_;  ///< header_reserve_ + capacity_ bytes
  std::vector<std::byte> dynamic_;
  std::size_t header_reserve_;
  std::size_t capacity_;
  std::size_t static_size_ = 0;   ///< bytes of committed sections
  std::size_t read_pos_ = 0;      ///< cursor into the static payload (Read mode)
  std::size_t dyn_read_pos_ = 0;  ///< cursor into the dynamic payload (Read mode)
  std::size_t object_count_ = 0;
  std::size_t objects_read_ = 0;
  Mode mode_ = Mode::Write;
};

}  // namespace mpcx::buf
