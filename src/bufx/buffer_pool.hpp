// Buffer pooling.
//
// mpjbuf recycles direct ByteBuffers because allocating them is expensive;
// our equivalent avoids repeated heap allocation on hot send/recv paths.
// Buffers are binned by power-of-two capacity; get() returns the smallest
// pooled buffer that fits (or allocates), put() clears and recycles.
#pragma once

#include <cstddef>
#include <memory>
#include <mutex>
#include <unordered_map>
#include <vector>

#include "bufx/buffer.hpp"
#include "prof/counters.hpp"

namespace mpcx::buf {

class BufferPool {
 public:
  /// All buffers handed out by one pool share a header reserve (the device
  /// that owns the pool knows its own frame-header size). `counters`, when
  /// non-null, must outlive the pool; hits and misses are mirrored there.
  explicit BufferPool(std::size_t header_reserve = 0, prof::Counters* counters = nullptr)
      : header_reserve_(header_reserve), counters_(counters) {}

  /// Mirror hit/miss counts into a prof block (owner wires its own in).
  void set_counters(prof::Counters* counters) { counters_ = counters; }

  /// Fetch a buffer whose static capacity is at least `min_capacity`.
  std::unique_ptr<Buffer> get(std::size_t min_capacity) {
    const std::size_t bin = bin_capacity(min_capacity);
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = bins_.find(bin);
      if (it != bins_.end() && !it->second.empty()) {
        auto buffer = std::move(it->second.back());
        it->second.pop_back();
        ++hits_;
        if (counters_ != nullptr) counters_->add(prof::Ctr::PoolHits);
        return buffer;
      }
      ++misses_;
      if (counters_ != nullptr) counters_->add(prof::Ctr::PoolMisses);
    }
    return std::make_unique<Buffer>(bin, header_reserve_);
  }

  /// Recycle a buffer previously handed out by this pool.
  void put(std::unique_ptr<Buffer> buffer) {
    if (!buffer || buffer->header_reserve() != header_reserve_) return;
    buffer->clear();
    const std::size_t bin = buffer->capacity();
    std::lock_guard<std::mutex> lock(mu_);
    auto& list = bins_[bin];
    if (list.size() < kMaxPerBin) list.push_back(std::move(buffer));
  }

  std::size_t hits() const {
    std::lock_guard<std::mutex> lock(mu_);
    return hits_;
  }
  std::size_t misses() const {
    std::lock_guard<std::mutex> lock(mu_);
    return misses_;
  }

  /// Capacity class a request is rounded up to (power of two, min 256).
  static std::size_t bin_capacity(std::size_t min_capacity) {
    std::size_t cap = 256;
    while (cap < min_capacity) cap <<= 1;
    return cap;
  }

 private:
  static constexpr std::size_t kMaxPerBin = 64;

  mutable std::mutex mu_;
  std::unordered_map<std::size_t, std::vector<std::unique_ptr<Buffer>>> bins_;
  std::size_t header_reserve_;
  prof::Counters* counters_ = nullptr;
  std::size_t hits_ = 0;
  std::size_t misses_ = 0;
};

}  // namespace mpcx::buf
