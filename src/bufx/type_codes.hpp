// Type codes for buffer sections, mirroring mpjbuf.
//
// Every section in a buffer's static region is tagged with the primitive
// type it holds so that the receiver can type-check unpacking (the paper's
// mpjbuf does the same; mismatches are programming errors surfaced as
// BufferError rather than silent reinterpretation).
#pragma once

#include <cstdint>
#include <string>
#include <type_traits>

#include "support/error.hpp"

namespace mpcx::buf {

enum class TypeCode : std::uint8_t {
  Byte = 1,
  Char = 2,
  Short = 3,
  Int = 4,
  Long = 5,
  Float = 6,
  Double = 7,
  Boolean = 8,
  Object = 9,  ///< marker used in the dynamic section
};

/// Human-readable name for diagnostics.
inline std::string type_code_name(TypeCode code) {
  switch (code) {
    case TypeCode::Byte: return "byte";
    case TypeCode::Char: return "char";
    case TypeCode::Short: return "short";
    case TypeCode::Int: return "int";
    case TypeCode::Long: return "long";
    case TypeCode::Float: return "float";
    case TypeCode::Double: return "double";
    case TypeCode::Boolean: return "boolean";
    case TypeCode::Object: return "object";
  }
  return "unknown(" + std::to_string(static_cast<int>(code)) + ")";
}

/// Size in bytes of one element of the given primitive code.
inline std::size_t type_code_size(TypeCode code) {
  switch (code) {
    case TypeCode::Byte: return 1;
    case TypeCode::Char: return 1;
    case TypeCode::Short: return 2;
    case TypeCode::Int: return 4;
    case TypeCode::Long: return 8;
    case TypeCode::Float: return 4;
    case TypeCode::Double: return 8;
    case TypeCode::Boolean: return 1;
    case TypeCode::Object: return 0;
  }
  throw BufferError("type_code_size: bad code");
}

/// Maps a C++ element type onto its mpjbuf type code. Works for every
/// integral width regardless of platform aliasing (long vs long long).
template <typename T>
constexpr TypeCode type_code_of() {
  if constexpr (std::is_same_v<T, bool>) {
    return TypeCode::Boolean;
  } else if constexpr (std::is_same_v<T, char>) {
    return TypeCode::Char;
  } else if constexpr (std::is_same_v<T, float>) {
    return TypeCode::Float;
  } else if constexpr (std::is_same_v<T, double>) {
    return TypeCode::Double;
  } else if constexpr (std::is_integral_v<T> && sizeof(T) == 1) {
    return TypeCode::Byte;
  } else if constexpr (std::is_integral_v<T> && sizeof(T) == 2) {
    return TypeCode::Short;
  } else if constexpr (std::is_integral_v<T> && sizeof(T) == 4) {
    return TypeCode::Int;
  } else if constexpr (std::is_integral_v<T> && sizeof(T) == 8) {
    return TypeCode::Long;
  } else {
    static_assert(sizeof(T) == 0, "type has no mpjbuf type code");
  }
}

template <typename T>
concept Primitive = std::is_arithmetic_v<T> && sizeof(T) <= 8;

}  // namespace mpcx::buf
