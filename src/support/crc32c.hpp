// CRC32C (Castagnoli polynomial, reflected 0x82F63B78) — the checksum used
// by iSCSI/ext4 and by tcpdev's frame headers.
//
// tcpdev only checksums the fixed 40-byte frame header (the part whose
// corruption desynchronizes the whole stream), so a simple byte-at-a-time
// table walk is plenty: ~36 table lookups per frame, invisible next to the
// send(2)/recv(2) syscalls on either side of it.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <span>

namespace mpcx {

namespace detail {

constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1u) ? 0x82F63B78u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32cTable = make_crc32c_table();

}  // namespace detail

/// CRC32C of `data` (standard init/final xor with ~0).
inline std::uint32_t crc32c(std::span<const std::byte> data) {
  std::uint32_t crc = ~std::uint32_t{0};
  for (const std::byte b : data) {
    crc = detail::kCrc32cTable[(crc ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (crc >> 8);
  }
  return ~crc;
}

}  // namespace mpcx
