#include "support/logging.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mpcx::log {
namespace {

Level parse_level(const char* text) {
  if (text == nullptr) return Level::Warn;
  if (std::strcmp(text, "trace") == 0) return Level::Trace;
  if (std::strcmp(text, "debug") == 0) return Level::Debug;
  if (std::strcmp(text, "info") == 0) return Level::Info;
  if (std::strcmp(text, "warn") == 0) return Level::Warn;
  if (std::strcmp(text, "error") == 0) return Level::Error;
  if (std::strcmp(text, "off") == 0) return Level::Off;
  return Level::Warn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> storage{static_cast<int>(parse_level(std::getenv("MPCX_LOG")))};
  return storage;
}

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

thread_local int t_rank = -1;

/// Small sequential id per thread — stabler across runs than pthread ids.
int thread_tag() {
  static std::atomic<int> next{1};
  thread_local int tag = next.fetch_add(1, std::memory_order_relaxed);
  return tag;
}

}  // namespace

Level level() { return static_cast<Level>(level_storage().load(std::memory_order_relaxed)); }

void set_level(Level lvl) { level_storage().store(static_cast<int>(lvl), std::memory_order_relaxed); }

void set_rank(int rank) { t_rank = rank; }

int rank() { return t_rank; }

void write(Level lvl, const std::string& message) {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  char prefix[96];
  int len;
  if (t_rank >= 0) {
    len = std::snprintf(prefix, sizeof prefix, "[%10lld.%06lld] [t%02d r%d] %-5s ",
                        static_cast<long long>(us / 1000000),
                        static_cast<long long>(us % 1000000), thread_tag(), t_rank,
                        level_name(lvl));
  } else {
    len = std::snprintf(prefix, sizeof prefix, "[%10lld.%06lld] [t%02d] %-5s ",
                        static_cast<long long>(us / 1000000),
                        static_cast<long long>(us % 1000000), thread_tag(), level_name(lvl));
  }
  std::string line;
  line.reserve(static_cast<std::size_t>(len) + message.size() + 1);
  line.append(prefix, static_cast<std::size_t>(len));
  line += message;
  line += '\n';
  // One write(2) keeps lines atomic even across processes sharing stderr.
  [[maybe_unused]] auto n = ::write(STDERR_FILENO, line.data(), line.size());
}

}  // namespace mpcx::log
