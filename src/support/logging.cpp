#include "support/logging.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace mpcx::log {
namespace {

Level parse_level(const char* text) {
  if (text == nullptr) return Level::Warn;
  if (std::strcmp(text, "trace") == 0) return Level::Trace;
  if (std::strcmp(text, "debug") == 0) return Level::Debug;
  if (std::strcmp(text, "info") == 0) return Level::Info;
  if (std::strcmp(text, "warn") == 0) return Level::Warn;
  if (std::strcmp(text, "error") == 0) return Level::Error;
  if (std::strcmp(text, "off") == 0) return Level::Off;
  return Level::Warn;
}

std::atomic<int>& level_storage() {
  static std::atomic<int> storage{static_cast<int>(parse_level(std::getenv("MPCX_LOG")))};
  return storage;
}

const char* level_name(Level lvl) {
  switch (lvl) {
    case Level::Trace: return "TRACE";
    case Level::Debug: return "DEBUG";
    case Level::Info: return "INFO";
    case Level::Warn: return "WARN";
    case Level::Error: return "ERROR";
    case Level::Off: return "OFF";
  }
  return "?";
}

}  // namespace

Level level() { return static_cast<Level>(level_storage().load(std::memory_order_relaxed)); }

void set_level(Level lvl) { level_storage().store(static_cast<int>(lvl), std::memory_order_relaxed); }

void write(Level lvl, const std::string& message) {
  static std::mutex mu;
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  const auto us = std::chrono::duration_cast<std::chrono::microseconds>(now).count();
  std::lock_guard<std::mutex> lock(mu);
  std::fprintf(stderr, "[%10lld.%06lld] %-5s %s\n", static_cast<long long>(us / 1000000),
               static_cast<long long>(us % 1000000), level_name(lvl), message.c_str());
}

}  // namespace mpcx::log
