// RAII TCP socket wrappers and an edge-triggered readiness multiplexer.
//
// tcpdev (the paper's niodev analog) uses:
//   - blocking sockets for writing messages (one write channel per peer,
//     guarded by a per-destination lock), and
//   - non-blocking sockets for reading, all registered with one Poller that
//     drives the single input-handler ("progress engine") thread — the C++
//     equivalent of a java.nio Selector.
//
// The Poller is epoll(7)-backed on Linux (edge-triggered, so the progress
// engine wakes per ready channel instead of scanning all N registrations)
// with a portable poll(2) fallback, selected at construction
// (MPCX_POLLER=poll forces the fallback for testing).
#pragma once

#include <poll.h>

#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "support/error.hpp"
#include "support/faults.hpp"

namespace mpcx::net {

/// Error from the socket layer; wraps errno text. Defaults to ConnReset —
/// nearly every socket failure is some flavor of "the peer went away".
class SocketError : public DeviceError {
 public:
  explicit SocketError(const std::string& what, ErrCode code = ErrCode::ConnReset)
      : DeviceError(what, code) {}
};

/// Result of a non-blocking read attempt.
enum class IoStatus {
  Ok,        ///< some bytes transferred
  WouldBlock,///< no data available right now
  Eof,       ///< orderly shutdown by peer
};

/// Owning TCP socket. Move-only.
class Socket {
 public:
  Socket() = default;
  explicit Socket(int fd) : fd_(fd) {}
  ~Socket();

  Socket(const Socket&) = delete;
  Socket& operator=(const Socket&) = delete;
  Socket(Socket&& other) noexcept;
  Socket& operator=(Socket&& other) noexcept;

  /// Connect to host:port (blocking), retrying with exponential backoff for
  /// up to `timeout_ms` while the peer is not yet listening (bootstrap races
  /// are normal). -1 uses faults::connect_timeout_ms() (MPCX_CONNECT_TIMEOUT_MS).
  static Socket connect(const std::string& host, std::uint16_t port, int timeout_ms = -1);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Release ownership of the descriptor.
  int release();
  void close();

  void set_nonblocking(bool enable);
  void set_nodelay(bool enable);
  void set_buffer_sizes(int snd_bytes, int rcv_bytes);

  /// shutdown(2) both directions (fault injection's connection reset);
  /// keeps the descriptor so in-flight users see errors, not EBADF.
  void shutdown_both();

  /// Write the whole span (blocking). Throws SocketError on failure.
  void write_all(std::span<const std::byte> data);

  /// Gathered write: send every part, in order, as if concatenated — one
  /// writev(2) in the common case, resuming after partial writes. Lets a
  /// device ship [frame header | static payload | dynamic payload] in a
  /// single syscall without staging them contiguously first.
  void writev_all(std::span<const std::span<const std::byte>> parts);

  /// Read exactly data.size() bytes (blocking). Throws on EOF/failure.
  void read_all(std::span<std::byte> data);

  /// Non-blocking read into `data`; sets `transferred` to the byte count on
  /// Ok. Requires the socket to be in non-blocking mode.
  IoStatus read_some(std::span<std::byte> data, std::size_t& transferred);

  /// Local port this socket is bound to.
  std::uint16_t local_port() const;

  /// Opt this socket into read-side fault injection at `site`. Only
  /// tcpdev's read channels call this (write-side faults are decided per
  /// logical frame by the device, not per write(2)); bootstrap handshakes
  /// and the runtime control protocol stay fault-free so injected plans
  /// exercise message paths, not the launcher.
  void set_fault_site(faults::Site site) { fault_site_ = static_cast<int>(site); }

 private:
  int fd_ = -1;
  int fault_site_ = -1;  ///< faults::Site, or -1 when injection is off here
};

/// Listening TCP socket bound to 127.0.0.1:<port> (port 0 = ephemeral).
class Acceptor {
 public:
  Acceptor() = default;
  explicit Acceptor(std::uint16_t port);
  ~Acceptor();

  Acceptor(const Acceptor&) = delete;
  Acceptor& operator=(const Acceptor&) = delete;
  Acceptor(Acceptor&& other) noexcept;
  Acceptor& operator=(Acceptor&& other) noexcept;

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }
  std::uint16_t port() const { return port_; }

  /// Accept one connection (blocking).
  Socket accept();

  /// Accept with timeout; nullopt if none arrived.
  std::optional<Socket> accept_for(int timeout_ms);

  void close();

 private:
  int fd_ = -1;
  std::uint16_t port_ = 0;
};

/// Readiness event reported by Poller::wait.
struct PollEvent {
  int fd = -1;
  bool readable = false;
  bool hangup = false;
  bool error = false;
};

/// Readiness multiplexer with a self-wakeup channel, mirroring
/// Selector.select()/wakeup() from java.nio that niodev's input handler
/// is built on. Two backends:
///   - epoll (Linux, the default): edge-triggered EPOLLIN|EPOLLET, O(ready)
///     per wait instead of O(registered). Edge semantics require consumers
///     to drain a ready descriptor until EAGAIN before the next wait —
///     exactly what tcpdev's pump loop and loop-accept already do.
///   - poll(2) (fallback; forced via MPCX_POLLER=poll): the original
///     level-triggered linear scan, kept for portability.
/// Not thread-safe except wakeup(): add/remove/wait belong to the one
/// progress-engine thread (plus pre-thread setup).
class Poller {
 public:
  Poller();
  ~Poller();

  Poller(const Poller&) = delete;
  Poller& operator=(const Poller&) = delete;

  /// Register a descriptor for read-readiness events. Registration reports
  /// an initial edge if data is already pending.
  void add(int fd);
  /// Deregister a descriptor (no-op if it was never added).
  void remove(int fd);

  /// Wait up to timeout_ms (-1 = forever) and return ready descriptors.
  /// A wakeup() call makes wait return early with an empty (or partial) set.
  std::vector<PollEvent> wait(int timeout_ms);

  /// Interrupt a concurrent wait(). Safe from any thread.
  void wakeup();

  /// Active backend, "epoll" or "poll" (diagnostics and tests).
  const char* backend() const { return epoll_fd_ >= 0 ? "epoll" : "poll"; }

 private:
  // epoll backend (Linux).
  int epoll_fd_ = -1;
  int wake_eventfd_ = -1;

  // poll(2) fallback.
  std::vector<pollfd> fds_;  // fds_[0] is the self-pipe read end
  int wake_pipe_[2] = {-1, -1};
};

}  // namespace mpcx::net
