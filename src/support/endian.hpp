// Byte-order helpers for wire formats (tcpdev frames, runtime protocol,
// bufx section headers). All MPCX wire formats are little-endian, matching
// the dominant deployment platform; these helpers make that explicit and
// keep the code correct on big-endian hosts.
#pragma once

#include <array>
#include <bit>
#include <cstdint>
#include <cstring>
#include <type_traits>

namespace mpcx {

template <typename T>
  requires std::is_integral_v<T>
constexpr T byteswap(T value) {
  auto bytes = std::bit_cast<std::array<std::uint8_t, sizeof(T)>>(value);
  for (std::size_t i = 0; i < sizeof(T) / 2; ++i) {
    std::swap(bytes[i], bytes[sizeof(T) - 1 - i]);
  }
  return std::bit_cast<T>(bytes);
}

/// Convert host integer to MPCX wire order (little-endian).
template <typename T>
  requires std::is_integral_v<T>
constexpr T to_wire(T value) {
  if constexpr (std::endian::native == std::endian::little) {
    return value;
  } else {
    return byteswap(value);
  }
}

/// Convert MPCX wire order (little-endian) integer to host order.
template <typename T>
  requires std::is_integral_v<T>
constexpr T from_wire(T value) {
  return to_wire(value);  // involution
}

/// Store an integer into a byte buffer in wire order.
template <typename T>
  requires std::is_integral_v<T>
void store_wire(void* dst, T value) {
  const T wire = to_wire(value);
  std::memcpy(dst, &wire, sizeof(T));
}

/// Load an integer from a byte buffer in wire order.
template <typename T>
  requires std::is_integral_v<T>
T load_wire(const void* src) {
  T wire;
  std::memcpy(&wire, src, sizeof(T));
  return from_wire(wire);
}

}  // namespace mpcx
