// Unbounded MPMC blocking queue with close() semantics.
//
// Used for device completion queues (backing xdev's peek()), the mxsim
// fabric mailboxes, and the runtime daemon's work queue.
#pragma once

#include <chrono>
#include <condition_variable>
#include <deque>
#include <mutex>
#include <optional>
#include <utility>

namespace mpcx {

template <typename T>
class BlockingQueue {
 public:
  BlockingQueue() = default;
  BlockingQueue(const BlockingQueue&) = delete;
  BlockingQueue& operator=(const BlockingQueue&) = delete;

  /// Enqueue an element. Returns false (and drops the element) if closed.
  bool push(T value) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (closed_) return false;
      items_.push_back(std::move(value));
    }
    cv_.notify_one();
    return true;
  }

  /// Block until an element is available or the queue is closed.
  /// Returns nullopt only when closed and drained.
  std::optional<T> pop() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return !items_.empty() || closed_; });
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Non-blocking pop.
  std::optional<T> try_pop() {
    std::lock_guard<std::mutex> lock(mu_);
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Pop with timeout; nullopt on timeout or closed-and-drained.
  template <typename Rep, typename Period>
  std::optional<T> pop_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    if (!cv_.wait_for(lock, timeout, [&] { return !items_.empty() || closed_; })) {
      return std::nullopt;
    }
    if (items_.empty()) return std::nullopt;
    T value = std::move(items_.front());
    items_.pop_front();
    return value;
  }

  /// Close the queue: pending pops drain remaining items then return nullopt.
  void close() {
    {
      std::lock_guard<std::mutex> lock(mu_);
      closed_ = true;
    }
    cv_.notify_all();
  }

  bool closed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return closed_;
  }

  std::size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.size();
  }

  bool empty() const { return size() == 0; }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
  bool closed_ = false;
};

}  // namespace mpcx
