// Minimal thread-safe leveled logger.
//
// The library is quiet by default (level = Warn); tests and the runtime
// daemon raise the level via MPCX_LOG or set_level(). Messages are written
// atomically (single write(2) call) so concurrent ranks do not interleave.
// Each line carries a monotonic timestamp, a stable per-thread id, and —
// when set_rank() has been called on the thread — the MPI rank.
#pragma once

#include <sstream>
#include <string>

namespace mpcx::log {

enum class Level : int { Trace = 0, Debug = 1, Info = 2, Warn = 3, Error = 4, Off = 5 };

/// Current global level; initialized from the MPCX_LOG environment variable
/// ("trace".."error", "off") on first use.
Level level();

/// Override the global level.
void set_level(Level lvl);

/// Tag the calling thread's messages with an MPI rank prefix (thread-local;
/// the cluster harness runs many ranks in one process). -1 removes the tag.
void set_rank(int rank);

/// The calling thread's rank tag (-1 when unset).
int rank();

/// Emit one message at `lvl` (no-op if below the global level).
void write(Level lvl, const std::string& message);

namespace detail {
template <typename... Args>
void emit(Level lvl, const Args&... args) {
  if (static_cast<int>(lvl) < static_cast<int>(level())) return;
  std::ostringstream os;
  (os << ... << args);
  write(lvl, os.str());
}
}  // namespace detail

template <typename... Args>
void trace(const Args&... args) { detail::emit(Level::Trace, args...); }
template <typename... Args>
void debug(const Args&... args) { detail::emit(Level::Debug, args...); }
template <typename... Args>
void info(const Args&... args) { detail::emit(Level::Info, args...); }
template <typename... Args>
void warn(const Args&... args) { detail::emit(Level::Warn, args...); }
template <typename... Args>
void error(const Args&... args) { detail::emit(Level::Error, args...); }

}  // namespace mpcx::log
