// Error hierarchy for MPCX.
//
// The paper's Java library throws XDevException / MPJException; we mirror
// that with a small exception tree rooted at mpcx::Error so callers can
// catch per-layer or catch-all.
//
// Every error additionally carries an ErrCode — the MPI_ERR_*-style class —
// so the same failure can travel two routes: thrown as an exception
// (ERRORS_THROW, the library default) or folded into a Status/Request error
// field (ERRORS_RETURN) without losing its identity.
#pragma once

#include <stdexcept>
#include <string>

namespace mpcx {

/// MPI_ERR_*-style error classes carried by exceptions and by Status when a
/// communicator runs under ERRORS_RETURN. Values are stable (tests and the
/// wire-visible Abort protocol use them); append only.
enum class ErrCode : int {
  Success = 0,   ///< no error (the zero value so Status{} is clean)
  Truncate = 1,  ///< message longer than the posted receive buffer (MPI_ERR_TRUNCATE)
  Timeout = 2,   ///< blocking op exceeded MPCX_OP_TIMEOUT_MS (no MPI analog; ours)
  Checksum = 3,  ///< frame failed CRC32C / magic / version validation
  ConnReset = 4, ///< peer connection reset, refused, or EOF mid-stream
  Cancelled = 5, ///< operation cancelled before completion
  Internal = 6,  ///< anything else (MPI_ERR_OTHER)
  ProcFailed = 7, ///< peer process declared dead (ULFM MPI_ERR_PROC_FAILED)
  Revoked = 8,   ///< communicator revoked via Comm::Revoke (ULFM MPI_ERR_REVOKED)
};

/// Stable snake_case name for messages and test assertions.
const char* err_code_name(ErrCode code);

/// Root of all MPCX exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what, ErrCode code = ErrCode::Internal)
      : std::runtime_error(what), code_(code) {}

  ErrCode code() const { return code_; }

 private:
  ErrCode code_;
};

/// Invalid argument passed to a public API (bad rank, negative count, ...).
class ArgumentError : public Error {
 public:
  explicit ArgumentError(const std::string& what) : Error(what) {}
};

/// Raised by the buffering layer (overflow, read/write mode violation,
/// malformed section header). Analog of mpjbuf exceptions.
class BufferError : public Error {
 public:
  explicit BufferError(const std::string& what) : Error(what) {}
};

/// Raised by device layers (xdev / mxsim / tcpdev). Analog of XDevException.
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what, ErrCode code = ErrCode::Internal)
      : Error(what, code) {}
};

/// Raised by the communicator/high layers. Analog of MPJException.
class CommError : public Error {
 public:
  explicit CommError(const std::string& what, ErrCode code = ErrCode::Internal)
      : Error(what, code) {}
};

/// Raised by the runtime (daemon / launcher / staging).
class RuntimeError : public Error {
 public:
  explicit RuntimeError(const std::string& what) : Error(what) {}
};

inline const char* err_code_name(ErrCode code) {
  switch (code) {
    case ErrCode::Success: return "success";
    case ErrCode::Truncate: return "truncate";
    case ErrCode::Timeout: return "timeout";
    case ErrCode::Checksum: return "checksum";
    case ErrCode::ConnReset: return "conn_reset";
    case ErrCode::Cancelled: return "cancelled";
    case ErrCode::Internal: return "internal";
    case ErrCode::ProcFailed: return "proc_failed";
    case ErrCode::Revoked: return "revoked";
  }
  return "unknown";
}

}  // namespace mpcx
