// Error hierarchy for MPCX.
//
// The paper's Java library throws XDevException / MPJException; we mirror
// that with a small exception tree rooted at mpcx::Error so callers can
// catch per-layer or catch-all.
#pragma once

#include <stdexcept>
#include <string>

namespace mpcx {

/// Root of all MPCX exceptions.
class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

/// Invalid argument passed to a public API (bad rank, negative count, ...).
class ArgumentError : public Error {
 public:
  explicit ArgumentError(const std::string& what) : Error(what) {}
};

/// Raised by the buffering layer (overflow, read/write mode violation,
/// malformed section header). Analog of mpjbuf exceptions.
class BufferError : public Error {
 public:
  explicit BufferError(const std::string& what) : Error(what) {}
};

/// Raised by device layers (xdev / mxsim / tcpdev). Analog of XDevException.
class DeviceError : public Error {
 public:
  explicit DeviceError(const std::string& what) : Error(what) {}
};

/// Raised by the communicator/high layers. Analog of MPJException.
class CommError : public Error {
 public:
  explicit CommError(const std::string& what) : Error(what) {}
};

/// Raised by the runtime (daemon / launcher / staging).
class RuntimeError : public Error {
 public:
  explicit RuntimeError(const std::string& what) : Error(what) {}
};

}  // namespace mpcx
