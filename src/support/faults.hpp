// mpcx::faults — deterministic, process-global fault injection.
//
// The transport layers (tcpdev's socket read/write paths, shmdev's ring
// push) consult this module at their I/O choke points. A *fault plan*,
// normally parsed from the MPCX_FAULTS environment variable, decides — per
// site and per operation, deterministically — whether to drop the bytes,
// corrupt them, delay them, or reset the connection. The same plan + seed
// always injects the same faults at the same operations, so a failing fault
// test reproduces exactly.
//
//   MPCX_FAULTS=drop=0.01,delay_ms=5,corrupt=0.001,reset_after=200,seed=7
//
//   drop=P         drop the frame/push entirely with probability P
//   corrupt=P      flip a byte in flight with probability P (tcpdev flips
//                  the frame header so the CRC always catches it; shmdev
//                  flips payload, modelling silent memory corruption)
//   delay_ms=N     sleep N milliseconds before every injected-site operation
//   reset_after=N  hard-reset the connection at the Nth operation per site
//                  (fires once)
//   reset_every=N  hard-reset the connection at EVERY Nth operation per site
//                  (recurring — the knob reconnect soaks use to kill a
//                  connection deterministically mid-stream, again and again)
//   seed=S         RNG seed (default 1); same seed => same fault sequence
//
// Overhead discipline (same as src/prof): with no plan armed, every site
// pays exactly one relaxed atomic load + branch. All the RNG and bookkeeping
// lives behind that branch.
//
// This module also owns the two robustness deadline knobs, read once from
// the environment and overridable by tests:
//
//   MPCX_OP_TIMEOUT_MS       deadline for blocking recv/wait/rendezvous
//                            (0 = wait forever, the default)
//   MPCX_CONNECT_TIMEOUT_MS  per-peer bootstrap connect/accept deadline
//                            (default 30000)
#pragma once

#include <atomic>
#include <cstdint>
#include <optional>
#include <string>

namespace mpcx::faults {

/// Injection points. Each site has its own deterministic operation counter
/// so plans replay identically regardless of cross-site interleaving.
enum class Site : std::size_t {
  TcpWrite,    ///< tcpdev write_message/write_control (one op per logical frame)
  TcpRead,     ///< Socket::read_some / read_all (input-handler reads)
  ShmPush,     ///< shmdev Segment ring push
  TcpConnect,  ///< tcpdev lazy channel dial (one op per dial attempt)
  Count
};

constexpr std::size_t kSiteCount = static_cast<std::size_t>(Site::Count);

const char* site_name(Site site);

/// What the choke point should do for this operation. Delay is not an
/// Action: when the plan sets delay_ms, next_action() sleeps inline before
/// returning, so sites only need to handle the destructive outcomes.
enum class Action {
  None,     ///< proceed normally
  Drop,     ///< silently discard the bytes (write/push sites only)
  Corrupt,  ///< flip one byte (tcpdev: encoded header; shmdev: payload copy)
  Reset,    ///< tear the connection down (shutdown + throw)
};

/// A parsed fault plan. All-zero means "inject nothing".
struct Plan {
  double drop = 0.0;               ///< per-op drop probability [0,1]
  double corrupt = 0.0;            ///< per-op corruption probability [0,1]
  std::uint32_t delay_ms = 0;      ///< inline sleep before every op at a site
  std::uint64_t reset_after = 0;   ///< 1-based op index to reset at (0 = never)
  std::uint64_t reset_every = 0;   ///< recurring reset period per site (0 = never)
  std::uint64_t seed = 1;          ///< RNG seed

  bool active() const {
    return drop > 0.0 || corrupt > 0.0 || delay_ms > 0 || reset_after > 0 ||
           reset_every > 0;
  }
};

/// Parse the MPCX_FAULTS grammar. Returns nullopt (and logs) on a malformed
/// spec rather than arming a half-parsed plan.
std::optional<Plan> parse_plan(const std::string& spec);

namespace detail {
extern std::atomic<bool> g_armed;
}  // namespace detail

/// The one load every choke point pays when fault injection is off.
inline bool enabled() { return detail::g_armed.load(std::memory_order_relaxed); }

/// Arm `plan` process-wide and reset all per-site operation counters.
/// Arming an inactive plan disarms (same as clear_plan()).
void set_plan(const Plan& plan);

/// Disarm fault injection (tests; restores the fast path).
void clear_plan();

/// The currently armed plan (meaningful only while enabled()).
Plan current_plan();

/// Decide the fate of the next operation at `site`. Sleeps inline when the
/// plan carries a delay, tallies prof counters, and advances the site's
/// deterministic RNG stream. Callers must check enabled() first.
Action next_action(Site site);

}  // namespace mpcx::faults

namespace mpcx::prof {
class Counters;
}  // namespace mpcx::prof

namespace mpcx::faults {

/// The process-wide "faults" counters block (FaultsInjected / IoRetries /
/// OpTimeouts / ChecksumFailures live here). Always valid; counting is
/// gated by prof::counting() as usual.
prof::Counters& counters();

// ---- deadline knobs -----------------------------------------------------------

/// Deadline in ms for blocking recv/wait/probe/rendezvous completion.
/// 0 means wait forever (the default, matching stock MPI semantics).
std::uint32_t op_timeout_ms();

/// Per-peer connect/accept deadline during device bootstrap (default 30000).
std::uint32_t connect_timeout_ms();

/// Override the deadlines at runtime (tests; trump the environment).
void set_op_timeout_ms(std::uint32_t ms);
void set_connect_timeout_ms(std::uint32_t ms);

}  // namespace mpcx::faults
