#include "support/socket.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#ifdef __linux__
#include <sys/epoll.h>
#include <sys/eventfd.h>
#endif

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <thread>
#include <utility>
#include <vector>

#include "prof/counters.hpp"
#include "support/backoff.hpp"

namespace mpcx::net {
namespace {

[[noreturn]] void throw_errno(const std::string& op) {
  throw SocketError(op + ": " + std::strerror(errno));
}

/// Descriptor exhaustion gets an actionable message instead of raw errno:
/// every fd here is a connection, so the fix is either more fds or fewer
/// concurrent connections (tcpdev's LRU connection cap).
[[noreturn]] void throw_fd_exhausted(const std::string& op) {
  throw SocketError(op + ": " + std::strerror(errno) +
                    " — file-descriptor limit reached; raise `ulimit -n` or lower "
                    "MPCX_MAX_CONNS so the connection manager keeps fewer channels open");
}

bool fd_exhausted(int err) { return err == EMFILE || err == ENFILE; }

sockaddr_in make_addr(const std::string& host, std::uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    throw SocketError("inet_pton failed for host " + host);
  }
  return addr;
}

}  // namespace

Socket::~Socket() { close(); }

Socket::Socket(Socket&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      fault_site_(std::exchange(other.fault_site_, -1)) {}

Socket& Socket::operator=(Socket&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    fault_site_ = std::exchange(other.fault_site_, -1);
  }
  return *this;
}

Socket Socket::connect(const std::string& host, std::uint16_t port, int timeout_ms) {
  if (timeout_ms < 0) timeout_ms = static_cast<int>(faults::connect_timeout_ms());
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  const sockaddr_in addr = make_addr(host, port);
  // Jittered exponential backoff between attempts: fast enough to win the
  // normal bootstrap race (peer's listen(2) a few ms away), slow enough not
  // to hammer a wedged host, and decorrelated so a whole world redialing
  // one restarted peer doesn't retry in lockstep. Seeded per-call (port in
  // the high bits, a clock sample in the low) so concurrent loops differ.
  Backoff backoff(2, 250,
                  (static_cast<std::uint64_t>(port) << 32) ^
                      static_cast<std::uint64_t>(
                          std::chrono::steady_clock::now().time_since_epoch().count()));
  for (;;) {
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
      if (fd_exhausted(errno)) throw_fd_exhausted("connect to " + host);
      throw_errno("socket");
    }
    if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) == 0) {
      return Socket(fd);
    }
    const int err = errno;
    ::close(fd);
    const auto now = std::chrono::steady_clock::now();
    if ((err == ECONNREFUSED || err == ETIMEDOUT || err == EAGAIN) && now < deadline) {
      faults::counters().add(prof::Ctr::IoRetries);
      const auto remaining =
          std::chrono::duration_cast<std::chrono::milliseconds>(deadline - now).count();
      std::this_thread::sleep_for(std::chrono::milliseconds(
          std::min<long long>(static_cast<long long>(backoff.next_delay_ms()), remaining)));
      continue;
    }
    throw SocketError("connect to " + host + ":" + std::to_string(port) + ": " +
                      std::strerror(err) + " (after " + std::to_string(timeout_ms) +
                      " ms; set MPCX_CONNECT_TIMEOUT_MS to adjust)");
  }
}

int Socket::release() { return std::exchange(fd_, -1); }

void Socket::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void Socket::set_nonblocking(bool enable) {
  int flags = ::fcntl(fd_, F_GETFL, 0);
  if (flags < 0) throw_errno("fcntl(F_GETFL)");
  flags = enable ? (flags | O_NONBLOCK) : (flags & ~O_NONBLOCK);
  if (::fcntl(fd_, F_SETFL, flags) < 0) throw_errno("fcntl(F_SETFL)");
}

void Socket::set_nodelay(bool enable) {
  const int value = enable ? 1 : 0;
  if (::setsockopt(fd_, IPPROTO_TCP, TCP_NODELAY, &value, sizeof(value)) < 0) {
    throw_errno("setsockopt(TCP_NODELAY)");
  }
}

void Socket::shutdown_both() {
  if (fd_ >= 0) ::shutdown(fd_, SHUT_RDWR);
}

void Socket::set_buffer_sizes(int snd_bytes, int rcv_bytes) {
  if (snd_bytes > 0 &&
      ::setsockopt(fd_, SOL_SOCKET, SO_SNDBUF, &snd_bytes, sizeof(snd_bytes)) < 0) {
    throw_errno("setsockopt(SO_SNDBUF)");
  }
  if (rcv_bytes > 0 &&
      ::setsockopt(fd_, SOL_SOCKET, SO_RCVBUF, &rcv_bytes, sizeof(rcv_bytes)) < 0) {
    throw_errno("setsockopt(SO_RCVBUF)");
  }
}

void Socket::write_all(std::span<const std::byte> data) {
  // No fault injection here or in writev_all: a logical frame is one
  // writev_all call (or, on legacy paths, several write_all calls), so
  // per-syscall injection could emit a partial frame — a stream
  // desynchronization no real network produces (TCP delivers a prefix).
  // Write-side faults are decided once per logical frame by the caller
  // (tcpdev's apply_write_fault in write_message/write_control), BEFORE the
  // frame's bytes reach either write entry point; read-side injection stays
  // in read_some.
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::send(fd_, data.data() + done, data.size() - done, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("send");
    }
    done += static_cast<std::size_t>(n);
  }
}

void Socket::writev_all(std::span<const std::span<const std::byte>> parts) {
  // Fault policy: identical to write_all — the caller decided this frame's
  // fate already; nothing is injected per syscall (see write_all's note).
  constexpr std::size_t kMaxIov = 16;
  std::size_t part = 0;       // first part not fully sent
  std::size_t part_done = 0;  // bytes of parts[part] already sent
  while (part < parts.size()) {
    if (parts[part].size() == part_done) {  // also skips empty parts
      ++part;
      part_done = 0;
      continue;
    }
    struct iovec iov[kMaxIov];
    int iovcnt = 0;
    std::size_t skip = part_done;
    for (std::size_t i = part; i < parts.size() && iovcnt < static_cast<int>(kMaxIov); ++i) {
      if (parts[i].size() == skip) {
        skip = 0;
        continue;
      }
      iov[iovcnt].iov_base =
          const_cast<std::byte*>(parts[i].data()) + skip;
      iov[iovcnt].iov_len = parts[i].size() - skip;
      skip = 0;
      ++iovcnt;
    }
    struct msghdr msg{};
    msg.msg_iov = iov;
    msg.msg_iovlen = static_cast<std::size_t>(iovcnt);
    const ssize_t n = ::sendmsg(fd_, &msg, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("sendmsg");
    }
    // Advance the (part, part_done) cursor past the bytes writev consumed.
    std::size_t consumed = static_cast<std::size_t>(n);
    while (consumed > 0) {
      const std::size_t remaining = parts[part].size() - part_done;
      if (consumed < remaining) {
        part_done += consumed;
        consumed = 0;
      } else {
        consumed -= remaining;
        ++part;
        part_done = 0;
      }
    }
  }
}

void Socket::read_all(std::span<std::byte> data) {
  std::size_t done = 0;
  while (done < data.size()) {
    const ssize_t n = ::recv(fd_, data.data() + done, data.size() - done, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      throw_errno("recv");
    }
    if (n == 0) throw SocketError("recv: connection closed by peer");
    done += static_cast<std::size_t>(n);
  }
}

IoStatus Socket::read_some(std::span<std::byte> data, std::size_t& transferred) {
  transferred = 0;
  if (fault_site_ >= 0 && faults::enabled()) {
    // Read-side injection is deliberately limited to Delay (done inside
    // next_action) and Reset: dropping or corrupting *received* bytes would
    // damage user buffers the transport has already vouched for, which no
    // real network failure does past TCP's own checksum.
    if (faults::next_action(static_cast<faults::Site>(fault_site_)) ==
        faults::Action::Reset) {
      ::shutdown(fd_, SHUT_RDWR);
      return IoStatus::Eof;  // surfaces as a peer failure in the input loop
    }
  }
  for (;;) {
    const ssize_t n = ::recv(fd_, data.data(), data.size(), 0);
    if (n > 0) {
      transferred = static_cast<std::size_t>(n);
      return IoStatus::Ok;
    }
    if (n == 0) return IoStatus::Eof;
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return IoStatus::WouldBlock;
    throw_errno("recv");
  }
}

std::uint16_t Socket::local_port() const {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
    throw_errno("getsockname");
  }
  return ntohs(addr.sin_port);
}

Acceptor::Acceptor(std::uint16_t port) {
  fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd_ < 0) throw_errno("socket");
  const int one = 1;
  ::setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr = make_addr("127.0.0.1", port);
  if (::bind(fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw SocketError("bind port " + std::to_string(port) + ": " + std::strerror(err));
  }
  if (::listen(fd_, 128) < 0) {
    const int err = errno;
    ::close(fd_);
    fd_ = -1;
    throw SocketError(std::string("listen: ") + std::strerror(err));
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) throw_errno("getsockname");
  port_ = ntohs(addr.sin_port);
}

Acceptor::~Acceptor() { close(); }

Acceptor::Acceptor(Acceptor&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)), port_(std::exchange(other.port_, 0)) {}

Acceptor& Acceptor::operator=(Acceptor&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = std::exchange(other.fd_, -1);
    port_ = std::exchange(other.port_, 0);
  }
  return *this;
}

Socket Acceptor::accept() {
  for (;;) {
    const int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) return Socket(fd);
    if (errno == EINTR) continue;
    if (fd_exhausted(errno)) throw_fd_exhausted("accept");
    throw_errno("accept");
  }
}

std::optional<Socket> Acceptor::accept_for(int timeout_ms) {
  pollfd pfd{fd_, POLLIN, 0};
  for (;;) {
    const int rc = ::poll(&pfd, 1, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) continue;
      throw_errno("poll");
    }
    if (rc == 0) return std::nullopt;
    return accept();
  }
}

void Acceptor::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

namespace {

bool force_poll_backend() {
  const char* value = std::getenv("MPCX_POLLER");
  return value != nullptr && std::strcmp(value, "poll") == 0;
}

}  // namespace

Poller::Poller() {
#ifdef __linux__
  if (!force_poll_backend()) {
    epoll_fd_ = ::epoll_create1(EPOLL_CLOEXEC);
    if (epoll_fd_ >= 0) {
      wake_eventfd_ = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
      if (wake_eventfd_ < 0) {
        ::close(epoll_fd_);
        epoll_fd_ = -1;
      } else {
        struct epoll_event ev{};
        ev.events = EPOLLIN | EPOLLET;
        ev.data.fd = wake_eventfd_;
        if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, wake_eventfd_, &ev) < 0) {
          ::close(wake_eventfd_);
          ::close(epoll_fd_);
          wake_eventfd_ = -1;
          epoll_fd_ = -1;
        }
      }
    }
    if (epoll_fd_ >= 0) return;
    // epoll unavailable (fd exhaustion, odd kernel): fall through to poll.
  }
#endif
  if (::pipe(wake_pipe_) < 0) throw_errno("pipe");
  for (int end : wake_pipe_) {
    const int flags = ::fcntl(end, F_GETFL, 0);
    ::fcntl(end, F_SETFL, flags | O_NONBLOCK);
  }
  fds_.push_back(pollfd{wake_pipe_[0], POLLIN, 0});
}

Poller::~Poller() {
  if (epoll_fd_ >= 0) ::close(epoll_fd_);
  if (wake_eventfd_ >= 0) ::close(wake_eventfd_);
  if (wake_pipe_[0] >= 0) ::close(wake_pipe_[0]);
  if (wake_pipe_[1] >= 0) ::close(wake_pipe_[1]);
}

void Poller::add(int fd) {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    struct epoll_event ev{};
    // Edge-triggered: one wakeup per arrival burst. EPOLLRDHUP surfaces an
    // orderly peer shutdown even when the edge's data was already drained.
    ev.events = EPOLLIN | EPOLLET | EPOLLRDHUP;
    ev.data.fd = fd;
    if (::epoll_ctl(epoll_fd_, EPOLL_CTL_ADD, fd, &ev) < 0 && errno != EEXIST) {
      throw_errno("epoll_ctl(ADD)");
    }
    return;
  }
#endif
  fds_.push_back(pollfd{fd, POLLIN, 0});
}

void Poller::remove(int fd) {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    // ENOENT/EBADF tolerated: callers may remove an fd that was never added
    // or whose socket already closed (kernel auto-deregisters on close).
    (void)::epoll_ctl(epoll_fd_, EPOLL_CTL_DEL, fd, nullptr);
    return;
  }
#endif
  for (auto it = fds_.begin() + 1; it != fds_.end(); ++it) {
    if (it->fd == fd) {
      fds_.erase(it);
      return;
    }
  }
}

std::vector<PollEvent> Poller::wait(int timeout_ms) {
  std::vector<PollEvent> events;
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    struct epoll_event ready[64];
    const int rc = ::epoll_wait(epoll_fd_, ready, 64, timeout_ms);
    if (rc < 0) {
      if (errno == EINTR) return events;
      throw_errno("epoll_wait");
    }
    for (int i = 0; i < rc; ++i) {
      if (ready[i].data.fd == wake_eventfd_) {
        std::uint64_t tick = 0;
        [[maybe_unused]] ssize_t n = ::read(wake_eventfd_, &tick, sizeof(tick));
        continue;
      }
      const std::uint32_t re = ready[i].events;
      events.push_back(PollEvent{ready[i].data.fd, (re & EPOLLIN) != 0,
                                 (re & (EPOLLHUP | EPOLLRDHUP)) != 0,
                                 (re & EPOLLERR) != 0});
    }
    return events;
  }
#endif
  const int rc = ::poll(fds_.data(), fds_.size(), timeout_ms);
  if (rc < 0) {
    if (errno == EINTR) return events;
    throw_errno("poll");
  }
  if (rc == 0) return events;
  // Drain the self-pipe if it fired.
  if (fds_[0].revents & POLLIN) {
    char scratch[64];
    while (::read(wake_pipe_[0], scratch, sizeof(scratch)) > 0) {
    }
  }
  for (std::size_t i = 1; i < fds_.size(); ++i) {
    const short re = fds_[i].revents;
    if (re == 0) continue;
    events.push_back(PollEvent{fds_[i].fd, (re & POLLIN) != 0, (re & POLLHUP) != 0,
                               (re & POLLERR) != 0});
  }
  return events;
}

void Poller::wakeup() {
#ifdef __linux__
  if (epoll_fd_ >= 0) {
    const std::uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(wake_eventfd_, &one, sizeof(one));
    return;
  }
#endif
  const char byte = 1;
  [[maybe_unused]] ssize_t n = ::write(wake_pipe_[1], &byte, 1);
}

}  // namespace mpcx::net
