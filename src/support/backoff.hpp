// Jittered exponential backoff.
//
// One shared policy for every retry loop that redials a peer: bootstrap
// connects (support/socket.cpp) and the tcpdev reliability layer's
// reconnect path. Full jitter (AWS-style): each delay is drawn uniformly
// from [base/2, base], where base doubles per attempt up to a cap — so a
// cluster-wide connection storm (every rank redialing the same restarted
// peer) decorrelates instead of hammering in lockstep.
#pragma once

#include <algorithm>
#include <cstdint>

namespace mpcx {

class Backoff {
 public:
  /// `base_ms` is the first delay; `cap_ms` bounds the exponential growth.
  /// `seed` keys the jitter stream (use something per-caller-unique — a
  /// pointer value, a peer uuid — so concurrent loops decorrelate).
  Backoff(std::uint64_t base_ms, std::uint64_t cap_ms, std::uint64_t seed)
      : base_ms_(std::max<std::uint64_t>(base_ms, 1)),
        cap_ms_(std::max(cap_ms, base_ms_)),
        state_(seed | 1) {}

  /// Delay for the next attempt, in ms: uniform over [envelope/2, envelope]
  /// where envelope = min(base * 2^attempt, cap). Advances the attempt.
  std::uint64_t next_delay_ms() {
    std::uint64_t envelope = base_ms_;
    for (unsigned i = 0; i < attempt_ && envelope < cap_ms_; ++i) envelope *= 2;
    envelope = std::min(envelope, cap_ms_);
    ++attempt_;
    const std::uint64_t half = envelope / 2;
    return half + next_random() % (envelope - half + 1);
  }

  unsigned attempts() const { return attempt_; }
  void reset() { attempt_ = 0; }

 private:
  // splitmix64: tiny, seedable, no global state (same generator family the
  // fault injector uses for its deterministic streams).
  std::uint64_t next_random() {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }

  std::uint64_t base_ms_;
  std::uint64_t cap_ms_;
  std::uint64_t state_;
  unsigned attempt_ = 0;
};

}  // namespace mpcx
