#include "support/faults.hpp"

#include <array>
#include <charconv>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "prof/counters.hpp"
#include "support/logging.hpp"

namespace mpcx::faults {

namespace detail {
std::atomic<bool> g_armed{false};
}  // namespace detail

namespace {

/// Armed plan + per-site deterministic op streams. g_mu guards the (cold)
/// arm/disarm path only; the per-op hot path reads g_armed_plan with one
/// acquire load — no mutex, so a plan cannot serialize the I/O threads it
/// is trying to perturb. Retired plans are kept alive forever (g_retired):
/// a concurrent next_action may still hold the old pointer, and plans are
/// a few dozen bytes armed a handful of times per process.
std::mutex g_mu;
Plan g_plan;
std::atomic<const Plan*> g_armed_plan{nullptr};
std::vector<std::unique_ptr<Plan>> g_retired;  // guarded by g_mu
std::array<std::atomic<std::uint64_t>, kSiteCount> g_site_ops{};

/// Counters block registered as "faults" so MPCX_STATS=1 reports injections
/// alongside the device blocks from PR 1.
prof::Counters& fault_counters() {
  static std::shared_ptr<prof::Counters> counters =
      prof::Registry::global().create("faults");
  return *counters;
}

/// splitmix64 of (seed, site, op index): a fixed function of the plan and
/// the operation's position in its site's stream, so the same plan replays
/// the same faults no matter how threads interleave across sites.
std::uint64_t mix(std::uint64_t seed, std::size_t site, std::uint64_t op) {
  std::uint64_t z = seed ^ (0x9E3779B97F4A7C15ULL * (op + 1)) ^
                    (0xBF58476D1CE4E5B9ULL * (site + 1));
  z += 0x9E3779B97F4A7C15ULL;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

/// Uniform [0,1) from the top 53 bits.
double u01(std::uint64_t bits) {
  return static_cast<double>(bits >> 11) * 0x1.0p-53;
}

bool parse_double(std::string_view text, double& out) {
  // std::from_chars<double> is incomplete on some libstdc++ versions the CI
  // matrix uses; strtod on a bounded copy is portable and good enough here.
  const std::string copy(text);
  char* end = nullptr;
  const double value = std::strtod(copy.c_str(), &end);
  if (end != copy.c_str() + copy.size()) return false;
  out = value;
  return true;
}

bool parse_u64(std::string_view text, std::uint64_t& out) {
  const auto [ptr, ec] = std::from_chars(text.data(), text.data() + text.size(), out);
  return ec == std::errc{} && ptr == text.data() + text.size();
}

std::uint32_t env_u32(const char* name, std::uint32_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  std::uint64_t parsed = 0;
  if (!parse_u64(value, parsed) || parsed > 0xFFFFFFFFULL) {
    log::warn("faults: ignoring malformed ", name, "='", value, "'");
    return fallback;
  }
  return static_cast<std::uint32_t>(parsed);
}

/// Deadline knobs: env-seeded once, test-overridable. 0xFFFFFFFF = "unset,
/// read the environment" so set_*() can trump getenv without ordering races
/// at static init.
constexpr std::uint32_t kUnset = 0xFFFFFFFFu;
std::atomic<std::uint32_t> g_op_timeout_ms{kUnset};
std::atomic<std::uint32_t> g_connect_timeout_ms{kUnset};

/// Arms the MPCX_FAULTS plan before main() (mirrors prof's MPCX_STATS
/// bootstrapping) so launched ranks inject without any code changes.
struct EnvInit {
  EnvInit() {
    const char* spec = std::getenv("MPCX_FAULTS");
    if (spec == nullptr || *spec == '\0') return;
    if (auto plan = parse_plan(spec)) {
      set_plan(*plan);
    }
  }
};
EnvInit g_env_init;

}  // namespace

prof::Counters& counters() { return fault_counters(); }

const char* site_name(Site site) {
  switch (site) {
    case Site::TcpWrite: return "tcp_write";
    case Site::TcpRead: return "tcp_read";
    case Site::ShmPush: return "shm_push";
    case Site::TcpConnect: return "tcp_connect";
    case Site::Count: break;
  }
  return "?";
}

std::optional<Plan> parse_plan(const std::string& spec) {
  Plan plan;
  std::string_view rest = spec;
  while (!rest.empty()) {
    const std::size_t comma = rest.find(',');
    std::string_view item = rest.substr(0, comma);
    rest = (comma == std::string_view::npos) ? std::string_view{} : rest.substr(comma + 1);
    if (item.empty()) continue;
    const std::size_t eq = item.find('=');
    if (eq == std::string_view::npos) {
      log::error("faults: malformed MPCX_FAULTS item '", std::string(item),
                 "' (expected key=value); plan not armed");
      return std::nullopt;
    }
    const std::string_view key = item.substr(0, eq);
    const std::string_view value = item.substr(eq + 1);
    bool ok = false;
    if (key == "drop") {
      ok = parse_double(value, plan.drop) && plan.drop >= 0.0 && plan.drop <= 1.0;
    } else if (key == "corrupt") {
      ok = parse_double(value, plan.corrupt) && plan.corrupt >= 0.0 && plan.corrupt <= 1.0;
    } else if (key == "delay_ms") {
      std::uint64_t ms = 0;
      ok = parse_u64(value, ms) && ms <= 60'000;
      if (ok) plan.delay_ms = static_cast<std::uint32_t>(ms);
    } else if (key == "reset_after") {
      ok = parse_u64(value, plan.reset_after);
    } else if (key == "reset_every") {
      ok = parse_u64(value, plan.reset_every);
    } else if (key == "seed") {
      ok = parse_u64(value, plan.seed);
    }
    if (!ok) {
      log::error("faults: malformed MPCX_FAULTS item '", std::string(item),
                 "'; plan not armed");
      return std::nullopt;
    }
  }
  return plan;
}

void set_plan(const Plan& plan) {
  std::lock_guard<std::mutex> lock(g_mu);
  g_plan = plan;
  for (auto& ops : g_site_ops) ops.store(0, std::memory_order_relaxed);
  const Plan* armed = nullptr;
  if (plan.active()) {
    g_retired.push_back(std::make_unique<Plan>(plan));
    armed = g_retired.back().get();
  }
  g_armed_plan.store(armed, std::memory_order_release);
  detail::g_armed.store(plan.active(), std::memory_order_relaxed);
  if (plan.active()) {
    log::info("faults: armed plan drop=", plan.drop, " corrupt=", plan.corrupt,
              " delay_ms=", plan.delay_ms, " reset_after=", plan.reset_after,
              " reset_every=", plan.reset_every, " seed=", plan.seed);
  }
}

void clear_plan() {
  std::lock_guard<std::mutex> lock(g_mu);
  g_plan = Plan{};
  g_armed_plan.store(nullptr, std::memory_order_release);
  detail::g_armed.store(false, std::memory_order_relaxed);
}

Plan current_plan() {
  std::lock_guard<std::mutex> lock(g_mu);
  return g_plan;
}

Action next_action(Site site) {
  // Lock-free plan read: the armed plan is published as an immutable
  // heap object (acquire pairs with set_plan's release), so injected-site
  // I/O threads never serialize on a mutex here — a lock would narrow the
  // very race windows delay plans exist to widen.
  const Plan* armed = g_armed_plan.load(std::memory_order_acquire);
  if (armed == nullptr) return Action::None;
  const Plan& plan = *armed;
  const std::size_t site_idx = static_cast<std::size_t>(site);
  const std::uint64_t op = g_site_ops[site_idx].fetch_add(1, std::memory_order_relaxed);

  if (plan.delay_ms > 0) {
    fault_counters().add(prof::Ctr::FaultsInjected);
    std::this_thread::sleep_for(std::chrono::milliseconds(plan.delay_ms));
  }

  // reset_after is 1-based and fires exactly once per site.
  if (plan.reset_after > 0 && op + 1 == plan.reset_after) {
    fault_counters().add(prof::Ctr::FaultsInjected);
    log::debug("faults: injecting reset at ", site_name(site), " op ", op + 1);
    return Action::Reset;
  }

  // reset_every recurs: every Nth operation per site tears the connection
  // down, so reconnect soaks exercise repeated failures deterministically.
  if (plan.reset_every > 0 && (op + 1) % plan.reset_every == 0) {
    fault_counters().add(prof::Ctr::FaultsInjected);
    log::debug("faults: injecting periodic reset at ", site_name(site), " op ", op + 1);
    return Action::Reset;
  }

  const double roll = u01(mix(plan.seed, site_idx, op));
  if (plan.drop > 0.0 && roll < plan.drop) {
    fault_counters().add(prof::Ctr::FaultsInjected);
    log::debug("faults: injecting drop at ", site_name(site), " op ", op + 1);
    return Action::Drop;
  }
  if (plan.corrupt > 0.0 && roll < plan.drop + plan.corrupt) {
    fault_counters().add(prof::Ctr::FaultsInjected);
    log::debug("faults: injecting corruption at ", site_name(site), " op ", op + 1);
    return Action::Corrupt;
  }
  return Action::None;
}

std::uint32_t op_timeout_ms() {
  std::uint32_t value = g_op_timeout_ms.load(std::memory_order_relaxed);
  if (value == kUnset) {
    value = env_u32("MPCX_OP_TIMEOUT_MS", 0);
    g_op_timeout_ms.store(value, std::memory_order_relaxed);
  }
  return value;
}

std::uint32_t connect_timeout_ms() {
  std::uint32_t value = g_connect_timeout_ms.load(std::memory_order_relaxed);
  if (value == kUnset) {
    value = env_u32("MPCX_CONNECT_TIMEOUT_MS", 30'000);
    g_connect_timeout_ms.store(value, std::memory_order_relaxed);
  }
  return value;
}

void set_op_timeout_ms(std::uint32_t ms) {
  g_op_timeout_ms.store(ms == kUnset ? kUnset - 1 : ms, std::memory_order_relaxed);
}

void set_connect_timeout_ms(std::uint32_t ms) {
  g_connect_timeout_ms.store(ms == kUnset ? kUnset - 1 : ms, std::memory_order_relaxed);
}

}  // namespace mpcx::faults
