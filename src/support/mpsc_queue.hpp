// Intrusive lock-free multi-producer/single-consumer queue (Vyukov's
// algorithm) — the submission side of tcpdev's per-peer send queues.
//
// Producers (application threads posting sends) push with one atomic
// exchange and one store: no CAS loop, no contention on a mutex, wait-free
// for each producer. The single consumer — whoever currently owns the
// peer's write channel — pops in FIFO order. tcpdev pairs this with a
// try-lock drain protocol (see drain_sends there): the queue itself never
// blocks, and the "who drains" race is resolved by the channel mutex.
//
// pop() has one documented soft spot inherited from the algorithm: when a
// producer has exchanged the head but not yet linked its node, the queue is
// momentarily "non-empty but unpoppable" and pop() returns nullptr. Callers
// that track an external element count (tcpdev's `queued` counter) simply
// retry; the window is a few instructions on the producer's thread.
#pragma once

#include <atomic>

namespace mpcx::support {

/// Base class for queue elements; derive your node type from it.
struct MpscNode {
  std::atomic<MpscNode*> next{nullptr};
};

/// The queue. Not copyable or movable (nodes point into it via the stub).
/// Destruction does not free queued nodes — drain first.
class MpscQueue {
 public:
  MpscQueue() : head_(&stub_), tail_(&stub_) {}
  MpscQueue(const MpscQueue&) = delete;
  MpscQueue& operator=(const MpscQueue&) = delete;

  /// Producer side: wait-free, safe from any number of threads.
  void push(MpscNode* node) {
    node->next.store(nullptr, std::memory_order_relaxed);
    MpscNode* prev = head_.exchange(node, std::memory_order_acq_rel);
    prev->next.store(node, std::memory_order_release);
  }

  /// Consumer side: exactly one thread at a time (tcpdev: the holder of the
  /// peer's write mutex). Returns nullptr when empty OR when a producer is
  /// mid-push (see header comment); callers with an external count retry.
  MpscNode* pop() {
    MpscNode* tail = tail_;
    MpscNode* next = tail->next.load(std::memory_order_acquire);
    if (tail == &stub_) {
      if (next == nullptr) return nullptr;  // empty (or producer mid-push)
      tail_ = next;
      tail = next;
      next = next->next.load(std::memory_order_acquire);
    }
    if (next != nullptr) {
      tail_ = next;
      return tail;
    }
    // tail is the last linked node. If a producer already exchanged head_
    // past it, its link is still in flight — report empty and let the
    // caller retry. Otherwise re-thread the stub behind tail so tail can be
    // handed out while the list stays terminated.
    if (head_.load(std::memory_order_acquire) != tail) return nullptr;
    push(&stub_);
    next = tail->next.load(std::memory_order_acquire);
    if (next == nullptr) return nullptr;  // stub link in flight; retry later
    tail_ = next;
    return tail;
  }

 private:
  std::atomic<MpscNode*> head_;  ///< producers exchange here
  MpscNode* tail_;               ///< consumer-owned
  MpscNode stub_;
};

}  // namespace mpcx::support
