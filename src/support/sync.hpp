// Small synchronization primitives used across the library.
//
// The paper's thread-safety story rests on classic monitor-style locking
// (per-destination channel locks, locked communication sets, wait/notify on
// request objects). These helpers keep that style explicit and testable.
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <mutex>

#include "support/error.hpp"

namespace mpcx {

/// One-shot countdown latch: count_down() `count` times releases all waiters.
class CountdownLatch {
 public:
  explicit CountdownLatch(std::size_t count) : count_(count) {}

  void count_down() {
    std::lock_guard<std::mutex> lock(mu_);
    if (count_ == 0) throw ArgumentError("CountdownLatch: count_down past zero");
    if (--count_ == 0) cv_.notify_all();
  }

  void wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return count_ == 0; });
  }

  template <typename Rep, typename Period>
  bool wait_for(std::chrono::duration<Rep, Period> timeout) {
    std::unique_lock<std::mutex> lock(mu_);
    return cv_.wait_for(lock, timeout, [&] { return count_ == 0; });
  }

  std::size_t pending() const {
    std::lock_guard<std::mutex> lock(mu_);
    return count_;
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::size_t count_;
};

/// Reusable barrier for `parties` threads (generation-counted, so threads may
/// immediately re-enter). Used by the in-process cluster harness and tests.
class CyclicBarrier {
 public:
  explicit CyclicBarrier(std::size_t parties) : parties_(parties), waiting_(0), generation_(0) {
    if (parties == 0) throw ArgumentError("CyclicBarrier: parties must be > 0");
  }

  /// Block until all parties arrive. Returns true for exactly one caller per
  /// generation (the "serial" thread, as in java.util.concurrent).
  bool arrive_and_wait() {
    std::unique_lock<std::mutex> lock(mu_);
    const std::size_t gen = generation_;
    if (++waiting_ == parties_) {
      waiting_ = 0;
      ++generation_;
      cv_.notify_all();
      return true;
    }
    cv_.wait(lock, [&] { return generation_ != gen; });
    return false;
  }

  std::size_t parties() const { return parties_; }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  const std::size_t parties_;
  std::size_t waiting_;
  std::size_t generation_;
};

/// Single-value rendezvous slot: one producer sets, one consumer takes.
template <typename T>
class Exchanger {
 public:
  void put(T value) {
    std::lock_guard<std::mutex> lock(mu_);
    if (full_) throw Error("Exchanger: put on full slot");
    value_ = std::move(value);
    full_ = true;
    cv_.notify_one();
  }

  T take() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return full_; });
    full_ = false;
    return std::move(value_);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  T value_{};
  bool full_ = false;
};

}  // namespace mpcx
