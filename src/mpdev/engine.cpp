#include "mpdev/engine.hpp"

#include <algorithm>

#include "prof/hooks.hpp"
#include "prof/trace.hpp"
#include "support/error.hpp"

namespace mpcx::mpdev {

// ---- Request -------------------------------------------------------------------

Status Request::wait() {
  if (!dev_) throw CommError("Request::wait on null request");
  return engine_->to_status(dev_->wait());
}

std::optional<Status> Request::test() {
  if (!dev_) throw CommError("Request::test on null request");
  auto dev_status = dev_->test();
  if (!dev_status) return std::nullopt;
  return engine_->to_status(*dev_status);
}

// ---- Engine ---------------------------------------------------------------------

Engine::Engine(std::unique_ptr<xdev::Device> device, const xdev::DeviceConfig& config)
    : device_(std::move(device)) {
  world_ = device_->init(config);
  for (std::size_t i = 0; i < world_.size(); ++i) {
    rank_by_pid_.emplace(world_[i].value, static_cast<int>(i));
  }
  rank_ = static_cast<int>(config.self_index);
  // Dense node indices in first-seen order; matches hybdev's routing because
  // both derive from node_of_endpoint on the same config.
  std::unordered_map<std::string, int> node_index;
  node_by_rank_.reserve(config.world.size());
  for (std::size_t i = 0; i < config.world.size(); ++i) {
    const std::string node = xdev::node_of_endpoint(config, i);
    const auto it = node_index.emplace(node, static_cast<int>(node_index.size())).first;
    node_by_rank_.push_back(it->second);
  }
  node_count_ = std::max<int>(1, static_cast<int>(node_index.size()));
}

Engine::~Engine() {
  try {
    finish();
  } catch (const Error&) {
  }
}

void Engine::finish() {
  if (finished_) return;
  finished_ = true;
  device_->finish();
}

xdev::ProcessID Engine::pid_of(int rank) const {
  if (rank == kAnySource) return xdev::ProcessID::any();
  if (rank < 0 || rank >= size()) {
    throw ArgumentError("mpdev: rank " + std::to_string(rank) + " out of range [0, " +
                        std::to_string(size()) + ")");
  }
  return world_[static_cast<std::size_t>(rank)];
}

int Engine::rank_of(xdev::ProcessID pid) const {
  auto it = rank_by_pid_.find(pid.value);
  if (it == rank_by_pid_.end()) return -1;
  return it->second;
}

Status Engine::to_status(const xdev::DevStatus& dev) const {
  Status status;
  status.source = rank_of(dev.source);
  status.tag = dev.tag;
  status.context = dev.context;
  status.static_bytes = dev.static_bytes;
  status.dynamic_bytes = dev.dynamic_bytes;
  status.truncated = dev.truncated;
  status.cancelled = dev.cancelled;
  status.direct = dev.direct;
  status.error = dev.error;
  return status;
}

Request Engine::isend(buf::Buffer& buffer, int dst, int tag, int context) {
  return Request(device_->isend(buffer, pid_of(dst), tag, context), this);
}

Request Engine::issend(buf::Buffer& buffer, int dst, int tag, int context) {
  return Request(device_->issend(buffer, pid_of(dst), tag, context), this);
}

void Engine::send(buf::Buffer& buffer, int dst, int tag, int context) {
  device_->send(buffer, pid_of(dst), tag, context);
}

void Engine::ssend(buf::Buffer& buffer, int dst, int tag, int context) {
  device_->ssend(buffer, pid_of(dst), tag, context);
}

Request Engine::irecv(buf::Buffer& buffer, int src, int tag, int context) {
  return Request(device_->irecv(buffer, pid_of(src), tag, context), this);
}

Status Engine::recv(buf::Buffer& buffer, int src, int tag, int context) {
  return to_status(device_->recv(buffer, pid_of(src), tag, context));
}

Request Engine::isend_segments(std::span<const std::byte> header,
                               std::span<const xdev::SendSegment> segments, int dst, int tag,
                               int context) {
  return Request(device_->isend_segments(header, segments, pid_of(dst), tag, context), this);
}

Request Engine::issend_segments(std::span<const std::byte> header,
                                std::span<const xdev::SendSegment> segments, int dst, int tag,
                                int context) {
  return Request(device_->issend_segments(header, segments, pid_of(dst), tag, context), this);
}

void Engine::send_segments(std::span<const std::byte> header,
                           std::span<const xdev::SendSegment> segments, int dst, int tag,
                           int context) {
  device_->send_segments(header, segments, pid_of(dst), tag, context);
}

void Engine::ssend_segments(std::span<const std::byte> header,
                            std::span<const xdev::SendSegment> segments, int dst, int tag,
                            int context) {
  device_->ssend_segments(header, segments, pid_of(dst), tag, context);
}

Request Engine::irecv_direct(const xdev::RecvSpan& dst, int src, int tag, int context) {
  return Request(device_->irecv_direct(dst, pid_of(src), tag, context), this);
}

Status Engine::recv_direct(const xdev::RecvSpan& dst, int src, int tag, int context) {
  return to_status(device_->recv_direct(dst, pid_of(src), tag, context));
}

Status Engine::probe(int src, int tag, int context) {
  return to_status(device_->probe(pid_of(src), tag, context));
}

std::optional<Status> Engine::iprobe(int src, int tag, int context) {
  auto dev_status = device_->iprobe(pid_of(src), tag, context);
  if (!dev_status) return std::nullopt;
  return to_status(*dev_status);
}

// ---- Waitany (Sec. IV-E.1) ---------------------------------------------------------

struct Engine::WaitAnyObj final : xdev::CompletionHook {
  enum class Wake { None, Completed, Leader };

  std::mutex mu;
  std::condition_variable cv;
  Wake wake = Wake::None;
  xdev::DevRequest completed;  // valid when wake == Completed

  /// Paper: "all the other WaitAny objects call WaitAny.waitfor()".
  Wake wait_for_wake() {
    std::unique_lock<std::mutex> lock(mu);
    cv.wait(lock, [&] { return wake != Wake::None; });
    const Wake kind = wake;
    wake = Wake::None;
    return kind;
  }

  /// Paper: "Waitany.wake() is called for it".
  void wake_up(Wake kind, xdev::DevRequest request = nullptr) {
    {
      std::lock_guard<std::mutex> lock(mu);
      wake = kind;
      completed = std::move(request);
    }
    cv.notify_one();
  }
};

Status Engine::waitany(std::span<Request> requests, int& index) {
  index = -1;

  // Progress hook: advance in-flight nonblocking collective schedules
  // before (possibly) blocking, so Waitany threads provide progression.
  if (progress_fn_) progress_fn_();

  // Fast path (paper: "We call Test() for each element"): some request may
  // already be complete, or all may be invalid.
  bool any_valid = false;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!requests[i].valid()) continue;
    any_valid = true;
    if (auto status = requests[i].dev_->test()) {
      index = static_cast<int>(i);
      return to_status(*status);
    }
  }
  if (!any_valid) return Status{};

  // Slow path: we are going to block (as leader in peek() or as a queued
  // follower) until some request completes.
  if (prof::Hooks* hooks = prof::hooks()) hooks->on_wait();
  prof::Span span("waitany", "mpdev");

  auto wa = std::make_shared<WaitAnyObj>();

  // Install the WaitAny reference on every request. If one completed in the
  // meantime, set_hook reports it and we bail out before queueing.
  auto clear_hooks = [&] {
    for (Request& request : requests) {
      if (request.valid()) request.dev_->clear_hook();
    }
  };
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (!requests[i].valid()) continue;
    if (!requests[i].dev_->set_hook(wa)) {
      clear_hooks();
      index = static_cast<int>(i);
      return to_status(*requests[i].dev_->test());
    }
  }

  auto finish_with = [&](const xdev::DevRequest& dev) -> Status {
    clear_hooks();
    for (std::size_t i = 0; i < requests.size(); ++i) {
      if (requests[i].valid() && requests[i].dev_ == dev) {
        index = static_cast<int>(i);
        break;
      }
    }
    return to_status(*dev->test());
  };

  bool leader;
  {
    std::lock_guard<std::mutex> lock(waitany_mu_);
    waitany_queue_.push_back(wa);
    leader = waitany_queue_.front() == wa;
  }

  for (;;) {
    if (!leader) {
      const WaitAnyObj::Wake kind = wa->wait_for_wake();
      if (kind == WaitAnyObj::Wake::Completed) {
        return finish_with(wa->completed);
      }
      leader = true;  // promoted: fall through to peek
      continue;
    }

    // Leader: "The WaitAny object at the front of this queue is now
    // responsible for calling the peek() method."
    xdev::DevRequest completed = device_->peek();
    auto hook = completed->hook();

    if (hook == wa) {
      // Scenario 1: ours. Promote the next queued WaitAny to leader.
      {
        std::lock_guard<std::mutex> lock(waitany_mu_);
        waitany_queue_.pop_front();
        if (!waitany_queue_.empty()) {
          waitany_queue_.front()->wake_up(WaitAnyObj::Wake::Leader);
        }
      }
      return finish_with(completed);
    }

    if (hook) {
      // Scenario 2: belongs to another queued WaitAny — wake it.
      std::shared_ptr<WaitAnyObj> other;
      {
        std::lock_guard<std::mutex> lock(waitany_mu_);
        auto it = std::find_if(waitany_queue_.begin(), waitany_queue_.end(),
                               [&](const auto& q) { return q.get() == hook.get(); });
        if (it != waitany_queue_.end()) {
          other = *it;
          waitany_queue_.erase(it);
        }
      }
      if (other) other->wake_up(WaitAnyObj::Wake::Completed, std::move(completed));
      continue;
    }

    // Scenario 3: no live WaitAny reference — ignore this completion.
  }
}

}  // namespace mpcx::mpdev
