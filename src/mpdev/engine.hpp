// mpdev — the rank-based device layer (the paper's mpjdev).
//
// xdev below is rank-free; mpdev owns the mapping between MPI ranks and
// ProcessIDs, produces rank-denominated Statuses, and implements the
// multi-threaded Waitany() machinery of Sec. IV-E.1:
//
//   Threads calling Waitany enqueue a WaitAny object on a per-engine queue.
//   The FRONT object's thread is the "leader": it blocks in xdev's peek(),
//   which returns the most recently completed hooked request. Three
//   scenarios follow (paper's wording):
//     1. the request belongs to the leader's own WaitAny  -> done; promote
//        the next queued WaitAny to leader;
//     2. it belongs to another queued WaitAny             -> remove that
//        object from the queue and wake its thread;
//     3. it belongs to no live WaitAny                    -> ignore.
//   This avoids the CPU-burning poll loop a naive Waitany would need — the
//   property measured by the paper's ANY_SOURCE overlap experiment.
#pragma once

#include <condition_variable>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "bufx/buffer.hpp"
#include "xdev/device.hpp"

namespace mpcx::mpdev {

/// Rank wildcards (mpiJava values).
inline constexpr int kAnySource = -2;
inline constexpr int kAnyTag = -1;

/// Rank-denominated completion record.
struct Status {
  int source = 0;  ///< rank
  int tag = 0;
  int context = 0;
  std::size_t static_bytes = 0;
  std::size_t dynamic_bytes = 0;
  bool truncated = false;
  bool cancelled = false;
  bool direct = false;  ///< zero-copy receive landed in the caller's span
  ErrCode error = ErrCode::Success;  ///< device-reported failure, if any
};

class Engine;

/// Handle for one non-blocking mpdev operation. Copyable (shared state).
class Request {
 public:
  Request() = default;

  /// Block until complete.
  Status wait();

  /// Non-blocking completion check.
  std::optional<Status> test();

  bool valid() const { return dev_ != nullptr; }
  bool is_complete() const { return dev_ && dev_->is_complete(); }

  const xdev::DevRequest& dev() const { return dev_; }

 private:
  friend class Engine;
  Request(xdev::DevRequest dev, Engine* engine) : dev_(std::move(dev)), engine_(engine) {}

  xdev::DevRequest dev_;
  Engine* engine_ = nullptr;
};

class Engine {
 public:
  /// Takes ownership of an uninitialized device and bootstraps it.
  Engine(std::unique_ptr<xdev::Device> device, const xdev::DeviceConfig& config);
  ~Engine();

  Engine(const Engine&) = delete;
  Engine& operator=(const Engine&) = delete;

  int rank() const { return rank_; }
  int size() const { return static_cast<int>(world_.size()); }

  int send_overhead() const { return device_->send_overhead(); }
  int recv_overhead() const { return device_->recv_overhead(); }

  xdev::Device& device() { return *device_; }

  // ---- node topology ----------------------------------------------------------
  //
  // Computed once at bootstrap from the same node identities hybdev routes
  // by (node_of_endpoint). The hierarchical collectives use these to split a
  // communicator into intra-node groups with one leader per node.

  /// Small dense node index of `rank` (world-rank denominated), in
  /// [0, node_count()). Ranks with equal node_of() share a node.
  int node_of(int rank) const { return node_by_rank_.at(static_cast<std::size_t>(rank)); }

  /// Number of distinct nodes across the world.
  int node_count() const { return node_count_; }

  // ---- point to point ---------------------------------------------------------

  Request isend(buf::Buffer& buffer, int dst, int tag, int context);
  Request issend(buf::Buffer& buffer, int dst, int tag, int context);
  void send(buf::Buffer& buffer, int dst, int tag, int context);
  void ssend(buf::Buffer& buffer, int dst, int tag, int context);

  Request irecv(buf::Buffer& buffer, int src, int tag, int context);
  Status recv(buf::Buffer& buffer, int src, int tag, int context);

  // Zero-copy segment-list operations: rank-denominated forwards of the
  // xdev entry points (see device.hpp for the borrowing contract).
  Request isend_segments(std::span<const std::byte> header,
                         std::span<const xdev::SendSegment> segments, int dst, int tag,
                         int context);
  Request issend_segments(std::span<const std::byte> header,
                          std::span<const xdev::SendSegment> segments, int dst, int tag,
                          int context);
  void send_segments(std::span<const std::byte> header,
                     std::span<const xdev::SendSegment> segments, int dst, int tag, int context);
  void ssend_segments(std::span<const std::byte> header,
                      std::span<const xdev::SendSegment> segments, int dst, int tag, int context);
  Request irecv_direct(const xdev::RecvSpan& dst, int src, int tag, int context);
  Status recv_direct(const xdev::RecvSpan& dst, int src, int tag, int context);

  Status probe(int src, int tag, int context);
  std::optional<Status> iprobe(int src, int tag, int context);

  /// Block until one of `requests` completes; returns its status and sets
  /// `index`. Invalid/null requests are skipped (MPI semantics: if all are
  /// invalid, index = -1 and an empty status is returned).
  Status waitany(std::span<Request> requests, int& index);

  /// Install a progression callback invoked from the waitany path (before a
  /// thread blocks). The core layer uses it to advance in-flight nonblocking
  /// collective schedules, so a thread stuck in Waitany on unrelated
  /// requests still drives every collective forward. The callback must not
  /// call back into waitany.
  void set_progress_fn(std::function<void()> fn) { progress_fn_ = std::move(fn); }

  /// Shut down the device. Idempotent.
  void finish();

  Status to_status(const xdev::DevStatus& dev) const;
  xdev::ProcessID pid_of(int rank) const;
  int rank_of(xdev::ProcessID pid) const;

 private:
  struct WaitAnyObj;

  std::unique_ptr<xdev::Device> device_;
  std::vector<xdev::ProcessID> world_;
  std::unordered_map<std::uint64_t, int> rank_by_pid_;
  std::vector<int> node_by_rank_;  ///< world rank -> dense node index
  int node_count_ = 1;
  int rank_ = -1;
  bool finished_ = false;
  std::function<void()> progress_fn_;

  // The WaitanyQue of Sec. IV-E.1.
  std::mutex waitany_mu_;
  std::deque<std::shared_ptr<WaitAnyObj>> waitany_queue_;
};

}  // namespace mpcx::mpdev
