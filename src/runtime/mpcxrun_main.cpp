// mpcxrun — launcher executable (the paper's mpjrun module).
//
//   mpcxrun -np N [-daemon host:port]... [-stage] [-device tcpdev]
//           [-ports BASE] program [args...]
//
// Starts N ranks of `program` through the listed mpcxd daemons (default:
// one daemon at 127.0.0.1:20617), waits for completion, prints each rank's
// captured output, and exits with the first non-zero rank exit code.
// -stage ships the executable bytes to the daemons (Fig. 9b "remote
// classloading") instead of assuming a shared filesystem.
//
// Observability (docs/OBSERVABILITY.md): with MPCX_TRACE set in mpcxrun's
// own environment ("1" selects the default trace_merged.json), every rank
// is traced and the per-rank files are merged into one clock-aligned
// Chrome trace; MPCX_METRICS_MS=N adds per-rank pvar snapshots
// (mpcx_metrics.rank<r>.jsonl).
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "runtime/launcher.hpp"

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: mpcxrun -np N [-daemon host:port]... [-stage] [-device DEV] "
               "[-ports BASE] program [args...]\n");
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpcx::runtime;
  LaunchSpec spec;
  spec.nprocs = 0;

  int i = 1;
  for (; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "-np" && i + 1 < argc) {
      spec.nprocs = std::atoi(argv[++i]);
    } else if (arg == "-daemon" && i + 1 < argc) {
      const std::string addr = argv[++i];
      const auto colon = addr.find(':');
      if (colon == std::string::npos) usage();
      spec.daemons.push_back(DaemonAddr{addr.substr(0, colon),
                                        static_cast<std::uint16_t>(
                                            std::atoi(addr.c_str() + colon + 1))});
    } else if (arg == "-stage") {
      spec.stage_binary = true;
    } else if (arg == "-device" && i + 1 < argc) {
      spec.device = argv[++i];
    } else if (arg == "-ports" && i + 1 < argc) {
      spec.base_port = static_cast<std::uint16_t>(std::atoi(argv[++i]));
    } else if (arg[0] == '-') {
      usage();
    } else {
      break;
    }
  }
  if (spec.nprocs <= 0 || i >= argc) usage();
  spec.exe = argv[i++];
  for (; i < argc; ++i) spec.args.emplace_back(argv[i]);
  if (spec.daemons.empty()) spec.daemons.push_back(DaemonAddr{"127.0.0.1", 20617});

  // mpcxrun's own MPCX_TRACE / MPCX_METRICS_MS drive cluster-wide tracing
  // rather than tracing the launcher itself (it sends no messages).
  if (const char* trace = std::getenv("MPCX_TRACE")) {
    if (*trace != '\0' && std::strcmp(trace, "0") != 0) {
      spec.trace_path = std::strcmp(trace, "1") == 0 ? "trace_merged.json" : trace;
    }
  }
  if (const char* metrics = std::getenv("MPCX_METRICS_MS")) {
    const int period = std::atoi(metrics);
    if (period > 0) spec.metrics_ms = static_cast<unsigned>(period);
  }

  try {
    const auto results = launch_world(spec);
    int exit_code = 0;
    for (std::size_t r = 0; r < results.size(); ++r) {
      std::printf("---- rank %zu (pid %d, exit %d) ----\n%s", r, results[r].pid,
                  results[r].exit_code, results[r].output.c_str());
      if (results[r].exit_code != 0 && exit_code == 0) exit_code = results[r].exit_code;
    }
    return exit_code;
  } catch (const mpcx::Error& e) {
    std::fprintf(stderr, "mpcxrun: %s\n", e.what());
    return 1;
  }
}
