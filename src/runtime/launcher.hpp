// mpcxrun — the launcher side of the MPCX runtime (the paper's mpjrun
// module, Sec. IV-D).
//
// Contacts one or more mpcxd daemons, asks each to start MPCX processes
// with the right MPCX_RANK/MPCX_WORLD environment, then waits for them and
// collects their output. Supports both Fig. 9 modes: local exec (shared
// filesystem) and staged upload ("remote classloading").
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "runtime/protocol.hpp"

namespace mpcx::runtime {

/// One daemon endpoint.
struct DaemonAddr {
  std::string host = "127.0.0.1";
  std::uint16_t port = 0;
};

/// Client for a single daemon connection.
class DaemonClient {
 public:
  explicit DaemonClient(const DaemonAddr& addr);

  SpawnReply spawn(const SpawnRequest& request);
  /// Spawn every rank placed on this daemon in one round trip (the shared
  /// binary/args/env travel once). Used by launch_world's per-daemon
  /// bootstrap threads.
  SpawnBatchReply spawn_batch(const SpawnBatchRequest& request);
  StatusReply status(std::int32_t pid);
  FetchReply fetch(std::int32_t pid);
  /// Kill every live child on the daemon (MPI_Abort escalation); returns
  /// the number of processes signalled. Pass the aborting rank's pid as
  /// initiator_pid so the daemon leaves it to exit on its own (a launcher-
  /// driven abort has no initiator and kills everything).
  AbortReply abort(std::int32_t code, std::int32_t initiator_pid = -1);
  void shutdown();

 private:
  net::Socket sock_;
};

struct LaunchSpec {
  int nprocs = 2;
  std::string exe;                 ///< path to the MPCX program
  std::vector<std::string> args;
  std::string device = "tcpdev";   ///< multi-process requires tcpdev
  std::uint16_t base_port = 0;     ///< 0: pick a free range automatically
  bool stage_binary = false;       ///< ship the executable to the daemons
  std::vector<DaemonAddr> daemons; ///< round-robin placement; >= 1
  std::size_t eager_threshold = 0; ///< 0 = library default
  int socket_buffer_bytes = 0;
  /// Non-empty: trace every rank (MPCX_TRACE=<trace_path>.rank<r>.json) and
  /// merge the per-rank files into one clock-aligned Chrome trace at
  /// trace_path after the job exits.
  std::string trace_path;
  /// > 0: periodic pvar snapshots every N ms per rank
  /// (MPCX_METRICS_MS / MPCX_METRICS_PATH), written next to the launcher as
  /// <metrics_base>.rank<r>.jsonl.
  unsigned metrics_ms = 0;
  std::string metrics_base = "mpcx_metrics";
  /// Extra environment handed to every rank verbatim, after the MPCX_*
  /// entries the launcher computes (so a collision here wins). Used to arm
  /// per-job knobs: MPCX_FT, MPCX_RELIABLE, fault plans, probe behaviors.
  std::vector<std::pair<std::string, std::string>> extra_env;
};

struct ProcessResult {
  std::int32_t pid = -1;
  int exit_code = -1;
  std::string output;
};

/// Launch spec.nprocs processes across the daemons, wait for all of them,
/// and return per-rank results (exit code + captured output).
std::vector<ProcessResult> launch_world(const LaunchSpec& spec);

/// Merge per-rank Chrome trace files (dump_trace output) into one file at
/// `out_path`. Every rank's timestamps are shifted onto rank 0's steady
/// clock using the "mpcx_clock_sync" metadata event each dump carries
/// (offset = wall - steady; wall clocks agree across ranks on one node, and
/// across nodes to NTP precision), and a process_name metadata record names
/// each rank's track. Returns the number of rank files merged; files that
/// are missing or carry no sync event are skipped.
std::size_t merge_traces(const std::vector<std::string>& rank_files,
                         const std::string& out_path);

}  // namespace mpcx::runtime
