// Wire protocol between the mpcxrun launcher and mpcxd daemons
// (the paper's runtime, Sec. IV-D / Fig. 9).
//
// Frames are [u32 length][payload]; payloads are encoded with the bufx
// serializer. Request kinds:
//   Spawn    — start one MPCX process. Two modes, mirroring Fig. 9:
//              * local  (Fig. 9a "local classloading"): exec a path that
//                already exists on the compute node / shared filesystem;
//              * staged (Fig. 9b "remote classloading"): the executable
//                bytes travel WITH the request; the daemon materializes
//                and runs them — no shared filesystem needed.
//   Status   — poll a spawned process (running / exited + code).
//   Fetch    — retrieve the captured stdout+stderr of a finished process.
//   Shutdown — stop the daemon loop.
//   Abort    — kill every live child (MPI_Abort escalation from a rank).
//   Subscribe — register the connection for rank-failure push events; the
//              daemon then writes a RankFailed frame whenever a spawned
//              child that announced itself as an MPCX rank (MPCX_RANK in
//              its spawn env) dies with a nonzero exit status. Used by the
//              MPCX_FT=1 failure-detector thread in World.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "bufx/serializer.hpp"
#include "support/socket.hpp"

namespace mpcx::runtime {

enum class MsgKind : std::uint8_t {
  Spawn = 1,
  SpawnReply = 2,
  Status = 3,
  StatusReply = 4,
  Fetch = 5,
  FetchReply = 6,
  Shutdown = 7,
  ShutdownReply = 8,
  Abort = 9,
  AbortReply = 10,
  Subscribe = 11,   ///< header-only: register for RankFailed push events
  RankFailed = 12,  ///< daemon -> subscriber push (RankFailedEvent)
  SpawnBatch = 13,      ///< spawn every rank placed on this daemon in one trip
  SpawnBatchReply = 14,
};

struct SpawnRequest {
  bool staged = false;
  std::string exe;  ///< path (local mode) or a name for the staged binary
  std::vector<std::string> args;
  std::vector<std::pair<std::string, std::string>> env;
  std::vector<std::byte> binary;  ///< executable bytes (staged mode)

  void serialize(buf::ByteSink& sink) const {
    sink.put<std::uint8_t>(staged ? 1 : 0);
    sink.put_string(exe);
    buf::encode_value(sink, args);
    buf::encode_value(sink, env);
    sink.put<std::uint32_t>(static_cast<std::uint32_t>(binary.size()));
    sink.put_bytes(binary.data(), binary.size());
  }
  static SpawnRequest deserialize(buf::ByteSource& source) {
    SpawnRequest req;
    req.staged = source.get<std::uint8_t>() != 0;
    req.exe = source.get_string();
    req.args = buf::decode_value<std::vector<std::string>>(source);
    req.env = buf::decode_value<std::vector<std::pair<std::string, std::string>>>(source);
    req.binary.resize(source.get<std::uint32_t>());
    source.get_bytes(req.binary.data(), req.binary.size());
    return req;
  }
};

struct SpawnReply {
  std::int32_t pid = -1;
  std::string error;

  void serialize(buf::ByteSink& sink) const {
    sink.put(pid);
    sink.put_string(error);
  }
  static SpawnReply deserialize(buf::ByteSource& source) {
    SpawnReply reply;
    reply.pid = source.get<std::int32_t>();
    reply.error = source.get_string();
    return reply;
  }
};

/// One launcher→daemon round trip spawning EVERY rank placed on that
/// daemon. The payload all ranks share — executable path, staged binary
/// bytes, argv, common environment — travels once instead of once per
/// rank, and the daemon answers with one reply after forking the whole
/// batch. With per-daemon batches issued concurrently, bootstrap cost is
/// one round trip regardless of ranks-per-node (the launcher→daemon→child
/// spawn tree replaces the old flat rank-at-a-time loop).
struct SpawnBatchRequest {
  /// Shared spawn parameters. `common.env` applies to every rank.
  SpawnRequest common;
  /// Rank-specific environment (MPCX_RANK etc.), appended after common.env
  /// so a per-rank entry wins. One element per process to spawn.
  std::vector<std::vector<std::pair<std::string, std::string>>> per_rank_env;

  void serialize(buf::ByteSink& sink) const {
    common.serialize(sink);
    sink.put<std::uint32_t>(static_cast<std::uint32_t>(per_rank_env.size()));
    for (const auto& env : per_rank_env) buf::encode_value(sink, env);
  }
  static SpawnBatchRequest deserialize(buf::ByteSource& source) {
    SpawnBatchRequest req;
    req.common = SpawnRequest::deserialize(source);
    req.per_rank_env.resize(source.get<std::uint32_t>());
    for (auto& env : req.per_rank_env) {
      env = buf::decode_value<std::vector<std::pair<std::string, std::string>>>(source);
    }
    return req;
  }
};

struct SpawnBatchReply {
  std::vector<std::int32_t> pids;  ///< parallel to per_rank_env; -1 = failed
  std::string error;               ///< first failure, if any

  void serialize(buf::ByteSink& sink) const {
    sink.put<std::uint32_t>(static_cast<std::uint32_t>(pids.size()));
    for (const std::int32_t pid : pids) sink.put(pid);
    sink.put_string(error);
  }
  static SpawnBatchReply deserialize(buf::ByteSource& source) {
    SpawnBatchReply reply;
    reply.pids.resize(source.get<std::uint32_t>());
    for (auto& pid : reply.pids) pid = source.get<std::int32_t>();
    reply.error = source.get_string();
    return reply;
  }
};

struct StatusRequest {
  std::int32_t pid = -1;
  void serialize(buf::ByteSink& sink) const { sink.put(pid); }
  static StatusRequest deserialize(buf::ByteSource& source) {
    return StatusRequest{source.get<std::int32_t>()};
  }
};

struct StatusReply {
  bool exited = false;
  std::int32_t exit_code = -1;
  std::string error;

  void serialize(buf::ByteSink& sink) const {
    sink.put<std::uint8_t>(exited ? 1 : 0);
    sink.put(exit_code);
    sink.put_string(error);
  }
  static StatusReply deserialize(buf::ByteSource& source) {
    StatusReply reply;
    reply.exited = source.get<std::uint8_t>() != 0;
    reply.exit_code = source.get<std::int32_t>();
    reply.error = source.get_string();
    return reply;
  }
};

struct FetchRequest {
  std::int32_t pid = -1;
  void serialize(buf::ByteSink& sink) const { sink.put(pid); }
  static FetchRequest deserialize(buf::ByteSource& source) {
    return FetchRequest{source.get<std::int32_t>()};
  }
};

struct FetchReply {
  std::string output;
  std::string error;
  void serialize(buf::ByteSink& sink) const {
    sink.put_string(output);
    sink.put_string(error);
  }
  static FetchReply deserialize(buf::ByteSource& source) {
    FetchReply reply;
    reply.output = source.get_string();
    reply.error = source.get_string();
    return reply;
  }
};

struct AbortRequest {
  std::int32_t code = 1;  ///< exit code the aborting rank used
  /// pid of the aborting rank, or -1. The daemon skips it when signalling
  /// so the initiator's own _Exit(code) — not SIGTERM — sets its exit code.
  std::int32_t initiator_pid = -1;
  void serialize(buf::ByteSink& sink) const {
    sink.put(code);
    sink.put(initiator_pid);
  }
  static AbortRequest deserialize(buf::ByteSource& source) {
    AbortRequest request;
    request.code = source.get<std::int32_t>();
    request.initiator_pid = source.get<std::int32_t>();
    return request;
  }
};

struct AbortReply {
  std::int32_t killed = 0;  ///< number of live children signalled
  void serialize(buf::ByteSink& sink) const { sink.put(killed); }
  static AbortReply deserialize(buf::ByteSource& source) {
    return AbortReply{source.get<std::int32_t>()};
  }
};

/// Daemon -> subscriber push: a spawned child that announced an MPCX rank
/// identity exited with a nonzero status (crash, kill, or abort). The uuid
/// is the rank's xdev ProcessID value ((MPCX_SESSION << 24) + rank + 1,
/// matching World::from_env) so subscribers can address device-layer state
/// without re-deriving the session.
struct RankFailedEvent {
  std::int32_t rank = -1;       ///< MPCX_RANK from the spawn env
  std::uint64_t uuid = 0;       ///< xdev ProcessID value of the dead rank
  std::int32_t exit_code = -1;  ///< 128 + signal for signal deaths (SIGKILL = 137)

  void serialize(buf::ByteSink& sink) const {
    sink.put(rank);
    sink.put(uuid);
    sink.put(exit_code);
  }
  static RankFailedEvent deserialize(buf::ByteSource& source) {
    RankFailedEvent event;
    event.rank = source.get<std::int32_t>();
    event.uuid = source.get<std::uint64_t>();
    event.exit_code = source.get<std::int32_t>();
    return event;
  }
};

/// Write one [kind][length][payload] frame.
template <typename T>
void write_frame(net::Socket& sock, MsgKind kind, const T& message) {
  std::vector<std::byte> payload;
  buf::ByteSink sink(payload);
  message.serialize(sink);
  std::vector<std::byte> frame(5 + payload.size());
  frame[0] = static_cast<std::byte>(kind);
  store_wire<std::uint32_t>(frame.data() + 1, static_cast<std::uint32_t>(payload.size()));
  std::copy(payload.begin(), payload.end(), frame.begin() + 5);
  sock.write_all(frame);
}

/// Header-only frame (Shutdown / ShutdownReply).
inline void write_frame(net::Socket& sock, MsgKind kind) {
  std::array<std::byte, 5> frame{};
  frame[0] = static_cast<std::byte>(kind);
  store_wire<std::uint32_t>(frame.data() + 1, 0);
  sock.write_all(frame);
}

struct Frame {
  MsgKind kind;
  std::vector<std::byte> payload;

  template <typename T>
  T as() const {
    buf::ByteSource source(payload);
    return T::deserialize(source);
  }
};

inline Frame read_frame(net::Socket& sock) {
  std::array<std::byte, 5> header{};
  sock.read_all(header);
  Frame frame;
  frame.kind = static_cast<MsgKind>(header[0]);
  frame.payload.resize(load_wire<std::uint32_t>(header.data() + 1));
  if (!frame.payload.empty()) sock.read_all(frame.payload);
  return frame;
}

}  // namespace mpcx::runtime
