// mpcxd — compute-node daemon executable.
//
//   mpcxd [port]        (default 20617)
//
// Runs in the foreground; install under your service manager of choice
// (the paper wrapped its Java daemon with the Java Service Wrapper — the
// C++ equivalent is a systemd unit).
#include <cstdio>
#include <cstdlib>

#include "runtime/daemon.hpp"
#include "support/logging.hpp"

int main(int argc, char** argv) {
  const auto port = static_cast<std::uint16_t>(argc > 1 ? std::atoi(argv[1]) : 20617);
  mpcx::log::set_level(mpcx::log::Level::Info);
  try {
    mpcx::runtime::Daemon daemon(port);
    std::printf("mpcxd: listening on %u, session dir %s\n", daemon.port(),
                daemon.session_dir().c_str());
    std::fflush(stdout);
    daemon.serve();
  } catch (const mpcx::Error& e) {
    std::fprintf(stderr, "mpcxd: %s\n", e.what());
    return 1;
  }
  return 0;
}
