// mpcx_rank_probe — a minimal multi-process MPCX program, used by the
// runtime integration tests and as a standalone demo:
//
//   mpcxrun -np 4 ./mpcx_rank_probe
//
// Bootstraps from the MPCX_* environment (World::from_env), performs an
// Allreduce and a ring token pass, prints a verifiable line, and exits 0
// on success.
//
// With MPCX_PROBE_DIE_RANK=<r> it instead runs the ULFM recovery drill:
// rank r raises SIGKILL mid-Allreduce; survivors catch the resulting
// Error (ProcFailed from the failure detector, or Timeout from the
// MPCX_OP_TIMEOUT_MS backstop), wait for the daemon's RankFailed
// broadcast, Revoke + Shrink the world, and prove the shrunk
// communicator works with a fresh Allreduce.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <chrono>
#include <thread>

#include "core/intracomm.hpp"
#include "core/world.hpp"

namespace {

/// The ISSUE 7 acceptance scenario, run inside each rank process.
int run_recovery_drill(int die_rank) {
  using namespace mpcx;
  using Clock = std::chrono::steady_clock;
  auto world = World::from_env();
  Intracomm& comm = world->COMM_WORLD();
  const int rank = comm.Rank();
  const int size = comm.Size();
  if (die_rank < 0 || die_rank >= size) {
    std::fprintf(stderr, "rank_probe: MPCX_PROBE_DIE_RANK %d out of range\n", die_rank);
    return 6;
  }

  // Warm-up collectives, then the victim dies MID-collective: it raises
  // SIGKILL before contributing to iteration 3, so every survivor is left
  // blocked inside that Allreduce with no clean shutdown anywhere.
  int contribution = rank + 1;
  ErrCode observed = ErrCode::Success;
  for (int iter = 0; iter < 4; ++iter) {
    if (rank == die_rank && iter == 3) {
      ::raise(SIGKILL);  // no exit handlers, no goodbye frames
    }
    int total = 0;
    try {
      comm.Allreduce(&contribution, 0, &total, 0, 1, types::INT(), ops::SUM());
    } catch (const Error& e) {
      observed = e.code();
      break;
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  if (observed == ErrCode::Success) {
    std::fprintf(stderr, "rank_probe: survivor never saw the failure\n");
    return 7;
  }

  // The daemon's heartbeat reaps the corpse and broadcasts RankFailed;
  // wait for the detector thread to record it.
  const auto poll_start = Clock::now();
  while (world->failed_ranks().empty() &&
         Clock::now() - poll_start < std::chrono::seconds(10)) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  const auto detect_ms = std::chrono::duration_cast<std::chrono::milliseconds>(
                             Clock::now() - poll_start)
                             .count();
  const std::vector<int> failed = world->failed_ranks();
  if (failed.empty()) {
    std::fprintf(stderr, "rank_probe: daemon never reported the dead rank\n");
    return 8;
  }

  comm.Revoke();
  auto shrunk = comm.Shrink();
  if (shrunk == nullptr) {
    std::fprintf(stderr, "rank_probe: Shrink returned null for a survivor\n");
    return 9;
  }
  if (!shrunk->Agree(true)) {
    std::fprintf(stderr, "rank_probe: Agree(true) came back false\n");
    return 10;
  }

  // The shrunk communicator must actually WORK: a collective over it has to
  // complete and produce exactly the survivor sum.
  int total = 0;
  shrunk->Allreduce(&contribution, 0, &total, 0, 1, types::INT(), ops::SUM());
  int expect = size * (size + 1) / 2;
  for (int f : failed) expect -= f + 1;

  std::printf("rank_probe recovery rank=%d observed=%s detect_ms=%lld shrunk_size=%d allreduce=%d\n",
              rank, err_code_name(observed), static_cast<long long>(detect_ms),
              shrunk->Size(), total);
  world->Finalize();
  return total == expect ? 0 : 11;
}

}  // namespace

int main() {
  using namespace mpcx;
  if (const char* die = std::getenv("MPCX_PROBE_DIE_RANK")) {
    try {
      return run_recovery_drill(std::atoi(die));
    } catch (const Error& e) {
      std::fprintf(stderr, "rank_probe recovery: %s\n", e.what());
      return 12;
    }
  }
  try {
    auto world = World::from_env();
    Intracomm& comm = world->COMM_WORLD();
    const int rank = comm.Rank();
    const int size = comm.Size();

    int contribution = rank + 1;
    int total = 0;
    comm.Allreduce(&contribution, 0, &total, 0, 1, types::INT(), ops::SUM());

    // A nonblocking allreduce drives the schedule engine too, so traced runs
    // (MPCX_TRACE) carry {sched, round}-stamped p2p flows in every rank file.
    int nb_total = 0;
    comm.Iallreduce(&contribution, 0, &nb_total, 0, 1, types::INT(), ops::SUM()).Wait();
    if (nb_total != total) {
      std::fprintf(stderr, "rank_probe: Iallreduce %d != Allreduce %d\n", nb_total, total);
      return 5;
    }

    int token = 0;
    if (size > 1) {
      if (rank == 0) {
        token = 42;
        comm.Send(&token, 0, 1, types::INT(), 1, 9);
        comm.Recv(&token, 0, 1, types::INT(), size - 1, 9);
      } else {
        comm.Recv(&token, 0, 1, types::INT(), rank - 1, 9);
        ++token;
        comm.Send(&token, 0, 1, types::INT(), (rank + 1) % size, 9);
      }
    }

    std::printf("rank_probe rank=%d size=%d allreduce=%d token=%d\n", rank, size, total, token);
    const bool ok = total == size * (size + 1) / 2;
    world->Finalize();
    return ok ? 0 : 3;
  } catch (const Error& e) {
    std::fprintf(stderr, "rank_probe: %s\n", e.what());
    return 4;
  }
}
