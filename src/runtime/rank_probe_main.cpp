// mpcx_rank_probe — a minimal multi-process MPCX program, used by the
// runtime integration tests and as a standalone demo:
//
//   mpcxrun -np 4 ./mpcx_rank_probe
//
// Bootstraps from the MPCX_* environment (World::from_env), performs an
// Allreduce and a ring token pass, prints a verifiable line, and exits 0
// on success.
#include <cstdio>

#include "core/intracomm.hpp"
#include "core/world.hpp"

int main() {
  using namespace mpcx;
  try {
    auto world = World::from_env();
    Intracomm& comm = world->COMM_WORLD();
    const int rank = comm.Rank();
    const int size = comm.Size();

    int contribution = rank + 1;
    int total = 0;
    comm.Allreduce(&contribution, 0, &total, 0, 1, types::INT(), ops::SUM());

    // A nonblocking allreduce drives the schedule engine too, so traced runs
    // (MPCX_TRACE) carry {sched, round}-stamped p2p flows in every rank file.
    int nb_total = 0;
    comm.Iallreduce(&contribution, 0, &nb_total, 0, 1, types::INT(), ops::SUM()).Wait();
    if (nb_total != total) {
      std::fprintf(stderr, "rank_probe: Iallreduce %d != Allreduce %d\n", nb_total, total);
      return 5;
    }

    int token = 0;
    if (size > 1) {
      if (rank == 0) {
        token = 42;
        comm.Send(&token, 0, 1, types::INT(), 1, 9);
        comm.Recv(&token, 0, 1, types::INT(), size - 1, 9);
      } else {
        comm.Recv(&token, 0, 1, types::INT(), rank - 1, 9);
        ++token;
        comm.Send(&token, 0, 1, types::INT(), (rank + 1) % size, 9);
      }
    }

    std::printf("rank_probe rank=%d size=%d allreduce=%d token=%d\n", rank, size, total, token);
    const bool ok = total == size * (size + 1) / 2;
    world->Finalize();
    return ok ? 0 : 3;
  } catch (const Error& e) {
    std::fprintf(stderr, "rank_probe: %s\n", e.what());
    return 4;
  }
}
