#include "runtime/launcher.hpp"

#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <exception>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <thread>

#include "support/error.hpp"
#include "support/logging.hpp"

namespace mpcx::runtime {

DaemonClient::DaemonClient(const DaemonAddr& addr)
    : sock_(net::Socket::connect(addr.host, addr.port, 5000)) {}

SpawnReply DaemonClient::spawn(const SpawnRequest& request) {
  write_frame(sock_, MsgKind::Spawn, request);
  const Frame frame = read_frame(sock_);
  if (frame.kind != MsgKind::SpawnReply) throw RuntimeError("mpcxrun: bad spawn reply");
  return frame.as<SpawnReply>();
}

SpawnBatchReply DaemonClient::spawn_batch(const SpawnBatchRequest& request) {
  write_frame(sock_, MsgKind::SpawnBatch, request);
  const Frame frame = read_frame(sock_);
  if (frame.kind != MsgKind::SpawnBatchReply) {
    throw RuntimeError("mpcxrun: bad spawn-batch reply");
  }
  return frame.as<SpawnBatchReply>();
}

StatusReply DaemonClient::status(std::int32_t pid) {
  write_frame(sock_, MsgKind::Status, StatusRequest{pid});
  const Frame frame = read_frame(sock_);
  if (frame.kind != MsgKind::StatusReply) throw RuntimeError("mpcxrun: bad status reply");
  return frame.as<StatusReply>();
}

FetchReply DaemonClient::fetch(std::int32_t pid) {
  write_frame(sock_, MsgKind::Fetch, FetchRequest{pid});
  const Frame frame = read_frame(sock_);
  if (frame.kind != MsgKind::FetchReply) throw RuntimeError("mpcxrun: bad fetch reply");
  return frame.as<FetchReply>();
}

AbortReply DaemonClient::abort(std::int32_t code, std::int32_t initiator_pid) {
  write_frame(sock_, MsgKind::Abort, AbortRequest{code, initiator_pid});
  const Frame frame = read_frame(sock_);
  if (frame.kind != MsgKind::AbortReply) throw RuntimeError("mpcxrun: bad abort reply");
  return frame.as<AbortReply>();
}

void DaemonClient::shutdown() {
  write_frame(sock_, MsgKind::Shutdown);
  (void)read_frame(sock_);
}

namespace {

std::vector<std::byte> read_binary(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) throw RuntimeError("mpcxrun: cannot read executable " + path);
  std::ostringstream content;
  content << in.rdbuf();
  const std::string text = content.str();
  const auto* bytes = reinterpret_cast<const std::byte*>(text.data());
  return std::vector<std::byte>(bytes, bytes + text.size());
}

std::string basename_of(const std::string& path) {
  const auto slash = path.find_last_of('/');
  return slash == std::string::npos ? path : path.substr(slash + 1);
}

/// Daemons may run children in a different working directory, so every path
/// handed down through the environment must be absolute.
std::string absolutize(const std::string& path) {
  if (!path.empty() && path.front() == '/') return path;
  char cwd[4096];
  if (::getcwd(cwd, sizeof cwd) == nullptr) return path;
  return std::string(cwd) + "/" + path;
}

std::string rank_trace_file(const std::string& base, int rank) {
  return absolutize(base) + ".rank" + std::to_string(rank) + ".json";
}

/// Reserve nprocs consecutive listen ports by probing bind() on a base.
std::uint16_t pick_port_range(int nprocs) {
  for (std::uint16_t base = 24000; base < 60000; base = static_cast<std::uint16_t>(base + 64)) {
    bool free = true;
    std::vector<net::Acceptor> probes;
    for (int i = 0; i < nprocs; ++i) {
      try {
        probes.emplace_back(static_cast<std::uint16_t>(base + i));
      } catch (const Error&) {
        free = false;
        break;
      }
    }
    if (free) return base;  // probes close here; a race is possible but the
                            // window is tiny and tcpdev fails loudly.
  }
  throw RuntimeError("mpcxrun: no free port range found");
}

}  // namespace

std::vector<ProcessResult> launch_world(const LaunchSpec& spec) {
  if (spec.nprocs <= 0) throw ArgumentError("mpcxrun: nprocs must be positive");
  if (spec.daemons.empty()) throw ArgumentError("mpcxrun: need at least one daemon");

  const std::uint16_t base_port =
      spec.base_port != 0 ? spec.base_port : pick_port_range(spec.nprocs);

  // Build MPCX_WORLD: host:port per rank, in rank order. Ranks placed
  // round-robin over the daemons; the port is rank-local on that host.
  std::vector<std::string> entries;
  for (int r = 0; r < spec.nprocs; ++r) {
    const DaemonAddr& daemon = spec.daemons[static_cast<std::size_t>(r) % spec.daemons.size()];
    entries.push_back(daemon.host + ":" + std::to_string(base_port + r));
  }
  std::string world;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (i > 0) world += ",";
    world += entries[i];
  }

  // MPCX_NODES: per-rank node identity (the daemon host the rank landed
  // on), same order as MPCX_WORLD. hybdev routes co-located ranks over the
  // shared-memory child using these identities; MPCX_NODE_ID can override
  // them to simulate a multi-node topology on one host.
  std::string nodes;
  for (int r = 0; r < spec.nprocs; ++r) {
    const DaemonAddr& daemon = spec.daemons[static_cast<std::size_t>(r) % spec.daemons.size()];
    if (r > 0) nodes += ",";
    nodes += daemon.host;
  }

  std::vector<std::byte> binary;
  if (spec.stage_binary) binary = read_binary(spec.exe);

  // One client connection per daemon, reused for all its ranks.
  std::vector<DaemonClient> clients;
  clients.reserve(spec.daemons.size());
  for (const DaemonAddr& addr : spec.daemons) clients.emplace_back(addr);

  // One session token for the whole launch: every rank must derive the
  // same ProcessIDs. Time-based so ProcessIDs (and shmdev segment names)
  // never collide with stale runs even when pids recycle.
  const std::string session = std::to_string(
      (std::chrono::steady_clock::now().time_since_epoch().count() >> 10) ^
      (static_cast<long long>(::getpid()) << 16));

  // Spawn payload shared by every rank. The staged binary travels once per
  // DAEMON (inside the batch), not once per rank.
  SpawnRequest common;
  common.staged = spec.stage_binary;
  common.exe = spec.stage_binary ? basename_of(spec.exe) : spec.exe;
  common.args = spec.args;
  common.binary = std::move(binary);
  common.env = {
      {"MPCX_WORLD", world},
      {"MPCX_NODES", nodes},
      {"MPCX_DEVICE", spec.device},
      {"MPCX_SESSION", session},
  };
  if (spec.eager_threshold > 0) {
    common.env.emplace_back("MPCX_EAGER_THRESHOLD", std::to_string(spec.eager_threshold));
  }
  if (spec.socket_buffer_bytes > 0) {
    common.env.emplace_back("MPCX_SOCKET_BUFFER", std::to_string(spec.socket_buffer_bytes));
  }
  if (spec.metrics_ms > 0) {
    common.env.emplace_back("MPCX_METRICS_MS", std::to_string(spec.metrics_ms));
  }
  for (const auto& kv : spec.extra_env) common.env.push_back(kv);

  std::vector<std::vector<int>> ranks_by_daemon(spec.daemons.size());
  for (int r = 0; r < spec.nprocs; ++r) {
    ranks_by_daemon[static_cast<std::size_t>(r) % spec.daemons.size()].push_back(r);
  }

  // Tree bootstrap: one thread per daemon issues a single SpawnBatch round
  // trip (launcher → daemon → children fan-out), then polls only its own
  // ranks. Startup latency is one batch round trip plus the slowest
  // daemon's fork loop — independent of ranks-per-daemon on the wire —
  // instead of nprocs serialized spawn round trips.
  std::vector<ProcessResult> results(static_cast<std::size_t>(spec.nprocs));
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(120);
  std::vector<std::exception_ptr> errors(spec.daemons.size());
  std::vector<std::thread> waiters;
  waiters.reserve(spec.daemons.size());
  for (std::size_t d = 0; d < spec.daemons.size(); ++d) {
    waiters.emplace_back([&, d] {
      try {
        const std::vector<int>& ranks = ranks_by_daemon[d];
        if (ranks.empty()) return;
        SpawnBatchRequest batch;
        batch.common = common;
        // Rank's own daemon, so World::Abort can escalate to the whole job.
        batch.common.env.emplace_back(
            "MPCX_DAEMON", spec.daemons[d].host + ":" + std::to_string(spec.daemons[d].port));
        for (const int r : ranks) {
          std::vector<std::pair<std::string, std::string>> env = {
              {"MPCX_RANK", std::to_string(r)}};
          if (!spec.trace_path.empty()) {
            env.emplace_back("MPCX_TRACE", rank_trace_file(spec.trace_path, r));
          }
          if (spec.metrics_ms > 0) {
            env.emplace_back("MPCX_METRICS_PATH", absolutize(spec.metrics_base) + ".rank" +
                                                      std::to_string(r) + ".jsonl");
          }
          batch.per_rank_env.push_back(std::move(env));
        }
        const SpawnBatchReply reply = clients[d].spawn_batch(batch);
        if (!reply.error.empty()) throw RuntimeError("mpcxrun: spawn failed: " + reply.error);
        if (reply.pids.size() != ranks.size()) {
          throw RuntimeError("mpcxrun: spawn-batch reply size mismatch");
        }
        for (std::size_t i = 0; i < ranks.size(); ++i) {
          const int r = ranks[i];
          const std::int32_t pid = reply.pids[i];
          for (;;) {
            const StatusReply status = clients[d].status(pid);
            if (!status.error.empty()) throw RuntimeError("mpcxrun: " + status.error);
            if (status.exited) {
              results[static_cast<std::size_t>(r)].pid = pid;
              results[static_cast<std::size_t>(r)].exit_code = status.exit_code;
              break;
            }
            if (std::chrono::steady_clock::now() > deadline) {
              throw RuntimeError("mpcxrun: timeout waiting for rank " + std::to_string(r));
            }
            std::this_thread::sleep_for(std::chrono::milliseconds(20));
          }
          results[static_cast<std::size_t>(r)].output = clients[d].fetch(pid).output;
        }
      } catch (...) {
        errors[d] = std::current_exception();
      }
    });
  }
  for (std::thread& waiter : waiters) waiter.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  if (!spec.trace_path.empty()) {
    std::vector<std::string> rank_files;
    for (int r = 0; r < spec.nprocs; ++r) {
      rank_files.push_back(rank_trace_file(spec.trace_path, r));
    }
    const std::size_t merged = merge_traces(rank_files, absolutize(spec.trace_path));
    if (merged == 0) {
      log::warn("mpcxrun: no rank traces found to merge into ", spec.trace_path);
    } else {
      log::info("mpcxrun: merged ", merged, " rank traces into ", spec.trace_path);
    }
  }
  return results;
}

namespace {

/// One rank's parsed trace file: its events (one JSON object per line, the
/// dump_trace framing) and the clock-sync data needed to align it.
struct RankTrace {
  int rank = 0;
  int pid = 0;
  long long offset_ns = 0;  ///< wall - steady at dump time
  bool has_sync = false;
  std::vector<std::string> events;
};

bool load_rank_trace(const std::string& path, RankTrace& out) {
  std::ifstream in(path);
  if (!in) return false;
  std::string line;
  while (std::getline(in, line)) {
    while (!line.empty() &&
           (line.back() == ',' || line.back() == ' ' || line.back() == '\r')) {
      line.pop_back();
    }
    const auto start = line.find('{');
    if (start == std::string::npos || line.find('}') == std::string::npos) continue;
    std::string event = line.substr(start);
    if (event.find("\"mpcx_clock_sync\"") != std::string::npos) {
      const char* steady = std::strstr(event.c_str(), "\"steady_ns\":");
      const char* wall = std::strstr(event.c_str(), "\"wall_ns\":");
      const char* pid = std::strstr(event.c_str(), "\"pid\":");
      if (steady != nullptr && wall != nullptr) {
        const auto steady_ns = std::strtoull(steady + 12, nullptr, 10);
        const auto wall_ns = std::strtoull(wall + 10, nullptr, 10);
        out.offset_ns = static_cast<long long>(wall_ns) - static_cast<long long>(steady_ns);
        out.has_sync = true;
      }
      if (pid != nullptr) out.pid = std::atoi(pid + 6);
    }
    out.events.push_back(std::move(event));
  }
  return true;
}

/// Rewrite the event's "ts" field shifted by `shift_us` (microseconds).
std::string shift_ts(const std::string& event, double shift_us) {
  const auto pos = event.find("\"ts\":");
  if (pos == std::string::npos) return event;
  const char* begin = event.c_str() + pos + 5;
  char* end = nullptr;
  const double ts = std::strtod(begin, &end);
  char formatted[64];
  std::snprintf(formatted, sizeof formatted, "%.3f", ts + shift_us);
  return event.substr(0, pos + 5) + formatted +
         event.substr(static_cast<std::size_t>(end - event.c_str()));
}

}  // namespace

std::size_t merge_traces(const std::vector<std::string>& rank_files,
                         const std::string& out_path) {
  std::vector<RankTrace> traces;
  for (std::size_t r = 0; r < rank_files.size(); ++r) {
    RankTrace trace;
    trace.rank = static_cast<int>(r);
    if (load_rank_trace(rank_files[r], trace) && trace.has_sync) {
      traces.push_back(std::move(trace));
    }
  }
  if (traces.empty()) return 0;
  // Align every rank to the FIRST merged rank's steady clock: two ranks'
  // steady timestamps for the same wall instant differ by exactly the
  // difference of their (wall - steady) offsets.
  const long long base_offset = traces.front().offset_ns;
  std::ofstream out(out_path);
  if (!out) throw RuntimeError("merge_traces: cannot write " + out_path);
  out << "[\n";
  bool first = true;
  for (const RankTrace& trace : traces) {
    const double shift_us =
        static_cast<double>(trace.offset_ns - base_offset) / 1000.0;
    if (!first) out << ",\n";
    first = false;
    out << "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" << trace.pid
        << ",\"tid\":0,\"args\":{\"name\":\"rank " << trace.rank << "\"}}";
    for (const std::string& event : trace.events) {
      out << ",\n" << shift_ts(event, shift_us);
    }
  }
  out << "\n]\n";
  return traces.size();
}

}  // namespace mpcx::runtime
