#include "runtime/daemon.hpp"

#include <fcntl.h>
#include <sys/socket.h>
#include <sys/stat.h>
#include <sys/wait.h>
#include <unistd.h>

#include <csignal>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <vector>
#include <sstream>

#include "support/error.hpp"
#include "support/logging.hpp"

namespace mpcx::runtime {
namespace {

std::string default_session_dir() {
  const char* tmp = std::getenv("TMPDIR");
  std::string base = tmp != nullptr ? tmp : "/tmp";
  std::string dir = base + "/mpcxd-XXXXXX";
  std::vector<char> buffer(dir.begin(), dir.end());
  buffer.push_back('\0');
  if (::mkdtemp(buffer.data()) == nullptr) {
    throw RuntimeError(std::string("mkdtemp: ") + std::strerror(errno));
  }
  return std::string(buffer.data());
}

}  // namespace

Daemon::Daemon(std::uint16_t port, std::string session_dir)
    : acceptor_(port),
      session_dir_(session_dir.empty() ? default_session_dir() : std::move(session_dir)) {
  ::mkdir(session_dir_.c_str(), 0755);  // ok if it already exists
}

Daemon::~Daemon() {
  try {
    stop();
  } catch (const Error& e) {
    log::warn("daemon teardown: ", e.what());
  }
}

void Daemon::start() {
  serve_thread_ = std::thread([this] {
    try {
      serve();
    } catch (const Error& e) {
      log::error("mpcxd serve loop: ", e.what());
    }
  });
}

void Daemon::stop() {
  if (!serve_thread_.joinable()) return;
  if (!stopping_.load()) {
    // Nudge the accept loop with a shutdown connection.
    try {
      net::Socket sock = net::Socket::connect("127.0.0.1", port(), 2000);
      write_frame(sock, MsgKind::Shutdown);
      (void)read_frame(sock);
    } catch (const Error&) {
      stopping_ = true;
    }
  }
  serve_thread_.join();
}

void Daemon::serve() {
  log::info("mpcxd listening on port ", port(), ", session dir ", session_dir_);
  // Heartbeat: reap dead children on a bounded interval (not only when the
  // launcher polls), so crashes are logged and Status replies are prompt.
  std::thread reaper([this] { reaper_loop(); });
  // One handler thread per client connection: mpcxrun keeps its connection
  // open for the whole run, and Shutdown must still get through.
  std::vector<std::thread> handlers;
  std::mutex conns_mu;
  std::vector<std::shared_ptr<net::Socket>> conns;
  while (!stopping_.load()) {
    auto sock = acceptor_.accept_for(200);
    if (!sock) continue;
    auto conn = std::make_shared<net::Socket>(std::move(*sock));
    {
      std::lock_guard<std::mutex> lock(conns_mu);
      conns.push_back(conn);
    }
    handlers.emplace_back([this, conn] { handle_connection(conn); });
  }
  // Force any idle handler out of its blocking read, then collect them.
  {
    std::lock_guard<std::mutex> lock(conns_mu);
    for (const auto& conn : conns) {
      if (conn->valid()) ::shutdown(conn->fd(), SHUT_RDWR);
    }
  }
  for (std::thread& handler : handlers) handler.join();
  reaper.join();
}

void Daemon::reaper_loop() {
  int interval_ms = 200;
  if (const char* env = std::getenv("MPCX_HEARTBEAT_MS")) {
    const int value = std::atoi(env);
    if (value > 0) interval_ms = value;
  }
  while (!stopping_.load()) {
    std::vector<RankFailedEvent> events;
    {
      std::lock_guard<std::mutex> lock(mu_);
      for (auto& [pid, child] : children_) {
        if (child.exited) continue;
        int status = 0;
        const pid_t rc = ::waitpid(child.pid, &status, WNOHANG);
        if (rc == child.pid) mark_exited_locked(child, status);
      }
      events.swap(pending_failures_);
    }
    // Broadcast outside mu_ so a slow subscriber socket never stalls
    // spawn/status handling. A subscriber whose write fails is dropped.
    if (!events.empty()) {
      std::lock_guard<std::mutex> lock(subs_mu_);
      for (const RankFailedEvent& event : events) {
        std::erase_if(subscribers_, [&](const std::shared_ptr<net::Socket>& sub) {
          try {
            write_frame(*sub, MsgKind::RankFailed, event);
            return false;
          } catch (const Error&) {
            return true;
          }
        });
      }
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(interval_ms));
  }
}

void Daemon::mark_exited_locked(Child& child, int status) {
  child.exited = true;
  child.exit_code = WIFEXITED(status) ? WEXITSTATUS(status) : 128 + WTERMSIG(status);
  if (child.exit_code == 0) return;
  log::warn("mpcxd: pid ", child.pid, " died with exit code ", child.exit_code);
  if (child.rank >= 0) {
    pending_failures_.push_back(RankFailedEvent{child.rank, child.uuid, child.exit_code});
  }
}

AbortReply Daemon::handle_abort(const AbortRequest& request) {
  AbortReply reply;
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [pid, child] : children_) {
    if (child.exited) continue;
    // The aborting rank kills itself via _Exit(code) after our reply;
    // SIGTERMing it here would race that and clobber its exit code (143).
    if (request.initiator_pid > 0 && child.pid == request.initiator_pid) continue;
    // Re-check before signalling: the child may have just exited.
    int status = 0;
    if (::waitpid(child.pid, &status, WNOHANG) == child.pid) {
      mark_exited_locked(child, status);
      continue;
    }
    ::kill(child.pid, SIGTERM);
    ++reply.killed;
  }
  log::warn("mpcxd: abort(code ", request.code, ", initiator pid ", request.initiator_pid,
            ") — signalled ", reply.killed, " sibling processes");
  return reply;
}

void Daemon::handle_connection(const std::shared_ptr<net::Socket>& sock) {
  try {
    for (;;) {
      const Frame frame = read_frame(*sock);
      switch (frame.kind) {
        case MsgKind::Spawn:
          write_frame(*sock, MsgKind::SpawnReply, handle_spawn(frame.as<SpawnRequest>()));
          break;
        case MsgKind::SpawnBatch:
          write_frame(*sock, MsgKind::SpawnBatchReply,
                      handle_spawn_batch(frame.as<SpawnBatchRequest>()));
          break;
        case MsgKind::Status:
          write_frame(*sock, MsgKind::StatusReply, handle_status(frame.as<StatusRequest>()));
          break;
        case MsgKind::Fetch:
          write_frame(*sock, MsgKind::FetchReply, handle_fetch(frame.as<FetchRequest>()));
          break;
        case MsgKind::Abort:
          write_frame(*sock, MsgKind::AbortReply, handle_abort(frame.as<AbortRequest>()));
          break;
        case MsgKind::Subscribe: {
          // The connection becomes a push channel: the reaper writes
          // RankFailed frames to it, this handler just waits for hangup.
          {
            std::lock_guard<std::mutex> lock(subs_mu_);
            subscribers_.push_back(sock);
          }
          break;
        }
        case MsgKind::Shutdown:
          stopping_ = true;
          write_frame(*sock, MsgKind::ShutdownReply);
          return;
        default:
          throw RuntimeError("mpcxd: unexpected frame kind");
      }
    }
  } catch (const net::SocketError&) {
    // Client hung up; normal.
  } catch (const Error& e) {
    log::warn("mpcxd connection: ", e.what());
  }
  std::lock_guard<std::mutex> lock(subs_mu_);
  std::erase_if(subscribers_,
                [&](const std::shared_ptr<net::Socket>& sub) { return sub == sock; });
}

SpawnReply Daemon::handle_spawn(const SpawnRequest& request) {
  SpawnReply reply;
  std::string exe_path = request.exe;
  if (request.staged) {
    exe_path = stage_binary(request, reply.error);
    if (exe_path.empty()) return reply;
  }
  return spawn_child(exe_path, request.args, request.env);
}

/// One round trip for every rank placed here: stage the binary once, then
/// fork the whole batch. Children boot concurrently from the first fork, so
/// ranks-per-node no longer multiplies bootstrap round trips.
SpawnBatchReply Daemon::handle_spawn_batch(const SpawnBatchRequest& request) {
  SpawnBatchReply reply;
  std::string exe_path = request.common.exe;
  if (request.common.staged) {
    exe_path = stage_binary(request.common, reply.error);
    if (exe_path.empty()) {
      reply.pids.assign(request.per_rank_env.size(), -1);
      return reply;
    }
  }
  for (const auto& rank_env : request.per_rank_env) {
    auto env = request.common.env;
    env.insert(env.end(), rank_env.begin(), rank_env.end());
    const SpawnReply one = spawn_child(exe_path, request.common.args, env);
    if (one.pid < 0 && reply.error.empty()) reply.error = one.error;
    reply.pids.push_back(one.pid);
  }
  return reply;
}

std::string Daemon::stage_binary(const SpawnRequest& request, std::string& error) {
  // Fig. 9b "remote classloading": materialize the shipped binary.
  std::string staged;
  {
    std::lock_guard<std::mutex> lock(mu_);
    staged = session_dir_ + "/staged_" + std::to_string(next_stage_id_++) + "_" + request.exe;
  }
  std::ofstream out(staged, std::ios::binary | std::ios::trunc);
  if (!out) {
    error = "cannot write staged binary " + staged;
    return "";
  }
  out.write(reinterpret_cast<const char*>(request.binary.data()),
            static_cast<std::streamsize>(request.binary.size()));
  out.close();
  ::chmod(staged.c_str(), 0755);
  return staged;
}

SpawnReply Daemon::spawn_child(const std::string& exe_path,
                               const std::vector<std::string>& args,
                               const std::vector<std::pair<std::string, std::string>>& env) {
  SpawnReply reply;
  std::string log_path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    log_path = session_dir_ + "/proc_" + std::to_string(next_stage_id_++) + ".log";
  }

  const pid_t pid = ::fork();
  if (pid < 0) {
    reply.error = std::string("fork: ") + std::strerror(errno);
    return reply;
  }
  if (pid == 0) {
    // Child: redirect output, apply env, exec.
    const int log_fd = ::open(log_path.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
    if (log_fd >= 0) {
      ::dup2(log_fd, STDOUT_FILENO);
      ::dup2(log_fd, STDERR_FILENO);
      ::close(log_fd);
    }
    for (const auto& [key, value] : env) {
      ::setenv(key.c_str(), value.c_str(), 1);
    }
    std::vector<char*> argv;
    argv.push_back(const_cast<char*>(exe_path.c_str()));
    for (const std::string& arg : args) argv.push_back(const_cast<char*>(arg.c_str()));
    argv.push_back(nullptr);
    ::execv(exe_path.c_str(), argv.data());
    std::fprintf(stderr, "execv %s: %s\n", exe_path.c_str(), std::strerror(errno));
    ::_exit(127);
  }

  // Rank identity for failure events: a spawn carrying MPCX_RANK is an MPCX
  // process; its ProcessID is (MPCX_SESSION << 24) + rank + 1, matching
  // World::from_env so subscribers can address device-layer state directly.
  std::int32_t rank = -1;
  std::uint64_t session = 0;
  for (const auto& [key, value] : env) {
    if (key == "MPCX_RANK") rank = static_cast<std::int32_t>(std::atoi(value.c_str()));
    if (key == "MPCX_SESSION") session = static_cast<std::uint64_t>(std::atoll(value.c_str()));
  }
  const std::uint64_t uuid =
      rank >= 0 ? (session << 24) + static_cast<std::uint64_t>(rank) + 1 : 0;

  {
    std::lock_guard<std::mutex> lock(mu_);
    children_[pid] = Child{pid, log_path, false, -1, rank, uuid};
  }
  log::info("mpcxd spawned pid ", pid, " (", exe_path, ")");
  reply.pid = pid;
  return reply;
}

StatusReply Daemon::handle_status(const StatusRequest& request) {
  StatusReply reply;
  std::lock_guard<std::mutex> lock(mu_);
  auto it = children_.find(request.pid);
  if (it == children_.end()) {
    reply.error = "unknown pid " + std::to_string(request.pid);
    return reply;
  }
  Child& child = it->second;
  if (!child.exited) {
    int status = 0;
    const pid_t rc = ::waitpid(child.pid, &status, WNOHANG);
    if (rc == child.pid) mark_exited_locked(child, status);
  }
  reply.exited = child.exited;
  reply.exit_code = child.exit_code;
  return reply;
}

FetchReply Daemon::handle_fetch(const FetchRequest& request) {
  FetchReply reply;
  std::string log_path;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = children_.find(request.pid);
    if (it == children_.end()) {
      reply.error = "unknown pid " + std::to_string(request.pid);
      return reply;
    }
    log_path = it->second.log_path;
  }
  std::ifstream in(log_path, std::ios::binary);
  std::ostringstream content;
  content << in.rdbuf();
  reply.output = content.str();
  return reply;
}

}  // namespace mpcx::runtime
