// mpcxd — the compute-node daemon of the MPCX runtime (Sec. IV-D).
//
// The paper's daemon is "a Java application listening on an IP port, which
// starts a new JVM whenever there is a request to execute an MPJE
// process"; ours listens on a TCP port and fork/execs MPCX processes.
// Child stdout+stderr are captured to per-process log files under the
// daemon's session directory so the launcher can Fetch them — the moral
// equivalent of mpjrun showing remote output.
//
// Robustness duties (see docs/ROBUSTNESS.md):
//   * a heartbeat thread reaps dead children every MPCX_HEARTBEAT_MS so a
//     crashed rank is reported within a bounded interval;
//   * an Abort frame (sent by World::Abort via MPCX_DAEMON) kills every
//     live child, giving MPI_Abort whole-job semantics;
//   * connections that send a Subscribe frame become failure-event push
//     channels: whenever a child that carried an MPCX rank identity dies
//     with a nonzero exit status, the reaper broadcasts a RankFailed frame
//     to every subscriber (the MPCX_FT=1 detector thread in World).
#pragma once

#include <sys/types.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "runtime/protocol.hpp"
#include "support/socket.hpp"

namespace mpcx::runtime {

class Daemon {
 public:
  /// Bind to `port` (0 = ephemeral) and prepare a session directory for
  /// staged binaries and child logs.
  explicit Daemon(std::uint16_t port = 0, std::string session_dir = "");
  ~Daemon();

  Daemon(const Daemon&) = delete;
  Daemon& operator=(const Daemon&) = delete;

  std::uint16_t port() const { return acceptor_.port(); }
  const std::string& session_dir() const { return session_dir_; }

  /// Serve until a Shutdown request arrives (blocking).
  void serve();

  /// Serve on a background thread.
  void start();

  /// Request shutdown and join the background thread.
  void stop();

 private:
  void handle_connection(const std::shared_ptr<net::Socket>& sock);
  SpawnReply handle_spawn(const SpawnRequest& request);
  SpawnBatchReply handle_spawn_batch(const SpawnBatchRequest& request);
  /// Materialize a staged binary into the session dir; returns its path or
  /// "" with `error` set. A batch stages ONCE for all its ranks.
  std::string stage_binary(const SpawnRequest& request, std::string& error);
  /// fork+exec one child with the given (already merged) environment.
  SpawnReply spawn_child(const std::string& exe_path, const std::vector<std::string>& args,
                         const std::vector<std::pair<std::string, std::string>>& env);
  StatusReply handle_status(const StatusRequest& request);
  FetchReply handle_fetch(const FetchRequest& request);
  AbortReply handle_abort(const AbortRequest& request);

  /// Heartbeat loop: reap exited children every MPCX_HEARTBEAT_MS (default
  /// 200 ms) so a crashed rank is noticed within a bounded interval instead
  /// of only when the launcher next polls Status.
  void reaper_loop();

  struct Child {
    pid_t pid = -1;
    std::string log_path;
    bool exited = false;
    int exit_code = -1;
    /// MPCX rank identity parsed from the spawn env (MPCX_RANK /
    /// MPCX_SESSION); rank -1 = not an MPCX rank, no failure events.
    std::int32_t rank = -1;
    std::uint64_t uuid = 0;
  };

  /// Transition a child to exited (waitpid status) and, when it carried a
  /// rank identity and died with a nonzero code, queue a RankFailed event
  /// for the reaper's next broadcast. Called under mu_.
  void mark_exited_locked(Child& child, int status);

  net::Acceptor acceptor_;
  std::string session_dir_;
  std::atomic<bool> stopping_{false};
  std::thread serve_thread_;

  std::mutex mu_;
  std::map<std::int32_t, Child> children_;
  std::vector<RankFailedEvent> pending_failures_;  ///< queued under mu_
  int next_stage_id_ = 0;

  std::mutex subs_mu_;
  std::vector<std::shared_ptr<net::Socket>> subscribers_;
};

}  // namespace mpcx::runtime
