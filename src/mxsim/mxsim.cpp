#include "mxsim/mxsim.hpp"

#include <algorithm>
#include <chrono>
#include <cstring>

namespace mpcx::mxsim {

// ---- MxMessage ---------------------------------------------------------------

std::size_t MxMessage::total_bytes() const {
  std::size_t total = 0;
  for (const Segment& chunk : chunks_) total += chunk.size;
  return total;
}

std::span<const std::byte> MxMessage::chunk(std::size_t index) const {
  if (index >= chunks_.size()) throw DeviceError("MxMessage: chunk index out of range");
  return {chunks_[index].data, chunks_[index].size};
}

namespace {

MxStatus status_of(const MxMessage& msg) {
  MxStatus status;
  status.source = msg.source();
  status.match = msg.match();
  status.total_bytes = msg.total_bytes();
  status.chunk_sizes.reserve(msg.chunk_count());
  for (std::size_t i = 0; i < msg.chunk_count(); ++i) status.chunk_sizes.push_back(msg.chunk(i).size());
  return status;
}

bool match_accepts(MatchBits posted_match, MatchBits mask, MatchBits incoming) {
  return (incoming & mask) == (posted_match & mask);
}

}  // namespace

// ---- Endpoint ----------------------------------------------------------------

Endpoint::Endpoint(Fabric* fabric, EndpointAddr addr, std::size_t eager_limit)
    : fabric_(fabric), addr_(addr), eager_limit_(eager_limit) {}

Endpoint::~Endpoint() {
  close();
  fabric_->remove(addr_);
}

bool Endpoint::recv_accepts(const PostedRecv& recv, const MxMessage& msg) {
  if (!match_accepts(recv.match, recv.mask, msg.match())) return false;
  if (recv.src.has_value() && *recv.src != msg.source()) return false;
  return true;
}

void Endpoint::run_sink(const PostedRecv& recv, const std::shared_ptr<MxMessage>& msg) {
  recv.sink(*msg);
  recv.request->complete(status_of(*msg));
  if (msg->send_request) {
    // Rendezvous / synchronous send: the sender learns the drain finished.
    MxStatus status;
    status.source = msg->source();
    status.match = msg->match();
    status.total_bytes = msg->total_bytes();
    msg->send_request->complete(status);
  }
}

MxRequest Endpoint::isend(std::span<const Segment> segments, EndpointAddr dst, MatchBits match) {
  std::size_t total = 0;
  for (const Segment& s : segments) total += s.size;

  auto msg = std::make_shared<MxMessage>();
  msg->source_ = addr_;
  msg->match_ = match;
  auto request = std::make_shared<MxRequestState>();

  if (total <= eager_limit_) {
    // Eager: copy now, complete immediately (receiver buffers if needed).
    msg->owned_.reserve(segments.size());
    msg->chunks_.reserve(segments.size());
    for (const Segment& s : segments) {
      std::vector<std::byte> copy(s.size);
      if (s.size > 0) std::memcpy(copy.data(), s.data, s.size);
      msg->owned_.push_back(std::move(copy));
      msg->chunks_.push_back(Segment{msg->owned_.back().data(), msg->owned_.back().size()});
    }
    fabric_->connect(dst)->deliver(msg);
    MxStatus status;
    status.source = addr_;
    status.match = match;
    status.total_bytes = total;
    request->complete(status);
    return request;
  }

  // Rendezvous: reference sender memory; the request completes when a
  // receiver matches and drains the message.
  msg->synchronous_ = true;
  msg->views_.assign(segments.begin(), segments.end());
  msg->chunks_ = msg->views_;
  msg->send_request = request;
  fabric_->connect(dst)->deliver(msg);
  return request;
}

MxRequest Endpoint::issend(std::span<const Segment> segments, EndpointAddr dst, MatchBits match) {
  auto msg = std::make_shared<MxMessage>();
  msg->source_ = addr_;
  msg->match_ = match;
  msg->synchronous_ = true;
  msg->views_.assign(segments.begin(), segments.end());
  msg->chunks_ = msg->views_;
  auto request = std::make_shared<MxRequestState>();
  msg->send_request = request;
  fabric_->connect(dst)->deliver(msg);
  return request;
}

MxRequest Endpoint::irecv(MatchBits match, MatchBits mask, std::optional<EndpointAddr> src,
                          ReceiveSink sink) {
  auto request = std::make_shared<MxRequestState>();
  PostedRecv recv{match, mask, src, std::move(sink), request};

  std::shared_ptr<MxMessage> matched;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) throw DeviceError("mxsim: irecv on closed endpoint");
    for (auto it = unexpected_.begin(); it != unexpected_.end(); ++it) {
      if (recv_accepts(recv, **it)) {
        matched = *it;
        unexpected_.erase(it);
        break;
      }
    }
    if (!matched) {
      posted_.push_back(std::move(recv));
      return request;
    }
  }
  run_sink(recv, matched);
  return request;
}

void Endpoint::deliver(std::shared_ptr<MxMessage> message) {
  PostedRecv matched{};
  bool found = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;  // dropped, like a NIC after shutdown
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (recv_accepts(*it, *message)) {
        matched = std::move(*it);
        posted_.erase(it);
        found = true;
        break;
      }
    }
    if (!found) {
      unexpected_.push_back(std::move(message));
      arrival_cv_.notify_all();
      return;
    }
  }
  run_sink(matched, message);
}

std::optional<ProbeInfo> Endpoint::iprobe(MatchBits match, MatchBits mask,
                                          std::optional<EndpointAddr> src) {
  std::lock_guard<std::mutex> lock(mu_);
  for (const auto& msg : unexpected_) {
    if (match_accepts(match, mask, msg->match()) &&
        (!src.has_value() || *src == msg->source())) {
      ProbeInfo info;
      info.source = msg->source();
      info.match = msg->match();
      info.total_bytes = msg->total_bytes();
      for (std::size_t i = 0; i < msg->chunk_count(); ++i) {
        info.chunk_sizes.push_back(msg->chunk(i).size());
      }
      return info;
    }
  }
  return std::nullopt;
}

ProbeInfo Endpoint::probe(MatchBits match, MatchBits mask, std::optional<EndpointAddr> src) {
  std::unique_lock<std::mutex> lock(mu_);
  for (;;) {
    for (const auto& msg : unexpected_) {
      if (match_accepts(match, mask, msg->match()) &&
          (!src.has_value() || *src == msg->source())) {
        ProbeInfo info;
        info.source = msg->source();
        info.match = msg->match();
        info.total_bytes = msg->total_bytes();
        for (std::size_t i = 0; i < msg->chunk_count(); ++i) {
          info.chunk_sizes.push_back(msg->chunk(i).size());
        }
        return info;
      }
    }
    if (closed_) throw DeviceError("mxsim: probe on closed endpoint");
    arrival_cv_.wait(lock);
  }
}

bool Endpoint::cancel(const MxRequest& request) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    bool found = false;
    for (auto it = posted_.begin(); it != posted_.end(); ++it) {
      if (it->request.get() == request.get()) {
        posted_.erase(it);
        found = true;
        break;
      }
    }
    if (!found) return false;
  }
  MxStatus status;
  status.cancelled = true;
  request->complete(status);
  return true;
}

void Endpoint::close() {
  std::list<PostedRecv> orphans;
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (closed_) return;
    closed_ = true;
    orphans.swap(posted_);
    unexpected_.clear();
  }
  arrival_cv_.notify_all();
  for (const PostedRecv& recv : orphans) {
    MxStatus status;
    status.cancelled = true;
    recv.request->complete(status);
  }
}

std::size_t Endpoint::unexpected_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  return unexpected_.size();
}

// ---- Fabric ------------------------------------------------------------------

Fabric::~Fabric() = default;

std::shared_ptr<Endpoint> Fabric::open_endpoint(EndpointAddr addr) {
  std::shared_ptr<Endpoint> endpoint;
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = endpoints_.find(addr);
    if (it != endpoints_.end() && !it->second.expired()) {
      throw DeviceError("mxsim: endpoint address already open: " + std::to_string(addr));
    }
    endpoint = std::make_shared<Endpoint>(this, addr, eager_limit_);
    endpoints_[addr] = endpoint;
  }
  opened_cv_.notify_all();
  return endpoint;
}

std::shared_ptr<Endpoint> Fabric::connect(EndpointAddr addr, int timeout_ms) const {
  std::unique_lock<std::mutex> lock(mu_);
  const auto deadline = std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    auto it = endpoints_.find(addr);
    if (it != endpoints_.end()) {
      if (auto endpoint = it->second.lock()) return endpoint;
    }
    if (opened_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
      throw DeviceError("mxsim: endpoint " + std::to_string(addr) + " not reachable");
    }
  }
}

void Fabric::remove(EndpointAddr addr) {
  std::lock_guard<std::mutex> lock(mu_);
  endpoints_.erase(addr);
}

std::size_t Fabric::endpoint_count() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::size_t alive = 0;
  for (const auto& [addr, weak] : endpoints_) {
    if (!weak.expired()) ++alive;
  }
  return alive;
}

Fabric& Fabric::global() {
  static Fabric instance;
  return instance;
}

}  // namespace mpcx::mxsim
