// mxsim — a from-scratch, MX-like message layer (Myrinet eXpress analog).
//
// The paper's mxdev is a thin JNI wrapper over Myricom's MX library: MX
// itself implements the communication protocols (eager + rendezvous),
// matching (64-bit match bits), segment-list sends (so mpjbuf's static and
// dynamic sections travel in one mx_isend), thread-safe completion, and a
// blocking "peek" for the most recently completed request.
//
// We do not have Myrinet hardware, so mxsim reimplements that contract as a
// shared-memory fabric (see DESIGN.md §4.3):
//
//   * Fabric        — the "interconnect": a registry of endpoints.
//   * Endpoint      — mx_open_endpoint: send/recv with match bits + mask +
//                     optional source filter, probe/iprobe, completion
//                     callbacks. All entry points are thread-safe
//                     (MX's communication functions are thread-safe, which
//                     is what lets mxdev skip all locking).
//   * Messages preserve the sender's segment boundaries, so a receiver can
//     scatter chunk 0 (static section) and chunk 1 (dynamic section) into
//     different destinations — the moral equivalent of MX's segment lists.
//
// Protocols, as in MX:
//   * eager  (size <= eager_limit): payload is copied into the receiver's
//     unexpected storage immediately; the send completes at once.
//   * rendezvous (size > eager_limit): no copy at send time; the message
//     references the sender's memory and the send request completes only
//     when a receiver matches and drains it (synchronous-like completion).
//   * issend always completes only on match, regardless of size.
#pragma once

#include <cstddef>
#include <cstdint>
#include <condition_variable>
#include <functional>
#include <list>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "support/error.hpp"

namespace mpcx::mxsim {

using MatchBits = std::uint64_t;
using EndpointAddr = std::uint64_t;

/// One contiguous piece of a send (mx_segment_t analog).
struct Segment {
  const std::byte* data = nullptr;
  std::size_t size = 0;
};

/// Completion record.
struct MxStatus {
  EndpointAddr source = 0;
  MatchBits match = 0;
  std::size_t total_bytes = 0;
  std::vector<std::size_t> chunk_sizes;  ///< sender segment boundaries
  bool cancelled = false;
};

class MxRequestState;
using MxRequest = std::shared_ptr<MxRequestState>;

/// A matched message as presented to the receiver: chunked payload
/// preserving the sender's segment boundaries.
class MxMessage {
 public:
  EndpointAddr source() const { return source_; }
  MatchBits match() const { return match_; }
  std::size_t chunk_count() const { return chunks_.size(); }
  std::size_t total_bytes() const;
  std::span<const std::byte> chunk(std::size_t index) const;

 private:
  friend class Endpoint;
  friend class Fabric;

  EndpointAddr source_ = 0;
  MatchBits match_ = 0;
  bool synchronous_ = false;  ///< true for issend and rendezvous sends
  /// Eager messages own their bytes; rendezvous chunks view sender memory.
  std::vector<std::vector<std::byte>> owned_;
  std::vector<Segment> views_;
  std::vector<Segment> chunks_;       ///< canonical view over owned_ or views_
  MxRequest send_request;             ///< completed when a rendezvous drain finishes
};

/// Invoked exactly once when a posted receive matches; must copy what it
/// needs out of the message before returning (afterwards rendezvous chunks
/// may be invalidated by the sender reusing its buffer).
using ReceiveSink = std::function<void(const MxMessage&)>;

class MxRequestState {
 public:
  void complete(const MxStatus& status) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      status_ = status;
      done_ = true;
    }
    cv_.notify_all();
    CompletionFn fn;
    {
      std::lock_guard<std::mutex> lock(mu_);
      fn = std::move(on_complete_);
      on_complete_ = nullptr;
    }
    if (fn) fn(status);
  }

  MxStatus wait() {
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return done_; });
    return status_;
  }

  std::optional<MxStatus> test() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!done_) return std::nullopt;
    return status_;
  }

  using CompletionFn = std::function<void(const MxStatus&)>;

  /// Register a completion callback. If the request already completed, the
  /// callback runs immediately on the calling thread.
  void on_complete(CompletionFn fn) {
    bool run_now = false;
    MxStatus status;
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (done_) {
        run_now = true;
        status = status_;
      } else {
        on_complete_ = std::move(fn);
      }
    }
    if (run_now) fn(status);
  }

 private:
  std::mutex mu_;
  std::condition_variable cv_;
  MxStatus status_{};
  bool done_ = false;
  CompletionFn on_complete_;
};

/// Probe result (mx_iprobe analog): message metadata without consuming it.
struct ProbeInfo {
  EndpointAddr source = 0;
  MatchBits match = 0;
  std::size_t total_bytes = 0;
  std::vector<std::size_t> chunk_sizes;
};

class Fabric;

class Endpoint {
 public:
  Endpoint(Fabric* fabric, EndpointAddr addr, std::size_t eager_limit);
  ~Endpoint();

  Endpoint(const Endpoint&) = delete;
  Endpoint& operator=(const Endpoint&) = delete;

  EndpointAddr address() const { return addr_; }

  /// Standard-mode non-blocking send of a segment list (mx_isend analog).
  MxRequest isend(std::span<const Segment> segments, EndpointAddr dst, MatchBits match);

  /// Synchronous-mode non-blocking send: completes only when matched.
  MxRequest issend(std::span<const Segment> segments, EndpointAddr dst, MatchBits match);

  /// Post a receive. The sink runs exactly once, on whichever thread matches
  /// the message (the sender's thread for late receives, this thread when a
  /// buffered message is already waiting). The returned request completes
  /// after the sink has run.
  MxRequest irecv(MatchBits match, MatchBits mask, std::optional<EndpointAddr> src,
                  ReceiveSink sink);

  /// Non-blocking probe for a buffered (unexpected) message.
  std::optional<ProbeInfo> iprobe(MatchBits match, MatchBits mask,
                                  std::optional<EndpointAddr> src);

  /// Blocking probe.
  ProbeInfo probe(MatchBits match, MatchBits mask, std::optional<EndpointAddr> src);

  /// Cancel one posted-but-unmatched receive: removes it and completes its
  /// request with cancelled=true. Returns false if it already matched.
  bool cancel(const MxRequest& request);

  /// Close the endpoint: cancels posted receives (their requests complete
  /// with cancelled=true and the sink is dropped).
  void close();

  std::size_t eager_limit() const { return eager_limit_; }

  /// Number of buffered unexpected messages (introspection for tests).
  std::size_t unexpected_count() const;

 private:
  friend class Fabric;

  struct PostedRecv {
    MatchBits match;
    MatchBits mask;
    std::optional<EndpointAddr> src;
    ReceiveSink sink;
    MxRequest request;
  };

  /// Called by the fabric on the *sender's* thread to hand over a message.
  void deliver(std::shared_ptr<MxMessage> message);

  static bool recv_accepts(const PostedRecv& recv, const MxMessage& msg);
  static void run_sink(const PostedRecv& recv, const std::shared_ptr<MxMessage>& msg);

  Fabric* const fabric_;
  const EndpointAddr addr_;
  const std::size_t eager_limit_;

  mutable std::mutex mu_;
  std::condition_variable arrival_cv_;  ///< signalled on unexpected arrivals
  std::list<PostedRecv> posted_;
  std::list<std::shared_ptr<MxMessage>> unexpected_;
  bool closed_ = false;
};

/// The interconnect: a registry of endpoints. Typically one Fabric per
/// in-process cluster (tests may create isolated fabrics); a global default
/// instance backs mxdev.
class Fabric {
 public:
  explicit Fabric(std::size_t eager_limit = 32 * 1024) : eager_limit_(eager_limit) {}
  ~Fabric();

  /// mx_open_endpoint analog. addr must be unique within the fabric.
  std::shared_ptr<Endpoint> open_endpoint(EndpointAddr addr);

  /// Resolve a peer (mx_connect analog). Blocks until the peer endpoint is
  /// opened (bootstrap races are normal); throws after `timeout_ms`.
  std::shared_ptr<Endpoint> connect(EndpointAddr addr, int timeout_ms = 30000) const;

  void remove(EndpointAddr addr);

  std::size_t endpoint_count() const;

  /// Process-wide default fabric used by mxdev.
  static Fabric& global();

 private:
  const std::size_t eager_limit_;
  mutable std::mutex mu_;
  mutable std::condition_variable opened_cv_;
  std::unordered_map<EndpointAddr, std::weak_ptr<Endpoint>> endpoints_;
};

}  // namespace mpcx::mxsim
