// Intercomm — inter-communicator (mpiJava Intercomm analog).
//
// Point-to-point ranks (dest/source) refer to the REMOTE group; Rank() and
// Size() refer to the local group, per MPI semantics. Built by
// Intracomm::Create_intercomm; Merge() fuses the two sides back into one
// intra-communicator.
#pragma once

#include <memory>

#include "core/comm.hpp"

namespace mpcx {

class Intracomm;

class Intercomm final : public Comm {
 public:
  Intercomm(World* world, Group local_group, Group remote_group, int ptp_context,
            int coll_context);

  /// Size of the remote group.
  int Remote_size() const { return remote_group_.Size(); }

  const Group& remote_group() const { return remote_group_; }

  /// Merge both sides into one intra-communicator. The side(s) passing
  /// high=true are ordered after the low side; ties broken by leader world
  /// rank (MPI leaves the order undefined in that case).
  std::unique_ptr<Intracomm> Merge(bool high) const;

 protected:
  // Inter-communicator sends address the remote group.
  int world_dest(int local_rank) const override;
  int world_source(int local_rank) const override;
  Status to_local_status(const mpdev::Status& dev) const override;

  friend class Intracomm;

  Group remote_group_;
};

}  // namespace mpcx
