// Group — an ordered set of processes (mpiJava Group analog).
//
// A Group is a pure value: an ordered list of WORLD ranks. Communicators
// hold a Group; group rank i is the communicator-local rank i.
#pragma once

#include <array>
#include <span>
#include <vector>

#include "core/types.hpp"

namespace mpcx {

class Group {
 public:
  Group() = default;
  explicit Group(std::vector<int> world_ranks) : world_ranks_(std::move(world_ranks)) {}

  /// Number of processes in the group.
  int Size() const { return static_cast<int>(world_ranks_.size()); }

  /// Group rank of the process with the given world rank, or UNDEFINED.
  int Rank_of_world(int world_rank) const;

  /// World rank of the process with the given group rank.
  int world_rank(int group_rank) const;

  bool contains_world(int world_rank) const { return Rank_of_world(world_rank) != UNDEFINED; }

  const std::vector<int>& world_ranks() const { return world_ranks_; }

  /// Translate ranks of this group into ranks of `other` (UNDEFINED where
  /// a process is not a member of `other`). MPI Group_translate_ranks.
  std::vector<int> Translate_ranks(std::span<const int> ranks, const Group& other) const;

  // ---- set operations (MPI semantics: union/intersection keep this group's
  // ordering first) ---------------------------------------------------------

  Group Union(const Group& other) const;
  Group Intersection(const Group& other) const;
  Group Difference(const Group& other) const;

  /// Subgroup of the listed group ranks, in the listed order.
  Group Incl(std::span<const int> ranks) const;

  /// Subgroup excluding the listed group ranks (original order kept).
  Group Excl(std::span<const int> ranks) const;

  /// Incl over rank ranges [first, last] step stride (MPI Range_incl).
  Group Range_incl(std::span<const std::array<int, 3>> ranges) const;
  Group Range_excl(std::span<const std::array<int, 3>> ranges) const;

  /// MPI comparison: IDENT (same members, same order), SIMILAR (same
  /// members), UNEQUAL.
  enum class Compare { Ident, Similar, Unequal };
  Compare compare(const Group& other) const;

  friend bool operator==(const Group&, const Group&) = default;

 private:
  std::vector<int> world_ranks_;
};

}  // namespace mpcx
