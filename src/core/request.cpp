#include "core/request.hpp"

#include <array>
#include <mutex>
#include <string>
#include <thread>

#include "core/coll_sched.hpp"
#include "core/comm.hpp"
#include "core/world.hpp"
#include "support/error.hpp"

namespace mpcx {

struct Request::State {
  const Comm* comm = nullptr;
  mpdev::Request dev;
  std::unique_ptr<buf::Buffer> buffer;

  // Receive recipe (unset for sends).
  DatatypePtr type;
  std::byte* user_base = nullptr;
  std::size_t max_items = 0;
  bool is_recv = false;

  // Zero-copy operations borrow user memory (and, for receives, the
  // section-header landing area below) until the device's final release.
  bool borrowed = false;
  bool direct_recv = false;
  std::array<std::byte, buf::Buffer::kSectionHeaderBytes> direct_hdr{};

  // Nonblocking collective: the request fronts a whole schedule (dev above
  // stays null); Wait/Test progress it. The World registry co-owns the
  // state until it drains.
  std::shared_ptr<CollState> coll;

  std::mutex mu;
  bool finalized = false;
  Status cached;
};

Request Request::make_send(const Comm* comm, mpdev::Request dev,
                           std::unique_ptr<buf::Buffer> buffer) {
  auto state = std::make_shared<State>();
  state->comm = comm;
  state->dev = std::move(dev);
  state->buffer = std::move(buffer);
  return Request(std::move(state));
}

Request Request::make_bare(const Comm* comm, mpdev::Request dev) {
  auto state = std::make_shared<State>();
  state->comm = comm;
  state->dev = std::move(dev);
  return Request(std::move(state));
}

Request Request::make_recv(const Comm* comm, mpdev::Request dev,
                           std::unique_ptr<buf::Buffer> buffer, DatatypePtr type,
                           std::byte* user_base, std::size_t max_items) {
  auto state = std::make_shared<State>();
  state->comm = comm;
  state->dev = std::move(dev);
  state->buffer = std::move(buffer);
  state->type = std::move(type);
  state->user_base = user_base;
  state->max_items = max_items;
  state->is_recv = true;
  return Request(std::move(state));
}

Request Request::make_borrowed_send(const Comm* comm, mpdev::Request dev) {
  auto state = std::make_shared<State>();
  state->comm = comm;
  state->dev = std::move(dev);
  state->borrowed = true;
  return Request(std::move(state));
}

Request Request::make_direct_recv(const Comm* comm, int world_src, int tag, int context,
                                  DatatypePtr type, std::byte* user_base,
                                  std::size_t max_items) {
  auto state = std::make_shared<State>();
  state->comm = comm;
  state->type = std::move(type);
  state->user_base = user_base;
  state->max_items = max_items;
  state->is_recv = true;
  state->borrowed = true;
  state->direct_recv = true;
  // The span references state-owned storage, so the device operation is
  // posted only after the state exists.
  const xdev::RecvSpan span{state->direct_hdr.data(), user_base,
                            max_items * state->type->size_bytes()};
  state->dev = comm->engine().irecv_direct(span, world_src, tag, context);
  return Request(std::move(state));
}

Request Request::make_coll(const Comm* comm, std::shared_ptr<CollState> coll) {
  auto state = std::make_shared<State>();
  state->comm = comm;
  state->coll = std::move(coll);
  return Request(std::move(state));
}

bool Request::is_complete() const {
  if (!state_) return false;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->finalized) return true;
  }
  // MPI progress rule: observing completion may advance the operation, so
  // a collective schedule is progressed here too.
  if (state_->coll) return state_->coll->progress();
  std::lock_guard<std::mutex> lock(state_->mu);
  return state_->dev.is_complete();
}

bool Request::Cancel() {
  if (!state_) return false;
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->finalized) return false;
  }
  // Collective schedules cannot be cancelled (MPI: collectives have no
  // cancel semantics).
  if (state_->coll) return false;
  return state_->comm->engine().device().cancel(state_->dev.dev());
}

Status Request::finalize(const mpdev::Status& dev_status) {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.finalized) return s.cached;
  s.finalized = true;
  const ErrCode code = dev_status.error != ErrCode::Success
                           ? dev_status.error
                           : (dev_status.truncated ? ErrCode::Truncate : ErrCode::Success);
  if (code != ErrCode::Success) {
    // Release resources first, cache the error Status, then apply the
    // communicator's errhandler (may throw or abort; under ERRORS_RETURN the
    // caller reads the code off the Status). On a Timeout the device may
    // still be mid-delivery into the buffer, so go through reclaim_buffer
    // (which defers disposal to the device) instead of pooling directly.
    // Zero-copy operations have no library buffer to park — block until the
    // device's final release of the borrowed user memory instead.
    if (s.buffer) s.comm->reclaim_buffer(s.dev, std::move(s.buffer));
    if (s.borrowed) s.comm->release_borrowed(s.dev);
    s.cached = s.comm->to_local_status(dev_status);
    if (dev_status.truncated) {
      s.comm->handle_error(code, "receive truncated: message larger than the posted buffer");
    } else {
      s.comm->handle_error(code, std::string("request failed: ") + err_code_name(code));
    }
    return s.cached;
  }
  if (s.is_recv && !dev_status.cancelled) {
    if (s.direct_recv) {
      s.comm->deliver_direct_recv(s.dev, dev_status, s.direct_hdr, s.user_base, s.max_items,
                                  s.type);
    } else {
      s.type->unpack_available(*s.buffer, s.user_base, s.max_items);
    }
  }
  s.cached = s.comm->to_local_status(dev_status);
  if (s.buffer) s.comm->reclaim_buffer(s.dev, std::move(s.buffer));
  return s.cached;
}

Status Request::finalize_coll() {
  State& s = *state_;
  std::lock_guard<std::mutex> lock(s.mu);
  if (s.finalized) return s.cached;
  s.finalized = true;
  s.cached = s.coll->final_status();
  s.comm->world().counters().add(prof::Ctr::NbCollsCompleted);
  const ErrCode code = s.cached.Get_error();
  if (code != ErrCode::Success) {
    s.comm->handle_error(code, std::string("nonblocking collective ") + s.coll->name() +
                                   " failed: " + err_code_name(code));
  }
  return s.cached;
}

Status Request::Wait() {
  if (!state_) throw CommError("Wait on a null request");
  World& world = state_->comm->world();
  // Help every in-flight collective along before blocking on this one op.
  world.progress_nb_collectives();
  if (state_->coll) {
    {
      std::lock_guard<std::mutex> lock(state_->mu);
      if (state_->finalized) return state_->cached;
    }
    while (!state_->coll->progress()) {
      // Block on one of the schedule's posted ops rather than spinning; a
      // round between posts (rare: progress() posts eagerly) just yields.
      mpdev::Request pending = state_->coll->pending_op();
      if (pending.valid()) {
        pending.wait();
      } else {
        std::this_thread::yield();
      }
      world.progress_nb_collectives();
    }
    return finalize_coll();
  }
  return finalize(state_->dev.wait());
}

std::optional<Status> Request::Test() {
  if (!state_) throw CommError("Test on a null request");
  {
    std::lock_guard<std::mutex> lock(state_->mu);
    if (state_->finalized) return state_->cached;
  }
  state_->comm->world().progress_nb_collectives();
  if (state_->coll) {
    if (!state_->coll->progress()) return std::nullopt;
    return finalize_coll();
  }
  auto dev_status = state_->dev.test();
  if (!dev_status) return std::nullopt;
  return finalize(*dev_status);
}

std::vector<Status> Request::Waitall(std::span<Request> requests) {
  std::vector<Status> statuses;
  statuses.reserve(requests.size());
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].is_null()) {
      statuses.emplace_back();
      continue;
    }
    Status status = requests[i].Wait();
    status.index = static_cast<int>(i);
    statuses.push_back(status);
  }
  return statuses;
}

Status Request::Waitany(std::span<Request> requests) {
  for (;;) {
    // Collect the device-level requests of all active (non-finalized)
    // entries. A collective-schedule request contributes its current
    // round's posted ops; progressing it here may complete it outright.
    std::vector<mpdev::Request> dev;
    std::vector<std::size_t> owner;
    mpdev::Engine* engine = nullptr;
    bool any_active = false;
    for (std::size_t i = 0; i < requests.size(); ++i) {
      Request& request = requests[i];
      if (request.is_null()) continue;
      {
        std::lock_guard<std::mutex> lock(request.state_->mu);
        if (request.state_->finalized) continue;
      }
      any_active = true;
      engine = &request.state_->comm->engine();
      if (request.state_->coll) {
        if (request.state_->coll->progress()) {
          Status status = request.finalize_coll();
          status.index = static_cast<int>(i);
          return status;
        }
        for (mpdev::Request& op : request.state_->coll->pending_ops()) {
          dev.push_back(op);
          owner.push_back(i);
        }
      } else {
        dev.push_back(request.state_->dev);
        owner.push_back(i);
      }
    }
    if (!any_active) {
      Status status;
      status.index = UNDEFINED;
      return status;
    }
    if (dev.empty()) {
      // Only collectives whose round is mid-transition; re-progress.
      std::this_thread::yield();
      continue;
    }
    int dev_index = -1;
    engine->waitany(std::span<mpdev::Request>(dev), dev_index);
    if (dev_index < 0) continue;  // raced to completion; re-collect
    const std::size_t winner_index = owner[static_cast<std::size_t>(dev_index)];
    Request& winner = requests[winner_index];
    if (winner.state_->coll) {
      // One wire op of the schedule finished: consume it (progress marks it
      // done, so the next collection pass never re-blocks on it) and
      // re-evaluate — the schedule may have more rounds to run.
      if (winner.state_->coll->progress()) {
        Status status = winner.finalize_coll();
        status.index = static_cast<int>(winner_index);
        return status;
      }
      continue;
    }
    Status status = winner.Wait();  // already complete; finalizes
    status.index = static_cast<int>(winner_index);
    return status;
  }
}

std::vector<Status> Request::Waitsome(std::span<Request> requests) {
  std::vector<Status> statuses;
  Status first = Waitany(requests);
  if (first.index == UNDEFINED) return statuses;
  statuses.push_back(first);
  // Harvest everything else that has completed meanwhile.
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (static_cast<int>(i) == first.index || requests[i].is_null()) continue;
    {
      std::lock_guard<std::mutex> lock(requests[i].state_->mu);
      if (requests[i].state_->finalized) continue;
    }
    if (auto status = requests[i].Test()) {
      status->index = static_cast<int>(i);
      statuses.push_back(*status);
    }
  }
  return statuses;
}

std::optional<std::vector<Status>> Request::Testall(std::span<Request> requests) {
  for (Request& request : requests) {
    if (!request.is_null() && !request.is_complete()) return std::nullopt;
  }
  return Waitall(requests);  // everything is complete; Wait just finalizes
}

std::optional<Status> Request::Testany(std::span<Request> requests) {
  bool any_active = false;
  for (std::size_t i = 0; i < requests.size(); ++i) {
    if (requests[i].is_null()) continue;
    {
      std::lock_guard<std::mutex> lock(requests[i].state_->mu);
      if (requests[i].state_->finalized) continue;
    }
    any_active = true;
    if (auto status = requests[i].Test()) {
      status->index = static_cast<int>(i);
      return status;
    }
  }
  if (!any_active) {
    // MPI Testany: with no active requests the call completes immediately
    // (flag = true) with index = UNDEFINED and an empty status — mirroring
    // Waitany's empty path, not "nothing done yet".
    Status status;
    status.index = UNDEFINED;
    return status;
  }
  return std::nullopt;
}

// ---- Prequest -----------------------------------------------------------------------

void Prequest::ensure_restartable() {
  if (active_.is_null()) return;
  // Read `finalized` under the state lock: a concurrent Wait may be
  // finalizing right now, and an unlocked is_complete() check could observe
  // the pre-finalize device state and wrongly reject (or accept) the
  // re-arm mid-transition.
  bool device_done;
  {
    std::lock_guard<std::mutex> lock(active_.state_->mu);
    if (active_.state_->finalized) return;
    device_done = active_.state_->dev.is_complete();
  }
  if (!device_done) {
    throw CommError("Prequest::Start: previous activation still in flight");
  }
  // Completed but never finalized (the caller only polled is_complete()):
  // finalize now so the old activation's buffers recycle — and a receive's
  // data lands — before the slot is reused.
  active_.Wait();
}

void Prequest::launch() {
  const Recipe& r = *recipe_;
  if (r.is_send) {
    active_ = r.comm->Isend(r.send_buf, r.offset, r.count, r.type, r.peer, r.tag);
  } else {
    active_ = r.comm->Irecv(r.recv_buf, r.offset, r.count, r.type, r.peer, r.tag);
  }
}

void Prequest::Start() {
  ensure_restartable();
  launch();
}

void Prequest::Startall(std::span<Prequest> requests) {
  // Validate every entry up front so a re-arm violation throws before ANY
  // operation launches (the old per-entry Start loop could throw with half
  // the batch already on the wire).
  for (Prequest& request : requests) {
    if (request.recipe_ == nullptr) {
      throw CommError("Startall: prequest not initialized (use Send_init/Recv_init)");
    }
    request.ensure_restartable();
  }
  std::size_t started = 0;
  try {
    for (; started < requests.size(); ++started) requests[started].launch();
  } catch (...) {
    // Best-effort rollback: un-post receives via Cancel and finalize what
    // completed. A send already on the wire cannot be retracted — its
    // handle stays on the prequest so the caller can still Wait it.
    for (std::size_t i = 0; i < started; ++i) {
      Request& active = requests[i].active_;
      if (active.is_null()) continue;
      active.Cancel();
      if (active.is_complete()) {
        try {
          active.Wait();
        } catch (const Error&) {
          // Rollback is best-effort; the original launch error propagates.
        }
      }
    }
    throw;
  }
}

Status Prequest::Wait() {
  if (active_.is_null()) throw CommError("Prequest::Wait before Start");
  return active_.Wait();
}

std::optional<Status> Prequest::Test() {
  if (active_.is_null()) throw CommError("Prequest::Test before Start");
  return active_.Test();
}

}  // namespace mpcx
