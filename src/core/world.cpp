#include "core/world.hpp"

#include <signal.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>
#include <optional>
#include <sstream>
#include <thread>
#include <utility>

#include "core/coll_sched.hpp"
#include "core/intracomm.hpp"
#include "prof/trace.hpp"
#include "runtime/protocol.hpp"
#include "support/error.hpp"
#include "support/faults.hpp"
#include "support/logging.hpp"

namespace mpcx {
namespace {

std::vector<std::string> split(const std::string& text, char sep) {
  std::vector<std::string> parts;
  std::istringstream in(text);
  std::string item;
  while (std::getline(in, item, sep)) parts.push_back(item);
  return parts;
}

/// SIGTERM disposition while tracing: the runtime daemon reaps straggling
/// ranks with SIGTERM, which would discard their span/flight rings; flush
/// them first, then re-raise with the default disposition so the exit
/// status still reports the signal. Dumping allocates — not strictly
/// async-signal-safe — but the alternative is losing the trace outright,
/// and reaped ranks are quiescing by definition.
void flush_trace_on_term(int sig) {
  prof::maybe_dump_trace();
  ::signal(sig, SIG_DFL);
  ::raise(sig);
}

void install_trace_term_handler() {
  static std::once_flag installed;
  std::call_once(installed, [] {
    if (!prof::tracing()) return;
    struct sigaction action {};
    action.sa_handler = flush_trace_on_term;
    sigemptyset(&action.sa_mask);
    ::sigaction(SIGTERM, &action, nullptr);
  });
}

/// MPCX_METRICS_MS: snapshot period in milliseconds (0 / unset = off).
unsigned metrics_period_ms() {
  const char* value = std::getenv("MPCX_METRICS_MS");
  if (value == nullptr || *value == '\0') return 0;
  const long parsed = std::atol(value);
  return parsed > 0 ? static_cast<unsigned>(parsed) : 0;
}

/// MPCX_DAEMON=host:port -> (host, port), or nullopt when unset/malformed.
std::optional<std::pair<std::string, std::uint16_t>> daemon_address() {
  const char* daemon = std::getenv("MPCX_DAEMON");
  if (daemon == nullptr || *daemon == '\0') return std::nullopt;
  const std::string addr = daemon;
  const auto colon = addr.find_last_of(':');
  if (colon == std::string::npos) return std::nullopt;
  return std::make_pair(addr.substr(0, colon),
                        static_cast<std::uint16_t>(std::atoi(addr.c_str() + colon + 1)));
}

bool ft_enabled() {
  const char* value = std::getenv("MPCX_FT");
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

}  // namespace

World::World(const std::string& device_name, const xdev::DeviceConfig& config)
    : engine_(xdev::new_device(device_name), config),
      counters_(prof::Registry::global().create("core/rank" +
                                                std::to_string(config.self_index))),
      pvars_(prof::PvarRegistry::global().create("core/rank" +
                                                 std::to_string(config.self_index))),
      // Buffers handed to the device carry its frame-header reserve.
      pool_(static_cast<std::size_t>(engine_.send_overhead()), counters_.get()) {
  log::set_rank(engine_.rank());
  install_trace_term_handler();
  start_metrics_thread();
  start_ft_listener();
  std::vector<int> world_ranks(static_cast<std::size_t>(engine_.size()));
  for (int r = 0; r < engine_.size(); ++r) world_ranks[static_cast<std::size_t>(r)] = r;
  comm_world_ = std::make_unique<Intracomm>(this, Group(std::move(world_ranks)),
                                            /*ptp_context=*/0, /*coll_context=*/1);
  // Threads blocked in the engine's Waitany drive every in-flight
  // nonblocking collective schedule (progression-from-any-thread).
  engine_.set_progress_fn([this] { progress_nb_collectives(); });
}

std::unique_ptr<World> World::from_env() {
  const char* rank_env = std::getenv("MPCX_RANK");
  const char* world_env = std::getenv("MPCX_WORLD");
  if (rank_env == nullptr || world_env == nullptr) {
    throw RuntimeError("World::from_env: MPCX_RANK / MPCX_WORLD not set (use mpcxrun)");
  }
  const char* device_env = std::getenv("MPCX_DEVICE");
  const std::string device = device_env != nullptr ? device_env : "tcpdev";

  xdev::DeviceConfig config;
  config.self_index = static_cast<std::size_t>(std::atoi(rank_env));
  // ProcessIDs must be unique per launch session on one machine (shmdev
  // derives shared-memory segment names from them); mpcxrun provides a
  // session token for the high bits.
  std::uint64_t session = 0;
  if (const char* session_env = std::getenv("MPCX_SESSION")) {
    session = static_cast<std::uint64_t>(std::atoll(session_env));
  }
  std::uint64_t uuid = (session << 24) + 1;
  for (const std::string& entry : split(world_env, ',')) {
    // Each entry is host:port; the ProcessID is session<<24 | position+1.
    const auto parts = split(entry, ':');
    if (parts.size() != 2) throw RuntimeError("World::from_env: bad MPCX_WORLD entry " + entry);
    xdev::EndpointInfo info;
    info.id = xdev::ProcessID{uuid++};
    info.host = parts[0];
    info.port = static_cast<std::uint16_t>(std::atoi(parts[1].c_str()));
    config.world.push_back(info);
  }
  // MPCX_NODES (set by mpcxrun): per-rank node identity, same order as
  // MPCX_WORLD. hybdev groups ranks with equal identities onto its
  // shared-memory child; without it the endpoint host is the identity.
  if (const char* nodes_env = std::getenv("MPCX_NODES")) {
    const auto nodes = split(nodes_env, ',');
    if (nodes.size() != config.world.size()) {
      throw RuntimeError("World::from_env: MPCX_NODES has " + std::to_string(nodes.size()) +
                         " entries for " + std::to_string(config.world.size()) + " ranks");
    }
    for (std::size_t i = 0; i < nodes.size(); ++i) config.world[i].node = nodes[i];
  }
  // MPCX_EAGER_THRESHOLD is resolved (with validation) by the device itself
  // in resolve_eager_threshold(); config carries only the compiled default.
  if (const char* sockbuf = std::getenv("MPCX_SOCKET_BUFFER")) {
    config.socket_buffer_bytes = std::atoi(sockbuf);
  }
  return std::make_unique<World>(device, config);
}

World::~World() {
  stop_ft_listener();
  stop_metrics_thread();
  try {
    if (!finalized_) {
      // Best effort: tear down the device without the collective barrier
      // (the user skipped Finalize).
      engine_.finish();
      finalized_ = true;
    }
  } catch (const Error& e) {
    log::warn("World teardown: ", e.what());
  }
}

void World::Finalize() {
  if (finalized_) return;
  // Drain in-flight nonblocking collective schedules. Like a blocking
  // collective this needs the peers' cooperation; schedules that already
  // completed (possibly with an error) but hold an unmatched send are left
  // for the post-finish() cleanup below.
  for (;;) {
    progress_nb_collectives();
    bool any_incomplete = false;
    {
      std::lock_guard<std::mutex> lock(nbcoll_mu_);
      for (const auto& state : nbcoll_inflight_) {
        if (!state->complete()) {
          any_incomplete = true;
          break;
        }
      }
    }
    if (!any_incomplete) break;
    std::this_thread::yield();
  }
  // Drain buffered sends, then synchronize before tearing the device down.
  {
    std::lock_guard<std::mutex> lock(bsend_mu_);
    for (BsendEntry& entry : bsend_inflight_) {
      entry.request.wait();
      // The wait can time out with the device mid-write; reclaim defers the
      // storage's disposal to the device instead of freeing under it.
      xdev::reclaim_op_buffer(entry.request.dev(), std::move(entry.storage),
                              [this](std::unique_ptr<buf::Buffer> b) { pool_.put(std::move(b)); });
    }
    bsend_inflight_.clear();
    bsend_used_ = 0;
  }
  // With a dead rank the world barrier can never complete, and a revoked
  // world communicator refuses the barrier's sends outright; in both cases
  // survivors tear down without it (the ULFM-lite escape hatch — a shrunken
  // communicator may have synchronized them already, see Intracomm::Shrink).
  if (!any_rank_failed() && !comm_world_->revoked()) {
    comm_world_->Barrier();
  } else if (any_rank_failed()) {
    log::warn("Finalize: skipping world barrier (", failed_ranks().size(),
              " failed rank(s))");
  } else {
    log::warn("Finalize: skipping world barrier (world communicator revoked)");
  }
  stop_ft_listener();
  engine_.finish();
  finalized_ = true;
  // The device is down (threads joined), so no operation still references
  // schedule scratch — safe to release even never-drained failed schedules.
  {
    std::lock_guard<std::mutex> lock(nbcoll_mu_);
    nbcoll_inflight_.clear();
    nbcoll_count_.store(0, std::memory_order_relaxed);
  }

  stop_metrics_thread();

  if (prof::stats_enabled()) {
    const std::string label = "rank " + std::to_string(engine_.rank());
    const prof::Counters* device_counters = engine_.device().counters();
    if (device_counters != nullptr) {
      prof::report_counters(label + " device", *device_counters);
    }
    prof::report_counters(label + " core", *counters_);
    // The faults block is process-global (shared by every in-process rank),
    // so it prints once per process, not once per rank.
    static std::once_flag faults_reported;
    std::call_once(faults_reported,
                   [] { prof::report_counters("faults", faults::counters()); });
    // Pvar sets register in a process-global registry (device sets under
    // their own labels), so like faults they print once per process.
    static std::once_flag pvars_reported;
    std::call_once(pvars_reported, [] {
      for (const auto& entry : prof::PvarRegistry::global().snapshot()) {
        prof::report_pvars(entry.label, *entry.set);
      }
    });
  }
  if (!prof::maybe_dump_trace()) {
    if (prof::tracing()) log::warn("could not write trace to ", prof::trace_path());
  }
}

void World::Abort(int errorcode) {
  log::error("Abort(", errorcode, "): terminating world");
  // std::_Exit skips every destructor, so flush the trace now or lose it.
  if (!prof::maybe_dump_trace()) {
    if (prof::tracing()) log::warn("could not write trace to ", prof::trace_path());
  }
  // Tell the runtime daemon (if any) to kill sibling ranks. Best effort:
  // a standalone process (no launcher) simply exits. The daemon skips our
  // own pid so _Exit below — not its SIGTERM — decides the exit code.
  if (const char* daemon = std::getenv("MPCX_DAEMON")) {
    try {
      const std::string addr = daemon;
      const auto colon = addr.find_last_of(':');
      if (colon != std::string::npos) {
        const std::string host = addr.substr(0, colon);
        const auto port = static_cast<std::uint16_t>(std::atoi(addr.c_str() + colon + 1));
        net::Socket sock = net::Socket::connect(host, port, 2000);
        runtime::AbortRequest request;
        request.code = static_cast<std::int32_t>(errorcode);
        request.initiator_pid = static_cast<std::int32_t>(::getpid());
        runtime::write_frame(sock, runtime::MsgKind::Abort, request);
        (void)runtime::read_frame(sock);
      }
    } catch (const Error& e) {
      log::warn("Abort: could not reach daemon: ", e.what());
    }
  }
  std::_Exit(errorcode);
}

double World::Wtime() {
  const auto now = std::chrono::steady_clock::now().time_since_epoch();
  return std::chrono::duration<double>(now).count();
}

double World::Wtick() {
  return static_cast<double>(std::chrono::steady_clock::period::num) /
         static_cast<double>(std::chrono::steady_clock::period::den);
}

std::string World::Get_processor_name() {
  char name[256] = {};
  if (::gethostname(name, sizeof(name) - 1) != 0) return "unknown";
  return name;
}

void World::raise_context_floor(int value) {
  int current = next_context_.load();
  while (current < value && !next_context_.compare_exchange_weak(current, value)) {
  }
}

void World::Buffer_attach(std::size_t bytes) {
  std::lock_guard<std::mutex> lock(bsend_mu_);
  bsend_capacity_ += bytes;
}

std::size_t World::Buffer_detach() {
  std::lock_guard<std::mutex> lock(bsend_mu_);
  for (BsendEntry& entry : bsend_inflight_) {
    entry.request.wait();
    xdev::reclaim_op_buffer(entry.request.dev(), std::move(entry.storage),
                            [this](std::unique_ptr<buf::Buffer> b) { pool_.put(std::move(b)); });
  }
  bsend_inflight_.clear();
  bsend_used_ = 0;
  const std::size_t size = bsend_capacity_;
  bsend_capacity_ = 0;
  return size;
}

void World::reap_bsends_locked() {
  auto it = bsend_inflight_.begin();
  while (it != bsend_inflight_.end()) {
    if (it->request.is_complete()) {
      bsend_used_ -= it->bytes;
      xdev::reclaim_op_buffer(it->request.dev(), std::move(it->storage),
                              [this](std::unique_ptr<buf::Buffer> b) { pool_.put(std::move(b)); });
      it = bsend_inflight_.erase(it);
    } else {
      ++it;
    }
  }
}

void World::register_nb_coll(std::shared_ptr<CollState> state) {
  std::lock_guard<std::mutex> lock(nbcoll_mu_);
  nbcoll_inflight_.push_back(std::move(state));
  nbcoll_count_.store(nbcoll_inflight_.size(), std::memory_order_relaxed);
  pvars_->gauge_set(prof::Pv::InflightScheds, nbcoll_inflight_.size());
}

void World::progress_nb_collectives() {
  // Single relaxed load on the (common) nothing-in-flight path.
  if (nbcoll_count_.load(std::memory_order_relaxed) == 0) return;
  // A schedule's progression calls back into comm helpers that may reach
  // this sweep again (e.g. through buffer reclamation); one level is enough.
  thread_local bool sweeping = false;
  if (sweeping) return;
  sweeping = true;
  struct Reset {
    bool& flag;
    ~Reset() { flag = false; }
  } reset{sweeping};
  std::vector<std::shared_ptr<CollState>> snapshot;
  {
    std::lock_guard<std::mutex> lock(nbcoll_mu_);
    snapshot = nbcoll_inflight_;
  }
  for (const auto& state : snapshot) state->try_progress();
  {
    std::lock_guard<std::mutex> lock(nbcoll_mu_);
    std::erase_if(nbcoll_inflight_,
                  [](const std::shared_ptr<CollState>& s) { return s->drained(); });
    nbcoll_count_.store(nbcoll_inflight_.size(), std::memory_order_relaxed);
    pvars_->gauge_set(prof::Pv::InflightScheds, nbcoll_inflight_.size());
  }
}

void World::start_metrics_thread() {
  const unsigned period = metrics_period_ms();
  if (period == 0) return;
  std::string path;
  if (const char* env = std::getenv("MPCX_METRICS_PATH")) path = env;
  if (path.empty()) path = "mpcx_metrics.rank" + std::to_string(engine_.rank()) + ".jsonl";
  const int rank = engine_.rank();
  metrics_thread_ = std::thread([this, period, path, rank] {
    std::FILE* out = std::fopen(path.c_str(), "a");
    if (out == nullptr) {
      log::warn("metrics: could not open ", path);
      return;
    }
    std::unique_lock<std::mutex> lock(metrics_mu_);
    for (;;) {
      // Writes one line per period plus a final one at shutdown, so even a
      // short-lived rank leaves at least one snapshot behind.
      const bool stop = metrics_cv_.wait_for(lock, std::chrono::milliseconds(period),
                                             [this] { return metrics_stop_; });
      const std::string line = prof::pvars_jsonl_line(rank, prof::trace_now_ns());
      std::fwrite(line.data(), 1, line.size(), out);
      std::fflush(out);
      if (stop) break;
    }
    std::fclose(out);
  });
}

void World::stop_metrics_thread() {
  {
    std::lock_guard<std::mutex> lock(metrics_mu_);
    metrics_stop_ = true;
  }
  metrics_cv_.notify_all();
  if (metrics_thread_.joinable()) metrics_thread_.join();
}

void World::start_ft_listener() {
  if (!ft_enabled()) return;
  const auto addr = daemon_address();
  if (!addr) return;  // no daemon to subscribe to (standalone / in-process run)
  const int self = engine_.rank();
  ft_thread_ = std::thread([this, addr, self] {
    std::shared_ptr<net::Socket> sock;
    try {
      sock = std::make_shared<net::Socket>(
          net::Socket::connect(addr->first, addr->second, 2000));
      runtime::write_frame(*sock, runtime::MsgKind::Subscribe);
    } catch (const Error& e) {
      log::warn("ft: could not subscribe to daemon ", addr->first, ":", addr->second, ": ",
                e.what());
      return;
    }
    {
      std::lock_guard<std::mutex> lock(ft_mu_);
      ft_socket_ = sock;
    }
    try {
      for (;;) {
        const runtime::Frame frame = runtime::read_frame(*sock);
        if (frame.kind != runtime::MsgKind::RankFailed) continue;
        const auto event = frame.as<runtime::RankFailedEvent>();
        if (event.rank == self) continue;  // we are evidently still alive
        log::warn("ft: daemon reports rank ", event.rank, " dead (exit code ",
                  event.exit_code, ")");
        mark_rank_failed(event.rank);
      }
    } catch (const Error&) {
      // Channel closed: normal shutdown (stop_ft_listener) or daemon death.
    }
  });
}

void World::stop_ft_listener() {
  {
    std::lock_guard<std::mutex> lock(ft_mu_);
    if (ft_socket_ != nullptr && ft_socket_->valid()) {
      ::shutdown(ft_socket_->fd(), SHUT_RDWR);  // unblock the listener's read
    }
  }
  if (ft_thread_.joinable()) ft_thread_.join();
  std::lock_guard<std::mutex> lock(ft_mu_);
  ft_socket_.reset();
}

void World::mark_rank_failed(int rank) {
  if (rank < 0 || rank >= engine_.size() || rank == engine_.rank()) return;
  {
    std::lock_guard<std::mutex> lock(ft_mu_);
    if (!failed_ranks_.insert(rank).second) return;  // already known
  }
  log::warn("rank ", rank, " declared failed; erroring its pending operations");
  // The device errors every operation pinned to the dead peer (ProcFailed)
  // and refuses new traffic toward it, so blocked waits surface the failure.
  engine_.device().notify_peer_failed(engine_.pid_of(rank));
}

std::vector<int> World::failed_ranks() const {
  std::lock_guard<std::mutex> lock(ft_mu_);
  return {failed_ranks_.begin(), failed_ranks_.end()};
}

bool World::any_rank_failed() const {
  std::lock_guard<std::mutex> lock(ft_mu_);
  return !failed_ranks_.empty();
}

void World::bsend_reserve(std::size_t bytes, mpdev::Request request,
                          std::unique_ptr<buf::Buffer> storage) {
  std::lock_guard<std::mutex> lock(bsend_mu_);
  reap_bsends_locked();
  if (bsend_used_ + bytes > bsend_capacity_) {
    throw CommError("Bsend: attached buffer space exhausted (" + std::to_string(bsend_used_) +
                    " of " + std::to_string(bsend_capacity_) + " bytes in use; Buffer_attach more)");
  }
  bsend_used_ += bytes;
  bsend_inflight_.push_back(BsendEntry{std::move(request), std::move(storage), bytes});
}

}  // namespace mpcx
