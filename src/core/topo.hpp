// mpcx::topo — the n-level locality tree behind hierarchical collectives.
//
// PR 4's node-aware collectives knew exactly two levels: "my node" and
// "everyone else". This module generalizes that into an arbitrary-depth
// locality tree (node -> NUMA -> socket -> cache -> core) built from two
// inputs:
//
//   * the engine's node map (real hosts, or MPCX_NODE_ID round-robin
//     simulation) — always the top level when the communicator spans more
//     than one node;
//   * an MPCX_TOPO spec string describing the levels *inside* a node (or a
//     fully virtual hierarchy when everything is on one node), XHC-style:
//
//       MPCX_TOPO=numa:2,cache:2        # each node splits into 2 NUMA
//                                       # domains, each NUMA into 2 caches
//
//     Levels are listed top-first as `name:fanout` pairs. Each level splits
//     every group of the level above into `fanout` contiguous blocks of
//     communicator ranks (ceil-sized, like a block distribution). Names are
//     documentation only; the fanouts define the tree.
//
// The per-rank view is a list of *exchanges*: depth-k exchange (k < depth)
// runs among the leaders of the depth-k groups that share a depth-(k-1)
// group, and the leaf exchange (k == depth) runs among all members of the
// deepest group. Leadership is hierarchical — the lowest communicator rank
// of a group leads it, except that a rooted collective re-roots every group
// on the root's path at the root — so each rank has a minimal leadership
// depth m: it participates in exchanges m..depth, receiving/contributing at
// exchange m and acting as the exchange root at every deeper one. Walking
// the exchanges top-down yields a broadcast schedule; bottom-up, a
// reduction; both directions, a barrier or allreduce.
#pragma once

#include <string>
#include <vector>

#include "core/types.hpp"

namespace mpcx::topo {

/// One MPCX_TOPO level: split each group of the level above into `fanout`
/// contiguous blocks. `name` is carried for diagnostics only.
struct LevelSpec {
  std::string name;
  int fanout = 1;
};

/// A parsed MPCX_TOPO string. Empty levels => no virtual hierarchy.
struct TopoSpec {
  std::vector<LevelSpec> levels;
  bool empty() const { return levels.empty(); }
};

/// Parse the `name:fanout,name:fanout,...` grammar. Malformed specs (bad
/// fanout, missing colon) yield an empty spec — collectives fall back to
/// the flat/engine-node behaviour rather than half-applying a topology.
TopoSpec parse_spec(const std::string& spec);

/// One exchange of the locality tree as seen by a single rank. `peers`
/// holds communicator ranks in canonical group order (groups are numbered
/// in first-seen rank order, so for contiguous layouts this is ascending
/// lowest-member order — the order a non-commutative fold must follow).
struct Exchange {
  std::vector<int> peers;
  int my_vidx = -1;   ///< my index in peers, or -1 when I do not participate
  int root_vidx = 0;  ///< index of the exchange root (leader of the enclosing group)
};

/// The per-rank view of the whole tree. depth == number of grouping levels;
/// exchanges has depth+1 entries (index depth is the leaf exchange among the
/// deepest group's members). depth == 0 means "no hierarchy" — callers
/// should take the flat path.
struct View {
  int depth = 0;
  std::vector<Exchange> exchanges;

  /// True when every group at every level is a contiguous communicator-rank
  /// block. Ordered per-level folds are only canonical-order-equivalent to
  /// the flat fold under contiguity, so non-commutative hierarchical
  /// reductions are gated on this flag.
  bool contiguous = true;

  /// The engine-node group this rank belongs to (whole communicator when it
  /// spans a single node): the sharing domain for single-copy collective
  /// buffers. Members are in ascending rank order; the writer/collector for
  /// a given collective is `node_leader` (root-aligned).
  std::vector<int> node_members;
  int node_leader = 0;       ///< comm rank of the node group's (root-aligned) leader
  int node_member_idx = 0;   ///< my index within node_members
  int node_exchange_begin = 0;  ///< first exchange level fully inside the node group
};

/// Build the per-rank view. `engine_node_of[r]` gives the engine node of
/// communicator rank r (pass an empty vector when node identity is unknown
/// or irrelevant); `spec` supplies the virtual levels below (or instead of)
/// the node level; `root` re-roots leadership for rooted collectives (-1
/// for rootless ones, which lead at the lowest rank of every group).
View build_view(int size, int my_rank, int root,
                const std::vector<int>& engine_node_of, const TopoSpec& spec);

}  // namespace mpcx::topo
