#include "core/comm.hpp"

#include <array>
#include <atomic>
#include <cstdlib>
#include <cstring>
#include <limits>
#include <string_view>

#include "core/world.hpp"
#include "prof/trace.hpp"
#include "support/error.hpp"
#include "support/logging.hpp"

namespace mpcx {
namespace {

const std::byte* byte_base(const void* buf, int offset, const DatatypePtr& type) {
  return static_cast<const std::byte*>(buf) +
         static_cast<std::ptrdiff_t>(offset) * static_cast<std::ptrdiff_t>(type->base_size());
}

std::byte* byte_base(void* buf, int offset, const DatatypePtr& type) {
  return static_cast<std::byte*>(buf) +
         static_cast<std::ptrdiff_t>(offset) * static_cast<std::ptrdiff_t>(type->base_size());
}

void validate_send_tag(int tag) {
  if (tag < 0 || tag > kMaxUserTag) {
    throw ArgumentError("send tag must be in [0, " + std::to_string(kMaxUserTag) + "]");
  }
}

void validate_recv_tag(int tag) {
  if (tag != ANY_TAG && (tag < 0 || tag > kMaxUserTag)) {
    throw ArgumentError("receive tag must be ANY_TAG or in [0, " + std::to_string(kMaxUserTag) +
                        "]");
  }
}

Status proc_null_status() { return Status(PROC_NULL, ANY_TAG, 0, 0, false); }

/// Zero-copy send eligibility: a contiguous layout whose total element
/// count fits the u32 wire section header. Returns that element count.
std::optional<std::uint32_t> zero_copy_elements(const DatatypePtr& type, int count) {
  if (!type->is_contiguous()) return std::nullopt;
  const std::uint64_t elements =
      static_cast<std::uint64_t>(count) * static_cast<std::uint64_t>(type->size_elements());
  if (elements > std::numeric_limits<std::uint32_t>::max()) return std::nullopt;
  return static_cast<std::uint32_t>(elements);
}

using SectionHeader = std::array<std::byte, buf::Buffer::kSectionHeaderBytes>;

}  // namespace

Comm::Comm(World* world, Group group, int ptp_context, int coll_context)
    : world_(world),
      group_(std::move(group)),
      ptp_context_(ptp_context),
      coll_context_(coll_context) {
  local_rank_ = group_.Rank_of_world(world_->Rank());
  refresh_hier_config();
}

void Comm::refresh_hier_config() {
  const char* hier = std::getenv("MPCX_HIER_COLLS");
  hier_config_.hier_enabled = hier == nullptr || std::string_view(hier) != "0";
  const char* singlecopy = std::getenv("MPCX_SINGLECOPY");
  hier_config_.singlecopy =
      singlecopy == nullptr || std::string_view(singlecopy) != "0";
  const char* topo = std::getenv("MPCX_TOPO");
  hier_config_.topo_spec =
      topo == nullptr ? topo::TopoSpec{} : topo::parse_spec(topo);
}

mpdev::Engine& Comm::engine() const { return world_->engine(); }

int Comm::world_dest(int local_rank) const {
  check_revoked("send");
  return group_.world_rank(local_rank);
}

int Comm::world_source(int local_rank) const {
  check_revoked("receive");
  if (local_rank == ANY_SOURCE) return mpdev::kAnySource;
  return group_.world_rank(local_rank);
}

void Comm::Revoke() {
  if (revoked_.exchange(true, std::memory_order_acq_rel)) return;
  log::warn("communicator revoked (contexts ", ptp_context_, "/", coll_context_,
            "): new operations will fail with ErrCode::Revoked");
}

void Comm::check_revoked(const char* op) const {
  if (!revoked_.load(std::memory_order_acquire)) return;
  throw CommError(std::string(op) + " on a revoked communicator (use Shrink to recover)",
                  ErrCode::Revoked);
}

Status Comm::to_local_status(const mpdev::Status& dev) const {
  const int local_source = dev.source >= 0 ? group_.Rank_of_world(dev.source) : dev.source;
  ErrCode error = dev.error;
  if (error == ErrCode::Success && dev.truncated) error = ErrCode::Truncate;
  return Status(local_source, dev.tag, dev.static_bytes, dev.dynamic_bytes, dev.truncated,
                dev.cancelled, error);
}

void Comm::handle_error(ErrCode code, const std::string& what) const {
  switch (errhandler_.load(std::memory_order_relaxed)) {
    case Errhandler::ErrorsReturn:
      return;  // caller surfaces the error through Status::Get_error()
    case Errhandler::ErrorsAreFatal:
      log::error("fatal communication error (", err_code_name(code), "): ", what);
      Abort(static_cast<int>(code));
    case Errhandler::ErrorsThrow:
      break;
  }
  throw CommError(what, code);
}

void Comm::Abort(int errorcode) const { world_->Abort(errorcode); }

void Comm::validate(const void* buf, int count, const DatatypePtr& type, const char* op) {
  if (count < 0) throw ArgumentError(std::string(op) + ": negative count");
  if (!type) throw ArgumentError(std::string(op) + ": null datatype");
  if (buf == nullptr && count > 0) throw ArgumentError(std::string(op) + ": null buffer");
}

std::unique_ptr<buf::Buffer> Comm::take_buffer(std::size_t min_capacity) const {
  return world_->take_buffer(min_capacity);
}

void Comm::give_buffer(std::unique_ptr<buf::Buffer> buffer) const {
  world_->give_buffer(std::move(buffer));
}

void Comm::reclaim_buffer(const mpdev::Request& request,
                          std::unique_ptr<buf::Buffer> buffer) const {
  xdev::reclaim_op_buffer(request.dev(), std::move(buffer),
                          [this](std::unique_ptr<buf::Buffer> b) { give_buffer(std::move(b)); });
}

void Comm::release_borrowed(const mpdev::Request& request) const {
  if (request.dev()->attached_buffer() == nullptr) xdev::await_device_release(request.dev());
}

void Comm::deliver_direct_recv(const mpdev::Request& request, const mpdev::Status& dev,
                               std::span<const std::byte> hdr, std::byte* user_base,
                               std::size_t max_items, const DatatypePtr& type) const {
  prof::Span span("unpack", "core");
  if (!dev.direct) {
    // The message's shape didn't fit the span (raced the post, multiple
    // sections, dynamic data): the device staged it; unpack as usual.
    std::unique_ptr<buf::Buffer> staged = request.dev()->take_attached_buffer();
    type->unpack_available(*staged, user_base, max_items);
    world_->counters().add(prof::Ctr::UnpackBytes, dev.static_bytes + dev.dynamic_bytes);
    reclaim_buffer(request, std::move(staged));
    return;
  }
  // The payload already sits in user memory; the landed section header
  // decides whether it can stay there. It must describe exactly the posted
  // type: same primitive, a payload-covering count, whole items, within the
  // posted item limit. Anything else (e.g. a matching-size message of a
  // different type) is rebuilt as a message buffer and unpacked normally.
  const std::size_t payload_bytes = dev.static_bytes - buf::Buffer::kSectionHeaderBytes;
  const auto info = buf::decode_section_header(hdr);
  const std::size_t per_item = type->size_elements();
  const bool in_place = info.has_value() && info->type == type->base() &&
                        info->count * type->base_size() == payload_bytes && per_item > 0 &&
                        info->count % per_item == 0 && info->count / per_item <= max_items;
  if (in_place) {
    world_->counters().add(prof::Ctr::ZeroCopyRecvs);
    world_->counters().add(prof::Ctr::UnpackBytesAvoided, payload_bytes);
    return;
  }
  auto scratch = take_buffer(dev.static_bytes);
  std::span<std::byte> dst = scratch->prepare_static(dev.static_bytes);
  std::memcpy(dst.data(), hdr.data(), hdr.size());
  if (payload_bytes != 0) std::memcpy(dst.data() + hdr.size(), user_base, payload_bytes);
  scratch->prepare_dynamic(0);
  scratch->seal_received();
  type->unpack_available(*scratch, user_base, max_items);
  world_->counters().add(prof::Ctr::UnpackBytes, dev.static_bytes);
  give_buffer(std::move(scratch));
}

std::unique_ptr<buf::Buffer> Comm::pack_message(const void* buf, int offset, int count,
                                                const DatatypePtr& type) const {
  prof::Span span("pack", "core");
  auto buffer = take_buffer(type->packed_bound(static_cast<std::size_t>(count)));
  type->pack(byte_base(buf, offset, type), static_cast<std::size_t>(count), *buffer);
  buffer->commit();
  world_->counters().add(prof::Ctr::PackBytes,
                         buffer->static_size() + buffer->dynamic_size());
  return buffer;
}

// ---- internal context-addressed point-to-point -----------------------------------

void Comm::ctx_send(int context, int tag, const void* buf, int offset, int count,
                    const DatatypePtr& type, int dest_local) const {
  if (const auto elements = zero_copy_elements(type, count)) {
    // Contiguous fast path: ship the user bytes as a borrowed segment — no
    // packing copy. release_borrowed keeps the blocking contract when the
    // wait times out with the device still reading the segment.
    SectionHeader hdr;
    buf::encode_section_header(hdr, type->base(), *elements);
    const xdev::SendSegment seg{byte_base(buf, offset, type),
                                static_cast<std::size_t>(count) * type->size_bytes()};
    world_->counters().add(prof::Ctr::ZeroCopySends);
    world_->counters().add(prof::Ctr::PackBytesAvoided, seg.size);
    mpdev::Request request =
        engine().isend_segments(hdr, std::span(&seg, 1), world_dest(dest_local), tag, context);
    const mpdev::Status dev = request.wait();
    release_borrowed(request);
    if (dev.error != ErrCode::Success) {
      handle_error(dev.error, std::string("send failed: ") + err_code_name(dev.error));
    }
    return;
  }
  // Blocking ops go through a request so reclaim_buffer can defer the
  // buffer's disposal when the wait times out with the device mid-transfer.
  auto buffer = pack_message(buf, offset, count, type);
  mpdev::Request request = engine().isend(*buffer, world_dest(dest_local), tag, context);
  const mpdev::Status dev = request.wait();
  reclaim_buffer(request, std::move(buffer));
  if (dev.error != ErrCode::Success) {
    handle_error(dev.error, std::string("send failed: ") + err_code_name(dev.error));
  }
}

Status Comm::ctx_recv(int context, int tag, void* buf, int offset, int count,
                      const DatatypePtr& type, int source_local) const {
  if (type->is_contiguous()) {
    // Contiguous fast path: hand the device the user region itself; a
    // matched message lands there with no staging buffer or unpack pass.
    SectionHeader hdr{};
    std::byte* user_base = byte_base(buf, offset, type);
    const xdev::RecvSpan span{hdr.data(), user_base,
                              static_cast<std::size_t>(count) * type->size_bytes()};
    mpdev::Request request = engine().irecv_direct(span, world_source(source_local), tag, context);
    const mpdev::Status dev = request.wait();
    if (dev.truncated || dev.error != ErrCode::Success) {
      release_borrowed(request);  // hdr and the user region are borrowed
      if (dev.truncated) {
        handle_error(ErrCode::Truncate,
                     "receive truncated: message larger than the posted buffer");
      } else {
        handle_error(dev.error, std::string("receive failed: ") + err_code_name(dev.error));
      }
      return to_local_status(dev);  // ERRORS_RETURN: error carried in the Status
    }
    deliver_direct_recv(request, dev, hdr, user_base, static_cast<std::size_t>(count), type);
    return to_local_status(dev);
  }
  auto buffer = take_buffer(type->packed_bound(static_cast<std::size_t>(count)));
  mpdev::Request request = engine().irecv(*buffer, world_source(source_local), tag, context);
  const mpdev::Status dev = request.wait();
  if (dev.truncated || dev.error != ErrCode::Success) {
    reclaim_buffer(request, std::move(buffer));
    if (dev.truncated) {
      handle_error(ErrCode::Truncate, "receive truncated: message larger than the posted buffer");
    } else {
      handle_error(dev.error, std::string("receive failed: ") + err_code_name(dev.error));
    }
    return to_local_status(dev);  // ERRORS_RETURN: error carried in the Status
  }
  {
    prof::Span span("unpack", "core");
    type->unpack_available(*buffer, byte_base(buf, offset, type), static_cast<std::size_t>(count));
    world_->counters().add(prof::Ctr::UnpackBytes, dev.static_bytes + dev.dynamic_bytes);
  }
  reclaim_buffer(request, std::move(buffer));
  return to_local_status(dev);
}

Request Comm::ctx_isend(int context, int tag, const void* buf, int offset, int count,
                        const DatatypePtr& type, int dest_local) const {
  if (const auto elements = zero_copy_elements(type, count)) {
    // Contiguous fast path: the user region is borrowed until completion
    // (see the Isend doc); the 8-byte header is copied by the device.
    SectionHeader hdr;
    buf::encode_section_header(hdr, type->base(), *elements);
    const xdev::SendSegment seg{byte_base(buf, offset, type),
                                static_cast<std::size_t>(count) * type->size_bytes()};
    world_->counters().add(prof::Ctr::ZeroCopySends);
    world_->counters().add(prof::Ctr::PackBytesAvoided, seg.size);
    mpdev::Request dev =
        engine().isend_segments(hdr, std::span(&seg, 1), world_dest(dest_local), tag, context);
    return Request::make_borrowed_send(this, std::move(dev));
  }
  auto buffer = pack_message(buf, offset, count, type);
  mpdev::Request dev = engine().isend(*buffer, world_dest(dest_local), tag, context);
  return Request::make_send(this, std::move(dev), std::move(buffer));
}

Request Comm::ctx_irecv(int context, int tag, void* buf, int offset, int count,
                        const DatatypePtr& type, int source_local) const {
  if (type->is_contiguous()) {
    return Request::make_direct_recv(this, world_source(source_local), tag, context, type,
                                     byte_base(buf, offset, type),
                                     static_cast<std::size_t>(count));
  }
  auto buffer = take_buffer(type->packed_bound(static_cast<std::size_t>(count)));
  buf::Buffer& landing = *buffer;
  mpdev::Request dev = engine().irecv(landing, world_source(source_local), tag, context);
  return Request::make_recv(this, std::move(dev), std::move(buffer), type,
                            byte_base(buf, offset, type), static_cast<std::size_t>(count));
}

// ---- blocking sends -----------------------------------------------------------------

void Comm::Send(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                int tag) const {
  validate(buf, count, type, "Send");
  validate_send_tag(tag);
  if (dest == PROC_NULL) return;
  ctx_send(ptp_context_, tag, buf, offset, count, type, dest);
}

void Comm::Ssend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                 int tag) const {
  validate(buf, count, type, "Ssend");
  validate_send_tag(tag);
  if (dest == PROC_NULL) return;
  if (const auto elements = zero_copy_elements(type, count)) {
    SectionHeader hdr;
    buf::encode_section_header(hdr, type->base(), *elements);
    const xdev::SendSegment seg{byte_base(buf, offset, type),
                                static_cast<std::size_t>(count) * type->size_bytes()};
    world_->counters().add(prof::Ctr::ZeroCopySends);
    world_->counters().add(prof::Ctr::PackBytesAvoided, seg.size);
    mpdev::Request request =
        engine().issend_segments(hdr, std::span(&seg, 1), world_dest(dest), tag, ptp_context_);
    const mpdev::Status dev = request.wait();
    release_borrowed(request);
    if (dev.error != ErrCode::Success) {
      handle_error(dev.error, std::string("Ssend failed: ") + err_code_name(dev.error));
    }
    return;
  }
  auto buffer = pack_message(buf, offset, count, type);
  mpdev::Request request = engine().issend(*buffer, world_dest(dest), tag, ptp_context_);
  const mpdev::Status dev = request.wait();
  reclaim_buffer(request, std::move(buffer));
  if (dev.error != ErrCode::Success) {
    handle_error(dev.error, std::string("Ssend failed: ") + err_code_name(dev.error));
  }
}

void Comm::Bsend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                 int tag) const {
  validate(buf, count, type, "Bsend");
  validate_send_tag(tag);
  if (dest == PROC_NULL) return;
  auto buffer = pack_message(buf, offset, count, type);
  const std::size_t bytes = buffer->static_size() + buffer->dynamic_size();
  mpdev::Request dev = engine().isend(*buffer, world_dest(dest), tag, ptp_context_);
  // Completes locally: the World tracks the in-flight send and its storage.
  world_->bsend_reserve(bytes, std::move(dev), std::move(buffer));
}

void Comm::Rsend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                 int tag) const {
  // Ready mode: the standard-mode protocol is always legal for it.
  Send(buf, offset, count, type, dest, tag);
}

Status Comm::Recv(void* buf, int offset, int count, const DatatypePtr& type, int source,
                  int tag) const {
  validate(buf, count, type, "Recv");
  validate_recv_tag(tag);
  if (source == PROC_NULL) return proc_null_status();
  return ctx_recv(ptp_context_, tag, buf, offset, count, type, source);
}

// ---- non-blocking -----------------------------------------------------------------------

Request Comm::Isend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                    int tag) const {
  validate(buf, count, type, "Isend");
  validate_send_tag(tag);
  if (dest == PROC_NULL) return Request();
  return ctx_isend(ptp_context_, tag, buf, offset, count, type, dest);
}

Request Comm::Issend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                     int tag) const {
  validate(buf, count, type, "Issend");
  validate_send_tag(tag);
  if (dest == PROC_NULL) return Request();
  if (const auto elements = zero_copy_elements(type, count)) {
    SectionHeader hdr;
    buf::encode_section_header(hdr, type->base(), *elements);
    const xdev::SendSegment seg{byte_base(buf, offset, type),
                                static_cast<std::size_t>(count) * type->size_bytes()};
    world_->counters().add(prof::Ctr::ZeroCopySends);
    world_->counters().add(prof::Ctr::PackBytesAvoided, seg.size);
    mpdev::Request dev =
        engine().issend_segments(hdr, std::span(&seg, 1), world_dest(dest), tag, ptp_context_);
    return Request::make_borrowed_send(this, std::move(dev));
  }
  auto buffer = pack_message(buf, offset, count, type);
  mpdev::Request dev = engine().issend(*buffer, world_dest(dest), tag, ptp_context_);
  return Request::make_send(this, std::move(dev), std::move(buffer));
}

Request Comm::Ibsend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                     int tag) const {
  // The buffered send is tracked by the World; the returned request is the
  // device request (it still completes quickly — data is already copied).
  validate(buf, count, type, "Ibsend");
  validate_send_tag(tag);
  if (dest == PROC_NULL) return Request();
  Bsend(buf, offset, count, type, dest, tag);
  return Request();  // buffered sends are complete from the caller's view
}

Request Comm::Irsend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                     int tag) const {
  return Isend(buf, offset, count, type, dest, tag);
}

Request Comm::Irecv(void* buf, int offset, int count, const DatatypePtr& type, int source,
                    int tag) const {
  validate(buf, count, type, "Irecv");
  validate_recv_tag(tag);
  if (source == PROC_NULL) return Request();
  return ctx_irecv(ptp_context_, tag, buf, offset, count, type, source);
}

// ---- persistent ----------------------------------------------------------------------------

Prequest Comm::Send_init(const void* buf, int offset, int count, const DatatypePtr& type,
                         int dest, int tag) const {
  validate(buf, count, type, "Send_init");
  validate_send_tag(tag);
  auto recipe = std::make_shared<Prequest::Recipe>();
  recipe->comm = this;
  recipe->is_send = true;
  recipe->send_buf = buf;
  recipe->offset = offset;
  recipe->count = count;
  recipe->type = type;
  recipe->peer = dest;
  recipe->tag = tag;
  return Prequest(std::move(recipe));
}

Prequest Comm::Recv_init(void* buf, int offset, int count, const DatatypePtr& type, int source,
                         int tag) const {
  validate(buf, count, type, "Recv_init");
  validate_recv_tag(tag);
  auto recipe = std::make_shared<Prequest::Recipe>();
  recipe->comm = this;
  recipe->is_send = false;
  recipe->recv_buf = buf;
  recipe->offset = offset;
  recipe->count = count;
  recipe->type = type;
  recipe->peer = source;
  recipe->tag = tag;
  return Prequest(std::move(recipe));
}

// ---- probe -----------------------------------------------------------------------------------

Status Comm::Probe(int source, int tag) const {
  validate_recv_tag(tag);
  if (source == PROC_NULL) return proc_null_status();
  try {
    return to_local_status(engine().probe(world_source(source), tag, ptp_context_));
  } catch (const DeviceError& e) {
    // Device-side failure (MPCX_OP_TIMEOUT_MS expiry, dead peer): route
    // through the errhandler; under ERRORS_RETURN the code rides the Status.
    handle_error(e.code(), e.what());
    return Status(PROC_NULL, ANY_TAG, 0, 0, false, false, e.code());
  }
}

std::optional<Status> Comm::Iprobe(int source, int tag) const {
  validate_recv_tag(tag);
  if (source == PROC_NULL) return proc_null_status();
  auto dev = engine().iprobe(world_source(source), tag, ptp_context_);
  if (!dev) return std::nullopt;
  return to_local_status(*dev);
}

// ---- combined ----------------------------------------------------------------------------------

Status Comm::Sendrecv(const void* sendbuf, int sendoffset, int sendcount,
                      const DatatypePtr& sendtype, int dest, int sendtag, void* recvbuf,
                      int recvoffset, int recvcount, const DatatypePtr& recvtype, int source,
                      int recvtag) const {
  Request recv = Irecv(recvbuf, recvoffset, recvcount, recvtype, source, recvtag);
  Send(sendbuf, sendoffset, sendcount, sendtype, dest, sendtag);
  if (recv.is_null()) return proc_null_status();
  return recv.Wait();
}

// ---- pack / unpack ------------------------------------------------------------------

void Comm::Pack(const void* inbuf, int offset, int count, const DatatypePtr& type,
                buf::Buffer& buffer) const {
  validate(inbuf, count, type, "Pack");
  type->pack(byte_base(inbuf, offset, type), static_cast<std::size_t>(count), buffer);
}

void Comm::Unpack(buf::Buffer& buffer, void* outbuf, int offset, int count,
                  const DatatypePtr& type) const {
  validate(outbuf, count, type, "Unpack");
  type->unpack(buffer, byte_base(outbuf, offset, type), static_cast<std::size_t>(count));
}

// ---- attribute caching ----------------------------------------------------------------

int Comm::Keyval_create() {
  static std::atomic<int> next_keyval{1};
  return next_keyval.fetch_add(1, std::memory_order_relaxed);
}

void Comm::Attr_put(int keyval, std::any value) const {
  std::lock_guard<std::mutex> lock(attrs_mu_);
  attrs_[keyval] = std::move(value);
}

std::optional<std::any> Comm::Attr_get(int keyval) const {
  std::lock_guard<std::mutex> lock(attrs_mu_);
  auto it = attrs_.find(keyval);
  if (it == attrs_.end()) return std::nullopt;
  return it->second;
}

void Comm::Attr_delete(int keyval) const {
  std::lock_guard<std::mutex> lock(attrs_mu_);
  attrs_.erase(keyval);
}

// ---- direct-buffer extension (paper Sec. VI future work) ------------------------

void Comm::Send_buffer(buf::Buffer& buffer, int dest, int tag) const {
  validate_send_tag(tag);
  if (dest == PROC_NULL) return;
  if (!buffer.in_read_mode()) throw ArgumentError("Send_buffer: buffer must be committed");
  engine().send(buffer, world_dest(dest), tag, ptp_context_);
}

Request Comm::Isend_buffer(buf::Buffer& buffer, int dest, int tag) const {
  validate_send_tag(tag);
  if (dest == PROC_NULL) return Request();
  if (!buffer.in_read_mode()) throw ArgumentError("Isend_buffer: buffer must be committed");
  return Request::make_bare(this, engine().isend(buffer, world_dest(dest), tag, ptp_context_));
}

Status Comm::Recv_buffer(buf::Buffer& buffer, int source, int tag) const {
  validate_recv_tag(tag);
  if (source == PROC_NULL) return proc_null_status();
  const mpdev::Status dev = engine().recv(buffer, world_source(source), tag, ptp_context_);
  if (dev.truncated) {
    handle_error(ErrCode::Truncate, "Recv_buffer: message larger than the supplied buffer");
  } else if (dev.error != ErrCode::Success) {
    handle_error(dev.error, std::string("Recv_buffer failed: ") + err_code_name(dev.error));
  }
  return to_local_status(dev);
}

Request Comm::Irecv_buffer(buf::Buffer& buffer, int source, int tag) const {
  validate_recv_tag(tag);
  if (source == PROC_NULL) return Request();
  return Request::make_bare(this, engine().irecv(buffer, world_source(source), tag, ptp_context_));
}

Status Comm::Sendrecv_replace(void* buf, int offset, int count, const DatatypePtr& type, int dest,
                              int sendtag, int source, int recvtag) const {
  // The packing Isend copies the outgoing data out of `buf` synchronously,
  // which is what makes receiving into the same region immediately after
  // safe. The zero-copy fast path would instead borrow `buf` until the send
  // completes, so force the packing path regardless of the type's shape.
  Request send;
  if (dest != PROC_NULL) {
    validate(buf, count, type, "Sendrecv_replace");
    validate_send_tag(sendtag);
    auto buffer = pack_message(buf, offset, count, type);
    mpdev::Request dev = engine().isend(*buffer, world_dest(dest), sendtag, ptp_context_);
    send = Request::make_send(this, std::move(dev), std::move(buffer));
  }
  Status status = Recv(buf, offset, count, type, source, recvtag);
  if (!send.is_null()) send.Wait();
  return status;
}

}  // namespace mpcx
