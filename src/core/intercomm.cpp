#include "core/intercomm.hpp"

#include <algorithm>

#include "core/intracomm.hpp"
#include "core/world.hpp"
#include "support/error.hpp"

namespace mpcx {

Intercomm::Intercomm(World* world, Group local_group, Group remote_group, int ptp_context,
                     int coll_context)
    : Comm(world, std::move(local_group), ptp_context, coll_context),
      remote_group_(std::move(remote_group)) {}

int Intercomm::world_dest(int local_rank) const { return remote_group_.world_rank(local_rank); }

int Intercomm::world_source(int local_rank) const {
  if (local_rank == ANY_SOURCE) return mpdev::kAnySource;
  return remote_group_.world_rank(local_rank);
}

Status Intercomm::to_local_status(const mpdev::Status& dev) const {
  const int source = dev.source >= 0 ? remote_group_.Rank_of_world(dev.source) : dev.source;
  return Status(source, dev.tag, dev.static_bytes, dev.dynamic_bytes, dev.truncated,
                dev.cancelled);
}

std::unique_ptr<Intracomm> Intercomm::Merge(bool high) const {
  // A throw-away intracomm over the local side drives the intra-side
  // agreement steps (real MPI implementations keep one internally too).
  Intracomm local_side(world_, group_, ptp_context_, coll_context_);

  int proposal = world_->context_proposal();
  int local_max = 0;
  local_side.Allreduce(&proposal, 0, &local_max, 0, 1, types::INT(), ops::MAX());

  // Local leaders (local rank 0 on each side) exchange (context, high flag).
  const int merge_tag = static_cast<int>(CollTag::Merge);
  int payload[2] = {local_max, high ? 1 : 0};
  int remote_payload[2] = {0, 0};
  if (Rank() == 0) {
    // Order by world rank to avoid a blocking cycle.
    const int my_world = group_.world_rank(0);
    const int their_world = remote_group_.world_rank(0);
    // Internal exchange uses the intercomm's collective context.
    if (my_world < their_world) {
      ctx_send(coll_context_, merge_tag, payload, 0, 2, types::INT(), 0);
      ctx_recv(coll_context_, merge_tag, remote_payload, 0, 2, types::INT(), 0);
    } else {
      ctx_recv(coll_context_, merge_tag, remote_payload, 0, 2, types::INT(), 0);
      ctx_send(coll_context_, merge_tag, payload, 0, 2, types::INT(), 0);
    }
  }
  local_side.Bcast(remote_payload, 0, 2, types::INT(), 0);

  const int agreed = std::max(local_max, remote_payload[0]);
  world_->raise_context_floor(agreed + 2);

  const bool remote_high = remote_payload[1] != 0;
  bool local_first;
  if (high != remote_high) {
    local_first = !high;  // the low side comes first
  } else {
    // MPI leaves the order undefined when both sides agree; we break the
    // tie deterministically by leader world rank.
    local_first = group_.world_rank(0) < remote_group_.world_rank(0);
  }

  std::vector<int> merged = local_first ? group_.world_ranks() : remote_group_.world_ranks();
  const std::vector<int>& second =
      local_first ? remote_group_.world_ranks() : group_.world_ranks();
  merged.insert(merged.end(), second.begin(), second.end());

  return std::make_unique<Intracomm>(world_, Group(std::move(merged)), agreed, agreed + 1);
}

}  // namespace mpcx
