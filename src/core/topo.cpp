#include "core/topo.hpp"

#include <algorithm>
#include <climits>
#include <unordered_map>

#include "support/logging.hpp"

namespace mpcx::topo {

TopoSpec parse_spec(const std::string& spec) {
  TopoSpec out;
  if (spec.empty()) return out;
  std::size_t pos = 0;
  while (pos <= spec.size()) {
    const std::size_t comma = spec.find(',', pos);
    const std::string token =
        spec.substr(pos, comma == std::string::npos ? std::string::npos : comma - pos);
    pos = comma == std::string::npos ? spec.size() + 1 : comma + 1;
    if (token.empty()) continue;
    const std::size_t colon = token.find(':');
    if (colon == std::string::npos || colon == 0 || colon + 1 >= token.size()) {
      log::warn("MPCX_TOPO: malformed level '", token, "' in '", spec,
                "' (want name:fanout) — ignoring the whole spec");
      return TopoSpec{};
    }
    int fanout = 0;
    for (std::size_t i = colon + 1; i < token.size(); ++i) {
      const char c = token[i];
      if (c < '0' || c > '9' || fanout > 100000) {
        fanout = -1;
        break;
      }
      fanout = fanout * 10 + (c - '0');
    }
    if (fanout < 1) {
      log::warn("MPCX_TOPO: bad fanout in '", token, "' — ignoring the whole spec");
      return TopoSpec{};
    }
    out.levels.push_back(LevelSpec{token.substr(0, colon), fanout});
  }
  return out;
}

namespace {

int index_of(const std::vector<int>& v, int value) {
  const auto it = std::find(v.begin(), v.end(), value);
  return it == v.end() ? -1 : static_cast<int>(it - v.begin());
}

}  // namespace

View build_view(int size, int my_rank, int root,
                const std::vector<int>& engine_node_of, const TopoSpec& spec) {
  View view;
  if (size <= 1) return view;

  // ---- grouping levels: [level][rank] -> dense group id ----------------
  // Group ids are assigned in first-seen rank order, so id order == order
  // of each group's first (lowest) member — the canonical fold order.
  std::vector<std::vector<int>> group_of;
  bool have_node_level = false;
  if (engine_node_of.size() == static_cast<std::size_t>(size)) {
    std::vector<int> dense(size);
    std::unordered_map<int, int> ids;
    for (int r = 0; r < size; ++r) {
      const auto [it, inserted] =
          ids.emplace(engine_node_of[r], static_cast<int>(ids.size()));
      dense[r] = it->second;
      (void)inserted;
    }
    if (ids.size() > 1) {
      group_of.push_back(std::move(dense));
      have_node_level = true;
    }
  }
  for (const auto& level : spec.levels) {
    if (static_cast<int>(group_of.size()) >= kMaxTopoLevels) break;
    if (level.fanout <= 1) continue;
    const std::vector<int>* parent = group_of.empty() ? nullptr : &group_of.back();
    const int parent_groups =
        parent ? 1 + *std::max_element(parent->begin(), parent->end()) : 1;
    std::vector<int> parent_size(parent_groups, 0);
    std::vector<int> pos(size);  // my index within my parent group's member list
    for (int r = 0; r < size; ++r) {
      const int p = parent ? (*parent)[r] : 0;
      pos[r] = parent_size[p]++;
    }
    std::vector<int> next(size);
    std::unordered_map<long long, int> key_to_id;
    for (int r = 0; r < size; ++r) {
      const int p = parent ? (*parent)[r] : 0;
      const int block_size = (parent_size[p] + level.fanout - 1) / level.fanout;
      const int block = pos[r] / block_size;
      const long long key =
          static_cast<long long>(p) * (level.fanout + 1) + block;
      const auto [it, inserted] =
          key_to_id.emplace(key, static_cast<int>(key_to_id.size()));
      next[r] = it->second;
      (void)inserted;
    }
    const int groups = static_cast<int>(key_to_id.size());
    if (groups == parent_groups) continue;  // fanout split nothing
    if (groups == size) break;  // all singletons — the level above already is the leaf
    group_of.push_back(std::move(next));
  }

  const int depth = static_cast<int>(group_of.size());
  view.depth = depth;
  if (depth == 0) return view;

  // ---- leaders (lowest member, re-rooted along the root's path) --------
  std::vector<std::vector<int>> leaders(depth);
  for (int k = 0; k < depth; ++k) {
    const int groups = 1 + *std::max_element(group_of[k].begin(), group_of[k].end());
    leaders[k].assign(groups, INT_MAX);
    for (int r = 0; r < size; ++r) {
      if (leaders[k][group_of[k][r]] == INT_MAX) leaders[k][group_of[k][r]] = r;
    }
    if (root >= 0) leaders[k][group_of[k][root]] = root;
  }

  // ---- contiguity ------------------------------------------------------
  for (int k = 0; k < depth && view.contiguous; ++k) {
    const int groups = static_cast<int>(leaders[k].size());
    std::vector<int> lo(groups, INT_MAX), hi(groups, -1), count(groups, 0);
    for (int r = 0; r < size; ++r) {
      const int g = group_of[k][r];
      lo[g] = std::min(lo[g], r);
      hi[g] = std::max(hi[g], r);
      ++count[g];
    }
    for (int g = 0; g < groups; ++g) {
      if (hi[g] - lo[g] + 1 != count[g]) {
        view.contiguous = false;
        break;
      }
    }
  }

  // ---- exchanges -------------------------------------------------------
  view.exchanges.resize(depth + 1);
  for (int k = 0; k < depth; ++k) {
    Exchange& ex = view.exchanges[k];
    const int my_parent = k == 0 ? 0 : group_of[k - 1][my_rank];
    const int groups = static_cast<int>(leaders[k].size());
    for (int g = 0; g < groups; ++g) {
      const int leader = leaders[k][g];
      const int parent_of_g = k == 0 ? 0 : group_of[k - 1][leader];
      if (parent_of_g == my_parent) ex.peers.push_back(leader);
    }
    ex.my_vidx = index_of(ex.peers, my_rank);
    const int exchange_root =
        k == 0 ? (root >= 0 ? root : ex.peers.front()) : leaders[k - 1][my_parent];
    ex.root_vidx = index_of(ex.peers, exchange_root);
  }
  {
    Exchange& leaf = view.exchanges[depth];
    const int my_group = group_of[depth - 1][my_rank];
    for (int r = 0; r < size; ++r) {
      if (group_of[depth - 1][r] == my_group) leaf.peers.push_back(r);
    }
    leaf.my_vidx = index_of(leaf.peers, my_rank);
    leaf.root_vidx = index_of(leaf.peers, leaders[depth - 1][my_group]);
  }

  // ---- single-copy sharing domain (the engine-node group) --------------
  if (have_node_level) {
    const int my_node = group_of[0][my_rank];
    for (int r = 0; r < size; ++r) {
      if (group_of[0][r] == my_node) view.node_members.push_back(r);
    }
    view.node_leader = leaders[0][my_node];
    view.node_exchange_begin = 1;
  } else {
    view.node_members.resize(size);
    for (int r = 0; r < size; ++r) view.node_members[r] = r;
    view.node_leader = root >= 0 ? root : 0;
    view.node_exchange_begin = 0;
  }
  view.node_member_idx = index_of(view.node_members, my_rank);
  return view;
}

}  // namespace mpcx::topo
