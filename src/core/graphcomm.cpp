#include "core/graphcomm.hpp"

#include "support/error.hpp"

namespace mpcx {

Graphcomm::Graphcomm(World* world, Group group, int ptp_context, int coll_context,
                     std::vector<int> index, std::vector<int> edges)
    : Intracomm(world, std::move(group), ptp_context, coll_context),
      index_(std::move(index)),
      edges_(std::move(edges)) {
  int prev = 0;
  for (const int cumulative : index_) {
    if (cumulative < prev) throw ArgumentError("Graphcomm: index array must be non-decreasing");
    prev = cumulative;
  }
  if (!index_.empty() && static_cast<std::size_t>(index_.back()) != edges_.size()) {
    throw ArgumentError("Graphcomm: index/edges arrays are inconsistent");
  }
  for (const int edge : edges_) {
    if (edge < 0 || edge >= Nnodes()) throw ArgumentError("Graphcomm: edge target out of range");
  }
}

int Graphcomm::Neighbours_count(int rank) const {
  if (rank < 0 || rank >= Nnodes()) throw ArgumentError("Graphcomm: rank out of range");
  const int begin = rank == 0 ? 0 : index_[static_cast<std::size_t>(rank) - 1];
  return index_[static_cast<std::size_t>(rank)] - begin;
}

std::vector<int> Graphcomm::Neighbours(int rank) const {
  if (rank < 0 || rank >= Nnodes()) throw ArgumentError("Graphcomm: rank out of range");
  const int begin = rank == 0 ? 0 : index_[static_cast<std::size_t>(rank) - 1];
  const int end = index_[static_cast<std::size_t>(rank)];
  return std::vector<int>(edges_.begin() + begin, edges_.begin() + end);
}

}  // namespace mpcx
