// CollState — the collective schedule engine behind the nonblocking
// collectives (Ibarrier / Ibcast / Ireduce / Iallreduce / Igather /
// Iallgather).
//
// Each nonblocking collective call COMPILES its algorithm (the same binomial
// tree / recursive doubling / dissemination / n-level hierarchical shapes
// the blocking collectives use) into a DAG of rounds at call time. A round
// is a set of independent wire operations ({isend, irecv} steps, posted
// together) followed by local {reduce-op, copy} steps that run once every
// wire op of the round has completed. Rounds execute in order; the data
// dependencies BETWEEN rounds (receive here, forward there) are exactly the
// edges of the algorithm's communication DAG.
//
// Progression-from-any-thread invariant: a CollState is advanced by
// progress()/try_progress(), which any thread may call — Request::Wait/Test
// on the collective's own request, Waitany over unrelated requests, and the
// World-level sweep invoked from the mpdev Waitany path all drive it. All
// mutation happens under one per-state mutex; wire steps are raw mpdev
// operations (never core Requests), so progression can never re-enter the
// request layer.
//
// Lifetime: the World registry holds the state until it is drained (all
// posted device ops complete), so scratch memory referenced by in-flight
// device operations outlives them even if the user drops the Request early.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <optional>
#include <vector>

#include "bufx/buffer.hpp"
#include "core/op.hpp"
#include "core/status.hpp"
#include "mpdev/engine.hpp"

namespace mpcx {

class Comm;

class CollState {
 public:
  struct Round;

  /// `op` is the reduction (empty for data-movement collectives); `name` is
  /// a static string used in error messages ("Iallreduce", ...).
  CollState(const Comm* comm, const char* name, std::optional<Op> op);

  CollState(const CollState&) = delete;
  CollState& operator=(const CollState&) = delete;

  // ---- schedule construction (call time, single-threaded) --------------------

  /// Append a new (empty) round. References stay valid: rounds live in a
  /// deque and the schedule is never reordered.
  Round& add_round();

  /// Allocate `bytes` of state-owned scratch (stable address for the life
  /// of the schedule).
  std::byte* scratch(std::size_t bytes);

  /// Wire steps. `peer` is a communicator-local rank; `tag` one of the
  /// schedule's kNbCollTagBase-derived tags. The payload memory must stay
  /// valid until the state is drained (user buffers per MPI's nonblocking
  /// contract; scratch by construction).
  void add_send(Round& round, int peer, int tag, const std::byte* src, std::size_t bytes);
  void add_recv(Round& round, int peer, int tag, std::byte* dst, std::size_t bytes);

  /// Local steps, run in insertion order once the round's wire steps have
  /// all completed (ordering carries non-commutative reductions).
  void add_copy(Round& round, const std::byte* src, std::byte* dst, std::size_t bytes);
  void add_reduce(Round& round, const std::byte* src, std::byte* dst, std::size_t elements,
                  buf::TypeCode code);

  /// Finish construction. A schedule with no rounds completes immediately.
  void seal();

  // ---- progression (any thread) ----------------------------------------------

  /// Advance as far as possible; returns true once the whole schedule has
  /// completed (successfully or with an error).
  bool progress();

  /// Like progress() but backs off instead of blocking when another thread
  /// holds the state lock (used by the global sweep).
  bool try_progress();

  bool complete() const;

  /// First failure observed (Success while none).
  ErrCode error() const;

  /// Status to cache on the owning Request (carries error()).
  Status final_status() const;

  /// One posted-but-incomplete device operation of the current round, if
  /// any — a handle a waiter can block on instead of spinning.
  mpdev::Request pending_op();

  /// All posted-but-incomplete device operations of the current round
  /// (Waitany feeds these to the engine next to plain p2p requests).
  std::vector<mpdev::Request> pending_ops();

  /// True when complete AND no posted device op is still outstanding —
  /// the registry may drop the state (scratch is no longer referenced).
  bool drained();

  const char* name() const { return name_; }

  /// Process-unique schedule id, stamped (with the round number) onto the
  /// flight records of every wire op this schedule posts, so a merged trace
  /// can attribute p2p flows to their collective (prof::SchedScope).
  std::uint32_t sched_id() const { return sched_id_; }

  struct SendStep {
    int peer = 0;
    int tag = 0;
    const std::byte* src = nullptr;
    std::size_t bytes = 0;
    mpdev::Request posted;
    bool done = false;
  };

  struct RecvStep {
    int peer = 0;
    int tag = 0;
    std::byte* dst = nullptr;
    std::size_t bytes = 0;
    // Section-header landing area for the zero-copy receive; must live as
    // long as the device operation, hence inside the step.
    std::array<std::byte, buf::Buffer::kSectionHeaderBytes> hdr{};
    mpdev::Request posted;
    bool done = false;
  };

  struct LocalStep {
    enum class Kind { Copy, Reduce };
    Kind kind = Kind::Copy;
    const std::byte* src = nullptr;
    std::byte* dst = nullptr;
    std::size_t bytes = 0;     ///< Copy
    std::size_t elements = 0;  ///< Reduce
    buf::TypeCode code = buf::TypeCode::Byte;
  };

  struct Round {
    std::vector<SendStep> sends;
    std::vector<RecvStep> recvs;
    std::vector<LocalStep> locals;
    bool posted = false;
  };

 private:
  bool advance_locked();
  void post_round_locked(Round& round);
  void fail_locked(ErrCode code);

  const Comm* comm_;
  const char* name_;
  std::optional<Op> op_;
  const std::uint32_t sched_id_;

  mutable std::mutex mu_;
  std::deque<Round> rounds_;
  std::size_t current_ = 0;
  bool complete_ = false;
  ErrCode error_ = ErrCode::Success;

  // Stable-address scratch arena (each allocation its own block).
  std::deque<std::vector<std::byte>> arena_;
};

}  // namespace mpcx
