#include "core/datatype.hpp"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>

#include "support/error.hpp"

namespace mpcx {
namespace {

using buf::TypeCode;

/// Invoke f with the C++ type corresponding to a runtime type code.
template <typename F>
decltype(auto) dispatch(TypeCode code, F&& f) {
  switch (code) {
    case TypeCode::Byte: return f(static_cast<std::int8_t*>(nullptr));
    case TypeCode::Char: return f(static_cast<char*>(nullptr));
    case TypeCode::Short: return f(static_cast<std::int16_t*>(nullptr));
    case TypeCode::Int: return f(static_cast<std::int32_t*>(nullptr));
    case TypeCode::Long: return f(static_cast<std::int64_t*>(nullptr));
    case TypeCode::Float: return f(static_cast<float*>(nullptr));
    case TypeCode::Double: return f(static_cast<double*>(nullptr));
    case TypeCode::Boolean: return f(static_cast<bool*>(nullptr));
    case TypeCode::Object: break;
  }
  throw ArgumentError("datatype: bad type code");
}

constexpr std::size_t kSectionHeader = buf::Buffer::kSectionHeaderBytes;

// ---- primitive ------------------------------------------------------------------

class PrimitiveDatatype final : public Datatype {
 public:
  explicit PrimitiveDatatype(TypeCode code) : code_(code) {}

  TypeCode base() const override { return code_; }
  std::size_t extent_bytes() const override { return buf::type_code_size(code_); }
  std::size_t size_elements() const override { return 1; }
  std::size_t size_bytes() const override { return buf::type_code_size(code_); }

  std::size_t packed_bound(std::size_t count) const override {
    return kSectionHeader + count * buf::type_code_size(code_);
  }

  bool is_contiguous() const override { return true; }

  void pack(const std::byte* base, std::size_t count, buf::Buffer& buffer) const override {
    dispatch(code_, [&]<typename T>(T*) {
      buffer.write(std::span<const T>(reinterpret_cast<const T*>(base), count));
    });
  }

  void unpack(buf::Buffer& buffer, std::byte* base, std::size_t count) const override {
    dispatch(code_, [&]<typename T>(T*) {
      buffer.read(std::span<T>(reinterpret_cast<T*>(base), count));
    });
  }

  std::size_t unpack_available(buf::Buffer& buffer, std::byte* base,
                               std::size_t max_items) const override {
    const auto info = buffer.peek_section();
    if (!info) return 0;
    if (info->count > max_items) {
      throw BufferError("unpack: message holds more items than the posted receive");
    }
    unpack(buffer, base, info->count);
    return info->count;
  }

 private:
  TypeCode code_;
};

// ---- homogeneous derived (contiguous / vector / indexed) --------------------------

/// One primitive leaf type; per-item layout described by element offsets.
class HomogeneousDatatype final : public Datatype {
 public:
  HomogeneousDatatype(TypeCode code, std::vector<std::ptrdiff_t> offsets,
                      std::size_t extent_elements)
      : code_(code), offsets_(std::move(offsets)), extent_elements_(extent_elements) {
    contiguous_ = true;
    for (std::size_t i = 0; i < offsets_.size(); ++i) {
      if (offsets_[i] != static_cast<std::ptrdiff_t>(i)) {
        contiguous_ = false;
        break;
      }
    }
  }

  TypeCode base() const override { return code_; }
  std::size_t extent_bytes() const override {
    return extent_elements_ * buf::type_code_size(code_);
  }
  std::size_t size_elements() const override { return offsets_.size(); }
  std::size_t size_bytes() const override {
    return offsets_.size() * buf::type_code_size(code_);
  }

  std::size_t packed_bound(std::size_t count) const override {
    return kSectionHeader + count * size_bytes();
  }

  bool is_contiguous() const override {
    return contiguous_ && extent_elements_ == offsets_.size();
  }

  const std::vector<std::ptrdiff_t>& offsets() const { return offsets_; }
  std::size_t extent_elements() const { return extent_elements_; }

  void pack(const std::byte* base, std::size_t count, buf::Buffer& buffer) const override {
    dispatch(code_, [&]<typename T>(T*) {
      const T* elems = reinterpret_cast<const T*>(base);
      if (contiguous_ && extent_elements_ == offsets_.size()) {
        buffer.write(std::span<const T>(elems, count * offsets_.size()));
        return;
      }
      std::vector<std::ptrdiff_t> gathered;
      gathered.reserve(count * offsets_.size());
      for (std::size_t item = 0; item < count; ++item) {
        const std::ptrdiff_t shift =
            static_cast<std::ptrdiff_t>(item) * static_cast<std::ptrdiff_t>(extent_elements_);
        for (const std::ptrdiff_t off : offsets_) gathered.push_back(shift + off);
      }
      buffer.write_gather(elems, std::span<const std::ptrdiff_t>(gathered));
    });
  }

  void unpack(buf::Buffer& buffer, std::byte* base, std::size_t count) const override {
    dispatch(code_, [&]<typename T>(T*) {
      T* elems = reinterpret_cast<T*>(base);
      if (contiguous_ && extent_elements_ == offsets_.size()) {
        buffer.read(std::span<T>(elems, count * offsets_.size()));
        return;
      }
      std::vector<std::ptrdiff_t> scattered;
      scattered.reserve(count * offsets_.size());
      for (std::size_t item = 0; item < count; ++item) {
        const std::ptrdiff_t shift =
            static_cast<std::ptrdiff_t>(item) * static_cast<std::ptrdiff_t>(extent_elements_);
        for (const std::ptrdiff_t off : offsets_) scattered.push_back(shift + off);
      }
      buffer.read_scatter(elems, std::span<const std::ptrdiff_t>(scattered));
    });
  }

  std::size_t unpack_available(buf::Buffer& buffer, std::byte* base,
                               std::size_t max_items) const override {
    const auto info = buffer.peek_section();
    if (!info) return 0;
    const std::size_t per_item = offsets_.size();
    if (per_item == 0) return 0;
    if (info->count % per_item != 0) {
      throw BufferError("unpack: message is not a whole number of datatype items");
    }
    const std::size_t items = info->count / per_item;
    if (items > max_items) {
      throw BufferError("unpack: message holds more items than the posted receive");
    }
    unpack(buffer, base, items);
    return items;
  }

 private:
  TypeCode code_;
  std::vector<std::ptrdiff_t> offsets_;  ///< element offsets of one item
  std::size_t extent_elements_;
  bool contiguous_;
};

// ---- heterogeneous struct (also the fallback for derived-of-struct) ----------------

class StructDatatype final : public Datatype {
 public:
  struct Block {
    std::size_t blocklength;
    std::ptrdiff_t byte_displacement;
    DatatypePtr type;
  };

  StructDatatype(std::vector<Block> blocks, std::size_t extent)
      : blocks_(std::move(blocks)), extent_(extent) {
    for (const Block& block : blocks_) {
      size_elements_ += block.blocklength * block.type->size_elements();
      size_bytes_ += block.blocklength * block.type->size_bytes();
    }
  }

  TypeCode base() const override { return TypeCode::Byte; }
  std::size_t extent_bytes() const override { return extent_; }
  std::size_t size_elements() const override { return size_elements_; }
  std::size_t size_bytes() const override { return size_bytes_; }

  std::size_t packed_bound(std::size_t count) const override {
    std::size_t per_item = 0;
    for (const Block& block : blocks_) per_item += block.type->packed_bound(block.blocklength);
    return count * per_item;
  }

  void pack(const std::byte* base, std::size_t count, buf::Buffer& buffer) const override {
    for (std::size_t item = 0; item < count; ++item) {
      const std::byte* item_base = base + item * extent_;
      for (const Block& block : blocks_) {
        block.type->pack(item_base + block.byte_displacement, block.blocklength, buffer);
      }
    }
  }

  void unpack(buf::Buffer& buffer, std::byte* base, std::size_t count) const override {
    for (std::size_t item = 0; item < count; ++item) {
      std::byte* item_base = base + item * extent_;
      for (const Block& block : blocks_) {
        block.type->unpack(buffer, item_base + block.byte_displacement, block.blocklength);
      }
    }
  }

  std::size_t unpack_available(buf::Buffer& buffer, std::byte* base,
                               std::size_t max_items) const override {
    std::size_t items = 0;
    while (buffer.peek_section()) {
      if (items == max_items) {
        throw BufferError("unpack: message holds more items than the posted receive");
      }
      unpack(buffer, base + items * extent_, 1);
      ++items;
    }
    return items;
  }

 private:
  std::vector<Block> blocks_;
  std::size_t extent_;
  std::size_t size_elements_ = 0;
  std::size_t size_bytes_ = 0;
};

/// Per-item element offsets of a type, if it has a single primitive leaf
/// laid out on an element grid (primitive or homogeneous); nullptr for
/// struct types.
struct HomogeneousView {
  TypeCode code;
  std::vector<std::ptrdiff_t> offsets;
  std::size_t extent_elements;
};

std::optional<HomogeneousView> homogeneous_view(const DatatypePtr& type) {
  if (auto* prim = dynamic_cast<const PrimitiveDatatype*>(type.get())) {
    return HomogeneousView{prim->base(), {0}, 1};
  }
  if (auto* homo = dynamic_cast<const HomogeneousDatatype*>(type.get())) {
    return HomogeneousView{homo->base(), homo->offsets(), homo->extent_elements()};
  }
  return std::nullopt;
}

/// Build a homogeneous derived type from (blocklength, item-displacement)
/// block descriptors expressed in items of `old`.
DatatypePtr compose_homogeneous(const HomogeneousView& old,
                                std::span<const std::pair<std::size_t, std::ptrdiff_t>> blocks,
                                std::size_t extent_items) {
  std::vector<std::ptrdiff_t> offsets;
  for (const auto& [blocklength, displacement] : blocks) {
    for (std::size_t b = 0; b < blocklength; ++b) {
      const std::ptrdiff_t item_base =
          (displacement + static_cast<std::ptrdiff_t>(b)) *
          static_cast<std::ptrdiff_t>(old.extent_elements);
      for (const std::ptrdiff_t off : old.offsets) offsets.push_back(item_base + off);
    }
  }
  return std::make_shared<HomogeneousDatatype>(old.code, std::move(offsets),
                                               extent_items * old.extent_elements);
}

/// Fallback for derived-over-struct: express the blocks as a StructDatatype.
DatatypePtr compose_struct(const DatatypePtr& old,
                           std::span<const std::pair<std::size_t, std::ptrdiff_t>> blocks,
                           std::size_t extent_items) {
  std::vector<StructDatatype::Block> out;
  out.reserve(blocks.size());
  for (const auto& [blocklength, displacement] : blocks) {
    out.push_back(StructDatatype::Block{
        blocklength, displacement * static_cast<std::ptrdiff_t>(old->extent_bytes()), old});
  }
  return std::make_shared<StructDatatype>(std::move(out), extent_items * old->extent_bytes());
}

DatatypePtr compose(const DatatypePtr& old,
                    std::span<const std::pair<std::size_t, std::ptrdiff_t>> blocks,
                    std::size_t extent_items) {
  if (auto view = homogeneous_view(old)) return compose_homogeneous(*view, blocks, extent_items);
  return compose_struct(old, blocks, extent_items);
}

}  // namespace

// ---- factories --------------------------------------------------------------------

DatatypePtr Datatype::contiguous(std::size_t count, const DatatypePtr& old) {
  const std::pair<std::size_t, std::ptrdiff_t> blocks[] = {{count, 0}};
  return compose(old, blocks, count);
}

DatatypePtr Datatype::vector(std::size_t count, std::size_t blocklength, std::ptrdiff_t stride,
                             const DatatypePtr& old) {
  std::vector<std::pair<std::size_t, std::ptrdiff_t>> blocks;
  blocks.reserve(count);
  std::ptrdiff_t max_end = 0;
  for (std::size_t b = 0; b < count; ++b) {
    const std::ptrdiff_t displacement = static_cast<std::ptrdiff_t>(b) * stride;
    blocks.emplace_back(blocklength, displacement);
    max_end = std::max(max_end, displacement + static_cast<std::ptrdiff_t>(blocklength));
  }
  // MPI extent of a vector: from element 0 to the end of the last block.
  return compose(old, blocks, static_cast<std::size_t>(max_end));
}

DatatypePtr Datatype::indexed(std::span<const int> blocklengths,
                              std::span<const int> displacements, const DatatypePtr& old) {
  if (blocklengths.size() != displacements.size()) {
    throw ArgumentError("Datatype::indexed: blocklengths/displacements size mismatch");
  }
  std::vector<std::pair<std::size_t, std::ptrdiff_t>> blocks;
  blocks.reserve(blocklengths.size());
  std::ptrdiff_t max_end = 0;
  for (std::size_t b = 0; b < blocklengths.size(); ++b) {
    if (blocklengths[b] < 0) throw ArgumentError("Datatype::indexed: negative block length");
    blocks.emplace_back(static_cast<std::size_t>(blocklengths[b]), displacements[b]);
    max_end = std::max(max_end, static_cast<std::ptrdiff_t>(displacements[b]) + blocklengths[b]);
  }
  return compose(old, blocks, static_cast<std::size_t>(max_end));
}

DatatypePtr Datatype::structured(std::span<const int> blocklengths,
                                 std::span<const std::ptrdiff_t> displacements,
                                 std::span<const DatatypePtr> types, std::size_t extent) {
  if (blocklengths.size() != displacements.size() || blocklengths.size() != types.size()) {
    throw ArgumentError("Datatype::structured: array size mismatch");
  }
  std::vector<StructDatatype::Block> blocks;
  blocks.reserve(blocklengths.size());
  for (std::size_t b = 0; b < blocklengths.size(); ++b) {
    if (blocklengths[b] < 0) throw ArgumentError("Datatype::structured: negative block length");
    blocks.push_back(StructDatatype::Block{static_cast<std::size_t>(blocklengths[b]),
                                           displacements[b], types[b]});
  }
  return std::make_shared<StructDatatype>(std::move(blocks), extent);
}

// ---- predefined instances ------------------------------------------------------------

namespace types {
namespace {
DatatypePtr make(TypeCode code) { return std::make_shared<PrimitiveDatatype>(code); }
}  // namespace

const DatatypePtr& BYTE() {
  static const DatatypePtr instance = make(TypeCode::Byte);
  return instance;
}
const DatatypePtr& CHAR() {
  static const DatatypePtr instance = make(TypeCode::Char);
  return instance;
}
const DatatypePtr& SHORT() {
  static const DatatypePtr instance = make(TypeCode::Short);
  return instance;
}
const DatatypePtr& INT() {
  static const DatatypePtr instance = make(TypeCode::Int);
  return instance;
}
const DatatypePtr& LONG() {
  static const DatatypePtr instance = make(TypeCode::Long);
  return instance;
}
const DatatypePtr& FLOAT() {
  static const DatatypePtr instance = make(TypeCode::Float);
  return instance;
}
const DatatypePtr& DOUBLE() {
  static const DatatypePtr instance = make(TypeCode::Double);
  return instance;
}
const DatatypePtr& BOOLEAN() {
  static const DatatypePtr instance = make(TypeCode::Boolean);
  return instance;
}

}  // namespace types
}  // namespace mpcx
