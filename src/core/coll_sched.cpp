#include "core/coll_sched.hpp"

#include <atomic>
#include <cstring>
#include <limits>
#include <string>

#include "core/comm.hpp"
#include "core/world.hpp"
#include "prof/flight.hpp"
#include "support/error.hpp"
#include "xdev/device.hpp"

namespace mpcx {

namespace {
std::uint32_t next_sched_id() {
  static std::atomic<std::uint32_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

CollState::CollState(const Comm* comm, const char* name, std::optional<Op> op)
    : comm_(comm), name_(name), op_(std::move(op)), sched_id_(next_sched_id()) {}

CollState::Round& CollState::add_round() {
  rounds_.emplace_back();
  return rounds_.back();
}

std::byte* CollState::scratch(std::size_t bytes) {
  arena_.emplace_back(bytes == 0 ? 1 : bytes);
  return arena_.back().data();
}

namespace {
void check_wire_bytes(std::size_t bytes, const char* name) {
  if (bytes == 0 || bytes > std::numeric_limits<std::uint32_t>::max()) {
    throw ArgumentError(std::string(name) + ": bad schedule payload size");
  }
}
}  // namespace

void CollState::add_send(Round& round, int peer, int tag, const std::byte* src,
                         std::size_t bytes) {
  check_wire_bytes(bytes, name_);
  round.sends.push_back(SendStep{peer, tag, src, bytes, {}, false});
}

void CollState::add_recv(Round& round, int peer, int tag, std::byte* dst, std::size_t bytes) {
  check_wire_bytes(bytes, name_);
  round.recvs.push_back(RecvStep{peer, tag, dst, bytes, {}, {}, false});
}

void CollState::add_copy(Round& round, const std::byte* src, std::byte* dst, std::size_t bytes) {
  LocalStep step;
  step.kind = LocalStep::Kind::Copy;
  step.src = src;
  step.dst = dst;
  step.bytes = bytes;
  round.locals.push_back(step);
}

void CollState::add_reduce(Round& round, const std::byte* src, std::byte* dst,
                           std::size_t elements, buf::TypeCode code) {
  LocalStep step;
  step.kind = LocalStep::Kind::Reduce;
  step.src = src;
  step.dst = dst;
  step.elements = elements;
  step.code = code;
  round.locals.push_back(step);
}

void CollState::seal() {
  std::lock_guard<std::mutex> lock(mu_);
  if (rounds_.empty()) complete_ = true;
}

void CollState::post_round_locked(Round& round) {
  // Flight records made while posting this round (the devices record
  // SendPosted/SendWire on this thread) carry {sched_id, round}.
  prof::SchedScope sched_scope(sched_id_, static_cast<std::uint32_t>(current_));
  mpdev::Engine& engine = comm_->engine();
  const int context = comm_->coll_context();
  // Receives first so arrivals hit posted matches instead of the
  // unexpected queue.
  for (RecvStep& step : round.recvs) {
    const xdev::RecvSpan span{step.hdr.data(), step.dst, step.bytes};
    step.posted = engine.irecv_direct(span, comm_->world_source(step.peer), step.tag, context);
  }
  for (SendStep& step : round.sends) {
    std::array<std::byte, buf::Buffer::kSectionHeaderBytes> hdr{};
    buf::encode_section_header(hdr, buf::TypeCode::Byte,
                               static_cast<std::uint32_t>(step.bytes));
    const xdev::SendSegment segment{step.src, step.bytes};
    step.posted = engine.isend_segments(hdr, std::span<const xdev::SendSegment>(&segment, 1),
                                        comm_->world_dest(step.peer), step.tag, context);
  }
  round.posted = true;
}

void CollState::fail_locked(ErrCode code) {
  if (error_ == ErrCode::Success) error_ = code;
  complete_ = true;
  // Cancel still-pending receives of the posted round so the device drops
  // its references to our spans (sends that never match simply keep the
  // state alive in the registry until drained).
  if (current_ < rounds_.size() && rounds_[current_].posted) {
    for (RecvStep& step : rounds_[current_].recvs) {
      if (step.done || !step.posted.valid() || step.posted.is_complete()) continue;
      comm_->engine().device().cancel(step.posted.dev());
    }
  }
}

bool CollState::advance_locked() {
  while (!complete_ && current_ < rounds_.size()) {
    Round& round = rounds_[current_];
    if (!round.posted) post_round_locked(round);
    for (RecvStep& step : round.recvs) {
      if (step.done) continue;
      auto dev = step.posted.test();
      if (!dev) return complete_;
      step.done = true;
      const ErrCode code = dev->error != ErrCode::Success
                               ? dev->error
                               : (dev->truncated ? ErrCode::Truncate : ErrCode::Success);
      if (code != ErrCode::Success) {
        comm_->release_borrowed(step.posted);
        fail_locked(code);
        return true;
      }
      if (!dev->cancelled) {
        comm_->deliver_direct_recv(step.posted, *dev, step.hdr, step.dst, step.bytes,
                                   types::BYTE());
      }
    }
    for (SendStep& step : round.sends) {
      if (step.done) continue;
      auto dev = step.posted.test();
      if (!dev) return complete_;
      step.done = true;
      if (dev->error != ErrCode::Success) {
        comm_->release_borrowed(step.posted);
        fail_locked(dev->error);
        return true;
      }
    }
    for (const LocalStep& step : round.locals) {
      if (step.kind == LocalStep::Kind::Copy) {
        std::memcpy(step.dst, step.src, step.bytes);
      } else {
        op_->apply(step.code, step.src, step.dst, step.elements);
      }
    }
    ++current_;
    comm_->world().counters().add(prof::Ctr::SchedRounds);
  }
  if (current_ >= rounds_.size()) complete_ = true;
  return complete_;
}

bool CollState::progress() {
  std::lock_guard<std::mutex> lock(mu_);
  return advance_locked();
}

bool CollState::try_progress() {
  std::unique_lock<std::mutex> lock(mu_, std::try_to_lock);
  if (!lock.owns_lock()) return false;
  return advance_locked();
}

bool CollState::complete() const {
  std::lock_guard<std::mutex> lock(mu_);
  return complete_;
}

ErrCode CollState::error() const {
  std::lock_guard<std::mutex> lock(mu_);
  return error_;
}

Status CollState::final_status() const {
  std::lock_guard<std::mutex> lock(mu_);
  return Status(PROC_NULL, ANY_TAG, 0, 0, false, false, error_);
}

mpdev::Request CollState::pending_op() {
  std::lock_guard<std::mutex> lock(mu_);
  if (complete_ || current_ >= rounds_.size()) return {};
  Round& round = rounds_[current_];
  if (!round.posted) return {};
  for (RecvStep& step : round.recvs) {
    if (!step.done && step.posted.valid() && !step.posted.is_complete()) return step.posted;
  }
  for (SendStep& step : round.sends) {
    if (!step.done && step.posted.valid() && !step.posted.is_complete()) return step.posted;
  }
  return {};
}

std::vector<mpdev::Request> CollState::pending_ops() {
  std::vector<mpdev::Request> out;
  std::lock_guard<std::mutex> lock(mu_);
  if (complete_ || current_ >= rounds_.size()) return out;
  Round& round = rounds_[current_];
  if (!round.posted) return out;
  for (RecvStep& step : round.recvs) {
    if (!step.done && step.posted.valid() && !step.posted.is_complete()) out.push_back(step.posted);
  }
  for (SendStep& step : round.sends) {
    if (!step.done && step.posted.valid() && !step.posted.is_complete()) out.push_back(step.posted);
  }
  return out;
}

bool CollState::drained() {
  std::lock_guard<std::mutex> lock(mu_);
  if (!complete_) return false;
  for (std::size_t i = 0; i <= current_ && i < rounds_.size(); ++i) {
    if (!rounds_[i].posted) continue;
    for (RecvStep& step : rounds_[i].recvs) {
      if (step.posted.valid() && !step.done && !step.posted.is_complete()) return false;
    }
    for (SendStep& step : rounds_[i].sends) {
      if (step.posted.valid() && !step.done && !step.posted.is_complete()) return false;
    }
  }
  return true;
}

}  // namespace mpcx
