// Datatypes — basic and derived (paper Sec. IV-C).
//
// MPJ Express implements the four MPI derived datatypes (contiguous,
// vector, indexed, struct) by gathering elements through the mpjbuf
// buffering API at send time and scattering on receive. We reproduce that:
// a Datatype knows how to pack `count` items from user memory into a
// bufx::Buffer and unpack them back.
//
// Internally there are three implementations:
//   * PrimitiveDatatype   — one contiguous typed section per pack call;
//   * HomogeneousDatatype — contiguous/vector/indexed (and their nestings
//     over a homogeneous child): a per-item element-offset template,
//     gathered into ONE typed section per pack call;
//   * StructDatatype      — heterogeneous fields, packed field-block by
//     field-block (one section per block per item).
//
// Offsets in the public Comm API are expressed in elements of a datatype's
// base primitive (mpiJava semantics); for struct types the base is BYTE, so
// offsets are byte offsets.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "bufx/buffer.hpp"
#include "bufx/type_codes.hpp"

namespace mpcx {

class Datatype;
using DatatypePtr = std::shared_ptr<const Datatype>;

class Datatype {
 public:
  virtual ~Datatype() = default;

  /// Leaf primitive code (BYTE for heterogeneous structs).
  virtual buf::TypeCode base() const = 0;

  /// Size in bytes of one base element.
  std::size_t base_size() const { return buf::type_code_size(base()); }

  /// Distance in bytes between consecutive items of this type in user
  /// memory (MPI extent).
  virtual std::size_t extent_bytes() const = 0;

  /// Number of primitive leaf elements actually transferred per item
  /// (MPI size, in elements).
  virtual std::size_t size_elements() const = 0;

  /// MPI size in bytes per item.
  virtual std::size_t size_bytes() const = 0;

  /// Upper bound on buffer capacity needed to pack `count` items
  /// (payload + section headers).
  virtual std::size_t packed_bound(std::size_t count) const = 0;

  /// True when `count` items occupy count*size_bytes() consecutive bytes in
  /// user memory with no gaps — i.e. packing is a plain memcpy. Such sends
  /// and receives are eligible for the zero-copy fast path: the device moves
  /// the user bytes directly (one wire section, no staging Buffer).
  virtual bool is_contiguous() const { return false; }

  /// Pack `count` items starting at `base` into the buffer.
  virtual void pack(const std::byte* base, std::size_t count, buf::Buffer& buffer) const = 0;

  /// Unpack `count` items from the buffer into user memory at `base`.
  virtual void unpack(buf::Buffer& buffer, std::byte* base, std::size_t count) const = 0;

  /// Unpack however many whole items the buffer holds (a receiver may post
  /// more items than the sender sent). Returns the item count; throws
  /// BufferError if the message holds more than `max_items` or a partial
  /// item.
  virtual std::size_t unpack_available(buf::Buffer& buffer, std::byte* base,
                                       std::size_t max_items) const = 0;

  /// mpiJava compatibility: derived datatypes are committed before use.
  /// Packing templates here are precomputed at construction, so this is a
  /// documented no-op.
  void Commit() const {}

  // ---- mpiJava-style factories -------------------------------------------------

  /// `count` consecutive items of `old`.
  static DatatypePtr contiguous(std::size_t count, const DatatypePtr& old);

  /// `count` blocks of `blocklength` items, consecutive blocks `stride`
  /// items apart (stride in items of `old`, as in MPI_Type_vector).
  static DatatypePtr vector(std::size_t count, std::size_t blocklength, std::ptrdiff_t stride,
                            const DatatypePtr& old);

  /// Blocks of varying length at varying displacements (in items of `old`).
  static DatatypePtr indexed(std::span<const int> blocklengths,
                             std::span<const int> displacements, const DatatypePtr& old);

  /// Heterogeneous struct: block i is `blocklengths[i]` items of `types[i]`
  /// at byte displacement `displacements[i]`. `extent` is the total byte
  /// extent of one struct item (usually sizeof the C++ struct).
  static DatatypePtr structured(std::span<const int> blocklengths,
                                std::span<const std::ptrdiff_t> displacements,
                                std::span<const DatatypePtr> types, std::size_t extent);
};

/// Predefined basic datatypes (MPI.BYTE, MPI.INT, ... analogs).
namespace types {
const DatatypePtr& BYTE();
const DatatypePtr& CHAR();
const DatatypePtr& SHORT();
const DatatypePtr& INT();
const DatatypePtr& LONG();
const DatatypePtr& FLOAT();
const DatatypePtr& DOUBLE();
const DatatypePtr& BOOLEAN();

/// Map a C++ arithmetic type onto its predefined datatype.
template <buf::Primitive T>
const DatatypePtr& of() {
  constexpr buf::TypeCode code = buf::type_code_of<T>();
  if constexpr (code == buf::TypeCode::Byte) return BYTE();
  else if constexpr (code == buf::TypeCode::Char) return CHAR();
  else if constexpr (code == buf::TypeCode::Short) return SHORT();
  else if constexpr (code == buf::TypeCode::Int) return INT();
  else if constexpr (code == buf::TypeCode::Long) return LONG();
  else if constexpr (code == buf::TypeCode::Float) return FLOAT();
  else if constexpr (code == buf::TypeCode::Double) return DOUBLE();
  else return BOOLEAN();
}
}  // namespace types

}  // namespace mpcx
