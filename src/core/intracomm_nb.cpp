// Nonblocking collectives: each I* entry point compiles its algorithm into a
// CollState round DAG (see coll_sched.hpp) and returns an ordinary Request.
//
// The round compilers below mirror the blocking algorithms in intracomm.cpp
// (binomial bcast/reduce, recursive-doubling allreduce, dissemination
// barrier, ring allgather, linear gather) but are generalized over an
// explicit participant list so one compiler builds both the flat schedule
// (participants = every comm rank) and each exchange of the n-level
// hierarchical schedule (participants = that exchange's peers — one group
// leader per sibling group, or the deepest group's members at the leaf;
// see core/topo.hpp).
//
// Tag discipline: every call draws one sequence number from the comm's
// nb_coll_seq_. MPI requires collectives to be issued in the same order on
// every member, so the draw agrees across ranks and the derived per-phase
// tags pair wire steps of the same logical collective even when many
// schedules are in flight on one communicator.

#include <cstring>
#include <memory>
#include <utility>
#include <vector>

#include "core/coll_sched.hpp"
#include "core/intracomm.hpp"
#include "core/world.hpp"
#include "prof/counters.hpp"
#include "support/error.hpp"

namespace mpcx {
namespace {

const std::byte* cbyte(const void* buf, int offset, const DatatypePtr& type) {
  return static_cast<const std::byte*>(buf) +
         static_cast<std::ptrdiff_t>(offset) * static_cast<std::ptrdiff_t>(type->base_size());
}

std::byte* mbyte(void* buf, int offset, const DatatypePtr& type) {
  return static_cast<std::byte*>(buf) +
         static_cast<std::ptrdiff_t>(offset) * static_cast<std::ptrdiff_t>(type->base_size());
}

/// Offset (in base elements) of item slot `index` when items are
/// `count`-sized blocks of `type` (contiguous types only here).
int slot_offset(int base_offset, int index, int count, const DatatypePtr& type) {
  const std::size_t extent_elems = type->extent_bytes() / type->base_size();
  return base_offset + index * count * static_cast<int>(extent_elems);
}

/// Per-phase tags of one schedule. Distinct phases (e.g. the reduce and the
/// bcast half of a non-power-of-two Iallreduce, or the intra- and inter-node
/// legs of a hierarchical schedule) use distinct tags so their wire steps
/// can never cross-match.
struct NbTags {
  int main;
  int fan;
  int intra;
  int inter;
  int extra;

  /// Per-exchange-level tag pair for the n-level hierarchical schedules
  /// (up = reduction/gather direction, down = broadcast/release). With
  /// kMaxTopoLevels levels plus the leaf exchange, 5 + 2*(kMaxTopoLevels+1)
  /// = 23 phases fit the kNbCollPhases = 32 stride.
  int level_up(int level) const { return main - 5 - 2 * level; }
  int level_down(int level) const { return main - 5 - 2 * level - 1; }
};

NbTags make_tags(std::uint32_t sid) {
  const int slot = static_cast<int>(sid % static_cast<std::uint32_t>(kNbCollSeqWindow));
  const int base = kNbCollTagBase - slot * kNbCollPhases;
  return NbTags{base, base - 1, base - 2, base - 3, base - 4};
}

std::vector<int> all_ranks(int n) {
  std::vector<int> ranks(static_cast<std::size_t>(n));
  for (int r = 0; r < n; ++r) ranks[static_cast<std::size_t>(r)] = r;
  return ranks;
}

void require_nb_contiguous(const DatatypePtr& type, const char* op) {
  if (type->extent_bytes() != type->size_bytes()) {
    throw ArgumentError(std::string(op) +
                        ": nonblocking collectives require memory-contiguous datatypes "
                        "(the schedule engine moves raw byte spans)");
  }
}

// ---- round compilers over a participant list ---------------------------------------
//
// `participants` maps virtual index -> comm rank; `my_vidx` is the caller's
// index; `root_vidx` the algorithm root's. Rotation by root keeps the tree
// shapes identical to the blocking code.

/// Binomial-tree broadcast of `bytes` at `base`: one recv round (non-root),
/// then one round of sends to all subtree children.
void bcast_rounds(CollState& st, const std::vector<int>& participants, int root_vidx,
                  int my_vidx, int tag, std::byte* base, std::size_t bytes) {
  const int n = static_cast<int>(participants.size());
  if (n <= 1) return;
  const int vrank = (my_vidx - root_vidx + n) % n;
  int mask = 1;
  while (mask < n && !(vrank & mask)) mask <<= 1;
  if (vrank != 0) {
    const int parent = participants[static_cast<std::size_t>(((vrank - mask) + root_vidx) % n)];
    st.add_recv(st.add_round(), parent, tag, base, bytes);
  }
  CollState::Round* fan = nullptr;
  for (int m = mask >> 1; m > 0; m >>= 1) {
    if (vrank + m >= n) continue;
    if (fan == nullptr) fan = &st.add_round();
    st.add_send(*fan, participants[static_cast<std::size_t>(((vrank + m) + root_vidx) % n)], tag,
                base, bytes);
  }
}

/// Commutative binomial-tree reduction into `acc` (which already holds the
/// caller's contribution). Root's acc ends with the full result.
void reduce_rounds(CollState& st, const std::vector<int>& participants, int root_vidx,
                   int my_vidx, int tag, std::byte* acc, std::size_t bytes, std::size_t elements,
                   buf::TypeCode code) {
  const int n = static_cast<int>(participants.size());
  if (n <= 1) return;
  const int vrank = (my_vidx - root_vidx + n) % n;
  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int parent = participants[static_cast<std::size_t>(((vrank - mask) + root_vidx) % n)];
      st.add_send(st.add_round(), parent, tag, acc, bytes);
      break;
    }
    if (vrank + mask < n) {
      const int child = participants[static_cast<std::size_t>(((vrank + mask) + root_vidx) % n)];
      CollState::Round& round = st.add_round();
      std::byte* incoming = st.scratch(bytes);
      st.add_recv(round, child, tag, incoming, bytes);
      st.add_reduce(round, incoming, acc, elements, code);
    }
    mask <<= 1;
  }
}

/// Non-commutative linear reduction, folded in participant (= canonical
/// rank) order at the root. `own` is the caller's contribution; `acc` (root
/// only) receives the result and may alias `own`.
void linear_reduce_rounds(CollState& st, const std::vector<int>& participants, int root_vidx,
                          int my_vidx, int tag, std::byte* acc, const std::byte* own,
                          std::size_t bytes, std::size_t elements, buf::TypeCode code) {
  const int n = static_cast<int>(participants.size());
  if (n <= 1) return;
  if (my_vidx != root_vidx) {
    st.add_send(st.add_round(), participants[static_cast<std::size_t>(root_vidx)], tag, own,
                bytes);
    return;
  }
  CollState::Round& round = st.add_round();
  std::vector<const std::byte*> contribution(static_cast<std::size_t>(n));
  for (int v = 0; v < n; ++v) {
    if (v == root_vidx) {
      contribution[static_cast<std::size_t>(v)] = own;
      continue;
    }
    std::byte* incoming = st.scratch(bytes);
    st.add_recv(round, participants[static_cast<std::size_t>(v)], tag, incoming, bytes);
    contribution[static_cast<std::size_t>(v)] = incoming;
  }
  // Fold in rank order; locals run in insertion order after all receives.
  if (contribution[0] != acc) st.add_copy(round, contribution[0], acc, bytes);
  for (int v = 1; v < n; ++v) {
    st.add_reduce(round, contribution[static_cast<std::size_t>(v)], acc, elements, code);
  }
}

/// Recursive-doubling allreduce (commutative, power-of-two participants):
/// per mask, exchange accumulators with the partner and fold.
void allreduce_rd_rounds(CollState& st, const std::vector<int>& participants, int my_vidx,
                         int tag, std::byte* acc, std::size_t bytes, std::size_t elements,
                         buf::TypeCode code) {
  const int n = static_cast<int>(participants.size());
  for (int mask = 1; mask < n; mask <<= 1) {
    const int partner = participants[static_cast<std::size_t>(my_vidx ^ mask)];
    CollState::Round& round = st.add_round();
    std::byte* incoming = st.scratch(bytes);
    st.add_recv(round, partner, tag, incoming, bytes);
    st.add_send(round, partner, tag, acc, bytes);
    // Runs only after the send completed, so mutating acc is safe.
    st.add_reduce(round, incoming, acc, elements, code);
  }
}

/// Dissemination barrier: round k exchanges a token with the ranks at
/// distance 2^k (forward send, backward recv).
void barrier_rounds(CollState& st, const std::vector<int>& participants, int my_vidx, int tag) {
  const int n = static_cast<int>(participants.size());
  for (int k = 1; k < n; k <<= 1) {
    CollState::Round& round = st.add_round();
    std::byte* token = st.scratch(2);
    token[0] = std::byte{1};
    st.add_send(round, participants[static_cast<std::size_t>((my_vidx + k) % n)], tag, token, 1);
    st.add_recv(round, participants[static_cast<std::size_t>((my_vidx - k + n) % n)], tag,
                token + 1, 1);
  }
}

}  // namespace

Request Intracomm::launch_nb(std::shared_ptr<CollState> state) const {
  state->seal();
  world_->counters().add(prof::Ctr::NbCollsStarted);
  Request request = Request::make_coll(this, state);
  if (!state->complete()) {
    // Register before the first kick: a round could complete inline (eager
    // sends), and the registry must already own the scratch by then.
    world_->register_nb_coll(state);
    state->progress();
  }
  return request;
}

Request Intracomm::Ibarrier() const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  const int n = Size();
  const NbTags tags = make_tags(nb_coll_seq_.fetch_add(1, std::memory_order_relaxed));
  auto st = std::make_shared<CollState>(this, "Ibarrier", std::nullopt);
  bool scheduled = false;
  if (n > 1 && hierarchy_enabled()) {
    const topo::View view = hier_topology(-1);
    if (view.depth > 0) {
      world_->counters().add(prof::Ctr::HierarchicalColls);
      // Gather up (each exchange root absorbs one token per peer), then the
      // mirrored release down — the same shape as the blocking hier_barrier.
      std::byte* token = st->scratch(2);
      token[0] = std::byte{1};
      for (int k = view.depth; k >= 0; --k) {
        const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
        const int m = static_cast<int>(ex.peers.size());
        if (ex.my_vidx < 0 || m <= 1) continue;
        if (ex.my_vidx == ex.root_vidx) {
          CollState::Round& gather = st->add_round();
          for (int v = 0; v < m; ++v) {
            if (v == ex.root_vidx) continue;
            st->add_recv(gather, ex.peers[static_cast<std::size_t>(v)], tags.level_up(k),
                         st->scratch(1), 1);
          }
        } else {
          st->add_send(st->add_round(), ex.peers[static_cast<std::size_t>(ex.root_vidx)],
                       tags.level_up(k), token, 1);
        }
      }
      for (int k = 0; k <= view.depth; ++k) {
        const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
        const int m = static_cast<int>(ex.peers.size());
        if (ex.my_vidx < 0 || m <= 1) continue;
        if (ex.my_vidx == ex.root_vidx) {
          CollState::Round& release = st->add_round();
          for (int v = 0; v < m; ++v) {
            if (v == ex.root_vidx) continue;
            st->add_send(release, ex.peers[static_cast<std::size_t>(v)], tags.level_down(k),
                         token, 1);
          }
        } else {
          st->add_recv(st->add_round(), ex.peers[static_cast<std::size_t>(ex.root_vidx)],
                       tags.level_down(k), token + 1, 1);
        }
      }
      scheduled = true;
    }
  }
  if (n > 1 && !scheduled) {
    barrier_rounds(*st, all_ranks(n), Rank(), tags.main);
  }
  return launch_nb(std::move(st));
}

Request Intracomm::Ibcast(void* buf, int offset, int count, const DatatypePtr& type,
                          int root) const {
  validate(buf, count, type, "Ibcast");
  require_nb_contiguous(type, "Ibcast");
  world_->counters().add(prof::Ctr::CollectiveCalls);
  const int n = Size();
  if (root < 0 || root >= n) {
    throw ArgumentError("Ibcast: root " + std::to_string(root) + " out of range");
  }
  const NbTags tags = make_tags(nb_coll_seq_.fetch_add(1, std::memory_order_relaxed));
  auto st = std::make_shared<CollState>(this, "Ibcast", std::nullopt);
  if (n > 1 && count > 0) {
    const std::size_t bytes = static_cast<std::size_t>(count) * type->size_bytes();
    std::byte* base = mbyte(buf, offset, type);
    bool scheduled = false;
    if (hierarchy_enabled()) {
      const topo::View view = hier_topology(root);
      if (view.depth > 0) {
        world_->counters().add(prof::Ctr::HierarchicalColls);
        // Top-down: each exchange's root holds the payload once the level
        // above has run, so chaining the per-exchange binomials in order
        // yields a correct n-level schedule.
        for (int k = 0; k <= view.depth; ++k) {
          const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
          if (ex.my_vidx < 0) continue;
          bcast_rounds(*st, ex.peers, ex.root_vidx, ex.my_vidx, tags.level_down(k), base, bytes);
        }
        scheduled = true;
      }
    }
    if (!scheduled) {
      bcast_rounds(*st, all_ranks(n), root, Rank(), tags.main, base, bytes);
    }
  }
  return launch_nb(std::move(st));
}

Request Intracomm::Ireduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                           int count, const DatatypePtr& type, const Op& op, int root) const {
  validate(sendbuf, count, type, "Ireduce");
  require_nb_contiguous(type, "Ireduce");
  world_->counters().add(prof::Ctr::CollectiveCalls);
  const int n = Size();
  const int rank = Rank();
  if (root < 0 || root >= n) {
    throw ArgumentError("Ireduce: root " + std::to_string(root) + " out of range");
  }
  const NbTags tags = make_tags(nb_coll_seq_.fetch_add(1, std::memory_order_relaxed));
  auto st = std::make_shared<CollState>(this, "Ireduce", op);
  if (count > 0) {
    const std::size_t elements = static_cast<std::size_t>(count) * type->size_elements();
    const std::size_t bytes = elements * type->base_size();
    const buf::TypeCode code = type->base();
    const std::byte* own = cbyte(sendbuf, sendoffset, type);
    bool scheduled = false;
    if (n == 1) {
      std::memcpy(mbyte(recvbuf, recvoffset, type), own, bytes);
      scheduled = true;
    } else if (hierarchy_enabled()) {
      const topo::View view = hier_topology(root);
      // Non-commutative ops ride the hierarchy only on contiguous layouts
      // (per-level ordered folds then compose to the canonical rank order).
      if (view.depth > 0 && (op.is_commutative() || view.contiguous)) {
        world_->counters().add(prof::Ctr::HierarchicalColls);
        if (op.is_commutative()) {
          // Bottom-up: fold each level into its exchange root on `acc`.
          std::byte* acc = rank == root ? mbyte(recvbuf, recvoffset, type) : st->scratch(bytes);
          std::memcpy(acc, own, bytes);
          for (int k = view.depth; k >= 0; --k) {
            const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
            if (ex.my_vidx < 0) continue;
            reduce_rounds(*st, ex.peers, ex.root_vidx, ex.my_vidx, tags.level_up(k), acc, bytes,
                          elements, code);
          }
        } else {
          // Ordered chain: each exchange root folds its peers' partials (in
          // canonical order) into fresh scratch, which becomes its own
          // contribution one level up. The comm root's final partial lands
          // in recvbuf via a local copy round.
          const std::byte* cur = own;
          for (int k = view.depth; k >= 0; --k) {
            const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
            if (ex.my_vidx < 0 || ex.peers.size() <= 1) continue;
            if (ex.my_vidx != ex.root_vidx) {
              linear_reduce_rounds(*st, ex.peers, ex.root_vidx, ex.my_vidx, tags.level_up(k),
                                   nullptr, cur, bytes, elements, code);
              continue;
            }
            std::byte* folded = st->scratch(bytes);
            linear_reduce_rounds(*st, ex.peers, ex.root_vidx, ex.my_vidx, tags.level_up(k),
                                 folded, cur, bytes, elements, code);
            cur = folded;
          }
          if (rank == root) {
            st->add_copy(st->add_round(), cur, mbyte(recvbuf, recvoffset, type), bytes);
          }
        }
        scheduled = true;
      }
    }
    if (!scheduled) {
      if (op.is_commutative()) {
        std::byte* acc = rank == root ? mbyte(recvbuf, recvoffset, type) : st->scratch(bytes);
        std::memcpy(acc, own, bytes);
        reduce_rounds(*st, all_ranks(n), root, rank, tags.main, acc, bytes, elements, code);
      } else {
        std::byte* acc = rank == root ? mbyte(recvbuf, recvoffset, type) : nullptr;
        linear_reduce_rounds(*st, all_ranks(n), root, rank, tags.main, acc, own, bytes, elements,
                             code);
      }
    }
  }
  return launch_nb(std::move(st));
}

Request Intracomm::Iallreduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                              int count, const DatatypePtr& type, const Op& op) const {
  validate(sendbuf, count, type, "Iallreduce");
  require_nb_contiguous(type, "Iallreduce");
  world_->counters().add(prof::Ctr::CollectiveCalls);
  const int n = Size();
  const int rank = Rank();
  const NbTags tags = make_tags(nb_coll_seq_.fetch_add(1, std::memory_order_relaxed));
  auto st = std::make_shared<CollState>(this, "Iallreduce", op);
  if (count > 0) {
    const std::size_t elements = static_cast<std::size_t>(count) * type->size_elements();
    const std::size_t bytes = elements * type->base_size();
    const buf::TypeCode code = type->base();
    std::byte* acc = mbyte(recvbuf, recvoffset, type);
    std::memcpy(acc, cbyte(sendbuf, sendoffset, type), bytes);
    bool scheduled = false;
    if (n > 1 && hierarchy_enabled()) {
      const topo::View view = hier_topology(-1);
      if (view.depth > 0 && (op.is_commutative() || view.contiguous)) {
        world_->counters().add(prof::Ctr::HierarchicalColls);
        if (op.is_commutative()) {
          // Up pass below the top exchange, rootless all-reduce at the top,
          // mirrored broadcast back down. The top algorithm is chosen from
          // the top exchange's own peer count, so one level never mixes
          // recursive doubling with reduce+bcast.
          for (int k = view.depth; k >= 1; --k) {
            const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
            if (ex.my_vidx < 0) continue;
            reduce_rounds(*st, ex.peers, ex.root_vidx, ex.my_vidx, tags.level_up(k), acc, bytes,
                          elements, code);
          }
          const topo::Exchange& top = view.exchanges.front();
          const int m = static_cast<int>(top.peers.size());
          if (top.my_vidx >= 0 && m > 1) {
            if ((m & (m - 1)) == 0) {
              allreduce_rd_rounds(*st, top.peers, top.my_vidx, tags.level_up(0), acc, bytes,
                                  elements, code);
            } else {
              reduce_rounds(*st, top.peers, top.root_vidx, top.my_vidx, tags.level_up(0), acc,
                            bytes, elements, code);
              bcast_rounds(*st, top.peers, top.root_vidx, top.my_vidx, tags.level_down(0), acc,
                           bytes);
            }
          }
          for (int k = 1; k <= view.depth; ++k) {
            const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
            if (ex.my_vidx < 0) continue;
            bcast_rounds(*st, ex.peers, ex.root_vidx, ex.my_vidx, tags.level_down(k), acc, bytes);
          }
        } else {
          // Ordered chain up (same as Ireduce), result at the top exchange's
          // root, then the n-level broadcast back down through acc.
          std::byte* own = st->scratch(bytes);
          std::memcpy(own, acc, bytes);
          const std::byte* cur = own;
          bool top_root = true;
          for (int k = view.depth; k >= 0; --k) {
            const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
            if (ex.my_vidx < 0 || ex.peers.size() <= 1) continue;
            if (ex.my_vidx != ex.root_vidx) {
              linear_reduce_rounds(*st, ex.peers, ex.root_vidx, ex.my_vidx, tags.level_up(k),
                                   nullptr, cur, bytes, elements, code);
              top_root = false;
              continue;
            }
            std::byte* folded = st->scratch(bytes);
            linear_reduce_rounds(*st, ex.peers, ex.root_vidx, ex.my_vidx, tags.level_up(k),
                                 folded, cur, bytes, elements, code);
            cur = folded;
          }
          if (top_root) {
            st->add_copy(st->add_round(), cur, acc, bytes);
          }
          for (int k = 0; k <= view.depth; ++k) {
            const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
            if (ex.my_vidx < 0) continue;
            bcast_rounds(*st, ex.peers, ex.root_vidx, ex.my_vidx, tags.level_down(k), acc, bytes);
          }
        }
        scheduled = true;
      }
    }
    if (n > 1 && !scheduled) {
      if (op.is_commutative() && (n & (n - 1)) == 0) {
        allreduce_rd_rounds(*st, all_ranks(n), rank, tags.main, acc, bytes, elements, code);
      } else if (op.is_commutative()) {
        reduce_rounds(*st, all_ranks(n), 0, rank, tags.main, acc, bytes, elements, code);
        bcast_rounds(*st, all_ranks(n), 0, rank, tags.fan, acc, bytes);
      } else {
        // Non-commutative: linear fold at rank 0 (canonical order), then
        // broadcast. Rank 0 folds into its recvbuf; the others contribute a
        // stable copy (acc doubles as the bcast landing area).
        std::byte* own = st->scratch(bytes);
        std::memcpy(own, acc, bytes);
        linear_reduce_rounds(*st, all_ranks(n), 0, rank, tags.main, acc, own, bytes, elements,
                             code);
        bcast_rounds(*st, all_ranks(n), 0, rank, tags.fan, acc, bytes);
      }
    }
  }
  return launch_nb(std::move(st));
}

Request Intracomm::Igather(const void* sendbuf, int sendoffset, int sendcount,
                           const DatatypePtr& sendtype, void* recvbuf, int recvoffset,
                           int recvcount, const DatatypePtr& recvtype, int root) const {
  validate(sendbuf, sendcount, sendtype, "Igather");
  require_nb_contiguous(sendtype, "Igather");
  world_->counters().add(prof::Ctr::CollectiveCalls);
  const int n = Size();
  const int rank = Rank();
  if (root < 0 || root >= n) {
    throw ArgumentError("Igather: root " + std::to_string(root) + " out of range");
  }
  const NbTags tags = make_tags(nb_coll_seq_.fetch_add(1, std::memory_order_relaxed));
  auto st = std::make_shared<CollState>(this, "Igather", std::nullopt);
  if (rank == root) {
    validate(recvbuf, recvcount, recvtype, "Igather");
    require_nb_contiguous(recvtype, "Igather");
    CollState::Round* round = nullptr;
    for (int src = 0; src < n; ++src) {
      const int slot = slot_offset(recvoffset, src, recvcount, recvtype);
      if (src == rank) {
        if (sendcount > 0) {
          std::memcpy(mbyte(recvbuf, slot, recvtype), cbyte(sendbuf, sendoffset, sendtype),
                      static_cast<std::size_t>(sendcount) * sendtype->size_bytes());
        }
        continue;
      }
      if (recvcount == 0) continue;
      if (round == nullptr) round = &st->add_round();
      st->add_recv(*round, src, tags.main, mbyte(recvbuf, slot, recvtype),
                   static_cast<std::size_t>(recvcount) * recvtype->size_bytes());
    }
  } else if (sendcount > 0) {
    st->add_send(st->add_round(), root, tags.main, cbyte(sendbuf, sendoffset, sendtype),
                 static_cast<std::size_t>(sendcount) * sendtype->size_bytes());
  }
  return launch_nb(std::move(st));
}

Request Intracomm::Iallgather(const void* sendbuf, int sendoffset, int sendcount,
                              const DatatypePtr& sendtype, void* recvbuf, int recvoffset,
                              int recvcount, const DatatypePtr& recvtype) const {
  validate(sendbuf, sendcount, sendtype, "Iallgather");
  validate(recvbuf, recvcount, recvtype, "Iallgather");
  require_nb_contiguous(sendtype, "Iallgather");
  require_nb_contiguous(recvtype, "Iallgather");
  world_->counters().add(prof::Ctr::CollectiveCalls);
  const int n = Size();
  const int rank = Rank();
  const NbTags tags = make_tags(nb_coll_seq_.fetch_add(1, std::memory_order_relaxed));
  auto st = std::make_shared<CollState>(this, "Iallgather", std::nullopt);
  // Own contribution lands at call time (same as the blocking ring).
  if (sendcount > 0) {
    std::memcpy(mbyte(recvbuf, slot_offset(recvoffset, rank, recvcount, recvtype), recvtype),
                cbyte(sendbuf, sendoffset, sendtype),
                static_cast<std::size_t>(sendcount) * sendtype->size_bytes());
  }
  if (n > 1 && recvcount > 0) {
    const std::size_t slot_bytes = static_cast<std::size_t>(recvcount) * recvtype->size_bytes();
    const int right = (rank + 1) % n;
    const int left = (rank - 1 + n) % n;
    for (int step = 1; step < n; ++step) {
      const int send_idx = (rank - step + 1 + n) % n;
      const int recv_idx = (rank - step + n) % n;
      CollState::Round& round = st->add_round();
      st->add_send(round, right, tags.main,
                   mbyte(recvbuf, slot_offset(recvoffset, send_idx, recvcount, recvtype),
                         recvtype),
                   slot_bytes);
      st->add_recv(round, left, tags.main,
                   mbyte(recvbuf, slot_offset(recvoffset, recv_idx, recvcount, recvtype),
                         recvtype),
                   slot_bytes);
    }
  }
  return launch_nb(std::move(st));
}

}  // namespace mpcx
