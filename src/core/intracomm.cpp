#include "core/intracomm.hpp"

#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <cstring>
#include <map>
#include <numeric>
#include <string_view>
#include <unordered_map>

#include "core/cartcomm.hpp"
#include "core/graphcomm.hpp"
#include "core/intercomm.hpp"
#include "core/world.hpp"
#include "prof/trace.hpp"
#include "support/error.hpp"
#include "xdev/collbuf.hpp"

namespace mpcx {
namespace {

int coll_tag(CollTag tag) { return static_cast<int>(tag); }

const std::byte* cbyte(const void* buf, int offset, const DatatypePtr& type) {
  return static_cast<const std::byte*>(buf) +
         static_cast<std::ptrdiff_t>(offset) * static_cast<std::ptrdiff_t>(type->base_size());
}

std::byte* mbyte(void* buf, int offset, const DatatypePtr& type) {
  return static_cast<std::byte*>(buf) +
         static_cast<std::ptrdiff_t>(offset) * static_cast<std::ptrdiff_t>(type->base_size());
}

/// Offset (in base elements) of item slot `index` when items are
/// `count`-sized blocks of `type`.
int slot_offset(int base_offset, int index, int count, const DatatypePtr& type) {
  const std::size_t extent_elems = type->extent_bytes() / type->base_size();
  return base_offset + index * count * static_cast<int>(extent_elems);
}

int displ_offset(int base_offset, int displ, const DatatypePtr& type) {
  const std::size_t extent_elems = type->extent_bytes() / type->base_size();
  return base_offset + displ * static_cast<int>(extent_elems);
}

}  // namespace

void Intracomm::require_contiguous(const DatatypePtr& type, const char* op) {
  if (type->extent_bytes() != type->size_bytes()) {
    throw ArgumentError(std::string(op) +
                        ": reduction datatypes must be memory-contiguous "
                        "(primitive or contiguous derived)");
  }
}

// ---- barrier (dissemination) -------------------------------------------------------

void Intracomm::Barrier() const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  if (hierarchy_enabled()) {
    const topo::View view = hier_topology(-1);
    if (view.depth > 0) {
      prof::Span coll_span("Barrier(hierarchical)", "coll");
      hier_barrier(view);
      return;
    }
  }
  prof::Span coll_span("Barrier(dissemination)", "coll");
  const int n = Size();
  const int rank = Rank();
  // Distinct bytes: the posted receive lands directly in `incoming` (zero-copy
  // path) while the send concurrently reads `outgoing` as a borrowed segment —
  // a single shared token would make the device write the byte mid-send.
  std::uint8_t outgoing = 1;
  std::uint8_t incoming = 0;
  for (int k = 1; k < n; k <<= 1) {
    const int to = (rank + k) % n;
    const int from = (rank - k + n) % n;
    Request recv = ctx_irecv(coll_context_, coll_tag(CollTag::Barrier), &incoming, 0, 1,
                             types::BYTE(), from);
    ctx_send(coll_context_, coll_tag(CollTag::Barrier), &outgoing, 0, 1, types::BYTE(), to);
    recv.Wait();
  }
}

// ---- broadcast (binomial tree) ------------------------------------------------------

void Intracomm::Bcast(void* buf, int offset, int count, const DatatypePtr& type, int root) const {
  validate(buf, count, type, "Bcast");
  world_->counters().add(prof::Ctr::CollectiveCalls);
  const int n = Size();
  if (root < 0 || root >= n) throw ArgumentError("Bcast: bad root");
  // Zero-count broadcasts carry no data: skip the exchange entirely instead
  // of pushing empty frames through the device (symmetric — every rank sees
  // the same count).
  if (n == 1 || count == 0) return;
  if (hierarchy_enabled()) {
    const topo::View view = hier_topology(root);
    if (view.depth > 0) {
      prof::Span coll_span("Bcast(hierarchical)", "coll");
      hier_bcast(buf, offset, count, type, root, view);
      return;
    }
  }
  prof::Span coll_span("Bcast(binomial)", "coll");
  const int vrank = (Rank() - root + n) % n;

  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int src = ((vrank - mask) + root) % n;
      ctx_recv(coll_context_, coll_tag(CollTag::Bcast), buf, offset, count, type, src);
      break;
    }
    mask <<= 1;
  }
  // After the loop, mask is the lowest set bit of vrank (or >= n for the
  // root); every child vrank+mask' for mask' < mask receives from us.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int dst = ((vrank + mask) + root) % n;
      ctx_send(coll_context_, coll_tag(CollTag::Bcast), buf, offset, count, type, dst);
    }
    mask >>= 1;
  }
}

// ---- gather family --------------------------------------------------------------------

void Intracomm::Gather(const void* sendbuf, int sendoffset, int sendcount,
                       const DatatypePtr& sendtype, void* recvbuf, int recvoffset, int recvcount,
                       const DatatypePtr& recvtype, int root) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Gather(linear)", "coll");
  const int n = Size();
  const int rank = Rank();
  if (rank != root) {
    ctx_send(coll_context_, coll_tag(CollTag::Gather), sendbuf, sendoffset, sendcount, sendtype,
             root);
    return;
  }
  for (int src = 0; src < n; ++src) {
    const int slot = slot_offset(recvoffset, src, recvcount, recvtype);
    if (src == rank) {
      // Local copy through the pack/unpack machinery (honours datatypes).
      auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcount)));
      sendtype->pack(cbyte(sendbuf, sendoffset, sendtype), static_cast<std::size_t>(sendcount),
                     *tmp);
      tmp->commit();
      recvtype->unpack_available(*tmp, mbyte(recvbuf, slot, recvtype),
                                 static_cast<std::size_t>(recvcount));
      give_buffer(std::move(tmp));
    } else {
      ctx_recv(coll_context_, coll_tag(CollTag::Gather), recvbuf, slot, recvcount, recvtype, src);
    }
  }
}

void Intracomm::Gatherv(const void* sendbuf, int sendoffset, int sendcount,
                        const DatatypePtr& sendtype, void* recvbuf, int recvoffset,
                        std::span<const int> recvcounts, std::span<const int> displs,
                        const DatatypePtr& recvtype, int root) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Gatherv(linear)", "coll");
  const int n = Size();
  const int rank = Rank();
  if (rank != root) {
    // Zero-count contributors stay silent; the root skips their slot too
    // (both sides derive the decision from the same counts, so the skip is
    // symmetric and no empty frame crosses the device).
    if (sendcount == 0) return;
    ctx_send(coll_context_, coll_tag(CollTag::Gather), sendbuf, sendoffset, sendcount, sendtype,
             root);
    return;
  }
  if (static_cast<int>(recvcounts.size()) != n || static_cast<int>(displs.size()) != n) {
    throw ArgumentError("Gatherv: recvcounts/displs must have one entry per rank");
  }
  for (int src = 0; src < n; ++src) {
    if (recvcounts[src] == 0) continue;
    const int slot = displ_offset(recvoffset, displs[src], recvtype);
    if (src == rank) {
      auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcount)));
      sendtype->pack(cbyte(sendbuf, sendoffset, sendtype), static_cast<std::size_t>(sendcount),
                     *tmp);
      tmp->commit();
      recvtype->unpack_available(*tmp, mbyte(recvbuf, slot, recvtype),
                                 static_cast<std::size_t>(recvcounts[src]));
      give_buffer(std::move(tmp));
    } else {
      ctx_recv(coll_context_, coll_tag(CollTag::Gather), recvbuf, slot, recvcounts[src], recvtype,
               src);
    }
  }
}

void Intracomm::Scatter(const void* sendbuf, int sendoffset, int sendcount,
                        const DatatypePtr& sendtype, void* recvbuf, int recvoffset, int recvcount,
                        const DatatypePtr& recvtype, int root) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Scatter(linear)", "coll");
  const int n = Size();
  const int rank = Rank();
  if (rank != root) {
    ctx_recv(coll_context_, coll_tag(CollTag::Scatter), recvbuf, recvoffset, recvcount, recvtype,
             root);
    return;
  }
  for (int dst = 0; dst < n; ++dst) {
    const int slot = slot_offset(sendoffset, dst, sendcount, sendtype);
    if (dst == rank) {
      auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcount)));
      sendtype->pack(cbyte(sendbuf, slot, sendtype), static_cast<std::size_t>(sendcount), *tmp);
      tmp->commit();
      recvtype->unpack_available(*tmp, mbyte(recvbuf, recvoffset, recvtype),
                                 static_cast<std::size_t>(recvcount));
      give_buffer(std::move(tmp));
    } else {
      ctx_send(coll_context_, coll_tag(CollTag::Scatter), sendbuf, slot, sendcount, sendtype, dst);
    }
  }
}

void Intracomm::Scatterv(const void* sendbuf, int sendoffset, std::span<const int> sendcounts,
                         std::span<const int> displs, const DatatypePtr& sendtype, void* recvbuf,
                         int recvoffset, int recvcount, const DatatypePtr& recvtype,
                         int root) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Scatterv(linear)", "coll");
  const int n = Size();
  const int rank = Rank();
  if (rank != root) {
    // Symmetric zero-count skip: the root sends nothing to a rank whose
    // sendcounts entry is 0, so that rank must not post a receive.
    if (recvcount == 0) return;
    ctx_recv(coll_context_, coll_tag(CollTag::Scatter), recvbuf, recvoffset, recvcount, recvtype,
             root);
    return;
  }
  if (static_cast<int>(sendcounts.size()) != n || static_cast<int>(displs.size()) != n) {
    throw ArgumentError("Scatterv: sendcounts/displs must have one entry per rank");
  }
  for (int dst = 0; dst < n; ++dst) {
    if (sendcounts[dst] == 0) continue;
    const int slot = displ_offset(sendoffset, displs[dst], sendtype);
    if (dst == rank) {
      auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcounts[dst])));
      sendtype->pack(cbyte(sendbuf, slot, sendtype), static_cast<std::size_t>(sendcounts[dst]),
                     *tmp);
      tmp->commit();
      recvtype->unpack_available(*tmp, mbyte(recvbuf, recvoffset, recvtype),
                                 static_cast<std::size_t>(recvcount));
      give_buffer(std::move(tmp));
    } else {
      ctx_send(coll_context_, coll_tag(CollTag::Scatter), sendbuf, slot, sendcounts[dst], sendtype,
               dst);
    }
  }
}

// ---- allgather (ring) --------------------------------------------------------------------

void Intracomm::Allgather(const void* sendbuf, int sendoffset, int sendcount,
                          const DatatypePtr& sendtype, void* recvbuf, int recvoffset,
                          int recvcount, const DatatypePtr& recvtype) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Allgather(ring)", "coll");
  const int n = Size();
  const int rank = Rank();
  // Place own contribution.
  {
    auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcount)));
    sendtype->pack(cbyte(sendbuf, sendoffset, sendtype), static_cast<std::size_t>(sendcount),
                   *tmp);
    tmp->commit();
    recvtype->unpack_available(*tmp,
                               mbyte(recvbuf, slot_offset(recvoffset, rank, recvcount, recvtype),
                                     recvtype),
                               static_cast<std::size_t>(recvcount));
    give_buffer(std::move(tmp));
  }
  const int right = (rank + 1) % n;
  const int left = (rank - 1 + n) % n;
  for (int step = 1; step < n; ++step) {
    const int send_idx = (rank - step + 1 + n) % n;
    const int recv_idx = (rank - step + n) % n;
    Request send = ctx_isend(coll_context_, coll_tag(CollTag::Allgather), recvbuf,
                             slot_offset(recvoffset, send_idx, recvcount, recvtype), recvcount,
                             recvtype, right);
    ctx_recv(coll_context_, coll_tag(CollTag::Allgather), recvbuf,
             slot_offset(recvoffset, recv_idx, recvcount, recvtype), recvcount, recvtype, left);
    send.Wait();
  }
}

void Intracomm::Allgatherv(const void* sendbuf, int sendoffset, int sendcount,
                           const DatatypePtr& sendtype, void* recvbuf, int recvoffset,
                           std::span<const int> recvcounts, std::span<const int> displs,
                           const DatatypePtr& recvtype) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Allgatherv(ring)", "coll");
  const int n = Size();
  const int rank = Rank();
  {
    auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcount)));
    sendtype->pack(cbyte(sendbuf, sendoffset, sendtype), static_cast<std::size_t>(sendcount),
                   *tmp);
    tmp->commit();
    recvtype->unpack_available(
        *tmp, mbyte(recvbuf, displ_offset(recvoffset, displs[rank], recvtype), recvtype),
        static_cast<std::size_t>(recvcounts[rank]));
    give_buffer(std::move(tmp));
  }
  const int right = (rank + 1) % n;
  const int left = (rank - 1 + n) % n;
  for (int step = 1; step < n; ++step) {
    const int send_idx = (rank - step + 1 + n) % n;
    const int recv_idx = (rank - step + n) % n;
    // Zero-count slots are skipped on both sides of the ring: the left
    // neighbour consults the same recvcounts entry before sending, so the
    // pairing stays aligned and no empty frames circulate.
    Request send;
    if (recvcounts[send_idx] != 0) {
      send = ctx_isend(coll_context_, coll_tag(CollTag::Allgather), recvbuf,
                       displ_offset(recvoffset, displs[send_idx], recvtype), recvcounts[send_idx],
                       recvtype, right);
    }
    if (recvcounts[recv_idx] != 0) {
      ctx_recv(coll_context_, coll_tag(CollTag::Allgather), recvbuf,
               displ_offset(recvoffset, displs[recv_idx], recvtype), recvcounts[recv_idx],
               recvtype, left);
    }
    if (!send.is_null()) send.Wait();
  }
}

// ---- alltoall (pairwise) --------------------------------------------------------------------

void Intracomm::Alltoall(const void* sendbuf, int sendoffset, int sendcount,
                         const DatatypePtr& sendtype, void* recvbuf, int recvoffset,
                         int recvcount, const DatatypePtr& recvtype) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Alltoall(pairwise)", "coll");
  const int n = Size();
  const int rank = Rank();
  for (int step = 0; step < n; ++step) {
    const int dst = (rank + step) % n;
    const int src = (rank - step + n) % n;
    const int send_slot = slot_offset(sendoffset, dst, sendcount, sendtype);
    const int recv_slot = slot_offset(recvoffset, src, recvcount, recvtype);
    if (step == 0) {
      // Self-exchange stays local; nothing to copy for zero counts.
      if (sendcount == 0 || recvcount == 0) continue;
      auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcount)));
      sendtype->pack(cbyte(sendbuf, send_slot, sendtype), static_cast<std::size_t>(sendcount),
                     *tmp);
      tmp->commit();
      recvtype->unpack_available(*tmp, mbyte(recvbuf, recv_slot, recvtype),
                                 static_cast<std::size_t>(recvcount));
      give_buffer(std::move(tmp));
      continue;
    }
    // Zero counts skip the wire op entirely (PR 4 guard policy: symmetric,
    // since MPI requires matched send/recv sizes per pair).
    Request send;
    if (sendcount != 0) {
      send = ctx_isend(coll_context_, coll_tag(CollTag::Alltoall), sendbuf, send_slot, sendcount,
                       sendtype, dst);
    }
    if (recvcount != 0) {
      ctx_recv(coll_context_, coll_tag(CollTag::Alltoall), recvbuf, recv_slot, recvcount,
               recvtype, src);
    }
    if (!send.is_null()) send.Wait();
  }
}

void Intracomm::Alltoallv(const void* sendbuf, int sendoffset, std::span<const int> sendcounts,
                          std::span<const int> sdispls, const DatatypePtr& sendtype,
                          void* recvbuf, int recvoffset, std::span<const int> recvcounts,
                          std::span<const int> rdispls, const DatatypePtr& recvtype) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Alltoallv(pairwise)", "coll");
  const int n = Size();
  const int rank = Rank();
  for (int step = 0; step < n; ++step) {
    const int dst = (rank + step) % n;
    const int src = (rank - step + n) % n;
    const int send_slot = displ_offset(sendoffset, sdispls[dst], sendtype);
    const int recv_slot = displ_offset(recvoffset, rdispls[src], recvtype);
    if (step == 0) {
      // Self-exchange stays local; nothing to copy for a zero self-count.
      if (sendcounts[dst] == 0 || recvcounts[src] == 0) continue;
      auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcounts[dst])));
      sendtype->pack(cbyte(sendbuf, send_slot, sendtype),
                     static_cast<std::size_t>(sendcounts[dst]), *tmp);
      tmp->commit();
      recvtype->unpack_available(*tmp, mbyte(recvbuf, recv_slot, recvtype),
                                 static_cast<std::size_t>(recvcounts[src]));
      give_buffer(std::move(tmp));
      continue;
    }
    // Per-peer zero counts skip the wire op (PR 4 guard policy) — the
    // whole point of the v-variant is ragged exchanges where many pairs
    // move nothing.
    Request send;
    if (sendcounts[dst] != 0) {
      send = ctx_isend(coll_context_, coll_tag(CollTag::Alltoall), sendbuf, send_slot,
                       sendcounts[dst], sendtype, dst);
    }
    if (recvcounts[src] != 0) {
      ctx_recv(coll_context_, coll_tag(CollTag::Alltoall), recvbuf, recv_slot, recvcounts[src],
               recvtype, src);
    }
    if (!send.is_null()) send.Wait();
  }
}

// ---- reductions --------------------------------------------------------------------------------

void Intracomm::reduce_elements(const void* sendbuf, void* recvbuf, std::size_t elements,
                                buf::TypeCode code, const Op& op, int root) const {
  const int n = Size();
  const int rank = Rank();
  const std::size_t elsize = buf::type_code_size(code);
  const std::size_t bytes = elements * elsize;
  const DatatypePtr wire = types::BYTE();

  std::vector<std::byte> acc(bytes);
  std::memcpy(acc.data(), sendbuf, bytes);

  if (op.is_commutative()) {
    // Binomial tree rooted at `root`.
    const int vrank = (rank - root + n) % n;
    std::vector<std::byte> incoming(bytes);
    int mask = 1;
    while (mask < n) {
      if (vrank & mask) {
        const int dst = ((vrank - mask) + root) % n;
        ctx_send(coll_context_, coll_tag(CollTag::Reduce), acc.data(), 0,
                 static_cast<int>(bytes), wire, dst);
        break;
      }
      const int src_vrank = vrank + mask;
      if (src_vrank < n) {
        const int src = (src_vrank + root) % n;
        ctx_recv(coll_context_, coll_tag(CollTag::Reduce), incoming.data(), 0,
                 static_cast<int>(bytes), wire, src);
        op.apply(code, incoming.data(), acc.data(), elements);
      }
      mask <<= 1;
    }
  } else {
    // Non-commutative: linear fold in canonical rank order at the root.
    if (rank == root) {
      std::vector<std::byte> incoming(bytes);
      std::vector<std::byte> folded(bytes);
      bool first = true;
      for (int src = 0; src < n; ++src) {
        const std::byte* contribution;
        if (src == rank) {
          contribution = acc.data();
        } else {
          ctx_recv(coll_context_, coll_tag(CollTag::Reduce), incoming.data(), 0,
                   static_cast<int>(bytes), wire, src);
          contribution = incoming.data();
        }
        if (first) {
          std::memcpy(folded.data(), contribution, bytes);
          first = false;
        } else {
          op.apply(code, contribution, folded.data(), elements);
        }
      }
      acc = std::move(folded);
    } else {
      ctx_send(coll_context_, coll_tag(CollTag::Reduce), acc.data(), 0, static_cast<int>(bytes),
               wire, root);
    }
  }

  if (rank == root) std::memcpy(recvbuf, acc.data(), bytes);
}

void Intracomm::Reduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                       int count, const DatatypePtr& type, const Op& op, int root) const {
  validate(sendbuf, count, type, "Reduce");
  require_contiguous(type, "Reduce");
  world_->counters().add(prof::Ctr::CollectiveCalls);
  // Nothing to reduce: skip the exchange rather than pushing empty frames
  // (every rank sees the same count, so the skip is symmetric).
  if (count == 0) return;
  if (hierarchy_enabled()) {
    const topo::View view = hier_topology(root);
    // Non-commutative ops only take the hierarchical path when every group
    // is a contiguous rank block: per-level ordered folds then compose to
    // exactly the canonical rank-order fold the flat algorithm performs.
    if (view.depth > 0 && (op.is_commutative() || view.contiguous)) {
      prof::Span coll_span("Reduce(hierarchical)", "coll");
      hier_reduce(sendbuf, sendoffset, recvbuf, recvoffset, count, type, op, root, view);
      return;
    }
  }
  prof::Span coll_span(op.is_commutative() ? "Reduce(binomial)" : "Reduce(linear)", "coll");
  const std::size_t elements = static_cast<std::size_t>(count) * type->size_elements();
  reduce_elements(cbyte(sendbuf, sendoffset, type),
                  Rank() == root ? mbyte(recvbuf, recvoffset, type) : nullptr, elements,
                  type->base(), op, root);
}

void Intracomm::Allreduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                          int count, const DatatypePtr& type, const Op& op) const {
  validate(sendbuf, count, type, "Allreduce");
  require_contiguous(type, "Allreduce");
  const int n = Size();
  world_->counters().add(prof::Ctr::CollectiveCalls);
  if (count == 0) return;
  if (hierarchy_enabled()) {
    const topo::View view = hier_topology(-1);
    // Same contiguity gate as Reduce: ordered per-level folds are only
    // canonical-order-equivalent on contiguous layouts.
    if (view.depth > 0 && (op.is_commutative() || view.contiguous)) {
      prof::Span coll_span("Allreduce(hierarchical)", "coll");
      hier_allreduce(sendbuf, sendoffset, recvbuf, recvoffset, count, type, op, view);
      return;
    }
  }
  prof::Span coll_span(op.is_commutative() && n > 1 && (n & (n - 1)) == 0
                           ? "Allreduce(recursive-doubling)"
                           : "Allreduce(reduce+bcast)",
                       "coll");
  // Recursive doubling for commutative ops on power-of-two sizes
  // (log2(n) rounds instead of reduce+bcast's 2*log2(n));
  // otherwise reduce to rank 0 and broadcast.
  if (op.is_commutative() && n > 1 && (n & (n - 1)) == 0) {
    const std::size_t elements = static_cast<std::size_t>(count) * type->size_elements();
    const std::size_t bytes = elements * type->base_size();
    std::byte* acc = mbyte(recvbuf, recvoffset, type);
    std::memcpy(acc, cbyte(sendbuf, sendoffset, type), bytes);
    std::vector<std::byte> incoming(bytes);
    const DatatypePtr wire = types::BYTE();
    const int rank = Rank();
    for (int mask = 1; mask < n; mask <<= 1) {
      const int partner = rank ^ mask;
      Request send = ctx_isend(coll_context_, coll_tag(CollTag::Reduce), acc, 0,
                               static_cast<int>(bytes), wire, partner);
      ctx_recv(coll_context_, coll_tag(CollTag::Reduce), incoming.data(), 0,
               static_cast<int>(bytes), wire, partner);
      send.Wait();
      op.apply(type->base(), incoming.data(), acc, elements);
    }
    return;
  }
  Reduce(sendbuf, sendoffset, recvbuf, recvoffset, count, type, op, 0);
  Bcast(recvbuf, recvoffset, count, type, 0);
}

void Intracomm::Reduce_scatter(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                               std::span<const int> recvcounts, const DatatypePtr& type,
                               const Op& op) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Reduce_scatter(reduce+scatterv)", "coll");
  const int n = Size();
  if (static_cast<int>(recvcounts.size()) != n) {
    throw ArgumentError("Reduce_scatter: recvcounts must have one entry per rank");
  }
  require_contiguous(type, "Reduce_scatter");
  for (int i = 0; i < n; ++i) {
    if (recvcounts[static_cast<std::size_t>(i)] < 0) {
      throw ArgumentError("Reduce_scatter: recvcounts[" + std::to_string(i) +
                          "] is negative");
    }
  }
  const int total = std::accumulate(recvcounts.begin(), recvcounts.end(), 0);
  std::vector<std::byte> full(static_cast<std::size_t>(total) * type->size_bytes());
  Reduce(sendbuf, sendoffset, full.data(), 0, total, type, op, 0);
  std::vector<int> displs(static_cast<std::size_t>(n), 0);
  for (int i = 1; i < n; ++i) displs[static_cast<std::size_t>(i)] = displs[i - 1] + recvcounts[i - 1];
  Scatterv(full.data(), 0, recvcounts, displs, type, recvbuf, recvoffset, recvcounts[Rank()],
           type, 0);
}

void Intracomm::Scan(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                     int count, const DatatypePtr& type, const Op& op) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Scan(linear)", "coll");
  validate(sendbuf, count, type, "Scan");
  require_contiguous(type, "Scan");
  // Nothing to fold: skip the prefix chain rather than pushing empty frames
  // (symmetric — every rank sees the same count).
  if (count == 0) return;
  const int n = Size();
  const int rank = Rank();
  const std::size_t elements = static_cast<std::size_t>(count) * type->size_elements();
  const std::size_t bytes = elements * type->base_size();
  const DatatypePtr wire = types::BYTE();

  std::byte* result = mbyte(recvbuf, recvoffset, type);
  std::memcpy(result, cbyte(sendbuf, sendoffset, type), bytes);
  if (rank > 0) {
    // Receive prefix over ranks 0..rank-1 and fold own contribution after it.
    std::vector<std::byte> prefix(bytes);
    ctx_recv(coll_context_, coll_tag(CollTag::Scan), prefix.data(), 0, static_cast<int>(bytes),
             wire, rank - 1);
    op.apply(type->base(), result, prefix.data(), elements);  // prefix ∘ own
    std::memcpy(result, prefix.data(), bytes);
  }
  if (rank + 1 < n) {
    ctx_send(coll_context_, coll_tag(CollTag::Scan), result, 0, static_cast<int>(bytes), wire,
             rank + 1);
  }
}

// ---- hierarchical (n-level) collectives --------------------------------------------------------
//
// On a multi-node communicator the flat algorithms scatter inter-node
// traffic across every round (recursive doubling's first round, for
// instance, is ALL cross-node under round-robin placement). The n-level
// forms walk the locality tree's exchanges (core/topo.hpp): each exchange
// runs a self-contained binomial/fold among its peers, so slow transports
// only carry their own level's traffic. The node-local exchanges are
// replaced wholesale by the single-copy shared buffer (xdev/collbuf.hpp)
// when the payload qualifies.

namespace {

enum HierPhase { kPhaseUp = 0, kPhaseDown = 1 };

/// Reserved tag for one exchange level + direction (see types.hpp).
int hier_tag(int level, int phase) {
  return kHierLevelTagBase - (level * kHierLevelPhases + phase);
}

/// Index of `rank` within a node-member list (ascending rank order).
int member_index(const std::vector<int>& members, int rank) {
  return static_cast<int>(std::find(members.begin(), members.end(), rank) - members.begin());
}

/// Payload-side single-copy eligibility. Must be a pure function of values
/// every member of the node group shares (count/type are collective
/// arguments): a split decision inside one group would deadlock the buffer
/// protocol. The group-side conditions live in node_collbuf().
bool collbuf_payload_ok(int count, const DatatypePtr& type) {
  return count > 0 && type->extent_bytes() == type->size_bytes() &&
         type->base_size() <= xdev::collbuf::kChunkBytes;
}

}  // namespace

Intracomm::Intracomm(World* world, Group group, int ptp_context, int coll_context)
    : Comm(world, std::move(group), ptp_context, coll_context) {}

Intracomm::~Intracomm() = default;

bool Intracomm::hierarchy_enabled() const {
  const int n = Size();
  if (n <= 1 || !hier_config_.hier_enabled) return false;
  if (!hier_config_.topo_spec.empty()) return true;
  mpdev::Engine& eng = engine();
  if (eng.node_count() <= 1) return false;
  const int first = eng.node_of(group_.world_rank(0));
  for (int r = 1; r < n; ++r) {
    if (eng.node_of(group_.world_rank(r)) != first) return true;
  }
  return false;
}

topo::View Intracomm::hier_topology(int root) const {
  const int n = Size();
  mpdev::Engine& eng = engine();
  std::vector<int> node_of;
  if (eng.node_count() > 1) {
    node_of.resize(static_cast<std::size_t>(n));
    for (int r = 0; r < n; ++r) {
      node_of[static_cast<std::size_t>(r)] = eng.node_of(group_.world_rank(r));
    }
  }
  return topo::build_view(n, Rank(), root, node_of, hier_config_.topo_spec);
}

xdev::collbuf::Group* Intracomm::node_collbuf(const topo::View& view) const {
  if (!hier_config_.singlecopy) return nullptr;
  const int members = static_cast<int>(view.node_members.size());
  if (members < 2 || members > xdev::collbuf::kMaxMembers) return nullptr;
  std::lock_guard<std::mutex> lock(collbuf_mu_);
  if (!collbuf_) {
    // The segment name must be identical on every member and unique per
    // communicator: key it by the fixed lowest member's process identity
    // (stable across re-rooting) and the collective context.
    const int creator_rank = view.node_members.front();
    const std::uint64_t creator_pid =
        engine().pid_of(group_.world_rank(creator_rank)).value;
    const std::string name = "/mpcx_coll_" + std::to_string(creator_pid) + "_" +
                             std::to_string(coll_context_);
    // Open failures propagate: a member silently falling back to p2p while
    // the rest of its group waits on the shared buffer would deadlock.
    collbuf_ = std::make_unique<xdev::collbuf::Group>(name, view.node_member_idx, members,
                                                      Rank() == creator_rank);
    // A member that dies mid-collective never publishes, so the buffer wait
    // would only ever hit the coarse timeout backstop. Surface the failure
    // detector's verdict instead, as the p2p path does.
    std::vector<int> member_worlds;
    member_worlds.reserve(view.node_members.size());
    for (int r : view.node_members) member_worlds.push_back(group_.world_rank(r));
    collbuf_->set_abort_check([this, member_worlds = std::move(member_worlds)] {
      const std::vector<int> failed = world_->failed_ranks();
      if (failed.empty()) return;
      for (int wr : member_worlds) {
        if (std::find(failed.begin(), failed.end(), wr) != failed.end()) {
          throw CommError("collbuf: node-group member (world rank " + std::to_string(wr) +
                              ") failed mid-collective",
                          ErrCode::ProcFailed);
        }
      }
    });
  }
  return collbuf_.get();
}

void Intracomm::exchange_bcast(const topo::Exchange& ex, int tag, void* buf, int offset,
                               int count, const DatatypePtr& type) const {
  const int m = static_cast<int>(ex.peers.size());
  if (m <= 1) return;
  // Binomial among the peers, rotated so the exchange root is vrank 0.
  const int vrank = (ex.my_vidx - ex.root_vidx + m) % m;
  int mask = 1;
  while (mask < m) {
    if (vrank & mask) {
      const int src = ex.peers[static_cast<std::size_t>(((vrank - mask) + ex.root_vidx) % m)];
      ctx_recv(coll_context_, tag, buf, offset, count, type, src);
      break;
    }
    mask <<= 1;
  }
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < m) {
      const int dst = ex.peers[static_cast<std::size_t>(((vrank + mask) + ex.root_vidx) % m)];
      ctx_send(coll_context_, tag, buf, offset, count, type, dst);
    }
    mask >>= 1;
  }
}

void Intracomm::exchange_reduce(const topo::Exchange& ex, int tag, std::byte* acc,
                                std::size_t bytes, std::size_t elements, buf::TypeCode code,
                                const Op& op) const {
  const int m = static_cast<int>(ex.peers.size());
  if (m <= 1) return;
  const DatatypePtr wire = types::BYTE();
  if (op.is_commutative()) {
    // Binomial fold toward the exchange root.
    const int vrank = (ex.my_vidx - ex.root_vidx + m) % m;
    std::vector<std::byte> incoming(bytes);
    int mask = 1;
    while (mask < m) {
      if (vrank & mask) {
        const int dst = ex.peers[static_cast<std::size_t>(((vrank - mask) + ex.root_vidx) % m)];
        ctx_send(coll_context_, tag, acc, 0, static_cast<int>(bytes), wire, dst);
        break;
      }
      const int src_vrank = vrank + mask;
      if (src_vrank < m) {
        const int src = ex.peers[static_cast<std::size_t>((src_vrank + ex.root_vidx) % m)];
        ctx_recv(coll_context_, tag, incoming.data(), 0, static_cast<int>(bytes), wire, src);
        op.apply(code, incoming.data(), acc, elements);
      }
      mask <<= 1;
    }
    return;
  }
  // Non-commutative: ordered linear fold at the exchange root. Peers are in
  // canonical group order (ascending lowest-member order on the contiguous
  // layouts that gate this path), so folding v = 0..m-1 composes into the
  // flat canonical rank-order fold.
  if (ex.my_vidx != ex.root_vidx) {
    ctx_send(coll_context_, tag, acc, 0, static_cast<int>(bytes), wire,
             ex.peers[static_cast<std::size_t>(ex.root_vidx)]);
    return;
  }
  std::vector<std::byte> incoming(bytes);
  std::vector<std::byte> folded(bytes);
  for (int v = 0; v < m; ++v) {
    const std::byte* contribution;
    if (v == ex.my_vidx) {
      contribution = acc;
    } else {
      ctx_recv(coll_context_, tag, incoming.data(), 0, static_cast<int>(bytes), wire,
               ex.peers[static_cast<std::size_t>(v)]);
      contribution = incoming.data();
    }
    if (v == 0) {
      std::memcpy(folded.data(), contribution, bytes);
    } else {
      op.apply(code, contribution, folded.data(), elements);
    }
  }
  std::memcpy(acc, folded.data(), bytes);
}

void Intracomm::hier_bcast(void* buf, int offset, int count, const DatatypePtr& type, int root,
                           const topo::View& view) const {
  (void)root;  // leadership is already root-aligned inside the view
  world_->counters().add(prof::Ctr::HierarchicalColls);
  world_->pvars().gauge_set(prof::Pv::TopoLevels,
                            static_cast<std::uint64_t>(view.depth) + 1);
  xdev::collbuf::Group* cb = collbuf_payload_ok(count, type) ? node_collbuf(view) : nullptr;
  // Top-down: each exchange's root already holds the payload once the level
  // above it has run. The single-copy buffer replaces every node-local
  // exchange in one shot.
  const int last = cb != nullptr ? view.node_exchange_begin : view.depth + 1;
  for (int k = 0; k < last; ++k) {
    const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
    if (ex.my_vidx < 0) continue;
    exchange_bcast(ex, hier_tag(k, kPhaseDown), buf, offset, count, type);
  }
  if (cb != nullptr) {
    const std::size_t bytes =
        static_cast<std::size_t>(count) * type->size_elements() * type->base_size();
    cb->bcast(member_index(view.node_members, view.node_leader), mbyte(buf, offset, type),
              bytes);
    world_->counters().add(prof::Ctr::SinglecopyColls);
    world_->counters().add(prof::Ctr::LevelLocalBytes, bytes);
  }
}

void Intracomm::hier_reduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                            int count, const DatatypePtr& type, const Op& op, int root,
                            const topo::View& view) const {
  world_->counters().add(prof::Ctr::HierarchicalColls);
  world_->pvars().gauge_set(prof::Pv::TopoLevels,
                            static_cast<std::uint64_t>(view.depth) + 1);
  const std::size_t elements = static_cast<std::size_t>(count) * type->size_elements();
  const std::size_t elsize = type->base_size();
  const std::size_t bytes = elements * elsize;
  const buf::TypeCode code = type->base();

  // Fold directly in the receive buffer at the root; heap scratch elsewhere.
  std::vector<std::byte> scratch;
  std::byte* acc;
  if (Rank() == root) {
    acc = mbyte(recvbuf, recvoffset, type);
  } else {
    scratch.resize(bytes);
    acc = scratch.data();
  }
  std::memcpy(acc, cbyte(sendbuf, sendoffset, type), bytes);

  xdev::collbuf::Group* cb = collbuf_payload_ok(count, type) ? node_collbuf(view) : nullptr;
  int deepest = view.depth;
  if (cb != nullptr) {
    // The buffer fold may overwrite `acc` before consuming our contribution,
    // so an aliasing send/recv pair needs a stable copy of the contribution.
    const std::byte* contrib = cbyte(sendbuf, sendoffset, type);
    std::vector<std::byte> own_copy;
    if (contrib == acc) {
      own_copy.assign(contrib, contrib + bytes);
      contrib = own_copy.data();
    }
    cb->reduce(member_index(view.node_members, view.node_leader), contrib, acc, bytes, elsize,
               [&](const std::byte* src, std::byte* dst, std::size_t len) {
                 op.apply(code, src, dst, len / elsize);
               });
    world_->counters().add(prof::Ctr::SinglecopyColls);
    world_->counters().add(prof::Ctr::LevelLocalBytes, bytes);
    deepest = view.node_exchange_begin - 1;
  }
  // Bottom-up: fold each level into its exchange root; only the levels the
  // single-copy buffer did not already cover remain.
  for (int k = deepest; k >= 0; --k) {
    const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
    if (ex.my_vidx < 0) continue;
    exchange_reduce(ex, hier_tag(k, kPhaseUp), acc, bytes, elements, code, op);
  }
}

void Intracomm::hier_allreduce(const void* sendbuf, int sendoffset, void* recvbuf,
                               int recvoffset, int count, const DatatypePtr& type, const Op& op,
                               const topo::View& view) const {
  world_->counters().add(prof::Ctr::HierarchicalColls);
  world_->pvars().gauge_set(prof::Pv::TopoLevels,
                            static_cast<std::uint64_t>(view.depth) + 1);
  const std::size_t elements = static_cast<std::size_t>(count) * type->size_elements();
  const std::size_t elsize = type->base_size();
  const std::size_t bytes = elements * elsize;
  const buf::TypeCode code = type->base();
  const DatatypePtr wire = types::BYTE();

  std::byte* acc = mbyte(recvbuf, recvoffset, type);
  std::memcpy(acc, cbyte(sendbuf, sendoffset, type), bytes);

  xdev::collbuf::Group* cb = collbuf_payload_ok(count, type) ? node_collbuf(view) : nullptr;
  const int collector =
      cb != nullptr ? member_index(view.node_members, view.node_leader) : 0;

  // Up pass: fold every level below the top exchange into its root.
  if (cb != nullptr) {
    // Stable contribution copy when the caller aliases send/recv (the fold
    // may overwrite `acc` before our own contribution is consumed).
    const std::byte* contrib = cbyte(sendbuf, sendoffset, type);
    std::vector<std::byte> own_copy;
    if (contrib == acc) {
      own_copy.assign(contrib, contrib + bytes);
      contrib = own_copy.data();
    }
    cb->reduce(collector, contrib, acc, bytes, elsize,
               [&](const std::byte* src, std::byte* dst, std::size_t len) {
                 op.apply(code, src, dst, len / elsize);
               });
    world_->counters().add(prof::Ctr::SinglecopyColls);
    world_->counters().add(prof::Ctr::LevelLocalBytes, bytes);
  } else {
    for (int k = view.depth; k >= 1; --k) {
      const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
      if (ex.my_vidx < 0) continue;
      exchange_reduce(ex, hier_tag(k, kPhaseUp), acc, bytes, elements, code, op);
    }
  }

  // Top exchange: all-reduce among the top-level leaders. The algorithm is
  // chosen from this exchange's own peer count — every participant of the
  // exchange sees the same m, so one level never mixes algorithms.
  if (cb == nullptr || view.node_exchange_begin > 0) {
    const topo::Exchange& top = view.exchanges.front();
    const int m = static_cast<int>(top.peers.size());
    if (top.my_vidx >= 0 && m > 1) {
      if (op.is_commutative() && (m & (m - 1)) == 0) {
        // Recursive doubling on the exchange's virtual indices.
        std::vector<std::byte> incoming(bytes);
        for (int mask = 1; mask < m; mask <<= 1) {
          const int partner = top.peers[static_cast<std::size_t>(top.my_vidx ^ mask)];
          Request send = ctx_isend(coll_context_, hier_tag(0, kPhaseUp), acc, 0,
                                   static_cast<int>(bytes), wire, partner);
          ctx_recv(coll_context_, hier_tag(0, kPhaseUp), incoming.data(), 0,
                   static_cast<int>(bytes), wire, partner);
          send.Wait();
          op.apply(code, incoming.data(), acc, elements);
        }
      } else {
        exchange_reduce(top, hier_tag(0, kPhaseUp), acc, bytes, elements, code, op);
        exchange_bcast(top, hier_tag(0, kPhaseDown), acc, 0, static_cast<int>(bytes), wire);
      }
    }
  }

  // Down pass: the mirrored broadcast of the result.
  if (cb != nullptr) {
    cb->bcast(collector, acc, bytes);
    world_->counters().add(prof::Ctr::LevelLocalBytes, bytes);
  } else {
    for (int k = 1; k <= view.depth; ++k) {
      const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
      if (ex.my_vidx < 0) continue;
      exchange_bcast(ex, hier_tag(k, kPhaseDown), acc, 0, static_cast<int>(bytes), wire);
    }
  }
}

void Intracomm::hier_barrier(const topo::View& view) const {
  world_->counters().add(prof::Ctr::HierarchicalColls);
  world_->pvars().gauge_set(prof::Pv::TopoLevels,
                            static_cast<std::uint64_t>(view.depth) + 1);
  std::uint8_t outgoing = 1;
  std::uint8_t incoming = 0;
  const DatatypePtr wire = types::BYTE();
  // Gather up: every exchange root absorbs one token per peer, so by the
  // time the top exchange's root has all of them every rank has arrived.
  for (int k = view.depth; k >= 0; --k) {
    const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
    const int m = static_cast<int>(ex.peers.size());
    if (ex.my_vidx < 0 || m <= 1) continue;
    if (ex.my_vidx == ex.root_vidx) {
      for (int v = 0; v < m; ++v) {
        if (v == ex.root_vidx) continue;
        ctx_recv(coll_context_, hier_tag(k, kPhaseUp), &incoming, 0, 1, wire,
                 ex.peers[static_cast<std::size_t>(v)]);
      }
    } else {
      ctx_send(coll_context_, hier_tag(k, kPhaseUp), &outgoing, 0, 1, wire,
               ex.peers[static_cast<std::size_t>(ex.root_vidx)]);
    }
  }
  // Release down: the mirror image.
  for (int k = 0; k <= view.depth; ++k) {
    const topo::Exchange& ex = view.exchanges[static_cast<std::size_t>(k)];
    const int m = static_cast<int>(ex.peers.size());
    if (ex.my_vidx < 0 || m <= 1) continue;
    if (ex.my_vidx == ex.root_vidx) {
      for (int v = 0; v < m; ++v) {
        if (v == ex.root_vidx) continue;
        ctx_send(coll_context_, hier_tag(k, kPhaseDown), &outgoing, 0, 1, wire,
                 ex.peers[static_cast<std::size_t>(v)]);
      }
    } else {
      ctx_recv(coll_context_, hier_tag(k, kPhaseDown), &incoming, 0, 1, wire,
               ex.peers[static_cast<std::size_t>(ex.root_vidx)]);
    }
  }
}

// ---- communicator construction ---------------------------------------------------------------

int Intracomm::agree_contexts(int groups) const {
  int proposal = world_->context_proposal();
  int agreed = 0;
  Allreduce(&proposal, 0, &agreed, 0, 1, types::INT(), ops::MAX());
  world_->raise_context_floor(agreed + 2 * groups);
  return agreed;
}

std::unique_ptr<Intracomm> Intracomm::Dup() const {
  const int base = agree_contexts(1);
  return std::make_unique<Intracomm>(world_, group_, base, base + 1);
}

std::unique_ptr<Intracomm> Intracomm::Create(const Group& new_group) const {
  const int base = agree_contexts(1);
  if (!new_group.contains_world(world_->Rank())) return nullptr;
  return std::make_unique<Intracomm>(world_, new_group, base, base + 1);
}

std::unique_ptr<Intracomm> Intracomm::Split(int color, int key) const {
  const int n = Size();
  const int rank = Rank();
  // Gather (color, key) from everyone.
  std::vector<int> mine = {color, key};
  std::vector<int> all(static_cast<std::size_t>(n) * 2);
  Allgather(mine.data(), 0, 2, types::INT(), all.data(), 0, 2, types::INT());

  const int base = agree_contexts(1);  // disjoint groups may share contexts
  if (color == UNDEFINED) return nullptr;

  // Members of my color, ordered by (key, parent rank).
  std::vector<std::pair<int, int>> members;  // (key, parent rank)
  for (int r = 0; r < n; ++r) {
    if (all[static_cast<std::size_t>(r) * 2] == color) {
      members.emplace_back(all[static_cast<std::size_t>(r) * 2 + 1], r);
    }
  }
  std::sort(members.begin(), members.end());
  std::vector<int> world_ranks;
  world_ranks.reserve(members.size());
  for (const auto& [k, r] : members) world_ranks.push_back(group_.world_rank(r));
  (void)rank;
  return std::make_unique<Intracomm>(world_, Group(std::move(world_ranks)), base, base + 1);
}

std::unique_ptr<Intracomm> Intracomm::Split_type(int split_type, int key) const {
  if (split_type == UNDEFINED) return Split(UNDEFINED, key);
  if (split_type != COMM_TYPE_SHARED) {
    throw ArgumentError("Split_type: unknown split type " + std::to_string(split_type));
  }
  // One color per physical node: the engine's dense node index, derived from
  // the same identities hybdev routes by, so the resulting communicator is
  // exactly the set of ranks reachable over the intra-node transport.
  return Split(engine().node_of(group_.world_rank(Rank())), key);
}

std::unique_ptr<Cartcomm> Intracomm::Create_cart(std::span<const int> dims,
                                                 std::span<const bool> periods,
                                                 bool /*reorder*/) const {
  if (dims.size() != periods.size()) {
    throw ArgumentError("Create_cart: dims/periods size mismatch");
  }
  int nodes = 1;
  for (const int d : dims) {
    if (d <= 0) throw ArgumentError("Create_cart: dimensions must be positive");
    nodes *= d;
  }
  if (nodes > Size()) throw ArgumentError("Create_cart: grid larger than communicator");
  const int base = agree_contexts(1);
  if (Rank() >= nodes) return nullptr;
  std::vector<int> world_ranks;
  world_ranks.reserve(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) world_ranks.push_back(group_.world_rank(r));
  return std::make_unique<Cartcomm>(world_, Group(std::move(world_ranks)), base, base + 1,
                                    std::vector<int>(dims.begin(), dims.end()),
                                    std::vector<bool>(periods.begin(), periods.end()));
}

std::unique_ptr<Graphcomm> Intracomm::Create_graph(std::span<const int> index,
                                                   std::span<const int> edges,
                                                   bool /*reorder*/) const {
  const int nodes = static_cast<int>(index.size());
  if (nodes > Size()) throw ArgumentError("Create_graph: more nodes than processes");
  const int base = agree_contexts(1);
  if (Rank() >= nodes) return nullptr;
  std::vector<int> world_ranks;
  world_ranks.reserve(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) world_ranks.push_back(group_.world_rank(r));
  return std::make_unique<Graphcomm>(world_, Group(std::move(world_ranks)), base, base + 1,
                                     std::vector<int>(index.begin(), index.end()),
                                     std::vector<int>(edges.begin(), edges.end()));
}

std::unique_ptr<Intercomm> Intracomm::Create_intercomm(int local_leader, const Comm& peer_comm,
                                                       int remote_leader, int tag) const {
  const int rank = Rank();

  // Local context proposal, agreed within the local side first.
  int proposal = world_->context_proposal();
  int local_max = 0;
  Allreduce(&proposal, 0, &local_max, 0, 1, types::INT(), ops::MAX());

  // Leaders exchange (context proposal, group membership) through peer_comm.
  int agreed = local_max;
  std::vector<int> remote_ranks;
  if (rank == local_leader) {
    struct Handshake {
      int context;
      std::vector<int> ranks;
      void serialize(buf::ByteSink& sink) const {
        sink.put<std::int32_t>(context);
        buf::encode_value(sink, ranks);
      }
      static Handshake deserialize(buf::ByteSource& source) {
        Handshake h;
        h.context = source.get<std::int32_t>();
        h.ranks = buf::decode_value<std::vector<int>>(source);
        return h;
      }
    };
    const Handshake ours{local_max, group_.world_ranks()};
    // Order the exchange by world rank so both leaders can use blocking
    // object sends without risk of a rendezvous cycle.
    if (group_.world_rank(rank) < peer_comm.group().world_rank(remote_leader)) {
      peer_comm.send_object(ours, remote_leader, tag);
      const Handshake theirs = peer_comm.recv_object<Handshake>(remote_leader, tag);
      agreed = std::max(local_max, theirs.context);
      remote_ranks = theirs.ranks;
    } else {
      const Handshake theirs = peer_comm.recv_object<Handshake>(remote_leader, tag);
      peer_comm.send_object(ours, remote_leader, tag);
      agreed = std::max(local_max, theirs.context);
      remote_ranks = theirs.ranks;
    }
  }

  // Leaders broadcast the agreed context and the remote group locally.
  Bcast(&agreed, 0, 1, types::INT(), local_leader);
  int remote_size = static_cast<int>(remote_ranks.size());
  Bcast(&remote_size, 0, 1, types::INT(), local_leader);
  remote_ranks.resize(static_cast<std::size_t>(remote_size));
  if (remote_size > 0) {
    Bcast(remote_ranks.data(), 0, remote_size, types::INT(), local_leader);
  }
  world_->raise_context_floor(agreed + 2);

  return std::make_unique<Intercomm>(world_, group_, Group(std::move(remote_ranks)), agreed,
                                     agreed + 1);
}

// ---- fault tolerance (ULFM-lite) ---------------------------------------------------

std::pair<std::vector<int>, std::vector<int>> Intracomm::survivors() const {
  const std::vector<int> failed = world_->failed_ranks();
  std::vector<int> locals;
  std::vector<int> worlds;
  for (int r = 0; r < Size(); ++r) {
    const int wr = group_.world_rank(r);
    if (std::find(failed.begin(), failed.end(), wr) == failed.end()) {
      locals.push_back(r);
      worlds.push_back(wr);
    }
  }
  return {std::move(locals), std::move(worlds)};
}

void Intracomm::ft_send_u64(int world_rank, CollTag tag, std::uint64_t value) const {
  auto buffer = pack_message(&value, 0, static_cast<int>(sizeof value), types::BYTE());
  mpdev::Request request = engine().isend(*buffer, world_rank, coll_tag(tag), coll_context_);
  const mpdev::Status dev = request.wait();
  reclaim_buffer(request, std::move(buffer));
  if (dev.error != ErrCode::Success) {
    throw CommError(std::string("recovery exchange send failed: ") + err_code_name(dev.error),
                    dev.error);
  }
}

std::uint64_t Intracomm::ft_recv_u64(int world_rank, CollTag tag) const {
  // Straggler tolerance: survivors reach a recovery exchange at times that
  // can differ by up to the full MPCX_OP_TIMEOUT_MS — each discovers the
  // failure through its own blocked operation. A Timeout here therefore
  // does NOT mean the partner is gone; giving up on a live straggler makes
  // this rank exit early and cascades as a bogus "failure" through the
  // remaining survivors. Only a partner the failure detector (or the
  // transport's redial exhaustion) has declared dead ends the exchange;
  // the retry budget bounds the wait when no detector is armed.
  constexpr int kStragglerRetries = 8;
  for (int attempt = 0;; ++attempt) {
    std::uint64_t value = 0;
    auto buffer = take_buffer(types::BYTE()->packed_bound(sizeof value));
    mpdev::Request request = engine().irecv(*buffer, world_rank, coll_tag(tag), coll_context_);
    const mpdev::Status dev = request.wait();
    if (dev.error == ErrCode::Success) {
      types::BYTE()->unpack_available(*buffer, reinterpret_cast<std::byte*>(&value),
                                      sizeof value);
      reclaim_buffer(request, std::move(buffer));
      return value;
    }
    reclaim_buffer(request, std::move(buffer));
    const std::vector<int> failed = world_->failed_ranks();
    const bool partner_failed =
        std::find(failed.begin(), failed.end(), world_rank) != failed.end();
    if (dev.error == ErrCode::Timeout && !partner_failed &&
        attempt + 1 < kStragglerRetries) {
      continue;  // live straggler — keep waiting for it
    }
    throw CommError(std::string("recovery exchange receive failed: ") + err_code_name(dev.error),
                    partner_failed && dev.error == ErrCode::Timeout ? ErrCode::ProcFailed
                                                                    : dev.error);
  }
}

std::unique_ptr<Intracomm> Intracomm::Shrink() const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span span("Shrink", "coll");
  auto [locals, worlds] = survivors();
  const int my_world = group_.world_rank(Rank());
  if (std::find(worlds.begin(), worlds.end(), my_world) == worlds.end()) {
    return nullptr;  // the caller itself is marked failed
  }
  // Linear context agreement among survivors only, rooted at the lowest
  // surviving rank. The engine-direct exchange bypasses the revocation gate
  // so Shrink works on a revoked handle, and never addresses a dead rank.
  const int root_world = worlds.front();
  std::uint64_t agreed = 0;
  if (my_world == root_world) {
    agreed = static_cast<std::uint64_t>(world_->context_proposal());
    for (std::size_t i = 1; i < worlds.size(); ++i) {
      agreed = std::max(agreed, ft_recv_u64(worlds[i], CollTag::ShrinkProp));
    }
    for (std::size_t i = 1; i < worlds.size(); ++i) {
      ft_send_u64(worlds[i], CollTag::ShrinkAgree, agreed);
    }
  } else {
    ft_send_u64(root_world, CollTag::ShrinkProp,
                static_cast<std::uint64_t>(world_->context_proposal()));
    agreed = ft_recv_u64(root_world, CollTag::ShrinkAgree);
  }
  const int base = static_cast<int>(agreed);
  world_->raise_context_floor(base + 2);
  return std::make_unique<Intracomm>(world_, Group(std::move(worlds)), base, base + 1);
}

bool Intracomm::Agree(bool flag) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span span("Agree", "coll");
  auto [locals, worlds] = survivors();
  const int my_world = group_.world_rank(Rank());
  if (std::find(worlds.begin(), worlds.end(), my_world) == worlds.end()) return flag;
  const int root_world = worlds.front();
  if (my_world == root_world) {
    std::uint64_t conj = flag ? 1 : 0;
    for (std::size_t i = 1; i < worlds.size(); ++i) {
      conj &= ft_recv_u64(worlds[i], CollTag::AgreeGather);
    }
    for (std::size_t i = 1; i < worlds.size(); ++i) {
      ft_send_u64(worlds[i], CollTag::AgreeRelease, conj);
    }
    return conj != 0;
  }
  ft_send_u64(root_world, CollTag::AgreeGather, flag ? 1 : 0);
  return ft_recv_u64(root_world, CollTag::AgreeRelease) != 0;
}

}  // namespace mpcx
