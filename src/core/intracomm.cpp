#include "core/intracomm.hpp"

#include <algorithm>
#include <cstring>
#include <map>
#include <numeric>

#include "core/cartcomm.hpp"
#include "core/graphcomm.hpp"
#include "core/intercomm.hpp"
#include "core/world.hpp"
#include "prof/trace.hpp"
#include "support/error.hpp"

namespace mpcx {
namespace {

int coll_tag(CollTag tag) { return static_cast<int>(tag); }

const std::byte* cbyte(const void* buf, int offset, const DatatypePtr& type) {
  return static_cast<const std::byte*>(buf) +
         static_cast<std::ptrdiff_t>(offset) * static_cast<std::ptrdiff_t>(type->base_size());
}

std::byte* mbyte(void* buf, int offset, const DatatypePtr& type) {
  return static_cast<std::byte*>(buf) +
         static_cast<std::ptrdiff_t>(offset) * static_cast<std::ptrdiff_t>(type->base_size());
}

/// Offset (in base elements) of item slot `index` when items are
/// `count`-sized blocks of `type`.
int slot_offset(int base_offset, int index, int count, const DatatypePtr& type) {
  const std::size_t extent_elems = type->extent_bytes() / type->base_size();
  return base_offset + index * count * static_cast<int>(extent_elems);
}

int displ_offset(int base_offset, int displ, const DatatypePtr& type) {
  const std::size_t extent_elems = type->extent_bytes() / type->base_size();
  return base_offset + displ * static_cast<int>(extent_elems);
}

}  // namespace

void Intracomm::require_contiguous(const DatatypePtr& type, const char* op) {
  if (type->extent_bytes() != type->size_bytes()) {
    throw ArgumentError(std::string(op) +
                        ": reduction datatypes must be memory-contiguous "
                        "(primitive or contiguous derived)");
  }
}

// ---- barrier (dissemination) -------------------------------------------------------

void Intracomm::Barrier() const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Barrier(dissemination)", "coll");
  const int n = Size();
  const int rank = Rank();
  // Distinct bytes: the posted receive lands directly in `incoming` (zero-copy
  // path) while the send concurrently reads `outgoing` as a borrowed segment —
  // a single shared token would make the device write the byte mid-send.
  std::uint8_t outgoing = 1;
  std::uint8_t incoming = 0;
  for (int k = 1; k < n; k <<= 1) {
    const int to = (rank + k) % n;
    const int from = (rank - k + n) % n;
    Request recv = ctx_irecv(coll_context_, coll_tag(CollTag::Barrier), &incoming, 0, 1,
                             types::BYTE(), from);
    ctx_send(coll_context_, coll_tag(CollTag::Barrier), &outgoing, 0, 1, types::BYTE(), to);
    recv.Wait();
  }
}

// ---- broadcast (binomial tree) ------------------------------------------------------

void Intracomm::Bcast(void* buf, int offset, int count, const DatatypePtr& type, int root) const {
  validate(buf, count, type, "Bcast");
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Bcast(binomial)", "coll");
  const int n = Size();
  if (root < 0 || root >= n) throw ArgumentError("Bcast: bad root");
  if (n == 1) return;
  const int vrank = (Rank() - root + n) % n;

  int mask = 1;
  while (mask < n) {
    if (vrank & mask) {
      const int src = ((vrank - mask) + root) % n;
      ctx_recv(coll_context_, coll_tag(CollTag::Bcast), buf, offset, count, type, src);
      break;
    }
    mask <<= 1;
  }
  // After the loop, mask is the lowest set bit of vrank (or >= n for the
  // root); every child vrank+mask' for mask' < mask receives from us.
  mask >>= 1;
  while (mask > 0) {
    if (vrank + mask < n) {
      const int dst = ((vrank + mask) + root) % n;
      ctx_send(coll_context_, coll_tag(CollTag::Bcast), buf, offset, count, type, dst);
    }
    mask >>= 1;
  }
}

// ---- gather family --------------------------------------------------------------------

void Intracomm::Gather(const void* sendbuf, int sendoffset, int sendcount,
                       const DatatypePtr& sendtype, void* recvbuf, int recvoffset, int recvcount,
                       const DatatypePtr& recvtype, int root) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Gather(linear)", "coll");
  const int n = Size();
  const int rank = Rank();
  if (rank != root) {
    ctx_send(coll_context_, coll_tag(CollTag::Gather), sendbuf, sendoffset, sendcount, sendtype,
             root);
    return;
  }
  for (int src = 0; src < n; ++src) {
    const int slot = slot_offset(recvoffset, src, recvcount, recvtype);
    if (src == rank) {
      // Local copy through the pack/unpack machinery (honours datatypes).
      auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcount)));
      sendtype->pack(cbyte(sendbuf, sendoffset, sendtype), static_cast<std::size_t>(sendcount),
                     *tmp);
      tmp->commit();
      recvtype->unpack_available(*tmp, mbyte(recvbuf, slot, recvtype),
                                 static_cast<std::size_t>(recvcount));
      give_buffer(std::move(tmp));
    } else {
      ctx_recv(coll_context_, coll_tag(CollTag::Gather), recvbuf, slot, recvcount, recvtype, src);
    }
  }
}

void Intracomm::Gatherv(const void* sendbuf, int sendoffset, int sendcount,
                        const DatatypePtr& sendtype, void* recvbuf, int recvoffset,
                        std::span<const int> recvcounts, std::span<const int> displs,
                        const DatatypePtr& recvtype, int root) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Gatherv(linear)", "coll");
  const int n = Size();
  const int rank = Rank();
  if (rank != root) {
    ctx_send(coll_context_, coll_tag(CollTag::Gather), sendbuf, sendoffset, sendcount, sendtype,
             root);
    return;
  }
  if (static_cast<int>(recvcounts.size()) != n || static_cast<int>(displs.size()) != n) {
    throw ArgumentError("Gatherv: recvcounts/displs must have one entry per rank");
  }
  for (int src = 0; src < n; ++src) {
    const int slot = displ_offset(recvoffset, displs[src], recvtype);
    if (src == rank) {
      auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcount)));
      sendtype->pack(cbyte(sendbuf, sendoffset, sendtype), static_cast<std::size_t>(sendcount),
                     *tmp);
      tmp->commit();
      recvtype->unpack_available(*tmp, mbyte(recvbuf, slot, recvtype),
                                 static_cast<std::size_t>(recvcounts[src]));
      give_buffer(std::move(tmp));
    } else {
      ctx_recv(coll_context_, coll_tag(CollTag::Gather), recvbuf, slot, recvcounts[src], recvtype,
               src);
    }
  }
}

void Intracomm::Scatter(const void* sendbuf, int sendoffset, int sendcount,
                        const DatatypePtr& sendtype, void* recvbuf, int recvoffset, int recvcount,
                        const DatatypePtr& recvtype, int root) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Scatter(linear)", "coll");
  const int n = Size();
  const int rank = Rank();
  if (rank != root) {
    ctx_recv(coll_context_, coll_tag(CollTag::Scatter), recvbuf, recvoffset, recvcount, recvtype,
             root);
    return;
  }
  for (int dst = 0; dst < n; ++dst) {
    const int slot = slot_offset(sendoffset, dst, sendcount, sendtype);
    if (dst == rank) {
      auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcount)));
      sendtype->pack(cbyte(sendbuf, slot, sendtype), static_cast<std::size_t>(sendcount), *tmp);
      tmp->commit();
      recvtype->unpack_available(*tmp, mbyte(recvbuf, recvoffset, recvtype),
                                 static_cast<std::size_t>(recvcount));
      give_buffer(std::move(tmp));
    } else {
      ctx_send(coll_context_, coll_tag(CollTag::Scatter), sendbuf, slot, sendcount, sendtype, dst);
    }
  }
}

void Intracomm::Scatterv(const void* sendbuf, int sendoffset, std::span<const int> sendcounts,
                         std::span<const int> displs, const DatatypePtr& sendtype, void* recvbuf,
                         int recvoffset, int recvcount, const DatatypePtr& recvtype,
                         int root) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Scatterv(linear)", "coll");
  const int n = Size();
  const int rank = Rank();
  if (rank != root) {
    ctx_recv(coll_context_, coll_tag(CollTag::Scatter), recvbuf, recvoffset, recvcount, recvtype,
             root);
    return;
  }
  if (static_cast<int>(sendcounts.size()) != n || static_cast<int>(displs.size()) != n) {
    throw ArgumentError("Scatterv: sendcounts/displs must have one entry per rank");
  }
  for (int dst = 0; dst < n; ++dst) {
    const int slot = displ_offset(sendoffset, displs[dst], sendtype);
    if (dst == rank) {
      auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcounts[dst])));
      sendtype->pack(cbyte(sendbuf, slot, sendtype), static_cast<std::size_t>(sendcounts[dst]),
                     *tmp);
      tmp->commit();
      recvtype->unpack_available(*tmp, mbyte(recvbuf, recvoffset, recvtype),
                                 static_cast<std::size_t>(recvcount));
      give_buffer(std::move(tmp));
    } else {
      ctx_send(coll_context_, coll_tag(CollTag::Scatter), sendbuf, slot, sendcounts[dst], sendtype,
               dst);
    }
  }
}

// ---- allgather (ring) --------------------------------------------------------------------

void Intracomm::Allgather(const void* sendbuf, int sendoffset, int sendcount,
                          const DatatypePtr& sendtype, void* recvbuf, int recvoffset,
                          int recvcount, const DatatypePtr& recvtype) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Allgather(ring)", "coll");
  const int n = Size();
  const int rank = Rank();
  // Place own contribution.
  {
    auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcount)));
    sendtype->pack(cbyte(sendbuf, sendoffset, sendtype), static_cast<std::size_t>(sendcount),
                   *tmp);
    tmp->commit();
    recvtype->unpack_available(*tmp,
                               mbyte(recvbuf, slot_offset(recvoffset, rank, recvcount, recvtype),
                                     recvtype),
                               static_cast<std::size_t>(recvcount));
    give_buffer(std::move(tmp));
  }
  const int right = (rank + 1) % n;
  const int left = (rank - 1 + n) % n;
  for (int step = 1; step < n; ++step) {
    const int send_idx = (rank - step + 1 + n) % n;
    const int recv_idx = (rank - step + n) % n;
    Request send = ctx_isend(coll_context_, coll_tag(CollTag::Allgather), recvbuf,
                             slot_offset(recvoffset, send_idx, recvcount, recvtype), recvcount,
                             recvtype, right);
    ctx_recv(coll_context_, coll_tag(CollTag::Allgather), recvbuf,
             slot_offset(recvoffset, recv_idx, recvcount, recvtype), recvcount, recvtype, left);
    send.Wait();
  }
}

void Intracomm::Allgatherv(const void* sendbuf, int sendoffset, int sendcount,
                           const DatatypePtr& sendtype, void* recvbuf, int recvoffset,
                           std::span<const int> recvcounts, std::span<const int> displs,
                           const DatatypePtr& recvtype) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Allgatherv(ring)", "coll");
  const int n = Size();
  const int rank = Rank();
  {
    auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcount)));
    sendtype->pack(cbyte(sendbuf, sendoffset, sendtype), static_cast<std::size_t>(sendcount),
                   *tmp);
    tmp->commit();
    recvtype->unpack_available(
        *tmp, mbyte(recvbuf, displ_offset(recvoffset, displs[rank], recvtype), recvtype),
        static_cast<std::size_t>(recvcounts[rank]));
    give_buffer(std::move(tmp));
  }
  const int right = (rank + 1) % n;
  const int left = (rank - 1 + n) % n;
  for (int step = 1; step < n; ++step) {
    const int send_idx = (rank - step + 1 + n) % n;
    const int recv_idx = (rank - step + n) % n;
    Request send = ctx_isend(coll_context_, coll_tag(CollTag::Allgather), recvbuf,
                             displ_offset(recvoffset, displs[send_idx], recvtype),
                             recvcounts[send_idx], recvtype, right);
    ctx_recv(coll_context_, coll_tag(CollTag::Allgather), recvbuf,
             displ_offset(recvoffset, displs[recv_idx], recvtype), recvcounts[recv_idx], recvtype,
             left);
    send.Wait();
  }
}

// ---- alltoall (pairwise) --------------------------------------------------------------------

void Intracomm::Alltoall(const void* sendbuf, int sendoffset, int sendcount,
                         const DatatypePtr& sendtype, void* recvbuf, int recvoffset,
                         int recvcount, const DatatypePtr& recvtype) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Alltoall(pairwise)", "coll");
  const int n = Size();
  const int rank = Rank();
  for (int step = 0; step < n; ++step) {
    const int dst = (rank + step) % n;
    const int src = (rank - step + n) % n;
    const int send_slot = slot_offset(sendoffset, dst, sendcount, sendtype);
    const int recv_slot = slot_offset(recvoffset, src, recvcount, recvtype);
    if (step == 0) {
      auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcount)));
      sendtype->pack(cbyte(sendbuf, send_slot, sendtype), static_cast<std::size_t>(sendcount),
                     *tmp);
      tmp->commit();
      recvtype->unpack_available(*tmp, mbyte(recvbuf, recv_slot, recvtype),
                                 static_cast<std::size_t>(recvcount));
      give_buffer(std::move(tmp));
      continue;
    }
    Request send = ctx_isend(coll_context_, coll_tag(CollTag::Alltoall), sendbuf, send_slot,
                             sendcount, sendtype, dst);
    ctx_recv(coll_context_, coll_tag(CollTag::Alltoall), recvbuf, recv_slot, recvcount, recvtype,
             src);
    send.Wait();
  }
}

void Intracomm::Alltoallv(const void* sendbuf, int sendoffset, std::span<const int> sendcounts,
                          std::span<const int> sdispls, const DatatypePtr& sendtype,
                          void* recvbuf, int recvoffset, std::span<const int> recvcounts,
                          std::span<const int> rdispls, const DatatypePtr& recvtype) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Alltoallv(pairwise)", "coll");
  const int n = Size();
  const int rank = Rank();
  for (int step = 0; step < n; ++step) {
    const int dst = (rank + step) % n;
    const int src = (rank - step + n) % n;
    const int send_slot = displ_offset(sendoffset, sdispls[dst], sendtype);
    const int recv_slot = displ_offset(recvoffset, rdispls[src], recvtype);
    if (step == 0) {
      auto tmp = take_buffer(sendtype->packed_bound(static_cast<std::size_t>(sendcounts[dst])));
      sendtype->pack(cbyte(sendbuf, send_slot, sendtype),
                     static_cast<std::size_t>(sendcounts[dst]), *tmp);
      tmp->commit();
      recvtype->unpack_available(*tmp, mbyte(recvbuf, recv_slot, recvtype),
                                 static_cast<std::size_t>(recvcounts[src]));
      give_buffer(std::move(tmp));
      continue;
    }
    Request send = ctx_isend(coll_context_, coll_tag(CollTag::Alltoall), sendbuf, send_slot,
                             sendcounts[dst], sendtype, dst);
    ctx_recv(coll_context_, coll_tag(CollTag::Alltoall), recvbuf, recv_slot, recvcounts[src],
             recvtype, src);
    send.Wait();
  }
}

// ---- reductions --------------------------------------------------------------------------------

void Intracomm::reduce_elements(const void* sendbuf, void* recvbuf, std::size_t elements,
                                buf::TypeCode code, const Op& op, int root) const {
  const int n = Size();
  const int rank = Rank();
  const std::size_t elsize = buf::type_code_size(code);
  const std::size_t bytes = elements * elsize;
  const DatatypePtr wire = types::BYTE();

  std::vector<std::byte> acc(bytes);
  std::memcpy(acc.data(), sendbuf, bytes);

  if (op.is_commutative()) {
    // Binomial tree rooted at `root`.
    const int vrank = (rank - root + n) % n;
    std::vector<std::byte> incoming(bytes);
    int mask = 1;
    while (mask < n) {
      if (vrank & mask) {
        const int dst = ((vrank - mask) + root) % n;
        ctx_send(coll_context_, coll_tag(CollTag::Reduce), acc.data(), 0,
                 static_cast<int>(bytes), wire, dst);
        break;
      }
      const int src_vrank = vrank + mask;
      if (src_vrank < n) {
        const int src = (src_vrank + root) % n;
        ctx_recv(coll_context_, coll_tag(CollTag::Reduce), incoming.data(), 0,
                 static_cast<int>(bytes), wire, src);
        op.apply(code, incoming.data(), acc.data(), elements);
      }
      mask <<= 1;
    }
  } else {
    // Non-commutative: linear fold in canonical rank order at the root.
    if (rank == root) {
      std::vector<std::byte> incoming(bytes);
      std::vector<std::byte> folded(bytes);
      bool first = true;
      for (int src = 0; src < n; ++src) {
        const std::byte* contribution;
        if (src == rank) {
          contribution = acc.data();
        } else {
          ctx_recv(coll_context_, coll_tag(CollTag::Reduce), incoming.data(), 0,
                   static_cast<int>(bytes), wire, src);
          contribution = incoming.data();
        }
        if (first) {
          std::memcpy(folded.data(), contribution, bytes);
          first = false;
        } else {
          op.apply(code, contribution, folded.data(), elements);
        }
      }
      acc = std::move(folded);
    } else {
      ctx_send(coll_context_, coll_tag(CollTag::Reduce), acc.data(), 0, static_cast<int>(bytes),
               wire, root);
    }
  }

  if (rank == root) std::memcpy(recvbuf, acc.data(), bytes);
}

void Intracomm::Reduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                       int count, const DatatypePtr& type, const Op& op, int root) const {
  validate(sendbuf, count, type, "Reduce");
  require_contiguous(type, "Reduce");
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span(op.is_commutative() ? "Reduce(binomial)" : "Reduce(linear)", "coll");
  const std::size_t elements = static_cast<std::size_t>(count) * type->size_elements();
  reduce_elements(cbyte(sendbuf, sendoffset, type),
                  Rank() == root ? mbyte(recvbuf, recvoffset, type) : nullptr, elements,
                  type->base(), op, root);
}

void Intracomm::Allreduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                          int count, const DatatypePtr& type, const Op& op) const {
  validate(sendbuf, count, type, "Allreduce");
  require_contiguous(type, "Allreduce");
  const int n = Size();
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span(op.is_commutative() && n > 1 && (n & (n - 1)) == 0
                           ? "Allreduce(recursive-doubling)"
                           : "Allreduce(reduce+bcast)",
                       "coll");
  // Recursive doubling for commutative ops on power-of-two sizes
  // (log2(n) rounds instead of reduce+bcast's 2*log2(n));
  // otherwise reduce to rank 0 and broadcast.
  if (op.is_commutative() && n > 1 && (n & (n - 1)) == 0) {
    const std::size_t elements = static_cast<std::size_t>(count) * type->size_elements();
    const std::size_t bytes = elements * type->base_size();
    std::byte* acc = mbyte(recvbuf, recvoffset, type);
    std::memcpy(acc, cbyte(sendbuf, sendoffset, type), bytes);
    std::vector<std::byte> incoming(bytes);
    const DatatypePtr wire = types::BYTE();
    const int rank = Rank();
    for (int mask = 1; mask < n; mask <<= 1) {
      const int partner = rank ^ mask;
      Request send = ctx_isend(coll_context_, coll_tag(CollTag::Reduce), acc, 0,
                               static_cast<int>(bytes), wire, partner);
      ctx_recv(coll_context_, coll_tag(CollTag::Reduce), incoming.data(), 0,
               static_cast<int>(bytes), wire, partner);
      send.Wait();
      op.apply(type->base(), incoming.data(), acc, elements);
    }
    return;
  }
  Reduce(sendbuf, sendoffset, recvbuf, recvoffset, count, type, op, 0);
  Bcast(recvbuf, recvoffset, count, type, 0);
}

void Intracomm::Reduce_scatter(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                               std::span<const int> recvcounts, const DatatypePtr& type,
                               const Op& op) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Reduce_scatter(reduce+scatterv)", "coll");
  const int n = Size();
  if (static_cast<int>(recvcounts.size()) != n) {
    throw ArgumentError("Reduce_scatter: recvcounts must have one entry per rank");
  }
  require_contiguous(type, "Reduce_scatter");
  const int total = std::accumulate(recvcounts.begin(), recvcounts.end(), 0);
  std::vector<std::byte> full(static_cast<std::size_t>(total) * type->size_bytes());
  Reduce(sendbuf, sendoffset, full.data(), 0, total, type, op, 0);
  std::vector<int> displs(static_cast<std::size_t>(n), 0);
  for (int i = 1; i < n; ++i) displs[static_cast<std::size_t>(i)] = displs[i - 1] + recvcounts[i - 1];
  Scatterv(full.data(), 0, recvcounts, displs, type, recvbuf, recvoffset, recvcounts[Rank()],
           type, 0);
}

void Intracomm::Scan(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                     int count, const DatatypePtr& type, const Op& op) const {
  world_->counters().add(prof::Ctr::CollectiveCalls);
  prof::Span coll_span("Scan(linear)", "coll");
  validate(sendbuf, count, type, "Scan");
  require_contiguous(type, "Scan");
  const int n = Size();
  const int rank = Rank();
  const std::size_t elements = static_cast<std::size_t>(count) * type->size_elements();
  const std::size_t bytes = elements * type->base_size();
  const DatatypePtr wire = types::BYTE();

  std::byte* result = mbyte(recvbuf, recvoffset, type);
  std::memcpy(result, cbyte(sendbuf, sendoffset, type), bytes);
  if (rank > 0) {
    // Receive prefix over ranks 0..rank-1 and fold own contribution after it.
    std::vector<std::byte> prefix(bytes);
    ctx_recv(coll_context_, coll_tag(CollTag::Scan), prefix.data(), 0, static_cast<int>(bytes),
             wire, rank - 1);
    op.apply(type->base(), result, prefix.data(), elements);  // prefix ∘ own
    std::memcpy(result, prefix.data(), bytes);
  }
  if (rank + 1 < n) {
    ctx_send(coll_context_, coll_tag(CollTag::Scan), result, 0, static_cast<int>(bytes), wire,
             rank + 1);
  }
}

// ---- communicator construction ---------------------------------------------------------------

int Intracomm::agree_contexts(int groups) const {
  int proposal = world_->context_proposal();
  int agreed = 0;
  Allreduce(&proposal, 0, &agreed, 0, 1, types::INT(), ops::MAX());
  world_->raise_context_floor(agreed + 2 * groups);
  return agreed;
}

std::unique_ptr<Intracomm> Intracomm::Dup() const {
  const int base = agree_contexts(1);
  return std::make_unique<Intracomm>(world_, group_, base, base + 1);
}

std::unique_ptr<Intracomm> Intracomm::Create(const Group& new_group) const {
  const int base = agree_contexts(1);
  if (!new_group.contains_world(world_->Rank())) return nullptr;
  return std::make_unique<Intracomm>(world_, new_group, base, base + 1);
}

std::unique_ptr<Intracomm> Intracomm::Split(int color, int key) const {
  const int n = Size();
  const int rank = Rank();
  // Gather (color, key) from everyone.
  std::vector<int> mine = {color, key};
  std::vector<int> all(static_cast<std::size_t>(n) * 2);
  Allgather(mine.data(), 0, 2, types::INT(), all.data(), 0, 2, types::INT());

  const int base = agree_contexts(1);  // disjoint groups may share contexts
  if (color == UNDEFINED) return nullptr;

  // Members of my color, ordered by (key, parent rank).
  std::vector<std::pair<int, int>> members;  // (key, parent rank)
  for (int r = 0; r < n; ++r) {
    if (all[static_cast<std::size_t>(r) * 2] == color) {
      members.emplace_back(all[static_cast<std::size_t>(r) * 2 + 1], r);
    }
  }
  std::sort(members.begin(), members.end());
  std::vector<int> world_ranks;
  world_ranks.reserve(members.size());
  for (const auto& [k, r] : members) world_ranks.push_back(group_.world_rank(r));
  (void)rank;
  return std::make_unique<Intracomm>(world_, Group(std::move(world_ranks)), base, base + 1);
}

std::unique_ptr<Cartcomm> Intracomm::Create_cart(std::span<const int> dims,
                                                 std::span<const bool> periods,
                                                 bool /*reorder*/) const {
  if (dims.size() != periods.size()) {
    throw ArgumentError("Create_cart: dims/periods size mismatch");
  }
  int nodes = 1;
  for (const int d : dims) {
    if (d <= 0) throw ArgumentError("Create_cart: dimensions must be positive");
    nodes *= d;
  }
  if (nodes > Size()) throw ArgumentError("Create_cart: grid larger than communicator");
  const int base = agree_contexts(1);
  if (Rank() >= nodes) return nullptr;
  std::vector<int> world_ranks;
  world_ranks.reserve(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) world_ranks.push_back(group_.world_rank(r));
  return std::make_unique<Cartcomm>(world_, Group(std::move(world_ranks)), base, base + 1,
                                    std::vector<int>(dims.begin(), dims.end()),
                                    std::vector<bool>(periods.begin(), periods.end()));
}

std::unique_ptr<Graphcomm> Intracomm::Create_graph(std::span<const int> index,
                                                   std::span<const int> edges,
                                                   bool /*reorder*/) const {
  const int nodes = static_cast<int>(index.size());
  if (nodes > Size()) throw ArgumentError("Create_graph: more nodes than processes");
  const int base = agree_contexts(1);
  if (Rank() >= nodes) return nullptr;
  std::vector<int> world_ranks;
  world_ranks.reserve(static_cast<std::size_t>(nodes));
  for (int r = 0; r < nodes; ++r) world_ranks.push_back(group_.world_rank(r));
  return std::make_unique<Graphcomm>(world_, Group(std::move(world_ranks)), base, base + 1,
                                     std::vector<int>(index.begin(), index.end()),
                                     std::vector<int>(edges.begin(), edges.end()));
}

std::unique_ptr<Intercomm> Intracomm::Create_intercomm(int local_leader, const Comm& peer_comm,
                                                       int remote_leader, int tag) const {
  const int rank = Rank();

  // Local context proposal, agreed within the local side first.
  int proposal = world_->context_proposal();
  int local_max = 0;
  Allreduce(&proposal, 0, &local_max, 0, 1, types::INT(), ops::MAX());

  // Leaders exchange (context proposal, group membership) through peer_comm.
  int agreed = local_max;
  std::vector<int> remote_ranks;
  if (rank == local_leader) {
    struct Handshake {
      int context;
      std::vector<int> ranks;
      void serialize(buf::ByteSink& sink) const {
        sink.put<std::int32_t>(context);
        buf::encode_value(sink, ranks);
      }
      static Handshake deserialize(buf::ByteSource& source) {
        Handshake h;
        h.context = source.get<std::int32_t>();
        h.ranks = buf::decode_value<std::vector<int>>(source);
        return h;
      }
    };
    const Handshake ours{local_max, group_.world_ranks()};
    // Order the exchange by world rank so both leaders can use blocking
    // object sends without risk of a rendezvous cycle.
    if (group_.world_rank(rank) < peer_comm.group().world_rank(remote_leader)) {
      peer_comm.send_object(ours, remote_leader, tag);
      const Handshake theirs = peer_comm.recv_object<Handshake>(remote_leader, tag);
      agreed = std::max(local_max, theirs.context);
      remote_ranks = theirs.ranks;
    } else {
      const Handshake theirs = peer_comm.recv_object<Handshake>(remote_leader, tag);
      peer_comm.send_object(ours, remote_leader, tag);
      agreed = std::max(local_max, theirs.context);
      remote_ranks = theirs.ranks;
    }
  }

  // Leaders broadcast the agreed context and the remote group locally.
  Bcast(&agreed, 0, 1, types::INT(), local_leader);
  int remote_size = static_cast<int>(remote_ranks.size());
  Bcast(&remote_size, 0, 1, types::INT(), local_leader);
  remote_ranks.resize(static_cast<std::size_t>(remote_size));
  if (remote_size > 0) {
    Bcast(remote_ranks.data(), 0, remote_size, types::INT(), local_leader);
  }
  world_->raise_context_floor(agreed + 2);

  return std::make_unique<Intercomm>(world_, group_, Group(std::move(remote_ranks)), agreed,
                                     agreed + 1);
}

}  // namespace mpcx
