// World — per-process MPCX environment (the analog of mpiJava's MPI class
// plus MPJ Express's per-process runtime state).
//
// One World object exists per MPI process. Because the in-process cluster
// harness runs many "processes" (ranks) inside one OS process, World is an
// object rather than process-global static state; each rank's threads share
// that rank's World.
//
// Responsibilities:
//   * owns the mpdev Engine (which owns the xdev device);
//   * provides COMM_WORLD;
//   * allocates context ids for new communicators;
//   * pools bufx buffers sized with the device's send overhead;
//   * implements Bsend buffer accounting (Buffer_attach/detach);
//   * reports the thread level (always THREAD_MULTIPLE, Sec. IV-B).
#pragma once

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "bufx/buffer_pool.hpp"
#include "core/types.hpp"
#include "mpdev/engine.hpp"
#include "prof/counters.hpp"
#include "prof/pvars.hpp"

namespace mpcx {

namespace net {
class Socket;
}

class CollState;
class Intracomm;

class World {
 public:
  /// Bootstrap with the named device ("tcpdev" / "mxdev") and a world
  /// layout (the paper's MPI.Init; see cluster::launch and the runtime for
  /// how configs are produced).
  World(const std::string& device_name, const xdev::DeviceConfig& config);

  /// Bootstrap from MPCX_* environment variables set by the mpcxrun
  /// launcher (multi-process mode).
  static std::unique_ptr<World> from_env();

  ~World();

  World(const World&) = delete;
  World& operator=(const World&) = delete;

  /// The world communicator (analog of MPI.COMM_WORLD).
  Intracomm& COMM_WORLD() { return *comm_world_; }

  int Rank() const { return engine_.rank(); }
  int Size() const { return engine_.size(); }

  /// MPI-2 thread environment. MPCX always provides THREAD_MULTIPLE — the
  /// paper's headline property ("MPJ Express runs with level
  /// MPI_THREAD_MULTIPLE by default").
  ThreadLevel Init_thread(ThreadLevel /*required*/) { return ThreadLevel::Multiple; }
  ThreadLevel Query_thread() const { return ThreadLevel::Multiple; }

  /// Collective shutdown: barrier over COMM_WORLD, then device teardown.
  void Finalize();

  /// Emergency shutdown (MPI Abort): best-effort notify the runtime daemon
  /// named by MPCX_DAEMON (host:port) so it kills sibling ranks, then
  /// _Exit(errorcode) without running the collective teardown.
  [[noreturn]] void Abort(int errorcode);

  /// Wall-clock seconds since an arbitrary epoch (MPI.Wtime analog).
  static double Wtime();

  /// Resolution of Wtime in seconds (MPI.Wtick analog).
  static double Wtick();

  /// Host name of this process's node (MPI.Get_processor_name analog).
  static std::string Get_processor_name();

  bool finalized() const { return finalized_; }

  mpdev::Engine& engine() { return engine_; }

  /// This process's core-layer profiling counters (pack/unpack, collectives,
  /// pool traffic). Device-layer counters live on engine().device().
  prof::Counters& counters() { return *counters_; }

  /// This rank's core-layer pvar set (MPI_T analog; carries the
  /// inflight_scheds gauge). Device-layer sets register themselves under
  /// their own labels in prof::PvarRegistry::global().
  prof::PvarSet& pvars() { return *pvars_; }

  // ---- buffer pool ----------------------------------------------------------

  std::unique_ptr<buf::Buffer> take_buffer(std::size_t min_capacity) {
    return pool_.get(min_capacity);
  }
  void give_buffer(std::unique_ptr<buf::Buffer> buffer) { pool_.put(std::move(buffer)); }

  // ---- context allocation ------------------------------------------------------

  /// This process's next free context id (agreement happens collectively in
  /// Intracomm::agree_contexts).
  int context_proposal() const { return next_context_.load(); }
  /// Raise the local floor after a collective agreement.
  void raise_context_floor(int value);

  // ---- Bsend buffer accounting ----------------------------------------------------

  /// Attach `bytes` of buffered-send space (MPI Buffer_attach).
  void Buffer_attach(std::size_t bytes);

  /// Detach: waits for outstanding buffered sends, returns the size.
  std::size_t Buffer_detach();

  /// Claim `bytes` for a buffered send; registers the in-flight request.
  /// Throws CommError if the attached space is exhausted.
  void bsend_reserve(std::size_t bytes, mpdev::Request request,
                     std::unique_ptr<buf::Buffer> storage);

  // ---- nonblocking-collective registry ----------------------------------------
  //
  // Every launched collective schedule is registered here until drained, so
  // (a) any thread touching any request can advance every in-flight
  // collective (progress_nb_collectives is called from the Request
  // Wait/Test family and from the mpdev Waitany path), and (b) schedule
  // scratch outlives posted device operations even if the user drops the
  // Request early.

  // ---- fault tolerance (ULFM-lite; see docs/ROBUSTNESS.md) ---------------------
  //
  // With MPCX_FT=1 and MPCX_DAEMON set, a listener thread subscribes to the
  // runtime daemon's rank-failure events (the daemon's reaper notices a dead
  // child within MPCX_HEARTBEAT_MS and pushes a RankFailed frame). Each
  // event lands here as mark_rank_failed, which records the rank and tells
  // the device to error every operation pinned to it (ProcFailed), so
  // blocked collectives surface the failure instead of hanging. Tests and
  // alternative detectors may call mark_rank_failed directly.

  /// Declare a world rank dead. Idempotent; ignores self/out-of-range.
  void mark_rank_failed(int rank);

  /// World ranks declared failed so far, ascending.
  std::vector<int> failed_ranks() const;

  /// True once any rank has been declared failed.
  bool any_rank_failed() const;

  void register_nb_coll(std::shared_ptr<CollState> state);

  /// Try-progress every registered schedule (non-blocking: schedules whose
  /// lock is held are skipped) and drop the drained ones. Reentrancy-safe
  /// and a single relaxed load when nothing is in flight.
  void progress_nb_collectives();

 private:
  void reap_bsends_locked();
  void start_metrics_thread();
  void stop_metrics_thread();
  void start_ft_listener();
  void stop_ft_listener();

  mpdev::Engine engine_;
  std::shared_ptr<prof::Counters> counters_;
  std::shared_ptr<prof::PvarSet> pvars_;
  buf::BufferPool pool_;
  std::unique_ptr<Intracomm> comm_world_;
  std::atomic<int> next_context_{2};  // contexts 0/1 belong to COMM_WORLD
  bool finalized_ = false;

  struct BsendEntry {
    mpdev::Request request;
    std::unique_ptr<buf::Buffer> storage;
    std::size_t bytes = 0;
  };
  std::mutex bsend_mu_;
  std::size_t bsend_capacity_ = 0;
  std::size_t bsend_used_ = 0;
  std::vector<BsendEntry> bsend_inflight_;

  std::mutex nbcoll_mu_;
  std::atomic<std::size_t> nbcoll_count_{0};
  std::vector<std::shared_ptr<CollState>> nbcoll_inflight_;

  // MPCX_METRICS_MS periodic pvar-snapshot thread (JSONL, one line per tick).
  std::thread metrics_thread_;
  std::mutex metrics_mu_;
  std::condition_variable metrics_cv_;
  bool metrics_stop_ = false;

  // MPCX_FT=1 failure-detector state: the daemon-subscription thread and the
  // set of world ranks declared dead (fed by it or by mark_rank_failed).
  std::thread ft_thread_;
  mutable std::mutex ft_mu_;
  std::shared_ptr<net::Socket> ft_socket_;  ///< subscription channel to the daemon
  std::set<int> failed_ranks_;
};

}  // namespace mpcx
