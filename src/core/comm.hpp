// Comm — communicator base class (mpiJava Comm analog).
//
// Provides the full point-to-point surface of the mpiJava 1.2 spec: the
// four send modes (standard, synchronous, buffered, ready), blocking and
// non-blocking variants, wildcards (ANY_SOURCE / ANY_TAG), Probe/Iprobe,
// Sendrecv, persistent requests, and serialized-object transport via the
// buffer's dynamic section.
//
// Every communicator owns two context ids: one for point-to-point traffic
// and one for collectives, so user messages can never match internal
// collective messages. Ranks in the public API are communicator-local; the
// Group maps them onto world ranks understood by the mpdev engine.
//
// All operations are thread-safe (MPI_THREAD_MULTIPLE) — thread safety is
// inherited from the device layer exactly as in the paper.
#pragma once

#include <any>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <span>

#include "core/datatype.hpp"
#include "core/group.hpp"
#include "core/request.hpp"
#include "core/status.hpp"
#include "core/topo.hpp"
#include "core/types.hpp"
#include "mpdev/engine.hpp"

namespace mpcx {

class World;

/// Per-communicator error-handling policy (MPI errhandler analog).
///
///   ErrorsAreFatal — log the failure and Abort() the whole job (MPI's
///                    MPI_ERRORS_ARE_FATAL);
///   ErrorsReturn   — complete the operation normally; the failure is
///                    reported only through Status::Get_error() (MPI's
///                    MPI_ERRORS_RETURN, adapted to a Status-returning API);
///   ErrorsThrow    — throw CommError carrying the ErrCode (the natural C++
///                    policy, and MPCX's DEFAULT — unlike MPI, whose default
///                    is fatal — so existing exception-based code keeps
///                    working and tests can catch failures).
enum class Errhandler { ErrorsAreFatal, ErrorsReturn, ErrorsThrow };

inline constexpr Errhandler ERRORS_ARE_FATAL = Errhandler::ErrorsAreFatal;
inline constexpr Errhandler ERRORS_RETURN = Errhandler::ErrorsReturn;
inline constexpr Errhandler ERRORS_THROW = Errhandler::ErrorsThrow;

class Comm {
 public:
  virtual ~Comm() = default;

  /// Rank of the calling process in this communicator.
  int Rank() const { return local_rank_; }

  /// Number of processes in this communicator's (local) group.
  int Size() const { return group_.Size(); }

  /// The communicator's local group.
  const Group& group() const { return group_; }

  World& world() const { return *world_; }

  /// Context ids (introspection; useful for debugging and internal reuse).
  int ptp_context() const { return ptp_context_; }
  int coll_context() const { return coll_context_; }

  // ---- error handling --------------------------------------------------------

  /// Install the error-handling policy for operations on this communicator
  /// (MPI Comm.Set_errhandler / Errhandler_set analog).
  void Set_errhandler(Errhandler handler) {
    errhandler_.store(handler, std::memory_order_relaxed);
  }
  Errhandler Get_errhandler() const { return errhandler_.load(std::memory_order_relaxed); }

  /// Terminate the whole job (MPI Comm.Abort analog): notifies the runtime
  /// daemon (MPCX_DAEMON) so sibling ranks are killed too, then exits this
  /// process with `errorcode`.
  [[noreturn]] void Abort(int errorcode) const;

  // ---- fault tolerance (ULFM-lite; see docs/ROBUSTNESS.md) ---------------------

  /// Mark this communicator revoked (MPI_Comm_revoke analog, local-only in
  /// this lite rendering: each survivor revokes its own handle after
  /// observing a failure). Every subsequent point-to-point or collective
  /// operation on it throws CommError(ErrCode::Revoked); Shrink and Agree
  /// keep working so survivors can rebuild.
  void Revoke();
  bool revoked() const { return revoked_.load(std::memory_order_acquire); }

  // ---- blocking point-to-point ---------------------------------------------

  /// Standard-mode send of `count` items of `type`, starting `offset` base
  /// elements into `buf` (mpiJava signature).
  void Send(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
            int tag) const;

  /// Synchronous-mode send: returns only once the receive is matched.
  void Ssend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
             int tag) const;

  /// Buffered-mode send: completes locally using attached buffer space
  /// (World::Buffer_attach).
  void Bsend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
             int tag) const;

  /// Ready-mode send: caller asserts a matching receive is posted. MPCX,
  /// like many MPI implementations, maps it to a standard send.
  void Rsend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
             int tag) const;

  /// Blocking receive. source may be ANY_SOURCE, tag may be ANY_TAG.
  Status Recv(void* buf, int offset, int count, const DatatypePtr& type, int source,
              int tag) const;

  // ---- non-blocking point-to-point ---------------------------------------------

  /// Non-blocking standard-mode send. For contiguous datatypes this takes
  /// the zero-copy fast path: no packing copy is made, and `buf` is
  /// BORROWED — it must stay valid and unmodified until the request
  /// completes (Wait/Test). Non-contiguous datatypes are packed into a
  /// library buffer at the call, as before.
  Request Isend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                int tag) const;
  Request Issend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                 int tag) const;
  Request Ibsend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                 int tag) const;
  Request Irsend(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                 int tag) const;
  Request Irecv(void* buf, int offset, int count, const DatatypePtr& type, int source,
                int tag) const;

  // ---- persistent requests --------------------------------------------------------

  Prequest Send_init(const void* buf, int offset, int count, const DatatypePtr& type, int dest,
                     int tag) const;
  Prequest Recv_init(void* buf, int offset, int count, const DatatypePtr& type, int source,
                     int tag) const;

  // ---- probe -------------------------------------------------------------------

  /// Block until a matching message is available (not consumed).
  Status Probe(int source, int tag) const;

  /// Non-blocking probe.
  std::optional<Status> Iprobe(int source, int tag) const;

  // ---- combined ------------------------------------------------------------------

  Status Sendrecv(const void* sendbuf, int sendoffset, int sendcount, const DatatypePtr& sendtype,
                  int dest, int sendtag, void* recvbuf, int recvoffset, int recvcount,
                  const DatatypePtr& recvtype, int source, int recvtag) const;

  Status Sendrecv_replace(void* buf, int offset, int count, const DatatypePtr& type, int dest,
                          int sendtag, int source, int recvtag) const;

  // ---- serialized-object transport (dynamic section; the analog of
  // mpiJava's MPI.OBJECT datatype over JDK serialization) -----------------------

  template <typename T>
  void send_object(const T& value, int dest, int tag) const {
    auto buffer = take_buffer(0);
    buffer->write_object(value);
    buffer->commit();
    mpdev::Request request = engine().isend(*buffer, world_dest(dest), tag, ptp_context_);
    const mpdev::Status dev = request.wait();
    reclaim_buffer(request, std::move(buffer));
    if (dev.error != ErrCode::Success) {
      handle_error(dev.error, std::string("send_object failed: ") + err_code_name(dev.error));
    }
  }

  template <typename T>
  T recv_object(int source, int tag, Status* status_out = nullptr) const {
    auto buffer = take_buffer(0);
    mpdev::Request request = engine().irecv(*buffer, world_source(source), tag, ptp_context_);
    const mpdev::Status dev = request.wait();
    if (dev.truncated || dev.error != ErrCode::Success) {
      reclaim_buffer(request, std::move(buffer));
      const ErrCode code = dev.error != ErrCode::Success ? dev.error : ErrCode::Truncate;
      handle_error(code, std::string("recv_object: ") + err_code_name(code));
      // ERRORS_RETURN cannot apply here: there is no value to hand back, so
      // the failure must still propagate as an exception.
      throw CommError(std::string("recv_object: ") + err_code_name(code), code);
    }
    T value = buffer->read_object<T>();
    if (status_out != nullptr) *status_out = to_local_status(dev);
    reclaim_buffer(request, std::move(buffer));
    return value;
  }

  // ---- direct-buffer extension -------------------------------------------------
  //
  // The paper's future-work proposal (Sec. VI): "the overhead associated
  // with MPJ Express pure Java devices ... can potentially be resolved by
  // extending the MPJ API to allow communicating data to and from
  // ByteBuffers." These methods do exactly that: the application packs a
  // device-ready buffer ONCE (obtained from make_buffer(), which carries
  // the device's header reserve) and the library adds no further copy —
  // the mpjdev-level fast path, measured by bench_direct_buffers.

  /// Allocate a buffer sized for the device (use buf::Buffer::write /
  /// write_object to fill it, then commit()). Return it with
  /// release_buffer() to recycle.
  std::unique_ptr<buf::Buffer> make_buffer(std::size_t min_capacity) const {
    return take_buffer(min_capacity);
  }
  void release_buffer(std::unique_ptr<buf::Buffer> buffer) const {
    give_buffer(std::move(buffer));
  }

  /// Send a committed buffer as-is (no packing pass). The buffer must stay
  /// alive and unmodified until the call (or returned request) completes.
  /// If the call fails with ErrCode::Timeout (MPCX_OP_TIMEOUT_MS), the
  /// device may still be mid-transfer: keep the buffer alive afterwards
  /// (don't destroy or reuse it) — unlike pooled-buffer operations, the
  /// library cannot defer disposal of a caller-owned buffer.
  void Send_buffer(buf::Buffer& buffer, int dest, int tag) const;
  Request Isend_buffer(buf::Buffer& buffer, int dest, int tag) const;

  /// Receive into a caller-owned buffer; on return it is sealed for
  /// reading (no unpack pass — read sections straight out of it). The same
  /// post-Timeout lifetime caveat as Send_buffer applies.
  Status Recv_buffer(buf::Buffer& buffer, int source, int tag) const;
  Request Irecv_buffer(buf::Buffer& buffer, int source, int tag) const;

  // ---- explicit pack/unpack (MPI_Pack / MPI_Unpack analogs) ---------------------
  //
  // Pack typed data into a caller-owned buffer (several Pack calls may
  // append to one buffer); after commit() the buffer can travel via
  // Send_buffer, and Unpack pulls typed data back out on the receiver.

  void Pack(const void* inbuf, int offset, int count, const DatatypePtr& type,
            buf::Buffer& buffer) const;
  void Unpack(buf::Buffer& buffer, void* outbuf, int offset, int count,
              const DatatypePtr& type) const;

  // ---- attribute caching (mpiJava Attr_put / Attr_get / Attr_delete) -------------
  //
  // Communicator-local key/value cache. Keys come from Keyval_create (a
  // process-wide allocator); values are std::any. Caching is local state:
  // it involves no communication.

  /// Allocate a fresh attribute key (process-wide unique).
  static int Keyval_create();

  void Attr_put(int keyval, std::any value) const;
  std::optional<std::any> Attr_get(int keyval) const;
  void Attr_delete(int keyval) const;

  /// Re-read the hierarchy environment (MPCX_HIER_COLLS / MPCX_TOPO /
  /// MPCX_SINGLECOPY) for this communicator. The knobs are resolved once at
  /// construction — never on the collective hot path, and never racing a
  /// concurrent setenv — so a test that flips them after creating the
  /// communicator must call this to observe the change.
  void refresh_hier_config();

 protected:
  friend class Request;
  friend class Prequest;
  friend class CollState;  // the nonblocking-collective schedule engine posts
                           // raw engine ops through the protected helpers

  Comm(World* world, Group group, int ptp_context, int coll_context);

  mpdev::Engine& engine() const;

  /// Communicator-local -> world rank (throws on out-of-range; PROC_NULL
  /// must be filtered by the caller). Intercomms address the remote group.
  virtual int world_dest(int local_rank) const;

  /// Local source (possibly ANY_SOURCE) -> world rank / wildcard.
  virtual int world_source(int local_rank) const;

  /// Engine status (world ranks) -> communicator-local Status.
  virtual Status to_local_status(const mpdev::Status& dev) const;

  /// Throw CommError(ErrCode::Revoked) when the communicator is revoked.
  /// Funnelled through world_dest/world_source so every operation that
  /// resolves a peer rank observes revocation.
  void check_revoked(const char* op) const;

  /// Apply this communicator's errhandler to a failed operation. Under
  /// ERRORS_RETURN it simply returns (the caller surfaces the error via
  /// Status::Get_error); under ERRORS_THROW it throws CommError(what, code);
  /// under ERRORS_ARE_FATAL it logs and Abort()s with the error code.
  void handle_error(ErrCode code, const std::string& what) const;

  /// Pack user data into a pooled buffer ready to send.
  std::unique_ptr<buf::Buffer> pack_message(const void* buf, int offset, int count,
                                            const DatatypePtr& type) const;

  std::unique_ptr<buf::Buffer> take_buffer(std::size_t min_capacity) const;
  void give_buffer(std::unique_ptr<buf::Buffer> buffer) const;

  /// Return a pooled operation buffer after its request finished: recycles
  /// through the pool normally, but when the operation timed out while the
  /// device was mid-delivery, parks the buffer on the request so the
  /// device's final completion frees it (never a use-after-free).
  void reclaim_buffer(const mpdev::Request& request,
                      std::unique_ptr<buf::Buffer> buffer) const;

  /// After a zero-copy operation's wait: block until the device's final
  /// release of the borrowed user memory (a timed-out wait may leave an
  /// in-flight transfer on it). No-op when the device staged into an
  /// attached buffer instead — the user memory was released at the call,
  /// and the device may legitimately hold the staging copy indefinitely
  /// (e.g. a never-matched rendezvous send).
  void release_borrowed(const mpdev::Request& request) const;

  /// Deliver a completed zero-copy receive (dev.error == Success, not
  /// truncated/cancelled): validate the landed section header and either
  /// accept the payload in place, rebuild-and-unpack on a semantic
  /// mismatch, or unpack the device's staged buffer when dev.direct is
  /// false. `user_base` is where the payload span pointed.
  void deliver_direct_recv(const mpdev::Request& request, const mpdev::Status& dev,
                           std::span<const std::byte> hdr, std::byte* user_base,
                           std::size_t max_items, const DatatypePtr& type) const;

  static void validate(const void* buf, int count, const DatatypePtr& type, const char* op);

  /// Internal typed point-to-point on an arbitrary context (collectives use
  /// coll_context_ with reserved negative tags).
  void ctx_send(int context, int tag, const void* buf, int offset, int count,
                const DatatypePtr& type, int dest_local) const;
  Status ctx_recv(int context, int tag, void* buf, int offset, int count, const DatatypePtr& type,
                  int source_local) const;
  Request ctx_isend(int context, int tag, const void* buf, int offset, int count,
                    const DatatypePtr& type, int dest_local) const;
  Request ctx_irecv(int context, int tag, void* buf, int offset, int count,
                    const DatatypePtr& type, int source_local) const;

  World* world_;
  Group group_;
  int ptp_context_;
  int coll_context_;
  int local_rank_;  ///< this process's rank in group_ (UNDEFINED if absent)

  // Error-handling policy; see Errhandler above for why the default differs
  // from MPI's (fatal).
  std::atomic<Errhandler> errhandler_{Errhandler::ErrorsThrow};

  // ULFM-lite revocation flag (see Revoke above).
  std::atomic<bool> revoked_{false};

  // Nonblocking-collective sequence number. MPI requires every member to
  // issue collectives on one communicator in the same order, so the local
  // counter agrees across ranks and the derived tags (kNbCollTagBase) keep
  // concurrent schedules from cross-matching.
  mutable std::atomic<std::uint32_t> nb_coll_seq_{0};

  // Attribute cache (mutable: caching on a const communicator is fine).
  mutable std::mutex attrs_mu_;
  mutable std::map<int, std::any> attrs_;

  // Hierarchy knobs, resolved once at construction (refresh_hier_config()
  // re-reads them for tests). hier_enabled gates the n-level collective
  // paths; topo_spec supplies the virtual levels below the engine's node
  // map; singlecopy gates the process-shared collective buffers.
  struct HierConfig {
    bool hier_enabled = true;
    bool singlecopy = true;
    topo::TopoSpec topo_spec;
  };
  HierConfig hier_config_;
};

}  // namespace mpcx
