// Request — handle for a non-blocking core-level operation (mpiJava Request
// analog), plus the persistent-request variant (Prequest).
//
// A core Request owns the library-side resources of one operation:
//   * sends: the packed bufx buffer, recycled to the World's pool once the
//     device is done with it;
//   * receives: the landing buffer plus the unpack recipe (datatype, user
//     pointer, max count) executed exactly once when completion is first
//     observed (Wait/Test/Waitany/...).
//
// Copies share state; the Wait/Test family is safe to call from any thread
// (MPCX runs at THREAD_MULTIPLE).
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/datatype.hpp"
#include "core/status.hpp"
#include "mpdev/engine.hpp"

namespace mpcx {

class CollState;
class Comm;

class Request {
 public:
  Request() = default;

  /// Block until the operation completes; finalizes (unpacks / recycles)
  /// and returns the Status.
  Status Wait();

  /// Non-blocking completion check; finalizes on success.
  std::optional<Status> Test();

  /// True for a default-constructed (inactive) request.
  bool is_null() const { return state_ == nullptr; }

  /// True once the underlying operation has completed (does not finalize).
  bool is_complete() const;

  /// Attempt to cancel a pending receive (mpiJava Request.Cancel). On
  /// success the request completes with a status whose Test_cancelled() is
  /// true. Returns false if the operation already matched/completed (or is
  /// a send, which MPCX — like most MPI implementations — cannot cancel).
  bool Cancel();

  // ---- families over request arrays (mpiJava statics) -----------------------

  /// Wait for all requests; returns one Status per request.
  static std::vector<Status> Waitall(std::span<Request> requests);

  /// Wait for any one; Status.index identifies it. If every request is
  /// null, returns a Status with index == UNDEFINED.
  static Status Waitany(std::span<Request> requests);

  /// Wait until at least one completes; returns statuses of all that have
  /// (each with .index set), emptying completed slots.
  static std::vector<Status> Waitsome(std::span<Request> requests);

  /// Test all: statuses if every request is complete, nullopt otherwise.
  static std::optional<std::vector<Status>> Testall(std::span<Request> requests);

  /// Test any: the status of some completed request (index set), if any.
  static std::optional<Status> Testany(std::span<Request> requests);

 private:
  friend class Comm;
  friend class Prequest;
  friend class Intracomm;  // builds collective-schedule requests (make_coll)

  struct State;

  explicit Request(std::shared_ptr<State> state) : state_(std::move(state)) {}

  /// Build a send request owning its packed buffer.
  static Request make_send(const Comm* comm, mpdev::Request dev,
                           std::unique_ptr<buf::Buffer> buffer);

  /// Build a receive request with an unpack recipe.
  static Request make_recv(const Comm* comm, mpdev::Request dev,
                           std::unique_ptr<buf::Buffer> buffer, DatatypePtr type,
                           std::byte* user_base, std::size_t max_items);

  /// Zero-copy send: the user region is borrowed by the device; there is no
  /// library buffer to recycle, but a timed-out wait must block until the
  /// device's final release before the error is surfaced.
  static Request make_borrowed_send(const Comm* comm, mpdev::Request dev);

  /// Zero-copy receive: posts irecv_direct aimed at the user region (the
  /// 8-byte section-header landing area lives in the request state, which
  /// must outlive the device operation — hence posting happens inside).
  static Request make_direct_recv(const Comm* comm, int world_src, int tag, int context,
                                  DatatypePtr type, std::byte* user_base, std::size_t max_items);

  /// Direct-buffer operation: the caller owns the buffer; the request only
  /// tracks completion (used by Isend_buffer / Irecv_buffer).
  static Request make_bare(const Comm* comm, mpdev::Request dev);

  /// Nonblocking collective: the request fronts a CollState schedule rather
  /// than a single device operation; Wait/Test (and the Waitany family)
  /// progress the schedule.
  static Request make_coll(const Comm* comm, std::shared_ptr<CollState> coll);

  Status finalize(const mpdev::Status& dev_status);
  Status finalize_coll();

  std::shared_ptr<State> state_;
};

/// Persistent request (mpiJava Prequest): parameters bound once by
/// Send_init/Recv_init, re-armed by Start(). Between Start and completion it
/// behaves like the equivalent Request.
class Prequest {
 public:
  /// Re-arm the operation. Erroneous while a previous activation is pending.
  void Start();

  /// Start every prequest in the span (MPI Startall).
  static void Startall(std::span<Prequest> requests);

  Status Wait();
  std::optional<Status> Test();

  /// The currently active Request (null before the first Start).
  Request& active() { return active_; }

 private:
  friend class Comm;

  /// The bound operation parameters (captured by Send_init / Recv_init).
  struct Recipe {
    const Comm* comm = nullptr;
    bool is_send = true;
    const void* send_buf = nullptr;
    void* recv_buf = nullptr;
    int offset = 0;
    int count = 0;
    DatatypePtr type;
    int peer = 0;
    int tag = 0;
  };

  explicit Prequest(std::shared_ptr<Recipe> recipe) : recipe_(std::move(recipe)) {}

  /// Throw unless the previous activation (if any) can be replaced: checks
  /// `finalized` under the state lock (a concurrent Wait may be finalizing),
  /// and lazily finalizes a device-complete activation so its resources
  /// recycle before the slot is reused.
  void ensure_restartable();

  /// Re-arm without the precondition check (Start = ensure + launch).
  void launch();

  std::shared_ptr<Recipe> recipe_;
  Request active_;
};

}  // namespace mpcx
