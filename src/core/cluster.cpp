#include "core/cluster.hpp"

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <exception>
#include <thread>
#include <vector>

#include <cstdlib>

#include "support/error.hpp"
#include "support/logging.hpp"
#include "support/socket.hpp"
#include "xdev/device.hpp"

namespace mpcx::cluster {
namespace {

/// ProcessIDs must be unique per launch even across sequential launches in
/// one test binary (the mxsim global fabric is process-wide) AND across
/// runs on one machine (shmdev derives /dev/shm segment names from them; a
/// crashed run's stale segment must never collide with a fresh launch).
/// Pids recycle far too fast (pid_max is often 32768), so the seed is a
/// nanosecond timestamp mixed with the pid.
std::uint64_t uuid_seed() {
  const auto ns = std::chrono::steady_clock::now().time_since_epoch().count();
  return (static_cast<std::uint64_t>(ns) << 20) ^
         (static_cast<std::uint64_t>(::getpid()) << 8);
}

std::atomic<std::uint64_t> next_uuid{uuid_seed()};

}  // namespace

std::string default_device() {
  const char* env = std::getenv("MPCX_DEVICE");
  if (env == nullptr) return "mxdev";
  const std::string normalized = xdev::normalize_device_name(env);
  return normalized.empty() ? "mxdev" : normalized;
}

void launch(int nprocs, const std::function<void(World&)>& body, const Options& options) {
  if (nprocs <= 0) throw ArgumentError("cluster::launch: nprocs must be positive");

  const std::string device =
      options.device.empty() ? default_device() : xdev::normalize_device_name(options.device);

  // Build the shared world layout.
  std::vector<xdev::EndpointInfo> world(static_cast<std::size_t>(nprocs));
  std::vector<std::shared_ptr<net::Acceptor>> acceptors(static_cast<std::size_t>(nprocs));
  // hybdev owns a tcpdev child, so it needs the pre-bound listeners too.
  const bool is_tcp = device == "tcpdev" || device == "niodev" || device == "hybdev";
  for (int r = 0; r < nprocs; ++r) {
    auto& info = world[static_cast<std::size_t>(r)];
    info.id = xdev::ProcessID{next_uuid.fetch_add(1)};
    info.host = "127.0.0.1";
    if (is_tcp) {
      // Bind every listener up front so peers can connect immediately.
      acceptors[static_cast<std::size_t>(r)] = std::make_shared<net::Acceptor>(0);
      info.port = acceptors[static_cast<std::size_t>(r)]->port();
    }
  }

  std::vector<std::thread> threads;
  std::vector<std::exception_ptr> errors(static_cast<std::size_t>(nprocs));
  threads.reserve(static_cast<std::size_t>(nprocs));
  for (int r = 0; r < nprocs; ++r) {
    threads.emplace_back([&, r] {
      try {
        xdev::DeviceConfig config;
        config.self_index = static_cast<std::size_t>(r);
        config.world = world;
        config.eager_threshold = options.eager_threshold;
        config.socket_buffer_bytes = options.socket_buffer_bytes;
        config.acceptor = acceptors[static_cast<std::size_t>(r)];
        World rank_world(device, config);
        body(rank_world);
        rank_world.Finalize();
      } catch (...) {
        errors[static_cast<std::size_t>(r)] = std::current_exception();
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }
}

}  // namespace mpcx::cluster
