// Status — completion record of a receive/probe (mpiJava Status analog).
#pragma once

#include <cstddef>

#include "core/datatype.hpp"
#include "core/types.hpp"
#include "support/error.hpp"

namespace mpcx {

class Status {
 public:
  Status() = default;
  Status(int source, int tag, std::size_t static_bytes, std::size_t dynamic_bytes, bool truncated,
         bool cancelled = false, ErrCode error = ErrCode::Success)
      : source_(source),
        tag_(tag),
        static_bytes_(static_bytes),
        dynamic_bytes_(dynamic_bytes),
        truncated_(truncated),
        cancelled_(cancelled),
        error_(error) {}

  /// Rank of the sender (in the communicator the operation ran on).
  int Get_source() const { return source_; }

  /// Message tag.
  int Get_tag() const { return tag_; }

  /// Number of complete items of `type` in the message, or UNDEFINED when
  /// the payload is not a whole number of items. Computable because buffer
  /// sections carry no padding: a single-section message of n primitive
  /// elements occupies exactly 8 + n*elsize bytes.
  int Get_count(const Datatype& type) const {
    const int elements = Get_elements(type);
    if (elements == UNDEFINED) return UNDEFINED;
    const std::size_t per_item = type.size_elements();
    if (per_item == 0) return 0;
    if (static_cast<std::size_t>(elements) % per_item != 0) return UNDEFINED;
    return static_cast<int>(static_cast<std::size_t>(elements) / per_item);
  }

  /// Number of primitive base elements in the message (MPI Get_elements).
  /// Exact for single-section (homogeneous-datatype) messages; multi-section
  /// struct messages yield UNDEFINED unless they divide evenly.
  int Get_elements(const Datatype& type) const {
    if (static_bytes_ == 0) return 0;
    const std::size_t header = buf::Buffer::kSectionHeaderBytes;
    if (static_bytes_ < header) return UNDEFINED;
    const std::size_t payload = static_bytes_ - header;
    const std::size_t elsize = type.base_size();
    if (payload % elsize != 0) return UNDEFINED;
    return static_cast<int>(payload / elsize);
  }

  /// Total wire bytes of the static (primitive) payload, including section
  /// headers.
  std::size_t bytes() const { return static_bytes_; }

  /// Bytes of serialized-object (dynamic section) payload.
  std::size_t object_bytes() const { return dynamic_bytes_; }

  /// True if the message was larger than the posted receive and was dropped
  /// (surfaced as a CommError by Wait/Recv; exposed here for Probe users).
  bool truncated() const { return truncated_; }

  /// True if the operation was cancelled (mpiJava Status.Test_cancelled).
  bool Test_cancelled() const { return cancelled_; }

  /// Error class of the operation (MPI Status.MPI_ERROR analog). Anything
  /// other than ErrCode::Success means the operation failed; under the
  /// ERRORS_RETURN handler this is the only failure signal.
  ErrCode Get_error() const { return error_; }

  /// Index of the completed request, set by Waitany/Waitsome/Testany.
  int index = UNDEFINED;

 private:
  int source_ = PROC_NULL;
  int tag_ = ANY_TAG;
  std::size_t static_bytes_ = 0;
  std::size_t dynamic_bytes_ = 0;
  bool truncated_ = false;
  bool cancelled_ = false;
  ErrCode error_ = ErrCode::Success;
};

}  // namespace mpcx
