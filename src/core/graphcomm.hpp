// Graphcomm — general graph virtual topology (mpiJava Graphcomm analog).
//
// The topology is the standard MPI CSR-ish encoding: index[i] is the
// cumulative neighbour count through node i; edges holds the concatenated
// adjacency lists.
#pragma once

#include <vector>

#include "core/intracomm.hpp"

namespace mpcx {

class Graphcomm final : public Intracomm {
 public:
  Graphcomm(World* world, Group group, int ptp_context, int coll_context, std::vector<int> index,
            std::vector<int> edges);

  /// Number of topology nodes and total edges (MPI_Graphdims_get).
  int Nnodes() const { return static_cast<int>(index_.size()); }
  int Nedges() const { return static_cast<int>(edges_.size()); }

  const std::vector<int>& index() const { return index_; }
  const std::vector<int>& edges() const { return edges_; }

  /// Adjacency list of `rank`.
  std::vector<int> Neighbours(int rank) const;

  int Neighbours_count(int rank) const;

 private:
  std::vector<int> index_;
  std::vector<int> edges_;
};

}  // namespace mpcx
