// In-process cluster harness.
//
// Runs an n-rank MPCX world inside one OS process: each rank is a thread
// with its own World (its own device endpoint). With tcpdev the ranks talk
// over real loopback TCP sockets; with mxdev over the in-memory mxsim
// fabric. This is how the test suite and most benchmarks exercise the full
// stack without the multi-process runtime (which lives in src/runtime).
#pragma once

#include <cstddef>
#include <functional>
#include <string>

#include "core/world.hpp"

namespace mpcx::cluster {

/// Device the harness uses when Options.device is left empty: MPCX_DEVICE
/// from the environment (trimmed/case-folded), falling back to "mxdev".
/// Lets one test binary run under every device via the CI matrix.
std::string default_device();

struct Options {
  /// Device name ("mxdev", "tcpdev", "shmdev", "hybdev"); empty picks
  /// default_device().
  std::string device = default_device();
  /// Eager/rendezvous switch-over (tcpdev); paper default 128 KB.
  std::size_t eager_threshold = 128 * 1024;
  /// Socket buffer sizes (tcpdev); 0 = OS default.
  int socket_buffer_bytes = 0;
};

/// Launch `nprocs` ranks, run `body(world)` on each rank's thread, then
/// Finalize every world. Rethrows the first rank exception after all
/// threads join.
void launch(int nprocs, const std::function<void(World&)>& body, const Options& options = {});

}  // namespace mpcx::cluster
