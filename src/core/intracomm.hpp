// Intracomm — intra-communicator with the full mpiJava 1.2 collective set
// and communicator-construction operations.
//
// Collective algorithms (classic, matching the 2006 era the paper targets):
//   Barrier          dissemination (log2 n rounds)
//   Bcast            binomial tree
//   Gather/Scatter   linear to/from root (v-variants with displacements)
//   Allgather        ring (n-1 steps)
//   Alltoall         pairwise exchange
//   Reduce           binomial tree (commutative ops); linear in rank order
//                    for non-commutative user ops
//   Allreduce        reduce + bcast
//   Reduce_scatter   reduce + scatterv
//   Scan             linear prefix chain
// The `bench_ablation_collectives` benchmark compares the tree/ring
// algorithms against naive linear ones.
#pragma once

#include <functional>
#include <memory>
#include <mutex>
#include <vector>

#include "core/comm.hpp"
#include "core/op.hpp"

namespace mpcx::xdev::collbuf {
class Group;
}  // namespace mpcx::xdev::collbuf

namespace mpcx {

class Cartcomm;
class Graphcomm;
class Intercomm;

class Intracomm : public Comm {
 public:
  // Both out of line: collbuf::Group is incomplete here, and the collbuf_
  // member's deleter must only be instantiated where it is complete.
  Intracomm(World* world, Group group, int ptp_context, int coll_context);
  ~Intracomm();

  // ---- collectives ------------------------------------------------------------

  /// Block until every member has entered the barrier.
  void Barrier() const;

  /// Broadcast `count` items from `root`'s buffer to everyone's.
  void Bcast(void* buf, int offset, int count, const DatatypePtr& type, int root) const;

  /// Root gathers everyone's `sendcount` items, laid out by rank.
  void Gather(const void* sendbuf, int sendoffset, int sendcount, const DatatypePtr& sendtype,
              void* recvbuf, int recvoffset, int recvcount, const DatatypePtr& recvtype,
              int root) const;

  /// Gather with per-rank counts and displacements (displacements in items
  /// of recvtype, MPI semantics).
  void Gatherv(const void* sendbuf, int sendoffset, int sendcount, const DatatypePtr& sendtype,
               void* recvbuf, int recvoffset, std::span<const int> recvcounts,
               std::span<const int> displs, const DatatypePtr& recvtype, int root) const;

  void Scatter(const void* sendbuf, int sendoffset, int sendcount, const DatatypePtr& sendtype,
               void* recvbuf, int recvoffset, int recvcount, const DatatypePtr& recvtype,
               int root) const;

  void Scatterv(const void* sendbuf, int sendoffset, std::span<const int> sendcounts,
                std::span<const int> displs, const DatatypePtr& sendtype, void* recvbuf,
                int recvoffset, int recvcount, const DatatypePtr& recvtype, int root) const;

  void Allgather(const void* sendbuf, int sendoffset, int sendcount, const DatatypePtr& sendtype,
                 void* recvbuf, int recvoffset, int recvcount, const DatatypePtr& recvtype) const;

  void Allgatherv(const void* sendbuf, int sendoffset, int sendcount, const DatatypePtr& sendtype,
                  void* recvbuf, int recvoffset, std::span<const int> recvcounts,
                  std::span<const int> displs, const DatatypePtr& recvtype) const;

  void Alltoall(const void* sendbuf, int sendoffset, int sendcount, const DatatypePtr& sendtype,
                void* recvbuf, int recvoffset, int recvcount, const DatatypePtr& recvtype) const;

  void Alltoallv(const void* sendbuf, int sendoffset, std::span<const int> sendcounts,
                 std::span<const int> sdispls, const DatatypePtr& sendtype, void* recvbuf,
                 int recvoffset, std::span<const int> recvcounts, std::span<const int> rdispls,
                 const DatatypePtr& recvtype) const;

  /// Elementwise reduction of `count` items to `root`. The datatype must be
  /// memory-contiguous (primitive or contiguous derived); see DESIGN.md.
  void Reduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset, int count,
              const DatatypePtr& type, const Op& op, int root) const;

  void Allreduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset, int count,
                 const DatatypePtr& type, const Op& op) const;

  /// Reduce then scatter: rank i receives recvcounts[i] reduced items.
  void Reduce_scatter(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                      std::span<const int> recvcounts, const DatatypePtr& type,
                      const Op& op) const;

  /// Inclusive prefix reduction: rank r receives op over ranks 0..r.
  void Scan(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset, int count,
            const DatatypePtr& type, const Op& op) const;

  // ---- nonblocking collectives (schedule engine, see coll_sched.hpp) ----------
  //
  // Each I* call compiles its algorithm (the same shapes as the blocking
  // versions, including the n-level hierarchical variants when the comm
  // spans nodes or MPCX_TOPO supplies virtual levels) into a CollState
  // round DAG and returns an ordinary Request
  // that composes with Wait/Test/Waitall/Waitany. Buffers follow MPI's
  // nonblocking contract: untouched until the request completes. Datatypes
  // must be memory-contiguous (the schedule moves raw byte spans).

  Request Ibarrier() const;

  Request Ibcast(void* buf, int offset, int count, const DatatypePtr& type, int root) const;

  Request Ireduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset, int count,
                  const DatatypePtr& type, const Op& op, int root) const;

  Request Iallreduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                     int count, const DatatypePtr& type, const Op& op) const;

  Request Igather(const void* sendbuf, int sendoffset, int sendcount, const DatatypePtr& sendtype,
                  void* recvbuf, int recvoffset, int recvcount, const DatatypePtr& recvtype,
                  int root) const;

  Request Iallgather(const void* sendbuf, int sendoffset, int sendcount,
                     const DatatypePtr& sendtype, void* recvbuf, int recvoffset, int recvcount,
                     const DatatypePtr& recvtype) const;

  // ---- communicator construction (all collective over this comm) ------------------

  /// Duplicate: same group, fresh contexts.
  std::unique_ptr<Intracomm> Dup() const;

  /// Sub-communicator for `group` (same group on every caller); callers not
  /// in the group receive nullptr.
  std::unique_ptr<Intracomm> Create(const Group& new_group) const;

  /// Partition by color (UNDEFINED -> nullptr), ordered by (key, rank).
  std::unique_ptr<Intracomm> Split(int color, int key) const;

  /// Partition by locality (MPI Comm_split_type analog). COMM_TYPE_SHARED
  /// groups the ranks that share a physical node, as reported by the
  /// engine's node topology (the same identities hybdev routes by).
  std::unique_ptr<Intracomm> Split_type(int split_type, int key) const;

  /// Cartesian topology over the first prod(dims) ranks.
  std::unique_ptr<Cartcomm> Create_cart(std::span<const int> dims, std::span<const bool> periods,
                                        bool reorder) const;

  /// Graph topology (CSR-style index/edges arrays, MPI_Graph_create).
  std::unique_ptr<Graphcomm> Create_graph(std::span<const int> index, std::span<const int> edges,
                                          bool reorder) const;

  /// Build an inter-communicator: this (local) comm paired with a remote
  /// comm; the two leaders are connected through peer_comm.
  std::unique_ptr<Intercomm> Create_intercomm(int local_leader, const Comm& peer_comm,
                                              int remote_leader, int tag) const;

  // ---- fault tolerance (ULFM-lite; see docs/ROBUSTNESS.md) ---------------------
  //
  // Both operations are collective over the SURVIVORS of this communicator
  // (members not in World::failed_ranks()) and work on a revoked handle:
  // they run survivor-only linear point-to-point exchanges rooted at the
  // lowest surviving rank, so a dead member can never block them. They
  // assume every survivor observes the same failed-rank set (the daemon's
  // RankFailed broadcast, or symmetric mark_rank_failed calls) before
  // calling.

  /// Build a working communicator from the survivors, in rank order
  /// (MPI_Comm_shrink analog). Fresh contexts are agreed among survivors
  /// only. Returns nullptr when the caller is itself marked failed.
  std::unique_ptr<Intracomm> Shrink() const;

  /// Fault-tolerant agreement (MPI_Comm_agree analog, narrowed to a
  /// boolean): returns the AND of every survivor's `flag`.
  bool Agree(bool flag) const;

 protected:
  friend class Intercomm;

  /// Collectively agree on a fresh (ptp, coll) context pair. `groups` is the
  /// number of disjoint sub-communicators being created at once (Split
  /// reserves one pair per color).
  int agree_contexts(int groups) const;

  /// Internal reduce into `inout` at root (contiguous elements).
  void reduce_elements(const void* sendbuf, void* recvbuf, std::size_t elements,
                       buf::TypeCode code, const Op& op, int root) const;

  /// Validate op datatypes: must be contiguous so reductions can run
  /// directly on user arrays.
  static void require_contiguous(const DatatypePtr& type, const char* op);

  // ---- hierarchical (n-level) collectives -------------------------------------
  //
  // When a communicator spans more than one node — or MPCX_TOPO defines a
  // virtual locality tree — Bcast / Reduce / Allreduce / Barrier walk the
  // tree's exchanges (core/topo.hpp): top-down per-exchange binomials for
  // broadcast, bottom-up folds for reduction (ordered linear folds for
  // non-commutative ops on contiguous layouts), and a per-exchange
  // recursive-doubling or reduce+bcast top step for allreduce. The node-
  // local portion moves through the single-copy shared buffer
  // (xdev/collbuf.hpp) when MPCX_SINGLECOPY allows it; everything else is
  // plain point-to-point on coll_context_ with per-level reserved tags
  // (kHierLevelTagBase) — no sub-communicator construction, so the paths
  // stay cheap and reentrant. The hierarchy knobs are cached on the
  // communicator at construction (Comm::refresh_hier_config re-reads them).

  /// Per-call view of the locality tree (leaders re-rooted at `root`; -1
  /// for rootless collectives).
  topo::View hier_topology(int root) const;

  /// Cheap pre-check: >1 rank, knob not off, and either the communicator
  /// spans >1 engine node or MPCX_TOPO supplies virtual levels. The hier
  /// paths additionally require hier_topology() to yield depth > 0.
  bool hierarchy_enabled() const;

  /// The single-copy buffer shared by this communicator's node group, or
  /// nullptr when MPCX_SINGLECOPY=0 / the group is too small or too large.
  /// Lazily opened on the first eligible collective (a collective call, so
  /// every member arrives). The eligibility decision is a pure function of
  /// per-communicator state every member shares — a split decision across
  /// members of one node group would deadlock the protocol.
  xdev::collbuf::Group* node_collbuf(const topo::View& view) const;

  void hier_bcast(void* buf, int offset, int count, const DatatypePtr& type, int root,
                  const topo::View& view) const;
  void hier_reduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset, int count,
                   const DatatypePtr& type, const Op& op, int root,
                   const topo::View& view) const;
  void hier_allreduce(const void* sendbuf, int sendoffset, void* recvbuf, int recvoffset,
                      int count, const DatatypePtr& type, const Op& op,
                      const topo::View& view) const;
  void hier_barrier(const topo::View& view) const;

  /// One exchange's binomial broadcast / reduction legs (reduction falls
  /// back to an ordered linear fold at the exchange root for
  /// non-commutative operations).
  void exchange_bcast(const topo::Exchange& ex, int tag, void* buf, int offset, int count,
                      const DatatypePtr& type) const;
  void exchange_reduce(const topo::Exchange& ex, int tag, std::byte* acc, std::size_t bytes,
                       std::size_t elements, buf::TypeCode code, const Op& op) const;

  /// Seal a compiled schedule, wrap it in a Request, and (if it has wire
  /// work) register it with the World for progression-from-any-thread.
  Request launch_nb(std::shared_ptr<CollState> state) const;

  // ---- ULFM-lite internals ----------------------------------------------------
  //
  // Shrink/Agree must keep working on a revoked communicator, so they move
  // their control words through the engine directly (engine ops take world
  // ranks), bypassing the world_dest/world_source revocation gate.

  /// Comm ranks (locals) and world ranks of the members NOT in
  /// World::failed_ranks(), in rank order.
  std::pair<std::vector<int>, std::vector<int>> survivors() const;

  void ft_send_u64(int world_rank, CollTag tag, std::uint64_t value) const;
  std::uint64_t ft_recv_u64(int world_rank, CollTag tag) const;

 private:
  // Lazily opened single-copy collective buffer for this communicator's
  // node group (see node_collbuf). Mutable: collectives are const.
  mutable std::mutex collbuf_mu_;
  mutable std::unique_ptr<xdev::collbuf::Group> collbuf_;
};

}  // namespace mpcx
