#include "core/group.hpp"

#include <algorithm>
#include <array>
#include <unordered_set>

#include "support/error.hpp"

namespace mpcx {

int Group::Rank_of_world(int world_rank) const {
  for (std::size_t i = 0; i < world_ranks_.size(); ++i) {
    if (world_ranks_[i] == world_rank) return static_cast<int>(i);
  }
  return UNDEFINED;
}

int Group::world_rank(int group_rank) const {
  if (group_rank < 0 || group_rank >= Size()) {
    throw ArgumentError("Group: rank " + std::to_string(group_rank) + " out of range");
  }
  return world_ranks_[static_cast<std::size_t>(group_rank)];
}

std::vector<int> Group::Translate_ranks(std::span<const int> ranks, const Group& other) const {
  std::vector<int> out;
  out.reserve(ranks.size());
  for (const int rank : ranks) {
    out.push_back(other.Rank_of_world(world_rank(rank)));
  }
  return out;
}

Group Group::Union(const Group& other) const {
  std::vector<int> ranks = world_ranks_;
  std::unordered_set<int> seen(world_ranks_.begin(), world_ranks_.end());
  for (const int rank : other.world_ranks_) {
    if (seen.insert(rank).second) ranks.push_back(rank);
  }
  return Group(std::move(ranks));
}

Group Group::Intersection(const Group& other) const {
  std::unordered_set<int> theirs(other.world_ranks_.begin(), other.world_ranks_.end());
  std::vector<int> ranks;
  for (const int rank : world_ranks_) {
    if (theirs.count(rank) > 0) ranks.push_back(rank);
  }
  return Group(std::move(ranks));
}

Group Group::Difference(const Group& other) const {
  std::unordered_set<int> theirs(other.world_ranks_.begin(), other.world_ranks_.end());
  std::vector<int> ranks;
  for (const int rank : world_ranks_) {
    if (theirs.count(rank) == 0) ranks.push_back(rank);
  }
  return Group(std::move(ranks));
}

Group Group::Incl(std::span<const int> ranks) const {
  std::vector<int> out;
  out.reserve(ranks.size());
  for (const int rank : ranks) out.push_back(world_rank(rank));
  return Group(std::move(out));
}

Group Group::Excl(std::span<const int> ranks) const {
  std::unordered_set<int> excluded;
  for (const int rank : ranks) {
    if (rank < 0 || rank >= Size()) throw ArgumentError("Group::Excl: rank out of range");
    excluded.insert(rank);
  }
  std::vector<int> out;
  for (int rank = 0; rank < Size(); ++rank) {
    if (excluded.count(rank) == 0) out.push_back(world_ranks_[static_cast<std::size_t>(rank)]);
  }
  return Group(std::move(out));
}

namespace {
std::vector<int> expand_ranges(std::span<const std::array<int, 3>> ranges, int limit) {
  std::vector<int> out;
  for (const auto& [first, last, stride] : ranges) {
    if (stride == 0) throw ArgumentError("Group range: zero stride");
    if (stride > 0) {
      for (int r = first; r <= last; r += stride) out.push_back(r);
    } else {
      for (int r = first; r >= last; r += stride) out.push_back(r);
    }
  }
  for (const int r : out) {
    if (r < 0 || r >= limit) throw ArgumentError("Group range: rank out of range");
  }
  return out;
}
}  // namespace

Group Group::Range_incl(std::span<const std::array<int, 3>> ranges) const {
  return Incl(expand_ranges(ranges, Size()));
}

Group Group::Range_excl(std::span<const std::array<int, 3>> ranges) const {
  return Excl(expand_ranges(ranges, Size()));
}

Group::Compare Group::compare(const Group& other) const {
  if (world_ranks_ == other.world_ranks_) return Compare::Ident;
  if (world_ranks_.size() != other.world_ranks_.size()) return Compare::Unequal;
  std::vector<int> a = world_ranks_;
  std::vector<int> b = other.world_ranks_;
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  return a == b ? Compare::Similar : Compare::Unequal;
}

}  // namespace mpcx
