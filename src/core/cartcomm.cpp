#include "core/cartcomm.hpp"

#include <algorithm>

#include "support/error.hpp"

namespace mpcx {

Cartcomm::Cartcomm(World* world, Group group, int ptp_context, int coll_context,
                   std::vector<int> dims, std::vector<bool> periods)
    : Intracomm(world, std::move(group), ptp_context, coll_context),
      dims_(std::move(dims)),
      periods_(std::move(periods)) {}

CartParms Cartcomm::Get() const {
  CartParms parms;
  parms.dims = dims_;
  parms.periods = periods_;
  parms.coords = Coords(Comm::Rank());
  return parms;
}

int Cartcomm::Rank(std::span<const int> coords) const {
  if (coords.size() != dims_.size()) throw ArgumentError("Cartcomm::Rank: wrong arity");
  int rank = 0;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    int c = coords[d];
    const int extent = dims_[d];
    if (c < 0 || c >= extent) {
      if (!periods_[d]) {
        throw ArgumentError("Cartcomm::Rank: coordinate out of range on non-periodic dimension");
      }
      c = ((c % extent) + extent) % extent;
    }
    rank = rank * extent + c;
  }
  return rank;
}

std::vector<int> Cartcomm::Coords(int rank) const {
  if (rank < 0 || rank >= Size()) throw ArgumentError("Cartcomm::Coords: rank out of range");
  std::vector<int> coords(dims_.size());
  for (std::size_t d = dims_.size(); d-- > 0;) {
    coords[d] = rank % dims_[d];
    rank /= dims_[d];
  }
  return coords;
}

ShiftParms Cartcomm::Shift(int dimension, int disp) const {
  if (dimension < 0 || dimension >= Ndims()) throw ArgumentError("Cartcomm::Shift: bad dimension");
  std::vector<int> coords = Coords(Comm::Rank());
  ShiftParms parms;

  const int extent = dims_[static_cast<std::size_t>(dimension)];
  const bool periodic = periods_[static_cast<std::size_t>(dimension)];

  auto resolve = [&](int delta) -> int {
    const int c = coords[static_cast<std::size_t>(dimension)] + delta;
    if (c < 0 || c >= extent) {
      if (!periodic) return PROC_NULL;
    }
    std::vector<int> shifted = coords;
    shifted[static_cast<std::size_t>(dimension)] = ((c % extent) + extent) % extent;
    return Rank(shifted);
  };

  parms.rank_dest = resolve(disp);
  parms.rank_source = resolve(-disp);
  return parms;
}

std::unique_ptr<Cartcomm> Cartcomm::Sub(std::span<const bool> remain_dims) const {
  if (remain_dims.size() != dims_.size()) throw ArgumentError("Cartcomm::Sub: wrong arity");
  const std::vector<int> coords = Coords(Comm::Rank());

  // Color = position in the dropped dimensions; key = position in the kept
  // ones (row-major), so ranks in the sub-grid follow grid order.
  int color = 0;
  int key = 0;
  std::vector<int> sub_dims;
  std::vector<bool> sub_periods;
  for (std::size_t d = 0; d < dims_.size(); ++d) {
    if (remain_dims[d]) {
      key = key * dims_[d] + coords[d];
      sub_dims.push_back(dims_[d]);
      sub_periods.push_back(periods_[d]);
    } else {
      color = color * dims_[d] + coords[d];
    }
  }
  if (sub_dims.empty()) {
    sub_dims.push_back(1);
    sub_periods.push_back(false);
  }

  auto flat = Split(color, key);
  if (!flat) return nullptr;
  // Rebuild as a Cartcomm over the kept dimensions (contexts are reused
  // from the Split result; the topology is pure bookkeeping).
  return std::make_unique<Cartcomm>(world_, flat->group(), flat->ptp_context(),
                                    flat->coll_context(), std::move(sub_dims),
                                    std::move(sub_periods));
}

std::vector<int> Cartcomm::Dims_create(int nnodes, std::span<const int> dims) {
  std::vector<int> out(dims.begin(), dims.end());
  int fixed = 1;
  int free_dims = 0;
  for (const int d : out) {
    if (d < 0) throw ArgumentError("Dims_create: negative dimension");
    if (d > 0) fixed *= d;
    else ++free_dims;
  }
  if (fixed == 0) throw ArgumentError("Dims_create: zero fixed product");
  if (nnodes % fixed != 0) throw ArgumentError("Dims_create: nnodes not divisible by fixed dims");
  int remaining = nnodes / fixed;
  if (free_dims == 0) {
    if (remaining != 1) throw ArgumentError("Dims_create: dims do not multiply to nnodes");
    return out;
  }

  // Greedy balanced factorization: repeatedly peel the largest prime factor
  // onto the currently smallest free dimension.
  std::vector<int> factors;
  int n = remaining;
  for (int p = 2; p * p <= n; ++p) {
    while (n % p == 0) {
      factors.push_back(p);
      n /= p;
    }
  }
  if (n > 1) factors.push_back(n);
  std::sort(factors.rbegin(), factors.rend());

  std::vector<std::size_t> free_index;
  for (std::size_t d = 0; d < out.size(); ++d) {
    if (out[d] == 0) {
      out[d] = 1;
      free_index.push_back(d);
    }
  }
  for (const int f : factors) {
    auto smallest = std::min_element(free_index.begin(), free_index.end(),
                                     [&](std::size_t a, std::size_t b) { return out[a] < out[b]; });
    out[*smallest] *= f;
  }
  std::sort(free_index.begin(), free_index.end());
  return out;
}

}  // namespace mpcx
