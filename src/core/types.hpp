// Public constants and small shared types for the MPCX core API.
//
// The core API follows the mpiJava 1.2 specification that MPJ Express
// implements (method names like Send/Recv/Isend/Bcast, wildcard values,
// thread levels), transliterated to C++.
#pragma once

#include <cstddef>

namespace mpcx {

/// Wildcards and sentinels (mpiJava values).
inline constexpr int ANY_SOURCE = -2;
inline constexpr int ANY_TAG = -1;
inline constexpr int PROC_NULL = -3;
inline constexpr int UNDEFINED = -32766;

/// Split type for Intracomm::Split_type (MPI_COMM_TYPE_SHARED analog): group
/// ranks by physical node, as reported by the engine's node topology.
inline constexpr int COMM_TYPE_SHARED = 1;

/// Thread-safety levels of MPI 2.0 Sec. IV-B. MPJ Express — and MPCX — run
/// at THREAD_MULTIPLE by default: any thread may communicate concurrently.
enum class ThreadLevel : int {
  Single = 0,     ///< only one thread exists
  Funneled = 1,   ///< only the main thread makes MPI calls
  Serialized = 2, ///< any thread, but one at a time
  Multiple = 3,   ///< unrestricted (MPCX native level)
};

/// Tags reserved for internal collective traffic on the collective context.
/// User tags must be >= 0, so negative internal tags can never collide.
enum class CollTag : int {
  Barrier = -10,
  Bcast = -11,
  Gather = -12,
  Scatter = -13,
  Allgather = -14,
  Alltoall = -15,
  Reduce = -16,
  Scan = -17,
  ContextAgree = -18,
  Split = -19,
  Intercomm = -20,
  Merge = -21,
  // Legacy two-level hierarchical-collective tags. Retired by the n-level
  // scheme (kHierLevelTagBase below) but the values stay reserved so old
  // and new builds sharing a wire never cross-match.
  HierBcastInter = -22,
  HierBcastIntra = -23,
  HierReduceIntra = -24,
  HierReduceInter = -25,
  HierAllreduceIntra = -26,
  HierAllreduceInter = -27,
  HierAllreduceFan = -28,
  HierBarrierGather = -29,
  HierBarrierInter = -30,
  HierBarrierRelease = -31,
  // ULFM-lite recovery (Shrink / Agree): survivor-only linear exchanges
  // rooted at the lowest surviving rank. Distinct tags per direction so a
  // proposal can never match an agreement.
  ShrinkProp = -32,
  ShrinkAgree = -33,
  AgreeGather = -34,
  AgreeRelease = -35,
};

inline constexpr int kMaxUserTag = 0x3FFFFFFF;

/// N-level hierarchical (blocking) collective tag space. Each locality-tree
/// exchange level derives kHierLevelPhases tags below kHierLevelTagBase, so
/// the upward (reduce/gather), downward (bcast/release) and exchange
/// (recursive-doubling) phases of adjacent levels can never cross-match.
/// With kMaxTopoLevels levels plus the leaf exchange the space spans
/// [-40, -40 - 4*(8+1)) = (-76, -40], comfortably above kNbCollTagBase.
inline constexpr int kHierLevelTagBase = -40;
inline constexpr int kHierLevelPhases = 4;

/// Cap on locality-tree depth (engine node level + MPCX_TOPO spec levels).
/// Extra spec levels beyond the cap are ignored.
inline constexpr int kMaxTopoLevels = 8;

/// Nonblocking-collective tag space (collective context). Each launched
/// schedule draws a per-communicator sequence number and derives one tag per
/// phase from it, so concurrent schedules on one communicator — and the
/// intra-node / inter-node / fan-out rounds within one schedule — can never
/// cross-match. The base sits far below every CollTag value and ANY_TAG; the
/// window wraps after 2^20 in-flight-distinguishable schedules, which at
/// kNbCollPhases tags each still stays comfortably above INT_MIN. The phase
/// budget covers the five flat phases plus an up/down tag pair per locality
/// level (5 + 2*(kMaxTopoLevels+1) = 23, rounded up to 32).
inline constexpr int kNbCollTagBase = -1000;
inline constexpr int kNbCollPhases = 32;
inline constexpr int kNbCollSeqWindow = 1 << 20;

}  // namespace mpcx
