#include "core/op.hpp"

#include <algorithm>
#include <cstdint>

#include "support/error.hpp"

namespace mpcx {
namespace {

using buf::TypeCode;

template <typename F>
void dispatch_all(TypeCode code, F&& f) {
  switch (code) {
    case TypeCode::Byte: f(static_cast<std::int8_t*>(nullptr)); return;
    case TypeCode::Char: f(static_cast<char*>(nullptr)); return;
    case TypeCode::Short: f(static_cast<std::int16_t*>(nullptr)); return;
    case TypeCode::Int: f(static_cast<std::int32_t*>(nullptr)); return;
    case TypeCode::Long: f(static_cast<std::int64_t*>(nullptr)); return;
    case TypeCode::Float: f(static_cast<float*>(nullptr)); return;
    case TypeCode::Double: f(static_cast<double*>(nullptr)); return;
    case TypeCode::Boolean: f(static_cast<bool*>(nullptr)); return;
    case TypeCode::Object: break;
  }
  throw ArgumentError("Op: bad element type code");
}

template <typename F>
void dispatch_integral(TypeCode code, F&& f) {
  switch (code) {
    case TypeCode::Byte: f(static_cast<std::int8_t*>(nullptr)); return;
    case TypeCode::Char: f(static_cast<char*>(nullptr)); return;
    case TypeCode::Short: f(static_cast<std::int16_t*>(nullptr)); return;
    case TypeCode::Int: f(static_cast<std::int32_t*>(nullptr)); return;
    case TypeCode::Long: f(static_cast<std::int64_t*>(nullptr)); return;
    case TypeCode::Boolean: f(static_cast<bool*>(nullptr)); return;
    default: throw ArgumentError("Op: logical/bitwise op requires an integral type");
  }
}

/// inout[i] = f(in[i], inout[i]) over all primitive types.
template <typename Combine>
Op::Fn elementwise(Combine combine) {
  return [combine](TypeCode code, const void* in, void* inout, std::size_t count) {
    dispatch_all(code, [&]<typename T>(T*) {
      const T* a = static_cast<const T*>(in);
      T* b = static_cast<T*>(inout);
      for (std::size_t i = 0; i < count; ++i) b[i] = combine(b[i], a[i]);
    });
  };
}

/// Integral-only variant (logical / bitwise ops).
template <typename Combine>
Op::Fn elementwise_integral(Combine combine) {
  return [combine](TypeCode code, const void* in, void* inout, std::size_t count) {
    dispatch_integral(code, [&]<typename T>(T*) {
      const T* a = static_cast<const T*>(in);
      T* b = static_cast<T*>(inout);
      for (std::size_t i = 0; i < count; ++i) b[i] = combine(b[i], a[i]);
    });
  };
}

/// (value, index) pair reduction; `Better(a, b)` selects whether a's value
/// beats b's. Ties keep the lower index (MPI MAXLOC/MINLOC rule).
template <typename Better>
Op::Fn locwise(Better better) {
  return [better](TypeCode code, const void* in, void* inout, std::size_t count) {
    if (count % 2 != 0) throw ArgumentError("MAXLOC/MINLOC: element count must be even");
    dispatch_all(code, [&]<typename T>(T*) {
      const T* a = static_cast<const T*>(in);
      T* b = static_cast<T*>(inout);
      for (std::size_t i = 0; i < count; i += 2) {
        const T av = a[i], ai = a[i + 1];
        const T bv = b[i], bi = b[i + 1];
        if (better(av, bv) || (av == bv && ai < bi)) {
          b[i] = av;
          b[i + 1] = ai;
        }
      }
    });
  };
}

}  // namespace

namespace ops {

const Op& MAX() {
  static const Op op(elementwise([](auto a, auto b) { return std::max(a, b); }), true);
  return op;
}
const Op& MIN() {
  static const Op op(elementwise([](auto a, auto b) { return std::min(a, b); }), true);
  return op;
}
const Op& SUM() {
  static const Op op(elementwise([](auto a, auto b) { return static_cast<decltype(b)>(a + b); }),
                     true);
  return op;
}
const Op& PROD() {
  static const Op op(elementwise([](auto a, auto b) { return static_cast<decltype(b)>(a * b); }),
                     true);
  return op;
}
const Op& LAND() {
  static const Op op(
      elementwise_integral([](auto a, auto b) { return static_cast<decltype(b)>(a && b); }), true);
  return op;
}
const Op& LOR() {
  static const Op op(
      elementwise_integral([](auto a, auto b) { return static_cast<decltype(b)>(a || b); }), true);
  return op;
}
const Op& LXOR() {
  static const Op op(
      elementwise_integral([](auto a, auto b) { return static_cast<decltype(b)>(!a != !b); }),
      true);
  return op;
}
const Op& BAND() {
  static const Op op(
      elementwise_integral([](auto a, auto b) { return static_cast<decltype(b)>(a & b); }), true);
  return op;
}
const Op& BOR() {
  static const Op op(
      elementwise_integral([](auto a, auto b) { return static_cast<decltype(b)>(a | b); }), true);
  return op;
}
const Op& BXOR() {
  static const Op op(
      elementwise_integral([](auto a, auto b) { return static_cast<decltype(b)>(a ^ b); }), true);
  return op;
}
const Op& MAXLOC() {
  static const Op op(locwise([](auto a, auto b) { return a > b; }), true);
  return op;
}
const Op& MINLOC() {
  static const Op op(locwise([](auto a, auto b) { return a < b; }), true);
  return op;
}

}  // namespace ops
}  // namespace mpcx
