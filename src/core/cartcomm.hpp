// Cartcomm — Cartesian virtual topology (mpiJava Cartcomm analog).
//
// Ranks are laid out row-major over `dims`; per-dimension periodicity
// controls wraparound for Shift and coordinate arithmetic.
#pragma once

#include <vector>

#include "core/intracomm.hpp"

namespace mpcx {

/// Result of Shift: where my data comes from and goes to (PROC_NULL at a
/// non-periodic boundary).
struct ShiftParms {
  int rank_source = PROC_NULL;
  int rank_dest = PROC_NULL;
};

/// Topology description returned by Get().
struct CartParms {
  std::vector<int> dims;
  std::vector<bool> periods;
  std::vector<int> coords;  ///< of the calling process
};

class Cartcomm final : public Intracomm {
 public:
  Cartcomm(World* world, Group group, int ptp_context, int coll_context, std::vector<int> dims,
           std::vector<bool> periods);

  int Ndims() const { return static_cast<int>(dims_.size()); }

  /// Dims, periods and the caller's coordinates.
  CartParms Get() const;

  /// Rank at `coords` (periodic dimensions wrap; out-of-range coordinates
  /// on non-periodic dimensions are an error). The zero-argument overload
  /// from Comm (the caller's own rank) stays visible.
  using Comm::Rank;
  int Rank(std::span<const int> coords) const;

  /// Coordinates of `rank`.
  std::vector<int> Coords(int rank) const;

  /// Source/destination ranks for a shift of `disp` along `dimension`.
  ShiftParms Shift(int dimension, int disp) const;

  /// Sub-grid communicator keeping the dimensions flagged in remain_dims.
  std::unique_ptr<Cartcomm> Sub(std::span<const bool> remain_dims) const;

  /// Balanced factorization of nnodes into ndims dimensions
  /// (MPI_Dims_create; nonzero entries in `dims` are kept fixed).
  static std::vector<int> Dims_create(int nnodes, std::span<const int> dims);

 private:
  std::vector<int> dims_;
  std::vector<bool> periods_;
};

}  // namespace mpcx
