// Reduction operations (MPI.SUM, MPI.MAX, ... analogs) including
// user-defined operations.
//
// An Op combines `count` elements of a primitive type: inout[i] =
// f(in[i], inout[i]). Predefined ops dispatch on the runtime type code;
// user ops supply their own function.
#pragma once

#include <cstddef>
#include <functional>

#include "bufx/type_codes.hpp"
#include "support/error.hpp"

namespace mpcx {

class Op {
 public:
  /// Accumulate: inout[i] = combine(inout[i], in[i]) for i in [0, count).
  /// Collectives feed contributions in ascending rank order, so for a
  /// non-commutative user op the canonical MPI ordering
  /// (rank0 op rank1 op ...) is preserved.
  using Fn = std::function<void(buf::TypeCode, const void* in, void* inout, std::size_t count)>;

  Op(Fn fn, bool commutative) : fn_(std::move(fn)), commutative_(commutative) {}

  void apply(buf::TypeCode code, const void* in, void* inout, std::size_t count) const {
    fn_(code, in, inout, count);
  }

  bool is_commutative() const { return commutative_; }

  /// Convenience: build a user op from a typed binary functor.
  /// Applied as inout[i] = f(inout[i], in[i]), i.e. f(accumulated, next).
  template <buf::Primitive T, typename F>
  static Op make_user(F f, bool commutative = true) {
    return Op(
        [f](buf::TypeCode code, const void* in, void* inout, std::size_t count) {
          if (code != buf::type_code_of<T>()) {
            throw ArgumentError("user Op applied to wrong element type");
          }
          const T* a = static_cast<const T*>(in);
          T* b = static_cast<T*>(inout);
          for (std::size_t i = 0; i < count; ++i) b[i] = f(b[i], a[i]);
        },
        commutative);
  }

 private:
  Fn fn_;
  bool commutative_;
};

/// Predefined operations. MAXLOC/MINLOC operate on (value, index) pairs of
/// one primitive type (the MPI_2INT-style layout); count must be even and is
/// interpreted as pairs*2 elements.
namespace ops {
const Op& MAX();
const Op& MIN();
const Op& SUM();
const Op& PROD();
const Op& LAND();
const Op& LOR();
const Op& LXOR();
const Op& BAND();
const Op& BOR();
const Op& BXOR();
const Op& MAXLOC();
const Op& MINLOC();
}  // namespace ops

}  // namespace mpcx
