// The xdev Device API — C++ rendering of the paper's Figure 2.
//
// xdev is the pluggable transport layer: it knows nothing about ranks,
// groups or communicators (those live in mpdev and above); it moves
// mpjbuf-style Buffers between ProcessIDs matched on (tag, context).
//
// Two devices are provided, mirroring the paper:
//   * tcpdev  — the niodev analog: TCP sockets, two channels per peer,
//               one input-handler thread, eager + rendezvous protocols.
//   * mxdev   — the Myrinet-eXpress analog: a thin wrapper over the mxsim
//               message layer, which implements the protocols internally.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bufx/buffer.hpp"
#include "support/error.hpp"
#include "xdev/process_id.hpp"
#include "xdev/request.hpp"

namespace mpcx::net {
class Acceptor;
}

namespace mpcx::prof {
class Counters;
}

namespace mpcx::xdev {

/// One process's contact information within a bootstrapped world.
struct EndpointInfo {
  ProcessID id;
  std::string host;    ///< tcpdev: IP to connect to ("127.0.0.1" in-process)
  std::uint16_t port = 0;  ///< tcpdev: listen port; mxsim: endpoint index
};

/// Bootstrap configuration handed to Device::init. The world vector is in a
/// canonical order shared by all processes (mpdev derives ranks from it).
struct DeviceConfig {
  std::size_t self_index = 0;
  std::vector<EndpointInfo> world;
  std::size_t eager_threshold = 128 * 1024;  ///< paper default: 128 KB
  /// Socket buffer sizes (tcpdev); 0 = OS default. The paper sets 512 KB on
  /// Gigabit Ethernet (Sec. V-C).
  int socket_buffer_bytes = 0;
  /// Optional pre-bound listener for tcpdev. The in-process cluster harness
  /// binds every rank's acceptor up front (port 0 = ephemeral), records the
  /// real ports in `world`, and hands each device its acceptor here — this
  /// removes the bind/advertise race entirely. When null, tcpdev binds
  /// `world[self_index].port` itself (the multi-process runtime path).
  std::shared_ptr<net::Acceptor> acceptor;
};

/// One borrowed contiguous piece of a zero-copy send payload (the
/// mx_segment_t analog of the paper's segment-list sends, Sec. IV-C).
struct SendSegment {
  const std::byte* data = nullptr;
  std::size_t size = 0;
};

/// Destination of a zero-copy receive: an 8-byte section-header landing
/// area plus the caller's payload region. Both must stay valid until the
/// returned request completes; a timed-out waiter must call
/// await_device_release() before reusing them (see RequestCanceller).
struct RecvSpan {
  std::byte* header = nullptr;  ///< 8 writable bytes for the section header
  std::byte* payload = nullptr;
  std::size_t payload_capacity = 0;  ///< bytes available at `payload`
};

class Device {
 public:
  virtual ~Device() = default;

  /// Bootstrap: wire up connections to every process in config.world.
  /// Returns the world's ProcessIDs in canonical order (paper: init(args)).
  virtual std::vector<ProcessID> init(const DeviceConfig& config) = 0;

  /// Bytes the device reserves at the front of each send buffer for its
  /// frame header (paper: getSendOverhead / getRecvOverhead).
  virtual int send_overhead() const = 0;
  virtual int recv_overhead() const = 0;

  /// This process's id.
  virtual ProcessID id() const = 0;

  /// Shut down: drain in-flight traffic, stop the progress engine, close
  /// connections. Idempotent.
  virtual void finish() = 0;

  /// Non-blocking standard-mode send. The buffer must stay alive and
  /// unmodified until the returned request completes.
  virtual DevRequest isend(buf::Buffer& buffer, ProcessID dst, int tag, int context) = 0;

  /// Blocking standard-mode send.
  virtual void send(buf::Buffer& buffer, ProcessID dst, int tag, int context);

  /// Non-blocking synchronous send: completes only once the receiver has
  /// matched the message.
  virtual DevRequest issend(buf::Buffer& buffer, ProcessID dst, int tag, int context) = 0;

  /// Blocking synchronous send.
  virtual void ssend(buf::Buffer& buffer, ProcessID dst, int tag, int context);

  /// Non-blocking receive into `buffer`. src may be ProcessID::any(), tag may
  /// be kAnyTag. On completion the buffer is sealed for reading.
  virtual DevRequest irecv(buf::Buffer& buffer, ProcessID src, int tag, int context) = 0;

  /// Blocking receive.
  virtual DevStatus recv(buf::Buffer& buffer, ProcessID src, int tag, int context);

  // ---- zero-copy segment-list operations -------------------------------------
  //
  // A segment-list send ships [8-byte section header | borrowed payload
  // segments] as one single-section static region, byte-identical on the
  // wire to the equivalent packed Buffer send. The device copies the header
  // during the call (so it may be stack-local); the payload segments are
  // BORROWED and must stay valid and unmodified until the request completes.
  // A direct receive lands the section header in dst.header and the raw
  // payload bytes in dst.payload; when the incoming message does not fit the
  // shape (unexpected arrival raced the post, multi-section static region,
  // dynamic section present) the device stages it into a buffer attached to
  // the request and completes with DevStatus::direct == false.
  //
  // The base implementations fall back to the staging (Buffer) paths, so a
  // device only overrides these when it has a genuinely faster route.

  /// Non-blocking zero-copy standard-mode send.
  virtual DevRequest isend_segments(std::span<const std::byte> header,
                                    std::span<const SendSegment> segments, ProcessID dst,
                                    int tag, int context);

  /// Non-blocking zero-copy synchronous send.
  virtual DevRequest issend_segments(std::span<const std::byte> header,
                                     std::span<const SendSegment> segments, ProcessID dst,
                                     int tag, int context);

  /// Blocking zero-copy sends.
  virtual void send_segments(std::span<const std::byte> header,
                             std::span<const SendSegment> segments, ProcessID dst, int tag,
                             int context);
  virtual void ssend_segments(std::span<const std::byte> header,
                              std::span<const SendSegment> segments, ProcessID dst, int tag,
                              int context);

  /// Non-blocking zero-copy receive into a caller-owned span.
  virtual DevRequest irecv_direct(const RecvSpan& dst, ProcessID src, int tag, int context);

  /// Blocking zero-copy receive.
  virtual DevStatus recv_direct(const RecvSpan& dst, ProcessID src, int tag, int context);

  /// Block until a matching message is available; does not consume it.
  virtual DevStatus probe(ProcessID src, int tag, int context) = 0;

  /// Non-blocking probe.
  virtual std::optional<DevStatus> iprobe(ProcessID src, int tag, int context) = 0;

  /// Block until some hooked request completes and return it — "the most
  /// recently completed Request object" (paper Fig. 2; idea borrowed from
  /// the MX library). Backs the mpdev Waitany machinery.
  virtual DevRequest peek() = 0;

  /// Attempt to cancel a posted-but-unmatched receive (mpiJava
  /// Request.Cancel). On success the request completes with
  /// DevStatus::cancelled set and true is returned; a request that already
  /// matched (or a send) cannot be cancelled and false is returned.
  virtual bool cancel(const DevRequest& request) {
    (void)request;
    return false;
  }

  /// This device instance's profiling counters, or nullptr if it has none.
  /// Values only accumulate while prof::counting() is on (MPCX_STATS=1).
  virtual const prof::Counters* counters() const { return nullptr; }
};

/// Factory: `name` is "tcpdev" or "mxdev" (paper: Device.newInstance).
/// The returned device is not yet initialized.
std::unique_ptr<Device> new_device(const std::string& name);

/// Effective eager/rendezvous crossover: MPCX_EAGER_THRESHOLD overrides
/// `configured` when it parses as a byte count in [1, 2^30]; malformed
/// values are rejected with a warning. The result is recorded on `counters`
/// (Ctr::EagerThreshold) so MPCX_STATS=1 reports the crossover in effect.
std::size_t resolve_eager_threshold(std::size_t configured, prof::Counters* counters);

}  // namespace mpcx::xdev
