// The xdev Device API — C++ rendering of the paper's Figure 2.
//
// xdev is the pluggable transport layer: it knows nothing about ranks,
// groups or communicators (those live in mpdev and above); it moves
// mpjbuf-style Buffers between ProcessIDs matched on (tag, context).
//
// Two devices are provided, mirroring the paper:
//   * tcpdev  — the niodev analog: TCP sockets, two channels per peer,
//               one input-handler thread, eager + rendezvous protocols.
//   * mxdev   — the Myrinet-eXpress analog: a thin wrapper over the mxsim
//               message layer, which implements the protocols internally.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "bufx/buffer.hpp"
#include "support/error.hpp"
#include "xdev/process_id.hpp"
#include "xdev/request.hpp"

namespace mpcx::net {
class Acceptor;
}

namespace mpcx::prof {
class Counters;
}

namespace mpcx::xdev {

/// One process's contact information within a bootstrapped world.
struct EndpointInfo {
  ProcessID id;
  std::string host;    ///< tcpdev: IP to connect to ("127.0.0.1" in-process)
  std::uint16_t port = 0;  ///< tcpdev: listen port; mxsim: endpoint index
};

/// Bootstrap configuration handed to Device::init. The world vector is in a
/// canonical order shared by all processes (mpdev derives ranks from it).
struct DeviceConfig {
  std::size_t self_index = 0;
  std::vector<EndpointInfo> world;
  std::size_t eager_threshold = 128 * 1024;  ///< paper default: 128 KB
  /// Socket buffer sizes (tcpdev); 0 = OS default. The paper sets 512 KB on
  /// Gigabit Ethernet (Sec. V-C).
  int socket_buffer_bytes = 0;
  /// Optional pre-bound listener for tcpdev. The in-process cluster harness
  /// binds every rank's acceptor up front (port 0 = ephemeral), records the
  /// real ports in `world`, and hands each device its acceptor here — this
  /// removes the bind/advertise race entirely. When null, tcpdev binds
  /// `world[self_index].port` itself (the multi-process runtime path).
  std::shared_ptr<net::Acceptor> acceptor;
};

class Device {
 public:
  virtual ~Device() = default;

  /// Bootstrap: wire up connections to every process in config.world.
  /// Returns the world's ProcessIDs in canonical order (paper: init(args)).
  virtual std::vector<ProcessID> init(const DeviceConfig& config) = 0;

  /// Bytes the device reserves at the front of each send buffer for its
  /// frame header (paper: getSendOverhead / getRecvOverhead).
  virtual int send_overhead() const = 0;
  virtual int recv_overhead() const = 0;

  /// This process's id.
  virtual ProcessID id() const = 0;

  /// Shut down: drain in-flight traffic, stop the progress engine, close
  /// connections. Idempotent.
  virtual void finish() = 0;

  /// Non-blocking standard-mode send. The buffer must stay alive and
  /// unmodified until the returned request completes.
  virtual DevRequest isend(buf::Buffer& buffer, ProcessID dst, int tag, int context) = 0;

  /// Blocking standard-mode send.
  virtual void send(buf::Buffer& buffer, ProcessID dst, int tag, int context);

  /// Non-blocking synchronous send: completes only once the receiver has
  /// matched the message.
  virtual DevRequest issend(buf::Buffer& buffer, ProcessID dst, int tag, int context) = 0;

  /// Blocking synchronous send.
  virtual void ssend(buf::Buffer& buffer, ProcessID dst, int tag, int context);

  /// Non-blocking receive into `buffer`. src may be ProcessID::any(), tag may
  /// be kAnyTag. On completion the buffer is sealed for reading.
  virtual DevRequest irecv(buf::Buffer& buffer, ProcessID src, int tag, int context) = 0;

  /// Blocking receive.
  virtual DevStatus recv(buf::Buffer& buffer, ProcessID src, int tag, int context);

  /// Block until a matching message is available; does not consume it.
  virtual DevStatus probe(ProcessID src, int tag, int context) = 0;

  /// Non-blocking probe.
  virtual std::optional<DevStatus> iprobe(ProcessID src, int tag, int context) = 0;

  /// Block until some hooked request completes and return it — "the most
  /// recently completed Request object" (paper Fig. 2; idea borrowed from
  /// the MX library). Backs the mpdev Waitany machinery.
  virtual DevRequest peek() = 0;

  /// Attempt to cancel a posted-but-unmatched receive (mpiJava
  /// Request.Cancel). On success the request completes with
  /// DevStatus::cancelled set and true is returned; a request that already
  /// matched (or a send) cannot be cancelled and false is returned.
  virtual bool cancel(const DevRequest& request) {
    (void)request;
    return false;
  }

  /// This device instance's profiling counters, or nullptr if it has none.
  /// Values only accumulate while prof::counting() is on (MPCX_STATS=1).
  virtual const prof::Counters* counters() const { return nullptr; }
};

/// Factory: `name` is "tcpdev" or "mxdev" (paper: Device.newInstance).
/// The returned device is not yet initialized.
std::unique_ptr<Device> new_device(const std::string& name);

}  // namespace mpcx::xdev
