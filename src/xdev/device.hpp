// The xdev Device API — C++ rendering of the paper's Figure 2.
//
// xdev is the pluggable transport layer: it knows nothing about ranks,
// groups or communicators (those live in mpdev and above); it moves
// mpjbuf-style Buffers between ProcessIDs matched on (tag, context).
//
// Two devices are provided, mirroring the paper:
//   * tcpdev  — the niodev analog: TCP sockets, two channels per peer,
//               one input-handler thread, eager + rendezvous protocols.
//   * mxdev   — the Myrinet-eXpress analog: a thin wrapper over the mxsim
//               message layer, which implements the protocols internally.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "bufx/buffer.hpp"
#include "support/error.hpp"
#include "xdev/process_id.hpp"
#include "xdev/request.hpp"

namespace mpcx::net {
class Acceptor;
}

namespace mpcx::prof {
class Counters;
}

namespace mpcx::xdev {

/// One process's contact information within a bootstrapped world.
struct EndpointInfo {
  ProcessID id;
  std::string host;    ///< tcpdev: IP to connect to ("127.0.0.1" in-process)
  std::uint16_t port = 0;  ///< tcpdev: listen port; mxsim: endpoint index
  /// Node identity exchanged during launcher bootstrap (MPCX_NODES). Two
  /// endpoints with the same non-empty node string are co-located and may
  /// talk over a shared-memory transport. Empty = unknown (fall back to
  /// host, see node_of_endpoint).
  std::string node;
};

/// Bootstrap configuration handed to Device::init. The world vector is in a
/// canonical order shared by all processes (mpdev derives ranks from it).
struct DeviceConfig {
  std::size_t self_index = 0;
  std::vector<EndpointInfo> world;
  std::size_t eager_threshold = 128 * 1024;  ///< paper default: 128 KB
  /// Socket buffer sizes (tcpdev); 0 = OS default. The paper sets 512 KB on
  /// Gigabit Ethernet (Sec. V-C).
  int socket_buffer_bytes = 0;
  /// Optional pre-bound listener for tcpdev. The in-process cluster harness
  /// binds every rank's acceptor up front (port 0 = ephemeral), records the
  /// real ports in `world`, and hands each device its acceptor here — this
  /// removes the bind/advertise race entirely. When null, tcpdev binds
  /// `world[self_index].port` itself (the multi-process runtime path).
  std::shared_ptr<net::Acceptor> acceptor;
};

/// One borrowed contiguous piece of a zero-copy send payload (the
/// mx_segment_t analog of the paper's segment-list sends, Sec. IV-C).
struct SendSegment {
  const std::byte* data = nullptr;
  std::size_t size = 0;
};

/// Destination of a zero-copy receive: an 8-byte section-header landing
/// area plus the caller's payload region. Both must stay valid until the
/// returned request completes; a timed-out waiter must call
/// await_device_release() before reusing them (see RequestCanceller).
struct RecvSpan {
  std::byte* header = nullptr;  ///< 8 writable bytes for the section header
  std::byte* payload = nullptr;
  std::size_t payload_capacity = 0;  ///< bytes available at `payload`
};

class Device {
 public:
  virtual ~Device() = default;

  /// Bootstrap: wire up connections to every process in config.world.
  /// Returns the world's ProcessIDs in canonical order (paper: init(args)).
  virtual std::vector<ProcessID> init(const DeviceConfig& config) = 0;

  /// Bytes the device reserves at the front of each send buffer for its
  /// frame header (paper: getSendOverhead / getRecvOverhead).
  virtual int send_overhead() const = 0;
  virtual int recv_overhead() const = 0;

  /// This process's id.
  virtual ProcessID id() const = 0;

  /// Shut down: drain in-flight traffic, stop the progress engine, close
  /// connections. Idempotent.
  virtual void finish() = 0;

  /// Non-blocking standard-mode send. The buffer must stay alive and
  /// unmodified until the returned request completes.
  virtual DevRequest isend(buf::Buffer& buffer, ProcessID dst, int tag, int context) = 0;

  /// Blocking standard-mode send.
  virtual void send(buf::Buffer& buffer, ProcessID dst, int tag, int context);

  /// Non-blocking synchronous send: completes only once the receiver has
  /// matched the message.
  virtual DevRequest issend(buf::Buffer& buffer, ProcessID dst, int tag, int context) = 0;

  /// Blocking synchronous send.
  virtual void ssend(buf::Buffer& buffer, ProcessID dst, int tag, int context);

  /// Non-blocking receive into `buffer`. src may be ProcessID::any(), tag may
  /// be kAnyTag. On completion the buffer is sealed for reading.
  virtual DevRequest irecv(buf::Buffer& buffer, ProcessID src, int tag, int context) = 0;

  /// Blocking receive.
  virtual DevStatus recv(buf::Buffer& buffer, ProcessID src, int tag, int context);

  // ---- zero-copy segment-list operations -------------------------------------
  //
  // A segment-list send ships [8-byte section header | borrowed payload
  // segments] as one single-section static region, byte-identical on the
  // wire to the equivalent packed Buffer send. The device copies the header
  // during the call (so it may be stack-local); the payload segments are
  // BORROWED and must stay valid and unmodified until the request completes.
  // A direct receive lands the section header in dst.header and the raw
  // payload bytes in dst.payload; when the incoming message does not fit the
  // shape (unexpected arrival raced the post, multi-section static region,
  // dynamic section present) the device stages it into a buffer attached to
  // the request and completes with DevStatus::direct == false.
  //
  // The base implementations fall back to the staging (Buffer) paths, so a
  // device only overrides these when it has a genuinely faster route.

  /// Non-blocking zero-copy standard-mode send.
  virtual DevRequest isend_segments(std::span<const std::byte> header,
                                    std::span<const SendSegment> segments, ProcessID dst,
                                    int tag, int context);

  /// Non-blocking zero-copy synchronous send.
  virtual DevRequest issend_segments(std::span<const std::byte> header,
                                     std::span<const SendSegment> segments, ProcessID dst,
                                     int tag, int context);

  /// Blocking zero-copy sends.
  virtual void send_segments(std::span<const std::byte> header,
                             std::span<const SendSegment> segments, ProcessID dst, int tag,
                             int context);
  virtual void ssend_segments(std::span<const std::byte> header,
                              std::span<const SendSegment> segments, ProcessID dst, int tag,
                              int context);

  /// Non-blocking zero-copy receive into a caller-owned span.
  virtual DevRequest irecv_direct(const RecvSpan& dst, ProcessID src, int tag, int context);

  /// Blocking zero-copy receive.
  virtual DevStatus recv_direct(const RecvSpan& dst, ProcessID src, int tag, int context);

  /// Block until a matching message is available; does not consume it.
  virtual DevStatus probe(ProcessID src, int tag, int context) = 0;

  /// Non-blocking probe.
  virtual std::optional<DevStatus> iprobe(ProcessID src, int tag, int context) = 0;

  /// Block until some hooked request completes and return it — "the most
  /// recently completed Request object" (paper Fig. 2; idea borrowed from
  /// the MX library). Backs the mpdev Waitany machinery.
  virtual DevRequest peek() = 0;

  /// Attempt to cancel a posted-but-unmatched receive (mpiJava
  /// Request.Cancel). On success the request completes with
  /// DevStatus::cancelled set and true is returned; a request that already
  /// matched (or a send) cannot be cancelled and false is returned.
  virtual bool cancel(const DevRequest& request) {
    (void)request;
    return false;
  }

  /// An out-of-band failure detector (the runtime daemon's rank reaper, a
  /// heartbeat, or a test) declared `peer` dead. The device errors every
  /// pending operation pinned to that peer with ErrCode::ProcFailed so
  /// waiters observe the failure instead of hanging, and refuses new
  /// traffic to it. Default: no-op (devices with no per-peer state).
  virtual void notify_peer_failed(ProcessID peer) { (void)peer; }

  /// This device instance's profiling counters, or nullptr if it has none.
  /// Values only accumulate while prof::counting() is on (MPCX_STATS=1).
  virtual const prof::Counters* counters() const { return nullptr; }

  // ---- composite-device support (hybdev) ---------------------------------------
  //
  // A composite device (hybdev) owns several child devices and must expose
  // ONE blocking peek() stream. Instead of polling each child, it redirects
  // every child's hooked completions into a single merged CompletionSink it
  // owns; the children keep completing requests from their own progress
  // threads, but the publications all land in the merged queue.

  /// Redirect hooked-completion publications (the stream behind peek()) to
  /// `sink`. Must be called before init(), while no operations are in
  /// flight. Devices that do not support redirection throw.
  virtual void redirect_completions(CompletionSink* sink);

  /// Post one ANY_SOURCE receive that is SHARED between sibling children of
  /// a composite device. `request` was created by the composite (marked
  /// shared; see DevRequestState::try_claim_match) and is added to this
  /// device's posted set alongside its twin in the sibling; whichever child
  /// matches first claims the request's match gate, and the loser's entry is
  /// discarded on its next match attempt. Exactly one of `buffer` / `span`
  /// is non-null (classic vs zero-copy landing).
  ///
  /// Returns true when the receive was satisfied (or claimed by the sibling)
  /// during the post — the caller must not post it to further children —
  /// and false when the entry was left in this device's posted set.
  virtual bool post_shared_recv(const DevRequest& request, buf::Buffer* buffer,
                                const RecvSpan* span, ProcessID src, int tag, int context);
};

/// Factory: `name` is one of the registered device names (paper:
/// Device.newInstance). The returned device is not yet initialized.
/// The name is trimmed and case-folded first, so " TCPDEV\n" (a sloppy
/// MPCX_DEVICE value) resolves like "tcpdev".
std::unique_ptr<Device> new_device(const std::string& name);

/// Trim surrounding whitespace and lower-case a device name (the
/// normalization new_device applies to its argument). Exposed so launch
/// harnesses can canonicalize MPCX_DEVICE once, up front.
std::string normalize_device_name(const std::string& name);

/// The registered device names, comma-joined ("tcpdev, mxdev, ...") — kept
/// in one place so new_device's "expected ..." error never goes stale.
const std::string& registered_device_names();

/// Node identity of `config.world[index]`, used by hybdev routing and the
/// Engine's topology queries. Resolution order:
///   1. MPCX_NODE_ID=N (positive int): simulate N nodes on one host —
///      endpoint i lands on node "sim<i mod N>". Lets tests and benches
///      exercise multi-node routing in-process.
///   2. EndpointInfo::node when non-empty (launcher bootstrap, MPCX_NODES).
///   3. EndpointInfo::host when non-empty.
///   4. "local".
std::string node_of_endpoint(const DeviceConfig& config, std::size_t index);

/// Effective eager/rendezvous crossover: MPCX_EAGER_THRESHOLD overrides
/// `configured` when it parses as a byte count in [1, 2^30]; malformed
/// values are rejected with a warning. The result is recorded on `counters`
/// (Ctr::EagerThreshold) so MPCX_STATS=1 reports the crossover in effect.
std::size_t resolve_eager_threshold(std::size_t configured, prof::Counters* counters);

}  // namespace mpcx::xdev
