// hybdev — node-aware composite device: shmdev intra-node, tcpdev inter-node.
//
// An SMP cluster run wants both transports at once: ranks sharing a node
// talk through shared-memory rings, ranks on different nodes over TCP. hybdev
// composes the two existing devices behind the unchanged Figure 2 API so the
// layers above (mpdev, the communicator stack) never learn there are two
// transports underneath.
//
// Structure:
//   * Routing. At init() every world endpoint is assigned a node identity
//     (node_of_endpoint: MPCX_NODE_ID simulation, launcher MPCX_NODES
//     bootstrap, or the endpoint's host). Peers on our node route to the
//     shmdev child, everyone else to the tcpdev child. The tcp child sees
//     the full world (wire compatibility with plain tcpdev ranks' framing),
//     the shm child only the co-located endpoints (shmdev maps every world
//     segment it is given).
//   * One completion stream. mpdev's WaitAny leader blocks in a single
//     peek(); polling two children would break that design. Both children
//     are redirected (redirect_completions) into one merged CompletionQueue
//     before init, so hooked completions from either child's progress thread
//     land in the queue hybdev's peek() pops.
//   * ANY_SOURCE receives. A wildcard receive may be satisfied by either
//     child, so hybdev creates the request itself, marks it shared, and
//     twin-posts it into both children (post_shared_recv). The request's
//     match gate (DevRequestState::try_claim_match) makes the twins mutually
//     exclusive: the first child to match wins delivery, the loser's entry
//     is a dead twin discarded by PostedRecvSet::match_where / the periodic
//     purge. Concrete-source operations delegate wholly to the owning child,
//     zero-copy segment paths included, so the PR 3 fast paths survive.
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "prof/counters.hpp"
#include "prof/hooks.hpp"
#include "support/faults.hpp"
#include "xdev/completion_queue.hpp"
#include "xdev/device.hpp"

namespace mpcx::xdev {

// Defined in tcpdev.cpp / shmdev.cpp.
std::unique_ptr<Device> make_tcpdev();
std::unique_ptr<Device> make_shmdev();

namespace {

class HybDevice final : public Device, public RequestCanceller {
 public:
  HybDevice() : tcp_(make_tcpdev()), shm_(make_shmdev()) {
    // Merge both children's completion streams BEFORE any operation can
    // complete; a request created by either child publishes into merged_.
    tcp_->redirect_completions(&merged_);
    shm_->redirect_completions(&merged_);
    tcp_rc_ = dynamic_cast<RequestCanceller*>(tcp_.get());
    shm_rc_ = dynamic_cast<RequestCanceller*>(shm_.get());
  }

  ~HybDevice() override {
    try {
      finish();
    } catch (const Error&) {
    }
  }

  std::vector<ProcessID> init(const DeviceConfig& config) override {
    if (config.self_index >= config.world.size()) {
      throw DeviceError("hybdev: self_index out of range");
    }
    self_ = config.world[config.self_index].id;
    const std::string self_node = node_of_endpoint(config, config.self_index);

    // shm child world: the co-located endpoints only (shmdev opens a segment
    // for every endpoint it is handed), canonical order preserved.
    DeviceConfig shm_config;
    shm_config.eager_threshold = config.eager_threshold;
    shm_config.socket_buffer_bytes = config.socket_buffer_bytes;
    for (std::size_t i = 0; i < config.world.size(); ++i) {
      if (node_of_endpoint(config, i) != self_node) continue;
      if (i == config.self_index) shm_config.self_index = shm_config.world.size();
      shm_config.world.push_back(config.world[i]);
    }

    // tcp child: the full world, pre-bound acceptor passed through.
    std::vector<ProcessID> world = tcp_->init(config);
    shm_->init(shm_config);

    for (std::size_t i = 0; i < config.world.size(); ++i) {
      const bool intra = node_of_endpoint(config, i) == self_node;
      routes_.emplace(config.world[i].id.value, Route{intra ? shm_.get() : tcp_.get(), intra});
      if (!intra) ++inter_peers_;
    }
    return world;
  }

  // Every buffer must leave room for the most demanding child: a message's
  // route is chosen per destination, after the buffer is built.
  int send_overhead() const override {
    return std::max(tcp_->send_overhead(), shm_->send_overhead());
  }
  int recv_overhead() const override {
    return std::max(tcp_->recv_overhead(), shm_->recv_overhead());
  }

  ProcessID id() const override { return self_; }

  void finish() override {
    shm_->finish();
    tcp_->finish();
    merged_.shutdown();
  }

  // ---- sends: route by destination ---------------------------------------------

  DevRequest isend(buf::Buffer& buffer, ProcessID dst, int tag, int context) override {
    return routed(dst).dev->isend(buffer, dst, tag, context);
  }

  DevRequest issend(buf::Buffer& buffer, ProcessID dst, int tag, int context) override {
    return routed(dst).dev->issend(buffer, dst, tag, context);
  }

  DevRequest isend_segments(std::span<const std::byte> header,
                            std::span<const SendSegment> segments, ProcessID dst, int tag,
                            int context) override {
    return routed(dst).dev->isend_segments(header, segments, dst, tag, context);
  }

  DevRequest issend_segments(std::span<const std::byte> header,
                             std::span<const SendSegment> segments, ProcessID dst, int tag,
                             int context) override {
    return routed(dst).dev->issend_segments(header, segments, dst, tag, context);
  }

  // ---- receives: concrete sources delegate, wildcards twin-post ------------------

  DevRequest irecv(buf::Buffer& buffer, ProcessID src, int tag, int context) override {
    if (!src.is_any()) return routed(src).dev->irecv(buffer, src, tag, context);
    return shared_recv(&buffer, nullptr, src, tag, context);
  }

  DevRequest irecv_direct(const RecvSpan& dst, ProcessID src, int tag, int context) override {
    if (!src.is_any()) return routed(src).dev->irecv_direct(dst, src, tag, context);
    return shared_recv(nullptr, &dst, src, tag, context);
  }

  DevStatus probe(ProcessID src, int tag, int context) override {
    if (!src.is_any()) return route(src).dev->probe(src, tag, context);
    // Wildcard probe must observe both children; neither child's blocking
    // probe can be used (a message on the other child would never wake it).
    // Poll with backoff, honoring the same operation deadline blocking ops
    // use (MPCX_OP_TIMEOUT_MS; 0 = wait forever).
    counters_->add(prof::Ctr::ProbeCalls);
    const std::uint32_t deadline_ms = faults::op_timeout_ms();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
    std::chrono::microseconds backoff{50};
    for (;;) {
      if (auto status = shm_->iprobe(src, tag, context)) return *status;
      if (auto status = tcp_->iprobe(src, tag, context)) return *status;
      if (deadline_ms != 0 && std::chrono::steady_clock::now() > deadline) {
        faults::counters().add(prof::Ctr::OpTimeouts);
        throw DeviceError("hybdev: probe timed out after " + std::to_string(deadline_ms) +
                              " ms (MPCX_OP_TIMEOUT_MS)",
                          ErrCode::Timeout);
      }
      std::this_thread::sleep_for(backoff);
      if (backoff < std::chrono::milliseconds(2)) backoff *= 2;
    }
  }

  std::optional<DevStatus> iprobe(ProcessID src, int tag, int context) override {
    if (!src.is_any()) return route(src).dev->iprobe(src, tag, context);
    counters_->add(prof::Ctr::IprobeCalls);
    if (auto status = shm_->iprobe(src, tag, context)) return status;
    return tcp_->iprobe(src, tag, context);
  }

  DevRequest peek() override {
    DevRequest completed = merged_.pop();
    if (completed) counters_->add(prof::Ctr::PeekWakeups);
    return completed;
  }

  bool cancel(const DevRequest& request) override {
    if (!request || request->kind() != DevRequestState::Kind::Recv) return false;
    if (request->shared()) {
      // Claim the match gate FIRST: once owned here, neither child can start
      // a delivery, so removing both twins races nothing. A lost gate means
      // a child already matched — too late to cancel.
      if (!request->try_claim_match()) return false;
      const bool a = shm_->cancel(request);
      const bool b = tcp_->cancel(request);  // second complete() is a no-op
      return a | b;
    }
    // Child-created request: exactly one child owns it.
    return shm_->cancel(request) || tcp_->cancel(request);
  }

  /// RequestCanceller for the shared receives hybdev itself creates. Claiming
  /// the gate first guarantees no delivery can start after this point; when
  /// the gate was already taken, the winning child's own abandon() does the
  /// mid-delivery bookkeeping (rendezvous maps, arriving claims) and its
  /// verdict decides whether the buffer is free.
  bool abandon(DevRequestState& request) override {
    const bool claimed_here = request.shared() ? request.try_claim_match() : false;
    const bool a = shm_rc_ != nullptr && shm_rc_->abandon(request);
    const bool b = tcp_rc_ != nullptr && tcp_rc_->abandon(request);
    return claimed_here | a | b;
  }

  /// Forward a rank-failure notification to BOTH children: the dead rank's
  /// traffic may ride either transport (it can be co-located or remote), and
  /// each child errors only the operations it actually holds.
  void notify_peer_failed(ProcessID peer) override {
    shm_->notify_peer_failed(peer);
    tcp_->notify_peer_failed(peer);
  }

  const prof::Counters* counters() const override { return counters_.get(); }

 private:
  struct Route {
    Device* dev = nullptr;
    bool intra = false;
  };

  Route& route(ProcessID peer) {
    auto it = routes_.find(peer.value);
    if (it == routes_.end()) {
      throw DeviceError("hybdev: unknown peer " + std::to_string(peer.value));
    }
    return it->second;
  }

  /// route() plus the intra/inter tally — message traffic only (sends and
  /// concrete receives), not probes.
  Route& routed(ProcessID peer) {
    Route& r = route(peer);
    counters_->add(r.intra ? prof::Ctr::HybIntraMsgs : prof::Ctr::HybInterMsgs);
    return r;
  }

  /// Twin-post one wildcard receive into both children. Exactly one of
  /// `buffer` / `span` is non-null.
  DevRequest shared_recv(buf::Buffer* buffer, const RecvSpan* span, ProcessID src, int tag,
                         int context) {
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Recv, &merged_,
                                                     counters_.get(), this);
    request->mark_shared();
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_recv_begin(prof::MsgInfo{src.value, tag, context, 0});
    }
    if (!shm_->post_shared_recv(request, buffer, span, src, tag, context) &&
        inter_peers_ > 0) {
      tcp_->post_shared_recv(request, buffer, span, src, tag, context);
    }
    return request;
  }

  std::unique_ptr<Device> tcp_;
  std::unique_ptr<Device> shm_;
  RequestCanceller* tcp_rc_ = nullptr;
  RequestCanceller* shm_rc_ = nullptr;
  ProcessID self_{};
  std::unordered_map<std::uint64_t, Route> routes_;
  std::size_t inter_peers_ = 0;

  std::shared_ptr<prof::Counters> counters_ = prof::Registry::global().create("hybdev");
  CompletionQueue merged_;
};

}  // namespace

std::unique_ptr<Device> make_hybdev() { return std::make_unique<HybDevice>(); }

}  // namespace mpcx::xdev
