// shmdev — xdev device over POSIX shared memory.
//
// The paper's introduction frames thread-safe messaging as an ALTERNATIVE
// to "using shared memory devices in the MPI libraries" for SMP clusters.
// shmdev is that alternative, built so the two approaches can be compared
// on the same harness (bench_smp_approaches): it moves messages between
// PROCESSES on one node through per-process shared-memory rings, the way a
// classic MPI ch_shmem device does. (MPJ Express itself later grew exactly
// such a device.)
//
// Structure:
//   * Every process owns one POSIX shm segment ("/mpcx_<id>") holding a
//     byte RING protected by a process-shared mutex + condvars. Senders
//     map the receiver's segment and push length-prefixed records;
//     the owner's input thread pops them.
//   * Records carry (src, msg_id, context, tag, static/dynamic lengths);
//     messages larger than a chunk are split and reassembled by the
//     receiver, so arbitrarily large messages flow through a fixed ring.
//   * Matching reuses the four-key machinery (Sec. IV-E.2), identical to
//     tcpdev. Standard sends complete once fully copied into the ring
//     (buffered semantics); synchronous sends wait for an ACK record that
//     the receiver emits when the message matches a posted receive.
//   * Works identically whether the ranks are threads of one process (the
//     cluster harness) or real processes (the mpcxrun runtime) — POSIX shm
//     and process-shared pthread primitives don't care.
#include <fcntl.h>
#include <pthread.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <condition_variable>
#include <cstring>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bufx/buffer_pool.hpp"
#include "prof/counters.hpp"
#include "prof/flight.hpp"
#include "prof/hooks.hpp"
#include "prof/pvars.hpp"
#include "support/endian.hpp"
#include "support/faults.hpp"
#include "support/logging.hpp"
#include "xdev/completion_queue.hpp"
#include "xdev/device.hpp"
#include "xdev/matching.hpp"
#include "xdev/shmmap.hpp"

namespace mpcx::xdev {
namespace {

constexpr std::size_t kRingBytes = 1 << 22;        // 4 MB ring per process
constexpr std::size_t kMaxChunk = kRingBytes / 4;  // payload bytes per record
constexpr std::uint32_t kMagicReady = 0x4D504358;  // "MPCX"

enum class RecType : std::uint8_t { Data = 1, Ack = 2, Shutdown = 3 };
enum RecFlags : std::uint8_t { kLastChunk = 1, kNeedAck = 2 };

// Fixed 40-byte record header inside the ring (byte layout, wire order).
constexpr std::size_t kRecHeader = 40;

struct RecInfo {
  std::uint32_t record_len = 0;  // header + chunk payload
  RecType type = RecType::Data;
  std::uint8_t flags = 0;
  std::uint64_t src = 0;
  std::uint64_t msg_id = 0;
  std::int32_t context = 0;
  std::int32_t tag = 0;
  std::uint32_t static_len = 0;
  std::uint32_t dynamic_len = 0;
};

void encode_rec(std::byte* out, const RecInfo& rec) {
  store_wire<std::uint32_t>(out, rec.record_len);
  out[4] = static_cast<std::byte>(rec.type);
  out[5] = static_cast<std::byte>(rec.flags);
  store_wire<std::uint16_t>(out + 6, 0);
  store_wire<std::uint64_t>(out + 8, rec.src);
  store_wire<std::uint64_t>(out + 16, rec.msg_id);
  store_wire<std::int32_t>(out + 24, rec.context);
  store_wire<std::int32_t>(out + 28, rec.tag);
  store_wire<std::uint32_t>(out + 32, rec.static_len);
  store_wire<std::uint32_t>(out + 36, rec.dynamic_len);
}

RecInfo decode_rec(const std::byte* in) {
  RecInfo rec;
  rec.record_len = load_wire<std::uint32_t>(in);
  rec.type = static_cast<RecType>(in[4]);
  rec.flags = static_cast<std::uint8_t>(in[5]);
  rec.src = load_wire<std::uint64_t>(in + 8);
  rec.msg_id = load_wire<std::uint64_t>(in + 16);
  rec.context = load_wire<std::int32_t>(in + 24);
  rec.tag = load_wire<std::int32_t>(in + 28);
  rec.static_len = load_wire<std::uint32_t>(in + 32);
  rec.dynamic_len = load_wire<std::uint32_t>(in + 36);
  return rec;
}

/// Shared-memory segment layout: control block + byte ring.
struct SegmentHeader {
  std::uint32_t magic;  // kMagicReady once initialized
  std::uint32_t reserved;
  pthread_mutex_t mu;
  pthread_cond_t nonempty;
  pthread_cond_t nonfull;
  std::uint64_t head;  // consumer cursor (monotonic)
  std::uint64_t tail;  // producer cursor (monotonic)
};

constexpr std::size_t kDataOffset = (sizeof(SegmentHeader) + 63) & ~std::size_t{63};
constexpr std::size_t kSegmentBytes = kDataOffset + kRingBytes;

std::string segment_name(std::uint64_t id) { return "/mpcx_seg_" + std::to_string(id); }

/// RAII mapping of one process's segment (owned or peer).
class Segment {
 public:
  /// Create and initialize the segment we own.
  static std::unique_ptr<Segment> create(std::uint64_t id) {
    auto segment = std::make_unique<Segment>();
    segment->mapping_ = shmmap::create(segment_name(id), kSegmentBytes, "shmdev");
    auto* header = segment->header();
    pthread_mutexattr_t mu_attr;
    pthread_mutexattr_init(&mu_attr);
    pthread_mutexattr_setpshared(&mu_attr, PTHREAD_PROCESS_SHARED);
    pthread_mutex_init(&header->mu, &mu_attr);
    pthread_mutexattr_destroy(&mu_attr);
    pthread_condattr_t cv_attr;
    pthread_condattr_init(&cv_attr);
    pthread_condattr_setpshared(&cv_attr, PTHREAD_PROCESS_SHARED);
    pthread_cond_init(&header->nonempty, &cv_attr);
    pthread_cond_init(&header->nonfull, &cv_attr);
    pthread_condattr_destroy(&cv_attr);
    header->head = 0;
    header->tail = 0;
    std::atomic_thread_fence(std::memory_order_release);
    header->magic = kMagicReady;
    return segment;
  }

  /// Map a peer's segment, waiting for it to be created and initialized.
  /// -1 uses faults::connect_timeout_ms() (MPCX_CONNECT_TIMEOUT_MS).
  static std::unique_ptr<Segment> open_peer(std::uint64_t id, int timeout_ms = -1) {
    if (timeout_ms < 0) timeout_ms = static_cast<int>(faults::connect_timeout_ms());
    const std::string name = segment_name(id);
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    auto segment = std::make_unique<Segment>();
    segment->mapping_ = shmmap::open_peer(name, kSegmentBytes, timeout_ms, "shmdev");
    while (segment->header()->magic != kMagicReady) {
      if (std::chrono::steady_clock::now() > deadline) {
        throw DeviceError("shmdev: peer segment never initialized: " + name);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    return segment;
  }

  SegmentHeader* header() { return reinterpret_cast<SegmentHeader*>(mapping_.base()); }
  std::byte* data() { return static_cast<std::byte*>(mapping_.base()) + kDataOffset; }

  /// Push one record (header + payload chunks) into the ring, blocking
  /// while the ring is too full.
  void push(const RecInfo& rec, std::span<const std::byte> chunk_a,
            std::span<const std::byte> chunk_b) {
    const std::span<const std::byte> parts[] = {chunk_a, chunk_b};
    push_parts(rec, parts);
  }

  /// Gathered push: the record's payload is the concatenation of `parts`,
  /// copied user-memory -> ring with no intermediate staging.
  void push_parts(const RecInfo& rec, std::span<const std::span<const std::byte>> parts) {
    std::size_t need = kRecHeader;
    for (const auto& part : parts) need += part.size();
    SegmentHeader* h = header();
    pthread_mutex_lock(&h->mu);
    while (kRingBytes - (h->tail - h->head) < need) {
      pthread_cond_wait(&h->nonfull, &h->mu);
    }
    std::byte scratch[kRecHeader];
    RecInfo out = rec;
    out.record_len = static_cast<std::uint32_t>(need);
    encode_rec(scratch, out);
    write_wrapped(h->tail, scratch, kRecHeader);
    std::size_t at = kRecHeader;
    for (const auto& part : parts) {
      write_wrapped(h->tail + at, part.data(), part.size());
      at += part.size();
    }
    h->tail += need;
    pthread_cond_signal(&h->nonempty);
    pthread_mutex_unlock(&h->mu);
  }

  /// Pop one record, routing its payload bytes ring -> destination with no
  /// intermediate copy. After the record header is decoded (still under the
  /// ring mutex) `route(rec, body)` returns up to two destination spans
  /// whose sizes must sum to `body`; the payload is scattered into them
  /// directly. The callback may take the device's receive lock (nothing
  /// pushes to our OWN ring while holding it), but must not push to any
  /// ring — cross-process mutex ordering would deadlock.
  template <typename Route>
  RecInfo pop_routed(Route&& route) {
    SegmentHeader* h = header();
    pthread_mutex_lock(&h->mu);
    while (h->tail == h->head) pthread_cond_wait(&h->nonempty, &h->mu);
    std::byte scratch[kRecHeader];
    read_wrapped(h->head, scratch, kRecHeader);
    const RecInfo rec = decode_rec(scratch);
    const std::size_t body = rec.record_len - kRecHeader;
    const auto [a, b] = route(rec, body);
    read_wrapped(h->head + kRecHeader, a.data(), a.size());
    read_wrapped(h->head + kRecHeader + a.size(), b.data(), b.size());
    h->head += rec.record_len;
    pthread_cond_broadcast(&h->nonfull);
    pthread_mutex_unlock(&h->mu);
    return rec;
  }

 private:
  void write_wrapped(std::uint64_t pos, const void* src, std::size_t size) {
    if (size == 0) return;
    const std::size_t at = static_cast<std::size_t>(pos % kRingBytes);
    const std::size_t first = std::min(size, kRingBytes - at);
    std::memcpy(data() + at, src, first);
    if (first < size) {
      std::memcpy(data(), static_cast<const std::byte*>(src) + first, size - first);
    }
  }

  void read_wrapped(std::uint64_t pos, void* dst, std::size_t size) {
    if (size == 0) return;
    const std::size_t at = static_cast<std::size_t>(pos % kRingBytes);
    const std::size_t first = std::min(size, kRingBytes - at);
    std::memcpy(dst, data() + at, first);
    if (first < size) {
      std::memcpy(static_cast<std::byte*>(dst) + first, data(), size - first);
    }
  }

  shmmap::Mapping mapping_;

 public:
  Segment() = default;
  Segment(const Segment&) = delete;
  Segment& operator=(const Segment&) = delete;
};

/// A message being reassembled from ring chunks.
struct Assembly {
  RecInfo first;
  std::vector<std::byte> bytes;  // concatenated static || dynamic payload
};

/// A fully arrived message with no matching posted receive.
struct ShmUnexp {
  MatchKey key;
  RecInfo info;
  std::vector<std::byte> bytes;
};

/// Posted receive record. Direct receives carry a borrowed RecvSpan.
struct ShmRecv {
  DevRequest request;
  buf::Buffer* buffer = nullptr;
  bool direct = false;
  RecvSpan span{};
};

/// Match-gate predicate for posted-receive matching: a twin-posted shared
/// receive (hybdev ANY_SOURCE) may only be delivered by the child that wins
/// its match gate; ordinary receives always pass.
bool claim_recv(const ShmRecv& rec) {
  return !rec.request->shared() || rec.request->try_claim_match();
}

/// A message matched to a posted receive at FIRST-chunk time, streaming
/// ring -> destination with no assembly vector in between. The destination
/// is one of: the direct receive's span, the posted Buffer's prepared
/// regions, a staging vector (direct receive, ineligible shape), or nothing
/// (truncating: drain and discard).
struct StreamAssembly {
  enum class Mode { Span, Buffer, Stage, Discard };
  Mode mode = Mode::Discard;
  DevRequest request;
  buf::Buffer* buffer = nullptr;      // Buffer mode
  RecvSpan span{};                    // Span mode
  std::span<std::byte> dst_a, dst_b;  // the two destination regions
  std::vector<std::byte> stage;       // Stage mode backing store
  RecInfo first;
  std::size_t got = 0;  // payload bytes landed so far
};

struct AssemblyKey {
  std::uint64_t src = 0;
  std::uint64_t msg_id = 0;
  friend bool operator==(const AssemblyKey&, const AssemblyKey&) = default;
};
struct AssemblyKeyHash {
  std::size_t operator()(const AssemblyKey& key) const noexcept {
    return std::hash<std::uint64_t>{}(key.src) * 1000003u ^
           std::hash<std::uint64_t>{}(key.msg_id);
  }
};

class ShmDevice final : public Device, public RequestCanceller {
 public:
  ~ShmDevice() override {
    try {
      finish();
    } catch (const Error&) {
    }
  }

  std::vector<ProcessID> init(const DeviceConfig& config) override {
    if (config.self_index >= config.world.size()) {
      throw DeviceError("shmdev: self_index out of range");
    }
    self_ = config.world[config.self_index].id;
    own_ = Segment::create(self_.value);
    for (const EndpointInfo& info : config.world) {
      peers_.emplace(info.id.value, Segment::open_peer(info.id.value));
    }
    running_ = true;
    input_thread_ = std::thread([this] { input_loop(); });
    std::vector<ProcessID> world;
    world.reserve(config.world.size());
    for (const EndpointInfo& info : config.world) world.push_back(info.id);
    return world;
  }

  int send_overhead() const override { return 0; }
  int recv_overhead() const override { return 0; }
  ProcessID id() const override { return self_; }

  void finish() override {
    if (running_.exchange(false)) {
      // Unblock our own input thread with a shutdown record.
      RecInfo rec;
      rec.type = RecType::Shutdown;
      rec.src = self_.value;
      own_->push(rec, {}, {});
      input_thread_.join();
    }
    peers_.clear();
    own_.reset();
    completions_.shutdown();
  }

  DevRequest isend(buf::Buffer& buffer, ProcessID dst, int tag, int context) override {
    return send_common(buffer, dst, tag, context, /*need_ack=*/false);
  }

  DevRequest issend(buf::Buffer& buffer, ProcessID dst, int tag, int context) override {
    return send_common(buffer, dst, tag, context, /*need_ack=*/true);
  }

  DevRequest isend_segments(std::span<const std::byte> header,
                            std::span<const SendSegment> segments, ProcessID dst, int tag,
                            int context) override {
    return send_segments_common(header, segments, dst, tag, context, /*need_ack=*/false);
  }

  DevRequest issend_segments(std::span<const std::byte> header,
                             std::span<const SendSegment> segments, ProcessID dst, int tag,
                             int context) override {
    return send_segments_common(header, segments, dst, tag, context, /*need_ack=*/true);
  }

  DevRequest irecv_direct(const RecvSpan& dst, ProcessID src, int tag, int context) override {
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Recv, sink_,
                                                     counters_.get(), this);
    const MatchKey key{context, tag, src};
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_recv_begin(prof::MsgInfo{src.value, tag, context, 0});
    }
    std::unique_ptr<ShmUnexp> hit;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      auto found = unexpected_.match(key);
      if (!found) {
        ShmRecv rec;
        rec.request = request;
        rec.direct = true;
        rec.span = dst;
        posted_.add(key, std::move(rec));
        note_posted_depth_locked();
        return request;
      }
      hit = std::move(*found);
      note_match(hit->key, hit->info.static_len + hit->info.dynamic_len, /*was_posted=*/false);
      note_unexpected_locked(-unexp_payload_bytes(*hit));
      request->mark_matched(hit->info.msg_id, hit->info.src, hit->key.tag, hit->key.context,
                            hit->info.static_len + hit->info.dynamic_len);
    }
    deliver_direct(*hit, dst, request);
    return request;
  }

  DevRequest irecv(buf::Buffer& buffer, ProcessID src, int tag, int context) override {
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Recv, sink_,
                                                     counters_.get(), this);
    const MatchKey key{context, tag, src};
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_recv_begin(prof::MsgInfo{src.value, tag, context, 0});
    }
    std::unique_ptr<ShmUnexp> hit;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      auto found = unexpected_.match(key);
      if (!found) {
        posted_.add(key, ShmRecv{request, &buffer});
        note_posted_depth_locked();
        return request;
      }
      hit = std::move(*found);
      note_match(hit->key, hit->info.static_len + hit->info.dynamic_len, /*was_posted=*/false);
      note_unexpected_locked(-unexp_payload_bytes(*hit));
      request->mark_matched(hit->info.msg_id, hit->info.src, hit->key.tag, hit->key.context,
                            hit->info.static_len + hit->info.dynamic_len);
    }
    deliver(*hit, buffer, request);
    return request;
  }

  DevStatus probe(ProcessID src, int tag, int context) override {
    counters_->add(prof::Ctr::ProbeCalls);
    const MatchKey key{context, tag, src};
    const std::uint32_t deadline_ms = faults::op_timeout_ms();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
    std::unique_lock<std::mutex> lock(recv_mu_);
    for (;;) {
      const auto* entry = unexpected_.find(key);
      if (entry != nullptr) return unexp_status(**entry);
      if (!running_) throw DeviceError("shmdev: probe after finish");
      if (!src.is_any() && dead_peers_.count(src.value) > 0) {
        throw DeviceError("shmdev: probe source " + std::to_string(src.value) + " failed",
                          ErrCode::ProcFailed);
      }
      if (deadline_ms == 0) {
        arrival_cv_.wait(lock);
      } else if (arrival_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        faults::counters().add(prof::Ctr::OpTimeouts);
        throw DeviceError("shmdev: probe timed out after " + std::to_string(deadline_ms) +
                              " ms (MPCX_OP_TIMEOUT_MS)",
                          ErrCode::Timeout);
      }
    }
  }

  std::optional<DevStatus> iprobe(ProcessID src, int tag, int context) override {
    counters_->add(prof::Ctr::IprobeCalls);
    const MatchKey key{context, tag, src};
    std::lock_guard<std::mutex> lock(recv_mu_);
    const auto* entry = unexpected_.find(key);
    if (entry == nullptr) return std::nullopt;
    return unexp_status(**entry);
  }

  DevRequest peek() override {
    DevRequest completed = completions_.pop();
    if (completed) counters_->add(prof::Ctr::PeekWakeups);
    return completed;
  }

  void redirect_completions(CompletionSink* sink) override { sink_ = sink; }

  bool post_shared_recv(const DevRequest& request, buf::Buffer* buffer, const RecvSpan* span,
                        ProcessID src, int tag, int context) override {
    const MatchKey key{context, tag, src};
    std::unique_ptr<ShmUnexp> hit;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      purge_dead_twins_locked(request.get());
      // find() first: the match gate must be claimed BEFORE the unexpected
      // entry is consumed, so a gate lost to the sibling leaves the message
      // in place for the next receive. Both calls hit the same earliest
      // arrival because the lock is held across them.
      const auto* found = unexpected_.find(key);
      if (found == nullptr) {
        ShmRecv rec;
        rec.request = request;
        if (span != nullptr) {
          rec.direct = true;
          rec.span = *span;
        } else {
          rec.buffer = buffer;
        }
        posted_.add(key, std::move(rec));
        note_posted_depth_locked();
        return false;
      }
      if (!request->try_claim_match()) return true;  // sibling already delivering
      hit = std::move(*unexpected_.match(key));
      note_match(hit->key, hit->info.static_len + hit->info.dynamic_len, /*was_posted=*/false);
      note_unexpected_locked(-unexp_payload_bytes(*hit));
      request->mark_matched(hit->info.msg_id, hit->info.src, hit->key.tag, hit->key.context,
                            hit->info.static_len + hit->info.dynamic_len);
    }
    if (span != nullptr) {
      deliver_direct(*hit, *span, request);
    } else {
      deliver(*hit, *buffer, request);
    }
    return true;
  }

  bool cancel(const DevRequest& request) override {
    if (!request || request->kind() != DevRequestState::Kind::Recv) return false;
    bool removed = false;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      removed = posted_.remove_scan(
          [&](const ShmRecv& rec) { return rec.request.get() == request.get(); });
      if (removed) note_posted_depth_locked();
    }
    if (!removed) return false;
    DevStatus status;
    status.cancelled = true;
    request->complete(status);
    return true;
  }

  /// RequestCanceller: a wait() on `request` timed out. Sends copy the
  /// whole message into the receiver's ring before send_common returns, so
  /// the only lingering references are the posted-receive record and an
  /// ACK wait; both drop cleanly (a late ACK with no waiter is already
  /// ignored by input_loop). Returns false when the input thread is
  /// mid-deliver() into the receive buffer.
  bool abandon(DevRequestState& request) override {
    if (request.kind() == DevRequestState::Kind::Recv) {
      std::lock_guard<std::mutex> lock(recv_mu_);
      const bool removed = posted_.remove_scan(
          [&](const ShmRecv& rec) { return rec.request.get() == &request; });
      if (removed) note_posted_depth_locked();
      return removed;
    }
    std::lock_guard<std::mutex> lock(ack_mu_);
    for (auto it = awaiting_ack_.begin(); it != awaiting_ack_.end(); ++it) {
      if (it->second.request.get() == &request) {
        awaiting_ack_.erase(it);
        note_rndv_slots_locked();
        return true;
      }
    }
    return false;  // ACK record taken: input thread is mid-complete
  }

  /// A failure detector declared `peer` dead. Shared-memory rings have no
  /// channel to break, so the sweep errors everything still pinned to the
  /// peer: posted concrete-source receives (their bytes will never arrive)
  /// and ACK-synced sends still awaiting the peer's ACK. Wildcard receives
  /// stay posted (another peer may satisfy them); streams mid-assembly are
  /// input-thread-owned and simply never finish their discard. New sends to
  /// and blocking probes of the dead peer fail with ProcFailed.
  void notify_peer_failed(ProcessID peer) override {
    if (!running_) return;
    std::vector<DevRequest> victims;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      if (!dead_peers_.insert(peer.value).second) return;  // already swept
      for (auto& rec : posted_.drain_if([&](const MatchKey& key, const ShmRecv&) {
             return !key.src.is_any() && key.src.value == peer.value;
           })) {
        victims.push_back(std::move(rec.request));
      }
      note_posted_depth_locked();
      arrival_cv_.notify_all();  // wake probes so they observe dead_peers_
    }
    {
      std::lock_guard<std::mutex> lock(ack_mu_);
      for (auto it = awaiting_ack_.begin(); it != awaiting_ack_.end();) {
        if (it->second.dst == peer.value) {
          victims.push_back(std::move(it->second.request));
          it = awaiting_ack_.erase(it);
        } else {
          ++it;
        }
      }
      note_rndv_slots_locked();
    }
    DevStatus status;
    status.source = peer;
    status.error = ErrCode::ProcFailed;
    for (const DevRequest& request : victims) {
      if (request) request->complete(status);
    }
  }

  const prof::Counters* counters() const override { return counters_.get(); }

 private:
  /// Refuse traffic toward a peer already declared dead (ProcFailed keeps
  /// the failure attributable; a hang here would defeat the detector).
  void check_peer_alive(ProcessID dst) {
    std::lock_guard<std::mutex> lock(recv_mu_);
    if (dead_peers_.count(dst.value) > 0) {
      throw DeviceError("shmdev: destination " + std::to_string(dst.value) + " failed",
                        ErrCode::ProcFailed);
    }
  }
  /// Drop posted entries that are dead twins — shared receives whose match
  /// gate the sibling device already won. They can no longer be delivered,
  /// only discarded; pruning here (under recv_mu_) keeps the posted set from
  /// accumulating one dead entry per consumed shared receive. `posting` is
  /// the request being posted right now (its gate is still open).
  void purge_dead_twins_locked(const DevRequestState* posting) {
    posted_.drain_if([&](const MatchKey&, const ShmRecv& rec) {
      return rec.request.get() != posting && rec.request->shared() &&
             rec.request->match_claimed();
    });
    note_posted_depth_locked();
  }

  void note_match(const MatchKey& key, std::size_t bytes, bool was_posted) {
    counters_->add(was_posted ? prof::Ctr::PostedMatches : prof::Ctr::UnexpectedMatches);
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_match(prof::MsgInfo{key.src.value, key.tag, key.context, bytes}, was_posted);
    }
  }

  // Pvar gauge refreshers: each reads the queue size it mirrors under the
  // lock that owns that queue, so the absolute gauge_set is exact.
  void note_posted_depth_locked() {
    pvars_->gauge_set(prof::Pv::PostedRecvDepth, posted_.size());
  }
  void note_unexpected_locked(std::int64_t payload_delta) {
    pvars_->gauge_set(prof::Pv::UnexpectedDepth, unexpected_.size());
    if (payload_delta != 0) pvars_->gauge_add(prof::Pv::UnexpectedBytes, payload_delta);
  }
  static std::int64_t unexp_payload_bytes(const ShmUnexp& msg) {
    return static_cast<std::int64_t>(msg.info.static_len) + msg.info.dynamic_len;
  }
  /// ACK-synced sends are shmdev's rendezvous analog (see send_common), so
  /// the ACK-wait table backs the rndv_slots gauge. Called under ack_mu_.
  void note_rndv_slots_locked() {
    pvars_->gauge_set(prof::Pv::RndvSlots, awaiting_ack_.size());
  }

  Segment& peer(std::uint64_t id) {
    auto it = peers_.find(id);
    if (it == peers_.end()) throw DeviceError("shmdev: unknown destination " + std::to_string(id));
    return *it->second;
  }

  DevRequest send_common(buf::Buffer& buffer, ProcessID dst, int tag, int context,
                         bool need_ack) {
    if (!buffer.in_read_mode()) throw DeviceError("shmdev: send buffer must be committed");
    check_peer_alive(dst);
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Send, sink_,
                                                     nullptr, this);
    const std::uint64_t msg_id = prof::alloc_corr_id(self_.value);
    request->set_corr(msg_id);
    const std::size_t total_bytes = buffer.static_size() + buffer.dynamic_size();
    counters_->add(prof::Ctr::MsgsSent);
    counters_->add(prof::Ctr::BytesSent, total_bytes);
    // Buffered (standard-mode) sends are shmdev's eager analog; ACK-synced
    // sends play the rendezvous role (completion proves the receiver matched).
    counters_->add(need_ack ? prof::Ctr::RndvSends : prof::Ctr::EagerSends);
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_send_begin(prof::MsgInfo{dst.value, tag, context, total_bytes});
    }
    prof::record_flight(msg_id, prof::FlightStage::SendPosted, dst.value, tag, context,
                        total_bytes);

    if (need_ack) {
      std::lock_guard<std::mutex> lock(ack_mu_);
      DevStatus status;
      status.source = self_;
      status.tag = tag;
      status.context = context;
      status.static_bytes = buffer.static_size();
      status.dynamic_bytes = buffer.dynamic_size();
      awaiting_ack_.emplace(msg_id, AckWait{request, status, dst.value});
      note_rndv_slots_locked();
    }

    // Stream static || dynamic through chunk-sized records.
    const auto s = buffer.static_payload();
    const auto d = buffer.dynamic_payload();
    const std::size_t total = s.size() + d.size();
    Segment& ring = peer(dst.value);
    std::size_t sent = 0;
    do {
      const std::size_t chunk = std::min(kMaxChunk, total - sent);
      RecInfo rec;
      rec.type = RecType::Data;
      rec.src = self_.value;
      rec.msg_id = msg_id;
      rec.context = context;
      rec.tag = tag;
      rec.static_len = static_cast<std::uint32_t>(s.size());
      rec.dynamic_len = static_cast<std::uint32_t>(d.size());
      rec.flags = static_cast<std::uint8_t>(sent + chunk == total ? kLastChunk : 0) |
                  static_cast<std::uint8_t>(need_ack ? kNeedAck : 0);
      // The chunk may straddle the static/dynamic boundary.
      std::span<const std::byte> part_a, part_b;
      if (sent < s.size()) {
        part_a = s.subspan(sent, std::min(chunk, s.size() - sent));
        if (chunk > part_a.size()) part_b = d.subspan(0, chunk - part_a.size());
      } else {
        part_a = d.subspan(sent - s.size(), chunk);
      }
      // Fault injection at the ring choke point (Data records only — ACK
      // and Shutdown records must stay reliable or finish() would hang).
      std::vector<std::byte> corrupted;
      if (faults::enabled()) {
        switch (faults::next_action(faults::Site::ShmPush)) {
          case faults::Action::Drop:
            sent += chunk;
            continue;  // chunk vanishes; the receiver's assembly never finishes
          case faults::Action::Reset: {
            // No connection to reset over shared memory; the closest analog
            // is the send failing outright.
            {
              std::lock_guard<std::mutex> lock(ack_mu_);
              awaiting_ack_.erase(msg_id);
              note_rndv_slots_locked();
            }
            DevStatus status;
            status.source = self_;
            status.tag = tag;
            status.context = context;
            status.error = ErrCode::ConnReset;
            request->complete(status);
            return request;
          }
          case faults::Action::Corrupt:
            if (!part_a.empty()) {
              corrupted.assign(part_a.begin(), part_a.end());
              corrupted[corrupted.size() / 2] ^= std::byte{0x5A};
              part_a = corrupted;
            }
            break;
          case faults::Action::None:
            break;
        }
      }
      ring.push(rec, part_a, part_b);
      sent += chunk;
    } while (sent < total);
    prof::record_flight(msg_id, prof::FlightStage::SendWire, dst.value, tag, context,
                        total_bytes);

    if (!need_ack) {
      // Buffered semantics: data fully copied into the receiver's ring.
      DevStatus status;
      status.source = self_;
      status.tag = tag;
      status.context = context;
      status.static_bytes = s.size();
      status.dynamic_bytes = d.size();
      request->complete(status);
    }
    return request;
  }

  /// Zero-copy send: gather [section header | payload segments] straight
  /// from user memory into the receiver's ring, chunked like send_common.
  /// The blocking push means the borrowed segments are released when this
  /// returns, so standard-mode requests complete synchronously.
  DevRequest send_segments_common(std::span<const std::byte> header,
                                  std::span<const SendSegment> segments, ProcessID dst,
                                  int tag, int context, bool need_ack) {
    check_peer_alive(dst);
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Send, sink_,
                                                     nullptr, this);
    const std::uint64_t msg_id = prof::alloc_corr_id(self_.value);
    request->set_corr(msg_id);
    std::size_t payload = 0;
    for (const SendSegment& seg : segments) payload += seg.size;
    const std::size_t total = header.size() + payload;  // one static region, no dynamic
    counters_->add(prof::Ctr::MsgsSent);
    counters_->add(prof::Ctr::BytesSent, total);
    counters_->add(need_ack ? prof::Ctr::RndvSends : prof::Ctr::EagerSends);
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_send_begin(prof::MsgInfo{dst.value, tag, context, total});
    }
    prof::record_flight(msg_id, prof::FlightStage::SendPosted, dst.value, tag, context, total);

    if (need_ack) {
      std::lock_guard<std::mutex> lock(ack_mu_);
      DevStatus status;
      status.source = self_;
      status.tag = tag;
      status.context = context;
      status.static_bytes = total;
      awaiting_ack_.emplace(msg_id, AckWait{request, status, dst.value});
      note_rndv_slots_locked();
    }

    // Walk [header | seg0 | seg1 | ...] with a (part, offset) cursor,
    // gathering each chunk's slices for one push.
    Segment& ring = peer(dst.value);
    std::size_t part = 0, part_off = 0;
    auto part_span = [&](std::size_t index) -> std::span<const std::byte> {
      if (index == 0) return header;
      return {segments[index - 1].data, segments[index - 1].size};
    };
    const std::size_t nparts = 1 + segments.size();
    std::size_t sent = 0;
    std::vector<std::span<const std::byte>> chunk_parts;
    std::vector<std::byte> corrupted;
    do {
      const std::size_t chunk = std::min(kMaxChunk, total - sent);
      chunk_parts.clear();
      std::size_t taken = 0;
      while (taken < chunk && part < nparts) {
        const auto cur = part_span(part);
        const std::size_t take = std::min(chunk - taken, cur.size() - part_off);
        if (take > 0) chunk_parts.push_back(cur.subspan(part_off, take));
        taken += take;
        part_off += take;
        if (part_off == cur.size()) {
          ++part;
          part_off = 0;
        }
      }
      RecInfo rec;
      rec.type = RecType::Data;
      rec.src = self_.value;
      rec.msg_id = msg_id;
      rec.context = context;
      rec.tag = tag;
      rec.static_len = static_cast<std::uint32_t>(total);
      rec.dynamic_len = 0;
      rec.flags = static_cast<std::uint8_t>(sent + chunk == total ? kLastChunk : 0) |
                  static_cast<std::uint8_t>(need_ack ? kNeedAck : 0);
      // Same once-per-chunk fault discipline as send_common.
      if (faults::enabled()) {
        switch (faults::next_action(faults::Site::ShmPush)) {
          case faults::Action::Drop:
            sent += chunk;
            continue;
          case faults::Action::Reset: {
            {
              std::lock_guard<std::mutex> lock(ack_mu_);
              awaiting_ack_.erase(msg_id);
              note_rndv_slots_locked();
            }
            DevStatus status;
            status.source = self_;
            status.tag = tag;
            status.context = context;
            status.error = ErrCode::ConnReset;
            request->complete(status);
            return request;
          }
          case faults::Action::Corrupt:
            if (!chunk_parts.empty() && !chunk_parts.front().empty()) {
              const auto& front = chunk_parts.front();
              corrupted.assign(front.begin(), front.end());
              corrupted[corrupted.size() / 2] ^= std::byte{0x5A};
              chunk_parts.front() = corrupted;
            }
            break;
          case faults::Action::None:
            break;
        }
      }
      ring.push_parts(rec, chunk_parts);
      sent += chunk;
    } while (sent < total);
    prof::record_flight(msg_id, prof::FlightStage::SendWire, dst.value, tag, context, total);

    if (!need_ack) {
      DevStatus status;
      status.source = self_;
      status.tag = tag;
      status.context = context;
      status.static_bytes = total;
      request->complete(status);
    }
    return request;
  }

  void send_ack(std::uint64_t to, std::uint64_t msg_id) {
    RecInfo rec;
    rec.type = RecType::Ack;
    rec.src = self_.value;
    rec.msg_id = msg_id;
    peer(to).push(rec, {}, {});
  }

  static DevStatus unexp_status(const ShmUnexp& msg) {
    DevStatus status;
    status.source = msg.key.src;
    status.tag = msg.key.tag;
    status.context = msg.key.context;
    status.static_bytes = msg.info.static_len;
    status.dynamic_bytes = msg.info.dynamic_len;
    return status;
  }

  /// Copy a complete message into the user's buffer and finish the receive.
  void deliver(const ShmUnexp& msg, buf::Buffer& buffer, const DevRequest& request) {
    DevStatus status = unexp_status(msg);
    if (msg.info.static_len > buffer.capacity()) {
      status.truncated = true;
    } else {
      auto sdst = buffer.prepare_static(msg.info.static_len);
      std::memcpy(sdst.data(), msg.bytes.data(), msg.info.static_len);
      auto ddst = buffer.prepare_dynamic(msg.info.dynamic_len);
      if (msg.info.dynamic_len > 0) {
        std::memcpy(ddst.data(), msg.bytes.data() + msg.info.static_len, msg.info.dynamic_len);
      }
      buffer.seal_received();
    }
    if (msg.info.flags & kNeedAck) send_ack(msg.info.src, msg.info.msg_id);
    request->complete(status);
  }

  /// Copy a complete unexpected message out to a direct receive: into the
  /// span when the shape allows, otherwise into a staging buffer attached
  /// to the request (direct stays false).
  void deliver_direct(const ShmUnexp& msg, const RecvSpan& span, const DevRequest& request) {
    constexpr std::size_t sect = buf::Buffer::kSectionHeaderBytes;
    DevStatus status = unexp_status(msg);
    if (msg.info.static_len > sect + span.payload_capacity) {
      status.truncated = true;
    } else if (msg.info.dynamic_len == 0 && msg.info.static_len >= sect) {
      std::memcpy(span.header, msg.bytes.data(), sect);
      if (msg.info.static_len > sect) {
        std::memcpy(span.payload, msg.bytes.data() + sect, msg.info.static_len - sect);
      }
      status.direct = true;
    } else {
      auto staged = std::make_unique<buf::Buffer>(msg.info.static_len);
      auto sdst = staged->prepare_static(msg.info.static_len);
      std::memcpy(sdst.data(), msg.bytes.data(), msg.info.static_len);
      auto ddst = staged->prepare_dynamic(msg.info.dynamic_len);
      if (msg.info.dynamic_len > 0) {
        std::memcpy(ddst.data(), msg.bytes.data() + msg.info.static_len, msg.info.dynamic_len);
      }
      staged->seal_received();
      request->attach_buffer(std::move(staged));
    }
    if (msg.info.flags & kNeedAck) send_ack(msg.info.src, msg.info.msg_id);
    request->complete(status);
  }

  void input_loop() {
    std::vector<std::byte> scratch;
    while (running_) {
      const RecInfo rec = own_->pop_routed(
          [&](const RecInfo& r, std::size_t body)
              -> std::pair<std::span<std::byte>, std::span<std::byte>> {
            if (r.type != RecType::Data) {
              scratch.resize(body);
              return {std::span<std::byte>(scratch), {}};
            }
            return route_data(r, body, scratch);
          });
      switch (rec.type) {
        case RecType::Shutdown:
          return;
        case RecType::Ack: {
          AckWait wait;
          {
            std::lock_guard<std::mutex> lock(ack_mu_);
            auto it = awaiting_ack_.find(rec.msg_id);
            if (it == awaiting_ack_.end()) continue;
            wait = std::move(it->second);
            awaiting_ack_.erase(it);
            note_rndv_slots_locked();
          }
          wait.request->complete(wait.status);
          continue;
        }
        case RecType::Data: {
          const AssemblyKey akey{rec.src, rec.msg_id};
          auto it = streams_.find(akey);
          if (it != streams_.end()) {
            // Streaming straight to its destination; nothing to assemble.
            if (rec.flags & kLastChunk) {
              StreamAssembly done = std::move(it->second);
              streams_.erase(it);
              finalize_stream(done, rec);
            }
            continue;
          }
          handle_data(rec, scratch);
          continue;
        }
      }
    }
  }

  /// pop_routed callback for Data records (runs under the ring mutex).
  /// First chunk of a new message: match a posted receive NOW — tcpdev's
  /// header-decode-time match — so the payload streams ring -> destination
  /// with no assembly vector. Unmatched messages keep the legacy
  /// scratch -> assemblies_ path so a receive posted mid-message still
  /// matches at last-chunk time, exactly as before.
  std::pair<std::span<std::byte>, std::span<std::byte>> route_data(
      const RecInfo& rec, std::size_t body, std::vector<std::byte>& scratch) {
    constexpr std::size_t sect = buf::Buffer::kSectionHeaderBytes;
    const AssemblyKey akey{rec.src, rec.msg_id};
    auto it = streams_.find(akey);
    if (it == streams_.end()) {
      if (assemblies_.find(akey) != assemblies_.end()) {
        scratch.resize(body);
        return {std::span<std::byte>(scratch), {}};
      }
      const MatchKey key{rec.context, rec.tag, ProcessID{rec.src}};
      std::optional<ShmRecv> posted;
      {
        std::lock_guard<std::mutex> lock(recv_mu_);
        posted = posted_.match_where(key, claim_recv);
        note_posted_depth_locked();
        if (posted) {
          note_match(key, rec.static_len + rec.dynamic_len, /*was_posted=*/true);
          posted->request->mark_matched(rec.msg_id, rec.src, rec.tag, rec.context,
                                        rec.static_len + rec.dynamic_len);
        }
      }
      if (!posted) {
        scratch.resize(body);
        return {std::span<std::byte>(scratch), {}};
      }
      StreamAssembly sa;
      sa.request = posted->request;
      sa.first = rec;
      if (posted->direct) {
        if (rec.static_len > sect + posted->span.payload_capacity) {
          sa.mode = StreamAssembly::Mode::Discard;
        } else if (rec.dynamic_len == 0 && rec.static_len >= sect) {
          sa.mode = StreamAssembly::Mode::Span;
          sa.span = posted->span;
          sa.dst_a = {posted->span.header, sect};
          sa.dst_b = {posted->span.payload, rec.static_len - sect};
        } else {
          sa.mode = StreamAssembly::Mode::Stage;
          sa.stage.resize(rec.static_len + static_cast<std::size_t>(rec.dynamic_len));
        }
      } else if (rec.static_len > posted->buffer->capacity()) {
        sa.mode = StreamAssembly::Mode::Discard;
      } else {
        sa.mode = StreamAssembly::Mode::Buffer;
        sa.buffer = posted->buffer;
        sa.dst_a = posted->buffer->prepare_static(rec.static_len);
        sa.dst_b = posted->buffer->prepare_dynamic(rec.dynamic_len);
      }
      it = streams_.emplace(akey, std::move(sa)).first;
      if (it->second.mode == StreamAssembly::Mode::Stage) {
        it->second.dst_a = it->second.stage;  // rebind after the vector moved
      }
    }
    StreamAssembly& sa = it->second;
    const std::size_t cap = sa.dst_a.size() + sa.dst_b.size();
    if (sa.mode == StreamAssembly::Mode::Discard || sa.got + body > cap) {
      // Discarding, or a record claims more payload than announced (no
      // checksum protects shm records): drain into scratch, never overrun.
      sa.got += body;
      scratch.resize(body);
      return {std::span<std::byte>(scratch), {}};
    }
    std::pair<std::span<std::byte>, std::span<std::byte>> dests;
    if (sa.got < sa.dst_a.size()) {
      dests.first = sa.dst_a.subspan(sa.got, std::min(body, sa.dst_a.size() - sa.got));
      if (body > dests.first.size()) dests.second = sa.dst_b.subspan(0, body - dests.first.size());
    } else {
      dests.first = sa.dst_b.subspan(sa.got - sa.dst_a.size(), body);
    }
    sa.got += body;
    return dests;
  }

  /// Last chunk of a streamed message landed: complete the receive. A set
  /// claim means the waiter timed out mid-stream — preserve the landed
  /// bytes as an ordinary unexpected message (matching what the legacy
  /// assembly path did for abandoned receives) before the claim-losing
  /// complete() releases the waiter.
  void finalize_stream(StreamAssembly& sa, const RecInfo& last) {
    DevStatus status;
    status.source = ProcessID{sa.first.src};
    status.tag = sa.first.tag;
    status.context = sa.first.context;
    status.static_bytes = sa.first.static_len;
    status.dynamic_bytes = sa.first.dynamic_len;
    const bool need_ack = (last.flags & kNeedAck) != 0;
    if (sa.mode == StreamAssembly::Mode::Discard) {
      status.truncated = true;
      if (need_ack) send_ack(sa.first.src, sa.first.msg_id);
      sa.request->complete(status);
      return;
    }
    if (sa.request->claimed()) {
      preserve_stream(sa, last);
      sa.request->complete(status);
      return;
    }
    switch (sa.mode) {
      case StreamAssembly::Mode::Span:
        status.direct = true;
        break;
      case StreamAssembly::Mode::Buffer:
        sa.buffer->seal_received();
        break;
      case StreamAssembly::Mode::Stage: {
        auto staged = std::make_unique<buf::Buffer>(sa.first.static_len);
        auto sdst = staged->prepare_static(sa.first.static_len);
        std::memcpy(sdst.data(), sa.stage.data(), sa.first.static_len);
        auto ddst = staged->prepare_dynamic(sa.first.dynamic_len);
        if (sa.first.dynamic_len > 0) {
          std::memcpy(ddst.data(), sa.stage.data() + sa.first.static_len, sa.first.dynamic_len);
        }
        staged->seal_received();
        sa.request->attach_buffer(std::move(staged));
        break;
      }
      case StreamAssembly::Mode::Discard:
        break;  // handled above
    }
    if (need_ack) send_ack(sa.first.src, sa.first.msg_id);
    sa.request->complete(status);
  }

  /// Requeue an abandoned streamed message as unexpected. The ack (if the
  /// sender wants one) stays deferred until a later receive actually
  /// matches it, mirroring the unmatched-assembly path.
  void preserve_stream(const StreamAssembly& sa, const RecInfo& last) {
    auto msg = std::make_unique<ShmUnexp>();
    msg->key = MatchKey{sa.first.context, sa.first.tag, ProcessID{sa.first.src}};
    msg->info = sa.first;
    msg->info.flags = last.flags;
    msg->bytes.resize(sa.dst_a.size() + sa.dst_b.size());
    std::memcpy(msg->bytes.data(), sa.dst_a.data(), sa.dst_a.size());
    if (!sa.dst_b.empty()) {
      std::memcpy(msg->bytes.data() + sa.dst_a.size(), sa.dst_b.data(), sa.dst_b.size());
    }
    const MatchKey key = msg->key;
    const std::int64_t unexp_bytes = unexp_payload_bytes(*msg);
    std::lock_guard<std::mutex> lock(recv_mu_);
    unexpected_.add(key, std::move(msg));
    counters_->record_max(prof::Ctr::UnexpectedDepthHwm, unexpected_.size());
    note_unexpected_locked(unexp_bytes);
    arrival_cv_.notify_all();
  }

  void handle_data(const RecInfo& rec, std::vector<std::byte>& payload) {
    const AssemblyKey akey{rec.src, rec.msg_id};
    auto it = assemblies_.find(akey);
    if (it == assemblies_.end()) {
      it = assemblies_.emplace(akey, Assembly{rec, {}}).first;
      it->second.bytes.reserve(rec.static_len + rec.dynamic_len);
    }
    it->second.bytes.insert(it->second.bytes.end(), payload.begin(), payload.end());
    if (!(rec.flags & kLastChunk)) return;

    const MatchKey key{rec.context, rec.tag, ProcessID{rec.src}};
    auto message = std::make_unique<ShmUnexp>();
    message->key = key;
    message->info = it->second.first;
    message->info.flags = rec.flags;  // LAST carries the final NEED_ACK bit
    message->bytes = std::move(it->second.bytes);
    assemblies_.erase(it);

    std::optional<ShmRecv> posted;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      posted = posted_.match_where(key, claim_recv);
      note_posted_depth_locked();
      if (!posted) {
        const std::int64_t unexp_bytes = unexp_payload_bytes(*message);
        // NOTE: the key is passed as a separate value — evaluation order of
        // `message->key` next to `std::move(message)` would be unspecified.
        unexpected_.add(key, std::move(message));
        counters_->record_max(prof::Ctr::UnexpectedDepthHwm, unexpected_.size());
        note_unexpected_locked(unexp_bytes);
        arrival_cv_.notify_all();
        return;
      }
      note_match(key, rec.static_len + rec.dynamic_len, /*was_posted=*/true);
      posted->request->mark_matched(rec.msg_id, rec.src, rec.tag, rec.context,
                                    rec.static_len + rec.dynamic_len);
    }
    // The receive may have been posted between route_data's match attempt
    // (first-chunk time) and now; a direct posting carries a span, not a
    // buffer.
    if (posted->direct) {
      deliver_direct(*message, posted->span, posted->request);
    } else {
      deliver(*message, *posted->buffer, posted->request);
    }
  }

  struct AckWait {
    DevRequest request;
    DevStatus status;
    std::uint64_t dst = 0;  ///< destination peer (for rank-failure sweeps)
  };

  ProcessID self_{};
  std::unique_ptr<Segment> own_;
  std::unordered_map<std::uint64_t, std::unique_ptr<Segment>> peers_;
  std::thread input_thread_;
  std::atomic<bool> running_{false};

  std::mutex recv_mu_;
  std::condition_variable arrival_cv_;
  // Peers declared dead by a failure detector (notify_peer_failed); probes
  // and new sends toward them fail with ProcFailed. Guarded by recv_mu_.
  std::unordered_set<std::uint64_t> dead_peers_;
  PostedRecvSet<ShmRecv> posted_;
  UnexpectedSet<std::unique_ptr<ShmUnexp>> unexpected_;
  std::unordered_map<AssemblyKey, Assembly, AssemblyKeyHash> assemblies_;  // input thread only
  // Messages matched at first-chunk time, streaming ring -> destination
  // with no assembly vector. Input thread only, like assemblies_.
  std::unordered_map<AssemblyKey, StreamAssembly, AssemblyKeyHash> streams_;

  std::mutex ack_mu_;
  // Keyed by correlation id (prof::alloc_corr_id): ids double as the flight
  // recorder's message identity, so the ACK protocol and tracing agree.
  std::unordered_map<std::uint64_t, AckWait> awaiting_ack_;

  std::shared_ptr<prof::Counters> counters_ = prof::Registry::global().create("shmdev");
  std::shared_ptr<prof::PvarSet> pvars_ = prof::PvarRegistry::global().create("shmdev");
  CompletionQueue completions_;
  /// Where hooked completions publish: our own queue, unless a composite
  /// parent (hybdev) redirected us into its merged queue.
  CompletionSink* sink_ = &completions_;
};

}  // namespace

std::unique_ptr<Device> make_shmdev() { return std::make_unique<ShmDevice>(); }

}  // namespace mpcx::xdev
