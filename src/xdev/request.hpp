// Device-level request and status objects.
//
// A DevRequest is the handle for one in-flight non-blocking operation at the
// xdev level. Completion is signalled once by the device (from a user thread
// for immediate eager sends, or from the input-handler / progress engine);
// any number of threads may wait()/test() concurrently.
//
// To support the paper's Waitany() design (Sec. IV-E.1), a request can carry
// a *completion hook*: an opaque object installed by the mpdev layer's
// WaitAny machinery. If a hook is installed when the request completes, the
// request is also pushed onto the device's completion queue, which is what
// xdev's peek() consumes.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <utility>

#include "bufx/buffer.hpp"
#include "prof/counters.hpp"
#include "prof/flight.hpp"
#include "prof/hooks.hpp"
#include "prof/pvars.hpp"
#include "prof/trace.hpp"
#include "support/error.hpp"
#include "support/faults.hpp"
#include "xdev/process_id.hpp"

namespace mpcx::xdev {

/// Completion record for one receive (or send) operation.
struct DevStatus {
  ProcessID source{};
  int tag = 0;
  int context = 0;
  std::size_t static_bytes = 0;   ///< bytes of static payload received
  std::size_t dynamic_bytes = 0;  ///< bytes of dynamic payload received
  /// True when the incoming message exceeded the posted receive buffer's
  /// capacity; the payload was drained and discarded. Higher layers turn
  /// this into an error on Wait/Test (MPI truncation semantics).
  bool truncated = false;
  /// True when the operation was cancelled before matching (Request.Cancel).
  bool cancelled = false;
  /// Why the operation failed (Success when it didn't). Set by the device
  /// when a peer dies / a frame fails its checksum, or by the waiter itself
  /// when MPCX_OP_TIMEOUT_MS expires. Higher layers route this through the
  /// communicator's error handler.
  ErrCode error = ErrCode::Success;
  /// Zero-copy receives only: true when the payload bytes landed directly in
  /// the caller's RecvSpan. False means the device staged the message into a
  /// buffer attached to the request (take_attached_buffer) — unexpected
  /// arrival, multi-section static region, or a dynamic section.
  bool direct = false;
};

/// Opaque base for objects hung off a request by higher layers (the paper's
/// "WaitAny object reference stored in the Request").
class CompletionHook {
 public:
  virtual ~CompletionHook() = default;
};

class DevRequestState;
using DevRequest = std::shared_ptr<DevRequestState>;

/// Implemented by devices whose operations keep raw buffer references after
/// the request is posted. When a wait() self-completes with Timeout it calls
/// abandon(), which must remove every device-side reference to the request's
/// buffer (posted-receive records, rendezvous maps, pending sends) and
/// return true. If a delivery into/out of the buffer is already in flight
/// the device returns false instead; it then guarantees that its eventual
/// (claim-losing) complete() call is the last touch of the buffer, which is
/// what dispose_buffer_when_device_done() keys on.
class RequestCanceller {
 public:
  virtual ~RequestCanceller() = default;
  virtual bool abandon(DevRequestState& request) = 0;
};

/// Sink the device uses to publish hooked completions (backs peek()).
class CompletionSink {
 public:
  virtual ~CompletionSink() = default;
  virtual void publish(DevRequest completed) = 0;
};

class DevRequestState : public std::enable_shared_from_this<DevRequestState> {
 public:
  enum class Kind { Send, Recv };

  /// `counters`, when non-null, must outlive the request (devices pass their
  /// own block); completed receives are tallied there so every protocol path
  /// (eager, rendezvous, buffered, shm) is counted at the one choke point.
  /// `canceller` (normally the owning device) lets a timed-out wait() detach
  /// the device's buffer references; both must outlive the request.
  DevRequestState(Kind kind, CompletionSink* sink, prof::Counters* counters = nullptr,
                  RequestCanceller* canceller = nullptr)
      : kind_(kind),
        sink_(sink),
        counters_(counters),
        canceller_(canceller),
        t_created_ns_(prof::observing() ? prof::trace_now_ns() : 0) {}

  Kind kind() const { return kind_; }

  // ---- flight-recorder correlation ---------------------------------------------
  //
  // The message's 64-bit correlation id (prof::alloc_corr_id), shared by the
  // sender's and receiver's lifecycle events. Sends set it at creation;
  // receives learn it at match time from the wire frame header. 0 = untraced.

  /// Sender side: attach the id the device put in the frame header.
  void set_corr(std::uint64_t corr) { corr_id_.store(corr, std::memory_order_relaxed); }

  std::uint64_t corr() const { return corr_id_.load(std::memory_order_relaxed); }

  /// Receiver side: the arrival carrying `corr` matched this receive. Feeds
  /// the match-latency histogram and records the RecvMatched lifecycle event
  /// (with the post timestamp as aux, so the dump can show post->match).
  /// Callers invoke this while they still own the match (before delivery).
  void mark_matched(std::uint64_t corr, std::uint64_t peer, int tag, int context,
                    std::uint64_t bytes) {
    if (t_created_ns_ == 0) return;  // nothing is observing
    corr_id_.store(corr, std::memory_order_relaxed);
    const std::uint64_t now = prof::trace_now_ns();
    prof::observe_match_latency(now - t_created_ns_);
    prof::record_flight(corr, prof::FlightStage::RecvMatched, peer, tag, context, bytes,
                        t_created_ns_);
  }

  /// Device side: mark complete and wake all waiters. Idempotent — the
  /// first caller (device completion, fail_peer error sweep, or a timed-out
  /// waiter) wins the `claimed_` race and publishes; later calls are no-ops.
  /// If a hook is installed, the request is also published to the device's
  /// completion queue for peek().
  void complete(const DevStatus& status) {
    if (!try_claim()) {
      // A timed-out waiter won the claim first. This call is the device's
      // LAST touch of the operation's buffer, so release any buffer parked
      // here by the waiter (see dispose_buffer_when_device_done).
      finish_late_delivery();
      return;
    }
    // Tally and fire the end hooks BEFORE publishing completion: a thread
    // returning from wait()/test() must observe the operation already
    // counted (the mutex hand-off orders the relaxed adds for it).
    const std::size_t bytes = status.static_bytes + status.dynamic_bytes;
    if (counters_ != nullptr && kind_ == Kind::Recv && !status.cancelled &&
        status.error == ErrCode::Success) {
      counters_->add(prof::Ctr::MsgsRecvd);
      counters_->add(prof::Ctr::BytesRecvd, bytes);
    }
    if (prof::Hooks* hooks = prof::hooks()) {
      const prof::MsgInfo info{status.source.value, status.tag, status.context, bytes};
      if (kind_ == Kind::Recv) {
        hooks->on_recv_end(info);
      } else {
        hooks->on_send_end(info);
      }
    }
    if (t_created_ns_ != 0 && !status.cancelled) {
      const std::uint64_t now = prof::trace_now_ns();
      prof::observe_op_completion(now - t_created_ns_);
      if (status.error == ErrCode::Success) {
        prof::record_flight(corr_id_.load(std::memory_order_relaxed),
                            kind_ == Kind::Recv ? prof::FlightStage::RecvCompleted
                                                : prof::FlightStage::SendCompleted,
                            status.source.value, status.tag, status.context, bytes);
      }
    }
    publish(status);
  }

  /// Block until complete; returns the completion status. When
  /// MPCX_OP_TIMEOUT_MS is set, a wait that outlives the deadline races the
  /// device for completion ownership and — on winning — self-completes with
  /// ErrCode::Timeout, so no blocking path can hang forever.
  DevStatus wait() {
    std::unique_lock<std::mutex> lock(mu_);
    if (complete_) return status_;
    if (prof::Hooks* hooks = prof::hooks()) hooks->on_wait();
    prof::Span span("wait", "xdev");
    const std::uint32_t deadline_ms = faults::op_timeout_ms();
    if (deadline_ms == 0) {
      cv_.wait(lock, [&] { return complete_; });
      return status_;
    }
    if (cv_.wait_for(lock, std::chrono::milliseconds(deadline_ms),
                     [&] { return complete_; })) {
      return status_;
    }
    lock.unlock();
    if (try_claim()) {
      faults::counters().add(prof::Ctr::OpTimeouts);
      // Detach the operation device-side BEFORE publishing the timeout:
      // once wait() returns, callers recycle the buffer, so the device must
      // no longer hold references to it. If a delivery is already in flight
      // (abandon() false), flag it so the buffer's owner can defer disposal
      // to the device's final (claim-losing) complete() call.
      if (canceller_ != nullptr && !canceller_->abandon(*this)) {
        std::lock_guard<std::mutex> flag_lock(mu_);
        // The device may already have issued its final (claim-losing)
        // complete() in the window since try_claim(); in that case its
        // buffer references are gone and there is nothing to defer.
        if (!device_released_) late_delivery_pending_ = true;
      }
      DevStatus timed_out;
      timed_out.error = ErrCode::Timeout;
      publish(timed_out);
    }
    // If the claim was lost, the device is mid-complete(); either way the
    // request is (about to be) complete, so this re-wait is bounded.
    lock.lock();
    cv_.wait(lock, [&] { return complete_; });
    return status_;
  }

  /// Non-blocking completion check.
  std::optional<DevStatus> test() {
    std::lock_guard<std::mutex> lock(mu_);
    if (!complete_) return std::nullopt;
    return status_;
  }

  bool is_complete() {
    std::lock_guard<std::mutex> lock(mu_);
    return complete_;
  }

  /// Install a completion hook. Returns false if the request had already
  /// completed (in which case the hook is NOT installed and the caller must
  /// treat the request as done — this closes the race between a Waitany
  /// registering interest and the progress engine completing the request).
  bool set_hook(const std::shared_ptr<CompletionHook>& hook) {
    std::lock_guard<std::mutex> lock(mu_);
    if (complete_) return false;
    hook_ = hook;
    return true;
  }

  /// Remove the hook (Waitany finished with this request still pending).
  void clear_hook() {
    std::lock_guard<std::mutex> lock(mu_);
    hook_.reset();
  }

  /// The hook installed at completion time, if it is still alive.
  std::shared_ptr<CompletionHook> hook() {
    std::lock_guard<std::mutex> lock(mu_);
    return hook_.lock();
  }

  /// True when completion ownership has already been taken — either by the
  /// device or by a timed-out waiter. Devices finishing an in-flight
  /// zero-copy delivery use this to detect an abandoned operation: a set
  /// claim at body-completion time means the waiter gave up, so the landed
  /// bytes must be preserved as a staged unexpected message (the borrowed
  /// span is about to be handed back to the user) before the final
  /// claim-losing complete() releases the waiter.
  bool claimed() const { return claimed_.load(std::memory_order_acquire); }

  /// True when this request timed out while the device was mid-delivery:
  /// the device still references the operation's buffer and will make one
  /// final (claim-losing) complete() call when it is done with it.
  bool late_delivery_pending() {
    std::lock_guard<std::mutex> lock(mu_);
    return late_delivery_pending_;
  }

  /// Run `dispose` once the device no longer references the operation's
  /// buffer: immediately if it already let go, otherwise from the device's
  /// final complete() call. Buffer owners use this (instead of freeing
  /// directly) when late_delivery_pending() is set.
  void dispose_buffer_when_device_done(std::function<void()> dispose) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      if (late_delivery_pending_) {
        deferred_dispose_ = std::move(dispose);
        return;
      }
    }
    dispose();
  }

  // ---- shared-receive match gate (composite devices) -------------------------
  //
  // An ANY_SOURCE receive posted by a composite device (hybdev) is twinned
  // into EVERY child's posted set, because the message may arrive on any of
  // them. The match gate makes the twins mutually exclusive: a child must
  // win try_claim_match() before delivering into the request's buffer, and
  // an entry whose request lost the claim is a dead twin the child discards
  // (see PostedRecvSet::match_where). The gate is separate from the
  // completion claim (`claimed_`): matching happens BEFORE delivery starts,
  // completion after it ends.

  /// Mark this request as twin-posted across sibling devices.
  void mark_shared() { shared_.store(true, std::memory_order_release); }

  /// True when the request is twin-posted (devices skip the gate otherwise).
  bool shared() const { return shared_.load(std::memory_order_acquire); }

  /// Win the exclusive right to match/deliver this shared receive.
  bool try_claim_match() { return !match_claimed_.exchange(true, std::memory_order_acq_rel); }

  /// True when some sibling (or a cancel/abandon) already owns the match.
  bool match_claimed() const { return match_claimed_.load(std::memory_order_acquire); }

  /// Park a staging buffer on the request. Used by the zero-copy fallback
  /// paths: the device stages an ineligible message here and completes with
  /// direct=false; the waiter unpacks it via take_attached_buffer(). Also
  /// keeps a fallback-packed send buffer alive for the operation's lifetime.
  void attach_buffer(std::unique_ptr<buf::Buffer> buffer) {
    std::lock_guard<std::mutex> lock(mu_);
    attached_ = std::move(buffer);
  }

  std::unique_ptr<buf::Buffer> take_attached_buffer() {
    std::lock_guard<std::mutex> lock(mu_);
    return std::move(attached_);
  }

  /// The attached buffer without transferring ownership (device-side use
  /// between posting and completion).
  buf::Buffer* attached_buffer() {
    std::lock_guard<std::mutex> lock(mu_);
    return attached_.get();
  }

 private:
  /// The device's claim-losing complete() arrived: its buffer references are
  /// gone, so run the deferred disposer (if one was parked) outside the lock.
  void finish_late_delivery() {
    std::function<void()> dispose;
    {
      std::lock_guard<std::mutex> lock(mu_);
      device_released_ = true;  // closes the claim-vs-flag race with wait()
      if (!late_delivery_pending_) return;
      late_delivery_pending_ = false;
      dispose = std::move(deferred_dispose_);
    }
    if (dispose) dispose();
  }

  /// Win the right to complete this request (exactly one caller does).
  bool try_claim() { return !claimed_.exchange(true, std::memory_order_acq_rel); }

  /// Store the status, wake waiters, and feed the Waitany queue. Only the
  /// claim winner may call this.
  void publish(const DevStatus& status) {
    std::shared_ptr<CompletionHook> hook;
    {
      std::lock_guard<std::mutex> lock(mu_);
      status_ = status;
      complete_ = true;
      hook = hook_.lock();
    }
    cv_.notify_all();
    if (hook && sink_ != nullptr) sink_->publish(shared_from_this());
  }

  const Kind kind_;
  CompletionSink* const sink_;
  prof::Counters* const counters_;
  RequestCanceller* const canceller_;
  /// Creation timestamp (0 when nothing is observing) and correlation id.
  /// corr_id_ is relaxed-atomic: the matcher writes it while a timed-out
  /// waiter may concurrently self-complete and read it.
  const std::uint64_t t_created_ns_;
  std::atomic<std::uint64_t> corr_id_{0};
  std::atomic<bool> claimed_{false};
  std::atomic<bool> shared_{false};
  std::atomic<bool> match_claimed_{false};
  std::mutex mu_;
  std::condition_variable cv_;
  std::weak_ptr<CompletionHook> hook_;
  DevStatus status_{};
  bool complete_ = false;
  bool late_delivery_pending_ = false;
  bool device_released_ = false;  ///< the device's final complete() has run
  std::function<void()> deferred_dispose_;
  std::unique_ptr<buf::Buffer> attached_;
};

/// Block until the device's final touch of a zero-copy operation's borrowed
/// user span. Call after a wait()/finalize saw an error status with
/// late_delivery_pending(): the span cannot be handed back to the user while
/// an in-flight delivery may still be writing it, and (unlike an owned
/// staging buffer) its disposal cannot be deferred to the device. Bounded:
/// the in-flight frame either drains or the peer-failure sweep completes it.
inline void await_device_release(const DevRequest& request) {
  if (!request || !request->late_delivery_pending()) return;
  auto released = std::make_shared<std::promise<void>>();
  auto done = released->get_future();
  request->dispose_buffer_when_device_done([released] { released->set_value(); });
  done.wait();
}

/// Release `buffer` safely after its operation finished: recycle it via
/// `recycle` when the device is done with it, or — when the op timed out
/// mid-delivery — park it on the request and heap-free it from the device's
/// final completion call. The deferred path deliberately deletes instead of
/// pooling: it may outlive the pool's owner, and timeouts are rare.
template <typename BufferPtr, typename Recycle>
void reclaim_op_buffer(const DevRequest& request, BufferPtr buffer, Recycle recycle) {
  if (request && request->late_delivery_pending()) {
    auto* raw = buffer.release();
    request->dispose_buffer_when_device_done([raw] { delete raw; });
  } else {
    recycle(std::move(buffer));
  }
}

/// Convenience: a request that is already complete ("non-pending" in the
/// paper's eager-send pseudocode, Fig. 3). `corr` attaches the message's
/// correlation id so the completion lands in the flight recorder.
inline DevRequest make_completed_request(DevRequestState::Kind kind, const DevStatus& status,
                                         std::uint64_t corr = 0) {
  auto req = std::make_shared<DevRequestState>(kind, nullptr);
  if (corr != 0) req->set_corr(corr);
  req->complete(status);
  return req;
}

}  // namespace mpcx::xdev
