// tcpdev — the paper's niodev rendered over POSIX TCP sockets.
//
// Structure (Sec. IV-A):
//   * Each process keeps TWO channels per peer it talks to: one it WRITES
//     on (blocking mode, guarded by a per-destination lock) and one it
//     READS from (non-blocking, registered with a Poller). Java NIO forbids
//     mixing blocking modes on one channel, which is where the two-channel
//     design comes from; we keep it because it also removes all
//     reader/writer interference.
//   * Channels are LAZY: init opens nothing but the acceptor. A write
//     channel is dialed on the first frame toward that peer (Hello
//     handshake, epoch 1); the peer installs the read end through the same
//     accept path that serves reliable-mode repair reconnects. Self-sends
//     never touch a socket at all — they are delivered in-process through
//     the matching engine. MPCX_LAZY_CONNECT=0 pre-dials every peer at
//     init ("flat" mode, for A/B benchmarking) via the same machinery.
//   * A CONNECTION MANAGER bounds descriptor usage at scale: MPCX_MAX_CONNS
//     caps concurrently open write channels (least-recently-used idle
//     channel is closed over the cap), MPCX_IDLE_CLOSE_MS reaps idle ones,
//     and EMFILE/ENFILE on dial or accept evicts instead of failing. An
//     evicted channel closes at a frame boundary, so the receiver sees an
//     orderly EOF (not a peer failure) and the next send just redials.
//   * One INPUT-HANDLER thread (the progress engine) drives every read
//     channel off the edge-triggered epoll Poller (src/support/socket) and
//     runs the receive state machine. No lock is needed for reading
//     because only this thread reads.
//   * Outgoing frames pass through a LOCK-FREE MPSC QUEUE per peer:
//     application threads enqueue without contending the channel mutex;
//     whoever wins the try-lock drains the queue in FIFO order with the
//     gathered writev path (see drain_sends). Sequencing, retransmit-buffer
//     pinning and fault decisions all happen at drain time, under the lock,
//     exactly as they did when writers serialized on the mutex directly.
//   * Messages <= eager_threshold use the EAGER protocol (Figs. 3-5);
//     larger messages and all synchronous-mode sends use the RENDEZVOUS
//     protocol (Figs. 6-8), including the forked rendez-write-thread that
//     keeps the input handler from blocking on large writes.
//   * Matching uses the four-key scheme of Sec. IV-E.2 via PostedRecvSet /
//     UnexpectedSet; "receive-communication-sets" are guarded by recv_mu_
//     and "send-communication-sets" by send_mu_, with the same
//     release-before-channel-lock discipline as the paper's pseudocode.
//   * MPCX_RELIABLE=1 layers a reliability session under the protocols:
//     every frame carries a per-peer {epoch, seq} and a cumulative
//     piggybacked ack; senders keep unacked frames in a bounded retransmit
//     buffer (zero-copy bodies stay borrowed/pinned until acked); a dead
//     write channel is redialed with jittered backoff, re-handshaken
//     (Hello carries the new epoch + last_seq_seen) and replayed, with
//     receiver-side seq dedup making the repair invisible to the matching
//     layer. Redial exhaustion (or an external failure detector) declares
//     the peer dead and errors its operations with ErrCode::ProcFailed.
#include <poll.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "bufx/buffer_pool.hpp"
#include "prof/counters.hpp"
#include "prof/flight.hpp"
#include "prof/hooks.hpp"
#include "prof/pvars.hpp"
#include "support/backoff.hpp"
#include "support/faults.hpp"
#include "support/logging.hpp"
#include "support/mpsc_queue.hpp"
#include "support/socket.hpp"
#include "xdev/completion_queue.hpp"
#include "xdev/device.hpp"
#include "xdev/matching.hpp"
#include "xdev/tcpdev_frame.hpp"

namespace mpcx::xdev {
namespace {

using tcp::FrameHeader;
using tcp::FrameType;
using tcp::kHeaderBytes;

/// A message that arrived (or was announced via RTS) before any matching
/// receive was posted.
struct UnexpMsg {
  MatchKey key;  // concrete
  FrameType kind = FrameType::Eager;
  std::uint32_t static_len = 0;
  std::uint32_t dynamic_len = 0;
  std::uint64_t msg_id = 0;  // RTS: rendezvous key; eager: correlation id (0 = untraced)
  std::unique_ptr<buf::Buffer> temp;  // eager payload (possibly still arriving)
  bool data_complete = false;
  // Set when a receive claimed this entry while its payload was still
  // arriving; the input handler finishes the hand-off. Exactly one of
  // claim_buffer / claim_direct describes where the bytes must land.
  DevRequest claimant;
  buf::Buffer* claim_buffer = nullptr;
  bool claim_direct = false;
  RecvSpan claim_span{};
  /// Synchronous self-send (issend to self) whose message is staged here:
  /// completes when a receive consumes the entry — the loopback analog of
  /// "the RTR proves the receiver matched".
  DevRequest self_sync;
};

/// A posted-but-unmatched receive. `direct` receives carry a borrowed
/// RecvSpan instead of a Buffer; eligible arrivals stream straight into it.
struct RecvRec {
  DevRequest request;
  buf::Buffer* buffer = nullptr;
  bool direct = false;
  RecvSpan span{};
  /// Re-posted after a mid-body channel loss (reliable repair): the match
  /// gate of a shared receive was already won when it matched the first
  /// time, so re-matching the replayed copy must bypass try_claim_match.
  bool rearmed = false;
};

/// A rendezvous receive waiting for its data frame.
struct RndvPending {
  DevRequest request;
  buf::Buffer* buffer = nullptr;
  bool direct = false;
  RecvSpan span{};
};

/// An outgoing rendezvous send waiting for ready-to-recv. Zero-copy sends
/// own a copy of the 8-byte section header and borrow the payload segments
/// (valid until the request completes); staged sends reference a Buffer.
struct SendRec {
  DevRequest request;
  buf::Buffer* buffer = nullptr;
  bool direct = false;
  std::array<std::byte, buf::Buffer::kSectionHeaderBytes> sect_header{};
  std::vector<SendSegment> segments;
  std::uint32_t payload_bytes = 0;  ///< direct only: sum of segment sizes
  ProcessID dst{};
  int tag = 0;
  int context = 0;
};

/// Key for the rendezvous-pending map: (source process, sender's msg id).
struct RndvKey {
  std::uint64_t src = 0;
  std::uint64_t msg_id = 0;
  friend bool operator==(const RndvKey&, const RndvKey&) = default;
};

struct RndvKeyHash {
  std::size_t operator()(const RndvKey& key) const noexcept {
    return std::hash<std::uint64_t>{}(key.src) * 1000003u ^ std::hash<std::uint64_t>{}(key.msg_id);
  }
};

/// Match-gate predicate for posted-receive matching: a twin-posted shared
/// receive (hybdev ANY_SOURCE) may only be delivered by the child that wins
/// its match gate; ordinary receives always pass.
bool claim_recv(const RecvRec& rec) {
  return rec.rearmed || !rec.request->shared() || rec.request->try_claim_match();
}

/// One unacked frame held for replay (reliable mode). Two forms:
///   * OWNED: `owned` holds a private copy of the body (buffered-send
///     semantics; the originating request, if any, completed synchronously).
///   * BORROWED: the body still lives in caller memory — `segments` (+ the
///     8-byte section header copy) for zero-copy sends, or `body_buffer` for
///     staged rendezvous data. `request` stays pending and completes with
///     `ok_status` only when the cumulative ack covers `seq`, which is what
///     keeps zero-copy semantics honest: the user's spans are pinned until
///     the bytes are provably at the receiver. A timed-out wait converts a
///     borrowed entry to owned in place (abandon) so replay never touches
///     reclaimed user memory while the entry keeps the seq stream gapless.
struct RetransEntry {
  std::uint64_t seq = 0;
  std::array<std::byte, kHeaderBytes> hdr_bytes{};  ///< pristine encoded header
  std::vector<std::byte> owned;                     ///< owned body copy
  bool borrowed = false;
  std::array<std::byte, buf::Buffer::kSectionHeaderBytes> sect_header{};
  std::size_t sect_len = 0;
  std::vector<SendSegment> segments;
  buf::Buffer* body_buffer = nullptr;
  DevRequest request;
  DevStatus ok_status;
  std::size_t bytes = 0;  ///< header + body, as accounted in retrans_bytes
};

/// One outgoing frame queued on a peer's MPSC send queue, written at drain
/// time under the channel lock. The body takes one of three shapes:
///   * borrow_buffer — a committed Buffer borrowed from the caller (eager
///     buffered sends, staged rendezvous data),
///   * sect_header/segments — zero-copy gather spans (segment sends),
///   * none — control frames (RTS / RTR), header only.
/// seq/ack/epoch are NOT assigned here: the drainer stamps them under the
/// lock so the reliable sequence stream stays gapless and ordered even
/// though producers enqueue concurrently.
struct SendFrame : support::MpscNode {
  FrameHeader hdr;
  buf::Buffer* borrow_buffer = nullptr;
  std::array<std::byte, buf::Buffer::kSectionHeaderBytes> sect_header{};
  std::size_t sect_len = 0;
  std::vector<SendSegment> segments;
  DevRequest request;       ///< settled by the drainer (or on cumulative ack if pinned)
  DevStatus ok_status;      ///< completion status when the write succeeds
  bool pin_body = false;    ///< reliable zero-copy: body stays borrowed until acked
  bool record_wire = false; ///< emit the SendWire flight stage after the write
  /// Overrides default failure handling (complete request with the error):
  /// rendezvous control frames unwind their pending-set entries here.
  std::function<void(const Error&)> on_error;
};

/// Thrown by pump() when a read channel hits a clean FIN at a frame
/// boundary: the peer's connection manager closed an idle or evicted
/// channel gracefully. Distinct from Error on purpose — the input handler
/// retires the channel quietly instead of running failure recovery.
struct ConnClosed {};

bool env_truthy(const char* name) {
  const char* value = std::getenv(name);
  return value != nullptr && *value != '\0' && std::strcmp(value, "0") != 0;
}

std::uint64_t env_u64(const char* name, std::uint64_t fallback) {
  const char* value = std::getenv(name);
  if (value == nullptr || *value == '\0') return fallback;
  char* end = nullptr;
  const unsigned long long parsed = std::strtoull(value, &end, 10);
  if (end == value || *end != '\0') {
    log::warn("ignoring malformed ", name, "=", value);
    return fallback;
  }
  return parsed;
}

/// Send a standalone cumulative ack once this many frames arrived unacked.
constexpr std::uint64_t kAckEvery = 8;

/// Ack-frame tag flagging a RESET NOTICE: "my read channel from you just
/// died — redial and replay now". Eager writes into a half-dead socket
/// succeed locally, so without this the sender would only learn of the
/// loss from the retransmit watchdog, a ~100ms stall per reset.
constexpr std::int32_t kAckResetNotice = 1;

class TcpDevice final : public Device, public RequestCanceller {
 public:
  ~TcpDevice() override {
    try {
      finish();
    } catch (const Error&) {
    }
  }

  std::vector<ProcessID> init(const DeviceConfig& config) override {
    if (config.self_index >= config.world.size()) {
      throw DeviceError("tcpdev: self_index out of range");
    }
    config_ = config;
    config_.eager_threshold = resolve_eager_threshold(config.eager_threshold, counters_.get());
    self_ = config.world[config.self_index].id;
    const auto& self_info = config.world[config.self_index];

    // Reliability session layer (ack/replay reconnect). Default OFF: the
    // non-reliable device keeps PR2 fail-fast semantics (an injected reset
    // errors the affected operations with ConnReset).
    reliable_ = env_truthy("MPCX_RELIABLE");
    reconnect_ms_ = env_u64("MPCX_RECONNECT_MS", 50);
    if (reconnect_ms_ == 0) reconnect_ms_ = 1;
    reconnect_max_ = env_u64("MPCX_RECONNECT_MAX", 10);
    retrans_max_bytes_ = env_u64("MPCX_RETRANS_MAX", std::uint64_t{4} << 20);

    // Connection-manager knobs. Lazy is the default: a channel exists only
    // once there is traffic for it, so an N-rank job with nearest-neighbor
    // communication holds O(degree) descriptors instead of O(N).
    lazy_connect_ = env_u64("MPCX_LAZY_CONNECT", 1) != 0;
    max_conns_ = env_u64("MPCX_MAX_CONNS", 0);
    idle_close_ms_ = env_u64("MPCX_IDLE_CLOSE_MS", 0);

    if (config.acceptor) {
      acceptor_ = std::move(*config.acceptor);
    } else {
      acceptor_ = net::Acceptor(self_info.port);
    }

    // Peer records only — no sockets yet. Self gets no record at all:
    // self-traffic is routed in-process through the matching engine
    // (self_send), never over loopback.
    for (const EndpointInfo& info : config.world) {
      if (info.id.value == self_.value) continue;
      auto peer = std::make_unique<Peer>();
      peer->id = info.id.value;
      peer->host = info.host;
      peer->port = info.port;
      peers_.emplace(info.id.value, std::move(peer));
    }

    // The acceptor lives in the poller for the device's whole lifetime:
    // first-contact Hellos, post-eviction redials and reliable-mode repair
    // reconnects all arrive through the same accept path.
    poller_.add(acceptor_.fd());
    running_ = true;
    input_thread_ = std::thread([this] { input_loop(); });

    if (!lazy_connect_) {
      // Flat mode (A/B benchmarking, bisection): dial every write channel
      // up front through the same machinery lazy mode uses. No accept
      // barrier — peers install our Hello whenever their input loop runs;
      // dial-side refusal retry (Socket::connect) absorbs start skew.
      for (auto& [id, peer] : peers_) {
        std::lock_guard<std::mutex> lock(peer->write_mu);
        ensure_connected_locked(*peer);
      }
    }

    std::vector<ProcessID> world;
    world.reserve(config.world.size());
    for (const EndpointInfo& info : config.world) world.push_back(info.id);
    return world;
  }

  int send_overhead() const override { return static_cast<int>(kHeaderBytes); }
  int recv_overhead() const override { return 0; }

  ProcessID id() const override { return self_; }

  void finish() override {
    bool was_running = running_.exchange(false);
    if (was_running) {
      poller_.wakeup();
      if (input_thread_.joinable()) input_thread_.join();
    }
    // Release writers parked on retransmit-buffer capacity.
    for (auto& [id, peer] : peers_) {
      std::lock_guard<std::mutex> lock(peer->rel_mu);
      peer->rel_cv.notify_all();
    }
    // Wait for forked rendez-write-threads to drain.
    {
      std::unique_lock<std::mutex> lock(writer_mu_);
      writer_cv_.wait(lock, [&] { return active_writers_ == 0; });
    }
    // Settle frames still sitting on the MPSC send queues (producers are
    // quiesced now): nothing will ever write them, so their requests must
    // not be left hanging.
    for (auto& [id, peer] : peers_) {
      std::lock_guard<std::mutex> lock(peer->write_mu);
      while (auto* node = static_cast<SendFrame*>(peer->send_q.pop())) {
        std::unique_ptr<SendFrame> frame(node);
        peer->queued.fetch_sub(1, std::memory_order_relaxed);
        fail_frame(*frame, DeviceError("tcpdev: device finished with sends queued",
                                       ErrCode::Cancelled));
      }
    }
    conns_by_fd_.clear();
    peers_.clear();
    acceptor_.close();
    completions_.shutdown();
  }

  // ---- send side (Figs. 3 and 6) --------------------------------------------

  /// New traffic toward a declared-dead peer is refused up front rather
  /// than silently written into a socket the failure detector already gave
  /// up on — the channel may even still be open when the failure was
  /// reported out-of-band (notify_peer_failed), and an eager write into it
  /// would complete with Success for a message nobody will ever deliver.
  void require_peer_alive(ProcessID dst) {
    std::lock_guard<std::mutex> lock(recv_mu_);
    if (dead_peers_.count(dst.value) > 0) {
      throw DeviceError("tcpdev: peer " + std::to_string(dst.value) + " failed",
                        ErrCode::ProcFailed);
    }
  }

  DevRequest isend(buf::Buffer& buffer, ProcessID dst, int tag, int context) override {
    require_buffer_committed(buffer);
    const std::size_t total = buffer.static_size() + buffer.dynamic_size();
    note_send(dst, tag, context, total);
    if (dst.value == self_.value) {
      return self_send(buffer.static_payload(), buffer.dynamic_payload(), tag, context,
                       /*sync=*/false);
    }
    require_peer_alive(dst);
    if (total <= config_.eager_threshold) return eager_send(buffer, dst, tag, context);
    return rndv_send(buffer, dst, tag, context);
  }

  DevRequest issend(buf::Buffer& buffer, ProcessID dst, int tag, int context) override {
    // Synchronous mode always rendezvouses: completion implies the receiver
    // matched (the RTR proves it). Self-sends get the same guarantee from
    // the matching engine directly.
    require_buffer_committed(buffer);
    note_send(dst, tag, context, buffer.static_size() + buffer.dynamic_size());
    if (dst.value == self_.value) {
      return self_send(buffer.static_payload(), buffer.dynamic_payload(), tag, context,
                       /*sync=*/true);
    }
    require_peer_alive(dst);
    return rndv_send(buffer, dst, tag, context);
  }

  DevRequest isend_segments(std::span<const std::byte> header,
                            std::span<const SendSegment> segments, ProcessID dst, int tag,
                            int context) override {
    std::size_t payload = 0;
    for (const SendSegment& seg : segments) payload += seg.size;
    note_send(dst, tag, context, header.size() + payload);
    if (dst.value == self_.value) {
      return self_send_segments(header, segments, payload, tag, context, /*sync=*/false);
    }
    require_peer_alive(dst);
    if (header.size() + payload <= config_.eager_threshold) {
      return eager_send_segments(header, segments, payload, dst, tag, context);
    }
    return rndv_send_segments(header, segments, payload, dst, tag, context);
  }

  DevRequest issend_segments(std::span<const std::byte> header,
                             std::span<const SendSegment> segments, ProcessID dst, int tag,
                             int context) override {
    std::size_t payload = 0;
    for (const SendSegment& seg : segments) payload += seg.size;
    note_send(dst, tag, context, header.size() + payload);
    if (dst.value == self_.value) {
      return self_send_segments(header, segments, payload, tag, context, /*sync=*/true);
    }
    require_peer_alive(dst);
    return rndv_send_segments(header, segments, payload, dst, tag, context);
  }

  // ---- receive side (Figs. 4 and 7) ------------------------------------------

  DevRequest irecv(buf::Buffer& buffer, ProcessID src, int tag, int context) override {
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Recv, sink_,
                                                     counters_.get(), this);
    const MatchKey key{context, tag, src};
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_recv_begin(prof::MsgInfo{src.value, tag, context, 0});
    }

    std::shared_ptr<UnexpMsg> msg;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      auto found = unexpected_.match(key);
      if (!found) {
        posted_.add(key, RecvRec{request, &buffer});
        note_posted_depth_locked();
        return request;
      }
      msg = std::move(*found);
      note_match(msg->key, msg->static_len + msg->dynamic_len, /*was_posted=*/false);
      note_unexpected_locked(-unexp_payload_bytes(*msg));
      request->mark_matched(msg->msg_id, msg->key.src.value, msg->key.tag, msg->key.context,
                            msg->static_len + msg->dynamic_len);
      if (msg->kind == FrameType::Eager && !msg->data_complete) {
        // Payload still arriving: leave the hand-off to the input handler.
        msg->claimant = request;
        msg->claim_buffer = &buffer;
        msg->claim_direct = false;
        arriving_claims_.emplace(msg.get(), msg);
        return request;
      }
      if (msg->kind == FrameType::Rts) {
        rndv_pending_.emplace(RndvKey{msg->key.src.value, msg->msg_id},
                              RndvPending{request, &buffer});
        note_rndv_slots_locked();
      }
    }
    // Locks released before touching any channel, as in Fig. 7. A lost RTR
    // unwinds via the queued frame's on_error (see send_rtr).
    if (msg->kind == FrameType::Eager) {
      deliver_buffered(*msg, buffer, request);
    } else {
      send_rtr(msg->key.src.value, msg->key.context, msg->key.tag, msg->static_len,
               msg->dynamic_len, msg->msg_id);
    }
    return request;
  }

  DevRequest irecv_direct(const RecvSpan& dst, ProcessID src, int tag, int context) override {
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Recv, sink_,
                                                     counters_.get(), this);
    const MatchKey key{context, tag, src};
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_recv_begin(prof::MsgInfo{src.value, tag, context, 0});
    }

    std::shared_ptr<UnexpMsg> msg;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      auto found = unexpected_.match(key);
      if (!found) {
        RecvRec rec;
        rec.request = request;
        rec.direct = true;
        rec.span = dst;
        posted_.add(key, std::move(rec));
        note_posted_depth_locked();
        return request;
      }
      msg = std::move(*found);
      note_match(msg->key, msg->static_len + msg->dynamic_len, /*was_posted=*/false);
      note_unexpected_locked(-unexp_payload_bytes(*msg));
      request->mark_matched(msg->msg_id, msg->key.src.value, msg->key.tag, msg->key.context,
                            msg->static_len + msg->dynamic_len);
      if (msg->kind == FrameType::Eager && !msg->data_complete) {
        // Payload still streaming into the pool buffer; the input handler
        // copies it out (or attaches it) when the last byte lands.
        msg->claimant = request;
        msg->claim_direct = true;
        msg->claim_span = dst;
        arriving_claims_.emplace(msg.get(), msg);
        return request;
      }
      if (msg->kind == FrameType::Rts) {
        RndvPending pending;
        pending.request = request;
        if (direct_eligible(msg->static_len, msg->dynamic_len, dst)) {
          pending.direct = true;
          pending.span = dst;
        } else {
          // Ineligible shape (or about to truncate): rendezvous into a
          // staging buffer parked on the request; capacity mirrors what the
          // caller's span can represent so oversize data still truncates.
          auto staging = std::make_unique<buf::Buffer>(buf::Buffer::kSectionHeaderBytes +
                                                       dst.payload_capacity);
          pending.buffer = staging.get();
          request->attach_buffer(std::move(staging));
        }
        rndv_pending_.emplace(RndvKey{msg->key.src.value, msg->msg_id}, std::move(pending));
        note_rndv_slots_locked();
      }
    }
    if (msg->kind == FrameType::Eager) {
      deliver_buffered_direct(*msg, dst, request);
    } else {
      send_rtr(msg->key.src.value, msg->key.context, msg->key.tag, msg->static_len,
               msg->dynamic_len, msg->msg_id);
    }
    return request;
  }

  bool post_shared_recv(const DevRequest& request, buf::Buffer* buffer, const RecvSpan* span,
                        ProcessID src, int tag, int context) override {
    const MatchKey key{context, tag, src};
    std::shared_ptr<UnexpMsg> msg;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      purge_dead_twins_locked(request.get());
      // find() first: the match gate must be claimed BEFORE the unexpected
      // entry is consumed, so a gate lost to the sibling leaves the message
      // in place for the next receive. Both calls hit the same earliest
      // arrival because the lock is held across them.
      const auto* found = unexpected_.find(key);
      if (found == nullptr) {
        RecvRec rec;
        rec.request = request;
        if (span != nullptr) {
          rec.direct = true;
          rec.span = *span;
        } else {
          rec.buffer = buffer;
        }
        posted_.add(key, std::move(rec));
        note_posted_depth_locked();
        return false;
      }
      if (!request->try_claim_match()) return true;  // sibling already delivering
      msg = std::move(*unexpected_.match(key));
      note_match(msg->key, msg->static_len + msg->dynamic_len, /*was_posted=*/false);
      note_unexpected_locked(-unexp_payload_bytes(*msg));
      request->mark_matched(msg->msg_id, msg->key.src.value, msg->key.tag, msg->key.context,
                            msg->static_len + msg->dynamic_len);
      if (msg->kind == FrameType::Eager && !msg->data_complete) {
        msg->claimant = request;
        if (span != nullptr) {
          msg->claim_direct = true;
          msg->claim_span = *span;
        } else {
          msg->claim_buffer = buffer;
        }
        arriving_claims_.emplace(msg.get(), msg);
        return true;
      }
      if (msg->kind == FrameType::Rts) {
        RndvPending pending;
        pending.request = request;
        if (span == nullptr) {
          pending.buffer = buffer;
        } else if (direct_eligible(msg->static_len, msg->dynamic_len, *span)) {
          pending.direct = true;
          pending.span = *span;
        } else {
          auto staging = std::make_unique<buf::Buffer>(buf::Buffer::kSectionHeaderBytes +
                                                       span->payload_capacity);
          pending.buffer = staging.get();
          request->attach_buffer(std::move(staging));
        }
        rndv_pending_.emplace(RndvKey{msg->key.src.value, msg->msg_id}, std::move(pending));
        note_rndv_slots_locked();
      }
    }
    if (msg->kind == FrameType::Eager) {
      if (span != nullptr) {
        deliver_buffered_direct(*msg, *span, request);
      } else {
        deliver_buffered(*msg, *buffer, request);
      }
    } else {
      send_rtr(msg->key.src.value, msg->key.context, msg->key.tag, msg->static_len,
               msg->dynamic_len, msg->msg_id);
    }
    return true;
  }

  /// Drop posted entries that are dead twins — shared receives whose match
  /// gate the sibling device already won. They can no longer be delivered,
  /// only discarded; pruning here (under recv_mu_) keeps the posted set from
  /// accumulating one dead entry per consumed shared receive. `posting` is
  /// the request being posted right now (its gate is still open).
  void purge_dead_twins_locked(const DevRequestState* posting) {
    posted_.drain_if([&](const MatchKey&, const RecvRec& rec) {
      return rec.request.get() != posting && rec.request->shared() &&
             rec.request->match_claimed();
    });
  }

  DevStatus probe(ProcessID src, int tag, int context) override {
    counters_->add(prof::Ctr::ProbeCalls);
    const MatchKey key{context, tag, src};
    const std::uint32_t deadline_ms = faults::op_timeout_ms();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
    std::unique_lock<std::mutex> lock(recv_mu_);
    for (;;) {
      const auto* entry = unexpected_.find(key);
      if (entry != nullptr) return unexpected_status(**entry);
      if (!running_) throw DeviceError("tcpdev: probe after finish");
      if (!src.is_any() && dead_peers_.count(src.value) > 0) {
        throw DeviceError("tcpdev: probe source " + std::to_string(src.value) + " failed",
                          ErrCode::ConnReset);
      }
      if (deadline_ms == 0) {
        arrival_cv_.wait(lock);
      } else if (arrival_cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        faults::counters().add(prof::Ctr::OpTimeouts);
        throw DeviceError("tcpdev: probe timed out after " + std::to_string(deadline_ms) +
                              " ms (MPCX_OP_TIMEOUT_MS)",
                          ErrCode::Timeout);
      }
    }
  }

  std::optional<DevStatus> iprobe(ProcessID src, int tag, int context) override {
    counters_->add(prof::Ctr::IprobeCalls);
    const MatchKey key{context, tag, src};
    std::lock_guard<std::mutex> lock(recv_mu_);
    const auto* entry = unexpected_.find(key);
    if (entry == nullptr) return std::nullopt;
    return unexpected_status(**entry);
  }

  DevRequest peek() override {
    DevRequest completed = completions_.pop();
    if (completed) counters_->add(prof::Ctr::PeekWakeups);
    return completed;
  }

  void redirect_completions(CompletionSink* sink) override { sink_ = sink; }

  bool cancel(const DevRequest& request) override {
    if (!request || request->kind() != DevRequestState::Kind::Recv) return false;
    bool removed = false;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      removed = posted_.remove_scan(
          [&](const RecvRec& rec) { return rec.request.get() == request.get(); });
      if (removed) note_posted_depth_locked();
    }
    if (!removed) return false;  // already matched (or never posted here)
    DevStatus status;
    status.cancelled = true;
    request->complete(status);
    return true;
  }

  /// RequestCanceller: a wait() on `request` timed out. Remove every
  /// device-side reference to its buffer; record abandoned rendezvous keys
  /// so the peer's late RTR / data frame is ignored (drained) instead of
  /// tearing the connection down. Returns false when the input handler or a
  /// writer thread is mid-delivery — the losing complete() call then
  /// releases the buffer (see DevRequestState::dispose_buffer_when_device_done).
  bool abandon(DevRequestState& request) override {
    if (request.kind() == DevRequestState::Kind::Recv) {
      std::lock_guard<std::mutex> lock(recv_mu_);
      bool detached = posted_.remove_scan(
          [&](const RecvRec& rec) { return rec.request.get() == &request; });
      for (auto it = rndv_pending_.begin(); it != rndv_pending_.end();) {
        if (it->second.request.get() == &request) {
          abandoned_rndv_.insert(it->first);
          it = rndv_pending_.erase(it);
          detached = true;
        } else {
          ++it;
        }
      }
      for (auto& [ptr, msg] : arriving_claims_) {
        if (msg->claimant.get() == &request) {
          // Detach the claim but keep the message: its payload is still
          // streaming into the pool buffer, and once complete it is an
          // ordinary unexpected message a later receive can match.
          msg->claimant = nullptr;
          msg->claim_buffer = nullptr;
          msg->claim_direct = false;
          msg->claim_span = RecvSpan{};
          unexpected_.add(msg->key, msg);
          note_unexpected_locked(unexp_payload_bytes(*msg));
          detached = true;
        }
      }
      note_posted_depth_locked();
      note_rndv_slots_locked();
      return detached;
    }
    {
      std::lock_guard<std::mutex> lock(send_mu_);
      for (auto it = pending_sends_.begin(); it != pending_sends_.end(); ++it) {
        if (it->second.request.get() == &request) {
          abandoned_sends_.emplace(it->first, it->second.dst.value);
          pending_sends_.erase(it);
          note_send_backlog_locked();
          return true;
        }
      }
    }
    if (reliable_) {
      // The frame may already be on the wire but unacked, its body borrowed
      // from the memory the waiter is about to reclaim. Materialize an owned
      // copy under rel_mu — serializing against ack processing and replay —
      // so a retransmission racing this abandon never touches freed memory,
      // and the entry keeps the seq stream gapless.
      for (auto& [id, peer] : peers_) {
        std::lock_guard<std::mutex> rl(peer->rel_mu);
        for (RetransEntry& entry : peer->retrans) {
          if (entry.request.get() != &request) continue;
          materialize_owned(entry);
          entry.request = nullptr;  // acked later, completes nothing
          return true;
        }
      }
    }
    return false;  // RTR taken: a rendez-write-thread owns the buffer
  }

  /// RequestCanceller/Device: an external failure detector (daemon reaper,
  /// World FT listener, test) declared `peer` dead.
  void notify_peer_failed(ProcessID peer) override {
    if (!running_) return;
    fail_peer(peer.value, ErrCode::ProcFailed, nullptr);
  }

  const prof::Counters* counters() const override { return counters_.get(); }

 private:
  // ---- connection state -------------------------------------------------------

  /// Per-peer write channel ("dest channel" in the pseudocode) plus, in
  /// reliable mode, both directions of the reliability session.
  ///
  /// Lock order: write_mu -> rel_mu. The write path holds write_mu across
  /// seq assignment, retransmit-buffer append and the channel write so wire
  /// order equals seq order; the input handler takes rel_mu ALONE to
  /// process acks (so acks drain while a writer sleeps in a redial), and
  /// only try-locks write_mu (standalone acks are advisory — it must never
  /// block behind a reconnect in progress).
  struct Peer {
    std::mutex write_mu;
    net::Socket write_channel;

    // Identity and redial coordinates (immutable after init).
    std::uint64_t id = 0;
    std::string host;
    std::uint16_t port = 0;

    // ---- connection manager ----
    /// Channel-open flag mirrored outside write_mu so the LRU scan and the
    /// cap check can look without locking every peer.
    std::atomic<bool> open{false};
    /// Monotonic-clock stamp of the last frame written; the LRU victim is
    /// the open channel with the smallest stamp.
    std::atomic<std::uint64_t> last_used_ns{0};
    bool evicted_once = false;  ///< (write_mu) a redial after this counts as conns_redialed
    /// Non-reliable fail-fast: a write error poisons the channel so later
    /// sends to this peer error out instead of silently redialing around a
    /// failure the application was already told about.
    bool write_failed = false;  ///< (write_mu)

    // ---- MPSC send queue (lock-free producer side) ----
    support::MpscQueue send_q;
    /// Queued-frame count, maintained OUTSIDE the queue: push is counted
    /// after enqueue, pop before write. drain_sends' try-lock loop re-checks
    /// it after every unlock, which closes the lost-wakeup race the
    /// queue-only view would have (see drain_sends).
    std::atomic<std::size_t> queued{0};

    // ---- send direction (write_mu) ----
    std::uint64_t next_seq = 1;  ///< next frame sequence number to assign
    std::uint32_t epoch = 0;     ///< write-channel incarnation (bumped per redial)

    // ---- send direction (rel_mu) ----
    std::mutex rel_mu;
    std::condition_variable rel_cv;  ///< signaled when the retransmit buffer drains
    std::deque<RetransEntry> retrans;
    std::size_t retrans_bytes = 0;
    std::uint64_t last_acked = 0;  ///< highest cumulative ack received
    bool failed = false;           ///< declared dead: refuse new traffic
    /// Last time the cumulative ack advanced (or a frame was queued while
    /// the buffer was empty). Drives the retransmit watchdog: a data
    /// channel that dies AFTER the last write is never noticed by a writer
    /// (tail loss), so the input loop redials when unacked frames sit here
    /// with no ack progress.
    std::chrono::steady_clock::time_point last_ack_progress{};

    // ---- receive direction ----
    /// Highest in-order seq received from this peer. Atomic because writers
    /// read it (piggyback ack) while the input handler advances it; it
    /// PERSISTS across Conn replacement — duplicate suppression must
    /// survive the very reconnect that causes the duplicates.
    std::atomic<std::uint64_t> last_seen{0};
    /// Highest cumulative ack actually delivered to this peer — standalone,
    /// piggybacked on a data frame, or via a reconnect Hello. Every WRITE
    /// happens under write_mu (so values stay monotonic); reads are
    /// lock-free (the idle-flush check), hence atomic.
    std::atomic<std::uint64_t> last_ack_sent{0};
    std::uint32_t recv_epoch = 0;  ///< highest Hello epoch accepted (input handler only)
  };

  /// Per-read-channel state machine. `body_*` is the continuation record —
  /// the moral equivalent of niodev attaching a half-read message to its
  /// SelectionKey.
  struct Conn {
    std::uint64_t peer = 0;
    net::Socket sock;
    Peer* peer_state = nullptr;  ///< reliability state (reliable mode only)
    /// seq of the frame currently being consumed; committed to
    /// peer_state->last_seen only once the FULL frame (header + body) has
    /// been absorbed, so a mid-body channel loss never marks a half-read
    /// frame as seen.
    std::uint64_t frame_seq = 0;

    std::array<std::byte, kHeaderBytes> hdr_bytes{};
    std::size_t hdr_got = 0;

    bool in_body = false;
    std::byte* static_dst = nullptr;
    std::size_t static_len = 0;
    std::byte* dynamic_dst = nullptr;
    std::size_t dynamic_len = 0;
    std::size_t body_got = 0;
    std::function<void()> on_body_done;
    /// The receive whose buffer the in-flight body targets, if any; failed
    /// with the peer when the channel dies mid-message.
    DevRequest body_request;
    /// Reliable repair: undo the in-flight frame's matching side effects
    /// (re-post the receive / re-park the rendezvous entry) so the peer's
    /// replayed copy is handled as a fresh arrival instead of being lost.
    std::function<void()> on_body_abort;
  };

  void require_buffer_committed(const buf::Buffer& buffer) const {
    if (!buffer.in_read_mode()) throw DeviceError("tcpdev: send buffer must be committed");
  }

  void note_send(ProcessID dst, int tag, int context, std::size_t bytes) {
    counters_->add(prof::Ctr::MsgsSent);
    counters_->add(prof::Ctr::BytesSent, bytes);
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_send_begin(prof::MsgInfo{dst.value, tag, context, bytes});
    }
  }

  /// A message matched: `was_posted` true when an arrival met a posted
  /// receive, false when a receive drained the unexpected queue.
  void note_match(const MatchKey& key, std::size_t bytes, bool was_posted) {
    counters_->add(was_posted ? prof::Ctr::PostedMatches : prof::Ctr::UnexpectedMatches);
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_match(prof::MsgInfo{key.src.value, key.tag, key.context, bytes}, was_posted);
    }
  }

  // ---- pvar gauges (recomputed after each queue mutation, under the owning
  // lock, so the absolute stores are exact) --------------------------------------

  void note_posted_depth_locked() {
    pvars_->gauge_set(prof::Pv::PostedRecvDepth, posted_.size());
  }

  /// `payload_delta` is the signed change in eager payload bytes held by the
  /// unexpected queue (RTS announcements hold no local bytes).
  void note_unexpected_locked(std::int64_t payload_delta) {
    pvars_->gauge_set(prof::Pv::UnexpectedDepth, unexpected_.size());
    if (payload_delta != 0) pvars_->gauge_add(prof::Pv::UnexpectedBytes, payload_delta);
  }

  static std::int64_t unexp_payload_bytes(const UnexpMsg& msg) {
    if (msg.kind != FrameType::Eager) return 0;
    return static_cast<std::int64_t>(msg.static_len) + msg.dynamic_len;
  }

  void note_send_backlog_locked() {
    pvars_->gauge_set(prof::Pv::SendBacklog, pending_sends_.size());
  }

  void note_rndv_slots_locked() {
    pvars_->gauge_set(prof::Pv::RndvSlots, rndv_pending_.size());
  }

  Peer& peer_for(std::uint64_t id) {
    auto it = peers_.find(id);
    if (it == peers_.end()) throw DeviceError("tcpdev: unknown destination " + std::to_string(id));
    return *it->second;
  }

  // ---- eager protocol, send side (Fig. 3) --------------------------------------

  /// Eager buffered send: the frame goes on the peer's MPSC queue borrowing
  /// the caller's committed Buffer (valid until the request completes) and
  /// is written by whichever thread drains the queue. The request carries no
  /// completion sink — plain eager sends completed synchronously before the
  /// queue existed and were never published to the completion queue; the
  /// queued form preserves that.
  DevRequest eager_send(buf::Buffer& buffer, ProcessID dst, int tag, int context) {
    counters_->add(prof::Ctr::EagerSends);
    // Correlation id only minted while tracing: the disabled path keeps its
    // zero-cost wire header (msg_id 0 = untraced; receivers skip it).
    const std::size_t total = buffer.static_size() + buffer.dynamic_size();
    const std::uint64_t corr = prof::tracing() ? prof::alloc_corr_id(self_.value) : 0;
    prof::record_flight(corr, prof::FlightStage::SendPosted, dst.value, tag, context, total);
    auto frame = std::make_unique<SendFrame>();
    frame->hdr.type = FrameType::Eager;
    frame->hdr.context = tag_to_wire(context);
    frame->hdr.tag = tag_to_wire(tag);
    frame->hdr.src = self_.value;
    frame->hdr.static_len = static_cast<std::uint32_t>(buffer.static_size());
    frame->hdr.dynamic_len = static_cast<std::uint32_t>(buffer.dynamic_size());
    frame->hdr.msg_id = corr;
    frame->borrow_buffer = &buffer;
    frame->record_wire = true;
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Send, nullptr,
                                                     nullptr, this);
    request->set_corr(corr);
    frame->request = request;
    frame->ok_status.source = self_;
    frame->ok_status.tag = tag;
    frame->ok_status.context = context;
    frame->ok_status.static_bytes = buffer.static_size();
    frame->ok_status.dynamic_bytes = buffer.dynamic_size();
    // pin_body stays false: reliable mode copies the body into the
    // retransmit buffer (buffered-send semantics — the caller may reuse the
    // Buffer as soon as the request completes, which is at drain time).
    submit_frame(peer_for(dst.value), std::move(frame));
    return request;
  }

  /// Zero-copy eager send: one gathered writev of [frame header | section
  /// header | user payload] at drain time. The borrowed segments stay valid
  /// until the request completes: at drain in plain mode, or — reliable
  /// mode — only when the cumulative ack covers the frame (the spans stay
  /// pinned in the retransmit buffer so zero-copy semantics survive replay).
  DevRequest eager_send_segments(std::span<const std::byte> header,
                                 std::span<const SendSegment> segments, std::size_t payload,
                                 ProcessID dst, int tag, int context) {
    counters_->add(prof::Ctr::EagerSends);
    const std::size_t total = header.size() + payload;
    const std::uint64_t corr = prof::tracing() ? prof::alloc_corr_id(self_.value) : 0;
    prof::record_flight(corr, prof::FlightStage::SendPosted, dst.value, tag, context, total);
    auto frame = std::make_unique<SendFrame>();
    frame->hdr.type = FrameType::Eager;
    frame->hdr.context = tag_to_wire(context);
    frame->hdr.tag = tag_to_wire(tag);
    frame->hdr.src = self_.value;
    frame->hdr.static_len = static_cast<std::uint32_t>(total);
    frame->hdr.dynamic_len = 0;
    frame->hdr.msg_id = corr;
    frame->sect_len = std::min(header.size(), frame->sect_header.size());
    std::memcpy(frame->sect_header.data(), header.data(), frame->sect_len);
    frame->segments.assign(segments.begin(), segments.end());
    frame->record_wire = true;
    frame->pin_body = reliable_;
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Send,
                                                     reliable_ ? sink_ : nullptr, nullptr,
                                                     this);
    request->set_corr(corr);
    frame->request = request;
    frame->ok_status.source = self_;
    frame->ok_status.tag = tag;
    frame->ok_status.context = context;
    frame->ok_status.static_bytes = total;
    submit_frame(peer_for(dst.value), std::move(frame));
    return request;
  }

  // ---- self-sends (in-process loopback) -----------------------------------------

  /// Self-sends never touch a socket — the seed kept two loopback channels
  /// per rank just for them. Deliver straight through the matching engine:
  /// a posted receive gets the bytes memcpy'd in; otherwise the message is
  /// staged as an already-complete unexpected entry. Synchronous (ssend)
  /// self-sends complete when a receive consumes the entry.
  DevRequest self_send(std::span<const std::byte> stat, std::span<const std::byte> dyn,
                       int tag, int context, bool sync) {
    counters_->add(prof::Ctr::EagerSends);
    counters_->add(prof::Ctr::SelfDeliveries);
    const std::size_t total = stat.size() + dyn.size();
    const std::uint64_t corr = prof::tracing() ? prof::alloc_corr_id(self_.value) : 0;
    prof::record_flight(corr, prof::FlightStage::SendPosted, self_.value, tag, context,
                        total);
    const MatchKey key{context, tag, self_};
    DevStatus ok;
    ok.source = self_;
    ok.tag = tag;
    ok.context = context;
    ok.static_bytes = stat.size();
    ok.dynamic_bytes = dyn.size();

    std::optional<RecvRec> rec;
    DevRequest sync_request;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      rec = posted_.match_where(key, claim_recv);
      if (rec) {
        note_match(key, total, /*was_posted=*/true);
        note_posted_depth_locked();
        rec->request->mark_matched(corr, self_.value, tag, context, total);
      } else {
        auto msg = std::make_shared<UnexpMsg>();
        msg->key = key;
        msg->kind = FrameType::Eager;
        msg->static_len = static_cast<std::uint32_t>(stat.size());
        msg->dynamic_len = static_cast<std::uint32_t>(dyn.size());
        msg->msg_id = corr;
        msg->temp = pool_.get(msg->static_len);
        auto sdst = msg->temp->prepare_static(msg->static_len);
        if (!stat.empty()) std::memcpy(sdst.data(), stat.data(), stat.size());
        auto ddst = msg->temp->prepare_dynamic(msg->dynamic_len);
        if (!dyn.empty()) std::memcpy(ddst.data(), dyn.data(), dyn.size());
        msg->temp->seal_received();
        msg->data_complete = true;
        if (sync) {
          sync_request = std::make_shared<DevRequestState>(DevRequestState::Kind::Send,
                                                           sink_, nullptr, this);
          sync_request->set_corr(corr);
          msg->self_sync = sync_request;
        }
        unexpected_.add(key, msg);
        counters_->record_max(prof::Ctr::UnexpectedDepthHwm, unexpected_.size());
        note_unexpected_locked(unexp_payload_bytes(*msg));
        arrival_cv_.notify_all();
      }
    }
    prof::record_flight(corr, prof::FlightStage::SendWire, self_.value, tag, context, total);
    if (!rec) {
      if (sync) return sync_request;  // completes when a receive matches
      return make_completed_request(DevRequestState::Kind::Send, ok, corr);
    }
    deliver_self(*rec, stat, dyn, ok);
    return make_completed_request(DevRequestState::Kind::Send, ok, corr);
  }

  /// Zero-copy shapes collapse to a flat copy on loopback — a self-send IS
  /// a memcpy, so gather [section header | segments] once and reuse
  /// self_send.
  DevRequest self_send_segments(std::span<const std::byte> header,
                                std::span<const SendSegment> segments, std::size_t payload,
                                int tag, int context, bool sync) {
    std::vector<std::byte> flat;
    flat.reserve(header.size() + payload);
    flat.insert(flat.end(), header.begin(), header.end());
    for (const SendSegment& seg : segments) {
      flat.insert(flat.end(), seg.data, seg.data + seg.size);
    }
    return self_send(flat, {}, tag, context, sync);
  }

  /// Land a self-send in a matched posted receive, honoring the same
  /// truncation and direct-eligibility rules as a wire arrival
  /// (handle_eager / deliver_buffered_direct).
  void deliver_self(RecvRec& rec, std::span<const std::byte> stat,
                    std::span<const std::byte> dyn, const DevStatus& sent) {
    DevStatus status = sent;
    constexpr std::size_t sect = buf::Buffer::kSectionHeaderBytes;
    if (rec.direct) {
      if (stat.size() > sect + rec.span.payload_capacity) {
        status.truncated = true;
        rec.request->complete(status);
        return;
      }
      if (direct_eligible(static_cast<std::uint32_t>(stat.size()),
                          static_cast<std::uint32_t>(dyn.size()), rec.span)) {
        std::memcpy(rec.span.header, stat.data(), sect);
        if (stat.size() > sect) {
          std::memcpy(rec.span.payload, stat.data() + sect, stat.size() - sect);
        }
        status.direct = true;
        rec.request->complete(status);
        return;
      }
      // Ineligible shape that still fits: stage into a buffer attached to
      // the request (direct stays false; the core unpacks it).
      auto staging = std::make_unique<buf::Buffer>(sect + rec.span.payload_capacity);
      auto sdst = staging->prepare_static(static_cast<std::uint32_t>(stat.size()));
      if (!stat.empty()) std::memcpy(sdst.data(), stat.data(), stat.size());
      auto ddst = staging->prepare_dynamic(static_cast<std::uint32_t>(dyn.size()));
      if (!dyn.empty()) std::memcpy(ddst.data(), dyn.data(), dyn.size());
      staging->seal_received();
      rec.request->attach_buffer(std::move(staging));
      rec.request->complete(status);
      return;
    }
    if (stat.size() > rec.buffer->capacity()) {
      status.truncated = true;
      rec.request->complete(status);
      return;
    }
    auto sdst = rec.buffer->prepare_static(static_cast<std::uint32_t>(stat.size()));
    if (!stat.empty()) std::memcpy(sdst.data(), stat.data(), stat.size());
    auto ddst = rec.buffer->prepare_dynamic(static_cast<std::uint32_t>(dyn.size()));
    if (!dyn.empty()) std::memcpy(ddst.data(), dyn.data(), dyn.size());
    rec.buffer->seal_received();
    rec.request->complete(status);
  }

  /// Complete a staged synchronous self-send once a receive consumed its
  /// unexpected entry (the loopback analog of "the RTR proves the receiver
  /// matched").
  static void complete_self_sync(UnexpMsg& msg) {
    if (!msg.self_sync) return;
    DevStatus status;
    status.source = msg.key.src;
    status.tag = msg.key.tag;
    status.context = msg.key.context;
    status.static_bytes = msg.static_len;
    status.dynamic_bytes = msg.dynamic_len;
    DevRequest request = std::move(msg.self_sync);
    msg.self_sync = nullptr;
    request->complete(status);
  }

  // ---- per-peer MPSC send queues ------------------------------------------------

  /// Queue one outgoing frame for `peer` and make sure somebody writes it.
  /// Producers never block on write_mu: the push is wait-free, and if
  /// another thread holds the channel it is obligated to re-check the queue
  /// after unlocking (unlock_and_drain), so the frame cannot be stranded.
  void submit_frame(Peer& peer, std::unique_ptr<SendFrame> frame) {
    peer.send_q.push(frame.release());
    peer.queued.fetch_add(1, std::memory_order_release);
    drain_sends(peer);
  }

  /// Lost-wakeup-free drain: try-lock the channel and write queued frames
  /// in FIFO order. Losing the try-lock is fine — the current holder
  /// re-enters here after unlocking. The outer loop re-checks `queued`
  /// after every drain pass because a producer may enqueue (or be caught
  /// mid-push, making pop() transiently return null) between the pass and
  /// the unlock.
  void drain_sends(Peer& peer) {
    while (peer.queued.load(std::memory_order_acquire) > 0) {
      std::unique_lock<std::mutex> wl(peer.write_mu, std::try_to_lock);
      if (!wl.owns_lock()) return;  // holder drains after unlocking
      drain_sends_locked(peer);
    }
  }

  void drain_sends_locked(Peer& peer) {
    while (auto* node = static_cast<SendFrame*>(peer.send_q.pop())) {
      std::unique_ptr<SendFrame> frame(node);
      peer.queued.fetch_sub(1, std::memory_order_release);
      write_frame_locked(peer, *frame);
    }
  }

  /// Every write_mu release must route through here: unlocking and then
  /// re-checking the queue is what closes the race where a producer pushed,
  /// lost the try-lock to us, and returned counting on us to write its
  /// frame. Input-handler call sites pass inline_ok=false: the input thread
  /// must never block on a large queued write (both ranks doing so at once
  /// is a distributed deadlock — neither side reads), so leftover frames
  /// are handed to a short-lived drainer thread instead. The hand-off only
  /// happens on the rare lost-race path, so the thread churn is negligible.
  void unlock_and_drain(Peer& peer, std::unique_lock<std::mutex>& wl,
                        bool inline_ok = true) {
    wl.unlock();
    if (inline_ok) {
      drain_sends(peer);
      return;
    }
    if (peer.queued.load(std::memory_order_acquire) > 0) spawn_drainer(peer);
  }

  /// Drain a peer's send queue on a dedicated thread (blocking lock is fine
  /// there). Registered with the writer bookkeeping so finish() waits for
  /// it like any rendez-write-thread.
  void spawn_drainer(Peer& peer) {
    {
      std::lock_guard<std::mutex> lock(writer_mu_);
      ++active_writers_;
    }
    std::thread([this, &peer] {
      {
        std::unique_lock<std::mutex> wl(peer.write_mu);
        drain_sends_locked(peer);
        unlock_and_drain(peer, wl);
      }
      std::lock_guard<std::mutex> lock(writer_mu_);
      if (--active_writers_ == 0) writer_cv_.notify_all();
    }).detach();
  }

  /// Transmit one queued frame on the (locked) channel: lazy-dial if the
  /// channel is closed, apply the per-frame fault decision, gather
  /// [header | body] in one writev, and settle the frame's request.
  /// Reliable mode routes through the retransmit buffer exactly as before
  /// the queue existed. A failure in plain mode poisons the channel
  /// (fail-fast): later sends to this peer error instead of silently
  /// redialing around a failure the application was already told about.
  void write_frame_locked(Peer& peer, SendFrame& frame) {
    try {
      ensure_connected_locked(peer);
      if (reliable_) {
        reliable_write_locked(peer, frame);
        return;
      }
      std::array<std::byte, kHeaderBytes> bytes{};
      tcp::encode_header(bytes, frame.hdr);
      if (apply_write_fault_locked(peer, bytes)) {
        std::vector<std::span<const std::byte>> parts;
        parts.reserve(4 + frame.segments.size());
        parts.emplace_back(bytes);
        append_body_parts(frame, parts);
        peer.write_channel.writev_all(parts);
      }
      touch(peer);
      note_frame_wire(peer, frame);
      if (frame.request) frame.request->complete(frame.ok_status);
    } catch (const Error& e) {
      if (!reliable_) {
        close_channel_locked(peer, /*evicted=*/false);
        peer.write_failed = true;
      }
      fail_frame(frame, e);
    }
  }

  /// Settle a frame that will never reach the wire.
  void fail_frame(SendFrame& frame, const Error& e) {
    if (frame.on_error) {
      frame.on_error(e);
      return;
    }
    if (!frame.request) return;
    DevStatus status = frame.ok_status;
    status.static_bytes = 0;
    status.dynamic_bytes = 0;
    status.error = e.code() == ErrCode::Success ? ErrCode::ConnReset : e.code();
    frame.request->complete(status);
  }

  static void append_body_parts(const SendFrame& frame,
                                std::vector<std::span<const std::byte>>& parts) {
    if (frame.borrow_buffer != nullptr) {
      parts.emplace_back(frame.borrow_buffer->static_payload());
      parts.emplace_back(frame.borrow_buffer->dynamic_payload());
      return;
    }
    if (frame.sect_len > 0) parts.emplace_back(frame.sect_header.data(), frame.sect_len);
    for (const SendSegment& seg : frame.segments) parts.emplace_back(seg.data, seg.size);
  }

  static std::size_t frame_body_bytes(const SendFrame& frame) {
    if (frame.borrow_buffer != nullptr) {
      return frame.borrow_buffer->static_payload().size() +
             frame.borrow_buffer->dynamic_payload().size();
    }
    std::size_t total = frame.sect_len;
    for (const SendSegment& seg : frame.segments) total += seg.size;
    return total;
  }

  void note_frame_wire(Peer& peer, const SendFrame& frame) {
    if (!frame.record_wire) return;
    prof::record_flight(frame.hdr.msg_id, prof::FlightStage::SendWire, peer.id,
                        frame.hdr.tag, frame.hdr.context,
                        static_cast<std::size_t>(frame.hdr.static_len) +
                            frame.hdr.dynamic_len);
  }

  /// Decide the injected fault for ONE logical outgoing frame
  /// (Site::TcpWrite). Injection must act on whole frames: per-write(2)
  /// injection could drop half a frame, desynchronizing the byte stream in
  /// a way no real network can (TCP always delivers a prefix). Returns
  /// false when the frame must vanish silently (Drop — the peer just sees
  /// a stalled stream); corrupts the already-ENCODED header in place for
  /// Corrupt (the CRC was computed over the pristine bytes, so the peer's
  /// header validation is guaranteed to catch it); hard-resets the channel
  /// and throws for Reset. Called with the peer's write_mu held.
  bool apply_write_fault_locked(Peer& peer, std::span<std::byte> encoded_header) {
    if (!faults::enabled()) return true;
    switch (faults::next_action(faults::Site::TcpWrite)) {
      case faults::Action::None:
        return true;
      case faults::Action::Drop:
        return false;
      case faults::Action::Corrupt:
        encoded_header[8] ^= std::byte{0x5A};
        return true;
      case faults::Action::Reset:
        peer.write_channel.shutdown_both();
        throw net::SocketError("send: connection reset (injected fault)");
    }
    return true;
  }

  // ---- connection manager (lazy dial, LRU cap, idle close) ----------------------

  static std::uint64_t now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
  }

  /// LRU stamp, refreshed on every frame written. Relaxed: the LRU scan
  /// only needs an approximate order.
  static void touch(Peer& peer) {
    peer.last_used_ns.store(now_ns(), std::memory_order_relaxed);
  }

  /// Make the peer's write channel usable, dialing it if closed (first
  /// send, or first send after an eviction). Called with write_mu held.
  void ensure_connected_locked(Peer& peer) {
    if (peer.write_channel.valid()) return;
    if (!reliable_ && peer.write_failed) {
      throw DeviceError("tcpdev: write channel to peer " + std::to_string(peer.id) +
                            " failed",
                        ErrCode::ConnReset);
    }
    dial_channel_locked(peer);
  }

  /// Dial the peer's write channel and run the Hello handshake. The Hello
  /// carries the next epoch (so the receiver can order incarnations: a
  /// first contact and a post-eviction redial look identical) and, in
  /// reliable mode, the cumulative ack; unacked frames are replayed after
  /// the swap. Honors Site::TcpConnect fault injection per attempt and
  /// recovers from descriptor exhaustion by evicting the least-recently-
  /// used idle channel. Called with write_mu held.
  void dial_channel_locked(Peer& peer) {
    if (!running_) throw DeviceError("tcpdev: send after finish");
    const std::uint32_t deadline_ms = faults::connect_timeout_ms();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
    const std::uint64_t seed = (static_cast<std::uint64_t>(self_.value) << 32) ^ peer.id ^
                               now_ns();
    Backoff backoff(reconnect_ms_, reconnect_ms_ * 16, seed);
    for (;;) {
      bool injected_fail = false;
      if (faults::enabled() &&
          faults::next_action(faults::Site::TcpConnect) == faults::Action::Reset) {
        // Reset at the connect site means "this dial attempt fails"; the
        // retry loop below absorbs it. Drop/Corrupt are data-frame faults —
        // letting them kill dial attempts would turn a corrupt=1.0 plan
        // aimed at payload integrity into a 30-second connect stall.
        injected_fail = true;
      }
      if (!injected_fail) {
        try {
          net::Socket sock = net::Socket::connect(
              peer.host, peer.port,
              static_cast<int>(std::max<std::uint64_t>(reconnect_ms_, 10)));
          install_channel_locked(peer, std::move(sock));
          return;
        } catch (const net::SocketError& e) {
          if (fd_exhausted_error(e) && evict_lru_channel(peer.id)) continue;
          log::debug("tcpdev: dial to peer ", peer.id, " failed: ", e.what());
          if (fd_exhausted_error(e)) throw;  // nothing evictable: actionable error up
        } catch (const Error& e) {
          log::debug("tcpdev: dial to peer ", peer.id, " failed: ", e.what());
        }
      }
      if (std::chrono::steady_clock::now() >= deadline) {
        faults::counters().add(prof::Ctr::OpTimeouts);
        throw DeviceError("tcpdev: rank " + std::to_string(self_.value) +
                              " failed to connect write channel to rank " +
                              std::to_string(peer.id) + " within " +
                              std::to_string(deadline_ms) +
                              " ms (MPCX_CONNECT_TIMEOUT_MS)",
                          ErrCode::Timeout);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(backoff.next_delay_ms()));
    }
  }

  /// The socket layer tags EMFILE/ENFILE with an actionable message (see
  /// throw_fd_exhausted); the connection manager keys recovery off it.
  static bool fd_exhausted_error(const net::SocketError& e) {
    return std::string_view(e.what()).find("file-descriptor limit") !=
           std::string_view::npos;
  }

  /// Complete the handshake on a freshly dialed socket and swap it in.
  /// Called with write_mu held.
  void install_channel_locked(Peer& peer, net::Socket sock) {
    sock.set_nodelay(true);
    if (config_.socket_buffer_bytes > 0) {
      sock.set_buffer_sizes(config_.socket_buffer_bytes, config_.socket_buffer_bytes);
    }
    FrameHeader hello;
    hello.type = FrameType::Hello;
    hello.src = self_.value;
    hello.epoch = peer.epoch + 1;
    hello.ack = peer.last_seen.load(std::memory_order_acquire);
    std::array<std::byte, kHeaderBytes> bytes{};
    tcp::encode_header(bytes, hello);
    sock.write_all(bytes);
    const bool was_open = peer.write_channel.valid();
    peer.write_channel = std::move(sock);
    ++peer.epoch;
    note_ack_sent(peer, hello.ack);
    if (!was_open) {
      peer.open.store(true, std::memory_order_relaxed);
      open_conns_.fetch_add(1, std::memory_order_relaxed);
      pvars_->gauge_add(prof::Pv::OpenConnections, 1);
    }
    counters_->add(prof::Ctr::ConnsOpened);
    if (peer.evicted_once) counters_->add(prof::Ctr::ConnsRedialed);
    peer.write_failed = false;
    touch(peer);
    if (reliable_) {
      std::lock_guard<std::mutex> rl(peer.rel_mu);
      for (const RetransEntry& entry : peer.retrans) {
        write_entry(peer, entry);
        counters_->add(prof::Ctr::FramesRetransmitted);
      }
    }
    enforce_conn_cap(peer.id);
    log::debug("tcpdev: dialed write channel to peer ", peer.id, " (epoch ", peer.epoch,
               ")");
  }

  /// Close an open write channel in an orderly way. Frames are written
  /// whole under write_mu, so the FIN lands at a frame boundary: the
  /// receiver sees a graceful EOF, drops the read channel, and does NOT
  /// treat us as failed. Called with write_mu held.
  void close_channel_locked(Peer& peer, bool evicted) {
    if (!peer.write_channel.valid()) return;
    peer.write_channel = net::Socket();
    peer.open.store(false, std::memory_order_relaxed);
    open_conns_.fetch_sub(1, std::memory_order_relaxed);
    pvars_->gauge_add(prof::Pv::OpenConnections, -1);
    if (evicted) {
      peer.evicted_once = true;
      counters_->add(prof::Ctr::ConnsEvicted);
    }
  }

  /// A channel is quiescent — safe to close without losing anything — when
  /// nothing is queued for it, no reliable frame awaits an ack (the
  /// retransmit watchdog would immediately redial an evicted channel with
  /// unacked frames), and we owe the peer no ack (flush_ack would redial
  /// to deliver it). try-locks so two dialers can never deadlock evicting
  /// each other; a busy channel just isn't idle. Returns true if closed.
  bool close_if_quiescent(Peer& peer) {
    std::unique_lock<std::mutex> wl(peer.write_mu, std::try_to_lock);
    if (!wl.owns_lock()) return false;
    bool closed = false;
    if (peer.write_channel.valid() && peer.queued.load(std::memory_order_acquire) == 0 &&
        (!reliable_ || quiescent_reliable(peer))) {
      close_channel_locked(peer, /*evicted=*/true);
      closed = true;
    }
    unlock_and_drain(peer, wl, /*inline_ok=*/false);
    return closed;
  }

  bool quiescent_reliable(Peer& peer) {
    {
      std::lock_guard<std::mutex> rl(peer.rel_mu);
      if (!peer.retrans.empty()) return false;
    }
    // An owed ack means a close would force an immediate redial just to
    // deliver it (flush_ack dials when the channel is down).
    return peer.last_seen.load(std::memory_order_acquire) ==
           peer.last_ack_sent.load(std::memory_order_acquire);
  }

  /// Close the least-recently-used quiescent write channel other than
  /// `keep`. Candidates are tried in LRU order until one closes.
  bool evict_lru_channel(std::uint64_t keep) {
    std::vector<std::pair<std::uint64_t, Peer*>> candidates;
    for (auto& [id, peer] : peers_) {
      if (id == keep || !peer->open.load(std::memory_order_relaxed)) continue;
      candidates.emplace_back(peer->last_used_ns.load(std::memory_order_relaxed),
                              peer.get());
    }
    std::sort(candidates.begin(), candidates.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    for (auto& [stamp, peer] : candidates) {
      if (close_if_quiescent(*peer)) return true;
    }
    return false;
  }

  /// MPCX_MAX_CONNS: over the cap, shed LRU channels. A cap with nothing
  /// quiescent to shed is a soft cap — correctness first.
  void enforce_conn_cap(std::uint64_t keep) {
    if (max_conns_ == 0) return;
    while (open_conns_.load(std::memory_order_relaxed) > max_conns_) {
      if (!evict_lru_channel(keep)) return;
    }
  }

  /// MPCX_IDLE_CLOSE_MS: input-loop tick reaping channels idle longer than
  /// the threshold.
  void close_idle_channels() {
    if (idle_close_ms_ == 0) return;
    const std::uint64_t cutoff = idle_close_ms_ * 1'000'000ull;
    const std::uint64_t now = now_ns();
    for (auto& [id, peer] : peers_) {
      if (!peer->open.load(std::memory_order_relaxed)) continue;
      const std::uint64_t used = peer->last_used_ns.load(std::memory_order_relaxed);
      if (now - used < cutoff) continue;
      close_if_quiescent(*peer);
    }
  }

  // ---- reliability session layer (MPCX_RELIABLE=1) ------------------------------

  /// Transmit one queued frame under the reliability session: assign the
  /// next seq (wire order == seq order — seq assignment at drain time,
  /// under the lock, is what keeps the stream gapless with concurrent
  /// producers), piggyback the cumulative ack, append the retransmit
  /// entry, then write. An injected or real write failure sends the
  /// channel through redial-with-backoff + handshake + replay before this
  /// returns; redial exhaustion declares the peer dead (ProcFailed, thrown
  /// to write_frame_locked which settles the frame). Called with write_mu
  /// held.
  void reliable_write_locked(Peer& peer, SendFrame& frame) {
    wait_retrans_capacity(peer);
    FrameHeader hdr = frame.hdr;
    hdr.seq = peer.next_seq++;
    hdr.ack = peer.last_seen.load(std::memory_order_acquire);
    hdr.epoch = peer.epoch;

    RetransEntry entry;
    entry.seq = hdr.seq;
    tcp::encode_header(entry.hdr_bytes, hdr);
    std::array<std::byte, kHeaderBytes> wire = entry.hdr_bytes;
    bool drop = false;
    if (faults::enabled()) {
      switch (faults::next_action(faults::Site::TcpWrite)) {
        case faults::Action::None:
          break;
        case faults::Action::Drop:
          // The frame vanishes from the wire but stays in the retransmit
          // buffer: the receiver's seq-gap detection forces a repair cycle
          // that replays it.
          drop = true;
          break;
        case faults::Action::Corrupt:
          // Corrupt the WIRE copy only; the entry keeps pristine bytes, so
          // the receiver's CRC failure + our replay deliver it intact.
          wire[8] ^= std::byte{0x5A};
          break;
        case faults::Action::Reset:
          // The write below fails and takes the redial + replay path.
          peer.write_channel.shutdown_both();
          break;
      }
    }
    const std::size_t body_bytes = frame_body_bytes(frame);
    if (frame.pin_body) {
      // Zero-copy pinning: the body stays borrowed from caller memory and
      // the request completes only when the cumulative ack covers the seq.
      entry.borrowed = true;
      entry.body_buffer = frame.borrow_buffer;
      if (frame.borrow_buffer == nullptr) {
        entry.sect_header = frame.sect_header;
        entry.sect_len = frame.sect_len;
        entry.segments = frame.segments;
      }
      entry.request = frame.request;
      entry.ok_status = frame.ok_status;
    } else {
      // Buffered-send semantics: own a private copy; the request (if any)
      // completes as soon as the frame is handed to the channel.
      entry.owned.reserve(body_bytes);
      if (frame.borrow_buffer != nullptr) {
        const auto sp = frame.borrow_buffer->static_payload();
        const auto dp = frame.borrow_buffer->dynamic_payload();
        entry.owned.insert(entry.owned.end(), sp.begin(), sp.end());
        entry.owned.insert(entry.owned.end(), dp.begin(), dp.end());
      } else {
        entry.owned.insert(entry.owned.end(), frame.sect_header.begin(),
                           frame.sect_header.begin() + frame.sect_len);
        for (const SendSegment& seg : frame.segments) {
          entry.owned.insert(entry.owned.end(), seg.data, seg.data + seg.size);
        }
      }
    }
    entry.bytes = kHeaderBytes + body_bytes;
    {
      std::lock_guard<std::mutex> rl(peer.rel_mu);
      if (peer.retrans.empty()) peer.last_ack_progress = std::chrono::steady_clock::now();
      peer.retrans.push_back(std::move(entry));
      peer.retrans_bytes += kHeaderBytes + body_bytes;
      pvars_->gauge_add(prof::Pv::RetransmitBufferBytes,
                        static_cast<std::int64_t>(kHeaderBytes + body_bytes));
    }
    if (!drop) {
      try {
        std::vector<std::span<const std::byte>> parts;
        parts.reserve(4 + frame.segments.size());
        parts.emplace_back(wire);
        append_body_parts(frame, parts);
        peer.write_channel.writev_all(parts);
        // The piggybacked ack reached the wire — suppress the redundant
        // standalone flush. (If the socket silently eats the frame, any
        // repair path re-delivers the cumulative ack via its Hello.)
        note_ack_sent(peer, hdr.ack);
      } catch (const Error&) {
        reconnect_replay(peer);
      }
    }
    touch(peer);
    note_frame_wire(peer, frame);
    if (!frame.pin_body && frame.request) frame.request->complete(frame.ok_status);
  }

  /// Block while the retransmit buffer is over MPCX_RETRANS_MAX — the
  /// sender's flow control against a slow or silent receiver. Called with
  /// the peer's write_mu held; acks drain the buffer under rel_mu alone, so
  /// capacity can free up while we wait.
  void wait_retrans_capacity(Peer& peer) {
    std::unique_lock<std::mutex> rl(peer.rel_mu);
    const std::uint32_t deadline_ms = faults::op_timeout_ms();
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(deadline_ms);
    for (;;) {
      if (peer.failed) {
        throw DeviceError("tcpdev: peer " + std::to_string(peer.id) + " failed",
                          ErrCode::ProcFailed);
      }
      if (!running_) throw DeviceError("tcpdev: send after finish");
      if (peer.retrans_bytes < retrans_max_bytes_) return;
      if (deadline_ms != 0 && std::chrono::steady_clock::now() >= deadline) {
        faults::counters().add(prof::Ctr::OpTimeouts);
        throw DeviceError("tcpdev: retransmit buffer full for " +
                              std::to_string(deadline_ms) +
                              " ms (MPCX_RETRANS_MAX / MPCX_OP_TIMEOUT_MS)",
                          ErrCode::Timeout);
      }
      peer.rel_cv.wait_for(rl, std::chrono::milliseconds(50));
    }
  }

  /// Redial a dead write channel with exponential backoff + jitter, run the
  /// Hello handshake (new epoch; ack = last_seq_seen), and replay every
  /// unacked frame in seq order. Called with the peer's write_mu held, so
  /// the channel is replaced atomically with respect to other writers.
  /// Throws ErrCode::ProcFailed after MPCX_RECONNECT_MAX failed attempts.
  void reconnect_replay(Peer& peer) {
    const std::uint64_t seed =
        (static_cast<std::uint64_t>(self_.value) << 32) ^ peer.id ^
        static_cast<std::uint64_t>(
            std::chrono::steady_clock::now().time_since_epoch().count());
    Backoff backoff(reconnect_ms_, reconnect_ms_ * 16, seed);
    for (std::uint64_t attempt = 0; attempt < reconnect_max_; ++attempt) {
      // First attempt dials immediately: a reset with a live acceptor on
      // the other end (the common, transient case) repairs in one RTT.
      // Backoff paces the retries, when the peer really is gone or mid-restart.
      if (attempt != 0) {
        std::this_thread::sleep_for(std::chrono::milliseconds(backoff.next_delay_ms()));
      }
      if (!running_) throw DeviceError("tcpdev: device shut down during reconnect");
      {
        std::lock_guard<std::mutex> rl(peer.rel_mu);
        if (peer.failed) {
          throw DeviceError("tcpdev: peer " + std::to_string(peer.id) + " failed",
                            ErrCode::ProcFailed);
        }
      }
      try {
        net::Socket sock = net::Socket::connect(
            peer.host, peer.port, static_cast<int>(std::max<std::uint64_t>(reconnect_ms_, 10)));
        sock.set_nodelay(true);
        if (config_.socket_buffer_bytes > 0) {
          sock.set_buffer_sizes(config_.socket_buffer_bytes, config_.socket_buffer_bytes);
        }
        FrameHeader hello;
        hello.type = FrameType::Hello;
        hello.src = self_.value;
        hello.epoch = peer.epoch + 1;
        hello.ack = peer.last_seen.load(std::memory_order_acquire);
        std::array<std::byte, kHeaderBytes> bytes{};
        tcp::encode_header(bytes, hello);
        sock.write_all(bytes);
        const bool was_open = peer.write_channel.valid();
        peer.write_channel = std::move(sock);
        ++peer.epoch;
        note_ack_sent(peer, hello.ack);
        if (!was_open) {
          peer.open.store(true, std::memory_order_relaxed);
          open_conns_.fetch_add(1, std::memory_order_relaxed);
          pvars_->gauge_add(prof::Pv::OpenConnections, 1);
        }
        touch(peer);
        counters_->add(prof::Ctr::Reconnects);
        std::size_t replayed = 0;
        {
          std::lock_guard<std::mutex> rl(peer.rel_mu);
          for (const RetransEntry& entry : peer.retrans) {
            write_entry(peer, entry);
            counters_->add(prof::Ctr::FramesRetransmitted);
            ++replayed;
          }
        }
        log::debug("tcpdev: reconnected write channel to peer ", peer.id, " (epoch ",
                   peer.epoch, ", replayed ", replayed, " frame(s))");
        return;
      } catch (const Error& e) {
        log::debug("tcpdev: redial to peer ", peer.id, " failed: ", e.what());
      }
    }
    {
      std::lock_guard<std::mutex> rl(peer.rel_mu);
      peer.failed = true;
      peer.rel_cv.notify_all();
    }
    fail_peer(peer.id, ErrCode::ProcFailed, nullptr);
    throw DeviceError("tcpdev: peer " + std::to_string(peer.id) + " unreachable after " +
                          std::to_string(reconnect_max_) +
                          " redial attempts (MPCX_RECONNECT_MS/MPCX_RECONNECT_MAX)",
                      ErrCode::ProcFailed);
  }

  /// Replay one retransmit entry on the (fresh) write channel. Called with
  /// both write_mu and rel_mu held.
  void write_entry(Peer& peer, const RetransEntry& entry) {
    std::vector<std::span<const std::byte>> parts;
    parts.reserve(3 + entry.segments.size());
    parts.emplace_back(entry.hdr_bytes);
    if (entry.borrowed) {
      if (entry.body_buffer != nullptr) {
        parts.emplace_back(entry.body_buffer->static_payload());
        parts.emplace_back(entry.body_buffer->dynamic_payload());
      } else {
        parts.emplace_back(entry.sect_header.data(), entry.sect_len);
        for (const SendSegment& seg : entry.segments) parts.emplace_back(seg.data, seg.size);
      }
    } else if (!entry.owned.empty()) {
      parts.emplace_back(entry.owned);
    }
    peer.write_channel.writev_all(parts);
  }

  /// Process a cumulative ack from `peer`: release every retransmit entry
  /// with seq <= ack and complete the pinned zero-copy sends among them
  /// (outside rel_mu — completion may publish to the merged queue).
  void process_ack(Peer& peer, std::uint64_t ack) {
    if (ack == 0) return;
    std::vector<std::pair<DevRequest, DevStatus>> done;
    {
      std::lock_guard<std::mutex> rl(peer.rel_mu);
      if (ack <= peer.last_acked) return;
      peer.last_acked = ack;
      peer.last_ack_progress = std::chrono::steady_clock::now();
      while (!peer.retrans.empty() && peer.retrans.front().seq <= ack) {
        RetransEntry& entry = peer.retrans.front();
        peer.retrans_bytes -= entry.bytes;
        pvars_->gauge_add(prof::Pv::RetransmitBufferBytes,
                          -static_cast<std::int64_t>(entry.bytes));
        if (entry.request) done.emplace_back(std::move(entry.request), entry.ok_status);
        peer.retrans.pop_front();
      }
      peer.rel_cv.notify_all();
    }
    for (auto& [request, status] : done) request->complete(status);
  }

  /// Record that a cumulative ack up to `value` reached the wire (standalone
  /// Ack, data-frame piggyback, or reconnect Hello). Called with the peer's
  /// write_mu held; the monotonic guard keeps a stale piggyback from
  /// un-suppressing the idle flush.
  static void note_ack_sent(Peer& peer, std::uint64_t value) {
    if (value > peer.last_ack_sent.load(std::memory_order_relaxed)) {
      peer.last_ack_sent.store(value, std::memory_order_release);
    }
  }

  /// Input handler only: send a standalone cumulative ack if the peer has
  /// unacked frames. Only TRY-locks the channel — it must never block
  /// behind a writer mid-redial; the piggybacked ack on the next data frame
  /// (or the next idle flush) covers a skipped send.
  void flush_ack(Peer& peer) {
    if (peer.last_seen.load(std::memory_order_acquire) ==
        peer.last_ack_sent.load(std::memory_order_acquire)) {
      return;
    }
    std::unique_lock<std::mutex> wl(peer.write_mu, std::try_to_lock);
    if (!wl.owns_lock()) return;
    // Re-read under the lock: a data frame sent while we waited may have
    // piggybacked the very ack we came to flush.
    const std::uint64_t seen = peer.last_seen.load(std::memory_order_acquire);
    if (seen <= peer.last_ack_sent.load(std::memory_order_relaxed)) {
      unlock_and_drain(peer, wl, /*inline_ok=*/false);
      return;
    }
    try {
      if (!peer.write_channel.valid()) {
        // Lazy/evicted channel: a fresh dial's Hello carries the ack.
        dial_channel_locked(peer);
      } else {
        FrameHeader ack;
        ack.type = FrameType::Ack;
        ack.src = self_.value;
        ack.ack = seen;
        ack.epoch = peer.epoch;
        std::array<std::byte, kHeaderBytes> bytes{};
        tcp::encode_header(bytes, ack);
        peer.write_channel.write_all(bytes);
        note_ack_sent(peer, seen);
      }
    } catch (const Error&) {
      // Channel down. When traffic is one-directional this channel carries
      // ONLY acks, so no data writer will ever trip over it and redial —
      // the repair must happen here, or acks stop forever and the peer's
      // retransmit buffer grows without bound (replaying an ever-longer
      // duplicate train on every reconnect). reconnect_replay re-runs the
      // Hello handshake, whose ack field delivers `seen`.
      try {
        reconnect_replay(peer);
      } catch (const Error& e) {
        log::debug("tcpdev: ack-channel redial to peer ", peer.id, " failed: ", e.what());
      }
    }
    unlock_and_drain(peer, wl, /*inline_ok=*/false);
  }

  /// Input handler only: tell `peer` its write channel to us just died
  /// (read-side reset). The notice rides OUR write channel as a flagged
  /// Ack, carrying the cumulative ack so the peer replays exactly the
  /// unacked suffix when it redials.
  void send_reset_notice(Peer& peer) {
    std::unique_lock<std::mutex> wl(peer.write_mu, std::try_to_lock);
    if (!wl.owns_lock()) return;  // a writer owns the channel; the watchdog backstops
    if (!peer.write_channel.valid()) {
      // Channel lazily closed: nothing rides it, and the peer learns our
      // read side died from the Hello epoch of our next dial.
      unlock_and_drain(peer, wl, /*inline_ok=*/false);
      return;
    }
    const std::uint64_t seen = peer.last_seen.load(std::memory_order_acquire);
    FrameHeader notice;
    notice.type = FrameType::Ack;
    notice.tag = kAckResetNotice;
    notice.src = self_.value;
    notice.ack = seen;
    notice.epoch = peer.epoch;
    std::array<std::byte, kHeaderBytes> bytes{};
    tcp::encode_header(bytes, notice);
    try {
      peer.write_channel.write_all(bytes);
      note_ack_sent(peer, seen);
    } catch (const Error& e) {
      // Both directions down at once: repair ours here; the peer's own
      // read-side notice or watchdog covers the other.
      try {
        reconnect_replay(peer);
      } catch (const Error& redial_err) {
        log::debug("tcpdev: reset-notice redial to peer ", peer.id, " failed: ",
                   redial_err.what());
        (void)e;
      }
    }
    unlock_and_drain(peer, wl, /*inline_ok=*/false);
  }

  /// Input handler only: the peer says our write channel to it is dead.
  /// Redial + replay right away — even with an empty retransmit buffer the
  /// socket is a zombie, and the next eager write would vanish into it.
  void redial_for_notice(Peer& peer) {
    std::unique_lock<std::mutex> wl(peer.write_mu, std::try_to_lock);
    if (!wl.owns_lock()) return;  // an active writer will hit the error itself
    bool skip = !peer.write_channel.valid();  // already closed: next send redials anyway
    if (!skip) {
      std::lock_guard<std::mutex> rl(peer.rel_mu);
      skip = peer.failed;
    }
    if (!skip) {
      try {
        reconnect_replay(peer);
      } catch (const Error& e) {
        log::debug("tcpdev: notice-triggered redial to peer ", peer.id, " failed: ",
                   e.what());
      }
    }
    unlock_and_drain(peer, wl, /*inline_ok=*/false);
  }

  /// The frame whose seq is parked on `conn` has now been FULLY consumed:
  /// advance the duplicate-suppression watermark and ack if enough frames
  /// accumulated.
  void commit_frame_seq(Conn& conn) {
    if (conn.frame_seq == 0) return;
    Peer& peer = *conn.peer_state;
    peer.last_seen.store(conn.frame_seq, std::memory_order_release);
    conn.frame_seq = 0;
    if (peer.last_seen.load(std::memory_order_relaxed) -
            peer.last_ack_sent.load(std::memory_order_relaxed) >=
        kAckEvery) {
      flush_ack(peer);
    }
  }

  /// Reliable mode: a read channel died (peer reset, CRC failure, seq gap).
  /// Drop ONLY the channel — last_seen survives in the Peer, so when the
  /// peer redials and replays, duplicates are suppressed and the stream
  /// resumes gaplessly. A body caught mid-flight is UNWOUND, not lost: its
  /// abort hook re-publishes the matching state (re-posts the receive at
  /// the head of the match queue / re-parks the rendezvous entry) and its
  /// seq is NOT marked seen, so the replayed copy passes duplicate
  /// suppression, re-matches the restored receive, and redelivers the body
  /// from offset zero. Only bodies with no abort hook (discard drains of
  /// already-abandoned receives) and header-only frames whose handler threw
  /// mark their seq seen, so their replayed copies are drained.
  void drop_conn_for_repair(Conn& conn) {
    std::function<void()> abort_body = std::move(conn.on_body_abort);
    DevRequest body_request = std::move(conn.body_request);
    conn.on_body_abort = nullptr;
    conn.body_request = nullptr;
    conn.on_body_done = nullptr;
    if (conn.in_body && abort_body) {
      conn.frame_seq = 0;  // not seen: the replayed copy must redeliver
      conn.in_body = false;
      abort_body();
      return;  // the interrupted receive stays pending; replay completes it
    }
    if (conn.frame_seq != 0 && conn.peer_state != nullptr) {
      conn.peer_state->last_seen.store(conn.frame_seq, std::memory_order_release);
      conn.frame_seq = 0;
    }
    if (body_request) {
      DevStatus status;
      status.source = ProcessID{conn.peer};
      status.error = ErrCode::ConnReset;
      body_request->complete(status);
    }
  }

  /// Accept every pending dial on the listening socket (input handler
  /// only). The poller is edge-triggered: one readiness notification may
  /// cover several queued dials, so we must accept to empty. First contact
  /// (lazy connect), post-eviction redial, and post-failure repair all
  /// arrive here — the Hello handshake makes them indistinguishable by
  /// design. Descriptor exhaustion on accept evicts an idle channel and
  /// returns; the dialer's connect retry loop re-delivers the attempt.
  void accept_channels() {
    for (;;) {
      std::optional<net::Socket> sock;
      try {
        sock = acceptor_.accept_for(0);
      } catch (const net::SocketError& e) {
        if (fd_exhausted_error(e)) {
          log::warn("tcpdev: accept hit the fd limit (", e.what(),
                    "); evicting an idle channel");
          evict_lru_channel(self_.value);  // self id matches no peer: evict any
          return;
        }
        throw;
      }
      if (!sock) return;
      install_accepted(std::move(*sock));
    }
  }

  /// Complete the Hello handshake on an accepted socket and swap the read
  /// channel in. The Hello's epoch guards against a stale redial racing a
  /// fresh one; in reliable mode its ack field carries the peer's
  /// last_seq_seen of OUR frames and is processed as a cumulative ack —
  /// a failure may have eaten the acks for frames that did arrive.
  void install_accepted(net::Socket sock) {
    FrameHeader hdr;
    try {
      std::array<std::byte, kHeaderBytes> hello{};
      sock.read_all(hello);
      hdr = tcp::decode_header(hello);
    } catch (const Error& e) {
      log::debug("tcpdev: accept handshake failed: ", e.what());
      return;
    }
    if (hdr.type != FrameType::Hello) {
      log::debug("tcpdev: accepted socket sent a non-hello frame; dropping it");
      return;
    }
    auto pit = peers_.find(hdr.src);
    if (pit == peers_.end()) {
      log::debug("tcpdev: hello from unknown process ", hdr.src);
      return;
    }
    Peer& peer = *pit->second;
    if (hdr.epoch <= peer.recv_epoch) {
      log::debug("tcpdev: ignoring stale dial from peer ", hdr.src, " (epoch ",
                 hdr.epoch, " <= ", peer.recv_epoch, ")");
      return;
    }
    peer.recv_epoch = hdr.epoch;
    if (reliable_) process_ack(peer, hdr.ack);
    retire_existing_conn(hdr.src);
    sock.set_nodelay(true);
    if (config_.socket_buffer_bytes > 0) {
      sock.set_buffer_sizes(config_.socket_buffer_bytes, config_.socket_buffer_bytes);
    }
    sock.set_nonblocking(true);
    sock.set_fault_site(faults::Site::TcpRead);
    auto conn = std::make_unique<Conn>();
    conn->peer = hdr.src;
    conn->sock = std::move(sock);
    conn->peer_state = &peer;
    const int fd = conn->sock.fd();
    conns_by_fd_.emplace(fd, std::move(conn));
    poller_.add(fd);
    log::debug("tcpdev: accepted channel from peer ", hdr.src, " (epoch ", hdr.epoch, ")");
  }

  /// A fresh channel from `src` supersedes any read channel already held.
  /// Reliable mode just drops the old conn — replay re-delivers whatever a
  /// teardown loses. Non-reliable mode has no replay, so per-pair ordering
  /// demands the old channel be drained to its FIN before the new one is
  /// read: the peer closed it at a frame boundary with any final frames
  /// already ahead of the FIN in the stream.
  void retire_existing_conn(std::uint64_t src) {
    auto it = conns_by_fd_.begin();
    for (; it != conns_by_fd_.end(); ++it) {
      if (it->second->peer == src) break;
    }
    if (it == conns_by_fd_.end()) return;
    if (reliable_) {
      drop_conn_for_repair(*it->second);
    } else {
      drain_retired_conn(*it->second);
    }
    poller_.remove(it->first);
    conns_by_fd_.erase(it);
  }

  /// Pump a superseded read channel until its FIN so no tail frames are
  /// lost across an eviction (non-reliable mode only). Bounded: a peer that
  /// redials without having closed the old socket would otherwise park the
  /// input handler here forever.
  void drain_retired_conn(Conn& conn) {
    const auto deadline = std::chrono::steady_clock::now() + std::chrono::seconds(1);
    try {
      for (;;) {
        pump(conn);  // returns on WouldBlock
        if (std::chrono::steady_clock::now() >= deadline) {
          log::warn("tcpdev: retired channel from peer ", conn.peer,
                    " did not reach EOF in time; dropping it");
          return;
        }
        struct pollfd pfd = {conn.sock.fd(), POLLIN, 0};
        ::poll(&pfd, 1, 10);
      }
    } catch (const ConnClosed&) {
      // clean FIN at a frame boundary: fully drained
    } catch (const Error& e) {
      log::debug("tcpdev: error draining retired channel from peer ", conn.peer, ": ",
                 e.what());
    }
  }

  /// Convert a borrowed retransmit entry to an owned copy in place: the
  /// owning request's wait timed out and its memory is about to be
  /// reclaimed, but the entry must survive for replay so the seq stream
  /// stays gapless. Called under the peer's rel_mu.
  static void materialize_owned(RetransEntry& entry) {
    if (!entry.borrowed) return;
    std::vector<std::byte> owned;
    if (entry.body_buffer != nullptr) {
      const auto sp = entry.body_buffer->static_payload();
      const auto dp = entry.body_buffer->dynamic_payload();
      owned.reserve(sp.size() + dp.size());
      owned.insert(owned.end(), sp.begin(), sp.end());
      owned.insert(owned.end(), dp.begin(), dp.end());
    } else {
      std::size_t total = entry.sect_len;
      for (const SendSegment& seg : entry.segments) total += seg.size;
      owned.reserve(total);
      owned.insert(owned.end(), entry.sect_header.begin(),
                   entry.sect_header.begin() + entry.sect_len);
      for (const SendSegment& seg : entry.segments) {
        owned.insert(owned.end(), seg.data, seg.data + seg.size);
      }
    }
    entry.owned = std::move(owned);
    entry.borrowed = false;
    entry.body_buffer = nullptr;
    entry.segments.clear();
  }

  // ---- rendezvous protocol, send side (Fig. 6) ----------------------------------

  DevRequest rndv_send(buf::Buffer& buffer, ProcessID dst, int tag, int context) {
    counters_->add(prof::Ctr::RndvSends);
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Send, sink_,
                                                     nullptr, this);
    // Rendezvous always allocates: the id keys pending_sends_ / RndvKey maps
    // on both ends, and doubles as the flight-recorder correlation id.
    const std::uint64_t id = prof::alloc_corr_id(self_.value);
    request->set_corr(id);
    const std::size_t total = buffer.static_size() + buffer.dynamic_size();
    prof::record_flight(id, prof::FlightStage::SendPosted, dst.value, tag, context, total);
    {
      std::lock_guard<std::mutex> lock(send_mu_);
      SendRec rec;
      rec.request = request;
      rec.buffer = &buffer;
      rec.dst = dst;
      rec.tag = tag;
      rec.context = context;
      pending_sends_.emplace(id, std::move(rec));
      note_send_backlog_locked();
    }
    FrameHeader rts;
    rts.type = FrameType::Rts;
    rts.context = tag_to_wire(context);
    rts.tag = tag_to_wire(tag);
    rts.src = self_.value;
    rts.static_len = static_cast<std::uint32_t>(buffer.static_size());
    rts.dynamic_len = static_cast<std::uint32_t>(buffer.dynamic_size());
    rts.msg_id = id;
    submit_rts(rts, id, dst, tag, context, request);
    return request;
  }

  /// Queue a rendezvous RTS. If it can never reach the wire, the send
  /// record is retired and the failure surfaces on the request so wait()
  /// observes it instead of hanging.
  void submit_rts(const FrameHeader& rts, std::uint64_t id, ProcessID dst, int tag,
                  int context, const DevRequest& request) {
    auto frame = std::make_unique<SendFrame>();
    frame->hdr = rts;
    frame->on_error = [this, id, tag, context, request](const Error& e) {
      {
        std::lock_guard<std::mutex> lock(send_mu_);
        pending_sends_.erase(id);
        note_send_backlog_locked();
      }
      DevStatus status;
      status.source = self_;
      status.tag = tag;
      status.context = context;
      status.error = e.code() == ErrCode::Success ? ErrCode::ConnReset : e.code();
      request->complete(status);
    };
    Peer* peer = nullptr;
    try {
      peer = &peer_for(dst.value);
    } catch (const Error& e) {
      fail_frame(*frame, e);
      return;
    }
    submit_frame(*peer, std::move(frame));
  }

  /// Zero-copy rendezvous send: same RTS/RTR handshake as rndv_send, but the
  /// send record owns only the 8-byte section header and BORROWS the payload
  /// segments — the rendez-write-thread gathers them straight from user
  /// memory when the RTR arrives.
  DevRequest rndv_send_segments(std::span<const std::byte> header,
                                std::span<const SendSegment> segments, std::size_t payload,
                                ProcessID dst, int tag, int context) {
    counters_->add(prof::Ctr::RndvSends);
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Send, sink_,
                                                     nullptr, this);
    const std::uint64_t id = prof::alloc_corr_id(self_.value);
    request->set_corr(id);
    prof::record_flight(id, prof::FlightStage::SendPosted, dst.value, tag, context,
                        header.size() + payload);
    {
      SendRec rec;
      rec.request = request;
      rec.direct = true;
      std::memcpy(rec.sect_header.data(), header.data(),
                  std::min(header.size(), rec.sect_header.size()));
      rec.segments.assign(segments.begin(), segments.end());
      rec.payload_bytes = static_cast<std::uint32_t>(payload);
      rec.dst = dst;
      rec.tag = tag;
      rec.context = context;
      std::lock_guard<std::mutex> lock(send_mu_);
      pending_sends_.emplace(id, std::move(rec));
      note_send_backlog_locked();
    }
    FrameHeader rts;
    rts.type = FrameType::Rts;
    rts.context = tag_to_wire(context);
    rts.tag = tag_to_wire(tag);
    rts.src = self_.value;
    rts.static_len = static_cast<std::uint32_t>(header.size() + payload);
    rts.dynamic_len = 0;
    rts.msg_id = id;
    submit_rts(rts, id, dst, tag, context, request);
    return request;
  }

  /// Queue a rendezvous RTR (receiver side: "buffer posted, send the
  /// data"). A lost RTR unhooks the pending rendezvous and fails the
  /// receive — without that, the sender never transmits and the receiver's
  /// wait() hangs forever.
  void send_rtr(std::uint64_t to, int context, int tag, std::uint32_t static_len,
                std::uint32_t dynamic_len, std::uint64_t msg_id) {
    FrameHeader rtr;
    rtr.type = FrameType::Rtr;
    rtr.context = tag_to_wire(context);
    rtr.tag = tag_to_wire(tag);
    rtr.src = self_.value;
    rtr.static_len = static_len;
    rtr.dynamic_len = dynamic_len;
    rtr.msg_id = msg_id;
    auto frame = std::make_unique<SendFrame>();
    frame->hdr = rtr;
    frame->on_error = [this, to, msg_id](const Error& e) {
      DevRequest victim;
      {
        std::lock_guard<std::mutex> lock(recv_mu_);
        auto it = rndv_pending_.find(RndvKey{to, msg_id});
        if (it == rndv_pending_.end()) return;
        victim = std::move(it->second.request);
        rndv_pending_.erase(it);
        note_rndv_slots_locked();
      }
      if (!victim) return;
      DevStatus status;
      status.source = ProcessID{to};
      status.error = e.code() == ErrCode::Success ? ErrCode::ConnReset : e.code();
      victim->complete(status);
    };
    Peer* peer = nullptr;
    try {
      peer = &peer_for(to);
    } catch (const Error& e) {
      fail_frame(*frame, e);
      return;
    }
    submit_frame(*peer, std::move(frame));
  }

  static std::int32_t tag_to_wire(int value) { return static_cast<std::int32_t>(value); }

  // ---- input handler (Figs. 5 and 8) ---------------------------------------------

  void input_loop() {
    // Reliable mode polls on a shorter leash so standalone acks flush
    // promptly when traffic is one-directional (no frames to piggyback on).
    const int wait_ms = reliable_ ? 50 : 200;
    while (running_) {
      auto events = poller_.wait(wait_ms);
      if (!events.empty()) counters_->add(prof::Ctr::EpollWakeups);
      for (const net::PollEvent& event : events) {
        if (event.fd == acceptor_.fd()) {
          accept_channels();
          continue;
        }
        auto it = conns_by_fd_.find(event.fd);
        if (it == conns_by_fd_.end()) continue;
        try {
          pump(*it->second);
        } catch (const ConnClosed&) {
          // Orderly FIN: the peer's connection manager reaped an idle or
          // evicted channel. Retire the read side quietly — nothing failed
          // and nothing needs replay; the peer redials on its next send.
          poller_.remove(event.fd);
          conns_by_fd_.erase(it);
        } catch (const Error& e) {
          if (running_) log::debug("tcpdev input handler: ", e.what());
          if (e.code() == ErrCode::Checksum) {
            faults::counters().add(prof::Ctr::ChecksumFailures);
          }
          Conn& conn = *it->second;
          const std::uint64_t peer = conn.peer;
          poller_.remove(event.fd);
          if (reliable_) {
            // Recoverable: drop only the channel and let the peer's redial
            // + replay repair the stream; pending operations stay pending.
            Peer* peer_state = conn.peer_state;
            drop_conn_for_repair(conn);
            conns_by_fd_.erase(it);
            if (peer_state != nullptr) send_reset_notice(*peer_state);
          } else {
            DevRequest body_request = std::move(conn.body_request);
            conn.body_request = nullptr;
            conn.on_body_done = nullptr;
            // Fail-fast: drop the channel and error out every operation
            // pinned to that peer so waiters observe the failure instead of
            // hanging.
            conns_by_fd_.erase(it);
            fail_peer(peer, e.code(), std::move(body_request));
          }
        }
      }
      if (reliable_) {
        for (auto& [id, peer] : peers_) {
          flush_ack(*peer);
          nudge_stalled_retrans(*peer);
        }
      }
      close_idle_channels();
    }
  }

  /// Retransmit watchdog (input loop): unacked frames whose cumulative ack
  /// has not advanced for a few redial periods mean the data channel may
  /// have died AFTER our last write — tail loss no writer will ever notice.
  /// Redial and replay proactively; a healthy-but-slow channel tolerates
  /// this (duplicates are suppressed, the epoch bump supersedes the old
  /// socket).
  void nudge_stalled_retrans(Peer& peer) {
    // The floor must clear the peer's idle ack flush (one 50ms poll leash
    // plus scheduling): below that, a healthy-but-quiet stream draws
    // spurious redials every time an ack rides the flush instead of a
    // piggyback.
    const auto stall = std::chrono::milliseconds(std::max<std::uint64_t>(8 * reconnect_ms_, 150));
    const auto now = std::chrono::steady_clock::now();
    {
      std::lock_guard<std::mutex> rl(peer.rel_mu);
      if (peer.retrans.empty() || peer.failed) return;
      if (now - peer.last_ack_progress < stall) return;
      peer.last_ack_progress = now;  // rate-limit the nudges
    }
    std::unique_lock<std::mutex> wl(peer.write_mu, std::try_to_lock);
    if (!wl.owns_lock()) return;  // an active writer will notice the failure itself
    try {
      reconnect_replay(peer);
    } catch (const Error& e) {
      log::debug("tcpdev: retransmit watchdog redial to peer ", peer.id, " failed: ",
                 e.what());
    }
    unlock_and_drain(peer, wl, /*inline_ok=*/false);
  }

  /// Error out every pending operation pinned to a failed peer: posted
  /// receives with that concrete source (wildcards stay — another peer can
  /// still satisfy them), rendezvous receives awaiting its data, sends
  /// addressed to it, claimed-but-incomplete unexpected arrivals from it,
  /// and the in-flight body read, if any. Idempotent completion makes the
  /// sweep safe against races with normal completions.
  void fail_peer(std::uint64_t peer, ErrCode code, DevRequest body_request) {
    if (code == ErrCode::Success || code == ErrCode::Internal) code = ErrCode::ConnReset;
    std::vector<DevRequest> victims;
    if (body_request) victims.push_back(std::move(body_request));
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      dead_peers_.insert(peer);
      for (auto& rec : posted_.drain_if([&](const MatchKey& key, const RecvRec&) {
             return !key.src.is_any() && key.src.value == peer;
           })) {
        victims.push_back(std::move(rec.request));
      }
      for (auto it = rndv_pending_.begin(); it != rndv_pending_.end();) {
        if (it->first.src == peer) {
          victims.push_back(std::move(it->second.request));
          it = rndv_pending_.erase(it);
        } else {
          ++it;
        }
      }
      // Abandoned rendezvous keys from this peer can no longer see a late
      // data frame; drop them so the set stays bounded.
      for (auto it = abandoned_rndv_.begin(); it != abandoned_rndv_.end();) {
        it = it->src == peer ? abandoned_rndv_.erase(it) : std::next(it);
      }
      // Fully-arrived unexpected eager messages stay deliverable; anything
      // still awaiting bytes from the dead peer cannot complete.
      for (auto& msg : unexpected_.drain_if(
               [&](const MatchKey& key, const std::shared_ptr<UnexpMsg>& entry) {
                 return key.src.value == peer &&
                        !(entry->kind == FrameType::Eager && entry->data_complete);
               })) {
        if (msg->claimant) victims.push_back(std::move(msg->claimant));
        arriving_claims_.erase(msg.get());
        note_unexpected_locked(-unexp_payload_bytes(*msg));
      }
      note_posted_depth_locked();
      note_rndv_slots_locked();
      arrival_cv_.notify_all();  // wake probes so they see dead_peers_
    }
    {
      std::lock_guard<std::mutex> lock(send_mu_);
      for (auto it = pending_sends_.begin(); it != pending_sends_.end();) {
        if (it->second.dst.value == peer) {
          victims.push_back(std::move(it->second.request));
          it = pending_sends_.erase(it);
        } else {
          ++it;
        }
      }
      for (auto it = abandoned_sends_.begin(); it != abandoned_sends_.end();) {
        it = it->second == peer ? abandoned_sends_.erase(it) : std::next(it);
      }
      note_send_backlog_locked();
    }
    if (reliable_) {
      // Unacked frames can never be delivered now; their pinned zero-copy
      // sends fail with the peer, and parked capacity waiters wake to the
      // failed flag.
      auto pit = peers_.find(peer);
      if (pit != peers_.end()) {
        Peer& p = *pit->second;
        std::lock_guard<std::mutex> rl(p.rel_mu);
        p.failed = true;
        for (RetransEntry& entry : p.retrans) {
          if (entry.request) victims.push_back(std::move(entry.request));
        }
        if (p.retrans_bytes > 0) {
          pvars_->gauge_add(prof::Pv::RetransmitBufferBytes,
                            -static_cast<std::int64_t>(p.retrans_bytes));
        }
        p.retrans.clear();
        p.retrans_bytes = 0;
        p.rel_cv.notify_all();
      }
    }
    DevStatus status;
    status.source = ProcessID{peer};
    status.error = code;
    for (const DevRequest& request : victims) {
      if (request) request->complete(status);
    }
    if (!victims.empty()) {
      log::warn("tcpdev: peer ", peer, " failed (", err_code_name(code), "); errored ",
                victims.size(), " pending operation(s)");
    }
  }

  /// Drain as many frames as currently available on one connection.
  void pump(Conn& conn) {
    for (;;) {
      if (!conn.in_body) {
        std::size_t got = 0;
        const auto io = conn.sock.read_some(
            std::span<std::byte>(conn.hdr_bytes).subspan(conn.hdr_got), got);
        if (io == net::IoStatus::Eof) {
          // Frames are written whole under the sender's channel lock, so a
          // FIN landing exactly between frames is an orderly close (idle
          // reap or LRU eviction on the other side), not a failure.
          if (conn.hdr_got == 0) throw ConnClosed{};
          throw net::SocketError("peer closed mid-frame");
        }
        if (io == net::IoStatus::WouldBlock) return;
        conn.hdr_got += got;
        if (conn.hdr_got < kHeaderBytes) continue;
        conn.hdr_got = 0;
        const FrameHeader hdr = tcp::decode_header(conn.hdr_bytes);
        if (reliable_ && conn.peer_state != nullptr) {
          Peer& peer = *conn.peer_state;
          process_ack(peer, hdr.ack);
          if (hdr.type == FrameType::Ack) {  // header-only, never sequenced
            if (hdr.tag == kAckResetNotice) redial_for_notice(peer);
            continue;
          }
          if (hdr.seq != 0) {
            const std::uint64_t last = peer.last_seen.load(std::memory_order_relaxed);
            if (hdr.seq <= last) {
              // Replay overlap: suppress the duplicate, draining any body
              // so the stream stays framed.
              counters_->add(prof::Ctr::FramesDuplicateDropped);
              if (hdr.type == FrameType::Eager || hdr.type == FrameType::RndvData) {
                drain_discard(conn, hdr);
              }
              continue;
            }
            if (hdr.seq != last + 1) {
              // A frame went missing (injected Drop, partial replay): the
              // stream cannot be trusted past this point. Drop the channel;
              // the peer's redial + replay closes the gap.
              throw DeviceError("tcpdev: sequence gap from peer " +
                                    std::to_string(conn.peer) + " (expected " +
                                    std::to_string(last + 1) + ", got " +
                                    std::to_string(hdr.seq) + ")",
                                ErrCode::ConnReset);
            }
            conn.frame_seq = hdr.seq;
          }
        }
        handle_frame(conn, hdr);
        if (!conn.in_body) commit_frame_seq(conn);
        continue;
      }
      // Body: static bytes first, then dynamic, into the prepared spans.
      while (conn.body_got < conn.static_len + conn.dynamic_len) {
        std::span<std::byte> target;
        if (conn.body_got < conn.static_len) {
          target = {conn.static_dst + conn.body_got, conn.static_len - conn.body_got};
        } else {
          const std::size_t off = conn.body_got - conn.static_len;
          target = {conn.dynamic_dst + off, conn.dynamic_len - off};
        }
        std::size_t got = 0;
        const auto io = conn.sock.read_some(target, got);
        if (io == net::IoStatus::Eof) throw net::SocketError("peer closed mid-message");
        if (io == net::IoStatus::WouldBlock) return;  // continuation stays attached
        conn.body_got += got;
      }
      conn.in_body = false;
      auto done = std::move(conn.on_body_done);
      conn.on_body_done = nullptr;
      conn.body_request = nullptr;
      conn.on_body_abort = nullptr;
      // Commit BEFORE completing the receive: done() wakes the app thread,
      // whose very next send piggybacks last_seen as its ack — committing
      // after would let that ack miss this frame, leaving the peer's
      // deferred zero-copy send parked until the idle ack flush.
      commit_frame_seq(conn);
      if (done) done();
    }
  }

  void begin_body(Conn& conn, std::span<std::byte> static_dst, std::span<std::byte> dynamic_dst,
                  std::function<void()> on_done, DevRequest fail_request = nullptr,
                  std::function<void()> on_abort = nullptr) {
    conn.in_body = true;
    conn.static_dst = static_dst.data();
    conn.static_len = static_dst.size();
    conn.dynamic_dst = dynamic_dst.data();
    conn.dynamic_len = dynamic_dst.size();
    conn.body_got = 0;
    conn.on_body_done = std::move(on_done);
    conn.body_request = std::move(fail_request);
    conn.on_body_abort = std::move(on_abort);
  }

  void handle_frame(Conn& conn, const FrameHeader& hdr) {
    switch (hdr.type) {
      case FrameType::Eager:
        handle_eager(conn, hdr);
        return;
      case FrameType::Rts:
        handle_rts(hdr);
        return;
      case FrameType::Rtr:
        handle_rtr(hdr);
        return;
      case FrameType::RndvData:
        handle_rndv_data(conn, hdr);
        return;
      case FrameType::Ack:
        return;  // cumulative ack already processed in pump()
      case FrameType::Hello:
        throw DeviceError("tcpdev: unexpected hello after bootstrap");
    }
  }

  DevStatus status_from(const FrameHeader& hdr, bool truncated = false) const {
    DevStatus status;
    status.source = ProcessID{hdr.src};
    status.tag = hdr.tag;
    status.context = hdr.context;
    status.static_bytes = hdr.static_len;
    status.dynamic_bytes = hdr.dynamic_len;
    status.truncated = truncated;
    return status;
  }

  static DevStatus unexpected_status(const UnexpMsg& msg) {
    DevStatus status;
    status.source = msg.key.src;
    status.tag = msg.key.tag;
    status.context = msg.key.context;
    status.static_bytes = msg.static_len;
    status.dynamic_bytes = msg.dynamic_len;
    return status;
  }

  /// Abort hook for a body streaming into a matched posted receive: re-post
  /// the receive at the HEAD of the match queue (claim gate bypassed — it
  /// was already won) so the peer's replayed copy re-matches it first and
  /// redelivers from offset zero.
  std::function<void()> repost_recv_abort(const MatchKey& key, RecvRec rec) {
    rec.rearmed = true;
    return [this, key, rec = std::move(rec)] {
      std::lock_guard<std::mutex> lock(recv_mu_);
      posted_.restore(key, rec);
      note_posted_depth_locked();
    };
  }

  /// Abort hook for a still-arriving unexpected message: retract the
  /// partial entry (the replayed copy recreates it from scratch) and, if a
  /// receive claimed it mid-arrival, re-post that receive so the replay
  /// matches it directly instead of spawning a second unexpected entry.
  std::function<void()> retract_unexp_abort(std::shared_ptr<UnexpMsg> msg) {
    return [this, msg = std::move(msg)] {
      std::lock_guard<std::mutex> lock(recv_mu_);
      const bool queued =
          !unexpected_
               .drain_if([&](const MatchKey&, const std::shared_ptr<UnexpMsg>& entry) {
                 return entry.get() == msg.get();
               })
               .empty();
      if (queued) note_unexpected_locked(-unexp_payload_bytes(*msg));
      arriving_claims_.erase(msg.get());
      pool_.put(std::move(msg->temp));
      if (msg->claimant) {
        RecvRec rec;
        rec.request = std::move(msg->claimant);
        rec.buffer = msg->claim_buffer;
        rec.direct = msg->claim_direct;
        rec.span = msg->claim_span;
        rec.rearmed = true;
        posted_.restore(msg->key, std::move(rec));
        note_posted_depth_locked();
      }
    };
  }

  /// Fig. 5: eager data frame.
  void handle_eager(Conn& conn, const FrameHeader& hdr) {
    const MatchKey key{hdr.context, hdr.tag, ProcessID{hdr.src}};
    std::optional<RecvRec> rec;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      rec = posted_.match_where(key, claim_recv);
      if (!rec) {
        // No receive posted yet: buffer into a pool buffer and publish the
        // (still-arriving) message so probes and late receives can see it.
        auto msg = std::make_shared<UnexpMsg>();
        msg->key = key;
        msg->kind = FrameType::Eager;
        msg->static_len = hdr.static_len;
        msg->dynamic_len = hdr.dynamic_len;
        msg->msg_id = hdr.msg_id;  // correlation id for the eventual matcher
        msg->temp = pool_.get(hdr.static_len);
        auto static_dst = msg->temp->prepare_static(hdr.static_len);
        auto dynamic_dst = msg->temp->prepare_dynamic(hdr.dynamic_len);
        unexpected_.add(key, msg);
        counters_->record_max(prof::Ctr::UnexpectedDepthHwm, unexpected_.size());
        note_unexpected_locked(unexp_payload_bytes(*msg));
        arrival_cv_.notify_all();
        begin_body(conn, static_dst, dynamic_dst, [this, msg] { finish_unexpected(msg); },
                   nullptr, retract_unexp_abort(msg));
        return;
      }
      note_match(key, hdr.static_len + hdr.dynamic_len, /*was_posted=*/true);
      note_posted_depth_locked();
      rec->request->mark_matched(hdr.msg_id, hdr.src, hdr.tag, hdr.context,
                                 hdr.static_len + hdr.dynamic_len);
    }
    auto abort = repost_recv_abort(key, *rec);
    // Posted receive found: stream straight into the user's buffer (or, for
    // a direct receive, the user's span).
    if (rec->direct) {
      if (hdr.static_len > buf::Buffer::kSectionHeaderBytes + rec->span.payload_capacity) {
        drain_truncated(conn, hdr, rec->request, std::move(abort));
      } else if (direct_eligible(hdr.static_len, hdr.dynamic_len, rec->span)) {
        begin_body_direct(conn, hdr, rec->span, rec->request, std::move(abort));
      } else {
        begin_body_staged(conn, hdr, rec->span, rec->request, std::move(abort));
      }
      return;
    }
    if (hdr.static_len > rec->buffer->capacity()) {
      drain_truncated(conn, hdr, rec->request, std::move(abort));
      return;
    }
    auto static_dst = rec->buffer->prepare_static(hdr.static_len);
    auto dynamic_dst = rec->buffer->prepare_dynamic(hdr.dynamic_len);
    buf::Buffer* buffer = rec->buffer;
    DevRequest request = rec->request;
    const DevStatus status = status_from(hdr);
    begin_body(
        conn, static_dst, dynamic_dst,
        [buffer, request, status] {
          buffer->seal_received();
          request->complete(status);
        },
        request, std::move(abort));
  }

  /// The eager payload of an unexpected message finished arriving.
  void finish_unexpected(const std::shared_ptr<UnexpMsg>& msg) {
    msg->temp->seal_received();
    DevRequest claimant;
    buf::Buffer* claim_buffer = nullptr;
    bool claim_direct = false;
    RecvSpan claim_span{};
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      msg->data_complete = true;
      claimant = std::move(msg->claimant);
      claim_buffer = msg->claim_buffer;
      claim_direct = msg->claim_direct;
      claim_span = msg->claim_span;
      arriving_claims_.erase(msg.get());
    }
    if (!claimant) return;
    if (claim_direct) {
      deliver_buffered_direct(*msg, claim_span, claimant);
    } else {
      deliver_buffered(*msg, *claim_buffer, claimant);
    }
  }

  /// Copy a fully buffered unexpected message into the user's buffer and
  /// complete the receive. Consuming the entry also releases a staged
  /// synchronous self-send, if one is parked on it.
  void deliver_buffered(UnexpMsg& msg, buf::Buffer& buffer, const DevRequest& request) {
    complete_self_sync(msg);
    DevStatus status = unexpected_status(msg);
    if (msg.static_len > buffer.capacity()) {
      status.truncated = true;
      request->complete(status);
      pool_.put(std::move(msg.temp));
      return;
    }
    auto static_dst = buffer.prepare_static(msg.static_len);
    std::memcpy(static_dst.data(), msg.temp->static_payload().data(), msg.static_len);
    auto dynamic_dst = buffer.prepare_dynamic(msg.dynamic_len);
    if (msg.dynamic_len > 0) {
      std::memcpy(dynamic_dst.data(), msg.temp->dynamic_payload().data(), msg.dynamic_len);
    }
    buffer.seal_received();
    pool_.put(std::move(msg.temp));
    request->complete(status);
  }

  /// Can an incoming message with these wire lengths land straight in `span`?
  /// Byte-shape test only: one static region of [8-byte section header |
  /// payload] that fits, and no dynamic section. The core layer validates
  /// the section header semantically after completion.
  static bool direct_eligible(std::uint32_t static_len, std::uint32_t dynamic_len,
                              const RecvSpan& span) {
    constexpr std::size_t sect = buf::Buffer::kSectionHeaderBytes;
    return dynamic_len == 0 && static_len >= sect &&
           static_len - sect <= span.payload_capacity;
  }

  /// Copy a fully buffered unexpected message out to a direct receive: the
  /// span when the shape allows, otherwise hand the staged pool buffer to the
  /// request itself (direct stays false and the core unpacks it).
  void deliver_buffered_direct(UnexpMsg& msg, const RecvSpan& span, const DevRequest& request) {
    complete_self_sync(msg);
    constexpr std::size_t sect = buf::Buffer::kSectionHeaderBytes;
    DevStatus status = unexpected_status(msg);
    if (msg.static_len > sect + span.payload_capacity) {
      status.truncated = true;
      request->complete(status);
      pool_.put(std::move(msg.temp));
      return;
    }
    if (direct_eligible(msg.static_len, msg.dynamic_len, span)) {
      auto src = msg.temp->static_payload();
      std::memcpy(span.header, src.data(), sect);
      if (msg.static_len > sect) {
        std::memcpy(span.payload, src.data() + sect, msg.static_len - sect);
      }
      status.direct = true;
      pool_.put(std::move(msg.temp));
      request->complete(status);
      return;
    }
    request->attach_buffer(std::move(msg.temp));
    request->complete(status);
  }

  /// Stream an eligible frame body straight into a direct receive's span.
  /// If the waiter claimed the request (timed out) while the body was in
  /// flight, the landed bytes are preserved as a staged unexpected message
  /// BEFORE the final claim-losing complete() releases the waiter's latch —
  /// after which the borrowed span belongs to the user again.
  void begin_body_direct(Conn& conn, const FrameHeader& hdr, const RecvSpan& span,
                         const DevRequest& request, std::function<void()> on_abort = nullptr) {
    constexpr std::size_t sect = buf::Buffer::kSectionHeaderBytes;
    DevStatus status = status_from(hdr);
    status.direct = true;
    DevRequest req = request;
    begin_body(
        conn, std::span<std::byte>(span.header, sect),
        std::span<std::byte>(span.payload, hdr.static_len - sect),
        [this, req, status, span] {
          if (req->claimed()) preserve_abandoned_direct(status, span, req->corr());
          req->complete(status);
        },
        request, std::move(on_abort));
  }

  /// A direct receive was abandoned mid-body and the payload has now fully
  /// landed in the (still device-owned) span: requeue it as an ordinary
  /// staged unexpected message so a later receive can match it.
  void preserve_abandoned_direct(const DevStatus& status, const RecvSpan& span,
                                 std::uint64_t corr) {
    constexpr std::size_t sect = buf::Buffer::kSectionHeaderBytes;
    auto msg = std::make_shared<UnexpMsg>();
    msg->key = MatchKey{status.context, status.tag, status.source};
    msg->msg_id = corr;
    msg->kind = FrameType::Eager;
    msg->static_len = static_cast<std::uint32_t>(status.static_bytes);
    msg->dynamic_len = 0;
    msg->temp = pool_.get(msg->static_len);
    auto dst = msg->temp->prepare_static(msg->static_len);
    std::memcpy(dst.data(), span.header, sect);
    if (msg->static_len > sect) {
      std::memcpy(dst.data() + sect, span.payload, msg->static_len - sect);
    }
    msg->temp->prepare_dynamic(0);
    msg->temp->seal_received();
    msg->data_complete = true;
    std::lock_guard<std::mutex> lock(recv_mu_);
    unexpected_.add(msg->key, msg);
    counters_->record_max(prof::Ctr::UnexpectedDepthHwm, unexpected_.size());
    note_unexpected_locked(unexp_payload_bytes(*msg));
    arrival_cv_.notify_all();
  }

  /// Ineligible frame for a direct receive that still fits: stream it into a
  /// staging buffer attached to the request (direct stays false).
  void begin_body_staged(Conn& conn, const FrameHeader& hdr, const RecvSpan& span,
                         const DevRequest& request, std::function<void()> on_abort = nullptr) {
    auto staging = std::make_unique<buf::Buffer>(buf::Buffer::kSectionHeaderBytes +
                                                 span.payload_capacity);
    auto static_dst = staging->prepare_static(hdr.static_len);
    auto dynamic_dst = staging->prepare_dynamic(hdr.dynamic_len);
    buf::Buffer* raw = staging.get();
    request->attach_buffer(std::move(staging));
    DevRequest req = request;
    const DevStatus status = status_from(hdr);
    begin_body(
        conn, static_dst, dynamic_dst,
        [raw, req, status] {
          raw->seal_received();
          req->complete(status);
        },
        request, std::move(on_abort));
  }

  /// Incoming message too large for the posted buffer: drain and discard.
  void drain_truncated(Conn& conn, const FrameHeader& hdr, const DevRequest& request,
                       std::function<void()> on_abort = nullptr) {
    auto scratch = pool_.get(hdr.static_len);
    auto static_dst = scratch->prepare_static(hdr.static_len);
    auto dynamic_dst = scratch->prepare_dynamic(hdr.dynamic_len);
    auto* pool = &pool_;
    auto holder = std::make_shared<std::unique_ptr<buf::Buffer>>(std::move(scratch));
    const DevStatus status = status_from(hdr, /*truncated=*/true);
    begin_body(
        conn, static_dst, dynamic_dst,
        [holder, pool, request, status] {
          pool->put(std::move(*holder));
          request->complete(status);
        },
        request, std::move(on_abort));
  }

  /// A data frame whose receiver gave up (timed-out, abandoned receive):
  /// drain the payload into pool scratch and complete nothing — the stream
  /// stays framed and the peer stays alive.
  void drain_discard(Conn& conn, const FrameHeader& hdr) {
    auto scratch = pool_.get(hdr.static_len);
    auto static_dst = scratch->prepare_static(hdr.static_len);
    auto dynamic_dst = scratch->prepare_dynamic(hdr.dynamic_len);
    auto* pool = &pool_;
    auto holder = std::make_shared<std::unique_ptr<buf::Buffer>>(std::move(scratch));
    begin_body(conn, static_dst, dynamic_dst,
               [holder, pool] { pool->put(std::move(*holder)); });
  }

  /// Fig. 8: ready-to-send control frame.
  void handle_rts(const FrameHeader& hdr) {
    const MatchKey key{hdr.context, hdr.tag, ProcessID{hdr.src}};
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      auto rec = posted_.match_where(key, claim_recv);
      if (!rec) {
        auto msg = std::make_shared<UnexpMsg>();
        msg->key = key;
        msg->kind = FrameType::Rts;
        msg->static_len = hdr.static_len;
        msg->dynamic_len = hdr.dynamic_len;
        msg->msg_id = hdr.msg_id;
        unexpected_.add(key, msg);
        counters_->record_max(prof::Ctr::UnexpectedDepthHwm, unexpected_.size());
        note_unexpected_locked(0);
        arrival_cv_.notify_all();
        return;
      }
      note_match(key, hdr.static_len + hdr.dynamic_len, /*was_posted=*/true);
      note_posted_depth_locked();
      rec->request->mark_matched(hdr.msg_id, hdr.src, hdr.tag, hdr.context,
                                 hdr.static_len + hdr.dynamic_len);
      RndvPending pending;
      pending.request = rec->request;
      if (!rec->direct) {
        pending.buffer = rec->buffer;
      } else if (direct_eligible(hdr.static_len, hdr.dynamic_len, rec->span)) {
        pending.direct = true;
        pending.span = rec->span;
      } else {
        // Direct receive, ineligible shape: rendezvous into a staging buffer
        // parked on the request (oversize data still truncates there).
        auto staging = std::make_unique<buf::Buffer>(buf::Buffer::kSectionHeaderBytes +
                                                     rec->span.payload_capacity);
        pending.buffer = staging.get();
        rec->request->attach_buffer(std::move(staging));
      }
      rndv_pending_.emplace(RndvKey{hdr.src, hdr.msg_id}, std::move(pending));
      note_rndv_slots_locked();
    }
    // recv sets unlocked before taking the channel lock, as in Fig. 8.
    send_rtr(hdr.src, hdr.context, hdr.tag, hdr.static_len, hdr.dynamic_len, hdr.msg_id);
  }

  /// Fig. 8: ready-to-recv — fork a rendez-write-thread so the input
  /// handler never blocks on a large data write (the paper's deadlock
  /// avoidance for simultaneous large sends).
  void handle_rtr(const FrameHeader& hdr) {
    SendRec rec;
    {
      std::lock_guard<std::mutex> lock(send_mu_);
      auto it = pending_sends_.find(hdr.msg_id);
      if (it == pending_sends_.end()) {
        if (abandoned_sends_.erase(hdr.msg_id) > 0) {
          // The send's wait() timed out and reclaimed the buffer; there is
          // nothing left to write, so the receiver's RTR is ignored (its
          // own receive will time out in turn).
          log::debug("tcpdev: ignoring RTR for timed-out send ", hdr.msg_id);
          return;
        }
        throw DeviceError("tcpdev: RTR for unknown send " + std::to_string(hdr.msg_id));
      }
      rec = std::move(it->second);
      pending_sends_.erase(it);
      note_send_backlog_locked();
    }
    {
      std::lock_guard<std::mutex> lock(writer_mu_);
      ++active_writers_;
    }
    std::thread([this, rec = std::move(rec), msg_id = hdr.msg_id] {
      try {
        auto frame = std::make_unique<SendFrame>();
        frame->hdr.type = FrameType::RndvData;
        frame->hdr.context = tag_to_wire(rec.context);
        frame->hdr.tag = tag_to_wire(rec.tag);
        frame->hdr.src = self_.value;
        if (rec.direct) {
          frame->hdr.static_len =
              static_cast<std::uint32_t>(rec.sect_header.size()) + rec.payload_bytes;
          frame->hdr.dynamic_len = 0;
          frame->sect_header = rec.sect_header;
          frame->sect_len = rec.sect_header.size();
          frame->segments = rec.segments;
        } else {
          frame->hdr.static_len = static_cast<std::uint32_t>(rec.buffer->static_size());
          frame->hdr.dynamic_len = static_cast<std::uint32_t>(rec.buffer->dynamic_size());
          frame->borrow_buffer = rec.buffer;
        }
        frame->hdr.msg_id = msg_id;
        frame->request = rec.request;
        frame->ok_status.source = self_;
        frame->ok_status.tag = rec.tag;
        frame->ok_status.context = rec.context;
        frame->ok_status.static_bytes = frame->hdr.static_len;
        frame->ok_status.dynamic_bytes = frame->hdr.dynamic_len;
        frame->record_wire = true;
        // In reliable mode the body stays pinned (borrowed by the
        // retransmit buffer) and the request completes on the cumulative
        // ack rather than at write time.
        frame->pin_body = reliable_;
        Peer& peer = peer_for(rec.dst.value);
        submit_frame(peer, std::move(frame));
        // This thread is the preferred drainer for its own (large) frame: a
        // blocking lock is fine here, and it keeps bulk rendezvous writes
        // off the app threads that merely lost the submit race.
        std::unique_lock<std::mutex> wl(peer.write_mu);
        drain_sends_locked(peer);
        unlock_and_drain(peer, wl);
      } catch (const Error& e) {
        // Route the failure into the owning send request — a swallowed log
        // line here used to leave the sender's wait() hanging forever.
        log::error("tcpdev rendez-write-thread: ", e.what());
        DevStatus status;
        status.source = self_;
        status.tag = rec.tag;
        status.context = rec.context;
        status.error = e.code() == ErrCode::Success ? ErrCode::ConnReset : e.code();
        rec.request->complete(status);
      }
      std::lock_guard<std::mutex> lock(writer_mu_);
      if (--active_writers_ == 0) writer_cv_.notify_all();
    }).detach();
  }

  /// Fig. 8: rendezvous data frame.
  void handle_rndv_data(Conn& conn, const FrameHeader& hdr) {
    RndvPending pending;
    {
      std::lock_guard<std::mutex> lock(recv_mu_);
      auto it = rndv_pending_.find(RndvKey{hdr.src, hdr.msg_id});
      if (it == rndv_pending_.end()) {
        if (abandoned_rndv_.erase(RndvKey{hdr.src, hdr.msg_id}) == 0) {
          throw DeviceError("tcpdev: rendezvous data with no pending receive");
        }
        pending.request = nullptr;  // abandoned: drained below, nothing completed
      } else {
        pending = std::move(it->second);
        rndv_pending_.erase(it);
        note_rndv_slots_locked();
      }
    }
    if (!pending.request) {
      drain_discard(conn, hdr);
      return;
    }
    // Abort hook: re-park the pending entry under its key so the replayed
    // data frame (the RTR is never resent) finds its receive again.
    auto abort = [this, rkey = RndvKey{hdr.src, hdr.msg_id}, saved = pending] {
      std::lock_guard<std::mutex> lock(recv_mu_);
      rndv_pending_.emplace(rkey, saved);
      note_rndv_slots_locked();
    };
    if (pending.direct) {
      if (hdr.static_len > buf::Buffer::kSectionHeaderBytes + pending.span.payload_capacity) {
        drain_truncated(conn, hdr, pending.request, std::move(abort));
      } else if (direct_eligible(hdr.static_len, hdr.dynamic_len, pending.span)) {
        begin_body_direct(conn, hdr, pending.span, pending.request, std::move(abort));
      } else {
        // The data frame's shape disagrees with the RTS it followed; land it
        // in a staging buffer rather than trusting the span mapping.
        begin_body_staged(conn, hdr, pending.span, pending.request, std::move(abort));
      }
      return;
    }
    if (hdr.static_len > pending.buffer->capacity()) {
      drain_truncated(conn, hdr, pending.request, std::move(abort));
      return;
    }
    auto static_dst = pending.buffer->prepare_static(hdr.static_len);
    auto dynamic_dst = pending.buffer->prepare_dynamic(hdr.dynamic_len);
    buf::Buffer* buffer = pending.buffer;
    DevRequest request = pending.request;
    const DevStatus status = status_from(hdr);
    begin_body(
        conn, static_dst, dynamic_dst,
        [buffer, request, status] {
          buffer->seal_received();
          request->complete(status);
        },
        request, std::move(abort));
  }

  // ---- members -----------------------------------------------------------------

  DeviceConfig config_;
  ProcessID self_{};
  net::Acceptor acceptor_;

  // Reliability session layer knobs (fixed at init from the environment).
  bool reliable_ = false;
  std::uint64_t reconnect_ms_ = 50;
  std::uint64_t reconnect_max_ = 10;
  std::uint64_t retrans_max_bytes_ = std::uint64_t{4} << 20;

  // Connection manager knobs (see init()).
  bool lazy_connect_ = true;          ///< MPCX_LAZY_CONNECT: dial on first send
  std::uint64_t max_conns_ = 0;       ///< MPCX_MAX_CONNS soft cap (0 = unlimited)
  std::uint64_t idle_close_ms_ = 0;   ///< MPCX_IDLE_CLOSE_MS reap threshold (0 = off)
  std::atomic<std::uint64_t> open_conns_{0};  ///< open write channels (gauge mirror)

  std::unordered_map<std::uint64_t, std::unique_ptr<Peer>> peers_;  // by ProcessID value
  std::unordered_map<int, std::unique_ptr<Conn>> conns_by_fd_;
  net::Poller poller_;
  std::thread input_thread_;
  std::atomic<bool> running_{false};

  // "receive-communication-sets" (Figs. 4/5/7/8).
  std::mutex recv_mu_;
  std::condition_variable arrival_cv_;
  PostedRecvSet<RecvRec> posted_;
  UnexpectedSet<std::shared_ptr<UnexpMsg>> unexpected_;
  std::unordered_map<RndvKey, RndvPending, RndvKeyHash> rndv_pending_;
  // Rendezvous receives whose wait() timed out after the RTR went out; the
  // late data frame keyed here is drained and discarded instead of tearing
  // the connection down. Entries die with the frame or with the peer.
  std::unordered_set<RndvKey, RndvKeyHash> abandoned_rndv_;
  // Keeps still-arriving claimed messages alive until their payload lands.
  std::unordered_map<const UnexpMsg*, std::shared_ptr<UnexpMsg>> arriving_claims_;
  // Peers whose channels have failed; probes against them error immediately.
  std::unordered_set<std::uint64_t> dead_peers_;

  // "send-communication-sets" (Fig. 6).
  std::mutex send_mu_;
  std::unordered_map<std::uint64_t, SendRec> pending_sends_;
  // msg_id -> destination for rendezvous sends whose wait() timed out
  // before the RTR arrived; the late RTR keyed here is ignored.
  std::unordered_map<std::uint64_t, std::uint64_t> abandoned_sends_;

  std::mutex writer_mu_;
  std::condition_variable writer_cv_;
  int active_writers_ = 0;

  std::shared_ptr<prof::Counters> counters_ = prof::Registry::global().create("tcpdev");
  std::shared_ptr<prof::PvarSet> pvars_ = prof::PvarRegistry::global().create("tcpdev");
  buf::BufferPool pool_{0, counters_.get()};
  CompletionQueue completions_;
  /// Where hooked completions publish: our own queue, unless a composite
  /// parent (hybdev) redirected us into its merged queue.
  CompletionSink* sink_ = &completions_;
};

}  // namespace

std::unique_ptr<Device> make_tcpdev() { return std::make_unique<TcpDevice>(); }

}  // namespace mpcx::xdev
