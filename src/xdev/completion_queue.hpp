// Completion queue backing xdev's peek().
//
// Devices publish hooked completed requests here; peek() blocks popping the
// next one — "the most recently completed Request object" in the paper's
// wording. Only requests carrying a live CompletionHook are ever published
// (see DevRequestState::complete), so the queue stays bounded by the number
// of outstanding Waitany calls rather than by total traffic.
#pragma once

#include "support/blocking_queue.hpp"
#include "support/error.hpp"
#include "xdev/request.hpp"

namespace mpcx::xdev {

class CompletionQueue final : public CompletionSink {
 public:
  void publish(DevRequest completed) override { queue_.push(std::move(completed)); }

  /// Block for the next hooked completion. Throws DeviceError if the device
  /// shut down while waiting.
  DevRequest pop() {
    auto req = queue_.pop();
    if (!req) throw DeviceError("peek: device finished");
    return std::move(*req);
  }

  void shutdown() { queue_.close(); }

  std::size_t size() const { return queue_.size(); }

 private:
  BlockingQueue<DevRequest> queue_;
};

}  // namespace mpcx::xdev
