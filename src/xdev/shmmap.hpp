// mpcx::xdev::shmmap — shared POSIX shm_open/mmap plumbing.
//
// Two components ride the same mapping machinery: shmdev's per-process
// message rings and the collective single-copy buffers (collbuf). Both
// follow the same life cycle — the owner unlinks any stale name from a
// crashed run, creates the object exclusively, sizes it, and maps it;
// peers poll for the name to appear and reach full size before mapping —
// so the cycle lives here once. Readiness of the *contents* (a magic word
// published behind a release fence) stays with the callers, whose layouts
// differ.
#pragma once

#include <cstddef>
#include <string>

namespace mpcx::xdev::shmmap {

/// One RAII mapping. Move-only; unmaps on destruction and unlinks the name
/// when this mapping created it (peers leave the name to the owner).
class Mapping {
 public:
  Mapping() = default;
  Mapping(Mapping&& other) noexcept { *this = std::move(other); }
  Mapping& operator=(Mapping&& other) noexcept;
  Mapping(const Mapping&) = delete;
  Mapping& operator=(const Mapping&) = delete;
  ~Mapping() { reset(); }

  void* base() const { return base_; }
  std::size_t bytes() const { return bytes_; }
  bool valid() const { return base_ != nullptr; }
  const std::string& name() const { return name_; }

  /// Unmap (and unlink when owner) now instead of at destruction.
  void reset();

 private:
  friend Mapping create(const std::string&, std::size_t, const char*);
  friend Mapping open_peer(const std::string&, std::size_t, int, const char*);

  void* base_ = nullptr;
  std::size_t bytes_ = 0;
  std::string name_;
  bool owner_ = false;
};

/// Create the segment we own: unlink any stale name, shm_open it
/// exclusively, size it to `bytes`, and map it. The caller initializes the
/// contents and publishes readiness itself. `who` prefixes error messages.
Mapping create(const std::string& name, std::size_t bytes, const char* who);

/// Map a peer's segment of exactly `bytes`, polling until the owner has
/// created and sized it. `timeout_ms` < 0 uses faults::connect_timeout_ms()
/// (MPCX_CONNECT_TIMEOUT_MS). Callers must still wait for the owner's ready
/// magic after mapping — the mapping being sized does not mean the control
/// block is initialized.
Mapping open_peer(const std::string& name, std::size_t bytes, int timeout_ms,
                  const char* who);

}  // namespace mpcx::xdev::shmmap
