// Wire frame format for tcpdev (the niodev analog).
//
// Every unit on a tcpdev channel starts with a fixed 60-byte header. Eager
// and rendezvous-data frames are followed by the static payload and then the
// dynamic payload; control frames (hello / ready-to-send / ready-to-recv /
// ack) are header-only.
//
// The header fits inside the buffer's device reserve (send_overhead() == 60)
// so an eager send is a single contiguous write of [header | static] plus
// one write for the dynamic section — the paper's reason for exposing
// getSendOverhead() through the xdev API.
//
// Reliability (format v2): every frame additionally carries a per-peer
// session {epoch, seq} pair and a cumulative piggybacked ack. seq numbers
// frames in wire order per sender->receiver direction (0 = unsequenced:
// hello/ack control frames and non-reliable mode); ack acknowledges every
// seq <= ack seen from the destination, releasing the sender's retransmit
// buffer; epoch counts the write channel's incarnations so a stale redial
// can never be mistaken for a fresh one. Hello doubles as the reconnect
// handshake: its epoch announces the connector's new incarnation and its
// ack field carries last_seq_seen.
//
// Integrity: bytes 1-2 carry the magic "MX", byte 3 the format version, and
// the last 4 bytes a CRC32C over bytes [0, 56). A header that fails any of
// these checks throws DeviceError(ErrCode::Checksum); the receiving device
// treats that as a channel failure (the stream offset can no longer be
// trusted) — in reliable mode the channel is dropped and repaired by
// redial + replay, otherwise that peer's requests error out.
#pragma once

#include <array>
#include <cstdint>
#include <span>

#include "support/crc32c.hpp"
#include "support/endian.hpp"
#include "support/error.hpp"

namespace mpcx::xdev::tcp {

inline constexpr std::uint8_t kMagic0 = 'M';
inline constexpr std::uint8_t kMagic1 = 'X';
inline constexpr std::uint8_t kFrameVersion = 2;

enum class FrameType : std::uint8_t {
  Hello = 1,     ///< connection setup + reconnect handshake ({epoch, last_seq_seen})
  Eager = 2,     ///< eager protocol: header + full payload (Fig. 3)
  Rts = 3,       ///< rendezvous ready-to-send (Fig. 6)
  Rtr = 4,       ///< rendezvous ready-to-recv (Figs. 7/8)
  RndvData = 5,  ///< rendezvous payload (Fig. 8, rendez-write-thread)
  Ack = 6,       ///< standalone cumulative ack (reliable mode; header-only)
};

struct FrameHeader {
  FrameType type = FrameType::Hello;
  std::int32_t context = 0;
  std::int32_t tag = 0;
  std::uint64_t src = 0;       ///< sender's ProcessID value
  std::uint32_t static_len = 0;
  std::uint32_t dynamic_len = 0;
  /// Flight-recorder correlation id (prof::alloc_corr_id): keys RTS/RTR/
  /// data frames of one rendezvous AND binds sender/receiver lifecycle
  /// events in traces. 0 on eager frames when tracing is off.
  std::uint64_t msg_id = 0;
  /// Per-direction frame sequence number (reliable mode; 0 = unsequenced).
  std::uint64_t seq = 0;
  /// Cumulative piggybacked ack: every seq <= ack from the destination has
  /// been received. On Hello it carries last_seq_seen for the handshake.
  std::uint64_t ack = 0;
  /// Write-channel incarnation (bumped per successful redial; 0 = none).
  std::uint32_t epoch = 0;
};

inline constexpr std::size_t kHeaderBytes = 60;

inline void encode_header(std::span<std::byte> out, const FrameHeader& hdr) {
  if (out.size() < kHeaderBytes) throw DeviceError("tcpdev: header span too small");
  out[0] = static_cast<std::byte>(hdr.type);
  out[1] = std::byte{kMagic0};
  out[2] = std::byte{kMagic1};
  out[3] = std::byte{kFrameVersion};
  store_wire<std::int32_t>(out.data() + 4, hdr.context);
  store_wire<std::int32_t>(out.data() + 8, hdr.tag);
  store_wire<std::uint64_t>(out.data() + 12, hdr.src);
  store_wire<std::uint32_t>(out.data() + 20, hdr.static_len);
  store_wire<std::uint32_t>(out.data() + 24, hdr.dynamic_len);
  store_wire<std::uint64_t>(out.data() + 28, hdr.msg_id);
  store_wire<std::uint64_t>(out.data() + 36, hdr.seq);
  store_wire<std::uint64_t>(out.data() + 44, hdr.ack);
  store_wire<std::uint32_t>(out.data() + 52, hdr.epoch);
  store_wire<std::uint32_t>(out.data() + 56, crc32c(out.first(56)));
}

inline FrameHeader decode_header(std::span<const std::byte> in) {
  if (in.size() < kHeaderBytes) throw DeviceError("tcpdev: truncated header");
  if (in[1] != std::byte{kMagic0} || in[2] != std::byte{kMagic1}) {
    throw DeviceError("tcpdev: bad frame magic (stream desynchronized or corrupt)",
                      ErrCode::Checksum);
  }
  if (in[3] != std::byte{kFrameVersion}) {
    throw DeviceError("tcpdev: unsupported frame version " +
                          std::to_string(static_cast<unsigned>(in[3])),
                      ErrCode::Checksum);
  }
  const std::uint32_t wire_crc = load_wire<std::uint32_t>(in.data() + 56);
  if (wire_crc != crc32c(in.first(56))) {
    throw DeviceError("tcpdev: frame header failed CRC32C check", ErrCode::Checksum);
  }
  FrameHeader hdr;
  const auto raw = static_cast<std::uint8_t>(in[0]);
  if (raw < 1 || raw > 6) {
    throw DeviceError("tcpdev: corrupt frame type " + std::to_string(raw),
                      ErrCode::Checksum);
  }
  hdr.type = static_cast<FrameType>(raw);
  hdr.context = load_wire<std::int32_t>(in.data() + 4);
  hdr.tag = load_wire<std::int32_t>(in.data() + 8);
  hdr.src = load_wire<std::uint64_t>(in.data() + 12);
  hdr.static_len = load_wire<std::uint32_t>(in.data() + 20);
  hdr.dynamic_len = load_wire<std::uint32_t>(in.data() + 24);
  hdr.msg_id = load_wire<std::uint64_t>(in.data() + 28);
  hdr.seq = load_wire<std::uint64_t>(in.data() + 36);
  hdr.ack = load_wire<std::uint64_t>(in.data() + 44);
  hdr.epoch = load_wire<std::uint32_t>(in.data() + 52);
  return hdr;
}

}  // namespace mpcx::xdev::tcp
