#include "xdev/collbuf.hpp"

#include <chrono>
#include <cstring>
#include <thread>

#include "prof/counters.hpp"
#include "support/error.hpp"
#include "support/faults.hpp"

namespace mpcx::xdev::collbuf {
namespace {

constexpr std::uint32_t kMagicReady = 0x4D434C42;  // "MCLB"
constexpr std::size_t kAlign = 64;

constexpr std::size_t align_up(std::size_t v) { return (v + kAlign - 1) & ~(kAlign - 1); }

/// Control block at offset 0. pub counters get a cache line each (they are
/// the hot handoff flags); the ack matrix follows unpadded.
struct Header {
  std::uint32_t magic;
  std::uint32_t members;
};

constexpr std::size_t pub_offset() { return kAlign; }
std::size_t ack_offset(int members) {
  return pub_offset() + static_cast<std::size_t>(members) * kAlign;
}
std::size_t data_offset(int members) {
  return align_up(ack_offset(members) +
                  static_cast<std::size_t>(members) * members * sizeof(std::uint64_t));
}

static_assert(std::atomic<std::uint64_t>::is_always_lock_free,
              "collbuf flags must be lock-free to work across processes");
static_assert(sizeof(std::atomic<std::uint64_t>) == sizeof(std::uint64_t));

}  // namespace

std::size_t segment_bytes(int member_count) {
  return data_offset(member_count) + static_cast<std::size_t>(member_count) *
                                         kSlotChunks * kChunkBytes;
}

Group::Group(const std::string& name, int my_index, int member_count, bool creator)
    : my_(my_index), members_(member_count), mirror_(member_count, 0) {
  if (member_count < 2 || member_count > kMaxMembers) {
    throw DeviceError("collbuf: group size " + std::to_string(member_count) +
                      " outside [2, " + std::to_string(kMaxMembers) + "]");
  }
  const std::size_t total = segment_bytes(member_count);
  if (creator) {
    mapping_ = shmmap::create(name, total, "collbuf");
    // A fresh segment is zero-filled by ftruncate, so every pub/ack counter
    // already reads version 0; only the header needs stores.
    auto* header = static_cast<Header*>(mapping_.base());
    header->members = static_cast<std::uint32_t>(member_count);
    std::atomic_thread_fence(std::memory_order_release);
    header->magic = kMagicReady;
  } else {
    mapping_ = shmmap::open_peer(name, total, -1, "collbuf");
    const auto* header = static_cast<const Header*>(mapping_.base());
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::milliseconds(faults::connect_timeout_ms());
    while (header->magic != kMagicReady) {
      if (std::chrono::steady_clock::now() > deadline) {
        throw DeviceError("collbuf: segment never initialized: " + name);
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(1));
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (header->members != static_cast<std::uint32_t>(member_count)) {
      throw DeviceError("collbuf: member-count mismatch on " + name);
    }
  }
}

std::size_t Group::chunk_payload(std::size_t align) const {
  if (align <= 1) return kChunkBytes;
  if (align > kChunkBytes) {
    throw DeviceError("collbuf: element size " + std::to_string(align) +
                      " exceeds the chunk size");
  }
  return kChunkBytes - kChunkBytes % align;
}

std::atomic<std::uint64_t>& Group::pub(int member) {
  auto* base = static_cast<std::byte*>(mapping_.base());
  return *reinterpret_cast<std::atomic<std::uint64_t>*>(
      base + pub_offset() + static_cast<std::size_t>(member) * kAlign);
}

std::atomic<std::uint64_t>& Group::ack(int reader, int writer) {
  auto* base = static_cast<std::byte*>(mapping_.base());
  return *reinterpret_cast<std::atomic<std::uint64_t>*>(
      base + ack_offset(members_) +
      (static_cast<std::size_t>(reader) * members_ + writer) * sizeof(std::uint64_t));
}

std::byte* Group::region(int member, std::uint64_t version) {
  auto* base = static_cast<std::byte*>(mapping_.base());
  return base + data_offset(members_) +
         (static_cast<std::size_t>(member) * kSlotChunks +
          version % kSlotChunks) *
             kChunkBytes;
}

void Group::wait_or_throw(const std::function<bool()>& ready, const char* what) const {
  const std::uint32_t timeout_ms = faults::op_timeout_ms();
  const auto start = std::chrono::steady_clock::now();
  std::uint32_t spins = 0;
  while (!ready()) {
    if (++spins < 256) {
      std::this_thread::yield();
      continue;
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50));
    // A dead peer never publishes: give the failure detector a chance to
    // surface ProcFailed before the coarse timeout backstop fires.
    if (abort_check_) abort_check_();
    if (timeout_ms != 0 &&
        std::chrono::steady_clock::now() - start >
            std::chrono::milliseconds(timeout_ms)) {
      faults::counters().add(prof::Ctr::OpTimeouts);
      throw DeviceError(std::string("collbuf: ") + what +
                            " expired under MPCX_OP_TIMEOUT_MS",
                        ErrCode::Timeout);
    }
  }
}

std::byte* Group::write_begin() {
  const std::uint64_t version = mirror_[my_];
  if (version >= static_cast<std::uint64_t>(kSlotChunks)) {
    // The region we are about to fill last held version - kSlotChunks:
    // every recorded reader of that version must have consumed it.
    const std::uint64_t prior = version - kSlotChunks;
    const std::uint64_t mask = pending_readers_[prior % kSlotChunks];
    for (int reader = 0; reader < members_; ++reader) {
      if (((mask >> reader) & 1) == 0) continue;
      auto& slot = ack(reader, my_);
      wait_or_throw(
          [&] { return slot.load(std::memory_order_acquire) >= prior + 1; },
          "reader-ack wait (slot reuse)");
    }
  }
  return region(my_, version);
}

void Group::write_commit(std::uint64_t readers_mask) {
  if (faults::enabled()) {
    // Delay plans widen the publish/consume window exactly like a slow
    // writer would; the destructive outcomes (drop/corrupt/reset) model
    // transport faults and have no analog for a shared mapping, so the
    // returned action is deliberately ignored.
    (void)faults::next_action(faults::Site::ShmPush);
  }
  const std::uint64_t version = mirror_[my_]++;
  pending_readers_[version % kSlotChunks] = readers_mask;
  pub(my_).store(version + 1, std::memory_order_release);
}

const std::byte* Group::read_begin(int writer) {
  const std::uint64_t version = mirror_[writer];
  auto& flag = pub(writer);
  wait_or_throw(
      [&] { return flag.load(std::memory_order_acquire) >= version + 1; },
      "publication wait");
  return region(writer, version);
}

void Group::read_commit(int writer) {
  const std::uint64_t version = mirror_[writer]++;
  ack(my_, writer).store(version + 1, std::memory_order_release);
}

void Group::bcast(int writer, void* data, std::size_t bytes) {
  if (bytes == 0 || members_ <= 1) return;
  const std::size_t chunk = chunk_payload(1);
  if (my_ == writer) {
    std::uint64_t mask = 0;
    for (int m = 0; m < members_; ++m) {
      if (m != my_) mask |= std::uint64_t{1} << m;
    }
    const auto* src = static_cast<const std::byte*>(data);
    for (std::size_t off = 0; off < bytes; off += chunk) {
      const std::size_t len = std::min(chunk, bytes - off);
      std::memcpy(write_begin(), src + off, len);
      write_commit(mask);
    }
  } else {
    auto* dst = static_cast<std::byte*>(data);
    for (std::size_t off = 0; off < bytes; off += chunk) {
      const std::size_t len = std::min(chunk, bytes - off);
      std::memcpy(dst + off, read_begin(writer), len);
      read_commit(writer);
    }
  }
}

void Group::reduce(int collector, const void* contrib, void* acc, std::size_t bytes,
                   std::size_t align, const FoldFn& fold) {
  if (bytes == 0 || members_ <= 1) return;
  const std::size_t chunk = chunk_payload(align);
  const std::uint64_t chunks = (bytes + chunk - 1) / chunk;
  if (my_ != collector) {
    const auto* src = static_cast<const std::byte*>(contrib);
    const std::uint64_t mask = std::uint64_t{1} << collector;
    for (std::size_t off = 0; off < bytes; off += chunk) {
      const std::size_t len = std::min(chunk, bytes - off);
      std::memcpy(write_begin(), src + off, len);
      write_commit(mask);
    }
    // The other contributors published `chunks` versions each that only the
    // collector consumes; advance their mirrors so the next op agrees.
    for (int m = 0; m < members_; ++m) {
      if (m != my_ && m != collector) mirror_[m] += chunks;
    }
  } else {
    // Fold in ascending member order — the canonical order for
    // non-commutative operations over a contiguous rank block. `acc` must
    // not alias `contrib` unless this member is member 0 (member 0's
    // contribution seeds the fold before our own is consumed).
    auto* out = static_cast<std::byte*>(acc);
    const auto* own = static_cast<const std::byte*>(contrib);
    for (std::size_t off = 0; off < bytes; off += chunk) {
      const std::size_t len = std::min(chunk, bytes - off);
      for (int m = 0; m < members_; ++m) {
        const std::byte* src = m == my_ ? own + off : read_begin(m);
        if (m == 0) {
          std::memcpy(out + off, src, len);
        } else {
          fold(src, out + off, len);
        }
        if (m != my_) read_commit(m);
      }
    }
  }
}

}  // namespace mpcx::xdev::collbuf
