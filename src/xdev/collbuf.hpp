// mpcx::xdev::collbuf — process-shared single-copy collective buffers.
//
// shmdev moves every intra-node payload through a per-process ring: one
// copy user->ring, one copy ring->user, plus record framing. For
// collectives that is wasted motion — per the MPI ordering contract, the
// members of a node group all know exactly which collective runs next. This
// component gives each (communicator, node-group) pair one shared segment
// in which the *writer lands data exactly where every reader consumes it*
// (XHC-style): a broadcast writes each chunk once and N-1 readers copy it
// straight into their user buffers; a reduction has every member deposit
// its contribution once and the collector folds all of them directly into
// its accumulation buffer.
//
// Protocol (flag handoff + pipelined chunking):
//   * Each member owns a slot of kSlotChunks chunk regions and a monotonic
//     publication counter `pub[m]`. Publishing version v fills region
//     v % kSlotChunks and release-stores pub[m] = v+1.
//   * Every member mirrors every other member's version counter locally.
//     The mirrors never need communication: collectives are issued in the
//     same order on every member, and each op advances each member's
//     counter by a deterministic chunk count.
//   * A reader of member m's version v acquire-polls pub[m] >= v+1, copies
//     or folds straight out of the region, then release-stores its per-pair
//     ack. A writer reuses a region only once every recorded reader of the
//     version that previously occupied it has acked — so up to kSlotChunks
//     chunks are in flight per member and adjacent pipeline stages overlap.
//
// The segment is created by the group's fixed lowest-rank member and
// attached by the rest via the shared shmmap machinery (the same
// unlink-stale / create-exclusive / poll-and-map cycle as shmdev's rings).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "xdev/shmmap.hpp"

namespace mpcx::xdev::collbuf {

/// Chunk granularity: small enough to pipeline, large enough to amortize
/// the flag handoff. kSlotChunks regions per member bound the in-flight
/// window.
inline constexpr std::size_t kChunkBytes = 32 * 1024;
inline constexpr int kSlotChunks = 4;

/// Sharing-domain cap (the ack matrix is M x M and reader sets are u64
/// bitmasks). Node groups larger than this fall back to the p2p schedule.
inline constexpr int kMaxMembers = 64;

class Group {
 public:
  /// Collective constructor: every member of the sharing domain calls it
  /// with the same `name` and `member_count`; exactly the member with
  /// `creator == true` (by convention the lowest rank) creates the segment,
  /// the rest attach.
  Group(const std::string& name, int my_index, int member_count, bool creator);

  Group(const Group&) = delete;
  Group& operator=(const Group&) = delete;

  int member_count() const { return members_; }

  /// Broadcast `bytes` from member `writer`'s `data` into every other
  /// member's `data`. One copy in (writer), one copy out per reader,
  /// chunk-pipelined.
  void bcast(int writer, void* data, std::size_t bytes);

  /// dst = dst op src over `bytes` (both inside the op's element domain).
  using FoldFn =
      std::function<void(const std::byte* src, std::byte* dst, std::size_t bytes)>;

  /// Reduce: every member deposits `contrib` once; member `collector` folds
  /// the contributions *in ascending member order* (the canonical order a
  /// non-commutative operation requires when the group is a contiguous rank
  /// block) directly into its `acc`. Only the collector's `acc` is written.
  /// `align` is the base element size: chunks split on element boundaries
  /// so `fold` always sees whole elements.
  void reduce(int collector, const void* contrib, void* acc, std::size_t bytes,
              std::size_t align, const FoldFn& fold);

  /// Peer liveness is invisible through a shared mapping: a wait on a dead
  /// member's publication would otherwise only ever hit the op-timeout
  /// backstop. The owner installs a check that throws (e.g. ProcFailed from
  /// the failure detector) when the sharing domain is known broken; the
  /// wait loops poll it while blocked.
  using AbortCheck = std::function<void()>;
  void set_abort_check(AbortCheck check) { abort_check_ = std::move(check); }

 private:
  std::size_t chunk_payload(std::size_t align) const;

  std::atomic<std::uint64_t>& pub(int member);
  std::atomic<std::uint64_t>& ack(int reader, int writer);
  std::byte* region(int member, std::uint64_t version);

  /// Writer side: wait until my next version's region is reusable, fill it,
  /// publish it to the members in `readers_mask`.
  std::byte* write_begin();
  void write_commit(std::uint64_t readers_mask);

  /// Reader side: wait for member w's next version, consume, ack.
  const std::byte* read_begin(int writer);
  void read_commit(int writer);

  void wait_or_throw(const std::function<bool()>& ready, const char* what) const;

  shmmap::Mapping mapping_;
  int my_ = 0;
  int members_ = 0;

  // Local mirrors of every member's publication counter (see file comment)
  // and the reader sets of my last kSlotChunks published versions.
  std::vector<std::uint64_t> mirror_;
  std::uint64_t pending_readers_[kSlotChunks] = {};
  AbortCheck abort_check_;
};

/// Total segment bytes for a group of `member_count` (layout is computed at
/// runtime from the member count).
std::size_t segment_bytes(int member_count);

}  // namespace mpcx::xdev::collbuf
