#include "xdev/shmmap.hpp"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <thread>
#include <utility>

#include "support/error.hpp"
#include "support/faults.hpp"

namespace mpcx::xdev::shmmap {

Mapping& Mapping::operator=(Mapping&& other) noexcept {
  if (this != &other) {
    reset();
    base_ = std::exchange(other.base_, nullptr);
    bytes_ = std::exchange(other.bytes_, 0);
    name_ = std::move(other.name_);
    owner_ = std::exchange(other.owner_, false);
  }
  return *this;
}

void Mapping::reset() {
  if (base_ != nullptr) ::munmap(base_, bytes_);
  if (owner_) ::shm_unlink(name_.c_str());
  base_ = nullptr;
  bytes_ = 0;
  owner_ = false;
}

namespace {

/// mmap the sized fd and close it; unlinks on failure when `owner`.
void* map_fd(int fd, const std::string& name, std::size_t bytes, bool owner,
             const char* who) {
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  ::close(fd);
  if (base == MAP_FAILED) {
    if (owner) ::shm_unlink(name.c_str());
    throw DeviceError(std::string(who) + ": mmap: " + std::strerror(errno));
  }
  return base;
}

}  // namespace

Mapping create(const std::string& name, std::size_t bytes, const char* who) {
  ::shm_unlink(name.c_str());  // stale segment from a crashed run
  const int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
  if (fd < 0) {
    throw DeviceError(std::string(who) + ": shm_open(create " + name +
                      "): " + std::strerror(errno));
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    ::close(fd);
    ::shm_unlink(name.c_str());
    throw DeviceError(std::string(who) + ": ftruncate: " + std::strerror(errno));
  }
  Mapping mapping;
  mapping.base_ = map_fd(fd, name, bytes, /*owner=*/true, who);
  mapping.bytes_ = bytes;
  mapping.name_ = name;
  mapping.owner_ = true;
  return mapping;
}

Mapping open_peer(const std::string& name, std::size_t bytes, int timeout_ms,
                  const char* who) {
  if (timeout_ms < 0) timeout_ms = static_cast<int>(faults::connect_timeout_ms());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
  for (;;) {
    const int fd = ::shm_open(name.c_str(), O_RDWR, 0600);
    if (fd >= 0) {
      // Creation is not atomic: wait until the owner's ftruncate has sized
      // the file, or mapping it would SIGBUS on first touch.
      struct stat st {};
      while (::fstat(fd, &st) == 0 && st.st_size < static_cast<off_t>(bytes)) {
        if (std::chrono::steady_clock::now() > deadline) {
          ::close(fd);
          throw DeviceError(std::string(who) + ": peer segment never sized: " + name);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(1));
      }
      Mapping mapping;
      mapping.base_ = map_fd(fd, name, bytes, /*owner=*/false, who);
      mapping.bytes_ = bytes;
      mapping.name_ = name;
      return mapping;
    }
    if (errno != ENOENT || std::chrono::steady_clock::now() > deadline) {
      throw DeviceError(std::string(who) + ": shm_open(" + name +
                        "): " + std::strerror(errno));
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
}

}  // namespace mpcx::xdev::shmmap
