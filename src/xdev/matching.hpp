// Message matching machinery shared by pure-software devices (Sec. IV-E.2).
//
// A message is uniquely identified by (context, tag, source). A posted
// receive may use wildcards for tag and/or source, so an incoming concrete
// message can match a posted request under any of FOUR keys:
//
//   (ctx, tag, src)  (ctx, ANY_TAG, src)  (ctx, tag, ANY_SRC)  (ctx, ANY, ANY)
//
// PostedRecvSet stores posted receives bucketed by their own (possibly
// wildcarded) key; an arriving message probes its four derived keys and
// takes the request that was posted EARLIEST among all candidates (MPI
// posted-order matching), using a global post sequence number as the tie
// breaker across buckets. This gives O(1) matching regardless of how many
// receives are outstanding — the property behind the paper's 650-irecv
// claim (Sec. VI) and the ANY_SOURCE overlap win (Sec. V-A).
//
// UnexpectedSet is the mirror structure for messages that arrive before a
// matching receive is posted; a newly posted receive scans it in arrival
// order (MPI requires the earliest matching message).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <limits>
#include <list>
#include <optional>
#include <unordered_map>
#include <vector>

#include "xdev/process_id.hpp"

namespace mpcx::xdev {

/// Matching key. tag == kAnyTag and src == ProcessID::any() act as
/// wildcards when used in a posted receive.
struct MatchKey {
  int context = 0;
  int tag = 0;
  ProcessID src{};

  friend bool operator==(const MatchKey&, const MatchKey&) = default;
};

struct MatchKeyHash {
  std::size_t operator()(const MatchKey& key) const noexcept {
    std::size_t h = std::hash<int>{}(key.context);
    h = h * 1000003u ^ std::hash<int>{}(key.tag);
    h = h * 1000003u ^ std::hash<ProcessID>{}(key.src);
    return h;
  }
};

/// Set of posted-but-unmatched receive requests ("pending-recv-request-set"
/// in the paper's pseudocode). T is the device's per-receive record.
/// Not internally synchronized: the device guards it with its
/// receive-communication-sets lock, exactly as in Figs. 4–8.
template <typename T>
class PostedRecvSet {
 public:
  /// Post a receive under its (possibly wildcarded) key.
  void add(const MatchKey& key, T value) {
    buckets_[key].push_back(Entry{seq_++, std::move(value)});
    ++size_;
  }

  /// Re-post a receive that had already matched an arrival whose delivery
  /// was interrupted (reliable-transport repair). The entry is given a seq
  /// BELOW every other posted receive so the redelivered message matches it
  /// first — re-posting at the tail would permute message/receive pairing
  /// and break MPI posted-order semantics.
  void restore(const MatchKey& key, T value) {
    buckets_[key].push_front(Entry{restore_seq_--, std::move(value)});
    ++size_;
  }

  /// Match an incoming concrete (no wildcards) message key against the
  /// posted receives; removes and returns the earliest-posted match.
  std::optional<T> match(const MatchKey& incoming) {
    const MatchKey candidates[4] = {
        incoming,
        MatchKey{incoming.context, kAnyTag, incoming.src},
        MatchKey{incoming.context, incoming.tag, ProcessID::any()},
        MatchKey{incoming.context, kAnyTag, ProcessID::any()},
    };
    std::deque<Entry>* best = nullptr;
    std::int64_t best_seq = std::numeric_limits<std::int64_t>::max();
    for (const MatchKey& key : candidates) {
      auto it = buckets_.find(key);
      if (it == buckets_.end() || it->second.empty()) continue;
      if (it->second.front().seq < best_seq) {
        best_seq = it->second.front().seq;
        best = &it->second;
      }
    }
    if (best == nullptr) return std::nullopt;
    T value = std::move(best->front().value);
    best->pop_front();
    --size_;
    return value;
  }

  /// match(), but an entry must also pass `claim` to be returned. Entries
  /// that fail the claim are DISCARDED (not returned, not kept): they are
  /// dead twins of shared receives whose match gate a sibling device already
  /// won (see DevRequestState::try_claim_match). The loop preserves
  /// posted-order semantics — after each discard the next-earliest candidate
  /// is re-evaluated from scratch.
  std::optional<T> match_where(const MatchKey& incoming,
                               const std::function<bool(const T&)>& claim) {
    for (;;) {
      std::optional<T> candidate = match(incoming);
      if (!candidate) return std::nullopt;
      if (claim(*candidate)) return candidate;
      // Dead twin: drop it and keep looking.
    }
  }

  /// Remove the first entry matching `pred` across ALL buckets (linear
  /// scan; used by Request.Cancel where the key is not at hand).
  bool remove_scan(const std::function<bool(const T&)>& pred) {
    for (auto& [key, entries] : buckets_) {
      for (auto it = entries.begin(); it != entries.end(); ++it) {
        if (pred(it->value)) {
          entries.erase(it);
          --size_;
          return true;
        }
      }
    }
    return false;
  }

  /// Remove a specific posted entry (used by cancel). Predicate receives T&.
  bool remove_if(const MatchKey& key, const std::function<bool(const T&)>& pred) {
    auto it = buckets_.find(key);
    if (it == buckets_.end()) return false;
    for (auto e = it->second.begin(); e != it->second.end(); ++e) {
      if (pred(e->value)) {
        it->second.erase(e);
        --size_;
        return true;
      }
    }
    return false;
  }

  /// Remove and return EVERY posted entry matching `pred` (peer-failure
  /// sweep: error out all receives pinned to a dead source).
  std::vector<T> drain_if(const std::function<bool(const MatchKey&, const T&)>& pred) {
    std::vector<T> drained;
    for (auto& [key, entries] : buckets_) {
      for (auto it = entries.begin(); it != entries.end();) {
        if (pred(key, it->value)) {
          drained.push_back(std::move(it->value));
          it = entries.erase(it);
          --size_;
        } else {
          ++it;
        }
      }
    }
    return drained;
  }

  std::size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

 private:
  struct Entry {
    std::int64_t seq;
    T value;
  };

  std::unordered_map<MatchKey, std::deque<Entry>, MatchKeyHash> buckets_;
  std::int64_t seq_ = 0;        ///< add(): increasing, so later posts match later
  std::int64_t restore_seq_ = -1;  ///< restore(): decreasing, so re-posts match first
  std::size_t size_ = 0;
};

/// Arrival-ordered set of messages with no matching posted receive.
/// A receive (possibly wildcarded) scans for the earliest arrival whose
/// concrete key it accepts.
template <typename T>
class UnexpectedSet {
 public:
  void add(const MatchKey& concrete_key, T value) {
    entries_.push_back(Entry{concrete_key, std::move(value)});
  }

  /// Find (and remove) the earliest message matching a receive's key.
  std::optional<T> match(const MatchKey& recv_key) {
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
      if (accepts(recv_key, it->key)) {
        T value = std::move(it->value);
        entries_.erase(it);
        return value;
      }
    }
    return std::nullopt;
  }

  /// Find without removing (backs probe/iprobe). Returns pointer valid until
  /// the set is next modified.
  const T* find(const MatchKey& recv_key) const {
    for (const auto& entry : entries_) {
      if (accepts(recv_key, entry.key)) return &entry.value;
    }
    return nullptr;
  }

  /// Remove and return every entry matching `pred` (peer-failure sweep:
  /// purge announcements whose payload can no longer arrive).
  std::vector<T> drain_if(const std::function<bool(const MatchKey&, const T&)>& pred) {
    std::vector<T> drained;
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (pred(it->key, it->value)) {
        drained.push_back(std::move(it->value));
        it = entries_.erase(it);
      } else {
        ++it;
      }
    }
    return drained;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// True if a receive posted with `recv_key` accepts a message carrying
  /// `msg_key` (wildcard-aware; contexts never wildcard).
  static bool accepts(const MatchKey& recv_key, const MatchKey& msg_key) {
    if (recv_key.context != msg_key.context) return false;
    if (recv_key.tag != kAnyTag && recv_key.tag != msg_key.tag) return false;
    if (!recv_key.src.is_any() && !(recv_key.src == msg_key.src)) return false;
    return true;
  }

 private:
  struct Entry {
    MatchKey key;
    T value;
  };

  std::list<Entry> entries_;
};

}  // namespace mpcx::xdev
