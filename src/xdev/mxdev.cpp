// mxdev — xdev device over the mxsim message layer (paper Sec. IV-A.3).
//
// Like the paper's mxdev, this device implements NO communication protocols
// of its own: eager/rendezvous live inside mxsim, matching is done with
// 64-bit match bits, and thread safety comes for free because every mxsim
// entry point is thread-safe. The device's job is purely representational:
//
//   * (context, tag) are packed into the match bits:
//       match = context << 32 | tag     (ANY_TAG => mask off the low word)
//   * ProcessID.value is used directly as the mxsim endpoint address.
//   * A buffer's static and dynamic sections are sent as a two-entry
//     segment list — the paper's motivating use of mx_isend segment lists —
//     and scattered back into the two sections on receive.
//   * Zero-copy sends hand the user's contiguous payload to mxsim as a
//     segment list [section header | payload... | empty dynamic] with no
//     staging copy at all (eager mode; see isend_segments for why
//     rendezvous falls back to staging).
//
// Chunk shapes on the fabric: classic Buffer sends are exactly two chunks
// [static, dynamic]; segment-list sends are three or more. Receivers don't
// need to distinguish them — in both shapes the FINAL chunk is the dynamic
// region and everything before it concatenates into the static region.
//
// send_overhead() is 0: no frame header is needed because the match bits
// and the fabric carry all metadata. (Contrast tcpdev.)
#include <algorithm>
#include <cstring>
#include <mutex>
#include <unordered_map>
#include <utility>
#include <vector>

#include "mxsim/mxsim.hpp"
#include "prof/counters.hpp"
#include "prof/hooks.hpp"
#include "xdev/completion_queue.hpp"
#include "xdev/device.hpp"

namespace mpcx::xdev {
namespace {

constexpr mxsim::MatchBits kFullMask = ~mxsim::MatchBits{0};
constexpr mxsim::MatchBits kAnyTagMask = 0xFFFFFFFF00000000ull;

mxsim::MatchBits pack_match(int context, int tag) {
  return (static_cast<mxsim::MatchBits>(static_cast<std::uint32_t>(context)) << 32) |
         static_cast<std::uint32_t>(tag);
}

int match_tag(mxsim::MatchBits match) {
  return static_cast<int>(static_cast<std::uint32_t>(match & 0xFFFFFFFFull));
}

int match_context(mxsim::MatchBits match) {
  return static_cast<int>(static_cast<std::uint32_t>(match >> 32));
}

/// Index of the dynamic-region chunk, or `chunk_count` when there is none.
/// With two or more chunks the final one is always the dynamic region (see
/// the chunk-shape note at the top of this file); a lone chunk is static.
std::size_t dynamic_chunk_index(std::size_t chunk_count) {
  return chunk_count >= 2 ? chunk_count - 1 : chunk_count;
}

std::size_t static_bytes_of(const mxsim::MxMessage& msg) {
  std::size_t total = 0;
  const std::size_t dyn = dynamic_chunk_index(msg.chunk_count());
  for (std::size_t i = 0; i < dyn; ++i) total += msg.chunk(i).size();
  return total;
}

std::span<const std::byte> dynamic_bytes_of(const mxsim::MxMessage& msg) {
  const std::size_t dyn = dynamic_chunk_index(msg.chunk_count());
  return dyn < msg.chunk_count() ? msg.chunk(dyn) : std::span<const std::byte>{};
}

/// Concatenate the static-region chunks into `dst` (sized by the caller).
void gather_static_chunks(const mxsim::MxMessage& msg, std::span<std::byte> dst) {
  std::size_t at = 0;
  const std::size_t dyn = dynamic_chunk_index(msg.chunk_count());
  for (std::size_t i = 0; i < dyn; ++i) {
    const auto chunk = msg.chunk(i);
    if (!chunk.empty()) std::memcpy(dst.data() + at, chunk.data(), chunk.size());
    at += chunk.size();
  }
}

/// Scatter the concatenated static chunks across [dst.header | dst.payload].
/// Chunk boundaries need not align with the 8-byte header split: a classic
/// two-chunk send lands here too when its byte shape is direct-eligible.
void land_static_chunks(const mxsim::MxMessage& msg, const RecvSpan& dst) {
  constexpr std::size_t kSect = buf::Buffer::kSectionHeaderBytes;
  std::size_t off = 0;
  const std::size_t dyn = dynamic_chunk_index(msg.chunk_count());
  for (std::size_t i = 0; i < dyn; ++i) {
    const auto chunk = msg.chunk(i);
    std::size_t at = 0;
    while (at < chunk.size()) {
      std::size_t n = chunk.size() - at;
      if (off < kSect) {
        n = std::min(kSect - off, n);
        std::memcpy(dst.header + off, chunk.data() + at, n);
      } else {
        std::memcpy(dst.payload + (off - kSect), chunk.data() + at, n);
      }
      off += n;
      at += n;
    }
  }
}

class MxDevice final : public Device, public RequestCanceller {
 public:
  std::vector<ProcessID> init(const DeviceConfig& config) override {
    if (config.self_index >= config.world.size()) {
      throw DeviceError("mxdev: self_index out of range");
    }
    self_ = config.world[config.self_index].id;
    endpoint_ = mxsim::Fabric::global().open_endpoint(self_.value);
    std::vector<ProcessID> world;
    world.reserve(config.world.size());
    for (const EndpointInfo& info : config.world) world.push_back(info.id);
    return world;
  }

  int send_overhead() const override { return 0; }
  int recv_overhead() const override { return 0; }

  ProcessID id() const override { return self_; }

  void finish() override {
    if (endpoint_) {
      endpoint_->close();
      endpoint_.reset();
    }
    completions_.shutdown();
  }

  DevRequest isend(buf::Buffer& buffer, ProcessID dst, int tag, int context) override {
    return send_common(buffer, dst, tag, context, /*synchronous=*/false);
  }

  DevRequest issend(buf::Buffer& buffer, ProcessID dst, int tag, int context) override {
    return send_common(buffer, dst, tag, context, /*synchronous=*/true);
  }

  DevRequest irecv(buf::Buffer& buffer, ProcessID src, int tag, int context) override {
    require_open("irecv");
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Recv, sink_,
                                                     counters_.get(), this);
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_recv_begin(prof::MsgInfo{src.value, tag, context, 0});
    }
    const mxsim::MatchBits match = pack_match(context, tag == kAnyTag ? 0 : tag);
    const mxsim::MatchBits mask = tag == kAnyTag ? kAnyTagMask : kFullMask;
    std::optional<mxsim::EndpointAddr> filter;
    if (!src.is_any()) filter = src.value;

    buf::Buffer* dest = &buffer;
    auto mx = endpoint_->irecv(match, mask, filter,
                               [this, dest, request](const mxsim::MxMessage& msg) {
      forget_posted(request.get());
      const auto dynamic_bytes = dynamic_bytes_of(msg);
      DevStatus status = message_status(msg);
      if (status.static_bytes > dest->capacity()) {
        status.truncated = true;  // message dropped; see DevStatus::truncated
        request->complete(status);
        return;
      }
      gather_static_chunks(msg, dest->prepare_static(status.static_bytes));
      auto dynamic_dst = dest->prepare_dynamic(dynamic_bytes.size());
      if (!dynamic_bytes.empty()) {
        std::memcpy(dynamic_dst.data(), dynamic_bytes.data(), dynamic_bytes.size());
      }
      dest->seal_received();
      request->complete(status);
    });
    {
      // Remember the mxsim handle so cancel() can reach it.
      std::lock_guard<std::mutex> lock(recv_map_mu_);
      posted_recvs_.emplace(request.get(), std::move(mx));
    }
    return request;
  }

  /// Native zero-copy segment send — eager standard mode only. Rendezvous
  /// mxsim sends VIEW the segments until a receiver matches, and abandon()
  /// can never cancel a send, so a timed-out waiter would sit in
  /// await_device_release() with no bound; issend (always rendezvous) keeps
  /// the base staging fallback for the same reason. The staged copy is
  /// request-owned, which keeps mxsim's views alive however long the match
  /// takes — borrowed spans are released at return on both paths.
  DevRequest isend_segments(std::span<const std::byte> header,
                            std::span<const SendSegment> segments, ProcessID dst, int tag,
                            int context) override {
    require_open("send");
    std::size_t payload = 0;
    for (const SendSegment& seg : segments) payload += seg.size;
    const std::size_t total = header.size() + payload;
    if (total > endpoint_->eager_limit()) {
      return Device::isend_segments(header, segments, dst, tag, context);
    }
    counters_->add(prof::Ctr::MsgsSent);
    counters_->add(prof::Ctr::BytesSent, total);
    counters_->add(prof::Ctr::EagerSends);
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_send_begin(prof::MsgInfo{dst.value, tag, context, total});
    }
    std::vector<mxsim::Segment> chunks;
    chunks.reserve(segments.size() + 2);
    chunks.push_back({header.data(), header.size()});
    for (const SendSegment& seg : segments) chunks.push_back({seg.data, seg.size});
    // Pad to three or more chunks ending in an empty dynamic region so
    // receivers can tell this shape from a classic [static, dynamic] send.
    if (segments.empty()) chunks.push_back({nullptr, 0});
    chunks.push_back({nullptr, 0});
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Send, sink_,
                                                     nullptr, this);
    const ProcessID self = self_;
    auto on_done = [request, self, tag, context, total](const mxsim::MxStatus&) {
      DevStatus dev;
      dev.source = self;
      dev.tag = tag;
      dev.context = context;
      dev.static_bytes = total;
      request->complete(dev);
    };
    // Eager isend copies the chunks and completes before returning, so the
    // borrowed payload spans are already free when this call is back.
    endpoint_->isend(chunks, dst.value, pack_match(context, tag))->on_complete(on_done);
    return request;
  }

  DevRequest irecv_direct(const RecvSpan& dst, ProcessID src, int tag, int context) override {
    require_open("irecv");
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Recv, sink_,
                                                     counters_.get(), this);
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_recv_begin(prof::MsgInfo{src.value, tag, context, 0});
    }
    const mxsim::MatchBits match = pack_match(context, tag == kAnyTag ? 0 : tag);
    const mxsim::MatchBits mask = tag == kAnyTag ? kAnyTagMask : kFullMask;
    std::optional<mxsim::EndpointAddr> filter;
    if (!src.is_any()) filter = src.value;

    const RecvSpan span = dst;
    auto mx = endpoint_->irecv(match, mask, filter,
                               [this, span, request](const mxsim::MxMessage& msg) {
      forget_posted(request.get());
      deliver_direct(msg, span, request);
    });
    {
      std::lock_guard<std::mutex> lock(recv_map_mu_);
      posted_recvs_.emplace(request.get(), std::move(mx));
    }
    return request;
  }

  bool cancel(const DevRequest& request) override {
    if (!request || request->kind() != DevRequestState::Kind::Recv || !endpoint_) return false;
    mxsim::MxRequest mx;
    {
      std::lock_guard<std::mutex> lock(recv_map_mu_);
      auto it = posted_recvs_.find(request.get());
      if (it == posted_recvs_.end()) return false;
      mx = it->second;
    }
    if (!endpoint_->cancel(mx)) return false;  // already matched
    forget_posted(request.get());
    DevStatus status;
    status.cancelled = true;
    request->complete(status);
    return true;
  }

  void forget_posted(const DevRequestState* request) {
    std::lock_guard<std::mutex> lock(recv_map_mu_);
    posted_recvs_.erase(request);
  }

  /// RequestCanceller: a wait() on `request` timed out. Receives unpost via
  /// mxsim cancel; if the receive already matched, the delivery callback is
  /// running (or about to), so defer to its complete(). Sends always defer:
  /// mxsim may still hold segment views into the buffer (rendezvous sends
  /// keep them until matched), and its completion callback is the one
  /// guaranteed last touch. A rendezvous send that never matches parks the
  /// buffer until endpoint close — a bounded leak, never a use-after-free.
  bool abandon(DevRequestState& request) override {
    if (request.kind() != DevRequestState::Kind::Recv || !endpoint_) return false;
    mxsim::MxRequest mx;
    {
      std::lock_guard<std::mutex> lock(recv_map_mu_);
      auto it = posted_recvs_.find(&request);
      if (it == posted_recvs_.end()) return false;  // matched: callback owns it
      mx = it->second;
    }
    if (!endpoint_->cancel(mx)) return false;  // matched: callback owns it
    forget_posted(&request);
    return true;
  }

  DevStatus probe(ProcessID src, int tag, int context) override {
    require_open("probe");
    counters_->add(prof::Ctr::ProbeCalls);
    const auto info = endpoint_->probe(pack_match(context, tag == kAnyTag ? 0 : tag),
                                       tag == kAnyTag ? kAnyTagMask : kFullMask, src_filter(src));
    return probe_status(info);
  }

  std::optional<DevStatus> iprobe(ProcessID src, int tag, int context) override {
    require_open("iprobe");
    counters_->add(prof::Ctr::IprobeCalls);
    const auto info = endpoint_->iprobe(pack_match(context, tag == kAnyTag ? 0 : tag),
                                        tag == kAnyTag ? kAnyTagMask : kFullMask, src_filter(src));
    if (!info) return std::nullopt;
    return probe_status(*info);
  }

  DevRequest peek() override {
    DevRequest completed = completions_.pop();
    if (completed) counters_->add(prof::Ctr::PeekWakeups);
    return completed;
  }

  void redirect_completions(CompletionSink* sink) override { sink_ = sink; }

  const prof::Counters* counters() const override { return counters_.get(); }

 private:
  void require_open(const char* op) const {
    if (!endpoint_) throw DeviceError(std::string("mxdev: ") + op + " before init / after finish");
  }

  static std::optional<mxsim::EndpointAddr> src_filter(ProcessID src) {
    if (src.is_any()) return std::nullopt;
    return src.value;
  }

  static DevStatus probe_status(const mxsim::ProbeInfo& info) {
    DevStatus status;
    status.source = ProcessID{info.source};
    status.tag = match_tag(info.match);
    status.context = match_context(info.match);
    const std::size_t dyn = dynamic_chunk_index(info.chunk_sizes.size());
    for (std::size_t i = 0; i < dyn; ++i) status.static_bytes += info.chunk_sizes[i];
    status.dynamic_bytes = dyn < info.chunk_sizes.size() ? info.chunk_sizes[dyn] : 0;
    return status;
  }

  /// Land a matched message for a zero-copy receive: straight into the
  /// caller's span when the byte shape allows (no dynamic region, static
  /// region at least one section header, payload fits), staged into a
  /// request-attached buffer otherwise. A timed-out waiter may already have
  /// claimed the request; the span stays valid until the final complete()
  /// by the RecvSpan contract, so landing remains safe — the claim-losing
  /// complete() then drops the message, matching the classic irecv path.
  void deliver_direct(const mxsim::MxMessage& msg, const RecvSpan& span,
                      const DevRequest& request) {
    constexpr std::size_t kSect = buf::Buffer::kSectionHeaderBytes;
    DevStatus status = message_status(msg);
    if (status.static_bytes > kSect + span.payload_capacity) {
      status.truncated = true;  // message dropped; see DevStatus::truncated
      request->complete(status);
      return;
    }
    if (status.dynamic_bytes == 0 && status.static_bytes >= kSect) {
      land_static_chunks(msg, span);
      status.direct = true;
      request->complete(status);
      return;
    }
    // Shape mismatch: stage into a buffer the request owns; the core layer
    // unpacks it exactly as it would a classic receive.
    auto staging = std::make_unique<buf::Buffer>(kSect + span.payload_capacity);
    gather_static_chunks(msg, staging->prepare_static(status.static_bytes));
    const auto dynamic_bytes = dynamic_bytes_of(msg);
    auto dynamic_dst = staging->prepare_dynamic(dynamic_bytes.size());
    if (!dynamic_bytes.empty()) {
      std::memcpy(dynamic_dst.data(), dynamic_bytes.data(), dynamic_bytes.size());
    }
    staging->seal_received();
    request->attach_buffer(std::move(staging));
    request->complete(status);
  }

  static DevStatus message_status(const mxsim::MxMessage& msg) {
    DevStatus status;
    status.source = ProcessID{msg.source()};
    status.tag = match_tag(msg.match());
    status.context = match_context(msg.match());
    status.static_bytes = static_bytes_of(msg);
    status.dynamic_bytes = dynamic_bytes_of(msg).size();
    return status;
  }

  DevRequest send_common(buf::Buffer& buffer, ProcessID dst, int tag, int context,
                         bool synchronous) {
    require_open("send");
    if (!buffer.in_read_mode()) {
      throw DeviceError("mxdev: send buffer must be committed");
    }
    const mxsim::Segment segments[2] = {
        {buffer.static_payload().data(), buffer.static_payload().size()},
        {buffer.dynamic_payload().data(), buffer.dynamic_payload().size()},
    };
    const std::size_t total_bytes = buffer.static_size() + buffer.dynamic_size();
    counters_->add(prof::Ctr::MsgsSent);
    counters_->add(prof::Ctr::BytesSent, total_bytes);
    // The protocol decision is mxsim's; mirror its eager-limit rule here so
    // the counters still tell the eager/rendezvous story for this device.
    const bool rndv = synchronous || total_bytes > endpoint_->eager_limit();
    counters_->add(rndv ? prof::Ctr::RndvSends : prof::Ctr::EagerSends);
    if (prof::Hooks* hooks = prof::hooks()) {
      hooks->on_send_begin(prof::MsgInfo{dst.value, tag, context, total_bytes});
    }
    auto request = std::make_shared<DevRequestState>(DevRequestState::Kind::Send, sink_,
                                                     nullptr, this);
    const ProcessID self = self_;
    auto on_done = [request, self, tag, context](const mxsim::MxStatus& status) {
      DevStatus dev;
      dev.source = self;
      dev.tag = tag;
      dev.context = context;
      dev.static_bytes = status.chunk_sizes.empty() ? status.total_bytes : status.chunk_sizes[0];
      request->complete(dev);
    };
    const mxsim::MatchBits match = pack_match(context, tag);
    mxsim::MxRequest mx = synchronous ? endpoint_->issend(segments, dst.value, match)
                                      : endpoint_->isend(segments, dst.value, match);
    mx->on_complete(on_done);
    return request;
  }

  ProcessID self_{};
  std::shared_ptr<mxsim::Endpoint> endpoint_;
  std::shared_ptr<prof::Counters> counters_ = prof::Registry::global().create("mxdev");
  CompletionQueue completions_;
  /// Where hooked completions publish: our own queue, unless a composite
  /// parent (hybdev) redirected us into its merged queue.
  CompletionSink* sink_ = &completions_;

  // Posted-receive bookkeeping for cancel(); entries are dropped on match.
  std::mutex recv_map_mu_;
  std::unordered_map<const DevRequestState*, mxsim::MxRequest> posted_recvs_;
};

}  // namespace

std::unique_ptr<Device> make_mxdev() { return std::make_unique<MxDevice>(); }

}  // namespace mpcx::xdev
