// ProcessID — the xdev layer's rank-free process identity (paper Sec. III-A).
//
// xdev deliberately does not know about MPI ranks, groups or communicators;
// it only addresses processes by an opaque unique id. The mpdev layer above
// maps ranks onto ProcessIDs.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace mpcx::xdev {

/// Wildcard tag accepted by recv/probe (device-level MPI.ANY_TAG).
inline constexpr int kAnyTag = -1;

struct ProcessID {
  std::uint64_t value = 0;

  /// Wildcard id used by irecv/probe to accept any source process
  /// (the device-level carrier of MPI.ANY_SOURCE).
  static constexpr std::uint64_t kAnyValue = ~std::uint64_t{0};

  static ProcessID any() { return ProcessID{kAnyValue}; }

  bool is_any() const { return value == kAnyValue; }

  friend bool operator==(const ProcessID&, const ProcessID&) = default;
  friend auto operator<=>(const ProcessID&, const ProcessID&) = default;

  std::string to_string() const {
    return is_any() ? "ANY" : "pid:" + std::to_string(value);
  }
};

}  // namespace mpcx::xdev

template <>
struct std::hash<mpcx::xdev::ProcessID> {
  std::size_t operator()(const mpcx::xdev::ProcessID& id) const noexcept {
    return std::hash<std::uint64_t>{}(id.value);
  }
};
