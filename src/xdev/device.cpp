#include "xdev/device.hpp"

#include <cctype>
#include <cerrno>
#include <cstdlib>
#include <cstring>

#include "prof/counters.hpp"
#include "prof/trace.hpp"
#include "support/logging.hpp"

namespace mpcx::xdev {
namespace {

/// Pack a segment-list send into a staging buffer whose static region holds
/// the literal wire bytes [section header | payload segments].
std::unique_ptr<buf::Buffer> stage_segments(std::span<const std::byte> header,
                                            std::span<const SendSegment> segments,
                                            std::size_t header_reserve) {
  std::size_t total = header.size();
  for (const SendSegment& seg : segments) total += seg.size;
  auto staging = std::make_unique<buf::Buffer>(total, header_reserve);
  std::span<std::byte> dst = staging->prepare_static(total);
  std::memcpy(dst.data(), header.data(), header.size());
  std::size_t at = header.size();
  for (const SendSegment& seg : segments) {
    if (seg.size != 0) std::memcpy(dst.data() + at, seg.data, seg.size);
    at += seg.size;
  }
  staging->prepare_dynamic(0);
  staging->seal_received();
  return staging;
}

}  // namespace

std::size_t resolve_eager_threshold(std::size_t configured, prof::Counters* counters) {
  std::size_t effective = configured;
  if (const char* env = std::getenv("MPCX_EAGER_THRESHOLD")) {
    char* end = nullptr;
    errno = 0;
    const unsigned long long parsed = std::strtoull(env, &end, 10);
    constexpr unsigned long long kMax = 1ull << 30;  // 1 GiB sanity ceiling
    if (errno != 0 || end == env || *end != '\0' || parsed == 0 || parsed > kMax) {
      log::warn("MPCX_EAGER_THRESHOLD=", env,
                " is not a byte count in [1, 2^30]; keeping ", configured);
    } else {
      effective = static_cast<std::size_t>(parsed);
    }
  }
  if (counters != nullptr) {
    counters->record_max(prof::Ctr::EagerThreshold, effective);
  }
  return effective;
}

void Device::send(buf::Buffer& buffer, ProcessID dst, int tag, int context) {
  prof::Span span("send", "xdev");
  isend(buffer, dst, tag, context)->wait();
}

void Device::ssend(buf::Buffer& buffer, ProcessID dst, int tag, int context) {
  prof::Span span("ssend", "xdev");
  issend(buffer, dst, tag, context)->wait();
}

DevStatus Device::recv(buf::Buffer& buffer, ProcessID src, int tag, int context) {
  prof::Span span("recv", "xdev");
  return irecv(buffer, src, tag, context)->wait();
}

// ---- zero-copy fallbacks ---------------------------------------------------------
//
// Devices without a native segment-list path stage the wire bytes in an
// owned buffer attached to the request; semantics (matching, completion,
// truncation) are identical to the Buffer entry points.

DevRequest Device::isend_segments(std::span<const std::byte> header,
                                  std::span<const SendSegment> segments, ProcessID dst,
                                  int tag, int context) {
  auto staging = stage_segments(header, segments, static_cast<std::size_t>(send_overhead()));
  DevRequest request = isend(*staging, dst, tag, context);
  request->attach_buffer(std::move(staging));
  return request;
}

DevRequest Device::issend_segments(std::span<const std::byte> header,
                                   std::span<const SendSegment> segments, ProcessID dst,
                                   int tag, int context) {
  auto staging = stage_segments(header, segments, static_cast<std::size_t>(send_overhead()));
  DevRequest request = issend(*staging, dst, tag, context);
  request->attach_buffer(std::move(staging));
  return request;
}

void Device::send_segments(std::span<const std::byte> header,
                           std::span<const SendSegment> segments, ProcessID dst, int tag,
                           int context) {
  prof::Span span("send", "xdev");
  DevRequest request = isend_segments(header, segments, dst, tag, context);
  request->wait();
  // The borrowed payload spans go out of the device's hands here; a timed-out
  // wait may have left an in-flight write on them.
  await_device_release(request);
}

void Device::ssend_segments(std::span<const std::byte> header,
                            std::span<const SendSegment> segments, ProcessID dst, int tag,
                            int context) {
  prof::Span span("ssend", "xdev");
  DevRequest request = issend_segments(header, segments, dst, tag, context);
  request->wait();
  await_device_release(request);
}

DevRequest Device::irecv_direct(const RecvSpan& dst, ProcessID src, int tag, int context) {
  auto staging = std::make_unique<buf::Buffer>(buf::Buffer::kSectionHeaderBytes +
                                               dst.payload_capacity);
  DevRequest request = irecv(*staging, src, tag, context);
  request->attach_buffer(std::move(staging));
  return request;
}

DevStatus Device::recv_direct(const RecvSpan& dst, ProcessID src, int tag, int context) {
  prof::Span span("recv", "xdev");
  DevRequest request = irecv_direct(dst, src, tag, context);
  DevStatus status = request->wait();
  await_device_release(request);
  return status;
}

void Device::redirect_completions(CompletionSink* sink) {
  (void)sink;
  throw DeviceError("device does not support completion redirection");
}

bool Device::post_shared_recv(const DevRequest& request, buf::Buffer* buffer,
                              const RecvSpan* span, ProcessID src, int tag, int context) {
  (void)request;
  (void)buffer;
  (void)span;
  (void)src;
  (void)tag;
  (void)context;
  throw DeviceError("device does not support shared receives");
}

// Defined in tcpdev.cpp / mxdev.cpp / shmdev.cpp / hybdev.cpp respectively.
std::unique_ptr<Device> make_tcpdev();
std::unique_ptr<Device> make_mxdev();
std::unique_ptr<Device> make_shmdev();
std::unique_ptr<Device> make_hybdev();

namespace {

/// One registry drives both dispatch and the factory's error message, so
/// the "expected ..." list can never go stale against the devices actually
/// registered. "niodev" stays as the paper-name alias for tcpdev.
struct DeviceEntry {
  const char* name;
  std::unique_ptr<Device> (*make)();
};

constexpr DeviceEntry kDevices[] = {
    {"tcpdev", make_tcpdev},
    {"niodev", make_tcpdev},
    {"mxdev", make_mxdev},
    {"shmdev", make_shmdev},
    {"hybdev", make_hybdev},
};

}  // namespace

std::string normalize_device_name(const std::string& name) {
  std::size_t begin = 0;
  std::size_t end = name.size();
  while (begin < end && std::isspace(static_cast<unsigned char>(name[begin]))) ++begin;
  while (end > begin && std::isspace(static_cast<unsigned char>(name[end - 1]))) --end;
  std::string out = name.substr(begin, end - begin);
  for (char& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

const std::string& registered_device_names() {
  static const std::string names = [] {
    std::string joined;
    for (const DeviceEntry& entry : kDevices) {
      if (!joined.empty()) joined += ", ";
      joined += entry.name;
    }
    return joined;
  }();
  return names;
}

std::unique_ptr<Device> new_device(const std::string& name) {
  const std::string normalized = normalize_device_name(name);
  for (const DeviceEntry& entry : kDevices) {
    if (normalized == entry.name) return entry.make();
  }
  throw DeviceError("unknown device: " + name + " (expected one of: " +
                    registered_device_names() + ")");
}

std::string node_of_endpoint(const DeviceConfig& config, std::size_t index) {
  if (const char* env = std::getenv("MPCX_NODE_ID")) {
    char* end = nullptr;
    errno = 0;
    const long n = std::strtol(env, &end, 10);
    if (errno == 0 && end != env && *end == '\0' && n > 0) {
      return "sim" + std::to_string(index % static_cast<std::size_t>(n));
    }
    log::warn("MPCX_NODE_ID=", env, " is not a positive node count; ignoring");
  }
  if (index < config.world.size()) {
    const EndpointInfo& info = config.world[index];
    if (!info.node.empty()) return info.node;
    if (!info.host.empty()) return info.host;
  }
  return "local";
}

}  // namespace mpcx::xdev
