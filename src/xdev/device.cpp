#include "xdev/device.hpp"

#include "prof/trace.hpp"

namespace mpcx::xdev {

void Device::send(buf::Buffer& buffer, ProcessID dst, int tag, int context) {
  prof::Span span("send", "xdev");
  isend(buffer, dst, tag, context)->wait();
}

void Device::ssend(buf::Buffer& buffer, ProcessID dst, int tag, int context) {
  prof::Span span("ssend", "xdev");
  issend(buffer, dst, tag, context)->wait();
}

DevStatus Device::recv(buf::Buffer& buffer, ProcessID src, int tag, int context) {
  prof::Span span("recv", "xdev");
  return irecv(buffer, src, tag, context)->wait();
}

// Defined in tcpdev.cpp / mxdev.cpp / shmdev.cpp respectively.
std::unique_ptr<Device> make_tcpdev();
std::unique_ptr<Device> make_mxdev();
std::unique_ptr<Device> make_shmdev();

std::unique_ptr<Device> new_device(const std::string& name) {
  if (name == "tcpdev" || name == "niodev") return make_tcpdev();
  if (name == "mxdev") return make_mxdev();
  if (name == "shmdev") return make_shmdev();
  throw DeviceError("unknown device: " + name + " (expected tcpdev, mxdev or shmdev)");
}

}  // namespace mpcx::xdev
