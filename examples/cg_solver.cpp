// cg_solver — distributed conjugate-gradient solve of a 1D Poisson system.
//
//   ./cg_solver [global_n] [nprocs] [device]
//
// The textbook distributed-memory CG loop: the tridiagonal Laplacian
// (-1, 2, -1) is row-partitioned across ranks; each matrix-vector product
// needs one halo element from each neighbour (Sendrecv), and each dot
// product is an Allreduce. Solves A x = b with b = A * ones, so the exact
// solution is all-ones and the example can verify itself.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/cluster.hpp"
#include "core/intracomm.hpp"

namespace {

/// y = A x for the local rows, using halo values from the neighbours.
void apply_laplacian(const mpcx::Intracomm& comm, const std::vector<double>& x,
                     std::vector<double>& y) {
  const int rank = comm.Rank();
  const int n = comm.Size();
  const int left = rank > 0 ? rank - 1 : mpcx::PROC_NULL;
  const int right = rank + 1 < n ? rank + 1 : mpcx::PROC_NULL;
  const int local = static_cast<int>(x.size());

  double halo_left = 0.0, halo_right = 0.0;
  // Exchange boundary values with both neighbours.
  comm.Sendrecv(&x[0], 0, 1, mpcx::types::DOUBLE(), left, 0, &halo_right, 0, 1,
                mpcx::types::DOUBLE(), right, 0);
  comm.Sendrecv(&x[static_cast<std::size_t>(local) - 1], 0, 1, mpcx::types::DOUBLE(), right, 1,
                &halo_left, 0, 1, mpcx::types::DOUBLE(), left, 1);

  for (int i = 0; i < local; ++i) {
    const double xm = i > 0 ? x[static_cast<std::size_t>(i) - 1] : halo_left;
    const double xp = i + 1 < local ? x[static_cast<std::size_t>(i) + 1] : halo_right;
    y[static_cast<std::size_t>(i)] = 2.0 * x[static_cast<std::size_t>(i)] - xm - xp;
  }
}

double dot(const mpcx::Intracomm& comm, const std::vector<double>& a,
           const std::vector<double>& b) {
  double local = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) local += a[i] * b[i];
  double global = 0.0;
  comm.Allreduce(&local, 0, &global, 0, 1, mpcx::types::DOUBLE(), mpcx::ops::SUM());
  return global;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpcx;
  const int global_n = argc > 1 ? std::atoi(argv[1]) : 4096;
  const int nprocs = argc > 2 ? std::atoi(argv[2]) : 4;
  cluster::Options options;
  if (argc > 3) options.device = argv[3];

  std::printf("cg_solver: 1D Poisson, n=%d over %d ranks (%s)\n", global_n, nprocs,
              options.device.c_str());

  cluster::launch(nprocs, [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int local = global_n / comm.Size();

    // b = A * ones  (so x* = ones).
    std::vector<double> ones(static_cast<std::size_t>(local), 1.0);
    std::vector<double> b(static_cast<std::size_t>(local));
    apply_laplacian(comm, ones, b);

    std::vector<double> x(static_cast<std::size_t>(local), 0.0);
    std::vector<double> r = b;            // r = b - A*0
    std::vector<double> p = r;
    std::vector<double> ap(static_cast<std::size_t>(local));

    double rr = dot(comm, r, r);
    const double rr0 = rr;
    int iterations = 0;
    const double start = World::Wtime();
    for (; iterations < 5000 && rr > 1e-20 * rr0; ++iterations) {
      apply_laplacian(comm, p, ap);
      const double alpha = rr / dot(comm, p, ap);
      for (std::size_t i = 0; i < x.size(); ++i) {
        x[i] += alpha * p[i];
        r[i] -= alpha * ap[i];
      }
      const double rr_new = dot(comm, r, r);
      const double beta = rr_new / rr;
      rr = rr_new;
      for (std::size_t i = 0; i < p.size(); ++i) p[i] = r[i] + beta * p[i];
    }
    const double seconds = World::Wtime() - start;

    // Verify against the known all-ones solution.
    double err_local = 0.0;
    for (const double v : x) err_local = std::max(err_local, std::abs(v - 1.0));
    double err = 0.0;
    comm.Allreduce(&err_local, 0, &err, 0, 1, types::DOUBLE(), ops::MAX());
    if (comm.Rank() == 0) {
      std::printf("converged in %d iterations, %.3f s; max |x - 1| = %.2e -> %s\n", iterations,
                  seconds, err, err < 1e-6 ? "OK" : "FAILED");
    }
  }, options);
  return 0;
}
