// nbody — mini Gadget: direct-sum gravitational N-body with a ring
// exchange of particle blocks (the paper's flagship application, Sec. VI,
// scaled to laptop size; see DESIGN.md §4.8 for the substitution).
//
//   ./nbody [particles_per_rank] [steps] [nprocs] [device]
//
// Each rank owns a block of particles. Every step the blocks travel around
// the ring (Sendrecv_replace), each rank accumulating forces from every
// block, followed by a leapfrog update and a global kinetic-energy
// Allreduce — the same communication skeleton as Gadget-2's domain sweep.
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/cluster.hpp"
#include "core/intracomm.hpp"

namespace {

constexpr double kDt = 1e-3;
constexpr double kSoftening = 1e-2;

struct Block {
  std::vector<double> px, py, pz, mass;
  explicit Block(std::size_t n) : px(n), py(n), pz(n), mass(n, 1.0) {}
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mpcx;
  const int per_rank = argc > 1 ? std::atoi(argv[1]) : 512;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 20;
  const int nprocs = argc > 3 ? std::atoi(argv[3]) : 4;
  cluster::Options options;
  if (argc > 4) options.device = argv[4];

  std::printf("nbody: %d ranks x %d particles, %d steps, device %s\n", nprocs, per_rank, steps,
              options.device.c_str());
  const auto wall_start = std::chrono::steady_clock::now();

  cluster::launch(nprocs, [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int rank = comm.Rank();
    const int n = comm.Size();
    const int right = (rank + 1) % n;
    const int left = (rank - 1 + n) % n;
    const std::size_t count = static_cast<std::size_t>(per_rank);

    Block mine(count);
    for (std::size_t i = 0; i < count; ++i) {
      const double t = static_cast<double>(i + 1) * (rank + 1);
      mine.px[i] = std::sin(t) * 10.0;
      mine.py[i] = std::cos(t * 1.3) * 10.0;
      mine.pz[i] = std::sin(t * 0.7) * 10.0;
    }
    std::vector<double> vx(count), vy(count), vz(count);

    for (int step = 0; step < steps; ++step) {
      std::vector<double> ax(count), ay(count), az(count);
      Block travelling = mine;
      for (int hop = 0; hop < n; ++hop) {
        for (std::size_t i = 0; i < count; ++i) {
          double fx = 0, fy = 0, fz = 0;
          for (std::size_t j = 0; j < count; ++j) {
            const double dx = travelling.px[j] - mine.px[i];
            const double dy = travelling.py[j] - mine.py[i];
            const double dz = travelling.pz[j] - mine.pz[i];
            const double r2 = dx * dx + dy * dy + dz * dz + kSoftening;
            const double inv = travelling.mass[j] / (r2 * std::sqrt(r2));
            fx += dx * inv;
            fy += dy * inv;
            fz += dz * inv;
          }
          ax[i] += fx;
          ay[i] += fy;
          az[i] += fz;
        }
        if (hop + 1 < n) {
          for (std::vector<double>* field :
               {&travelling.px, &travelling.py, &travelling.pz, &travelling.mass}) {
            comm.Sendrecv_replace(field->data(), 0, per_rank, types::DOUBLE(), right, step, left,
                                  step);
          }
        }
      }
      double kinetic = 0.0;
      for (std::size_t i = 0; i < count; ++i) {
        vx[i] += ax[i] * kDt;
        vy[i] += ay[i] * kDt;
        vz[i] += az[i] * kDt;
        mine.px[i] += vx[i] * kDt;
        mine.py[i] += vy[i] * kDt;
        mine.pz[i] += vz[i] * kDt;
        kinetic += 0.5 * (vx[i] * vx[i] + vy[i] * vy[i] + vz[i] * vz[i]);
      }
      double total_kinetic = 0.0;
      comm.Allreduce(&kinetic, 0, &total_kinetic, 0, 1, types::DOUBLE(), ops::SUM());
      if (rank == 0 && (step + 1) % 10 == 0) {
        std::printf("step %4d  total kinetic energy %.6f\n", step + 1, total_kinetic);
      }
    }
  }, options);

  const double seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();
  std::printf("nbody done: %.2f s (%.2f steps/s)\n", seconds, steps / seconds);
  return 0;
}
