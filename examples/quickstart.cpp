// Quickstart: the MPCX basics in one file.
//
//   ./quickstart [nprocs] [device]
//
// Launches an in-process cluster (default 4 ranks over mxdev; pass
// "tcpdev" to run over real loopback TCP) and walks through the core API:
// point-to-point send/receive, non-blocking requests, wildcards, and a few
// collectives. Every rank prints what it saw.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <numeric>
#include <vector>

#include "core/cluster.hpp"
#include "core/intracomm.hpp"

int main(int argc, char** argv) {
  using namespace mpcx;
  const int nprocs = argc > 1 ? std::atoi(argv[1]) : 4;
  cluster::Options options;
  if (argc > 2) options.device = argv[2];

  std::printf("MPCX quickstart: %d ranks over %s\n", nprocs, options.device.c_str());

  cluster::launch(nprocs, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int rank = comm.Rank();
    const int size = comm.Size();

    // 1. Point-to-point ring: pass a counter around and increment it.
    int token = 0;
    if (rank == 0) {
      token = 1000;
      comm.Send(&token, 0, 1, types::INT(), 1 % size, /*tag=*/1);
      Status st = comm.Recv(&token, 0, 1, types::INT(), size - 1, 1);
      std::printf("[rank 0] token went around the ring: %d (from rank %d)\n", token,
                  st.Get_source());
    } else {
      comm.Recv(&token, 0, 1, types::INT(), rank - 1, 1);
      ++token;
      comm.Send(&token, 0, 1, types::INT(), (rank + 1) % size, 1);
    }

    // 2. Non-blocking + wildcards: receive from anyone, any tag.
    if (rank == 0) {
      std::vector<int> inbox(static_cast<std::size_t>(size - 1));
      std::vector<Request> recvs;
      for (int i = 0; i < size - 1; ++i) {
        recvs.push_back(
            comm.Irecv(&inbox[static_cast<std::size_t>(i)], 0, 1, types::INT(), ANY_SOURCE,
                       ANY_TAG));
      }
      auto statuses = Request::Waitall(recvs);
      int sum = std::accumulate(inbox.begin(), inbox.end(), 0);
      std::printf("[rank 0] got %zu wildcard messages, payload sum %d\n", statuses.size(), sum);
    } else {
      int payload = rank * rank;
      comm.Send(&payload, 0, 1, types::INT(), 0, /*tag=*/100 + rank);
    }

    // 3. Collectives: broadcast a message, then reduce a result.
    char motto[32] = {};
    if (rank == 0) std::strcpy(motto, "thread-safe messaging");
    comm.Bcast(motto, 0, 32, types::CHAR(), 0);

    double contribution = 1.0 / (rank + 1);
    double total = 0.0;
    comm.Allreduce(&contribution, 0, &total, 0, 1, types::DOUBLE(), ops::SUM());
    std::printf("[rank %d] motto='%s', harmonic sum H_%d = %.4f\n", rank, motto, size, total);

    // 4. Serialized objects through the dynamic section.
    if (rank == 0) {
      comm.send_object(std::string("object transport works"), 1 % size, 5);
    } else if (rank == 1) {
      const auto text = comm.recv_object<std::string>(0, 5);
      std::printf("[rank 1] received object: \"%s\"\n", text.c_str());
    }

    comm.Barrier();
  }, options);

  std::printf("quickstart done.\n");
  return 0;
}
