// multithreaded — the paper's headline property in action
// (MPI_THREAD_MULTIPLE, Sec. IV-B).
//
//   ./multithreaded [threads_per_rank] [nprocs]
//
// Every rank starts several worker threads; EVERY thread communicates
// concurrently through the same communicator with no external locking —
// the hybrid "threads inside ranks" style for SMP clusters that motivates
// the paper (as opposed to MPI+OpenMP with MPI calls funneled through one
// thread). Each worker ping-pongs with its mirror thread on the next rank,
// and one designated thread per rank additionally joins a collective.
#include <cstdio>
#include <cstdlib>
#include <thread>
#include <vector>

#include "core/cluster.hpp"
#include "core/intracomm.hpp"

int main(int argc, char** argv) {
  using namespace mpcx;
  const int threads_per_rank = argc > 1 ? std::atoi(argv[1]) : 4;
  const int nprocs = argc > 2 ? std::atoi(argv[2]) : 2;
  constexpr int kRounds = 200;

  std::printf("multithreaded: %d ranks x %d communicating threads (THREAD_MULTIPLE)\n", nprocs,
              threads_per_rank);

  cluster::launch(nprocs, [&](World& world) {
    const ThreadLevel provided = world.Init_thread(ThreadLevel::Multiple);
    if (provided != ThreadLevel::Multiple) {
      std::printf("unexpected thread level!\n");
      return;
    }
    Intracomm& comm = world.COMM_WORLD();
    const int rank = comm.Rank();
    const int n = comm.Size();

    std::vector<std::thread> workers;
    std::vector<long> sums(static_cast<std::size_t>(threads_per_rank), 0);
    for (int t = 0; t < threads_per_rank; ++t) {
      workers.emplace_back([&, t] {
        // Thread t everywhere shares tag space t; mirror threads pair up
        // ring-wise. All threads use the SAME communicator concurrently.
        const int right = (rank + 1) % n;
        const int left = (rank - 1 + n) % n;
        long sum = 0;
        for (int round = 0; round < kRounds; ++round) {
          int payload = rank * 1000 + t;
          int incoming = -1;
          comm.Sendrecv(&payload, 0, 1, types::INT(), right, /*tag=*/t, &incoming, 0, 1,
                        types::INT(), left, t);
          sum += incoming;
        }
        sums[static_cast<std::size_t>(t)] = sum;
      });
    }
    for (std::thread& worker : workers) worker.join();

    long rank_total = 0;
    for (const long s : sums) rank_total += s;
    long world_total = 0;
    comm.Allreduce(&rank_total, 0, &world_total, 0, 1, types::LONG(), ops::SUM());

    // Every round, every thread receives left*1000 + t; closed form:
    long expected = 0;
    for (int r = 0; r < n; ++r) {
      for (int t = 0; t < threads_per_rank; ++t) expected += kRounds * (r * 1000L + t);
    }
    if (rank == 0) {
      std::printf("world checksum: %ld (expected %ld) -> %s\n", world_total, expected,
                  world_total == expected ? "OK" : "MISMATCH");
    }
  });
  return 0;
}
