// task_farm — master/worker with serialized-object messages.
//
//   ./task_farm [tasks] [nprocs]
//
// The mpiJava ecosystem leaned on Java object serialization for irregular,
// structured messages; MPCX's dynamic section plus the Serializable
// concept plays the same role. Rank 0 farms out WorkItem objects (each a
// string plus parameters), workers reply with Result objects, and the
// master hands out new work as results come back — the classic elastic
// task farm, entirely over object transport with ANY_SOURCE matching.
#include <cstdio>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

#include "bufx/serializer.hpp"
#include "core/cluster.hpp"
#include "core/intracomm.hpp"

namespace {

constexpr int kTagWork = 1;
constexpr int kTagResult = 2;
constexpr int kTagStop = 3;

struct WorkItem {
  int id = 0;
  std::string text;
  int rounds = 0;

  void serialize(mpcx::buf::ByteSink& sink) const {
    sink.put(id);
    sink.put_string(text);
    sink.put(rounds);
  }
  static WorkItem deserialize(mpcx::buf::ByteSource& source) {
    WorkItem item;
    item.id = source.get<int>();
    item.text = source.get_string();
    item.rounds = source.get<int>();
    return item;
  }
};

struct Result {
  int id = 0;
  std::uint64_t digest = 0;

  void serialize(mpcx::buf::ByteSink& sink) const {
    sink.put(id);
    sink.put(digest);
  }
  static Result deserialize(mpcx::buf::ByteSource& source) {
    Result result;
    result.id = source.get<int>();
    result.digest = source.get<std::uint64_t>();
    return result;
  }
};

/// The "work": an iterated FNV-1a digest of the task text.
std::uint64_t crunch(const WorkItem& item) {
  std::uint64_t digest = 1469598103934665603ull;
  for (int round = 0; round < item.rounds; ++round) {
    for (const char c : item.text) {
      digest = (digest ^ static_cast<std::uint64_t>(c + round)) * 1099511628211ull;
    }
  }
  return digest;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace mpcx;
  const int tasks = argc > 1 ? std::atoi(argv[1]) : 64;
  const int nprocs = argc > 2 ? std::atoi(argv[2]) : 4;

  std::printf("task_farm: %d tasks over %d ranks (1 master + %d workers)\n", tasks, nprocs,
              nprocs - 1);

  cluster::launch(nprocs, [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int rank = comm.Rank();
    const int workers = comm.Size() - 1;

    if (rank == 0) {
      // Master: prime one task per worker, then re-feed on each result.
      std::map<int, std::uint64_t> results;
      int next_task = 0;
      auto make_task = [&] {
        WorkItem item;
        item.id = next_task++;
        item.text = "task-" + std::to_string(item.id) + "-payload";
        item.rounds = 2000 + 37 * item.id;
        return item;
      };
      for (int w = 1; w <= workers && next_task < tasks; ++w) {
        comm.send_object(make_task(), w, kTagWork);
      }
      int outstanding = std::min(workers, tasks);
      while (outstanding > 0) {
        Status status;
        const Result result = comm.recv_object<Result>(ANY_SOURCE, kTagResult, &status);
        results[result.id] = result.digest;
        if (next_task < tasks) {
          comm.send_object(make_task(), status.Get_source(), kTagWork);
        } else {
          --outstanding;
        }
      }
      for (int w = 1; w <= workers; ++w) {
        comm.send_object(WorkItem{}, w, kTagStop);
      }
      std::printf("master collected %zu results; digest of task 0 = %016llx\n", results.size(),
                  static_cast<unsigned long long>(results.at(0)));
    } else {
      int done = 0;
      for (;;) {
        const Status probe = comm.Probe(0, ANY_TAG);
        if (probe.Get_tag() == kTagStop) {
          (void)comm.recv_object<WorkItem>(0, kTagStop);
          break;
        }
        const WorkItem item = comm.recv_object<WorkItem>(0, kTagWork);
        comm.send_object(Result{item.id, crunch(item)}, 0, kTagResult);
        ++done;
      }
      std::printf("worker %d processed %d tasks\n", rank, done);
    }
  });
  return 0;
}
