// heat2d — 2D heat diffusion on a process grid with halo exchange.
//
//   ./heat2d [grid_n] [steps] [nprocs]
//
// The domain-decomposition workload the paper's introduction motivates:
// a Cartesian communicator lays ranks on a 2D grid; every step each rank
// exchanges boundary rows AND columns with its four neighbours. Row halos
// are contiguous; COLUMN halos use the VECTOR derived datatype — exactly
// the paper's Sec. IV-C example of sending one matrix column with
// blocklength 1 and stride n through the buffering layer.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "core/cartcomm.hpp"
#include "core/cluster.hpp"

namespace {

struct Local {
  int rows, cols;  // interior size
  std::vector<double> cells;  // (rows+2) x (cols+2) with halo ring

  double& at(int r, int c) { return cells[static_cast<std::size_t>(r) * (cols + 2) + c]; }
  double at(int r, int c) const { return cells[static_cast<std::size_t>(r) * (cols + 2) + c]; }
};

}  // namespace

int main(int argc, char** argv) {
  using namespace mpcx;
  const int grid_n = argc > 1 ? std::atoi(argv[1]) : 256;
  const int steps = argc > 2 ? std::atoi(argv[2]) : 50;
  const int nprocs = argc > 3 ? std::atoi(argv[3]) : 4;

  std::printf("heat2d: %dx%d global grid, %d steps, %d ranks\n", grid_n, grid_n, steps, nprocs);

  cluster::launch(nprocs, [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();

    // Build a balanced 2D process grid.
    const std::vector<int> dims = Cartcomm::Dims_create(comm.Size(), std::vector<int>{0, 0});
    const bool periods[2] = {false, false};
    auto cart = comm.Create_cart(dims, periods, /*reorder=*/false);
    if (!cart) return;  // rank outside the grid

    const CartParms parms = cart->Get();
    const int pr = parms.coords[0], pc = parms.coords[1];

    Local local{grid_n / dims[0], grid_n / dims[1], {}};
    local.cells.assign(static_cast<std::size_t>(local.rows + 2) * (local.cols + 2), 0.0);
    // Hot spot in the global top-left corner.
    if (pr == 0 && pc == 0) {
      for (int c = 1; c <= local.cols; ++c) local.at(1, c) = 100.0;
    }

    const ShiftParms ns = cart->Shift(0, 1);  // north/south neighbours
    const ShiftParms we = cart->Shift(1, 1);  // west/east neighbours

    // Column halos travel as a vector datatype: `rows` blocks of 1 element
    // with stride = row pitch (cols + 2) — the paper's matrix-column case.
    const DatatypePtr column = Datatype::vector(static_cast<std::size_t>(local.rows), 1,
                                                local.cols + 2, types::DOUBLE());

    std::vector<double> next = local.cells;
    for (int step = 0; step < steps; ++step) {
      // Row halos (contiguous doubles).
      cart->Sendrecv(&local.at(1, 1), 0, local.cols, types::DOUBLE(), ns.rank_source, 1,
                     &local.at(local.rows + 1, 1), 0, local.cols, types::DOUBLE(), ns.rank_dest,
                     1);
      cart->Sendrecv(&local.at(local.rows, 1), 0, local.cols, types::DOUBLE(), ns.rank_dest, 2,
                     &local.at(0, 1), 0, local.cols, types::DOUBLE(), ns.rank_source, 2);
      // Column halos (vector datatype, 1 item each).
      cart->Sendrecv(&local.at(1, 1), 0, 1, column, we.rank_source, 3, &local.at(1, local.cols + 1),
                     0, 1, column, we.rank_dest, 3);
      cart->Sendrecv(&local.at(1, local.cols), 0, 1, column, we.rank_dest, 4, &local.at(1, 0), 0,
                     1, column, we.rank_source, 4);

      // Jacobi update.
      for (int r = 1; r <= local.rows; ++r) {
        for (int c = 1; c <= local.cols; ++c) {
          next[static_cast<std::size_t>(r) * (local.cols + 2) + c] =
              0.25 * (local.at(r - 1, c) + local.at(r + 1, c) + local.at(r, c - 1) +
                      local.at(r, c + 1));
        }
      }
      // Keep the heat source fixed.
      if (pr == 0 && pc == 0) {
        for (int c = 1; c <= local.cols; ++c) {
          next[static_cast<std::size_t>(1) * (local.cols + 2) + c] = 100.0;
        }
      }
      local.cells.swap(next);
    }

    // Global heat content as a sanity check.
    double local_sum = 0.0;
    for (int r = 1; r <= local.rows; ++r) {
      for (int c = 1; c <= local.cols; ++c) local_sum += local.at(r, c);
    }
    double global_sum = 0.0;
    cart->Reduce(&local_sum, 0, &global_sum, 0, 1, types::DOUBLE(), ops::SUM(), 0);
    if (cart->Rank() == 0) {
      std::printf("grid %dx%d ranks, total heat after %d steps: %.3f\n", parms.dims[0],
                  parms.dims[1], steps, global_sum);
    }
  });
  return 0;
}
