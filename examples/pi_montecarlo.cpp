// pi_montecarlo — the classic first parallel program, MPCX edition.
//
//   ./pi_montecarlo [samples_per_rank] [nprocs]
//
// Every rank throws darts at the unit square with its own deterministic
// LCG stream; a Reduce collects hits at rank 0, which prints the estimate.
// Demonstrates Bcast + Reduce + per-rank work in a dozen lines.
#include <cstdio>
#include <cstdlib>

#include "core/cluster.hpp"
#include "core/intracomm.hpp"

int main(int argc, char** argv) {
  using namespace mpcx;
  const long samples = argc > 1 ? std::atol(argv[1]) : 2'000'000;
  const int nprocs = argc > 2 ? std::atoi(argv[2]) : 4;

  cluster::launch(nprocs, [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();

    // Rank 0 decides the sample count; everyone learns it via Bcast.
    long per_rank = comm.Rank() == 0 ? samples : 0;
    comm.Bcast(&per_rank, 0, 1, types::LONG(), 0);

    std::uint64_t state = 0x9E3779B97F4A7C15ull * (comm.Rank() + 1);
    auto next = [&state] {
      state = state * 6364136223846793005ull + 1442695040888963407ull;
      return static_cast<double>(state >> 11) / static_cast<double>(1ull << 53);
    };

    long hits = 0;
    for (long i = 0; i < per_rank; ++i) {
      const double x = next(), y = next();
      if (x * x + y * y <= 1.0) ++hits;
    }

    long total_hits = 0;
    comm.Reduce(&hits, 0, &total_hits, 0, 1, types::LONG(), ops::SUM(), 0);
    if (comm.Rank() == 0) {
      const double pi = 4.0 * static_cast<double>(total_hits) /
                        (static_cast<double>(per_rank) * comm.Size());
      std::printf("pi ~= %.6f  (%ld samples across %d ranks)\n", pi, per_rank * comm.Size(),
                  comm.Size());
    }
  });
  return 0;
}
