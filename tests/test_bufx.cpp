// Unit tests for the buffering layer (mpjbuf analog): typed sections,
// read/write modes, strided/gather packing, the dynamic (object) section,
// receive-side fill, pooling, and the serializer.
#include <gtest/gtest.h>

#include <cstring>
#include <map>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "bufx/buffer.hpp"
#include "bufx/buffer_pool.hpp"
#include "bufx/serializer.hpp"

namespace mpcx::buf {
namespace {

TEST(Buffer, WriteReadSingleSection) {
  Buffer buffer(1024);
  std::vector<std::int32_t> in(10);
  std::iota(in.begin(), in.end(), 1);
  buffer.write(std::span<const std::int32_t>(in));
  buffer.commit();
  std::vector<std::int32_t> out(10);
  buffer.read(std::span<std::int32_t>(out));
  EXPECT_EQ(in, out);
}

TEST(Buffer, MultipleTypedSectionsInOrder) {
  Buffer buffer(1024);
  const std::vector<double> doubles = {1.5, 2.5};
  const std::vector<std::int16_t> shorts = {7, 8, 9};
  const std::vector<char> chars = {'a', 'b'};
  buffer.write(std::span<const double>(doubles));
  buffer.write(std::span<const std::int16_t>(shorts));
  buffer.write(std::span<const char>(chars));
  buffer.commit();

  auto info = buffer.peek_section();
  ASSERT_TRUE(info);
  EXPECT_EQ(info->type, TypeCode::Double);
  EXPECT_EQ(info->count, 2u);

  std::vector<double> d(2);
  std::vector<std::int16_t> s(3);
  std::vector<char> c(2);
  buffer.read(std::span<double>(d));
  buffer.read(std::span<std::int16_t>(s));
  buffer.read(std::span<char>(c));
  EXPECT_EQ(d, doubles);
  EXPECT_EQ(s, shorts);
  EXPECT_EQ(c, chars);
  EXPECT_FALSE(buffer.peek_section());
}

TEST(Buffer, TypeMismatchThrows) {
  Buffer buffer(256);
  const std::vector<std::int32_t> in = {1, 2, 3};
  buffer.write(std::span<const std::int32_t>(in));
  buffer.commit();
  std::vector<float> wrong(3);
  EXPECT_THROW(buffer.read(std::span<float>(wrong)), BufferError);
}

TEST(Buffer, CountMismatchThrows) {
  Buffer buffer(256);
  const std::vector<std::int32_t> in = {1, 2, 3};
  buffer.write(std::span<const std::int32_t>(in));
  buffer.commit();
  std::vector<std::int32_t> wrong(2);
  EXPECT_THROW(buffer.read(std::span<std::int32_t>(wrong)), BufferError);
}

TEST(Buffer, ModeViolationsThrow) {
  Buffer buffer(256);
  std::vector<std::int32_t> data = {1};
  EXPECT_THROW(buffer.read(std::span<std::int32_t>(data)), BufferError);  // write mode
  buffer.write(std::span<const std::int32_t>(data));
  EXPECT_THROW(buffer.peek_section(), BufferError);  // still write mode
  buffer.commit();
  EXPECT_THROW(buffer.write(std::span<const std::int32_t>(data)), BufferError);  // read mode
  EXPECT_THROW(buffer.commit(), BufferError);  // double commit
}

TEST(Buffer, OverflowThrows) {
  Buffer buffer(64);
  std::vector<double> big(32);  // 256 bytes > 64
  EXPECT_THROW(buffer.write(std::span<const double>(big)), BufferError);
}

TEST(Buffer, ClearResetsForReuse) {
  Buffer buffer(256);
  const std::vector<std::int32_t> first = {1, 2};
  buffer.write(std::span<const std::int32_t>(first));
  buffer.commit();
  buffer.clear();
  EXPECT_TRUE(buffer.in_write_mode());
  const std::vector<std::int64_t> second = {10, 20, 30};
  buffer.write(std::span<const std::int64_t>(second));
  buffer.commit();
  std::vector<std::int64_t> out(3);
  buffer.read(std::span<std::int64_t>(out));
  EXPECT_EQ(out, second);
}

TEST(Buffer, StridedRoundTripMatrixColumn) {
  // The paper's Sec. IV-C example: column of a 4x4 matrix, blocklength 1,
  // stride 4.
  Buffer buffer(256);
  std::vector<float> matrix(16);
  std::iota(matrix.begin(), matrix.end(), 0.0f);
  buffer.write_strided(matrix.data(), /*blocks=*/4, /*blocklen=*/1, /*stride=*/4);
  buffer.commit();
  std::vector<float> column(4);
  buffer.read(std::span<float>(column));
  EXPECT_EQ(column, (std::vector<float>{0.0f, 4.0f, 8.0f, 12.0f}));
}

TEST(Buffer, StridedScatterInverse) {
  Buffer buffer(256);
  const std::vector<float> column = {1, 2, 3, 4};
  buffer.write(std::span<const float>(column));
  buffer.commit();
  std::vector<float> matrix(16, 0.0f);
  buffer.read_strided(matrix.data(), 4, 1, 4);
  for (int i = 0; i < 4; ++i) EXPECT_EQ(matrix[static_cast<std::size_t>(i) * 4], column[i]);
}

TEST(Buffer, GatherScatterOffsets) {
  Buffer buffer(256);
  std::vector<std::int32_t> source = {0, 10, 20, 30, 40, 50};
  const std::vector<std::ptrdiff_t> offsets = {5, 0, 3};
  buffer.write_gather(source.data(), std::span<const std::ptrdiff_t>(offsets));
  buffer.commit();
  std::vector<std::int32_t> landed(6, -1);
  buffer.read_scatter(landed.data(), std::span<const std::ptrdiff_t>(offsets));
  EXPECT_EQ(landed[5], 50);
  EXPECT_EQ(landed[0], 0);
  EXPECT_EQ(landed[3], 30);
}

TEST(Buffer, ObjectsThroughDynamicSection) {
  Buffer buffer(64);
  buffer.write_object(std::string("hello"));
  buffer.write_object(std::vector<int>{1, 2, 3});
  buffer.commit();
  EXPECT_EQ(buffer.objects_remaining(), 2u);
  EXPECT_EQ(buffer.read_object<std::string>(), "hello");
  EXPECT_EQ(buffer.read_object<std::vector<int>>(), (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(buffer.objects_remaining(), 0u);
  EXPECT_THROW(buffer.read_object<int>(), BufferError);
}

TEST(Buffer, MixedStaticAndDynamic) {
  Buffer buffer(256);
  const std::vector<double> nums = {3.25};
  buffer.write(std::span<const double>(nums));
  buffer.write_object(std::string("tail"));
  buffer.commit();
  std::vector<double> out(1);
  buffer.read(std::span<double>(out));
  EXPECT_EQ(out[0], 3.25);
  EXPECT_EQ(buffer.read_object<std::string>(), "tail");
}

TEST(Buffer, ReceivePathRoundTrip) {
  // Sender packs; receiver fills raw regions from the "wire" and seals.
  Buffer sender(256, /*header_reserve=*/40);
  const std::vector<std::int32_t> payload = {4, 5, 6};
  sender.write(std::span<const std::int32_t>(payload));
  sender.write_object(std::string("obj"));
  sender.commit();

  Buffer receiver(256);
  auto sdst = receiver.prepare_static(sender.static_size());
  std::memcpy(sdst.data(), sender.static_payload().data(), sender.static_size());
  auto ddst = receiver.prepare_dynamic(sender.dynamic_size());
  std::memcpy(ddst.data(), sender.dynamic_payload().data(), sender.dynamic_size());
  receiver.seal_received();

  std::vector<std::int32_t> out(3);
  receiver.read(std::span<std::int32_t>(out));
  EXPECT_EQ(out, payload);
  EXPECT_EQ(receiver.read_object<std::string>(), "obj");
}

TEST(Buffer, SealRejectsCorruptDynamicPrefix) {
  Buffer receiver(64);
  auto ddst = receiver.prepare_dynamic(4);
  // Length prefix says 100 bytes follow, but nothing does.
  store_wire<std::uint32_t>(ddst.data(), 100);
  EXPECT_THROW(receiver.seal_received(), BufferError);
}

TEST(Buffer, PrepareStaticOverCapacityThrows) {
  Buffer receiver(64);
  EXPECT_THROW(receiver.prepare_static(65), BufferError);
}

TEST(Buffer, HeaderReserveIsContiguousWithStatic) {
  Buffer buffer(64, 16);
  const std::vector<std::int8_t> data = {1, 2, 3};
  buffer.write(std::span<const std::int8_t>(data));
  buffer.commit();
  auto framed = buffer.framed_payload();
  EXPECT_EQ(framed.size(), 16u + buffer.static_size());
  EXPECT_EQ(buffer.header_region().size(), 16u);
}

// ---- parameterized: section sizes across all primitive types ------------------

template <typename T>
class BufferTypedTest : public ::testing::Test {};

using AllPrimitives =
    ::testing::Types<std::int8_t, char, std::int16_t, std::int32_t, std::int64_t, float, double,
                     bool>;
TYPED_TEST_SUITE(BufferTypedTest, AllPrimitives);

TYPED_TEST(BufferTypedTest, RoundTripVariousCounts) {
  // unique_ptr<T[]> rather than vector<T>: vector<bool> has no data().
  for (const std::size_t count : {0u, 1u, 2u, 7u, 64u, 1000u}) {
    Buffer buffer(count * sizeof(TypeParam) + 64);
    auto in = std::make_unique<TypeParam[]>(count);
    for (std::size_t i = 0; i < count; ++i) in[i] = static_cast<TypeParam>(i % 120);
    buffer.write(std::span<const TypeParam>(in.get(), count));
    buffer.commit();
    auto out = std::make_unique<TypeParam[]>(count);
    buffer.read(std::span<TypeParam>(out.get(), count));
    for (std::size_t i = 0; i < count; ++i) {
      EXPECT_EQ(in[i], out[i]) << "count=" << count << " i=" << i;
    }
  }
}

// ---- pool -----------------------------------------------------------------------

TEST(BufferPool, RoundsUpToPowerOfTwoBins) {
  EXPECT_EQ(BufferPool::bin_capacity(0), 256u);
  EXPECT_EQ(BufferPool::bin_capacity(256), 256u);
  EXPECT_EQ(BufferPool::bin_capacity(257), 512u);
  EXPECT_EQ(BufferPool::bin_capacity(100000), 131072u);
}

TEST(BufferPool, RecyclesBuffers) {
  BufferPool pool(40);
  auto first = pool.get(1000);
  Buffer* raw = first.get();
  EXPECT_EQ(first->header_reserve(), 40u);
  pool.put(std::move(first));
  auto second = pool.get(900);  // same bin (1024)
  EXPECT_EQ(second.get(), raw);
  EXPECT_EQ(pool.hits(), 1u);
}

TEST(BufferPool, RecycledBufferIsCleared) {
  BufferPool pool;
  auto buffer = pool.get(256);
  const std::vector<std::int32_t> data = {1};
  buffer->write(std::span<const std::int32_t>(data));
  buffer->commit();
  pool.put(std::move(buffer));
  auto again = pool.get(256);
  EXPECT_TRUE(again->in_write_mode());
  EXPECT_EQ(again->static_size(), 0u);
}

TEST(BufferPool, RejectsForeignReserve) {
  BufferPool pool(40);
  pool.put(std::make_unique<Buffer>(256, 8));  // wrong reserve: dropped
  auto fetched = pool.get(256);
  EXPECT_EQ(fetched->header_reserve(), 40u);
}

// ---- serializer ---------------------------------------------------------------------

TEST(Serializer, PrimitivesAndStrings) {
  const auto bytes = encode_to_bytes(std::string("abc"));
  EXPECT_EQ(decode_from_bytes<std::string>(bytes), "abc");
  EXPECT_EQ(decode_from_bytes<double>(encode_to_bytes(2.75)), 2.75);
  EXPECT_EQ(decode_from_bytes<std::int64_t>(encode_to_bytes<std::int64_t>(-9)), -9);
  EXPECT_EQ(decode_from_bytes<bool>(encode_to_bytes(true)), true);
}

TEST(Serializer, NestedContainers) {
  std::map<std::string, std::vector<std::pair<int, double>>> value;
  value["a"] = {{1, 1.5}, {2, 2.5}};
  value["b"] = {};
  const auto bytes = encode_to_bytes(value);
  EXPECT_EQ(decode_from_bytes<decltype(value)>(bytes), value);
}

struct CustomPoint {
  int x = 0;
  int y = 0;
  void serialize(ByteSink& sink) const {
    sink.put(x);
    sink.put(y);
  }
  static CustomPoint deserialize(ByteSource& source) {
    CustomPoint p;
    p.x = source.get<int>();
    p.y = source.get<int>();
    return p;
  }
  friend bool operator==(const CustomPoint&, const CustomPoint&) = default;
};

TEST(Serializer, UserTypeViaConcept) {
  static_assert(Serializable<CustomPoint>);
  const CustomPoint p{3, -4};
  EXPECT_EQ(decode_from_bytes<CustomPoint>(encode_to_bytes(p)), p);
  // And nested inside containers:
  const std::vector<CustomPoint> many = {{1, 2}, {3, 4}};
  EXPECT_EQ(decode_from_bytes<std::vector<CustomPoint>>(encode_to_bytes(many)), many);
}

TEST(Serializer, TruncatedInputThrows) {
  auto bytes = encode_to_bytes(std::string("hello"));
  bytes.pop_back();
  EXPECT_THROW(decode_from_bytes<std::string>(bytes), BufferError);
}

TEST(Serializer, TrailingBytesThrow) {
  auto bytes = encode_to_bytes<std::int32_t>(1);
  bytes.push_back(std::byte{0});
  EXPECT_THROW(decode_from_bytes<std::int32_t>(bytes), BufferError);
}

}  // namespace
}  // namespace mpcx::buf
