// Tests for the discrete-event network model: simulator ordering, wire
// arithmetic, NIC quantization, protocol switch effects, socket-buffer
// capping, and figure-level invariants the paper reports.
#include <gtest/gtest.h>

#include <functional>
#include <stdexcept>
#include <vector>

#include "netsim/collective_model.hpp"
#include "netsim/netsim.hpp"
#include "support/error.hpp"
#include "netsim/profiles.hpp"

namespace mpcx::netsim {
namespace {

TEST(Simulator, ExecutesInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.at(30.0, [&] { order.push_back(3); });
  sim.at(10.0, [&] { order.push_back(1); });
  sim.at(20.0, [&] { order.push_back(2); });
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 30.0);
}

TEST(Simulator, FifoForSimultaneousEvents) {
  Simulator sim;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    sim.at(1.0, [&, i] { order.push_back(i); });
  }
  sim.run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Simulator, EventsCanScheduleEvents) {
  Simulator sim;
  int depth = 0;
  std::function<void()> recurse = [&] {
    if (++depth < 5) sim.after(1.0, recurse);
  };
  sim.after(1.0, recurse);
  sim.run();
  EXPECT_EQ(depth, 5);
  EXPECT_EQ(sim.now(), 5.0);
}

TEST(Simulator, PastSchedulingRejected) {
  Simulator sim;
  sim.at(10.0, [&] { EXPECT_THROW(sim.at(5.0, [] {}), ArgumentError); });
  sim.run();
}

TEST(Link, WireTimeIncludesFraming) {
  const LinkSpec fast = fast_ethernet_link();
  // One full frame: (1460 + 78) * 8 bits at 100 Mbps = 123.04 us.
  EXPECT_NEAR(wire_time_us(fast, 1460), 123.04, 0.01);
  // Two frames for 1461 bytes.
  EXPECT_GT(wire_time_us(fast, 1461), wire_time_us(fast, 1460) + 6.0);
  // Ceiling below line rate.
  EXPECT_NEAR(line_rate_ceiling_mbps(fast), 100.0 * 1460 / 1538, 0.01);
}

TEST(Link, MonotoneInSize) {
  const LinkSpec gig = gigabit_link();
  double prev = 0;
  for (std::size_t bytes = 1; bytes <= (1u << 22); bytes <<= 1) {
    const double t = wire_time_us(gig, bytes);
    EXPECT_GE(t, prev);
    prev = t;
  }
}

TEST(Model, NicPollQuantizesLatency) {
  SoftwareProfile profile{.name = "x", .send_setup_us = 1, .recv_setup_us = 1};
  const PingPongModel polled(fast_ethernet_link(), NicSpec{64.0}, profile);
  const PingPongModel unpolled(fast_ethernet_link(), NicSpec{0.0}, profile);
  // Polling can only add latency, in sub-64us quanta.
  const double with_poll = polled.transfer_time_us(1);
  const double without = unpolled.transfer_time_us(1);
  EXPECT_GE(with_poll, without);
  EXPECT_LE(with_poll - without, 64.0);
}

TEST(Model, RendezvousCostsOneMoreRoundTrip) {
  SoftwareProfile eager{.name = "e", .send_setup_us = 5, .recv_setup_us = 5};
  SoftwareProfile rndv = eager;
  rndv.eager_threshold = 1;  // always rendezvous
  const PingPongModel me(gigabit_link(), NicSpec{0.0}, eager);
  const PingPongModel mr(gigabit_link(), NicSpec{0.0}, rndv);
  const double gap = mr.transfer_time_us(1024) - me.transfer_time_us(1024);
  // Two extra control messages: >= 2 * link latency.
  EXPECT_GE(gap, 2 * gigabit_link().latency_us);
}

TEST(Model, ProtocolDipAtThreshold) {
  // The Fig. 10-13 feature: time-per-byte jumps right above the eager
  // threshold for systems that switch protocols.
  const auto systems = gigabit_systems();
  for (const auto& model : systems) {
    if (model.profile().eager_threshold == 0) continue;
    const std::size_t at = model.profile().eager_threshold;
    const double below = model.transfer_time_us(at) / static_cast<double>(at);
    const double above = model.transfer_time_us(at + 1) / static_cast<double>(at + 1);
    EXPECT_GT(above, below) << model.profile().name;
  }
}

TEST(Model, SocketBufferCapsStreaming) {
  SoftwareProfile capped{.name = "c", .socket_buffer_bytes = 64 * 1024};
  SoftwareProfile open{.name = "o"};
  const PingPongModel mc(gigabit_link(), NicSpec{0.0}, capped);
  const PingPongModel mo(gigabit_link(), NicSpec{0.0}, open);
  EXPECT_GT(mc.transfer_time_us(1 << 20), mo.transfer_time_us(1 << 20));
  EXPECT_EQ(mc.transfer_time_us(1024), mo.transfer_time_us(1024));  // under the window
}

TEST(Model, ThroughputBoundedByLineCeiling) {
  for (const auto& model : fast_ethernet_systems()) {
    EXPECT_LE(model.throughput_mbps(16u << 20),
              line_rate_ceiling_mbps(fast_ethernet_link()) + 0.01)
        << model.profile().name;
  }
}

// ---- figure-level invariants the paper reports --------------------------------------

TEST(Figures, FastEthernetLatencyOrdering) {
  const auto systems = fast_ethernet_systems();
  auto latency = [&](const char* name) {
    for (const auto& m : systems) {
      if (m.profile().name == name) return m.transfer_time_us(1);
    }
    ADD_FAILURE() << name;
    return 0.0;
  };
  // Paper Sec. V-B: C MPI < mpijava < MPJ/Ibis < mpjdev < MPJ Express.
  EXPECT_LT(latency("MPICH"), latency("mpijava"));
  EXPECT_LT(latency("mpijava"), latency("MPJ/Ibis (TCPIbis)"));
  EXPECT_LT(latency("MPJ/Ibis (TCPIbis)"), latency("MPJ Express"));
  EXPECT_LT(latency("mpjdev"), latency("MPJ Express"));
  EXPECT_NEAR(latency("MPJ Express"), 164.0, 15.0);
}

TEST(Figures, GigabitThroughputOrdering) {
  const auto systems = gigabit_systems();
  auto tput = [&](const char* name) {
    for (const auto& m : systems) {
      if (m.profile().name == name) return m.throughput_mbps(16u << 20);
    }
    ADD_FAILURE() << name;
    return 0.0;
  };
  // Paper Sec. V-C: LAM/Ibis/mpjdev ~90% > MPICH 76% > MPJE 68% > mpijava 60%.
  EXPECT_GT(tput("LAM/MPI"), tput("MPICH"));
  EXPECT_GT(tput("MPICH"), tput("MPJ Express"));
  EXPECT_GT(tput("MPJ Express"), tput("mpijava"));
  EXPECT_GT(tput("mpjdev"), tput("MPJ Express"));  // the buffering gap
  EXPECT_NEAR(tput("MPJ Express"), 680.0, 40.0);
  EXPECT_NEAR(tput("mpijava"), 600.0, 40.0);
}

TEST(Figures, MyrinetHeadlines) {
  const auto systems = myrinet_systems();
  auto find = [&](const char* name) -> const PingPongModel& {
    for (const auto& m : systems) {
      if (m.profile().name == name) return m;
    }
    throw std::runtime_error(name);
  };
  EXPECT_NEAR(find("MPICH-MX").transfer_time_us(1), 4.0, 1.0);
  EXPECT_NEAR(find("mpijava").transfer_time_us(1), 12.0, 2.0);
  EXPECT_NEAR(find("MPJ Express").transfer_time_us(1), 23.0, 3.0);
  // mpjdev beats MPICH-MX at 16 MB (direct buffers beat the JNI copy).
  EXPECT_GT(find("mpjdev").throughput_mbps(16u << 20),
            find("MPICH-MX").throughput_mbps(16u << 20));
  // mpijava peaks at 64K then collapses.
  EXPECT_GT(find("mpijava").throughput_mbps(64 * 1024),
            find("mpijava").throughput_mbps(16u << 20));
}

// ---- collective scaling model -----------------------------------------------------

TEST(CollectiveModel, TreeBeatsLinearBeyondTwoNodes) {
  const CollectiveModel model(
      PingPongModel(fast_ethernet_link(), ethernet_nic(),
                    SoftwareProfile{.name = "x", .send_setup_us = 10, .recv_setup_us = 10}));
  for (const int n : {4, 8, 32}) {
    EXPECT_LT(model.barrier_dissemination_us(n), model.barrier_linear_us(n)) << n;
    EXPECT_LT(model.bcast_binomial_us(n, 64 * 1024), model.bcast_linear_us(n, 64 * 1024)) << n;
  }
  // Two nodes: one message either way — identical cost.
  EXPECT_DOUBLE_EQ(model.bcast_binomial_us(2, 1024), model.bcast_linear_us(2, 1024));
}

TEST(CollectiveModel, LogarithmicRounds) {
  const CollectiveModel model(
      PingPongModel(myrinet_link(), myrinet_nic(), SoftwareProfile{.name = "x"}));
  const double one = model.barrier_dissemination_us(2);
  EXPECT_DOUBLE_EQ(model.barrier_dissemination_us(4), 2 * one);
  EXPECT_DOUBLE_EQ(model.barrier_dissemination_us(8), 3 * one);
  EXPECT_DOUBLE_EQ(model.barrier_dissemination_us(5), 3 * one);  // ceil(log2 5)
  EXPECT_DOUBLE_EQ(model.barrier_dissemination_us(1), 0.0);
}

TEST(CollectiveModel, ReduceAddsCombineCost) {
  const CollectiveModel model(
      PingPongModel(myrinet_link(), myrinet_nic(), SoftwareProfile{.name = "x"}));
  const double plain = model.bcast_binomial_us(8, 4096);
  const double with_combine = model.reduce_binomial_us(8, 4096, /*us per byte=*/0.001);
  EXPECT_GT(with_combine, plain);
  EXPECT_NEAR(with_combine - plain, 3 * 0.001 * 4096, 1e-9);
}

TEST(CollectiveModel, RingAllgatherBeatsGatherBcastForLargeBlocks) {
  const CollectiveModel model(
      PingPongModel(fast_ethernet_link(), ethernet_nic(), SoftwareProfile{.name = "x"}));
  EXPECT_LT(model.allgather_ring_us(8, 64 * 1024), model.allgather_gather_bcast_us(8, 64 * 1024));
}

TEST(CollectiveModel, RejectsBadN) {
  const CollectiveModel model(
      PingPongModel(myrinet_link(), myrinet_nic(), SoftwareProfile{.name = "x"}));
  EXPECT_THROW(model.barrier_dissemination_us(0), ArgumentError);
}

}  // namespace
}  // namespace mpcx::netsim
