// World lifecycle, environment bootstrap, buffer pool behaviour, attribute
// caching, and explicit Pack/Unpack.
#include <gtest/gtest.h>

#include <any>
#include <cstdlib>
#include <numeric>
#include <string>
#include <vector>

#include "core/cluster.hpp"
#include "core/intracomm.hpp"
#include "support/socket.hpp"

namespace mpcx {
namespace {

TEST(World, RankSizeAndThreadLevel) {
  cluster::launch(3, [](World& world) {
    EXPECT_EQ(world.Size(), 3);
    EXPECT_GE(world.Rank(), 0);
    EXPECT_LT(world.Rank(), 3);
    EXPECT_EQ(world.Rank(), world.COMM_WORLD().Rank());
    EXPECT_EQ(world.Query_thread(), ThreadLevel::Multiple);
    EXPECT_FALSE(world.finalized());
  });
}

TEST(World, DoubleFinalizeIsIdempotent) {
  cluster::launch(2, [](World& world) {
    world.Finalize();
    EXPECT_TRUE(world.finalized());
    world.Finalize();  // no-op
  });
}

TEST(World, BufferPoolRecyclesAcrossOperations) {
  cluster::launch(1, [](World& world) {
    auto first = world.take_buffer(512);
    buf::Buffer* raw = first.get();
    world.give_buffer(std::move(first));
    auto second = world.take_buffer(500);  // same bin
    EXPECT_EQ(second.get(), raw);
    world.give_buffer(std::move(second));
  });
}

TEST(World, FromEnvBootstrapsSingleRank) {
  // Multi-rank from_env needs multiple processes (covered by test_runtime);
  // a single-rank world exercises the env parsing path in-process.
  net::Acceptor probe(0);  // find a free port
  const std::uint16_t port = probe.port();
  probe.close();
  ::setenv("MPCX_RANK", "0", 1);
  ::setenv("MPCX_WORLD", ("127.0.0.1:" + std::to_string(port)).c_str(), 1);
  ::setenv("MPCX_DEVICE", "tcpdev", 1);
  ::setenv("MPCX_SESSION", "424242", 1);
  ::setenv("MPCX_EAGER_THRESHOLD", "65536", 1);

  auto world = World::from_env();
  EXPECT_EQ(world->Size(), 1);
  EXPECT_EQ(world->Rank(), 0);
  int value = 3, out = 0;
  world->COMM_WORLD().Sendrecv(&value, 0, 1, types::INT(), 0, 1, &out, 0, 1, types::INT(), 0, 1);
  EXPECT_EQ(out, 3);
  world->Finalize();
  ::unsetenv("MPCX_RANK");
  ::unsetenv("MPCX_WORLD");
  ::unsetenv("MPCX_DEVICE");
  ::unsetenv("MPCX_SESSION");
  ::unsetenv("MPCX_EAGER_THRESHOLD");
}

TEST(World, FromEnvRequiresVariables) {
  ::unsetenv("MPCX_RANK");
  ::unsetenv("MPCX_WORLD");
  EXPECT_THROW(World::from_env(), RuntimeError);
}

TEST(Attributes, PutGetDelete) {
  cluster::launch(1, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int key = Comm::Keyval_create();
    const int other = Comm::Keyval_create();
    EXPECT_NE(key, other);

    EXPECT_FALSE(comm.Attr_get(key).has_value());
    comm.Attr_put(key, std::string("cached"));
    auto value = comm.Attr_get(key);
    ASSERT_TRUE(value.has_value());
    EXPECT_EQ(std::any_cast<std::string>(*value), "cached");

    comm.Attr_put(key, 42);  // overwrite with another type
    EXPECT_EQ(std::any_cast<int>(*comm.Attr_get(key)), 42);

    comm.Attr_delete(key);
    EXPECT_FALSE(comm.Attr_get(key).has_value());
  });
}

TEST(Attributes, PerCommunicatorIsolation) {
  cluster::launch(2, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    auto dup = comm.Dup();
    const int key = Comm::Keyval_create();
    comm.Attr_put(key, 1);
    EXPECT_FALSE(dup->Attr_get(key).has_value());  // caches are per-comm
    dup->Attr_put(key, 2);
    EXPECT_EQ(std::any_cast<int>(*comm.Attr_get(key)), 1);
    EXPECT_EQ(std::any_cast<int>(*dup->Attr_get(key)), 2);
  });
}

TEST(PackUnpack, ExplicitPackingRoundTrip) {
  cluster::launch(2, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    if (comm.Rank() == 0) {
      // Pack two typed blocks + an object into one buffer, ship it raw.
      auto buffer = comm.make_buffer(1024);
      std::vector<std::int32_t> ints = {1, 2, 3};
      std::vector<double> doubles = {4.5, 5.5};
      comm.Pack(ints.data(), 0, 3, types::INT(), *buffer);
      comm.Pack(doubles.data(), 0, 2, types::DOUBLE(), *buffer);
      buffer->write_object(std::string("trailer"));
      buffer->commit();
      comm.Send_buffer(*buffer, 1, 9);
      comm.release_buffer(std::move(buffer));
    } else {
      auto buffer = comm.make_buffer(1024);
      comm.Recv_buffer(*buffer, 0, 9);
      std::vector<std::int32_t> ints(3);
      std::vector<double> doubles(2);
      comm.Unpack(*buffer, ints.data(), 0, 3, types::INT());
      comm.Unpack(*buffer, doubles.data(), 0, 2, types::DOUBLE());
      EXPECT_EQ(ints, (std::vector<std::int32_t>{1, 2, 3}));
      EXPECT_EQ(doubles, (std::vector<double>{4.5, 5.5}));
      EXPECT_EQ(buffer->read_object<std::string>(), "trailer");
      comm.release_buffer(std::move(buffer));
    }
  });
}

TEST(PackUnpack, PackWithDerivedType) {
  cluster::launch(1, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const auto diag = Datatype::vector(3, 1, 4, types::INT());
    std::vector<std::int32_t> matrix(12);
    std::iota(matrix.begin(), matrix.end(), 0);
    auto buffer = comm.make_buffer(256);
    comm.Pack(matrix.data(), 0, 1, diag, *buffer);
    buffer->commit();
    std::vector<std::int32_t> landed(12, -1);
    comm.Unpack(*buffer, landed.data(), 0, 1, diag);
    EXPECT_EQ(landed[0], 0);
    EXPECT_EQ(landed[4], 4);
    EXPECT_EQ(landed[8], 8);
    EXPECT_EQ(landed[1], -1);
    comm.release_buffer(std::move(buffer));
  });
}

}  // namespace
}  // namespace mpcx
