// shmdev-specific tests: ring wraparound under sustained traffic, messages
// larger than the ring (chunking + reassembly), concurrent senders into one
// ring, synchronous-send ACK semantics, and stale-segment takeover.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/mman.h>
#include <unistd.h>

#include <algorithm>
#include <numeric>
#include <thread>
#include <vector>

#include "core/cluster.hpp"
#include "core/intracomm.hpp"
#include "device_harness.hpp"

namespace mpcx {
namespace {

cluster::Options shm_opts() {
  cluster::Options options;
  options.device = "shmdev";
  return options;
}

TEST(Shmdev, RingWrapsUnderSustainedTraffic) {
  // Push far more bytes than one 4 MB ring holds, in odd-sized messages,
  // so the cursors wrap repeatedly and records straddle the ring edge.
  cluster::launch(2, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    constexpr int kMessages = 300;
    if (comm.Rank() == 0) {
      for (int i = 0; i < kMessages; ++i) {
        const int count = 7001 + 13 * i;  // ~28 KB and growing, never a power of two
        std::vector<std::int32_t> data(static_cast<std::size_t>(count));
        std::iota(data.begin(), data.end(), i);
        comm.Send(data.data(), 0, count, types::INT(), 1, i);
      }
    } else {
      for (int i = 0; i < kMessages; ++i) {
        const int count = 7001 + 13 * i;
        std::vector<std::int32_t> data(static_cast<std::size_t>(count), -1);
        comm.Recv(data.data(), 0, count, types::INT(), 0, i);
        EXPECT_EQ(data[0], i);
        EXPECT_EQ(data[static_cast<std::size_t>(count) - 1], i + count - 1);
      }
    }
  }, shm_opts());
}

TEST(Shmdev, MessageLargerThanRing) {
  // 32 MB of doubles through a 4 MB ring: 1 MB chunks with flow control.
  cluster::launch(2, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const std::size_t count = 4u << 20;  // 32 MB
    if (comm.Rank() == 0) {
      std::vector<double> data(count);
      for (std::size_t i = 0; i < count; i += 1000) data[i] = static_cast<double>(i);
      comm.Send(data.data(), 0, static_cast<int>(count), types::DOUBLE(), 1, 0);
    } else {
      std::vector<double> data(count, -1.0);
      Status st = comm.Recv(data.data(), 0, static_cast<int>(count), types::DOUBLE(), 0, 0);
      EXPECT_EQ(st.Get_count(*types::DOUBLE()), static_cast<int>(count));
      for (std::size_t i = 0; i < count; i += 1000) {
        ASSERT_DOUBLE_EQ(data[i], static_cast<double>(i)) << i;
      }
    }
  }, shm_opts());
}

TEST(Shmdev, ManySendersIntoOneRing) {
  // Ranks 1..5 flood rank 0 concurrently; chunked interleavings from
  // different sources must reassemble correctly (keyed by src + msg id).
  constexpr int kSenders = 5;
  constexpr int kEach = 40;
  cluster::launch(kSenders + 1, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int count = 50000;  // ~200 KB per message
    if (comm.Rank() == 0) {
      int received = 0;
      std::vector<std::int32_t> data(static_cast<std::size_t>(count));
      for (int i = 0; i < kSenders * kEach; ++i) {
        Status st = comm.Recv(data.data(), 0, count, types::INT(), ANY_SOURCE, ANY_TAG);
        EXPECT_EQ(data[0], st.Get_source() * 1000 + st.Get_tag());
        EXPECT_EQ(data[static_cast<std::size_t>(count) - 1], data[0]);
        ++received;
      }
      EXPECT_EQ(received, kSenders * kEach);
    } else {
      std::vector<std::int32_t> data(static_cast<std::size_t>(count));
      for (int i = 0; i < kEach; ++i) {
        std::fill(data.begin(), data.end(), comm.Rank() * 1000 + i);
        comm.Send(data.data(), 0, count, types::INT(), 0, i);
      }
    }
  }, shm_opts());
}

TEST(Shmdev, SsendAckSemantics) {
  cluster::launch(2, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    if (comm.Rank() == 0) {
      int payload = 5;
      Request send = comm.Issend(&payload, 0, 1, types::INT(), 1, 1);
      std::this_thread::sleep_for(std::chrono::milliseconds(30));
      EXPECT_FALSE(send.is_complete());  // no matching receive yet
      comm.Barrier();
      send.Wait();  // receiver posts after the barrier -> ACK arrives
    } else {
      comm.Barrier();
      int payload = 0;
      comm.Recv(&payload, 0, 1, types::INT(), 0, 1);
      EXPECT_EQ(payload, 5);
    }
  }, shm_opts());
}

TEST(Shmdev, StaleSegmentTakenOver) {
  // A crashed run leaves a segment behind; a new run reusing the id must
  // recreate it cleanly (create() unlinks the stale file first).
  using namespace mpcx::xdev;
  const std::uint64_t id = 0xDEAD0000BEEFull ^ static_cast<std::uint64_t>(::getpid());
  {
    // Simulate the stale leftover.
    const std::string name = "/mpcx_seg_" + std::to_string(id);
    const int fd = ::shm_open(name.c_str(), O_CREAT | O_RDWR, 0600);
    ASSERT_GE(fd, 0);
    ASSERT_EQ(::ftruncate(fd, 128), 0);  // wrong size, no magic
    ::close(fd);
  }
  // A fresh 1-rank world with that exact id must still bootstrap.
  DeviceConfig config;
  config.self_index = 0;
  config.world = {EndpointInfo{ProcessID{id}, "127.0.0.1", 0, ""}};
  auto device = new_device("shmdev");
  auto world = device->init(config);
  EXPECT_EQ(world.size(), 1u);
  // Self-send round trip through the recreated segment.
  buf::Buffer out(64);
  const std::int32_t v = 9;
  out.write(std::span<const std::int32_t>(&v, 1));
  out.commit();
  DevRequest send = device->isend(out, ProcessID{id}, 0, 0);
  buf::Buffer in(64);
  device->recv(in, ProcessID{id}, 0, 0);
  send->wait();
  std::int32_t got = 0;
  in.read(std::span<std::int32_t>(&got, 1));
  EXPECT_EQ(got, 9);
  device->finish();
}

TEST(Shmdev, ObjectsAndDerivedTypesTravel) {
  cluster::launch(2, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const auto column = Datatype::vector(4, 1, 4, types::FLOAT());
    if (comm.Rank() == 0) {
      std::vector<float> matrix(16);
      std::iota(matrix.begin(), matrix.end(), 0.0f);
      comm.Send(matrix.data(), 0, 1, column, 1, 1);
      comm.send_object(std::string("shm-object"), 1, 2);
    } else {
      std::vector<float> matrix(16, -1.0f);
      comm.Recv(matrix.data(), 0, 1, column, 0, 1);
      EXPECT_EQ(matrix[4], 4.0f);
      EXPECT_EQ(matrix[1], -1.0f);
      EXPECT_EQ(comm.recv_object<std::string>(0, 2), "shm-object");
    }
  }, shm_opts());
}

}  // namespace
}  // namespace mpcx
