// Runtime integration tests: protocol round trips, daemon spawn/status/
// fetch, and full multi-PROCESS launches (true separate OS processes over
// tcpdev) in both local-exec and staged-binary modes (Fig. 9a / 9b).
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdlib>
#include <fstream>
#include <map>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/cluster.hpp"
#include "core/intracomm.hpp"
#include "env_util.hpp"
#include "prof/counters.hpp"
#include "prof/pvars.hpp"
#include "runtime/daemon.hpp"
#include "runtime/launcher.hpp"

namespace mpcx::runtime {
namespace {

/// The rank-probe helper binary lives next to this test binary's build
/// tree; locate it via the MPCX_RANK_PROBE env var set by CMake, falling
/// back to a relative path.
std::string rank_probe_path() {
  if (const char* env = std::getenv("MPCX_RANK_PROBE")) return env;
  return "./src/runtime/mpcx_rank_probe";
}

TEST(Protocol, FrameRoundTrip) {
  net::Acceptor acceptor(0);
  net::Socket client = net::Socket::connect("127.0.0.1", acceptor.port());
  net::Socket server = acceptor.accept();

  SpawnRequest request;
  request.staged = true;
  request.exe = "prog";
  request.args = {"a", "b"};
  request.env = {{"K", "V"}};
  request.binary = {std::byte{1}, std::byte{2}, std::byte{3}};
  write_frame(client, MsgKind::Spawn, request);

  const Frame frame = read_frame(server);
  EXPECT_EQ(frame.kind, MsgKind::Spawn);
  const SpawnRequest decoded = frame.as<SpawnRequest>();
  EXPECT_TRUE(decoded.staged);
  EXPECT_EQ(decoded.exe, "prog");
  EXPECT_EQ(decoded.args, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(decoded.env.at(0).second, "V");
  EXPECT_EQ(decoded.binary.size(), 3u);
}

TEST(Protocol, HeaderOnlyFrames) {
  net::Acceptor acceptor(0);
  net::Socket client = net::Socket::connect("127.0.0.1", acceptor.port());
  net::Socket server = acceptor.accept();
  write_frame(client, MsgKind::Shutdown);
  const Frame frame = read_frame(server);
  EXPECT_EQ(frame.kind, MsgKind::Shutdown);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(Daemon, SpawnStatusFetchLifecycle) {
  Daemon daemon(0);
  daemon.start();
  DaemonClient client(DaemonAddr{"127.0.0.1", daemon.port()});

  SpawnRequest request;
  request.exe = "/bin/sh";
  request.args = {"-c", "echo daemon-child-output; exit 7"};
  const SpawnReply spawned = client.spawn(request);
  ASSERT_GE(spawned.pid, 0) << spawned.error;

  // Poll until exit.
  StatusReply status;
  for (int i = 0; i < 200; ++i) {
    status = client.status(spawned.pid);
    if (status.exited) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.exit_code, 7);

  const FetchReply output = client.fetch(spawned.pid);
  EXPECT_NE(output.output.find("daemon-child-output"), std::string::npos);

  const StatusReply unknown = client.status(999999);
  EXPECT_FALSE(unknown.error.empty());
  daemon.stop();
}

TEST(Daemon, StagedBinaryExecution) {
  Daemon daemon(0);
  daemon.start();
  DaemonClient client(DaemonAddr{"127.0.0.1", daemon.port()});

  // Stage a tiny shell script as the "binary".
  const std::string script = "#!/bin/sh\necho staged-run $1\n";
  SpawnRequest request;
  request.staged = true;
  request.exe = "hello.sh";
  request.args = {"arg1"};
  const auto* bytes = reinterpret_cast<const std::byte*>(script.data());
  request.binary.assign(bytes, bytes + script.size());
  const SpawnReply spawned = client.spawn(request);
  ASSERT_GE(spawned.pid, 0) << spawned.error;

  StatusReply status;
  for (int i = 0; i < 200 && !status.exited; ++i) {
    status = client.status(spawned.pid);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.exit_code, 0);
  EXPECT_NE(client.fetch(spawned.pid).output.find("staged-run arg1"), std::string::npos);
  daemon.stop();
}

TEST(Daemon, AbortSkipsInitiatorRank) {
  Daemon daemon(0);
  daemon.start();
  DaemonClient client(DaemonAddr{"127.0.0.1", daemon.port()});

  SpawnRequest request;
  request.exe = "/bin/sh";
  request.args = {"-c", "sleep 30"};
  const SpawnReply initiator = client.spawn(request);
  const SpawnReply sibling = client.spawn(request);
  ASSERT_GE(initiator.pid, 0) << initiator.error;
  ASSERT_GE(sibling.pid, 0) << sibling.error;

  // Abort as if `initiator` were the aborting rank: only the sibling is
  // SIGTERMed; the initiator is left to _Exit with its own code.
  const AbortReply reply = client.abort(3, initiator.pid);
  EXPECT_EQ(reply.killed, 1);

  StatusReply sibling_status;
  for (int i = 0; i < 200 && !sibling_status.exited; ++i) {
    sibling_status = client.status(sibling.pid);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(sibling_status.exited);
  EXPECT_EQ(sibling_status.exit_code, 128 + SIGTERM);
  EXPECT_FALSE(client.status(initiator.pid).exited);

  // A launcher-driven abort carries no initiator and kills everything left.
  EXPECT_EQ(client.abort(3).killed, 1);
  daemon.stop();
}

class MultiProcess : public ::testing::TestWithParam<bool> {};

TEST_P(MultiProcess, FourRankWorldAcrossRealProcesses) {
  Daemon daemon(0);
  daemon.start();

  LaunchSpec spec;
  spec.nprocs = 4;
  spec.exe = rank_probe_path();
  spec.stage_binary = GetParam();
  spec.daemons = {DaemonAddr{"127.0.0.1", daemon.port()}};
  spec.device = "tcpdev";

  const auto results = launch_world(spec);
  ASSERT_EQ(results.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)].exit_code, 0)
        << results[static_cast<std::size_t>(r)].output;
    const std::string expect = "rank_probe rank=" + std::to_string(r) + " size=4 allreduce=10";
    EXPECT_NE(results[static_cast<std::size_t>(r)].output.find(expect), std::string::npos)
        << results[static_cast<std::size_t>(r)].output;
  }
  daemon.stop();
}

INSTANTIATE_TEST_SUITE_P(LocalAndStaged, MultiProcess, ::testing::Bool(),
                         [](const auto& info) { return info.param ? std::string("staged")
                                                                  : std::string("local"); });

TEST(MultiProcessShm, FourRealProcessesOverSharedMemory) {
  // The classic single-node MPI deployment: separate OS processes talking
  // through the shared-memory device.
  Daemon daemon(0);
  daemon.start();
  LaunchSpec spec;
  spec.nprocs = 4;
  spec.exe = rank_probe_path();
  spec.daemons = {DaemonAddr{"127.0.0.1", daemon.port()}};
  spec.device = "shmdev";
  const auto results = launch_world(spec);
  ASSERT_EQ(results.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)].exit_code, 0)
        << results[static_cast<std::size_t>(r)].output;
    const std::string expect = "rank_probe rank=" + std::to_string(r) + " size=4 allreduce=10";
    EXPECT_NE(results[static_cast<std::size_t>(r)].output.find(expect), std::string::npos)
        << results[static_cast<std::size_t>(r)].output;
  }
  daemon.stop();
}

TEST(Launcher, MultipleDaemonsRoundRobin) {
  Daemon d1(0), d2(0);
  d1.start();
  d2.start();
  LaunchSpec spec;
  spec.nprocs = 2;
  spec.exe = rank_probe_path();
  spec.daemons = {DaemonAddr{"127.0.0.1", d1.port()}, DaemonAddr{"127.0.0.1", d2.port()}};
  const auto results = launch_world(spec);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].exit_code, 0) << results[0].output;
  EXPECT_EQ(results[1].exit_code, 0) << results[1].output;
  d1.stop();
  d2.stop();
}

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& text) {
  std::ofstream out(path);
  out << text;
}

std::size_t count_substr(const std::string& text, const std::string& needle) {
  std::size_t count = 0;
  for (std::size_t pos = text.find(needle); pos != std::string::npos;
       pos = text.find(needle, pos + needle.size())) {
    ++count;
  }
  return count;
}

TEST(Launcher, MergeTracesAlignsClocksAndSkipsUnsynced) {
  const std::string dir = ::testing::TempDir();
  // Rank 0: offset = wall - steady = 1ms. Rank 1: offset = 3ms, so its
  // events must shift +2000us onto rank 0's steady clock. Rank 2 has no
  // clock-sync event and must be dropped, as must the missing rank 3 file.
  write_file(dir + "/mt.rank0.json",
             "[\n"
             "{\"name\":\"a\",\"cat\":\"p2p\",\"ph\":\"X\",\"ts\":2000.000,\"dur\":10.000,"
             "\"pid\":100,\"tid\":1},\n"
             "{\"name\":\"mpcx_clock_sync\",\"cat\":\"meta\",\"ph\":\"i\",\"s\":\"p\","
             "\"ts\":3000.000,\"pid\":100,\"tid\":0,"
             "\"args\":{\"steady_ns\":3000000,\"wall_ns\":4000000}}\n"
             "]\n");
  write_file(dir + "/mt.rank1.json",
             "[\n"
             "{\"name\":\"b\",\"cat\":\"p2p\",\"ph\":\"X\",\"ts\":500.000,\"dur\":5.000,"
             "\"pid\":200,\"tid\":1},\n"
             "{\"name\":\"mpcx_clock_sync\",\"cat\":\"meta\",\"ph\":\"i\",\"s\":\"p\","
             "\"ts\":1000.000,\"pid\":200,\"tid\":0,"
             "\"args\":{\"steady_ns\":1000000,\"wall_ns\":4000000}}\n"
             "]\n");
  write_file(dir + "/mt.rank2.json",
             "[\n{\"name\":\"c\",\"ph\":\"X\",\"ts\":1.000,\"dur\":1.000,\"pid\":300,\"tid\":1}\n]\n");

  const std::string out = dir + "/mt_merged.json";
  EXPECT_EQ(merge_traces({dir + "/mt.rank0.json", dir + "/mt.rank1.json",
                          dir + "/mt.rank2.json", dir + "/mt.rank3.json"},
                         out),
            2u);
  const std::string text = slurp(out);
  EXPECT_NE(text.find("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":100,\"tid\":0,"
                      "\"args\":{\"name\":\"rank 0\"}}"),
            std::string::npos);
  EXPECT_NE(text.find("\"args\":{\"name\":\"rank 1\"}}"), std::string::npos);
  EXPECT_NE(text.find("\"name\":\"a\",\"cat\":\"p2p\",\"ph\":\"X\",\"ts\":2000.000"),
            std::string::npos);  // first merged rank is the reference: unshifted
  EXPECT_NE(text.find("\"name\":\"b\",\"cat\":\"p2p\",\"ph\":\"X\",\"ts\":2500.000"),
            std::string::npos);  // 500us + 2000us offset delta
  EXPECT_EQ(text.find("\"name\":\"c\""), std::string::npos);
  EXPECT_EQ(text.front(), '[');
  EXPECT_EQ(text[text.size() - 2], ']');
}

TEST(Launcher, MergeTracesReturnsZeroWithNothingToMerge) {
  const std::string out = ::testing::TempDir() + "/mt_empty_merged.json";
  EXPECT_EQ(merge_traces({::testing::TempDir() + "/mt_nope.json"}, out), 0u);
}

// The ISSUE 6 acceptance scenario: a 4-rank hybdev job on a simulated
// 2-node topology, traced end to end. The launcher must gather the per-rank
// trace files into ONE merged Chrome trace whose p2p flow events pair up
// across rank processes, and periodic pvar snapshots must appear per rank.
TEST(MultiProcessTraced, FourRankHybridMergedTraceAndMetrics) {
  mpcx::testing::ScopedEnv sim("MPCX_NODE_ID", "2");
  Daemon daemon(0);
  daemon.start();

  const std::string dir = ::testing::TempDir();
  LaunchSpec spec;
  spec.nprocs = 4;
  spec.exe = rank_probe_path();
  spec.daemons = {DaemonAddr{"127.0.0.1", daemon.port()}};
  spec.device = "hybdev";
  spec.trace_path = dir + "/traced_merged.json";
  spec.metrics_ms = 20;
  spec.metrics_base = dir + "/traced_metrics";

  const auto results = launch_world(spec);
  daemon.stop();
  ASSERT_EQ(results.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    ASSERT_EQ(results[static_cast<std::size_t>(r)].exit_code, 0)
        << results[static_cast<std::size_t>(r)].output;
  }

  // One merged trace with all four ranks' tracks and clock-sync markers.
  const std::string text = slurp(spec.trace_path);
  ASSERT_FALSE(text.empty()) << "merged trace missing";
  for (int r = 0; r < 4; ++r) {
    EXPECT_NE(text.find("\"name\":\"rank " + std::to_string(r) + "\""), std::string::npos);
  }
  EXPECT_EQ(count_substr(text, "\"mpcx_clock_sync\""), 4u);
  // rank_probe runs an Iallreduce: its schedule-engine rounds must stamp
  // {sched, round} onto the p2p lifecycle slices they generate.
  EXPECT_NE(text.find("\"sched\":"), std::string::npos);
  EXPECT_NE(text.find("\"round\":"), std::string::npos);

  // Flow events must pair up by correlation id ACROSS rank processes: the
  // "s" end lives in the sender's pid, the "f" end in the receiver's.
  std::map<std::uint64_t, std::set<int>> send_pids;
  std::map<std::uint64_t, std::set<int>> recv_pids;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    const bool is_send = line.find("\"ph\":\"s\"") != std::string::npos;
    const bool is_recv = line.find("\"ph\":\"f\"") != std::string::npos;
    if (!is_send && !is_recv) continue;
    const auto id_at = line.find("\"id\":\"0x");
    const auto pid_at = line.find("\"pid\":");
    ASSERT_NE(id_at, std::string::npos) << line;
    ASSERT_NE(pid_at, std::string::npos) << line;
    const std::uint64_t id = std::stoull(line.substr(id_at + 8), nullptr, 16);
    const int pid = std::atoi(line.c_str() + pid_at + 6);
    (is_send ? send_pids : recv_pids)[id].insert(pid);
  }
  ASSERT_FALSE(send_pids.empty());
  std::size_t cross_rank = 0;
  for (const auto& [id, senders] : send_pids) {
    const auto matched = recv_pids.find(id);
    if (matched == recv_pids.end()) continue;
    for (int sender : senders) {
      if (!matched->second.contains(sender)) ++cross_rank;
    }
  }
  EXPECT_GT(cross_rank, 0u) << "no p2p flow connects two different rank processes";

  // Periodic pvar snapshots: one JSONL file per rank, valid lines.
  for (int r = 0; r < 4; ++r) {
    const std::string metrics =
        slurp(spec.metrics_base + ".rank" + std::to_string(r) + ".jsonl");
    ASSERT_FALSE(metrics.empty()) << "metrics file missing for rank " << r;
    EXPECT_NE(metrics.find("\"rank\":" + std::to_string(r)), std::string::npos);
    EXPECT_NE(metrics.find("\"posted_recv_depth\""), std::string::npos);
  }
}

// ISSUE 7 acceptance: SIGKILL one rank mid-Allreduce in a real multi-process
// job. Survivors must observe the failure as an Error (proc_failed from the
// detector, or the MPCX_OP_TIMEOUT_MS backstop for ranks not talking to the
// corpse directly), learn the dead rank from the daemon's RankFailed
// broadcast, and Revoke + Shrink into a communicator that demonstrably
// still works. The drill itself lives in mpcx_rank_probe
// (MPCX_PROBE_DIE_RANK); this test checks each survivor's printed verdict.
void run_sigkill_recovery_drill(const std::string& device) {
  Daemon daemon(0);
  daemon.start();

  LaunchSpec spec;
  spec.nprocs = 4;
  spec.exe = rank_probe_path();
  spec.daemons = {DaemonAddr{"127.0.0.1", daemon.port()}};
  spec.device = device;
  spec.extra_env = {
      {"MPCX_PROBE_DIE_RANK", "3"},
      {"MPCX_FT", "1"},            // subscribe to the daemon's RankFailed feed
      {"MPCX_RELIABLE", "1"},      // reliability session under tcpdev
      {"MPCX_RECONNECT_MS", "25"},
      {"MPCX_RECONNECT_MAX", "4"},
      {"MPCX_OP_TIMEOUT_MS", "2000"},  // backstop for survivors blocked on
                                       // a live-but-errored-out peer
  };

  const auto results = launch_world(spec);
  daemon.stop();
  ASSERT_EQ(results.size(), 4u);

  // The victim dies of SIGKILL, nothing else.
  EXPECT_EQ(results[3].exit_code, 128 + SIGKILL) << results[3].output;

  // Every survivor recovers: observes an error, shrinks to 3 ranks, and the
  // shrunk Allreduce yields exactly the survivor sum 1+2+3.
  int proc_failed_observers = 0;
  for (int r = 0; r < 3; ++r) {
    const auto& res = results[static_cast<std::size_t>(r)];
    EXPECT_EQ(res.exit_code, 0) << res.output;
    EXPECT_NE(res.output.find("rank_probe recovery rank=" + std::to_string(r)),
              std::string::npos)
        << res.output;
    EXPECT_NE(res.output.find("shrunk_size=3 allreduce=6"), std::string::npos)
        << res.output;
    if (res.output.find("observed=proc_failed") != std::string::npos) {
      ++proc_failed_observers;
    }
  }
  EXPECT_GE(proc_failed_observers, 1)
      << "no survivor surfaced ERR_PROC_FAILED; all fell back to the timeout "
         "backstop";
}

TEST(MultiProcessRecovery, SigkillMidAllreduceTcpdevShrinksAndRecovers) {
  // A 50ms daemon heartbeat bounds detection latency; the Daemon here runs
  // in-process, so set it before construction.
  mpcx::testing::ScopedEnv hb("MPCX_HEARTBEAT_MS", "50");
  run_sigkill_recovery_drill("tcpdev");
}

TEST(MultiProcessRecovery, SigkillMidAllreduceHybdevShrinksAndRecovers) {
  // Simulated 2-node topology: ranks {2,3} share a node, so survivor 2
  // observes the SIGKILLed rank 3 through the shared-memory child while
  // ranks 0/1 observe it over tcp.
  mpcx::testing::ScopedEnv hb("MPCX_HEARTBEAT_MS", "50");
  mpcx::testing::ScopedEnv sim("MPCX_NODE_ID", "2");
  run_sigkill_recovery_drill("hybdev");
}

TEST(Launcher, ValidationErrors) {
  LaunchSpec spec;
  spec.nprocs = 0;
  EXPECT_THROW(launch_world(spec), ArgumentError);
  spec.nprocs = 1;
  spec.daemons.clear();
  EXPECT_THROW(launch_world(spec), ArgumentError);
}

// ---- scalability smoke: 128 hybdev ranks under the connection cap ------------------
//
// An in-process 128-rank hybrid world across 8 simulated nodes
// (MPCX_NODE_ID): intra-node traffic rides shmdev, inter-node rides lazy
// tcpdev channels under MPCX_MAX_CONNS=4. Without the connection manager
// every rank would hold ~112 inter-node sockets (128 * 112 fds total and
// an O(N^2) connect storm at init); with it the suite-wide open-channel
// high-water mark stays near ranks * cap.
TEST(HybridScale, Ring128RanksUnderConnCap) {
  mpcx::testing::ScopedEnv nodes("MPCX_NODE_ID", "8");
  mpcx::testing::ScopedEnv lazy("MPCX_LAZY_CONNECT", "1");
  mpcx::testing::ScopedEnv cap("MPCX_MAX_CONNS", "4");
  prof::set_stats_enabled(true);
  prof::set_pvars_enabled(true);
  constexpr int kRanks = 128;
  constexpr int kStrides = 12;
  std::atomic<std::uint64_t> peak_open{0};
  cluster::Options options;
  options.device = "hybdev";
  cluster::launch(
      kRanks,
      [&](World& world) {
        Intracomm& comm = world.COMM_WORLD();
        const int rank = comm.Rank();
        const int size = comm.Size();
        int mine = rank + 1;
        int sum = 0;
        comm.Allreduce(&mine, 0, &sum, 0, 1, types::INT(), ops::SUM());
        EXPECT_EQ(sum, size * (size + 1) / 2);
        // Shifted rings: every rank eagerly messages kStrides neighbors,
        // most of them inter-node (stride % 8 != 0), so each rank churns
        // through far more tcp peers than the cap allows at once.
        for (int s = 1; s <= kStrides; ++s) {
          int token = rank;
          comm.Send(&token, 0, 1, types::INT(), (rank + s) % size, 50 + s);
        }
        for (int s = 1; s <= kStrides; ++s) {
          int got = -1;
          comm.Recv(&got, 0, 1, types::INT(), (rank - s + size) % size, 50 + s);
          EXPECT_EQ(got, (rank - s + size) % size);
        }
        comm.Barrier();
        if (rank == 0) {
          // All devices are still alive here: sum the per-device peak of
          // the open_connections gauge across every tcpdev child.
          std::uint64_t total = 0;
          for (const auto& entry : prof::PvarRegistry::global().snapshot()) {
            if (entry.label == "tcpdev") {
              total += entry.set->gauge(prof::Pv::OpenConnections).hwm;
            }
          }
          peak_open.store(total);
        }
        comm.Barrier();
      },
      options);
  EXPECT_GT(peak_open.load(), 0u);
  // Soft cap: busy channels ride out a collective, so allow generous
  // headroom over ranks * 4 — but stay an order of magnitude below the
  // ~112 channels/rank a flat all-to-all mesh would pin.
  EXPECT_LE(peak_open.load(), static_cast<std::uint64_t>(kRanks) * 16u);
  prof::set_pvars_enabled(false);
  prof::set_stats_enabled(false);
}

}  // namespace
}  // namespace mpcx::runtime
