// Runtime integration tests: protocol round trips, daemon spawn/status/
// fetch, and full multi-PROCESS launches (true separate OS processes over
// tcpdev) in both local-exec and staged-binary modes (Fig. 9a / 9b).
#include <gtest/gtest.h>

#include <csignal>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "runtime/daemon.hpp"
#include "runtime/launcher.hpp"

namespace mpcx::runtime {
namespace {

/// The rank-probe helper binary lives next to this test binary's build
/// tree; locate it via the MPCX_RANK_PROBE env var set by CMake, falling
/// back to a relative path.
std::string rank_probe_path() {
  if (const char* env = std::getenv("MPCX_RANK_PROBE")) return env;
  return "./src/runtime/mpcx_rank_probe";
}

TEST(Protocol, FrameRoundTrip) {
  net::Acceptor acceptor(0);
  net::Socket client = net::Socket::connect("127.0.0.1", acceptor.port());
  net::Socket server = acceptor.accept();

  SpawnRequest request;
  request.staged = true;
  request.exe = "prog";
  request.args = {"a", "b"};
  request.env = {{"K", "V"}};
  request.binary = {std::byte{1}, std::byte{2}, std::byte{3}};
  write_frame(client, MsgKind::Spawn, request);

  const Frame frame = read_frame(server);
  EXPECT_EQ(frame.kind, MsgKind::Spawn);
  const SpawnRequest decoded = frame.as<SpawnRequest>();
  EXPECT_TRUE(decoded.staged);
  EXPECT_EQ(decoded.exe, "prog");
  EXPECT_EQ(decoded.args, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(decoded.env.at(0).second, "V");
  EXPECT_EQ(decoded.binary.size(), 3u);
}

TEST(Protocol, HeaderOnlyFrames) {
  net::Acceptor acceptor(0);
  net::Socket client = net::Socket::connect("127.0.0.1", acceptor.port());
  net::Socket server = acceptor.accept();
  write_frame(client, MsgKind::Shutdown);
  const Frame frame = read_frame(server);
  EXPECT_EQ(frame.kind, MsgKind::Shutdown);
  EXPECT_TRUE(frame.payload.empty());
}

TEST(Daemon, SpawnStatusFetchLifecycle) {
  Daemon daemon(0);
  daemon.start();
  DaemonClient client(DaemonAddr{"127.0.0.1", daemon.port()});

  SpawnRequest request;
  request.exe = "/bin/sh";
  request.args = {"-c", "echo daemon-child-output; exit 7"};
  const SpawnReply spawned = client.spawn(request);
  ASSERT_GE(spawned.pid, 0) << spawned.error;

  // Poll until exit.
  StatusReply status;
  for (int i = 0; i < 200; ++i) {
    status = client.status(spawned.pid);
    if (status.exited) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.exit_code, 7);

  const FetchReply output = client.fetch(spawned.pid);
  EXPECT_NE(output.output.find("daemon-child-output"), std::string::npos);

  const StatusReply unknown = client.status(999999);
  EXPECT_FALSE(unknown.error.empty());
  daemon.stop();
}

TEST(Daemon, StagedBinaryExecution) {
  Daemon daemon(0);
  daemon.start();
  DaemonClient client(DaemonAddr{"127.0.0.1", daemon.port()});

  // Stage a tiny shell script as the "binary".
  const std::string script = "#!/bin/sh\necho staged-run $1\n";
  SpawnRequest request;
  request.staged = true;
  request.exe = "hello.sh";
  request.args = {"arg1"};
  const auto* bytes = reinterpret_cast<const std::byte*>(script.data());
  request.binary.assign(bytes, bytes + script.size());
  const SpawnReply spawned = client.spawn(request);
  ASSERT_GE(spawned.pid, 0) << spawned.error;

  StatusReply status;
  for (int i = 0; i < 200 && !status.exited; ++i) {
    status = client.status(spawned.pid);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(status.exited);
  EXPECT_EQ(status.exit_code, 0);
  EXPECT_NE(client.fetch(spawned.pid).output.find("staged-run arg1"), std::string::npos);
  daemon.stop();
}

TEST(Daemon, AbortSkipsInitiatorRank) {
  Daemon daemon(0);
  daemon.start();
  DaemonClient client(DaemonAddr{"127.0.0.1", daemon.port()});

  SpawnRequest request;
  request.exe = "/bin/sh";
  request.args = {"-c", "sleep 30"};
  const SpawnReply initiator = client.spawn(request);
  const SpawnReply sibling = client.spawn(request);
  ASSERT_GE(initiator.pid, 0) << initiator.error;
  ASSERT_GE(sibling.pid, 0) << sibling.error;

  // Abort as if `initiator` were the aborting rank: only the sibling is
  // SIGTERMed; the initiator is left to _Exit with its own code.
  const AbortReply reply = client.abort(3, initiator.pid);
  EXPECT_EQ(reply.killed, 1);

  StatusReply sibling_status;
  for (int i = 0; i < 200 && !sibling_status.exited; ++i) {
    sibling_status = client.status(sibling.pid);
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  EXPECT_TRUE(sibling_status.exited);
  EXPECT_EQ(sibling_status.exit_code, 128 + SIGTERM);
  EXPECT_FALSE(client.status(initiator.pid).exited);

  // A launcher-driven abort carries no initiator and kills everything left.
  EXPECT_EQ(client.abort(3).killed, 1);
  daemon.stop();
}

class MultiProcess : public ::testing::TestWithParam<bool> {};

TEST_P(MultiProcess, FourRankWorldAcrossRealProcesses) {
  Daemon daemon(0);
  daemon.start();

  LaunchSpec spec;
  spec.nprocs = 4;
  spec.exe = rank_probe_path();
  spec.stage_binary = GetParam();
  spec.daemons = {DaemonAddr{"127.0.0.1", daemon.port()}};
  spec.device = "tcpdev";

  const auto results = launch_world(spec);
  ASSERT_EQ(results.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)].exit_code, 0)
        << results[static_cast<std::size_t>(r)].output;
    const std::string expect = "rank_probe rank=" + std::to_string(r) + " size=4 allreduce=10";
    EXPECT_NE(results[static_cast<std::size_t>(r)].output.find(expect), std::string::npos)
        << results[static_cast<std::size_t>(r)].output;
  }
  daemon.stop();
}

INSTANTIATE_TEST_SUITE_P(LocalAndStaged, MultiProcess, ::testing::Bool(),
                         [](const auto& info) { return info.param ? std::string("staged")
                                                                  : std::string("local"); });

TEST(MultiProcessShm, FourRealProcessesOverSharedMemory) {
  // The classic single-node MPI deployment: separate OS processes talking
  // through the shared-memory device.
  Daemon daemon(0);
  daemon.start();
  LaunchSpec spec;
  spec.nprocs = 4;
  spec.exe = rank_probe_path();
  spec.daemons = {DaemonAddr{"127.0.0.1", daemon.port()}};
  spec.device = "shmdev";
  const auto results = launch_world(spec);
  ASSERT_EQ(results.size(), 4u);
  for (int r = 0; r < 4; ++r) {
    EXPECT_EQ(results[static_cast<std::size_t>(r)].exit_code, 0)
        << results[static_cast<std::size_t>(r)].output;
    const std::string expect = "rank_probe rank=" + std::to_string(r) + " size=4 allreduce=10";
    EXPECT_NE(results[static_cast<std::size_t>(r)].output.find(expect), std::string::npos)
        << results[static_cast<std::size_t>(r)].output;
  }
  daemon.stop();
}

TEST(Launcher, MultipleDaemonsRoundRobin) {
  Daemon d1(0), d2(0);
  d1.start();
  d2.start();
  LaunchSpec spec;
  spec.nprocs = 2;
  spec.exe = rank_probe_path();
  spec.daemons = {DaemonAddr{"127.0.0.1", d1.port()}, DaemonAddr{"127.0.0.1", d2.port()}};
  const auto results = launch_world(spec);
  ASSERT_EQ(results.size(), 2u);
  EXPECT_EQ(results[0].exit_code, 0) << results[0].output;
  EXPECT_EQ(results[1].exit_code, 0) << results[1].output;
  d1.stop();
  d2.stop();
}

TEST(Launcher, ValidationErrors) {
  LaunchSpec spec;
  spec.nprocs = 0;
  EXPECT_THROW(launch_world(spec), ArgumentError);
  spec.nprocs = 1;
  spec.daemons.clear();
  EXPECT_THROW(launch_world(spec), ArgumentError);
}

}  // namespace
}  // namespace mpcx::runtime
