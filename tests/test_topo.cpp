// Unit tests for the n-level locality tree (mpcx::topo): MPCX_TOPO spec
// parsing and the per-rank exchange views driving hierarchical collectives.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/topo.hpp"

namespace mpcx::topo {
namespace {

TEST(TopoSpec, ParsesLevels) {
  const TopoSpec spec = parse_spec("numa:2,cache:4");
  ASSERT_EQ(spec.levels.size(), 2u);
  EXPECT_EQ(spec.levels[0].name, "numa");
  EXPECT_EQ(spec.levels[0].fanout, 2);
  EXPECT_EQ(spec.levels[1].name, "cache");
  EXPECT_EQ(spec.levels[1].fanout, 4);
}

TEST(TopoSpec, EmptyAndTrailingComma) {
  EXPECT_TRUE(parse_spec("").empty());
  const TopoSpec spec = parse_spec("numa:2,");
  ASSERT_EQ(spec.levels.size(), 1u);
  EXPECT_EQ(spec.levels[0].fanout, 2);
}

TEST(TopoSpec, MalformedSpecsAreRejectedWhole) {
  // A half-applied topology is worse than none: any bad token voids the
  // entire spec so collectives fall back to the flat/engine-node behaviour.
  EXPECT_TRUE(parse_spec("numa").empty());
  EXPECT_TRUE(parse_spec("numa:").empty());
  EXPECT_TRUE(parse_spec(":2").empty());
  EXPECT_TRUE(parse_spec("numa:0").empty());
  EXPECT_TRUE(parse_spec("numa:x").empty());
  EXPECT_TRUE(parse_spec("numa:2,cache:zzz").empty());
  EXPECT_TRUE(parse_spec("numa:99999999999").empty());
}

TEST(TopoView, SingleRankOrNoLevelsIsFlat) {
  EXPECT_EQ(build_view(1, 0, -1, {}, parse_spec("numa:2")).depth, 0);
  EXPECT_EQ(build_view(8, 3, -1, {}, TopoSpec{}).depth, 0);
  // One engine node and no virtual levels: nothing to split on.
  EXPECT_EQ(build_view(4, 0, -1, {7, 7, 7, 7}, TopoSpec{}).depth, 0);
}

TEST(TopoView, RoundRobinNodesGiveTwoLevels) {
  // MPCX_NODE_ID=2 style simulation: ranks alternate nodes, so node groups
  // are NOT contiguous rank blocks.
  const std::vector<int> node_of = {0, 1, 0, 1};
  const View v0 = build_view(4, 0, -1, node_of, TopoSpec{});
  EXPECT_EQ(v0.depth, 1);
  EXPECT_FALSE(v0.contiguous);
  ASSERT_EQ(v0.exchanges.size(), 2u);
  // Exchange 0: the node leaders; exchange 1: my node's members.
  EXPECT_EQ(v0.exchanges[0].peers, (std::vector<int>{0, 1}));
  EXPECT_EQ(v0.exchanges[0].my_vidx, 0);
  EXPECT_EQ(v0.exchanges[1].peers, (std::vector<int>{0, 2}));
  EXPECT_EQ(v0.node_members, (std::vector<int>{0, 2}));
  EXPECT_EQ(v0.node_leader, 0);
  EXPECT_EQ(v0.node_member_idx, 0);
  EXPECT_EQ(v0.node_exchange_begin, 1);

  const View v3 = build_view(4, 3, -1, node_of, TopoSpec{});
  // Rank 3 is no leader: it only participates in its leaf exchange.
  EXPECT_EQ(v3.exchanges[0].my_vidx, -1);
  EXPECT_EQ(v3.exchanges[1].peers, (std::vector<int>{1, 3}));
  EXPECT_EQ(v3.exchanges[1].my_vidx, 1);
  EXPECT_EQ(v3.exchanges[1].root_vidx, 0);
  EXPECT_EQ(v3.node_members, (std::vector<int>{1, 3}));
  EXPECT_EQ(v3.node_leader, 1);
}

TEST(TopoView, ContiguousNodeBlocksSetTheFlag) {
  const View v = build_view(4, 1, -1, {0, 0, 1, 1}, TopoSpec{});
  EXPECT_EQ(v.depth, 1);
  EXPECT_TRUE(v.contiguous);
}

TEST(TopoView, VirtualHierarchySplitsContiguousBlocks) {
  // 8 ranks on one node, numa:2,cache:2 -> {0..3}{4..7} then {01}{23}{45}{67}.
  const TopoSpec spec = parse_spec("numa:2,cache:2");
  const View v0 = build_view(8, 0, -1, {}, spec);
  EXPECT_EQ(v0.depth, 2);
  EXPECT_TRUE(v0.contiguous);
  ASSERT_EQ(v0.exchanges.size(), 3u);
  EXPECT_EQ(v0.exchanges[0].peers, (std::vector<int>{0, 4}));
  EXPECT_EQ(v0.exchanges[1].peers, (std::vector<int>{0, 2}));
  EXPECT_EQ(v0.exchanges[2].peers, (std::vector<int>{0, 1}));
  // No engine node level: the whole communicator is the sharing domain and
  // the single-copy buffer (if eligible) covers every exchange.
  EXPECT_EQ(v0.node_members.size(), 8u);
  EXPECT_EQ(v0.node_exchange_begin, 0);

  const View v6 = build_view(8, 6, -1, {}, spec);
  EXPECT_EQ(v6.exchanges[0].my_vidx, -1);  // numa leader is 4
  EXPECT_EQ(v6.exchanges[1].peers, (std::vector<int>{4, 6}));
  EXPECT_EQ(v6.exchanges[1].my_vidx, 1);
  EXPECT_EQ(v6.exchanges[2].peers, (std::vector<int>{6, 7}));
  EXPECT_EQ(v6.exchanges[2].root_vidx, 0);
}

TEST(TopoView, RootedCollectivesReRootTheRootsPath) {
  // Every group on rank 5's path is led by 5, so a rooted broadcast never
  // relays through a rank that is not on the path from the root.
  const TopoSpec spec = parse_spec("numa:2,cache:2");
  const View v5 = build_view(8, 5, 5, {}, spec);
  EXPECT_EQ(v5.exchanges[0].peers, (std::vector<int>{0, 5}));
  EXPECT_EQ(v5.exchanges[0].root_vidx, 1);
  EXPECT_EQ(v5.exchanges[1].peers, (std::vector<int>{5, 6}));
  EXPECT_EQ(v5.exchanges[1].root_vidx, 0);
  EXPECT_EQ(v5.exchanges[2].peers, (std::vector<int>{4, 5}));
  EXPECT_EQ(v5.exchanges[2].root_vidx, 1);
  // An off-path rank sees the re-rooted leaders too.
  const View v0 = build_view(8, 0, 5, {}, spec);
  EXPECT_EQ(v0.exchanges[0].peers, (std::vector<int>{0, 5}));
  EXPECT_EQ(v0.exchanges[0].root_vidx, 1);
  // Node leadership is root-aligned for the single-copy writer/collector.
  EXPECT_EQ(v0.node_leader, 5);
}

TEST(TopoView, OverDeepSpecsDegradeToSingletonFloor) {
  // 4 ranks, three fanout-2 levels: the second level would already produce
  // singletons, so the tree stops above it instead of adding empty levels.
  const View v = build_view(4, 2, -1, {}, parse_spec("a:2,b:2,c:2"));
  EXPECT_EQ(v.depth, 1);
  EXPECT_EQ(v.exchanges[1].peers, (std::vector<int>{2, 3}));
}

TEST(TopoView, FanoutOneAndNoOpLevelsAreSkipped) {
  const View v = build_view(4, 0, -1, {}, parse_spec("numa:1,cache:2"));
  EXPECT_EQ(v.depth, 1);
  EXPECT_EQ(v.exchanges[1].peers, (std::vector<int>{0, 1}));
}

TEST(TopoView, DepthIsClampedToMaxLevels) {
  std::string spec;
  for (int i = 0; i < 12; ++i) spec += (i ? "," : "") + std::string("l") +
                                       std::to_string(i) + ":2";
  const View v = build_view(1 << 11, 0, -1, {}, parse_spec(spec));
  EXPECT_EQ(v.depth, kMaxTopoLevels);
}

TEST(TopoView, ParticipationIsASuffixAndEveryRankReachesTheTree) {
  // Invariant the collective schedules rely on: each rank participates in a
  // contiguous suffix of exchanges m..depth (its minimal leadership depth
  // onward), is the exchange root everywhere but exchange m, and always
  // participates at the leaf.
  const std::vector<int> node_of = {0, 1, 2, 0, 1, 2, 0, 1, 2, 0, 1, 2};
  const TopoSpec spec = parse_spec("numa:2");
  for (int root : {-1, 0, 5, 11}) {
    for (int r = 0; r < 12; ++r) {
      const View v = build_view(12, r, root, node_of, spec);
      ASSERT_EQ(static_cast<int>(v.exchanges.size()), v.depth + 1);
      int first = -1;
      for (int k = 0; k <= v.depth; ++k) {
        const Exchange& ex = v.exchanges[k];
        ASSERT_FALSE(ex.peers.empty());
        ASSERT_GE(ex.root_vidx, 0);
        if (ex.my_vidx >= 0) {
          if (first < 0) first = k;
        } else {
          EXPECT_LT(first, 0) << "participation not a suffix: rank " << r;
        }
        if (first >= 0 && k > first && ex.my_vidx >= 0) {
          EXPECT_EQ(ex.my_vidx, ex.root_vidx)
              << "rank " << r << " not exchange root below its minimal depth";
        }
      }
      EXPECT_EQ(v.exchanges[v.depth].my_vidx >= 0, true);
      EXPECT_GE(v.node_member_idx, 0);
    }
  }
}

}  // namespace
}  // namespace mpcx::topo
