// Nonblocking collectives (the CollState schedule engine) plus regression
// tests for the PR's satellite fixes:
//   * Testany over only null/finalized requests -> immediate UNDEFINED
//   * zero-count Alltoall/Alltoallv/Scan skip the wire but keep local copies
//   * Reduce_scatter rejects negative recvcounts before sizing buffers
//   * Prequest::Start re-activation race; Startall validates before launching
//
// The device matrix mirrors test_collectives (hybdev simulates a 2-node
// topology so the hierarchical two-level schedules engage). The threading
// tests double as the TSan leg: worker threads drive independent schedules
// on duplicated communicators while another thread blocks in Waitany over a
// mix of plain p2p requests and a collective request.
#include <gtest/gtest.h>

#include <array>
#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <tuple>
#include <vector>

#include "core/cluster.hpp"
#include "core/intracomm.hpp"
#include "env_util.hpp"
#include "support/error.hpp"
#include "support/faults.hpp"

namespace mpcx {
namespace {

using mpcx::testing::ScopedEnv;

class NbColl : public ::testing::TestWithParam<std::tuple<const char*, int>> {
 protected:
  void SetUp() override {
    if (std::string(std::get<0>(GetParam())) == "hybdev" &&
        std::getenv("MPCX_NODE_ID") == nullptr) {
      node_sim_ = std::make_unique<ScopedEnv>("MPCX_NODE_ID", "2");
    }
  }
  void TearDown() override { node_sim_.reset(); }

  cluster::Options opts() {
    cluster::Options options;
    options.device = std::get<0>(GetParam());
    return options;
  }
  int nprocs() const { return std::get<1>(GetParam()); }

 private:
  std::unique_ptr<ScopedEnv> node_sim_;
};

TEST_P(NbColl, IbarrierCompletes) {
  std::atomic<int> arrivals{0};
  cluster::launch(nprocs(), [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    for (int epoch = 1; epoch <= 3; ++epoch) {
      ++arrivals;
      Request barrier = comm.Ibarrier();
      barrier.Wait();
      EXPECT_GE(arrivals.load(), epoch * comm.Size());
      comm.Barrier();
    }
  }, opts());
}

TEST_P(NbColl, IbcastFromEveryRoot) {
  cluster::launch(nprocs(), [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    for (int root = 0; root < comm.Size(); ++root) {
      std::vector<std::int32_t> data(17, comm.Rank() == root ? root * 7 + 1 : -1);
      Request request = comm.Ibcast(data.data(), 0, 17, types::INT(), root);
      request.Wait();
      for (const std::int32_t v : data) EXPECT_EQ(v, root * 7 + 1);
    }
  }, opts());
}

TEST_P(NbColl, IreduceSumToNonZeroRoot) {
  cluster::launch(nprocs(), [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int n = comm.Size();
    const int root = n - 1;
    std::vector<std::int32_t> mine(9);
    for (int i = 0; i < 9; ++i) mine[static_cast<std::size_t>(i)] = (comm.Rank() + 1) * (i + 1);
    std::vector<std::int32_t> result(9, -1);
    Request request =
        comm.Ireduce(mine.data(), 0, result.data(), 0, 9, types::INT(), ops::SUM(), root);
    Status status = request.Wait();
    EXPECT_EQ(status.Get_error(), ErrCode::Success);
    if (comm.Rank() == root) {
      for (int i = 0; i < 9; ++i) {
        EXPECT_EQ(result[static_cast<std::size_t>(i)], n * (n + 1) / 2 * (i + 1));
      }
    }
  }, opts());
}

TEST_P(NbColl, IreduceNonCommutativeMatchesBlocking) {
  // Non-commutative fold must use the canonical rank order; compare the
  // schedule-engine result against the blocking linear fold.
  const Op op = Op::make_user<std::int32_t>(
      [](std::int32_t acc, std::int32_t next) { return 2 * acc + next; }, false);
  cluster::launch(nprocs(), [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    std::vector<std::int32_t> mine(4);
    for (int i = 0; i < 4; ++i) mine[static_cast<std::size_t>(i)] = comm.Rank() + i + 1;
    std::vector<std::int32_t> expected(4, -1);
    comm.Reduce(mine.data(), 0, expected.data(), 0, 4, types::INT(), op, 0);
    std::vector<std::int32_t> result(4, -2);
    comm.Ireduce(mine.data(), 0, result.data(), 0, 4, types::INT(), op, 0).Wait();
    if (comm.Rank() == 0) {
      EXPECT_EQ(result, expected);
    }
  }, opts());
}

TEST_P(NbColl, IallreduceMatchesBlocking) {
  cluster::launch(nprocs(), [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    std::vector<double> mine(13);
    for (int i = 0; i < 13; ++i) {
      mine[static_cast<std::size_t>(i)] = (comm.Rank() + 1) * 0.5 + i;
    }
    std::vector<double> expected(13, -1.0);
    comm.Allreduce(mine.data(), 0, expected.data(), 0, 13, types::DOUBLE(), ops::SUM());
    std::vector<double> result(13, -2.0);
    comm.Iallreduce(mine.data(), 0, result.data(), 0, 13, types::DOUBLE(), ops::SUM()).Wait();
    EXPECT_EQ(result, expected);
  }, opts());
}

TEST_P(NbColl, IgatherToEveryRoot) {
  cluster::launch(nprocs(), [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int n = comm.Size();
    for (int root = 0; root < n; ++root) {
      std::vector<std::int32_t> mine = {comm.Rank() * 2, comm.Rank() * 2 + 1};
      std::vector<std::int32_t> all(static_cast<std::size_t>(2 * n), -1);
      Request request = comm.Igather(mine.data(), 0, 2, types::INT(), all.data(), 0, 2,
                                     types::INT(), root);
      request.Wait();
      if (comm.Rank() == root) {
        for (int i = 0; i < 2 * n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
      }
    }
  }, opts());
}

TEST_P(NbColl, IallgatherMatchesBlocking) {
  cluster::launch(nprocs(), [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int n = comm.Size();
    std::vector<std::int32_t> mine = {comm.Rank() * 3, comm.Rank() * 3 + 1, comm.Rank() * 3 + 2};
    std::vector<std::int32_t> all(static_cast<std::size_t>(3 * n), -1);
    comm.Iallgather(mine.data(), 0, 3, types::INT(), all.data(), 0, 3, types::INT()).Wait();
    for (int i = 0; i < 3 * n; ++i) EXPECT_EQ(all[static_cast<std::size_t>(i)], i);
  }, opts());
}

TEST_P(NbColl, ZeroCountAndSingleRankCompleteImmediately) {
  cluster::launch(nprocs(), [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    std::int32_t in = comm.Rank() + 1;
    std::int32_t out = -1;
    Request bcast = comm.Ibcast(&in, 0, 0, types::INT(), 0);
    Request reduce = comm.Iallreduce(&in, 0, &out, 0, 0, types::INT(), ops::SUM());
    // Zero wire work: both must already test complete.
    EXPECT_TRUE(bcast.Test().has_value());
    EXPECT_TRUE(reduce.Test().has_value());
    comm.Barrier();
  }, opts());
}

TEST_P(NbColl, ManyOverlappingSchedulesStayIsolated) {
  // Several schedules in flight on one communicator at once; per-sequence
  // tags must keep their wire traffic apart even when completion order is
  // scrambled by waiting in reverse.
  cluster::launch(nprocs(), [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int n = comm.Size();
    constexpr int kInFlight = 6;
    std::vector<std::vector<std::int32_t>> ins(kInFlight), outs(kInFlight);
    std::vector<Request> requests;
    for (int k = 0; k < kInFlight; ++k) {
      ins[static_cast<std::size_t>(k)].assign(5, (comm.Rank() + 1) * (k + 1));
      outs[static_cast<std::size_t>(k)].assign(5, -1);
      requests.push_back(comm.Iallreduce(ins[static_cast<std::size_t>(k)].data(), 0,
                                         outs[static_cast<std::size_t>(k)].data(), 0, 5,
                                         types::INT(), ops::SUM()));
    }
    for (int k = kInFlight - 1; k >= 0; --k) {
      requests[static_cast<std::size_t>(k)].Wait();
      for (const std::int32_t v : outs[static_cast<std::size_t>(k)]) {
        EXPECT_EQ(v, (k + 1) * n * (n + 1) / 2);
      }
    }
  }, opts());
}

TEST_P(NbColl, WaitanyOverMixedP2pAndCollective) {
  cluster::launch(nprocs(), [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int n = comm.Size();
    const int left = (comm.Rank() - 1 + n) % n;
    const int right = (comm.Rank() + 1) % n;
    std::int32_t token = -1;
    std::vector<double> in(8, comm.Rank() + 1.0);
    std::vector<double> out(8, -1.0);
    std::vector<Request> requests;
    requests.push_back(comm.Irecv(&token, 0, 1, types::INT(), left, 7));
    requests.push_back(comm.Iallreduce(in.data(), 0, out.data(), 0, 8, types::DOUBLE(),
                                       ops::SUM()));
    requests.emplace_back();  // null entry must be skipped
    std::int32_t self = comm.Rank();
    comm.Send(&self, 0, 1, types::INT(), right, 7);
    for (int completed = 0; completed < 2; ++completed) {
      Status status = Request::Waitany(requests);
      ASSERT_NE(status.index, UNDEFINED);
      EXPECT_EQ(status.Get_error(), ErrCode::Success);
    }
    // Everything done: one more Waitany sees only finalized/null entries.
    EXPECT_EQ(Request::Waitany(requests).index, UNDEFINED);
    EXPECT_EQ(token, left);
    for (const double v : out) EXPECT_EQ(v, n * (n + 1) / 2.0);
  }, opts());
}

TEST_P(NbColl, ThreadsDriveIndependentSchedules) {
  // TSan leg: two worker threads per rank run their own Iallreduce streams
  // on duplicated communicators while the rank's main thread blocks in
  // Waitany on a mixed set. Any thread touching any request must advance
  // every in-flight schedule (progression-from-any-thread).
  cluster::launch(nprocs(), [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int n = comm.Size();
    auto dup_a = comm.Dup();
    auto dup_b = comm.Dup();
    auto worker = [n](Intracomm& wcomm, int salt) {
      for (int iter = 0; iter < 3; ++iter) {
        std::vector<std::int32_t> in(4, (wcomm.Rank() + 1) * (iter + salt));
        std::vector<std::int32_t> out(4, -1);
        Request request =
            wcomm.Iallreduce(in.data(), 0, out.data(), 0, 4, types::INT(), ops::SUM());
        request.Wait();
        for (const std::int32_t v : out) EXPECT_EQ(v, (iter + salt) * n * (n + 1) / 2);
      }
    };
    std::thread thread_a([&] { worker(*dup_a, 1); });
    std::thread thread_b([&] { worker(*dup_b, 5); });
    // Main thread: Waitany over {p2p recv, collective} while workers churn.
    const int left = (comm.Rank() - 1 + n) % n;
    const int right = (comm.Rank() + 1) % n;
    std::int32_t token = -1;
    std::vector<std::int32_t> in(4, comm.Rank() + 1);
    std::vector<std::int32_t> out(4, -1);
    std::vector<Request> requests;
    requests.push_back(comm.Irecv(&token, 0, 1, types::INT(), left, 9));
    requests.push_back(comm.Iallreduce(in.data(), 0, out.data(), 0, 4, types::INT(), ops::SUM()));
    std::int32_t self = comm.Rank();
    comm.Send(&self, 0, 1, types::INT(), right, 9);
    for (int completed = 0; completed < 2; ++completed) {
      ASSERT_NE(Request::Waitany(requests).index, UNDEFINED);
    }
    thread_a.join();
    thread_b.join();
    EXPECT_EQ(token, left);
    for (const std::int32_t v : out) EXPECT_EQ(v, n * (n + 1) / 2);
  }, opts());
}

TEST_P(NbColl, HierarchicalMatchesFlat) {
  // Same inputs through the two-level schedules (simulated 2-node topology)
  // and the flat ones (MPCX_HIER_COLLS=0); results must agree.
  auto workload = [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int n = comm.Size();
    std::vector<std::int32_t> in(6, comm.Rank() + 1);
    std::vector<std::int32_t> sum(6, -1);
    comm.Iallreduce(in.data(), 0, sum.data(), 0, 6, types::INT(), ops::SUM()).Wait();
    for (const std::int32_t v : sum) EXPECT_EQ(v, n * (n + 1) / 2);
    std::vector<std::int32_t> data(5, comm.Rank() == 1 % n ? 77 : -1);
    comm.Ibcast(data.data(), 0, 5, types::INT(), 1 % n).Wait();
    for (const std::int32_t v : data) EXPECT_EQ(v, 77);
    std::vector<std::int32_t> reduced(6, -1);
    comm.Ireduce(in.data(), 0, reduced.data(), 0, 6, types::INT(), ops::MAX(), 0).Wait();
    if (comm.Rank() == 0) {
      for (const std::int32_t v : reduced) EXPECT_EQ(v, n);
    }
    comm.Ibarrier().Wait();
  };
  ScopedEnv sim("MPCX_NODE_ID", "2");
  cluster::launch(nprocs(), workload, opts());
  {
    ScopedEnv flat("MPCX_HIER_COLLS", "0");
    cluster::launch(nprocs(), workload, opts());
  }
}

TEST_P(NbColl, NLevelTopoMatchesFlat) {
  // The schedule engine's n-level schedules (deep virtual hierarchy below
  // the simulated node map) against the flat ones, including the ordered
  // non-commutative chain.
  auto workload = [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int n = comm.Size();
    const int rank = comm.Rank();
    std::vector<std::int32_t> in(9);
    for (int i = 0; i < 9; ++i) in[static_cast<std::size_t>(i)] = rank * 13 + i;
    std::vector<std::int32_t> sum(9, -1);
    comm.Iallreduce(in.data(), 0, sum.data(), 0, 9, types::INT(), ops::SUM()).Wait();
    for (int i = 0; i < 9; ++i) {
      EXPECT_EQ(sum[static_cast<std::size_t>(i)], n * (n - 1) / 2 * 13 + n * i);
    }
    for (int root = 0; root < n; ++root) {
      std::vector<std::int32_t> data(7, rank == root ? root + 9 : -1);
      comm.Ibcast(data.data(), 0, 7, types::INT(), root).Wait();
      for (const std::int32_t v : data) EXPECT_EQ(v, root + 9);
    }
    const Op chain = Op::make_user<std::int64_t>(
        [](std::int64_t a, std::int64_t b) { return a * 10 + b; }, /*commutative=*/false);
    std::int64_t expect = 0;
    for (int r = 0; r < n; ++r) expect = r == 0 ? 1 : expect * 10 + (r + 1);
    const std::int64_t mine = rank + 1;
    std::int64_t chained = -1;
    comm.Ireduce(&mine, 0, &chained, 0, 1, types::LONG(), chain, n - 1).Wait();
    if (rank == n - 1) EXPECT_EQ(chained, expect);
    std::int64_t all = -1;
    comm.Iallreduce(&mine, 0, &all, 0, 1, types::LONG(), chain).Wait();
    EXPECT_EQ(all, expect);
    comm.Ibarrier().Wait();
  };
  ScopedEnv sim("MPCX_NODE_ID", "2");
  ScopedEnv topo("MPCX_TOPO", "numa:2,cache:2");
  cluster::launch(nprocs(), workload, opts());
  {
    ScopedEnv flat("MPCX_HIER_COLLS", "0");
    cluster::launch(nprocs(), workload, opts());
  }
}

TEST(NbCollFaults, InjectedDropSurfacesThroughRequestError) {
  // A dropped frame under an operation deadline must surface as an error on
  // the collective's own Request (ERRORS_RETURN), not hang the schedule.
  struct FaultScope {
    ~FaultScope() {
      faults::clear_plan();
      faults::set_op_timeout_ms(0);
    }
  } scope;
  std::atomic<int> failed{0};
  std::atomic<bool> armed{false};
  cluster::launch(2, [&](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    comm.Set_errhandler(ERRORS_RETURN);
    comm.Barrier();
    // One rank arms the (process-global) plan; nobody posts schedule traffic
    // until it is active, so no frame can sneak through before the drop.
    if (comm.Rank() == 0) {
      faults::set_op_timeout_ms(300);
      faults::set_plan(*faults::parse_plan("drop=1.0"));
      armed.store(true);
    } else {
      while (!armed.load()) std::this_thread::yield();
    }
    std::vector<std::int32_t> in(64, comm.Rank() + 1);
    std::vector<std::int32_t> out(64, -1);
    Request request =
        comm.Iallreduce(in.data(), 0, out.data(), 0, 64, types::INT(), ops::SUM());
    Status status = request.Wait();
    EXPECT_NE(status.Get_error(), ErrCode::Success) << "drop plan should fail the schedule";
    ++failed;
    // Resync off-wire (the plan is process-global), then disarm and let
    // Finalize's barrier run clean.
    while (failed.load() < comm.Size()) std::this_thread::yield();
    faults::clear_plan();
    faults::set_op_timeout_ms(0);
  }, [] {
    cluster::Options options;
    options.device = "tcpdev";
    return options;
  }());
}

// ---- satellite regressions --------------------------------------------------------

TEST(NbRegression, TestanyAllNullReturnsUndefinedImmediately) {
  std::vector<Request> requests(3);  // all null
  const auto status = Request::Testany(requests);
  ASSERT_TRUE(status.has_value()) << "all-null Testany must complete immediately";
  EXPECT_EQ(status->index, UNDEFINED);
}

TEST(NbRegression, TestanyAllFinalizedReturnsUndefined) {
  cluster::launch(2, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int peer = 1 - comm.Rank();
    std::int32_t in = comm.Rank();
    std::int32_t out = -1;
    std::vector<Request> requests;
    requests.push_back(comm.Irecv(&out, 0, 1, types::INT(), peer, 3));
    requests.push_back(comm.Isend(&in, 0, 1, types::INT(), peer, 3));
    Request::Waitall(requests);
    EXPECT_EQ(out, peer);
    // Both entries finalized: Testany completes with UNDEFINED, not nullopt.
    const auto status = Request::Testany(requests);
    ASSERT_TRUE(status.has_value());
    EXPECT_EQ(status->index, UNDEFINED);
  });
}

TEST(NbRegression, AlltoallZeroCountReturns) {
  cluster::launch(3, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    std::vector<std::int32_t> send(3, comm.Rank());
    std::vector<std::int32_t> recv(3, -1);
    comm.Alltoall(send.data(), 0, 0, types::INT(), recv.data(), 0, 0, types::INT());
    for (const std::int32_t v : recv) EXPECT_EQ(v, -1);  // untouched
    comm.Barrier();
  });
}

TEST(NbRegression, AlltoallvMixedZeroCountsKeepsData) {
  // Only rank 0 -> rank 1 carries data (2 ints); every other pair, including
  // the self-exchange, is zero-count. The zero legs must neither hang nor
  // disturb the one real transfer.
  cluster::launch(3, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    const int rank = comm.Rank();
    std::vector<std::int32_t> send = {rank * 10, rank * 10 + 1};
    std::vector<std::int32_t> recv = {-1, -1};
    std::vector<int> sendcounts(3, 0), recvcounts(3, 0);
    std::vector<int> sdispls(3, 0), rdispls(3, 0);
    if (rank == 0) sendcounts[1] = 2;
    if (rank == 1) recvcounts[0] = 2;
    comm.Alltoallv(send.data(), 0, sendcounts, sdispls, types::INT(), recv.data(), 0, recvcounts,
                   rdispls, types::INT());
    if (rank == 1) {
      EXPECT_EQ(recv[0], 0);
      EXPECT_EQ(recv[1], 1);
    } else {
      EXPECT_EQ(recv[0], -1);
      EXPECT_EQ(recv[1], -1);
    }
  });
}

TEST(NbRegression, ScanZeroCountReturns) {
  cluster::launch(3, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    std::int32_t in = comm.Rank();
    std::int32_t out = -1;
    comm.Scan(&in, 0, &out, 0, 0, types::INT(), ops::SUM());
    EXPECT_EQ(out, -1);  // untouched
    comm.Barrier();
  });
}

TEST(NbRegression, ReduceScatterNegativeRecvcountThrows) {
  cluster::launch(2, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    std::vector<std::int32_t> in = {1, 2};
    std::vector<std::int32_t> out = {-1, -1};
    const std::vector<int> recvcounts = {1, -1};
    // Every rank throws before any wire traffic, so the failure is symmetric.
    EXPECT_THROW(comm.Reduce_scatter(in.data(), 0, out.data(), 0, recvcounts, types::INT(),
                                     ops::SUM()),
                 ArgumentError);
  });
}

TEST(NbRegression, PrequestStartWhileInFlightThrows) {
  cluster::launch(2, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    if (comm.Rank() == 0) {
      std::int32_t v = -1;
      Prequest request = comm.Recv_init(&v, 0, 1, types::INT(), 1, 3);
      request.Start();
      // No sender yet, so the activation cannot be device-complete.
      EXPECT_THROW(request.Start(), CommError);
      comm.Barrier();  // release the sender
      request.Wait();
      EXPECT_EQ(v, 42);
      request.Start();  // restart after finalize works
      comm.Barrier();
      request.Wait();
      EXPECT_EQ(v, 43);
    } else {
      comm.Barrier();
      std::int32_t x = 42;
      comm.Send(&x, 0, 1, types::INT(), 0, 3);
      comm.Barrier();
      x = 43;
      comm.Send(&x, 0, 1, types::INT(), 0, 3);
    }
  });
}

TEST(NbRegression, StartallValidatesBeforeLaunchingAnything) {
  cluster::launch(2, [](World& world) {
    Intracomm& comm = world.COMM_WORLD();
    if (comm.Rank() == 0) {
      std::int32_t out_going = 11;
      std::int32_t incoming = -1;
      std::array<Prequest, 2> batch = {comm.Send_init(&out_going, 0, 1, types::INT(), 1, 5),
                                       comm.Recv_init(&incoming, 0, 1, types::INT(), 1, 6)};
      batch[1].Start();  // still in flight: Startall must reject the batch
      EXPECT_THROW(Prequest::Startall(batch), CommError);
      comm.Barrier();  // peer now sends the first tag-6 message
      batch[1].Wait();
      EXPECT_EQ(incoming, 66);
      Prequest::Startall(batch);  // both inactive now; launches cleanly
      batch[0].Wait();
      batch[1].Wait();
      EXPECT_EQ(incoming, 67);
      comm.Barrier();
    } else {
      comm.Barrier();
      std::int32_t x = 66;
      comm.Send(&x, 0, 1, types::INT(), 0, 6);
      std::int32_t y = -1;
      comm.Recv(&y, 0, 1, types::INT(), 0, 5);
      EXPECT_EQ(y, 11);  // exactly one tag-5 send reached the wire
      x = 67;
      comm.Send(&x, 0, 1, types::INT(), 0, 6);
      comm.Barrier();
      // The failed Startall must not have leaked an extra tag-5 send.
      EXPECT_FALSE(comm.Iprobe(0, 5).has_value());
    }
  });
}

INSTANTIATE_TEST_SUITE_P(
    DeviceBySize, NbColl,
    ::testing::Combine(::testing::Values("mxdev", "tcpdev", "shmdev", "hybdev"),
                       ::testing::Values(1, 2, 3, 4, 7)),
    [](const auto& info) {
      return std::string(std::get<0>(info.param)) + "_np" +
             std::to_string(std::get<1>(info.param));
    });

}  // namespace
}  // namespace mpcx
