// Tests for Group set algebra and the predefined/user reduction Ops.
#include <gtest/gtest.h>

#include <array>
#include <vector>

#include "core/group.hpp"
#include "core/op.hpp"

namespace mpcx {
namespace {

// ---- Group ------------------------------------------------------------------------

TEST(Group, RankLookups) {
  Group group({4, 2, 7});
  EXPECT_EQ(group.Size(), 3);
  EXPECT_EQ(group.Rank_of_world(2), 1);
  EXPECT_EQ(group.Rank_of_world(5), UNDEFINED);
  EXPECT_EQ(group.world_rank(2), 7);
  EXPECT_THROW(group.world_rank(3), ArgumentError);
  EXPECT_TRUE(group.contains_world(4));
}

TEST(Group, UnionKeepsFirstOrderThenNew) {
  Group a({0, 1, 2});
  Group b({2, 3, 1, 4});
  EXPECT_EQ(a.Union(b).world_ranks(), (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(Group, Intersection) {
  Group a({0, 1, 2, 3});
  Group b({3, 1, 9});
  EXPECT_EQ(a.Intersection(b).world_ranks(), (std::vector<int>{1, 3}));
}

TEST(Group, Difference) {
  Group a({0, 1, 2, 3});
  Group b({1, 3});
  EXPECT_EQ(a.Difference(b).world_ranks(), (std::vector<int>{0, 2}));
}

TEST(Group, InclExclByGroupRank) {
  Group group({10, 11, 12, 13});
  const int pick[] = {3, 0};
  EXPECT_EQ(group.Incl(pick).world_ranks(), (std::vector<int>{13, 10}));
  const int drop[] = {1, 2};
  EXPECT_EQ(group.Excl(drop).world_ranks(), (std::vector<int>{10, 13}));
  const int bad[] = {9};
  EXPECT_THROW(group.Incl(bad), ArgumentError);
}

TEST(Group, RangeInclExcl) {
  Group group({0, 1, 2, 3, 4, 5, 6, 7});
  const std::array<int, 3> every_other{0, 6, 2};
  EXPECT_EQ(group.Range_incl(std::span(&every_other, 1)).world_ranks(),
            (std::vector<int>{0, 2, 4, 6}));
  EXPECT_EQ(group.Range_excl(std::span(&every_other, 1)).world_ranks(),
            (std::vector<int>{1, 3, 5, 7}));
  const std::array<int, 3> descending{3, 1, -1};
  EXPECT_EQ(group.Range_incl(std::span(&descending, 1)).world_ranks(),
            (std::vector<int>{3, 2, 1}));
  const std::array<int, 3> zero_stride{0, 1, 0};
  EXPECT_THROW(group.Range_incl(std::span(&zero_stride, 1)), ArgumentError);
}

TEST(Group, TranslateRanks) {
  Group a({5, 6, 7, 8});
  Group b({8, 6});
  const int ranks[] = {0, 1, 3};
  EXPECT_EQ(a.Translate_ranks(ranks, b), (std::vector<int>{UNDEFINED, 1, 0}));
}

TEST(Group, CompareSemantics) {
  Group a({1, 2, 3});
  EXPECT_EQ(a.compare(Group({1, 2, 3})), Group::Compare::Ident);
  EXPECT_EQ(a.compare(Group({3, 1, 2})), Group::Compare::Similar);
  EXPECT_EQ(a.compare(Group({1, 2})), Group::Compare::Unequal);
  EXPECT_EQ(a.compare(Group({1, 2, 4})), Group::Compare::Unequal);
}

// ---- Ops --------------------------------------------------------------------------

template <typename T>
std::vector<T> apply(const Op& op, std::vector<T> inout, const std::vector<T>& in) {
  op.apply(buf::type_code_of<T>(), in.data(), inout.data(), inout.size());
  return inout;
}

TEST(Ops, SumMaxMinProd) {
  EXPECT_EQ(apply<int>(ops::SUM(), {1, 2}, {10, 20}), (std::vector<int>{11, 22}));
  EXPECT_EQ(apply<double>(ops::MAX(), {1.0, 9.0}, {5.0, 2.0}), (std::vector<double>{5.0, 9.0}));
  EXPECT_EQ(apply<std::int64_t>(ops::MIN(), {5, -1}, {2, 3}), (std::vector<std::int64_t>{2, -1}));
  EXPECT_EQ(apply<float>(ops::PROD(), {2.0f}, {3.5f}), (std::vector<float>{7.0f}));
}

TEST(Ops, LogicalAndBitwise) {
  EXPECT_EQ(apply<int>(ops::LAND(), {1, 0, 2}, {1, 1, 0}), (std::vector<int>{1, 0, 0}));
  EXPECT_EQ(apply<int>(ops::LOR(), {0, 0}, {0, 3}), (std::vector<int>{0, 1}));
  EXPECT_EQ(apply<int>(ops::LXOR(), {1, 1}, {1, 0}), (std::vector<int>{0, 1}));
  EXPECT_EQ(apply<int>(ops::BAND(), {0b1100}, {0b1010}), (std::vector<int>{0b1000}));
  EXPECT_EQ(apply<int>(ops::BOR(), {0b1100}, {0b1010}), (std::vector<int>{0b1110}));
  EXPECT_EQ(apply<int>(ops::BXOR(), {0b1100}, {0b1010}), (std::vector<int>{0b0110}));
}

TEST(Ops, BitwiseRejectsFloat) {
  std::vector<float> a = {1.0f}, b = {2.0f};
  EXPECT_THROW(ops::BAND().apply(buf::TypeCode::Float, a.data(), b.data(), 1), ArgumentError);
}

TEST(Ops, MaxlocMinloc) {
  // Pairs: (value, index).
  auto out = apply<int>(ops::MAXLOC(), {5, 0, 7, 1}, {9, 2, 3, 3});
  EXPECT_EQ(out, (std::vector<int>{9, 2, 7, 1}));
  out = apply<int>(ops::MINLOC(), {5, 0, 7, 1}, {9, 2, 3, 3});
  EXPECT_EQ(out, (std::vector<int>{5, 0, 3, 3}));
  // Ties keep the lower index.
  out = apply<int>(ops::MAXLOC(), {5, 4}, {5, 2});
  EXPECT_EQ(out, (std::vector<int>{5, 2}));
}

TEST(Ops, MaxlocOddCountThrows) {
  std::vector<int> a = {1, 2, 3}, b = {1, 2, 3};
  EXPECT_THROW(ops::MAXLOC().apply(buf::TypeCode::Int, a.data(), b.data(), 3), ArgumentError);
}

TEST(Ops, UserOpAccumulationOrder) {
  // Non-commutative op: f(acc, next) = 2*acc + next. Verifies the
  // documented inout-then-in order.
  const Op op = Op::make_user<int>([](int acc, int next) { return 2 * acc + next; }, false);
  EXPECT_FALSE(op.is_commutative());
  std::vector<int> acc = {1};
  const std::vector<int> next = {3};
  op.apply(buf::TypeCode::Int, next.data(), acc.data(), 1);
  EXPECT_EQ(acc[0], 5);  // 2*1 + 3
}

TEST(Ops, UserOpWrongTypeThrows) {
  const Op op = Op::make_user<int>([](int a, int b) { return a + b; });
  std::vector<double> a = {1.0}, b = {2.0};
  EXPECT_THROW(op.apply(buf::TypeCode::Double, a.data(), b.data(), 1), ArgumentError);
}

TEST(Ops, AllPrimitiveTypesSupported) {
  // SUM must work across the full primitive set (bool saturates).
  const bool truth = true;
  bool acc = false;
  ops::SUM().apply(buf::TypeCode::Boolean, &truth, &acc, 1);
  EXPECT_TRUE(acc);
  const std::int8_t in8 = 3;
  std::int8_t io8 = 4;
  ops::SUM().apply(buf::TypeCode::Byte, &in8, &io8, 1);
  EXPECT_EQ(io8, 7);
  const std::int16_t in16 = 1;
  std::int16_t io16 = 2;
  ops::MAX().apply(buf::TypeCode::Short, &in16, &io16, 1);
  EXPECT_EQ(io16, 2);
}

}  // namespace
}  // namespace mpcx
